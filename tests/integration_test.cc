// Cross-engine differential testing on generated queries and databases:
// every engine that claims to compute the same quantity must agree.
//
//  * randomly generated hierarchical CQ¬  ->  CntSat == brute force,
//    efficiency, Monte-Carlo consistency, relevance == zeroness;
//  * randomly generated safe CQ¬          ->  classifier consistent with
//    whether CntSat accepts; brute-force engines self-consistent;
//  * the probabilistic mirror             ->  lifted == world enumeration.

#include <gtest/gtest.h>

#include <tuple>

#include "core/brute_force.h"
#include "core/count_sat.h"
#include "core/monte_carlo.h"
#include "core/relevance.h"
#include "core/shapley.h"
#include "datasets/query_gen.h"
#include "datasets/synthetic.h"
#include "eval/homomorphism.h"
#include "probdb/lifted.h"
#include "query/classify.h"

namespace shapcq {
namespace {

class HierarchicalIntegration : public ::testing::TestWithParam<int> {};

TEST_P(HierarchicalIntegration, AllEnginesAgree) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 86028121u + 11);
  QueryGenOptions gen_options;
  gen_options.max_depth = 2;  // keep brute force feasible
  const CQ q = RandomHierarchicalCq(gen_options, &rng);
  SyntheticOptions db_options;
  db_options.domain_size = 2;
  db_options.facts_per_relation = 2;
  const Database db = RandomDatabaseForQuery(q, {}, db_options, &rng);
  if (db.endogenous_count() > 14) GTEST_SKIP() << "too large for oracle";

  // Counting engine vs enumeration.
  auto counted = CountSat(q, db);
  ASSERT_TRUE(counted.ok()) << counted.error() << "\n" << q.ToString();
  EXPECT_EQ(counted.value(), CountSatBruteForce(q, db))
      << q.ToString() << "\n" << db.ToString();

  // Shapley engine vs enumeration + efficiency.
  Rational sum(0);
  for (FactId f : db.endogenous_facts()) {
    const Rational fast = ShapleyViaCountSat(q, db, f).value();
    EXPECT_EQ(fast, ShapleyBruteForce(q, db, f))
        << q.ToString() << "\nfact " << db.FactToString(f);
    sum += fast;
  }
  const int delta = (EvalBoolean(q, db, db.FullWorld()) ? 1 : 0) -
                    (EvalBoolean(q, db, db.EmptyWorld()) ? 1 : 0);
  EXPECT_EQ(sum, Rational(delta)) << q.ToString();

  // The classifier must accept exactly what CntSat accepts.
  auto verdict = ClassifyExactShapley(q);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict.value().IsTractable()) << q.ToString();

  // Relevance == zeroness when the generated query is polarity consistent.
  if (IsPolarityConsistent(q)) {
    for (FactId f : db.endogenous_facts()) {
      EXPECT_EQ(ShapleyIsNonzero(q, db, f).value(),
                !ShapleyViaCountSat(q, db, f).value().IsZero())
          << q.ToString() << "\nfact " << db.FactToString(f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierarchicalIntegration,
                         ::testing::Range(0, 25));

class SafeQueryIntegration : public ::testing::TestWithParam<int> {};

TEST_P(SafeQueryIntegration, ClassifierMatchesCountSatScope) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 512927357u + 23);
  QueryGenOptions gen_options;
  const CQ q = RandomSafeCq(gen_options, &rng);
  SyntheticOptions db_options;
  db_options.domain_size = 2;
  db_options.facts_per_relation = 2;
  const Database db = RandomDatabaseForQuery(q, {}, db_options, &rng);

  auto verdict = ClassifyExactShapley(q);
  ASSERT_TRUE(verdict.ok()) << q.ToString();
  EXPECT_EQ(verdict.value().IsTractable(), CountSat(q, db).ok())
      << q.ToString();

  // On the tractable side the engines must agree.
  if (verdict.value().IsTractable() && db.endogenous_count() <= 14) {
    for (FactId f : db.endogenous_facts()) {
      EXPECT_EQ(ShapleyViaCountSat(q, db, f).value(),
                ShapleyBruteForce(q, db, f))
          << q.ToString() << "\nfact " << db.FactToString(f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SafeQueryIntegration,
                         ::testing::Range(0, 25));

class ProbIntegration : public ::testing::TestWithParam<int> {};

TEST_P(ProbIntegration, LiftedMatchesEnumeration) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 674506111u + 31);
  QueryGenOptions gen_options;
  gen_options.max_depth = 2;
  const CQ q = RandomHierarchicalCq(gen_options, &rng);
  SyntheticOptions db_options;
  db_options.domain_size = 2;
  db_options.facts_per_relation = 2;
  ProbDatabase pdb = RandomProbDatabaseForQuery(q, {}, db_options, &rng);
  if (pdb.probabilistic_count() > 16) GTEST_SKIP() << "too large";
  auto lifted = LiftedProbability(q, pdb);
  ASSERT_TRUE(lifted.ok()) << lifted.error() << "\n" << q.ToString();
  EXPECT_NEAR(lifted.value(), pdb.ProbabilityBruteForce(q), 1e-9)
      << q.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProbIntegration, ::testing::Range(0, 25));

TEST(MonteCarloIntegration, TracksExactOnGeneratedInstances) {
  Rng rng(20260610);
  QueryGenOptions gen_options;
  gen_options.max_depth = 2;
  for (int trial = 0; trial < 3; ++trial) {
    const CQ q = RandomHierarchicalCq(gen_options, &rng);
    SyntheticOptions db_options;
    db_options.domain_size = 2;
    db_options.facts_per_relation = 3;
    const Database db = RandomDatabaseForQuery(q, {}, db_options, &rng);
    if (db.endogenous_count() == 0) continue;
    const FactId f = db.endogenous_facts()[0];
    const double exact = ShapleyViaCountSat(q, db, f).value().ToDouble();
    const double estimate = ShapleyMonteCarlo(q, db, f, 20000, &rng);
    EXPECT_NEAR(estimate, exact, 0.05) << q.ToString();
  }
}

}  // namespace
}  // namespace shapcq
