// Approximation tier: a permutation-sampling additive FPRAS for the
// intractable side of the dichotomy (Section 5.1 of the paper).
//
// The exact engines cover the hierarchical fragment; everything else is
// FP^#P-hard and used to fall back to exponential brute force. Sampling the
// marginal contribution of a fact over random permutations gives an unbiased
// estimate whose per-sample value lies in {-1, 0, 1}, so Hoeffding's
// inequality makes m >= 2 ln(2/δ)/ε² samples an additive (ε, δ)-guarantee for
// ANY query the evaluator can decide — including the non-hierarchical and
// negated queries the exact engines reject. Theorem 5.1 shows this can never
// be sharpened to a multiplicative FPRAS.
//
// What makes this engine production-shaped rather than the seed's scalar
// estimator (core/monte_carlo):
//
//  * Orbit stratification. Facts related by a database automorphism that
//    fixes the query are symmetric players with EQUAL Shapley values, so one
//    estimate per orbit representative serves every member. On hierarchical
//    queries the exact engine's orbits are injected; otherwise a sound
//    signature partition is computed here (facts whose tuples agree after
//    masking values that occur exactly once in the database and nowhere in
//    the query). Confidence is Bonferroni-split across sampled orbits, so
//    ALL reported intervals hold simultaneously with probability >= 1 - δ.
//
//  * A memoized coalition-value oracle. Worlds are hash-consed into packed
//    bitmask signatures and query truth is cached in a striped, LRU-bounded
//    execution cache shared by all sampling threads — repeated coalitions
//    (common at small n and under stratification) skip the evaluator.
//
//  * Deterministic parallel fan-out. The sample budget is cut into
//    fixed-size chunks; chunk (orbit, index) always draws from its own
//    Rng(mix(seed, orbit representative, index)) stream and writes into its
//    own slot, and the reduction is a serial fixed-order sum of integer
//    accumulators. Results are bit-identical at ANY thread count.
//
// Interval radii are the minimum of the Hoeffding radius and an empirical
// Bernstein (Maurer–Pontil) radius, each at half the orbit's confidence
// share — sharp when the observed variance is small, never worse than
// Hoeffding by more than the split.

#ifndef SHAPCQ_CORE_APPROX_ENGINE_H_
#define SHAPCQ_CORE_APPROX_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "db/database.h"
#include "query/cq.h"
#include "util/rational.h"
#include "util/result.h"

namespace shapcq {

class CancelToken;  // util/cancel.h

/// An (ε, δ) approximation request: the sampling parameters a report caller
/// provides. Carried inside ReportOptions and in the serving layer's report
/// cache keys.
struct ApproxSpec {
  double epsilon = 0.0;     ///< additive error bound; 0 = approximation off
  double delta = 0.05;      ///< total failure probability across all rows
  uint64_t seed = 0;        ///< base RNG seed (results are pure in the seed)
  size_t max_samples = 0;   ///< per-orbit cap on the Hoeffding count (0 =
                            ///< uncapped); capping widens the reported CIs
                            ///< instead of breaking them
  bool force = false;       ///< sample even when an exact engine applies

  bool enabled() const { return epsilon > 0.0; }

  /// Ok iff the spec is usable: 0 < epsilon < 1 and 0 < delta < 1.
  Result<bool> Validate() const;

  /// Canonical "eps,delta,seed,max_samples,force" string: the report-cache
  /// key of the serving layer. Two specs with equal keys produce
  /// bit-identical reports on the same database state.
  std::string CacheKey() const;
};

/// One orbit representative's estimate, shared by every orbit member.
struct ApproxRow {
  Rational estimate;        ///< exact mean contribution: sum / samples
  double ci_radius = 0.0;   ///< half-width of the confidence interval
  size_t samples = 0;       ///< samples drawn for this row's orbit (0 for
                            ///< facts provably irrelevant to the query)
  size_t orbit = 0;         ///< dense orbit id, first-seen endo order
};

/// Counters and provenance of one EstimateAll run.
struct ApproxRunInfo {
  size_t orbit_count = 0;      ///< orbits over the endogenous facts
  size_t sampled_orbits = 0;   ///< orbits that actually drew samples
  size_t samples_per_orbit = 0;
  size_t samples_total = 0;
  bool budget_capped = false;  ///< max_samples cut the Hoeffding count
  size_t eval_calls = 0;       ///< evaluator invocations (cache misses)
  size_t cache_hits = 0;
  size_t cache_evictions = 0;
  std::string orbit_source;    ///< "engine" (exact-engine orbits injected)
                               ///< or "signature" (computed here)
};

/// Sound symmetry partition of the endogenous facts for an arbitrary CQ¬:
/// two facts share an orbit iff they agree on relation, endogenous kind, and
/// tuple after masking "free" positions — values that occur exactly once
/// across the database's live facts and never as a query constant. Swapping
/// the free values of two such facts is a database automorphism fixing the
/// query, so orbit members have equal Shapley values. Returns one dense id
/// per endogenous fact, endo-index order, first-seen numbering.
std::vector<size_t> ApproxSymmetryOrbits(const CQ& q, const Database& db);

/// Thread-safe LRU-bounded memo of coalition -> query truth. Keys are the
/// packed World bitmask (hash-consed: the full words resolve collisions);
/// entries are striped over independent locks so parallel samplers mostly
/// avoid contention. Bounded by entry count; eviction is per-stripe LRU.
class CoalitionCache {
 public:
  explicit CoalitionCache(size_t max_entries);
  ~CoalitionCache();
  CoalitionCache(CoalitionCache&&) noexcept;
  CoalitionCache& operator=(CoalitionCache&&) noexcept;

  /// -1 = absent, 0 = cached false, 1 = cached true.
  int Lookup(const std::vector<uint64_t>& words);
  void Insert(const std::vector<uint64_t>& words, bool value);

  size_t hits() const;
  size_t misses() const;    ///< Lookup calls that found nothing
  size_t evictions() const;
  size_t entries() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The sampling engine: built once per (query, database) pair, then
/// EstimateAll per (spec, thread count). Holds the orbit partition and the
/// shared coalition cache across calls.
class ApproxEngine {
 public:
  struct Options {
    /// Bound on memoized coalitions (the execution cache); 0 disables
    /// memoization entirely (every sample hits the evaluator).
    size_t cache_entries = 1 << 15;
    /// Samples per deterministic RNG stream. One stream = one schedulable
    /// task; smaller chunks spread better over threads, larger ones
    /// amortize stream setup. Any value yields the same results.
    size_t chunk_samples = 128;
    /// Orbit ids to stratify by (endo-index order, dense), typically
    /// ShapleyEngine::OrbitIds() on hierarchical queries. nullptr =
    /// compute ApproxSymmetryOrbits here.
    const std::vector<size_t>* orbit_ids = nullptr;
  };

  /// `q` and `db` must outlive the engine and must not mutate while it is
  /// used (rebuild after a delta, exactly like the report path does).
  static Result<ApproxEngine> Create(const CQ& q, const Database& db,
                                     const Options& options);
  ~ApproxEngine();
  ApproxEngine(ApproxEngine&&) noexcept;
  ApproxEngine& operator=(ApproxEngine&&) noexcept;

  /// Estimates every endogenous fact's Shapley value (endo-index order).
  /// `num_threads`: 1 = serial, 0 = hardware concurrency; bit-identical
  /// output at every setting. `spec` must validate. A non-null `cancel`
  /// token is polled at chunk boundaries (each chunk is one deterministic
  /// RNG stream); on expiry EstimateAll returns the cancellation error.
  /// The coalition cache keeps whatever a cancelled run warmed — cache
  /// content never affects values, only speed.
  Result<std::vector<ApproxRow>> EstimateAll(const ApproxSpec& spec,
                                             size_t num_threads,
                                             const CancelToken* cancel =
                                                 nullptr);

  /// Counters of the most recent EstimateAll run.
  const ApproxRunInfo& info() const;

  /// Empty engine (Result<T> plumbing); use Create().
  ApproxEngine();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace shapcq

#endif  // SHAPCQ_CORE_APPROX_ENGINE_H_
