#include "datasets/synthetic.h"

#include <set>
#include <string>

namespace shapcq {

namespace {

std::vector<Value> MakeDomain(const CQ& q, int domain_size) {
  std::vector<Value> domain;
  for (int i = 0; i < domain_size; ++i) {
    domain.push_back(V("d" + std::to_string(i)));
  }
  // Fold the query's constants in so constant atoms can be hit.
  for (const Atom& atom : q.atoms()) {
    for (const Term& term : atom.terms) {
      if (term.IsConst()) {
        bool present = false;
        for (const Value& value : domain) present |= (value == term.constant);
        if (!present) domain.push_back(term.constant);
      }
    }
  }
  return domain;
}

}  // namespace

Database RandomDatabaseForQuery(const CQ& q, const ExoRelations& exo,
                                const SyntheticOptions& options, Rng* rng) {
  Database db;
  const std::vector<Value> domain = MakeDomain(q, options.domain_size);
  std::set<std::string> seen;
  for (const Atom& atom : q.atoms()) {
    if (!seen.insert(atom.relation).second) continue;  // self-join: once
    db.DeclareRelation(atom.relation, atom.arity());
    for (int i = 0; i < options.facts_per_relation; ++i) {
      Tuple tuple(atom.arity());
      for (size_t pos = 0; pos < atom.arity(); ++pos) {
        tuple[pos] = domain[rng->UniformInt(domain.size())];
      }
      const bool endogenous = exo.count(atom.relation) == 0 &&
                              rng->Bernoulli(options.endogenous_bias);
      const FactId existing = db.FindFact(atom.relation, tuple);
      if (existing == kNoFact) {
        db.AddFact(atom.relation, std::move(tuple), endogenous);
      }
    }
  }
  return db;
}

ProbDatabase RandomProbDatabaseForQuery(const CQ& q,
                                        const ExoRelations& deterministic,
                                        const SyntheticOptions& options,
                                        Rng* rng) {
  ProbDatabase pdb;
  const std::vector<Value> domain = MakeDomain(q, options.domain_size);
  std::set<std::string> seen;
  for (const Atom& atom : q.atoms()) {
    if (!seen.insert(atom.relation).second) continue;
    pdb.mutable_db().DeclareRelation(atom.relation, atom.arity());
    for (int i = 0; i < options.facts_per_relation; ++i) {
      Tuple tuple(atom.arity());
      for (size_t pos = 0; pos < atom.arity(); ++pos) {
        tuple[pos] = domain[rng->UniformInt(domain.size())];
      }
      if (pdb.db().FindFact(atom.relation, tuple) != kNoFact) continue;
      const double probability =
          deterministic.count(atom.relation) > 0
              ? 1.0
              : 0.1 + 0.8 * rng->UniformDouble();
      pdb.AddFact(atom.relation, std::move(tuple), probability);
    }
  }
  return pdb;
}

Database BuildStudentScalingDb(int students, int courses_each) {
  Database db;
  auto student = [](int i) { return V("s" + std::to_string(i)); };
  auto course = [](int i) { return V("c" + std::to_string(i)); };
  for (int s = 0; s < students; ++s) {
    db.AddExo("Stud", {student(s)});
    if (s % 2 == 0) db.AddEndo("TA", {student(s)});
    for (int c = 0; c < courses_each; ++c) {
      db.AddEndo("Reg", {student(s), course(c)});
    }
  }
  return db;
}

}  // namespace shapcq
