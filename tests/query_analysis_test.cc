// Structural analysis: safety, hierarchy, Gaifman graphs, non-hierarchical
// paths, polarity — validated against the paper's own examples.

#include "query/analysis.h"

#include <gtest/gtest.h>

#include "datasets/university.h"
#include "query/parser.h"

namespace shapcq {
namespace {

TEST(SafetyTest, SafeAndUnsafe) {
  EXPECT_TRUE(IsSafe(MustParseCQ("q() :- R(x), not S(x)")));
  EXPECT_TRUE(IsSafe(MustParseCQ("q() :- R(x,y), not S(y,x)")));
  EXPECT_FALSE(IsSafe(MustParseCQ("q() :- R(x), not S(x,y)")));
  EXPECT_FALSE(IsSafe(MustParseCQ("q() :- not S(x)")));
  EXPECT_TRUE(IsSafe(MustParseCQ("q() :- R(x), not S('c')")));
  // Head variables must also be covered by positive atoms.
  EXPECT_FALSE(IsSafe(MustParseCQ("q(y) :- R(x)")));
}

TEST(SelfJoinTest, PaperExamples) {
  EXPECT_TRUE(IsSelfJoinFree(UniversityQ1()));
  EXPECT_TRUE(IsSelfJoinFree(UniversityQ2()));
  EXPECT_FALSE(IsSelfJoinFree(UniversityQ3()));  // Adv twice
  EXPECT_FALSE(IsSelfJoinFree(UniversityQ4()));
  // Same relation positive and negative also counts as a self-join.
  EXPECT_FALSE(IsSelfJoinFree(MustParseCQ("q() :- R(x), S(x,y), not R(y)")));
}

TEST(HierarchyTest, PaperExample22) {
  EXPECT_TRUE(IsHierarchical(UniversityQ1()));
  EXPECT_FALSE(IsHierarchical(UniversityQ2()));
  EXPECT_FALSE(IsHierarchical(UniversityQ3()));
  EXPECT_FALSE(IsHierarchical(UniversityQ4()));
}

TEST(HierarchyTest, BaseQueries) {
  EXPECT_FALSE(IsHierarchical(MustParseCQ("q() :- R(x), S(x,y), T(y)")));
  EXPECT_FALSE(
      IsHierarchical(MustParseCQ("q() :- not R(x), S(x,y), not T(y)")));
  EXPECT_FALSE(IsHierarchical(MustParseCQ("q() :- R(x), not S(x,y), T(y)")));
  EXPECT_FALSE(IsHierarchical(MustParseCQ("q() :- R(x), S(x,y), not T(y)")));
  EXPECT_TRUE(IsHierarchical(MustParseCQ("q() :- R(x), S(x,y)")));
  EXPECT_TRUE(IsHierarchical(MustParseCQ("q() :- R(x,y), S(x,y), T(x)")));
  EXPECT_TRUE(IsHierarchical(MustParseCQ("q() :- R(x), S(y)")));
}

TEST(HierarchyTest, IntroExportQuery) {
  EXPECT_FALSE(IsHierarchical(
      MustParseCQ("q() :- Farmer(m), Export(m,p,c), not Grows(c,p)")));
}

TEST(HierarchyTest, TripletWitness) {
  CQ q = MustParseCQ("q() :- R(x), S(x,y), T(y)");
  auto triplet = FindNonHierarchicalTriplet(q);
  ASSERT_TRUE(triplet.has_value());
  EXPECT_EQ(q.atom(triplet->alpha_x).relation, "R");
  EXPECT_EQ(q.atom(triplet->alpha_xy).relation, "S");
  EXPECT_EQ(q.atom(triplet->alpha_y).relation, "T");
  EXPECT_FALSE(FindNonHierarchicalTriplet(UniversityQ1()).has_value());
}

TEST(HierarchyTest, ReductionTripletAvoidsBadSignature) {
  // For each base shape, the reduction triplet keeps the middle atom
  // positive or makes both endpoints positive.
  for (const char* text :
       {"q() :- R(x), S(x,y), T(y)", "q() :- not R(x), S(x,y), not T(y)",
        "q() :- R(x), not S(x,y), T(y)", "q() :- R(x), S(x,y), not T(y)",
        "q2() :- Stud(x), not TA(x), Reg(x,y), not Course(y,'CS')"}) {
    CQ q = MustParseCQ(text);
    auto triplet = FindReductionTriplet(q);
    ASSERT_TRUE(triplet.has_value()) << text;
    const bool middle_neg = q.atom(triplet->alpha_xy).negated;
    const bool some_end_neg =
        q.atom(triplet->alpha_x).negated || q.atom(triplet->alpha_y).negated;
    EXPECT_FALSE(middle_neg && some_end_neg) << text;
  }
}

TEST(GaifmanTest, EdgesFromCoOccurrence) {
  CQ q = MustParseCQ("q() :- R(x,y), S(y,z), not T(z,w)");
  auto adj = GaifmanAdjacency(q);
  VarId x = q.FindVar("x"), y = q.FindVar("y"), z = q.FindVar("z"),
        w = q.FindVar("w");
  EXPECT_TRUE(adj[x][y]);
  EXPECT_TRUE(adj[y][z]);
  EXPECT_TRUE(adj[z][w]);  // negative atoms contribute edges too
  EXPECT_FALSE(adj[x][z]);
  EXPECT_FALSE(adj[x][w]);
}

TEST(ExoVarsTest, OnlyExoAtomVars) {
  CQ q = MustParseCQ("q() :- A(x,y), P(y,u,w), Q(y,w)");
  ExoRelations exo = {"P"};
  auto exo_vars = ExogenousVars(q, exo);
  ASSERT_EQ(exo_vars.size(), 1u);
  EXPECT_EQ(q.var_name(exo_vars[0]), "u");
}

TEST(ExoComponentsTest, Figure3Components) {
  // Example 4.2's q′: components {R, S, O}, {P}, {V} of the exogenous-atom
  // graph (S shares x with R and z with O; u of P occurs nowhere else; V's t
  // occurs in the non-exogenous U).
  CQ q = MustParseCQ(
      "qp() :- U(t,r), not T(y), Q(y,w), not Vv(t), R(x,y), not S(x,z), "
      "O(z), P(u,y,w)");
  ExoRelations exo = {"R", "S", "O", "P", "Vv"};
  auto components = ExogenousAtomComponents(q, exo);
  ASSERT_EQ(components.size(), 3u);
  // Components are sorted by first atom index: Vv at 3, {R,S,O} at 4..6,
  // {P} at 7.
  EXPECT_EQ(components[0], (std::vector<size_t>{3}));
  EXPECT_EQ(components[1], (std::vector<size_t>{4, 5, 6}));
  EXPECT_EQ(components[2], (std::vector<size_t>{7}));
}

TEST(NonHierarchicalPathTest, Section41Pair) {
  // q has no non-hierarchical path; q′ (one variable changed) has one.
  CQ q = MustParseCQ("q() :- not R(x,w), S(z,x), not P(z,w), T(y,w)");
  CQ qp = MustParseCQ("q() :- not R(x,w), S(z,x), not P(z,y), T(y,w)");
  ExoRelations exo = {"S", "P"};
  EXPECT_FALSE(FindNonHierarchicalPath(q, exo).has_value());
  auto witness = FindNonHierarchicalPath(qp, exo);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(qp.atom(witness->alpha_x).relation, "R");
  EXPECT_EQ(qp.atom(witness->alpha_y).relation, "T");
}

TEST(NonHierarchicalPathTest, Example42) {
  CQ q = MustParseCQ(
      "q() :- not R(x), Q(x,v), S(x,z), U(z,w), not P(w,y), T(y,v)");
  // With no exogenous relations, the path x-z-w-y (avoiding v) witnesses.
  auto witness = FindNonHierarchicalPath(q, {});
  ASSERT_TRUE(witness.has_value());

  CQ qp = MustParseCQ(
      "qp() :- U(t,r), not T(y), Q(y,w), not Vv(t), R(x,y), not S(x,z), "
      "O(z), P(u,y,w)");
  ExoRelations exo = {"R", "S", "O", "P", "Vv"};
  EXPECT_FALSE(FindNonHierarchicalPath(qp, exo).has_value());
}

TEST(NonHierarchicalPathTest, EmptyExoMatchesHierarchy) {
  // With X = ∅, a non-hierarchical triplet yields a (length-1) path.
  for (const char* text :
       {"q() :- R(x), S(x,y), T(y)", "q() :- R(x), S(x,y)",
        "q1() :- Stud(x), not TA(x), Reg(x,y)",
        "q2() :- Stud(x), not TA(x), Reg(x,y), not Course(y,'CS')"}) {
    CQ q = MustParseCQ(text);
    EXPECT_EQ(IsHierarchical(q), !FindNonHierarchicalPath(q, {}).has_value())
        << text;
  }
}

TEST(NonHierarchicalPathTest, CitationsVariants) {
  CQ q = MustParseCQ("q() :- Author(x,y), Pub(x,z), Citations(z,w)");
  EXPECT_FALSE(IsHierarchical(q));
  EXPECT_TRUE(FindNonHierarchicalPath(q, {}).has_value());
  EXPECT_FALSE(FindNonHierarchicalPath(q, {"Pub", "Citations"}).has_value());
  EXPECT_FALSE(FindNonHierarchicalPath(q, {"Citations"}).has_value());
  // Knowing only Pub is exogenous does NOT help: Author and Citations induce
  // a path through z.
  EXPECT_TRUE(FindNonHierarchicalPath(q, {"Pub"}).has_value());
}

TEST(NonHierarchicalPathTest, IntroQueryWithExoGrows) {
  CQ q = MustParseCQ("q() :- Farmer(m), Export(m,p,c), not Grows(c,p)");
  EXPECT_TRUE(FindNonHierarchicalPath(q, {}).has_value());
  EXPECT_FALSE(FindNonHierarchicalPath(q, {"Grows"}).has_value());
}

TEST(PolarityTest, Example54) {
  EXPECT_TRUE(IsPolarityConsistent(UniversityQ1()));
  EXPECT_TRUE(IsPolarityConsistent(UniversityQ2()));
  EXPECT_TRUE(IsPolarityConsistent(UniversityQ3()));
  EXPECT_FALSE(IsPolarityConsistent(UniversityQ4()));
  EXPECT_TRUE(IsRelationPolarityConsistent(UniversityQ4(), "Adv"));
  EXPECT_FALSE(IsRelationPolarityConsistent(UniversityQ4(), "TA"));
  EXPECT_FALSE(IsRelationPolarityConsistent(UniversityQ4(), "Reg"));
}

TEST(PolarityTest, UcqWholeVsDisjuncts) {
  UCQ ucq = MustParseUCQ(
      "q1() :- T(x,'1')\n"
      "q2() :- Vv(x), not T(x,'0')");
  // T occurs positively in q1 and negatively in q2: whole-union inconsistent.
  EXPECT_FALSE(IsPolarityConsistent(ucq));
  EXPECT_TRUE(IsPolarityConsistent(ucq.disjunct(0)));
  EXPECT_TRUE(IsPolarityConsistent(ucq.disjunct(1)));
  EXPECT_FALSE(IsRelationPolarityConsistent(ucq, "T"));
  EXPECT_TRUE(IsRelationPolarityConsistent(ucq, "Vv"));
}

TEST(PositiveConnectivityTest, Examples) {
  EXPECT_TRUE(
      IsPositivelyConnected(MustParseCQ("q() :- R(x), S(x,y), not R(y)")));
  EXPECT_FALSE(
      IsPositivelyConnected(MustParseCQ("q() :- R(x), not S(x,y), T(y)")));
  EXPECT_TRUE(IsPositivelyConnected(MustParseCQ("q() :- R(x)")));
  EXPECT_FALSE(IsPositivelyConnected(MustParseCQ("q() :- R(x), T(y)")));
}

TEST(AtomComponentsTest, GroundAtomsSeparate) {
  CQ q = MustParseCQ("q() :- R(x,y), S(y), T(z), U('c')");
  auto components = AtomComponents(q);
  ASSERT_EQ(components.size(), 3u);
  EXPECT_EQ(components[0], (std::vector<size_t>{0, 1}));
  EXPECT_EQ(components[1], (std::vector<size_t>{2}));
  EXPECT_EQ(components[2], (std::vector<size_t>{3}));
}

TEST(RootVariableTest, FoundAndMissing) {
  CQ q1 = MustParseCQ("q() :- Stud(x), not TA(x), Reg(x,y)");
  auto root = FindRootVariable(q1);
  ASSERT_TRUE(root.has_value());
  EXPECT_EQ(q1.var_name(*root), "x");
  EXPECT_FALSE(
      FindRootVariable(MustParseCQ("q() :- R(x), S(x,y), T(y)")).has_value());
}

TEST(HasConstantsTest, Detects) {
  EXPECT_TRUE(HasConstants(UniversityQ2()));
  EXPECT_FALSE(HasConstants(UniversityQ1()));
}

}  // namespace
}  // namespace shapcq
