#!/usr/bin/env python3
"""CI gate for the arithmetic-backbone perf claim.

Reads a Google Benchmark JSON file produced by bench_arith and compares the
production BigInt rows against the retained seed-implementation rows recorded
in the same run (BM_RefBigIntMul / BM_RefBigIntDivMod — the 32-bit schoolbook
kernel kept verbatim in util/bigint_reference.h). Because baseline and
candidate run on the same machine in the same process, the ratio is free of
cross-host drift.

Fails (exit 1) if the geometric-mean speedup of multi-limb multiplication
(operands of at least --min-limbs 64-bit limbs) falls below --min-speedup
(default 1.5x, the floor the 64-bit-limb + Karatsuba rewrite must clear;
measured values are far higher).

usage: check_arith_speedup.py BENCH_JSON [--min-speedup 1.5] [--min-limbs 4]
"""

import argparse
import json
import math
import sys

NEW = "BM_BigIntMul/"
REF = "BM_RefBigIntMul/"


def times_by_size(benchmarks, prefix):
    out = {}
    for row in benchmarks:
        name = row.get("name", "")
        if not name.startswith(prefix) or row.get("run_type") == "aggregate":
            continue
        size = name[len(prefix):].split("/")[0]
        out[size] = float(row["real_time"])
    return out


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("bench_json")
    parser.add_argument("--min-speedup", type=float, default=1.5)
    parser.add_argument("--min-limbs", type=int, default=4)
    args = parser.parse_args()

    with open(args.bench_json) as handle:
        report = json.load(handle)
    benchmarks = report.get("benchmarks", [])
    new = times_by_size(benchmarks, NEW)
    ref = times_by_size(benchmarks, REF)
    sizes = [s for s in sorted(set(new) & set(ref), key=int)
             if int(s) >= args.min_limbs]
    if not sizes:
        print("error: no comparable BM_BigIntMul/BM_RefBigIntMul rows with "
              f">= {args.min_limbs} limbs found", file=sys.stderr)
        return 1

    log_sum = 0.0
    for size in sizes:
        speedup = ref[size] / new[size]
        log_sum += math.log(speedup)
        print(f"mul {size} limbs: new {new[size]:.0f} ns vs seed "
              f"{ref[size]:.0f} ns -> speedup {speedup:.2f}x")
    geomean = math.exp(log_sum / len(sizes))
    verdict = "OK" if geomean >= args.min_speedup else "REGRESSION"
    print(f"geomean multi-limb multiply speedup: {geomean:.2f}x "
          f"(floor {args.min_speedup:.1f}x) [{verdict}]")
    if geomean < args.min_speedup:
        print(f"error: arithmetic backbone speedup {geomean:.2f}x fell below "
              f"the {args.min_speedup:.1f}x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
