#include "probdb/exoprob.h"

#include "core/exoshap.h"
#include "probdb/lifted.h"
#include "util/check.h"

namespace shapcq {

Result<double> ExoProbProbability(const CQ& q, const ProbDatabase& pdb,
                                  const ExoRelations& deterministic) {
  // The ExoShap transformations only rebuild exogenous (here: deterministic)
  // relations and copy every endogenous (probabilistic) fact verbatim, so
  // probabilities transfer by (relation, tuple) identity.
  auto transformed = ExoShapTransform(q, pdb.db(), deterministic);
  if (!transformed.ok()) return Result<double>::Error(transformed.error());
  const TransformedInstance& instance = transformed.value();

  ProbDatabase lifted_pdb;
  lifted_pdb.mutable_db() = instance.db;
  // Rebuild the probability table in the new endo-index order.
  std::vector<double> probabilities(instance.db.endogenous_count(), 1.0);
  for (FactId fact : instance.db.endogenous_facts()) {
    const FactId original = pdb.db().FindFact(
        instance.db.schema().name(instance.db.relation_of(fact)),
        instance.db.tuple_of(fact));
    SHAPCQ_CHECK_MSG(original != kNoFact,
                     "probabilistic fact lost by the transformation");
    probabilities[instance.db.endo_index(fact)] = pdb.probability(original);
  }
  lifted_pdb.SetProbabilities(std::move(probabilities));
  return LiftedProbability(instance.query, lifted_pdb);
}

}  // namespace shapcq
