// Tuple-independent probabilistic databases (Section 4.3).
//
// Each fact is present independently with its probability; deterministic
// facts have probability 1 (the analogue of exogenous facts). Query
// evaluation asks for P(D ⊨ q). Built on the same Database substrate:
// probabilistic facts are stored endogenous, deterministic facts exogenous.

#ifndef SHAPCQ_PROBDB_PROB_DATABASE_H_
#define SHAPCQ_PROBDB_PROB_DATABASE_H_

#include <string>
#include <vector>

#include "db/database.h"
#include "query/cq.h"

namespace shapcq {

/// A tuple-independent probabilistic database.
class ProbDatabase {
 public:
  /// Adds a fact present with the given probability in (0, 1].
  /// Probability 1 is stored as a deterministic fact.
  FactId AddFact(const std::string& relation, Tuple tuple, double probability);
  /// Adds a deterministic fact (probability 1).
  FactId AddDeterministic(const std::string& relation, Tuple tuple) {
    return AddFact(relation, std::move(tuple), 1.0);
  }

  const Database& db() const { return db_; }
  Database& mutable_db() { return db_; }
  /// Replaces the per-endogenous-fact probability table (endo-index order);
  /// for rebuilding a ProbDatabase around a transformed Database. Sizes must
  /// agree.
  void SetProbabilities(std::vector<double> probabilities);
  /// Probability of a fact (1.0 for deterministic facts).
  double probability(FactId fact) const;
  /// Number of genuinely probabilistic (p < 1) facts.
  size_t probabilistic_count() const { return db_.endogenous_count(); }

  /// P(D ⊨ q) by enumerating all 2^m possible worlds; m must be small.
  double ProbabilityBruteForce(const CQ& q) const;

  /// Monte-Carlo estimate of P(D ⊨ q) over `samples` sampled worlds.
  double ProbabilityMonteCarlo(const CQ& q, size_t samples,
                               uint64_t seed) const;

 private:
  Database db_;
  std::vector<double> probabilities_;  // by endo index
};

}  // namespace shapcq

#endif  // SHAPCQ_PROBDB_PROB_DATABASE_H_
