// Cooperative games and exact (exponential-time) Shapley computation.
//
// Shapley(A, v, a) = (1/|A|!) Σ_σ (v(σ_a ∪ {a}) − v(σ_a)).
//
// These generic engines are the ground truth the polynomial algorithms are
// tested against: subset enumeration (2^n evaluations, weighted by
// |E|!(n−|E|−1)!/n!) and literal permutation enumeration (n! orders).

#ifndef SHAPCQ_CORE_GAME_H_
#define SHAPCQ_CORE_GAME_H_

#include <functional>
#include <vector>

#include "db/database.h"
#include "query/cq.h"
#include "query/ucq.h"
#include "util/rational.h"

namespace shapcq {

/// A cooperative game: a wealth function over coalitions of n players.
/// Implementations must return v(∅) = 0.
class CooperativeGame {
 public:
  virtual ~CooperativeGame() = default;
  /// Number of players.
  virtual size_t player_count() const = 0;
  /// Wealth of the coalition (coalition.size() == player_count()).
  virtual Rational Value(const std::vector<bool>& coalition) const = 0;
};

/// Wraps an arbitrary wealth function.
class FunctionGame : public CooperativeGame {
 public:
  FunctionGame(size_t players,
               std::function<Rational(const std::vector<bool>&)> value)
      : players_(players), value_(std::move(value)) {}
  size_t player_count() const override { return players_; }
  Rational Value(const std::vector<bool>& coalition) const override {
    return value_(coalition);
  }

 private:
  size_t players_;
  std::function<Rational(const std::vector<bool>&)> value_;
};

/// The paper's query game: players are the endogenous facts of db and
/// v(E) = q(Dx ∪ E) − q(Dx) for a Boolean query (CQ¬ or UCQ¬).
class QueryGame : public CooperativeGame {
 public:
  QueryGame(const CQ& q, const Database& db);
  QueryGame(const UCQ& q, const Database& db);
  size_t player_count() const override;
  Rational Value(const std::vector<bool>& coalition) const override;

 private:
  const CQ* cq_ = nullptr;
  const UCQ* ucq_ = nullptr;
  const Database& db_;
  int base_;  // q(Dx)
};

/// Shapley value of `player` by subset enumeration (O(2^n) evaluations).
Rational ShapleyBySubsets(const CooperativeGame& game, size_t player);

/// Shapley values of all players by one pass over all subsets.
std::vector<Rational> ShapleyAllBySubsets(const CooperativeGame& game);

/// Shapley value by enumerating all n! permutations; n must be tiny.
/// Exists to validate ShapleyBySubsets against the textbook definition.
Rational ShapleyByPermutations(const CooperativeGame& game, size_t player);

}  // namespace shapcq

#endif  // SHAPCQ_CORE_GAME_H_
