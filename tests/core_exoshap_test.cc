// ExoShap (Algorithm 1): the three transformation steps and end-to-end
// agreement with brute force, including the paper's Example 4.1 / Figure 3
// structure and randomized sweeps.

#include "core/exoshap.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>

#include "core/brute_force.h"
#include "datasets/citations.h"
#include "datasets/synthetic.h"
#include "datasets/university.h"
#include "query/parser.h"
#include "util/random.h"

namespace shapcq {
namespace {

TEST(ExoShapStepsTest, ComplementMakesExoAtomsPositive) {
  Database db;
  db.AddExo("Grows", {V("es1"), V("es2")});
  db.AddExo("Farmer", {V("es1")});
  db.AddEndo("Export", {V("es1"), V("es2"), V("es1")});
  CQ q = MustParseCQ("q() :- Farmer(m), Export(m,p,c), not Grows(c,p)");
  TransformedInstance step1 = ComplementNegatedExoAtoms(q, db, {"Grows"});
  for (const Atom& atom : step1.query.atoms()) {
    EXPECT_FALSE(atom.negated);
  }
  // The complement relation holds |Dom|^2 − 1 = 3 tuples.
  const Atom& complemented = step1.query.atoms().back();
  EXPECT_EQ(step1.db.facts_of(complemented.relation).size(), 3u);
  EXPECT_TRUE(step1.exo.count(complemented.relation));
  // Endogenous facts untouched.
  EXPECT_EQ(step1.db.endogenous_count(), db.endogenous_count());
}

TEST(ExoShapStepsTest, JoinCollapsesFigure3Component) {
  // Example 4.7: the component {R(x,y), S(x,z), O(z)} (S already
  // complemented to positive) joins into one atom over vars {x,y,z}.
  Database db;
  db.AddExo("R", {V("ej1"), V("ej2")});
  db.AddExo("S", {V("ej1"), V("ej3")});
  db.AddExo("O", {V("ej3")});
  db.AddEndo("T", {V("ej2")});
  CQ q = MustParseCQ("q() :- R(x,y), S(x,z), O(z), T(y)");
  ExoRelations exo = {"R", "S", "O"};
  TransformedInstance step2 = JoinExogenousComponents(q, db, exo);
  // One non-exo atom (T) + one joined atom.
  ASSERT_EQ(step2.query.atom_count(), 2u);
  EXPECT_EQ(step2.query.atom(0).relation, "T");
  const Atom& joined = step2.query.atom(1);
  EXPECT_EQ(joined.arity(), 3u);
  // The join R(ej1,ej2) ⋈ S(ej1,ej3) ⋈ O(ej3) has exactly one answer.
  EXPECT_EQ(step2.db.facts_of(joined.relation).size(), 1u);
}

TEST(ExoShapStepsTest, PadReportsNonHierarchicalPath) {
  // q′ from Section 4.1 has a non-hierarchical path; padding must fail to
  // find a covering atom (Lemma 4.4).
  CQ qp = MustParseCQ("q() :- not R(x,w), S(z,x), not P(z,y), T(y,w)");
  ExoRelations exo = {"S", "P"};
  Database db;
  db.DeclareRelation("R", 2);
  db.DeclareRelation("S", 2);
  db.DeclareRelation("P", 2);
  db.DeclareRelation("T", 2);
  db.AddExo("S", {V("ep1"), V("ep2")});
  db.AddExo("P", {V("ep1"), V("ep2")});
  db.AddEndo("R", {V("ep1"), V("ep2")});
  db.AddEndo("T", {V("ep1"), V("ep2")});
  TransformedInstance step1 = ComplementNegatedExoAtoms(qp, db, exo);
  TransformedInstance step2 =
      JoinExogenousComponents(step1.query, step1.db, step1.exo);
  EXPECT_FALSE(PadExogenousAtoms(step2.query, step2.db, step2.exo).ok());
}

TEST(ExoShapStepsTest, Figure3VariableSets) {
  // Example 4.2's q′ through the whole pipeline: per Figure 3c, the three
  // transformed exogenous atoms must carry exactly the variable sets of
  // their covering non-exogenous atoms — {y} (from ¬T), {t,r} (from U) and
  // {y,w} (from Q).
  CQ qp = MustParseCQ(
      "qp() :- U(t,r), not T(y), Q(y,w), not Vv(t), R(x,y), not S(x,z), "
      "O(z), P(u,y,w)");
  ExoRelations exo = {"R", "S", "O", "P", "Vv"};
  Database db;
  db.AddEndo("U", {V("f3a"), V("f3b")});
  db.AddEndo("T", {V("f3c")});
  db.AddEndo("Q", {V("f3c"), V("f3d")});
  db.AddExo("Vv", {V("f3a")});
  db.AddExo("R", {V("f3e"), V("f3c")});
  db.AddExo("S", {V("f3e"), V("f3f")});
  db.AddExo("O", {V("f3f")});
  db.AddExo("P", {V("f3g"), V("f3c"), V("f3d")});
  auto transformed = ExoShapTransform(qp, db, exo);
  ASSERT_TRUE(transformed.ok()) << transformed.error();
  const CQ& out = transformed.value().query;
  // Collect the sorted variable-name sets of the exogenous atoms.
  std::multiset<std::set<std::string>> exo_var_sets;
  for (const Atom& atom : out.atoms()) {
    if (transformed.value().exo.count(atom.relation) == 0) continue;
    std::set<std::string> names;
    for (VarId var : atom.Variables()) names.insert(out.var_name(var));
    exo_var_sets.insert(names);
  }
  const std::multiset<std::set<std::string>> expected = {
      {"y"}, {"t", "r"}, {"y", "w"}};
  EXPECT_EQ(exo_var_sets, expected);
}

TEST(ExoShapTest, TransformYieldsHierarchicalQuery) {
  Database db = BuildSmallCitationsDb();
  auto transformed =
      ExoShapTransform(CitationsQuery(), db, CitationsExoRelations());
  ASSERT_TRUE(transformed.ok()) << transformed.error();
  EXPECT_TRUE(IsHierarchical(transformed.value().query));
  EXPECT_EQ(transformed.value().db.endogenous_count(), db.endogenous_count());
}

TEST(ExoShapTest, CitationsExampleMatchesBruteForce) {
  Database db = BuildSmallCitationsDb();
  const CQ q = CitationsQuery();
  for (const ExoRelations& exo :
       {CitationsExoRelations(), CitationsOnlyExo()}) {
    for (FactId f : db.endogenous_facts()) {
      auto value = ExoShapShapley(q, db, exo, f);
      ASSERT_TRUE(value.ok()) << value.error();
      EXPECT_EQ(value.value(), ShapleyBruteForce(q, db, f))
          << db.FactToString(f);
    }
  }
}

TEST(ExoShapTest, UniversityQ2MatchesBruteForce) {
  UniversityDb u = BuildUniversityDb();
  const CQ q2 = UniversityQ2();
  const ExoRelations exo = {"Stud", "Course"};
  for (FactId f : u.db.endogenous_facts()) {
    auto value = ExoShapShapley(q2, u.db, exo, f);
    ASSERT_TRUE(value.ok()) << value.error();
    EXPECT_EQ(value.value(), ShapleyBruteForce(q2, u.db, f))
        << u.db.FactToString(f);
  }
}

TEST(ExoShapTest, RejectsNonHierarchicalPath) {
  Database db = BuildSmallCitationsDb();
  const CQ q = CitationsQuery();
  FactId f = db.endogenous_facts()[0];
  EXPECT_FALSE(ExoShapShapley(q, db, {"Pub"}, f).ok());
}

TEST(ExoShapTest, RejectsEndogenousFactInExoRelation) {
  Database db;
  db.AddEndo("Pub", {V("ex1"), V("ex2")});
  db.AddEndo("Author", {V("ex1"), V("ex3")});
  db.AddExo("Citations", {V("ex2"), V("ex4")});
  FactId f = db.FindFact("Author", {V("ex1"), V("ex3")});
  EXPECT_FALSE(
      ExoShapShapley(CitationsQuery(), db, CitationsExoRelations(), f).ok());
}

TEST(ExoShapTest, AllExoQueryHasZeroShapley) {
  Database db;
  db.AddExo("R", {V("ez1")});
  FactId f = db.AddEndo("Other", {V("ez1")});
  CQ q = MustParseCQ("q() :- R(x)");
  auto value = ExoShapShapley(q, db, {"R"}, f);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), Rational(0));
}

// ---------------------------------------------------------------------------
// Randomized sweep over Theorem 4.3-tractable shapes.
// ---------------------------------------------------------------------------

struct ExoCase {
  const char* query;
  const char* exo1;
  const char* exo2;  // may be empty
};

using ExoSweepParam = std::tuple<int, int>;  // (case index, seed)

const ExoCase kExoCases[] = {
    {"q() :- Author(x,y), Pub(x,z), Citations(z,w)", "Pub", "Citations"},
    {"q() :- Author(x,y), Pub(x,z), Citations(z,w)", "Citations", ""},
    {"q() :- not R(x,w), S(z,x), not P(z,w), T(y,w)", "S", "P"},
    {"q() :- Farmer(m), Export(m,p,c), not Grows(c,p)", "Grows", ""},
    {"q2() :- Stud(x), not TA(x), Reg(x,y), not Course(y,'CS')", "Stud",
     "Course"},
    // Example 4.2's q′ — exercises the full Figure 3 pipeline (complement,
    // three-atom join, padding against both negative and positive atoms).
    {"qp() :- U(t,r), not T(y), Q(y,w), not Vv(t), R(x,y), not S(x,z), "
     "O(z), P(u,y,w)",
     "R", "S|O|P|Vv"},
};

class ExoShapSweep : public ::testing::TestWithParam<ExoSweepParam> {};

TEST_P(ExoShapSweep, MatchesBruteForce) {
  const ExoCase& test_case = kExoCases[std::get<0>(GetParam())];
  const CQ q = MustParseCQ(test_case.query);
  ExoRelations exo = {test_case.exo1};
  // exo2 is a '|'-separated list (possibly empty).
  std::string rest = test_case.exo2;
  while (!rest.empty()) {
    const size_t bar = rest.find('|');
    exo.insert(rest.substr(0, bar));
    rest = bar == std::string::npos ? "" : rest.substr(bar + 1);
  }
  Rng rng(static_cast<uint64_t>(std::get<1>(GetParam())) * 65537 + 3 +
          static_cast<uint64_t>(std::get<0>(GetParam())));
  SyntheticOptions options;
  options.domain_size = 3;
  options.facts_per_relation = 3;
  const Database db = RandomDatabaseForQuery(q, exo, options, &rng);
  for (FactId f : db.endogenous_facts()) {
    auto value = ExoShapShapley(q, db, exo, f);
    ASSERT_TRUE(value.ok()) << value.error() << "\n" << db.ToString();
    EXPECT_EQ(value.value(), ShapleyBruteForce(q, db, f))
        << "query " << q.ToString() << "\nfact " << db.FactToString(f)
        << "\ndb " << db.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(TractableShapes, ExoShapSweep,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Range(0, 4)));

}  // namespace
}  // namespace shapcq
