// E5 — Theorem 5.1 / Section 5.1: the gap property fails under negation.
//
//   BM_GapValueMagnitude/<n>  builds the gap family D_n and evaluates the
//                             distinguished fact's exact Shapley value
//                             n!n!/(2n+1)!, verified by brute force at
//                             small n.
//
// Counters (tools/check_approx_accuracy.py gates them in CI):
//   log2_value   log2 of the exact value; the gap property FAILING means
//                this falls below -n (nonzero but exponentially small, so
//                an additive FPRAS cannot double as a multiplicative one —
//                contrast with positive CQs, where nonzero values are
//                >= 1/poly)
//   neg_n        -n, the bound log2_value must sit under
//   endo_facts   |D_n| (endogenous facts of the family instance)
//   brute_match  1 when brute force reproduces n!n!/(2n+1)! (n <= 4),
//                -1 where brute force is out of reach

#include <benchmark/benchmark.h>

#include <cmath>

#include "core/brute_force.h"
#include "reductions/gap.h"
#include "util/check.h"

namespace {

using namespace shapcq;

void BM_GapValueMagnitude(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const CQ q = GapQuery();

  size_t endo_facts = 0;
  double value = 0.0;
  for (auto _ : state) {
    GapInstance gap = BuildGapFamily(n);
    const Rational exact = GapTheoreticalShapley(n);
    endo_facts = gap.db.endogenous_count();
    value = exact.ToDouble();
    benchmark::DoNotOptimize(value);
  }

  double brute_match = -1.0;
  if (n <= 4) {
    GapInstance gap = BuildGapFamily(n);
    brute_match =
        ShapleyBruteForce(q, gap.db, gap.f) == GapTheoreticalShapley(n)
            ? 1.0
            : 0.0;
  }
  state.counters["log2_value"] = std::log2(value);
  state.counters["neg_n"] = static_cast<double>(-n);
  state.counters["endo_facts"] = static_cast<double>(endo_facts);
  state.counters["brute_match"] = brute_match;
}
BENCHMARK(BM_GapValueMagnitude)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

}  // namespace

BENCHMARK_MAIN();
