#include "query/cq.h"

#include <algorithm>
#include <unordered_map>

#include "util/check.h"

namespace shapcq {

VarId CQ::GetOrAddVar(const std::string& name) {
  VarId existing = FindVar(name);
  if (existing >= 0) return existing;
  var_names_.push_back(name);
  return static_cast<VarId>(var_names_.size() - 1);
}

VarId CQ::FindVar(const std::string& name) const {
  for (size_t i = 0; i < var_names_.size(); ++i) {
    if (var_names_[i] == name) return static_cast<VarId>(i);
  }
  return -1;
}

const std::string& CQ::var_name(VarId var) const {
  SHAPCQ_CHECK(var >= 0 && static_cast<size_t>(var) < var_names_.size());
  return var_names_[static_cast<size_t>(var)];
}

void CQ::AddAtom(Atom atom) {
  for (const Term& term : atom.terms) {
    if (term.IsVar()) {
      SHAPCQ_CHECK_MSG(term.var >= 0 && static_cast<size_t>(term.var) <
                                            var_names_.size(),
                       "atom references unknown variable");
    }
  }
  atoms_.push_back(std::move(atom));
}

void CQ::AddPositive(const std::string& relation,
                     const std::vector<std::string>& var_names) {
  Atom atom;
  atom.relation = relation;
  atom.negated = false;
  for (const std::string& name : var_names) {
    atom.terms.push_back(Term::MakeVar(GetOrAddVar(name)));
  }
  AddAtom(std::move(atom));
}

void CQ::AddNegative(const std::string& relation,
                     const std::vector<std::string>& var_names) {
  Atom atom;
  atom.relation = relation;
  atom.negated = true;
  for (const std::string& name : var_names) {
    atom.terms.push_back(Term::MakeVar(GetOrAddVar(name)));
  }
  AddAtom(std::move(atom));
}

std::vector<size_t> CQ::PositiveAtoms() const {
  std::vector<size_t> indices;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (!atoms_[i].negated) indices.push_back(i);
  }
  return indices;
}

std::vector<size_t> CQ::NegativeAtoms() const {
  std::vector<size_t> indices;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (atoms_[i].negated) indices.push_back(i);
  }
  return indices;
}

bool CQ::HasNegation() const {
  for (const Atom& atom : atoms_) {
    if (atom.negated) return true;
  }
  return false;
}

void CQ::SetHeadByName(const std::vector<std::string>& names) {
  head_.clear();
  for (const std::string& name : names) head_.push_back(GetOrAddVar(name));
}

std::vector<VarId> CQ::UsedVars() const {
  std::vector<bool> used(var_names_.size(), false);
  for (const Atom& atom : atoms_) {
    for (const Term& term : atom.terms) {
      if (term.IsVar()) used[static_cast<size_t>(term.var)] = true;
    }
  }
  std::vector<VarId> result;
  for (size_t i = 0; i < used.size(); ++i) {
    if (used[i]) result.push_back(static_cast<VarId>(i));
  }
  return result;
}

CQ CQ::Substitute(VarId var, Value value) const {
  CQ result(name_);
  // Remap surviving variables to a compact table.
  std::unordered_map<VarId, VarId> remap;
  auto remap_var = [&](VarId old_var) -> VarId {
    auto it = remap.find(old_var);
    if (it != remap.end()) return it->second;
    VarId fresh = result.GetOrAddVar(var_names_[static_cast<size_t>(old_var)]);
    remap.emplace(old_var, fresh);
    return fresh;
  };
  for (const Atom& atom : atoms_) {
    Atom copy;
    copy.relation = atom.relation;
    copy.negated = atom.negated;
    for (const Term& term : atom.terms) {
      if (term.IsConst()) {
        copy.terms.push_back(term);
      } else if (term.var == var) {
        copy.terms.push_back(Term::MakeConst(value));
      } else {
        copy.terms.push_back(Term::MakeVar(remap_var(term.var)));
      }
    }
    result.atoms_.push_back(std::move(copy));
  }
  std::vector<VarId> head;
  for (VarId head_var : head_) {
    if (head_var != var) head.push_back(remap_var(head_var));
  }
  result.head_ = std::move(head);
  return result;
}

CQ CQ::Restrict(const std::vector<size_t>& atom_indices) const {
  CQ result(name_);
  std::unordered_map<VarId, VarId> remap;
  auto remap_var = [&](VarId old_var) -> VarId {
    auto it = remap.find(old_var);
    if (it != remap.end()) return it->second;
    VarId fresh = result.GetOrAddVar(var_names_[static_cast<size_t>(old_var)]);
    remap.emplace(old_var, fresh);
    return fresh;
  };
  for (size_t index : atom_indices) {
    SHAPCQ_CHECK(index < atoms_.size());
    const Atom& atom = atoms_[index];
    Atom copy;
    copy.relation = atom.relation;
    copy.negated = atom.negated;
    for (const Term& term : atom.terms) {
      copy.terms.push_back(term.IsConst() ? term
                                          : Term::MakeVar(remap_var(term.var)));
    }
    result.atoms_.push_back(std::move(copy));
  }
  std::vector<VarId> head;
  for (VarId head_var : head_) {
    auto it = remap.find(head_var);
    if (it != remap.end()) head.push_back(it->second);
  }
  result.head_ = std::move(head);
  return result;
}

std::string CQ::ToString() const {
  const ValueDictionary& dict = ValueDictionary::Global();
  std::string out = name_ + "(";
  for (size_t i = 0; i < head_.size(); ++i) {
    if (i > 0) out += ",";
    out += var_name(head_[i]);
  }
  out += ") :- ";
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out += ", ";
    const Atom& atom = atoms_[i];
    if (atom.negated) out += "not ";
    out += atom.relation + "(";
    for (size_t j = 0; j < atom.terms.size(); ++j) {
      if (j > 0) out += ",";
      const Term& term = atom.terms[j];
      out += term.IsVar() ? var_name(term.var)
                          : "'" + dict.Name(term.constant) + "'";
    }
    out += ")";
  }
  return out;
}

}  // namespace shapcq
