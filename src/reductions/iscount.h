// The Lemma B.3 reduction, run forward: counting independent sets of a
// bipartite graph with a Shapley oracle for q_RS¬T() :- R(x), S(x,y), ¬T(y).
//
// The pipeline builds the N+2 database instances D^0, D^1, ..., D^{N+1} of
// the proof, queries the oracle for Shapley(D^r, q_RS¬T, T(0)), assembles the
// linear system with coefficients k!(N−k+r)! over the unknowns |S(g,k)|,
// solves it exactly, and returns Σ_k |S(g,k)| = |IS(g)|.

#ifndef SHAPCQ_REDUCTIONS_ISCOUNT_H_
#define SHAPCQ_REDUCTIONS_ISCOUNT_H_

#include <functional>

#include "db/database.h"
#include "query/cq.h"
#include "reductions/bipartite.h"
#include "util/bigint.h"
#include "util/rational.h"

namespace shapcq {

/// q_RST() :- R(x), S(x,y), T(y).
CQ QRst();
/// q_¬RS¬T() :- ¬R(x), S(x,y), ¬T(y).
CQ QNegRSNegT();
/// q_R¬ST() :- R(x), ¬S(x,y), T(y).
CQ QRNegSt();
/// q_RS¬T() :- R(x), S(x,y), ¬T(y).
CQ QRSNegT();

/// A Shapley oracle: value of the given endogenous fact for q_RS¬T over db.
using ShapleyOracle = std::function<Rational(const Database&, FactId)>;

/// The database D^r of Lemma B.3 (r = 0 is the special instance with facts
/// S(a,0) for every left vertex). *f receives the fact T(0).
Database BuildIsCountInstance(const BipartiteGraph& graph, int r, FactId* f);

/// |IS(g)| via the oracle pipeline. The oracle is consulted N+2 times; with
/// the exact brute-force oracle this is exponential (as expected — the point
/// of the reduction is that a polynomial oracle would make #IS polynomial).
BigInt CountIndependentSetsViaShapley(const BipartiteGraph& graph,
                                      const ShapleyOracle& oracle);

}  // namespace shapcq

#endif  // SHAPCQ_REDUCTIONS_ISCOUNT_H_
