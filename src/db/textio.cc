#include "db/textio.h"

#include <cctype>

#include "util/check.h"

namespace shapcq {

namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '<' || c == '>' || c == '#' || c == '-' || c == '.';
}

// Parses one "Rel(arg,...)['*']" literal starting at `pos` (whitespace
// already skipped); advances `pos` past the literal. Shared by the database
// parser and the single-fact parser the CLI's --mutate mode uses.
Result<FactSpec> ParseOneFact(const std::string& text, size_t* pos_inout) {
  size_t pos = *pos_inout;
  const size_t n = text.size();
  FactSpec spec;
  // Relation name.
  size_t start = pos;
  while (pos < n && IsNameChar(text[pos])) ++pos;
  if (pos == start) {
    return Result<FactSpec>::Error("expected relation name at offset " +
                                   std::to_string(pos));
  }
  spec.relation = text.substr(start, pos - start);
  if (pos >= n || text[pos] != '(') {
    return Result<FactSpec>::Error("expected '(' after " + spec.relation);
  }
  ++pos;
  // Arguments: const (',' const)* — or empty.
  auto skip_spaces = [&] {
    while (pos < n && std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  };
  skip_spaces();
  while (pos < n && text[pos] != ')') {
    start = pos;
    while (pos < n && IsNameChar(text[pos])) ++pos;
    if (pos == start) {
      return Result<FactSpec>::Error("expected constant in " + spec.relation);
    }
    spec.tuple.push_back(V(text.substr(start, pos - start)));
    skip_spaces();
    if (pos < n && text[pos] == ',') {
      ++pos;
      skip_spaces();
      if (pos >= n || text[pos] == ')') {
        return Result<FactSpec>::Error("trailing comma in " + spec.relation);
      }
    }
  }
  if (pos >= n) {
    return Result<FactSpec>::Error("unterminated fact " + spec.relation);
  }
  ++pos;  // ')'
  if (pos < n && text[pos] == '*') {
    spec.endogenous = true;
    ++pos;
  }
  *pos_inout = pos;
  return Result<FactSpec>::Ok(std::move(spec));
}

}  // namespace

Result<FactSpec> ParseFactSpec(const std::string& text) {
  size_t pos = 0;
  const size_t n = text.size();
  while (pos < n && std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  Result<FactSpec> spec = ParseOneFact(text, &pos);
  if (!spec.ok()) return spec;
  while (pos < n && std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  if (pos != n) {
    return Result<FactSpec>::Error("trailing input after fact at offset " +
                                   std::to_string(pos));
  }
  return spec;
}

std::string FactSpecToString(const FactSpec& spec) {
  std::string out = spec.relation + "(";
  for (size_t i = 0; i < spec.tuple.size(); ++i) {
    if (i > 0) out += ",";
    out += ValueDictionary::Global().Name(spec.tuple[i]);
  }
  out += ")";
  if (spec.endogenous) out += "*";
  return out;
}

Result<MutationSpec> ParseMutationLine(const std::string& line) {
  size_t pos = 0;
  const size_t n = line.size();
  while (pos < n && std::isspace(static_cast<unsigned char>(line[pos]))) {
    ++pos;
  }
  if (pos >= n) {
    return Result<MutationSpec>::Error("expected '+' or '-' mutation");
  }
  const char op = line[pos];
  if (op != '+' && op != '-') {
    return Result<MutationSpec>::Error(
        std::string("expected '+' or '-', got '") + op + "'");
  }
  Result<FactSpec> spec = ParseFactSpec(line.substr(pos + 1));
  if (!spec.ok()) return Result<MutationSpec>::Error(spec.error());
  MutationSpec mutation;
  mutation.op =
      op == '+' ? MutationSpec::Op::kInsert : MutationSpec::Op::kDelete;
  mutation.fact = std::move(spec).value();
  return Result<MutationSpec>::Ok(std::move(mutation));
}

Result<Database> ParseDatabase(const std::string& text) {
  Database db;
  size_t pos = 0;
  const size_t n = text.size();
  while (pos < n) {
    if (std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
      continue;
    }
    Result<FactSpec> spec = ParseOneFact(text, &pos);
    if (!spec.ok()) return Result<Database>::Error(spec.error());
    FactSpec fact = std::move(spec).value();
    if (db.FindFact(fact.relation, fact.tuple) != kNoFact) {
      return Result<Database>::Error("duplicate fact " + fact.relation);
    }
    db.AddFact(fact.relation, std::move(fact.tuple), fact.endogenous);
  }
  return Result<Database>::Ok(std::move(db));
}

Database MustParseDatabase(const std::string& text) {
  auto result = ParseDatabase(text);
  SHAPCQ_CHECK_MSG(result.ok(), result.error().c_str());
  return std::move(result).value();
}

bool ParseSizeStrict(const std::string& text, size_t* out) {
  if (text.empty()) return false;
  size_t value = 0;
  constexpr size_t kMax = static_cast<size_t>(-1);
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const size_t digit = static_cast<size_t>(c - '0');
    if (value > (kMax - digit) / 10) return false;  // would overflow
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

}  // namespace shapcq
