#include "core/aggregate.h"

#include <set>
#include <string>

#include "core/exoshap.h"
#include "core/game.h"
#include "core/shapley.h"
#include "eval/homomorphism.h"
#include "util/check.h"

namespace shapcq {

namespace {

Rational NumericValue(Value value) {
  const std::string& name = ValueDictionary::Global().Name(value);
  BigInt parsed;
  SHAPCQ_CHECK_MSG(BigInt::TryParse(name, &parsed),
                   "Sum aggregate over a non-numeric constant");
  return Rational(std::move(parsed));
}

Rational WeightOf(const AggregateQuery& agg, const Tuple& answer) {
  if (agg.kind == AggregateQuery::Kind::kCount) return Rational(1);
  SHAPCQ_CHECK(agg.sum_position < answer.size());
  return NumericValue(answer[agg.sum_position]);
}

}  // namespace

Rational AggregateValue(const AggregateQuery& agg, const Database& db,
                        const World& world) {
  SHAPCQ_CHECK_MSG(!agg.cq.IsBoolean(),
                   "aggregate query needs a non-empty head");
  Rational total(0);
  for (const Tuple& answer : EnumerateAnswers(agg.cq, db, world)) {
    total += WeightOf(agg, answer);
  }
  return total;
}

std::vector<Tuple> PotentialAnswers(const CQ& q, const Database& db) {
  std::set<Tuple> answers;
  ForEachHomomorphism(q, db, db.FullWorld(), /*enforce_negative=*/false,
                      [&](const Assignment& assignment) {
                        Tuple answer(q.head().size());
                        for (size_t i = 0; i < q.head().size(); ++i) {
                          answer[i] =
                              assignment[static_cast<size_t>(q.head()[i])];
                        }
                        answers.insert(std::move(answer));
                        return true;
                      });
  return std::vector<Tuple>(answers.begin(), answers.end());
}

Result<Rational> ShapleyAggregate(const AggregateQuery& agg,
                                  const Database& db, FactId f,
                                  const ExoRelations& exo) {
  SHAPCQ_CHECK_MSG(!agg.cq.IsBoolean(),
                   "aggregate query needs a non-empty head");
  Rational total(0);
  for (const Tuple& answer : PotentialAnswers(agg.cq, db)) {
    CQ grounded = agg.cq;
    // Substitute the head variables one by one (ids shift after each
    // substitution, so re-resolve by name).
    for (size_t i = 0; i < answer.size(); ++i) {
      const std::string var =
          agg.cq.var_name(agg.cq.head()[i]);
      const VarId current = grounded.FindVar(var);
      SHAPCQ_CHECK(current >= 0);
      grounded = grounded.Substitute(current, answer[i]);
    }
    auto value = IsHierarchical(grounded)
                     ? ShapleyViaCountSat(grounded, db, f)
                     : ExoShapShapley(grounded, db, exo, f);
    if (!value.ok()) return value;
    total += WeightOf(agg, answer) * value.value();
  }
  return Result<Rational>::Ok(total);
}

Rational ShapleyAggregateBruteForce(const AggregateQuery& agg,
                                    const Database& db, FactId f) {
  SHAPCQ_CHECK(db.is_endogenous(f));
  const Rational base = AggregateValue(agg, db, db.EmptyWorld());
  FunctionGame game(db.endogenous_count(),
                    [&](const std::vector<bool>& coalition) {
                      return AggregateValue(agg, db, coalition) - base;
                    });
  return ShapleyBySubsets(game, db.endo_index(f));
}

}  // namespace shapcq
