// Lightweight invariant-checking macros used across the library.
//
// SHAPCQ_CHECK is active in all build types: the conditions it guards are
// algorithmic invariants whose violation would silently corrupt results
// (e.g. a non-normalized BigInt), which is unacceptable in an exact-arithmetic
// library. The cost is negligible next to the big-integer work itself.

#ifndef SHAPCQ_UTIL_CHECK_H_
#define SHAPCQ_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define SHAPCQ_CHECK(cond)                                                \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "SHAPCQ_CHECK failed: %s at %s:%d\n", #cond,   \
                   __FILE__, __LINE__);                                   \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define SHAPCQ_CHECK_MSG(cond, msg)                                       \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "SHAPCQ_CHECK failed: %s (%s) at %s:%d\n",     \
                   #cond, msg, __FILE__, __LINE__);                       \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#endif  // SHAPCQ_UTIL_CHECK_H_
