// Attribution reports: the user-facing summary layer over the Shapley
// engines. Computes values for all endogenous facts with the best
// applicable algorithm, ranks them, and renders a fixed-width table.

#ifndef SHAPCQ_CORE_REPORT_H_
#define SHAPCQ_CORE_REPORT_H_

#include <string>
#include <vector>

#include "core/shapley_engine.h"
#include "db/database.h"
#include "query/analysis.h"
#include "query/cq.h"
#include "util/rational.h"
#include "util/result.h"

namespace shapcq {

/// One fact's attribution.
struct Attribution {
  FactId fact = kNoFact;
  Rational value;
};

/// A full attribution of a query answer to the endogenous facts.
struct AttributionReport {
  std::vector<Attribution> rows;  // sorted by descending value
  std::string engine;             // "CntSat", "ExoShap" or "brute-force"
  Rational total;                 // = q(D) − q(Dx) by efficiency
};

/// Options for BuildAttributionReport.
struct ReportOptions {
  ExoRelations exo;               // all-exogenous relations, if known
  bool allow_brute_force = false; // permit the exponential fallback
  size_t brute_force_limit = 20;  // max |Dn| for the fallback
  size_t num_threads = 1;         // worker threads for the all-facts engines
                                  // (1 = serial, 0 = hardware concurrency);
                                  // values are identical at any setting
  size_t top_k = 0;               // keep only the k highest-ranked rows
                                  // (0 = all); `total` stays the full
                                  // efficiency total either way
};

/// Computes Shapley values for every endogenous fact, choosing CntSat for
/// hierarchical queries, ExoShap when `options.exo` removes all
/// non-hierarchical paths, and (only if allowed) brute force otherwise.
/// Returns an error when no permitted engine applies.
Result<AttributionReport> BuildAttributionReport(const CQ& q,
                                                 const Database& db,
                                                 const ReportOptions& options);

/// Attribution table served from a live (possibly mutated) ShapleyEngine:
/// the long-lived-service path, where the index is maintained incrementally
/// by InsertFact/DeleteFact instead of rebuilt per report. `db` must be the
/// database the engine was built on and has been mutating.
AttributionReport BuildAttributionReportFromEngine(
    ShapleyEngine& engine, const Database& db, const ReportOptions& options);

/// Fixed-width text rendering of a report (fact, exact value, decimal).
std::string RenderReport(const AttributionReport& report, const Database& db);

}  // namespace shapcq

#endif  // SHAPCQ_CORE_REPORT_H_
