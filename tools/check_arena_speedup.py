#!/usr/bin/env python3
"""CI gate for the flat-arena engine perf claim.

Reads the Google Benchmark JSON produced by bench_shapley_all and compares
the arena-core all-facts rows (BM_EngineAllFacts, the default engine core)
against the pointer-tree rows recorded in the same run
(BM_EngineAllFactsTree, the always-on differential oracle behind
--engine=tree). Both rows time the value-computation sweep on a freshly
built engine — tree construction is identical serial work in either core
and is excluded (BM_EngineBuildOnly tracks it in the same JSON). Because
both cores run on the same machine in the same process, the ratio is free
of cross-host drift.

Fails (exit 1) if the speedup at any size with endo >= --min-endo (default
70, where the shared prefix/suffix sweep has real fan-out to amortize)
falls below --min-speedup (default 1.3x; measured values are far higher).

usage: check_arena_speedup.py BENCH_JSON [--min-speedup 1.3] [--min-endo 70]
"""

import argparse
import json
import sys

ARENA = "BM_EngineAllFacts/"
TREE = "BM_EngineAllFactsTree/"


def rows_by_arg(benchmarks, prefix):
    """arg -> (real_time, endo) for the non-aggregate rows of one family."""
    out = {}
    for row in benchmarks:
        name = row.get("name", "")
        if not name.startswith(prefix) or row.get("run_type") == "aggregate":
            continue
        arg = name[len(prefix):].split("/")[0]
        label = row.get("label", "")
        endo = None
        for token in label.split():
            if token.startswith("endo="):
                endo = int(token[len("endo="):])
        out[arg] = (float(row["real_time"]), endo)
    return out


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("bench_json")
    parser.add_argument("--min-speedup", type=float, default=1.3)
    parser.add_argument("--min-endo", type=int, default=70)
    args = parser.parse_args()

    with open(args.bench_json) as handle:
        report = json.load(handle)
    benchmarks = report.get("benchmarks", [])
    arena = rows_by_arg(benchmarks, ARENA)
    tree = rows_by_arg(benchmarks, TREE)

    gated = []
    for arg in sorted(set(arena) & set(tree), key=int):
        arena_ns, endo = arena[arg]
        tree_ns, _ = tree[arg]
        if endo is None or endo < args.min_endo:
            continue
        gated.append((arg, endo, tree_ns / arena_ns, arena_ns, tree_ns))
    if not gated:
        print("error: no comparable BM_EngineAllFacts/BM_EngineAllFactsTree "
              f"rows with endo >= {args.min_endo} found", file=sys.stderr)
        return 1

    failed = False
    for arg, endo, speedup, arena_ns, tree_ns in gated:
        verdict = "OK" if speedup >= args.min_speedup else "REGRESSION"
        print(f"all-facts arg {arg} (endo={endo}): arena {arena_ns:.0f} ns "
              f"vs tree {tree_ns:.0f} ns -> speedup {speedup:.2f}x "
              f"[{verdict}]")
        failed = failed or speedup < args.min_speedup
    if failed:
        print(f"error: arena speedup fell below the "
              f"{args.min_speedup:.1f}x floor at endo >= {args.min_endo}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
