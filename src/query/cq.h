// Conjunctive queries with safe negation (CQ¬, Section 2 of the paper).
//
// A CQ owns a variable table (names are cosmetic; identity is the VarId) and
// a list of positive/negative atoms. Boolean queries have an empty head; a
// non-empty head lists answer variables (used for materializing joins and for
// aggregate queries).

#ifndef SHAPCQ_QUERY_CQ_H_
#define SHAPCQ_QUERY_CQ_H_

#include <string>
#include <vector>

#include "query/atom.h"

namespace shapcq {

/// A conjunctive query, possibly with negated atoms and a projection head.
class CQ {
 public:
  CQ() = default;
  /// Creates a named query (name is cosmetic, used in printing).
  explicit CQ(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Returns the id of the variable with this name, creating it if needed.
  VarId GetOrAddVar(const std::string& name);
  /// Id of the variable, or -1 if absent.
  VarId FindVar(const std::string& name) const;
  const std::string& var_name(VarId var) const;
  size_t var_count() const { return var_names_.size(); }

  /// Appends an atom. Terms must reference variables of this query.
  void AddAtom(Atom atom);
  /// Convenience: builds the atom from term specs where each spec is either
  /// a variable name (bare) or a constant Value.
  void AddPositive(const std::string& relation,
                   const std::vector<std::string>& var_names);
  void AddNegative(const std::string& relation,
                   const std::vector<std::string>& var_names);

  const std::vector<Atom>& atoms() const { return atoms_; }
  std::vector<Atom>& mutable_atoms() { return atoms_; }
  size_t atom_count() const { return atoms_.size(); }
  const Atom& atom(size_t index) const { return atoms_[index]; }

  /// Indices of positive / negative atoms.
  std::vector<size_t> PositiveAtoms() const;
  std::vector<size_t> NegativeAtoms() const;
  bool HasNegation() const;

  /// Head (answer) variables; empty for Boolean queries.
  const std::vector<VarId>& head() const { return head_; }
  void SetHead(std::vector<VarId> head) { head_ = std::move(head); }
  void SetHeadByName(const std::vector<std::string>& names);
  bool IsBoolean() const { return head_.empty(); }

  /// Variables that occur in at least one atom, ascending by id.
  std::vector<VarId> UsedVars() const;

  /// A copy of the query with `var` replaced by the constant `value`
  /// everywhere. The variable table is rebuilt so var_count() reflects only
  /// remaining variables.
  CQ Substitute(VarId var, Value value) const;

  /// A copy containing only the atoms at `atom_indices` (variable table
  /// rebuilt). Head variables not used by the kept atoms are dropped.
  CQ Restrict(const std::vector<size_t>& atom_indices) const;

  /// "q(x) :- R(x,y), not S(y,'c')".
  std::string ToString() const;

 private:
  std::string name_ = "q";
  std::vector<std::string> var_names_;
  std::vector<Atom> atoms_;
  std::vector<VarId> head_;
};

}  // namespace shapcq

#endif  // SHAPCQ_QUERY_CQ_H_
