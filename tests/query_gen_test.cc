// The random query generators: structural guarantees over many seeds.

#include "datasets/query_gen.h"

#include <gtest/gtest.h>

#include "query/analysis.h"

namespace shapcq {
namespace {

class HierarchicalGenSweep : public ::testing::TestWithParam<int> {};

TEST_P(HierarchicalGenSweep, AlwaysHierarchicalSafeSelfJoinFree) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761u + 1);
  QueryGenOptions options;
  const CQ q = RandomHierarchicalCq(options, &rng);
  EXPECT_GE(q.atom_count(), 1u);
  EXPECT_TRUE(IsSafe(q)) << q.ToString();
  EXPECT_TRUE(IsSelfJoinFree(q)) << q.ToString();
  EXPECT_TRUE(IsHierarchical(q)) << q.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierarchicalGenSweep,
                         ::testing::Range(0, 40));

class SafeGenSweep : public ::testing::TestWithParam<int> {};

TEST_P(SafeGenSweep, AlwaysSafeSelfJoinFree) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 40503u + 7);
  QueryGenOptions options;
  const CQ q = RandomSafeCq(options, &rng);
  EXPECT_TRUE(IsSafe(q)) << q.ToString();
  EXPECT_TRUE(IsSelfJoinFree(q)) << q.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SafeGenSweep, ::testing::Range(0, 40));

TEST(QueryGenTest, DeterministicUnderSeed) {
  QueryGenOptions options;
  Rng rng1(5), rng2(5);
  EXPECT_EQ(RandomHierarchicalCq(options, &rng1).ToString(),
            RandomHierarchicalCq(options, &rng2).ToString());
}

TEST(QueryGenTest, ProducesNegationSometimes) {
  QueryGenOptions options;
  options.negation_rate = 1.0;
  bool saw_negation = false;
  for (int seed = 0; seed < 20 && !saw_negation; ++seed) {
    Rng rng(static_cast<uint64_t>(seed));
    saw_negation = RandomHierarchicalCq(options, &rng).HasNegation();
  }
  EXPECT_TRUE(saw_negation);
}

}  // namespace
}  // namespace shapcq
