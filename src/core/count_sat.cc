#include "core/count_sat.h"

#include <map>
#include <optional>

#include "core/atom_pattern.h"
#include "query/analysis.h"
#include "util/check.h"

namespace shapcq {

namespace {

// A fact projected to what the recursion needs: its tuple and endogeneity.
struct FactInfo {
  Tuple tuple;
  bool endogenous;
};

using AtomLists = std::vector<std::vector<FactInfo>>;

size_t EndoCount(const AtomLists& lists) {
  size_t count = 0;
  for (const auto& list : lists) {
    for (const FactInfo& fact : list) {
      if (fact.endogenous) ++count;
    }
  }
  return count;
}

// Ground base case, reduced to the shared leaf-state table.
CountVector GroundAtomCount(const Atom& atom, const std::vector<FactInfo>& list) {
  SHAPCQ_CHECK_MSG(list.size() <= 1,
                   "ground atom with more than one matching fact");
  GroundFactState state = GroundFactState::kAbsent;
  if (!list.empty()) {
    state = list[0].endogenous ? GroundFactState::kEndogenous
                               : GroundFactState::kExogenous;
  }
  return GroundLeafSat(atom.negated, state);
}

CountVector CoreCount(const CQ& q, const AtomLists& lists) {
  SHAPCQ_CHECK(q.atom_count() == lists.size());

  // Decompose into variable-connected components; independent subqueries
  // multiply (convolution over disjoint fact universes).
  const auto components = AtomComponents(q);
  if (components.size() > 1) {
    CountVector result;  // identity of Convolve
    for (const auto& component : components) {
      CQ sub = q.Restrict(component);
      AtomLists sub_lists;
      for (size_t index : component) sub_lists.push_back(lists[index]);
      result.ConvolveWith(CoreCount(sub, sub_lists));
    }
    return result;
  }

  if (q.UsedVars().empty()) {
    // Connected and variable-free: a single ground atom.
    SHAPCQ_CHECK(q.atom_count() == 1);
    return GroundAtomCount(q.atom(0), lists[0]);
  }

  // Connected with variables: a hierarchical connected query has a root
  // variable occurring in every atom.
  std::optional<VarId> root = FindRootVariable(q);
  SHAPCQ_CHECK_MSG(root.has_value(),
                   "connected hierarchical subquery lacks a root variable");

  // Positions of the root variable per atom.
  std::vector<std::vector<size_t>> root_positions(q.atom_count());
  for (size_t i = 0; i < q.atom_count(); ++i) {
    const Atom& atom = q.atom(i);
    for (size_t pos = 0; pos < atom.terms.size(); ++pos) {
      if (atom.terms[pos].IsVar() && atom.terms[pos].var == *root) {
        root_positions[i].push_back(pos);
      }
    }
    SHAPCQ_CHECK(!root_positions[i].empty());
  }

  // Slice the facts by the value at the root positions. Facts with unequal
  // values at the root positions can join nothing: free.
  std::map<int32_t, AtomLists> slices;  // value id -> per-atom lists
  size_t free_endo = 0;
  for (size_t i = 0; i < q.atom_count(); ++i) {
    for (const FactInfo& fact : lists[i]) {
      const Value value = fact.tuple[root_positions[i][0]];
      bool consistent = true;
      for (size_t pos : root_positions[i]) {
        if (!(fact.tuple[pos] == value)) consistent = false;
      }
      if (!consistent) {
        if (fact.endogenous) ++free_endo;
        continue;
      }
      auto [it, inserted] = slices.try_emplace(value.id);
      if (inserted) it->second.resize(q.atom_count());
      it->second[i].push_back(fact);
    }
  }

  // q holds iff some slice holds; slices own disjoint facts, so the counts
  // of jointly-unsatisfying subsets convolve.
  CountVector unsat_all;  // over the union of slice universes
  for (auto& [value_id, slice_lists] : slices) {
    CQ sliced = q.Substitute(*root, Value{value_id});
    CountVector sat = CoreCount(sliced, slice_lists);
    unsat_all.ConvolveWith(sat.ComplementAgainstAll());
  }
  CountVector sat_all =
      CountVector::All(unsat_all.universe_size()) - unsat_all;
  return sat_all.Convolve(CountVector::All(free_endo));
}

}  // namespace

// Lemma 3.2 with the negation extension. A positive ground atom must be
// present (a forced pick if endogenous, free if exogenous, impossible if
// absent); a negative one must be absent (the mirror image).
CountVector GroundLeafSat(bool negated, GroundFactState state) {
  if (!negated) {
    if (state == GroundFactState::kAbsent) return CountVector::Zero(0);
    if (state == GroundFactState::kExogenous) return CountVector::All(0);
    return CountVector::FromCounts({BigInt(0), BigInt(1)});  // forced pick
  }
  if (state == GroundFactState::kAbsent) return CountVector::All(0);
  if (state == GroundFactState::kExogenous) return CountVector::Zero(0);
  return CountVector::FromCounts({BigInt(1), BigInt(0)});  // forced non-pick
}

Result<CountVector> CountSat(const CQ& q, const Database& db) {
  if (!IsSafe(q)) {
    return Result<CountVector>::Error("CountSat requires safe negation: " +
                                      q.ToString());
  }
  if (!IsSelfJoinFree(q)) {
    return Result<CountVector>::Error("CountSat requires a self-join-free " +
                                      std::string("query: ") + q.ToString());
  }
  if (!IsHierarchical(q)) {
    return Result<CountVector>::Error("CountSat requires a hierarchical " +
                                      std::string("query: ") + q.ToString());
  }

  AtomLists lists(q.atom_count());
  size_t relevant_endo = 0;
  for (size_t i = 0; i < q.atom_count(); ++i) {
    const Atom& atom = q.atom(i);
    // Compile the atom's constant/equality constraints once; matching each
    // fact is then a linear scan instead of an O(arity^2) rederivation.
    const AtomPattern pattern = BuildAtomPattern(atom);
    const RelationId rel = db.schema().Find(atom.relation);
    for (FactId fact : db.facts_of(rel)) {
      if (!MatchesPattern(pattern, db.tuple_of(fact))) continue;
      lists[i].push_back(FactInfo{db.tuple_of(fact), db.is_endogenous(fact)});
      if (db.is_endogenous(fact)) ++relevant_endo;
    }
  }
  SHAPCQ_CHECK(relevant_endo == EndoCount(lists));
  const size_t free_endo = db.endogenous_count() - relevant_endo;
  CountVector core = CoreCount(q, lists);
  return Result<CountVector>::Ok(core.Convolve(CountVector::All(free_endo)));
}

}  // namespace shapcq
