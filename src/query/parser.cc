#include "query/parser.h"

#include <cctype>
#include <sstream>

#include "util/check.h"

namespace shapcq {

namespace {

struct Token {
  enum class Kind {
    kIdent,
    kNumber,
    kQuoted,
    kLParen,
    kRParen,
    kComma,
    kImplies,  // ":-"
    kNot,      // "not", "!", "¬"
    kEnd,
  };
  Kind kind;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    size_t pos = 0;
    while (pos < input_.size()) {
      char c = input_[pos];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos;
        continue;
      }
      if (c == '(') {
        tokens.push_back({Token::Kind::kLParen, "("});
        ++pos;
      } else if (c == ')') {
        tokens.push_back({Token::Kind::kRParen, ")"});
        ++pos;
      } else if (c == ',') {
        tokens.push_back({Token::Kind::kComma, ","});
        ++pos;
      } else if (c == '!') {
        tokens.push_back({Token::Kind::kNot, "!"});
        ++pos;
      } else if (c == ':' && pos + 1 < input_.size() &&
                 input_[pos + 1] == '-') {
        tokens.push_back({Token::Kind::kImplies, ":-"});
        pos += 2;
      } else if (static_cast<unsigned char>(c) == 0xC2 &&
                 pos + 1 < input_.size() &&
                 static_cast<unsigned char>(input_[pos + 1]) == 0xAC) {
        // UTF-8 "¬".
        tokens.push_back({Token::Kind::kNot, "¬"});
        pos += 2;
      } else if (c == '\'') {
        size_t end = input_.find('\'', pos + 1);
        if (end == std::string::npos) {
          return Result<std::vector<Token>>::Error(
              "unterminated quoted constant");
        }
        tokens.push_back(
            {Token::Kind::kQuoted, input_.substr(pos + 1, end - pos - 1)});
        pos = end + 1;
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && pos + 1 < input_.size() &&
                  std::isdigit(static_cast<unsigned char>(input_[pos + 1])))) {
        size_t start = pos;
        if (c == '-') ++pos;
        while (pos < input_.size() &&
               std::isdigit(static_cast<unsigned char>(input_[pos]))) {
          ++pos;
        }
        tokens.push_back({Token::Kind::kNumber, input_.substr(start, pos - start)});
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos;
        while (pos < input_.size() &&
               (std::isalnum(static_cast<unsigned char>(input_[pos])) ||
                input_[pos] == '_')) {
          ++pos;
        }
        std::string word = input_.substr(start, pos - start);
        if (word == "not" || word == "NOT") {
          tokens.push_back({Token::Kind::kNot, word});
        } else {
          tokens.push_back({Token::Kind::kIdent, word});
        }
      } else {
        return Result<std::vector<Token>>::Error(
            std::string("unexpected character '") + c + "'");
      }
    }
    tokens.push_back({Token::Kind::kEnd, ""});
    return Result<std::vector<Token>>::Ok(std::move(tokens));
  }

 private:
  const std::string& input_;
};

class RuleParser {
 public:
  explicit RuleParser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  Result<CQ> Parse() {
    // Head.
    if (!Is(Token::Kind::kIdent)) return Fail("expected query name");
    CQ query(Take().text);
    if (!Is(Token::Kind::kLParen)) return Fail("expected '(' after name");
    Take();
    std::vector<std::string> head;
    while (!Is(Token::Kind::kRParen)) {
      if (!Is(Token::Kind::kIdent)) {
        return Fail("head arguments must be variables");
      }
      head.push_back(Take().text);
      if (Is(Token::Kind::kComma)) Take();
    }
    Take();  // ')'
    query.SetHeadByName(head);
    if (!Is(Token::Kind::kImplies)) return Fail("expected ':-'");
    Take();

    // Body.
    for (;;) {
      bool negated = false;
      if (Is(Token::Kind::kNot)) {
        negated = true;
        Take();
      }
      if (!Is(Token::Kind::kIdent)) return Fail("expected relation name");
      Atom atom;
      atom.relation = Take().text;
      atom.negated = negated;
      if (!Is(Token::Kind::kLParen)) return Fail("expected '(' in atom");
      Take();
      while (!Is(Token::Kind::kRParen)) {
        if (Is(Token::Kind::kIdent)) {
          atom.terms.push_back(
              Term::MakeVar(query.GetOrAddVar(Take().text)));
        } else if (Is(Token::Kind::kNumber) || Is(Token::Kind::kQuoted)) {
          atom.terms.push_back(Term::MakeConst(V(Take().text)));
        } else {
          return Fail("expected term");
        }
        if (Is(Token::Kind::kComma)) Take();
      }
      Take();  // ')'
      query.AddAtom(std::move(atom));
      if (Is(Token::Kind::kComma)) {
        Take();
        continue;
      }
      break;
    }
    if (!Is(Token::Kind::kEnd)) return Fail("trailing input after rule");
    return Result<CQ>::Ok(std::move(query));
  }

 private:
  bool Is(Token::Kind kind) const { return tokens_[pos_].kind == kind; }
  Token Take() { return tokens_[pos_++]; }
  Result<CQ> Fail(const std::string& message) const {
    std::ostringstream out;
    out << message << " (at token " << pos_ << " '" << tokens_[pos_].text
        << "')";
    return Result<CQ>::Error(out.str());
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<CQ> ParseCQ(const std::string& text) {
  auto tokens = Lexer(text).Tokenize();
  if (!tokens.ok()) return Result<CQ>::Error(tokens.error());
  return RuleParser(std::move(tokens).value()).Parse();
}

CQ MustParseCQ(const std::string& text) {
  auto result = ParseCQ(text);
  SHAPCQ_CHECK_MSG(result.ok(), (text + ": " + result.error()).c_str());
  return std::move(result).value();
}

Result<UCQ> ParseUCQ(const std::string& text) {
  UCQ ucq;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    bool blank = true;
    for (char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
    }
    if (blank) continue;
    auto cq = ParseCQ(line);
    if (!cq.ok()) return Result<UCQ>::Error(cq.error());
    ucq.AddDisjunct(std::move(cq).value());
  }
  if (ucq.size() == 0) return Result<UCQ>::Error("no rules in UCQ");
  return Result<UCQ>::Ok(std::move(ucq));
}

UCQ MustParseUCQ(const std::string& text) {
  auto result = ParseUCQ(text);
  SHAPCQ_CHECK_MSG(result.ok(), (text + ": " + result.error()).c_str());
  return std::move(result).value();
}

}  // namespace shapcq
