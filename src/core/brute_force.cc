#include "core/brute_force.h"

#include "core/game.h"
#include "eval/homomorphism.h"
#include "util/check.h"
#include "util/combinatorics.h"

namespace shapcq {

namespace {

template <typename Query>
Rational ShapleyBruteForceImpl(const Query& q, const Database& db, FactId f) {
  SHAPCQ_CHECK_MSG(db.is_endogenous(f), "Shapley of an exogenous fact");
  QueryGame game(q, db);
  return ShapleyBySubsets(game, db.endo_index(f));
}

template <typename Query>
CountVector CountSatBruteForceImpl(const Query& q, const Database& db) {
  const size_t n = db.endogenous_count();
  SHAPCQ_CHECK_MSG(n <= 30, "brute-force counting beyond 2^30 is a bug");
  std::vector<BigInt> counts(n + 1, BigInt(0));
  std::vector<bool> world(n, false);
  const uint64_t subsets = uint64_t{1} << n;
  for (uint64_t mask = 0; mask < subsets; ++mask) {
    size_t k = 0;
    for (size_t p = 0; p < n; ++p) {
      world[p] = (mask >> p) & 1;
      if (world[p]) ++k;
    }
    if (EvalBoolean(q, db, world)) counts[k] += BigInt(1);
  }
  return CountVector::FromCounts(std::move(counts));
}

}  // namespace

Rational ShapleyBruteForce(const CQ& q, const Database& db, FactId f) {
  return ShapleyBruteForceImpl(q, db, f);
}

Rational ShapleyBruteForce(const UCQ& q, const Database& db, FactId f) {
  return ShapleyBruteForceImpl(q, db, f);
}

CountVector CountSatBruteForce(const CQ& q, const Database& db) {
  return CountSatBruteForceImpl(q, db);
}

CountVector CountSatBruteForce(const UCQ& q, const Database& db) {
  return CountSatBruteForceImpl(q, db);
}

}  // namespace shapcq
