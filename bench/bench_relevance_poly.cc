// E9 — Proposition 5.7: for polarity-consistent CQ¬s, IsPosRelevant /
// IsNegRelevant run in polynomial time. Scaling on q1-shaped databases,
// with brute-force agreement spot-checked at small sizes.

#include <chrono>
#include <cstdio>

#include "core/relevance.h"
#include "datasets/synthetic.h"
#include "datasets/university.h"

int main() {
  using namespace shapcq;
  using Clock = std::chrono::steady_clock;
  const CQ q1 = UniversityQ1();

  std::printf("E9: IsPosRelevant/IsNegRelevant scaling on q1-shaped data\n\n");
  std::printf("%8s %8s %16s %16s %8s\n", "students", "|Dn|", "all-facts "
              "pos(ms)", "all-facts neg(ms)", "agree");
  for (int students : {4, 8, 16, 32, 64, 128}) {
    Database db = BuildStudentScalingDb(students, 2);
    auto t0 = Clock::now();
    for (FactId f : db.endogenous_facts()) {
      (void)IsPosRelevant(q1, db, f).value();
    }
    auto t1 = Clock::now();
    for (FactId f : db.endogenous_facts()) {
      (void)IsNegRelevant(q1, db, f).value();
    }
    auto t2 = Clock::now();

    // Brute-force agreement for small instances only.
    const char* agree = "-";
    if (db.endogenous_count() <= 12) {
      bool all = true;
      for (FactId f : db.endogenous_facts()) {
        all &= IsPosRelevant(q1, db, f).value() ==
               IsPosRelevantBruteForce(q1, db, f);
        all &= IsNegRelevant(q1, db, f).value() ==
               IsNegRelevantBruteForce(q1, db, f);
      }
      agree = all ? "yes" : "NO";
    }
    std::printf("%8d %8zu %16.2f %16.2f %8s\n", students,
                db.endogenous_count(),
                std::chrono::duration<double, std::milli>(t1 - t0).count(),
                std::chrono::duration<double, std::milli>(t2 - t1).count(),
                agree);
  }
  std::printf("\nshape: near-linear growth in |Dn| for the whole-database "
              "screen —\npolynomial data complexity, as Proposition 5.7 "
              "states (contrast E8).\n");
  return 0;
}
