#!/usr/bin/env python3
"""Fresh-process differential sweep: shapcq_server vs shapcq_cli.

Generates (query, delta-sequence) sessions, drives ONE long-lived
shapcq_server process over all of them interleaved (with eviction
pressure: --max-resident 1), and checks that the attribution table of
EVERY REPORT is bit-identical to a fresh shapcq_cli process run on the
equivalently mutated database — including reports served right after an
engine was LRU-evicted and rebuilt.

The compared table spans the column header through the "total" line
(everything value-bearing). The one line excluded is the engine label,
which intentionally differs: "CntSat (incremental)" on the server,
"CntSat" in a fresh CLI run.

usage: server_differential.py SHAPCQ_SERVER SHAPCQ_CLI [--sessions 12]
"""

import argparse
import random
import subprocess
import sys

# Hierarchical, self-join-free, safe CQ(not)s (the incremental engine's
# scope), covering negation, shared variables and tree-shaped joins.
QUERIES = [
    "q() :- R(x)",
    "q() :- R(x), not S(x)",
    "q() :- Stud(x), not TA(x), Reg(x,y)",
    "q() :- R(x,y)",
    "q() :- R(x), S(x,y), not T(x,y)",
    "q() :- A(x), not B(x), C(x,y)",
    "q() :- E(x,y), not F(x,y)",
    "q() :- R(x), S(x), not T(x)",
    "q() :- P(x), Q(x,y), not R(x,y)",
    "q() :- U(x), not V(x), W(x,y), not X(x,y)",
    "q() :- M(x,y), N(y)",
    "q() :- K(x), L(x,y)",
]


def atoms_of(query):
    """[(relation, arity)] of a QUERIES entry (constant-free literals)."""
    out = []
    for literal in query.split(":-")[1].split("),"):
        literal = literal.strip().rstrip(")")
        if literal.startswith("not "):
            literal = literal[4:]
        relation, args = literal.split("(")
        args = args.strip()
        out.append((relation.strip(), 0 if not args else args.count(",") + 1))
    return out


class ShadowDb:
    """Mirrors a session's database: insertion-ordered live literals (the
    order Database::ToString would print, so a fresh parse is equivalent)."""

    def __init__(self):
        self.facts = []

    @staticmethod
    def literal(relation, tuple_, endo):
        return f"{relation}({','.join(tuple_)}){'*' if endo else ''}"

    def has(self, relation, tuple_):
        bare = self.literal(relation, tuple_, False)
        return any(fact.rstrip("*") == bare for fact in self.facts)

    def insert(self, relation, tuple_, endo):
        self.facts.append(self.literal(relation, tuple_, endo))

    def delete(self, literal):
        self.facts.remove(literal)

    def to_db_text(self):
        return " ".join(self.facts) if self.facts else " "


def report_blocks(stdout, sid):
    """Output between each 'report <sid> ...' header and its end marker."""
    blocks, current = [], None
    for line in stdout.splitlines():
        if line.startswith(f"report {sid} "):
            current = []
        elif line == f"end report {sid}":
            blocks.append("\n".join(current))
            current = None
        elif current is not None:
            current.append(line)
    return blocks


def extract_table(text):
    """The attribution table in `text`: header line through total line."""
    current = None
    for line in text.splitlines():
        if line.startswith("fact "):
            current = [line]
        elif current is not None:
            current.append(line)
            if line.startswith("total"):
                return "\n".join(current)
    return None


def last_stat(stdout, key):
    """The value of `key=` on the last registry-wide stats line."""
    value = None
    for line in stdout.splitlines():
        if line.startswith("stats sessions="):
            for field in line.split():
                if field.startswith(key + "="):
                    value = int(field.split("=")[1])
    return value


def build_session(index, rng):
    query = QUERIES[index % len(QUERIES)]
    relations = atoms_of(query)
    shadow = ShadowDb()
    lines = [f"OPEN s{index} {query}"]
    oracles = []  # (db_text, query) snapshot per REPORT

    def mutate():
        if shadow.facts and rng.random() < 0.35:
            victim = rng.choice(shadow.facts)
            shadow.delete(victim)
            lines.append(f"DELTA s{index} - {victim}")
            return
        for _ in range(20):  # retry duplicate draws
            relation, arity = rng.choice(relations)
            tuple_ = tuple(f"c{rng.randrange(4)}" for _ in range(arity))
            if shadow.has(relation, tuple_):
                continue
            shadow.insert(relation, tuple_, rng.random() < 0.7)
            lines.append(f"DELTA s{index} + {shadow.facts[-1]}")
            return

    for _ in range(rng.randrange(3, 5)):  # batches, one REPORT after each
        for _ in range(rng.randrange(2, 5)):
            mutate()
        lines.append(f"REPORT s{index}")
        oracles.append((shadow.to_db_text(), query))
    lines.append(f"CLOSE s{index}")
    return {"lines": lines, "oracles": oracles}


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("server")
    parser.add_argument("cli")
    parser.add_argument("--sessions", type=int, default=12)
    parser.add_argument("--seed", type=int, default=20260731)
    args = parser.parse_args()
    rng = random.Random(args.seed)

    sessions = [build_session(i, rng) for i in range(args.sessions)]

    # Interleave round-robin, one line at a time: with --max-resident 1 every
    # session's engine is evicted by its neighbors between batches, so its
    # next REPORT readmits (rebuilds) it.
    script, cursors = [], [0] * len(sessions)
    remaining = sum(len(s["lines"]) for s in sessions)
    while remaining:
        for i, session in enumerate(sessions):
            if cursors[i] < len(session["lines"]):
                script.append(session["lines"][cursors[i]])
                cursors[i] += 1
                remaining -= 1
    script.append("STATS")

    server = subprocess.run(
        [args.server, "--max-resident", "1"],
        input="\n".join(script) + "\n",
        capture_output=True, text=True)
    if server.returncode != 0:
        print("server exited non-zero:\n" + server.stdout + server.stderr,
              file=sys.stderr)
        return 1

    failures = 0
    total_reports = 0
    for index, session in enumerate(sessions):
        sid = f"s{index}"
        blocks = report_blocks(server.stdout, sid)
        if len(blocks) != len(session["oracles"]):
            print(f"{sid}: expected {len(session['oracles'])} reports, "
                  f"server emitted {len(blocks)}", file=sys.stderr)
            failures += 1
            continue
        for report_index, (db_text, query) in enumerate(session["oracles"]):
            total_reports += 1
            server_table = extract_table(blocks[report_index])
            cli = subprocess.run(
                [args.cli, "--db", db_text, "--query", query],
                capture_output=True, text=True)
            if cli.returncode != 0:
                print(f"{sid} report {report_index}: cli failed: "
                      f"{cli.stderr}", file=sys.stderr)
                failures += 1
                continue
            cli_table = extract_table(cli.stdout)
            if server_table is None or cli_table is None:
                print(f"{sid} report {report_index}: missing table",
                      file=sys.stderr)
                failures += 1
            elif server_table != cli_table:
                print(f"{sid} report {report_index}: MISMATCH\n"
                      f"server:\n{server_table}\n"
                      f"cli ({db_text!r}):\n{cli_table}", file=sys.stderr)
                failures += 1

    # Eviction really happened: every engine build past the first per
    # session is a rebuild after LRU eviction.
    builds = last_stat(server.stdout, "builds")
    evictions = last_stat(server.stdout, "evictions")
    rebuilds = (builds or 0) - len(sessions)
    if not evictions or rebuilds <= 0:
        print(f"error: no eviction pressure (builds={builds}, "
              f"evictions={evictions}) — the sweep must cover "
              "rebuild-on-readmission", file=sys.stderr)
        failures += 1

    print(f"{len(sessions)} sessions, {total_reports} reports, "
          f"{builds} engine builds ({rebuilds} rebuilds after eviction, "
          f"{evictions} evictions), {failures} failures")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
