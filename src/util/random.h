// Deterministic pseudo-random generation for sampling and test workloads.
//
// A small xoshiro256** generator: fast, high quality, and — unlike
// std::mt19937 plus distribution templates — bit-for-bit reproducible across
// standard libraries, which keeps recorded experiment outputs stable.

#ifndef SHAPCQ_UTIL_RANDOM_H_
#define SHAPCQ_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace shapcq {

/// xoshiro256** pseudo-random generator with convenience distributions.
class Rng {
 public:
  /// Seeds deterministically via splitmix64 expansion of `seed`.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit output.
  uint64_t Next();
  /// Uniform in [0, bound); bound must be positive. Unbiased (rejection).
  uint64_t UniformInt(uint64_t bound);
  /// Uniform in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformInRange(int64_t lo, int64_t hi);
  /// Uniform double in [0, 1).
  double UniformDouble();
  /// Bernoulli trial.
  bool Bernoulli(double probability);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Returns a uniformly random permutation of 0..n-1.
  std::vector<size_t> Permutation(size_t n);

 private:
  uint64_t state_[4];
};

}  // namespace shapcq

#endif  // SHAPCQ_UTIL_RANDOM_H_
