// E13 — Section 3 Remarks: Shapley values of aggregate queries by linearity.
// The Count aggregate of the introduction (with exogenous Farmer) and the
// Sum-of-profits aggregate of the Remarks, scaling with data size and
// verified against the brute-force game at small sizes.

#include <chrono>
#include <cstdio>

#include "core/aggregate.h"
#include "datasets/exports.h"
#include "query/parser.h"
#include "util/random.h"

int main() {
  using namespace shapcq;
  using Clock = std::chrono::steady_clock;

  AggregateQuery agg = ExportCountAggregate();
  std::printf("E13: Count{ c | Farmer(m), Export(m,p,c), not Grows(c,p) }, "
              "Farmer exogenous\n\n");
  std::printf("%8s %8s %8s %14s %12s %7s\n", "farmers", "|Dn|", "answers",
              "linearity(ms)", "brute(ms)", "match");
  for (int farmers : {2, 3, 4, 6, 8}) {
    Rng rng(500 + static_cast<uint64_t>(farmers));
    Database db = BuildRandomExportDb(farmers, 3, 3, 2, 0.4, &rng);
    const FactId f = db.endogenous_facts()[0];
    const size_t answers = PotentialAnswers(agg.cq, db).size();

    auto t0 = Clock::now();
    const Rational fast = ShapleyAggregate(agg, db, f, {"Farmer"}).value();
    auto t1 = Clock::now();
    const double fast_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    double slow_ms = -1;
    bool match = true;
    if (db.endogenous_count() <= 15) {
      auto t2 = Clock::now();
      const Rational slow = ShapleyAggregateBruteForce(agg, db, f);
      auto t3 = Clock::now();
      slow_ms = std::chrono::duration<double, std::milli>(t3 - t2).count();
      match = slow == fast;
    }
    if (slow_ms < 0) {
      std::printf("%8d %8zu %8zu %14.2f %12s %7s\n", farmers,
                  db.endogenous_count(), answers, fast_ms, "(skip)", "-");
    } else {
      std::printf("%8d %8zu %8zu %14.2f %12.2f %7s\n", farmers,
                  db.endogenous_count(), answers, fast_ms, slow_ms,
                  match ? "yes" : "NO");
    }
  }

  // The Remarks' Sum aggregate (hierarchical groundings, no exo needed).
  std::printf("\nSum{ r | Export(p,c), not Grows(c,p), Profit(c,p,r) }:\n\n");
  Database db;
  db.AddEndo("Export", {V("rice"), V("JP")});
  db.AddEndo("Export", {V("tea"), V("JP")});
  db.AddEndo("Export", {V("rice"), V("FR")});
  db.AddEndo("Grows", {V("JP"), V("rice")});
  db.AddExo("Profit", {V("JP"), V("rice"), V(100)});
  db.AddExo("Profit", {V("JP"), V("tea"), V(70)});
  db.AddExo("Profit", {V("FR"), V("rice"), V(40)});
  AggregateQuery sum_agg;
  sum_agg.cq = MustParseCQ(
      "s(r) :- Export(p,c), not Grows(c,p), Profit(c,p,r)");
  sum_agg.kind = AggregateQuery::Kind::kSum;
  std::printf("%-26s %10s %10s %7s\n", "fact", "linearity", "brute",
              "match");
  for (FactId f : db.endogenous_facts()) {
    const Rational fast = ShapleyAggregate(sum_agg, db, f).value();
    const Rational slow = ShapleyAggregateBruteForce(sum_agg, db, f);
    std::printf("%-26s %10s %10s %7s\n", db.FactToString(f).c_str(),
                fast.ToString().c_str(), slow.ToString().c_str(),
                fast == slow ? "yes" : "NO");
  }
  return 0;
}
