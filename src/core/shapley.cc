#include "core/shapley.h"

#include "core/brute_force.h"
#include "core/count_sat.h"
#include "core/exoshap.h"
#include "core/shapley_engine.h"
#include "util/check.h"
#include "util/combinatorics.h"

namespace shapcq {

Rational ShapleyFromSatCounts(const CountVector& sat_with_f,
                              const CountVector& sat_without_f,
                              size_t endogenous_count) {
  const size_t n = endogenous_count;
  SHAPCQ_CHECK(n >= 1);
  SHAPCQ_CHECK(sat_with_f.universe_size() == n - 1);
  SHAPCQ_CHECK(sat_without_f.universe_size() == n - 1);
  BigInt numerator(0);
  for (size_t k = 0; k + 1 <= n; ++k) {
    const BigInt delta = sat_with_f.at(k) - sat_without_f.at(k);
    if (delta.IsZero()) continue;
    numerator += Combinatorics::Factorial(k) *
                 Combinatorics::Factorial(n - 1 - k) * delta;
  }
  return Rational(numerator, Combinatorics::Factorial(n));
}

Result<Rational> ShapleyViaCountSat(const CQ& q, const Database& db,
                                    FactId f) {
  if (!db.is_endogenous(f)) {
    return Result<Rational>::Error("Shapley of an exogenous fact");
  }
  const Database with_f = db.CopyWithFactExogenous(f);
  const Database without_f = db.CopyWithoutFact(f);
  auto sat_with = CountSat(q, with_f);
  if (!sat_with.ok()) return Result<Rational>::Error(sat_with.error());
  auto sat_without = CountSat(q, without_f);
  if (!sat_without.ok()) return Result<Rational>::Error(sat_without.error());
  return Result<Rational>::Ok(ShapleyFromSatCounts(
      sat_with.value(), sat_without.value(), db.endogenous_count()));
}

Result<std::vector<Rational>> ShapleyAllViaCountSat(
    const CQ& q, const Database& db, const ParallelOptions& options,
    EngineCore core, const CancelToken* cancel) {
  auto engine = ShapleyEngine::Build(q, db, core, cancel);
  if (!engine.ok()) {
    return Result<std::vector<Rational>>::Error(engine.error());
  }
  ShapleyEngine built = std::move(engine).value();
  return built.AllValues(options, cancel);
}

Rational ShapleyExact(const CQ& q, const Database& db, FactId f,
                      const ExoRelations& exo) {
  if (IsSafe(q) && IsSelfJoinFree(q)) {
    if (IsHierarchical(q)) {
      return ShapleyEngine::Build(q, db).value().Value(f);
    }
    if (!exo.empty() && !FindNonHierarchicalPath(q, exo).has_value() &&
        exo.count(db.schema().name(db.relation_of(f))) == 0) {
      return ExoShapShapley(q, db, exo, f).value();
    }
  }
  // FP^{#P}-hard territory (or out-of-scope query shape): exponential oracle.
  return ShapleyBruteForce(q, db, f);
}

}  // namespace shapcq
