// The unified ReportRequest grammar (service/report_request.h): structured
// key=value parsing, every error surface, and byte-equivalence of the
// deprecated positional form.

#include "service/report_request.h"

#include <gtest/gtest.h>

namespace shapcq {
namespace {

Result<ReportRequest> Parse(const std::string& args) {
  return ParseReportRequest(args, /*default_threads=*/1);
}

TEST(ReportRequestTest, EmptyArgsYieldDefaults) {
  auto parsed = Parse("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().top_k, 0u);
  EXPECT_EQ(parsed.value().threads, 1u);
  EXPECT_FALSE(parsed.value().approx.enabled());
  EXPECT_FALSE(parsed.value().deprecated_form);
}

TEST(ReportRequestTest, DefaultThreadsPropagate) {
  auto parsed = ParseReportRequest("", /*default_threads=*/4);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().threads, 4u);
  // An explicit key overrides the loop default.
  parsed = ParseReportRequest("threads=2", /*default_threads=*/4);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().threads, 2u);
}

TEST(ReportRequestTest, StructuredKeysParse) {
  auto parsed =
      Parse("top_k=3 threads=2 approx=0.1,0.02 seed=9 max_samples=500 "
            "force_approx=1");
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const ReportRequest& request = parsed.value();
  EXPECT_EQ(request.top_k, 3u);
  EXPECT_EQ(request.threads, 2u);
  EXPECT_DOUBLE_EQ(request.approx.epsilon, 0.1);
  EXPECT_DOUBLE_EQ(request.approx.delta, 0.02);
  EXPECT_EQ(request.approx.seed, 9u);
  EXPECT_EQ(request.approx.max_samples, 500u);
  EXPECT_TRUE(request.approx.force);
  EXPECT_FALSE(request.deprecated_form);

  const ReportOptions options = request.ToReportOptions();
  EXPECT_EQ(options.top_k, 3u);
  EXPECT_EQ(options.num_threads, 2u);
  EXPECT_TRUE(options.approx.enabled());
}

TEST(ReportRequestTest, ApproxWithoutDeltaDefaultsToFivePercent) {
  auto parsed = Parse("approx=0.25");
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed.value().approx.epsilon, 0.25);
  EXPECT_DOUBLE_EQ(parsed.value().approx.delta, 0.05);
}

TEST(ReportRequestTest, BadKeyRejected) {
  auto parsed = Parse("topk=3");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("unknown key 'topk'"), std::string::npos)
      << parsed.error();
}

TEST(ReportRequestTest, DuplicateKeyRejected) {
  auto parsed = Parse("top_k=3 top_k=4");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("duplicate key 'top_k'"), std::string::npos);
}

TEST(ReportRequestTest, OverflowRejected) {
  auto parsed = Parse("top_k=99999999999999999999");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("bad top_k value"), std::string::npos);
  parsed = Parse("seed=99999999999999999999 approx=0.1");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("bad seed value"), std::string::npos);
}

TEST(ReportRequestTest, MalformedPairRejected) {
  auto parsed = Parse("top_k=1 threads");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("expected key=value argument, got 'threads'"),
            std::string::npos);
  parsed = Parse("=3 top_k=1");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("expected key=value argument"),
            std::string::npos);
}

TEST(ReportRequestTest, BadApproxValuesRejected) {
  for (const char* args :
       {"approx=", "approx=abc", "approx=0.1,xyz", "approx=1.5",
        "approx=0.1,0", "approx=-0.1", "approx=0.1,,0.05", "approx=nan",
        "approx=0x1p-3"}) {
    auto parsed = Parse(args);
    EXPECT_FALSE(parsed.ok()) << args;
    EXPECT_NE(parsed.error().find("bad approx value"), std::string::npos)
        << args << " -> " << parsed.error();
  }
}

TEST(ReportRequestTest, BadForceApproxRejected) {
  auto parsed = Parse("approx=0.1 force_approx=yes");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("bad force_approx value"), std::string::npos);
}

TEST(ReportRequestTest, ApproxSatellitesRequireApprox) {
  for (const char* args : {"seed=1", "max_samples=5", "force_approx=1"}) {
    auto parsed = Parse(args);
    EXPECT_FALSE(parsed.ok()) << args;
    EXPECT_NE(parsed.error().find("require approx=EPS[,DELTA]"),
              std::string::npos)
        << parsed.error();
  }
}

// ---------------------------------------------------------------------------
// Deprecated positional compatibility.

TEST(ReportRequestTest, PositionalFormStillParses) {
  auto parsed = Parse("5 --threads 3");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().top_k, 5u);
  EXPECT_EQ(parsed.value().threads, 3u);
  EXPECT_TRUE(parsed.value().deprecated_form);
  EXPECT_FALSE(parsed.value().approx.enabled());
}

TEST(ReportRequestTest, PositionalAndStructuredFormsAgree) {
  auto positional = Parse("7 --threads 2");
  auto structured = Parse("top_k=7 threads=2");
  ASSERT_TRUE(positional.ok());
  ASSERT_TRUE(structured.ok());
  EXPECT_EQ(positional.value().top_k, structured.value().top_k);
  EXPECT_EQ(positional.value().threads, structured.value().threads);
  EXPECT_TRUE(positional.value().deprecated_form);
  EXPECT_FALSE(structured.value().deprecated_form);
}

TEST(ReportRequestTest, PositionalErrorsKeepOriginalStrings) {
  auto parsed = Parse("--threads x");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error(), "bad --threads value 'x'");
  parsed = Parse("--threads");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error(), "bad --threads value ''");
  parsed = Parse("3 nonsense");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error(), "unexpected argument 'nonsense'");
  parsed = Parse("3 4");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error(), "unexpected argument '4'");
}

}  // namespace
}  // namespace shapcq
