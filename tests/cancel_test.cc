// Cancellation-safety battery: the CancelToken primitive, the deadline keys
// of the unified ReportRequest grammar, and — the core contract — that a
// cancelled Build / value sweep / delta patch / sampling run leaves every
// structure in a state from which the next UNdeadlined query is
// bit-identical to a fresh-engine oracle. Cancellation points are chosen
// deterministically with CancelToken::AtCheck (no timing), swept over a
// fuzz-style set of ordinals and over {1,2,4,8} worker threads; the suite
// names carry "Cancel"/"Deadline" so the TSan CI job picks them up.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/approx_engine.h"
#include "core/report.h"
#include "core/shapley_engine.h"
#include "db/textio.h"
#include "query/parser.h"
#include "service/engine_registry.h"
#include "service/report_request.h"
#include "util/cancel.h"
#include "util/rational.h"

namespace shapcq {
namespace {

// ---------------------------------------------------------------------------
// CancelToken unit tests.
// ---------------------------------------------------------------------------

TEST(CancelTokenTest, DefaultTokenNeverExpires) {
  CancelToken token;
  EXPECT_FALSE(token.Enabled());
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(token.Expired());
}

TEST(CancelTokenTest, ZeroMillisecondDeadlineIsExpiredAtFirstCheck) {
  CancelToken token = CancelToken::AfterMillis(0);
  EXPECT_TRUE(token.Enabled());
  EXPECT_TRUE(token.Expired());
}

TEST(CancelTokenTest, DistantDeadlineDoesNotFire) {
  CancelToken token = CancelToken::AfterMillis(1000 * 60 * 60);
  EXPECT_TRUE(token.Enabled());
  EXPECT_FALSE(token.Expired());
}

TEST(CancelTokenTest, AtCheckFiresOnTheKthPollAndLatches) {
  CancelToken token = CancelToken::AtCheck(3);
  EXPECT_FALSE(token.Expired());
  EXPECT_FALSE(token.Expired());
  EXPECT_TRUE(token.Expired());
  // Latched: true forever after the first hit.
  EXPECT_TRUE(token.Expired());
  EXPECT_TRUE(token.Expired());
}

TEST(CancelTokenTest, AtCheckZeroBehavesLikeImmediateExpiry) {
  CancelToken token = CancelToken::AtCheck(0);
  EXPECT_TRUE(token.Expired());
}

TEST(CancelTokenTest, RequestCancelTripsTheNextPoll) {
  CancelToken token;
  EXPECT_FALSE(token.Expired());  // not yet enabled: one cheap branch
  token.RequestCancel();
  EXPECT_TRUE(token.Enabled());
  EXPECT_TRUE(token.Expired());
  EXPECT_TRUE(token.Expired());
}

TEST(CancelTokenTest, ArmDeadlineOnExistingTokenEnablesIt) {
  CancelToken token;
  EXPECT_FALSE(token.Enabled());
  token.ArmDeadlineMillis(0);
  EXPECT_TRUE(token.Enabled());
  EXPECT_TRUE(token.Expired());
}

TEST(CancelTokenTest, IsCancelledRecognizesThePayload) {
  EXPECT_TRUE(CancelToken::IsCancelled(CancelToken::kCancelledMessage));
  EXPECT_TRUE(CancelToken::IsCancelled(
      std::string("build: ") + CancelToken::kCancelledMessage));
  EXPECT_FALSE(CancelToken::IsCancelled("cancelled"));
  EXPECT_FALSE(CancelToken::IsCancelled("some other error"));
}

TEST(DeadlineMessageTest, PayloadIsDeterministic) {
  EXPECT_EQ(DeadlineExceededMessage(250),
            "[E_DEADLINE] deadline_ms=250 exceeded");
  // deadline_ms = 0: the expiry came from a caller token, not a budget.
  EXPECT_EQ(DeadlineExceededMessage(0), "[E_DEADLINE] cancelled");
}

// ---------------------------------------------------------------------------
// ReportRequest grammar: the deadline keys ride the strict parser.
// ---------------------------------------------------------------------------

TEST(DeadlineRequestParseTest, ParsesDeadlineAndPolicyKeys) {
  auto parsed =
      ParseReportRequest("deadline_ms=250 on_deadline=approx top_k=3", 1);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().deadline_ms, 250u);
  EXPECT_TRUE(parsed.value().deadline_in_request);
  EXPECT_EQ(parsed.value().on_deadline, OnDeadline::kApprox);
  EXPECT_EQ(parsed.value().top_k, 3u);

  const ReportOptions options = parsed.value().ToReportOptions();
  EXPECT_EQ(options.deadline_ms, 250u);
  EXPECT_EQ(options.on_deadline, OnDeadline::kApprox);
}

TEST(DeadlineRequestParseTest, ZeroDeadlineStillMarksTheRequest) {
  // deadline_ms=0 must be distinguishable from "no deadline key": it is the
  // per-request opt-out of a server --default-deadline-ms.
  auto parsed = ParseReportRequest("deadline_ms=0", 1);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().deadline_ms, 0u);
  EXPECT_TRUE(parsed.value().deadline_in_request);
  EXPECT_EQ(parsed.value().on_deadline, OnDeadline::kError);
}

TEST(DeadlineRequestParseTest, AbsentKeysLeaveDefaults) {
  auto parsed = ParseReportRequest("top_k=2", 1);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().deadline_ms, 0u);
  EXPECT_FALSE(parsed.value().deadline_in_request);
}

TEST(DeadlineRequestParseTest, RejectsNonNumericDeadline) {
  auto parsed = ParseReportRequest("deadline_ms=soon", 1);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error(), "bad deadline_ms value 'soon'");
}

TEST(DeadlineRequestParseTest, RejectsTrailingJunkOnDeadline) {
  // ParseSizeStrict rigor: "5x", "5 ", "+5" and "" are all rejected.
  for (const char* bad : {"5x", "+5", "", "0x10", " 5"}) {
    auto parsed =
        ParseReportRequest(std::string("deadline_ms=") + bad, 1);
    EXPECT_FALSE(parsed.ok()) << "accepted deadline_ms='" << bad << "'";
  }
}

TEST(DeadlineRequestParseTest, RejectsUnknownPolicy) {
  auto parsed = ParseReportRequest("on_deadline=later", 1);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error(),
            "bad on_deadline value 'later' (expected error or approx)");
}

TEST(DeadlineRequestParseTest, RejectsDuplicateDeadlineKey) {
  auto parsed = ParseReportRequest("deadline_ms=1 deadline_ms=2", 1);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error(), "duplicate key 'deadline_ms'");
}

TEST(DeadlineRequestParseTest, UnknownKeyErrorListsTheDeadlineKeys) {
  auto parsed = ParseReportRequest("deadline=5", 1);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error(),
            "unknown key 'deadline' (expected top_k, threads, approx, seed, "
            "max_samples, force_approx, engine, deadline_ms or on_deadline)");
}

TEST(DeadlineRequestParseTest, DeprecatedPositionalFormCarriesNoDeadline) {
  auto parsed = ParseReportRequest("3 --threads 2", 1);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_TRUE(parsed.value().deprecated_form);
  EXPECT_FALSE(parsed.value().deadline_in_request);
  EXPECT_EQ(parsed.value().deadline_ms, 0u);
}

// ---------------------------------------------------------------------------
// The cancellation-safety battery.
//
// Fixtures: a hierarchical query over a database wide enough to have many
// orbits and recursion nodes (so every AtCheck ordinal below lands inside
// real work), and a non-hierarchical one for the sampling tier.
// ---------------------------------------------------------------------------

const char* const kHierarchicalQuery =
    "q() :- Stud(x), not TA(x), Reg(x,y)";
const char* const kNonHierarchicalQuery = "q() :- R(x,y), S(x), T(y)";

Database MakeHierarchicalDb(size_t students) {
  std::string text;
  for (size_t i = 0; i < students; ++i) {
    const std::string s = "s" + std::to_string(i);
    text += "Stud(" + s + ") ";
    text += "Reg(" + s + ",c" + std::to_string(i % 7) + ")* ";
    if (i % 3 == 0) text += "TA(" + s + ")* ";
    if (i % 5 == 0) text += "Reg(" + s + ",extra)* ";
  }
  return MustParseDatabase(text);
}

Database MakeNonHierarchicalDb() {
  std::string text;
  for (int i = 0; i < 6; ++i) {
    const std::string a = "a" + std::to_string(i);
    const std::string b = "b" + std::to_string(i % 3);
    text += "R(" + a + "," + b + ")* ";
    text += "S(" + a + ")" + (i % 2 == 0 ? "* " : " ");
    if (i < 3) text += "T(" + b + ")* ";
  }
  return MustParseDatabase(text);
}

// Deterministic fuzz: a fixed LCG walk over cancellation ordinals, spanning
// "immediately", "early", and "deep into the run". The same points every
// run — reproducibility beats novelty for a regression battery.
std::vector<uint64_t> FuzzCheckPoints() {
  std::vector<uint64_t> points = {1, 2, 3};
  uint64_t x = 0x2545F4914F6CDD1Dull;
  for (int i = 0; i < 7; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    points.push_back(1 + (x >> 33) % 400);
  }
  return points;
}

const std::vector<size_t> kThreadCounts = {1, 2, 4, 8};

// The oracle: serial values of a fresh, uncancelled engine.
std::vector<Rational> OracleValues(const CQ& q, const Database& db) {
  auto built = ShapleyEngine::Build(q, db);
  SHAPCQ_CHECK_MSG(built.ok(), built.error().c_str());
  ShapleyEngine engine = std::move(built).value();
  return engine.AllValues();
}

TEST(CancelBatteryTest, CancelledBuildDiscardsCleanlyThenRetryIsIdentical) {
  const CQ q = MustParseCQ(kHierarchicalQuery);
  const Database db = MakeHierarchicalDb(40);
  const std::vector<Rational> oracle = OracleValues(q, db);

  for (const uint64_t k : FuzzCheckPoints()) {
    CancelToken token = CancelToken::AtCheck(k);
    auto built = ShapleyEngine::Build(q, db, EngineCore::kArena, &token);
    if (!built.ok()) {
      EXPECT_TRUE(CancelToken::IsCancelled(built.error())) << built.error();
    }
    // Cancelled or not, a fresh uncancelled build over the same (untouched)
    // database reproduces the oracle bit for bit.
    auto retry = ShapleyEngine::Build(q, db);
    ASSERT_TRUE(retry.ok()) << retry.error();
    ShapleyEngine fresh = std::move(retry).value();
    EXPECT_EQ(fresh.AllValues(), oracle) << "check point " << k;
  }
}

TEST(CancelBatteryTest, CancelledSweepResumesBitIdenticalAtEveryThreadCount) {
  const CQ q = MustParseCQ(kHierarchicalQuery);
  const Database db = MakeHierarchicalDb(40);
  const std::vector<Rational> oracle = OracleValues(q, db);

  for (const size_t threads : kThreadCounts) {
    for (const uint64_t k : FuzzCheckPoints()) {
      auto built = ShapleyEngine::Build(q, db);
      ASSERT_TRUE(built.ok()) << built.error();
      ShapleyEngine engine = std::move(built).value();

      CancelToken token = CancelToken::AtCheck(k);
      ParallelOptions parallel;
      parallel.num_threads = threads;
      auto swept = engine.AllValues(parallel, &token);
      if (swept.ok()) {
        EXPECT_EQ(swept.value(), oracle)
            << "threads " << threads << " check " << k;
      } else {
        EXPECT_TRUE(CancelToken::IsCancelled(swept.error()))
            << swept.error();
      }
      // Partial memo resume: whatever the cancelled sweep finished stays,
      // and the undeadlined sweep completes to the oracle values.
      EXPECT_EQ(engine.AllValues(parallel), oracle)
          << "threads " << threads << " check " << k;
    }
  }
}

TEST(CancelBatteryTest, CancelledPatchKeepsEnginePrefixConsistent) {
  const CQ q = MustParseCQ(kHierarchicalQuery);

  for (const uint64_t k : FuzzCheckPoints()) {
    Database db = MakeHierarchicalDb(12);
    auto built = ShapleyEngine::Build(q, db);
    ASSERT_TRUE(built.ok()) << built.error();
    ShapleyEngine engine = std::move(built).value();

    std::vector<FactDelta> delta;
    for (int i = 0; i < 8; ++i) {
      const std::string s = "n" + std::to_string(i);
      delta.push_back(FactDelta::Insert("Stud", {V(s)}, false));
      delta.push_back(FactDelta::Insert("Reg", {V(s), V("os")}, true));
    }
    delta.push_back(FactDelta::Delete(db.FindFact("Reg", {V("s0"), V("c0")})));

    CancelToken token = CancelToken::AtCheck(k);
    auto applied = engine.ApplyDelta(db, delta, &token);
    if (!applied.ok()) {
      EXPECT_TRUE(CancelToken::IsCancelled(applied.error()))
          << applied.error();
    }
    // The contract: engine state == "the applied prefix", exactly. The
    // engine mutates db in lock step, so a fresh build over db is the
    // prefix oracle — and the patched engine must match it bit for bit.
    EXPECT_EQ(engine.AllValues(), OracleValues(q, db)) << "check " << k;
  }
}

TEST(CancelBatteryTest, CancelledSamplingRunNeverPerturbsLaterValues) {
  const CQ q = MustParseCQ(kNonHierarchicalQuery);
  const Database db = MakeNonHierarchicalDb();

  ApproxSpec spec;
  spec.epsilon = 0.25;
  spec.delta = 0.1;
  spec.seed = 7;
  spec.max_samples = 64;

  for (const size_t threads : kThreadCounts) {
    // Oracle rows: a fresh engine, same spec and thread count, no token.
    auto fresh = ApproxEngine::Create(q, db, ApproxEngine::Options{});
    ASSERT_TRUE(fresh.ok()) << fresh.error();
    ApproxEngine oracle_engine = std::move(fresh).value();
    auto oracle = oracle_engine.EstimateAll(spec, threads);
    ASSERT_TRUE(oracle.ok()) << oracle.error();

    for (const uint64_t k : FuzzCheckPoints()) {
      auto created = ApproxEngine::Create(q, db, ApproxEngine::Options{});
      ASSERT_TRUE(created.ok()) << created.error();
      ApproxEngine engine = std::move(created).value();

      CancelToken token = CancelToken::AtCheck(k);
      auto sampled = engine.EstimateAll(spec, threads, &token);
      if (!sampled.ok()) {
        EXPECT_TRUE(CancelToken::IsCancelled(sampled.error()))
            << sampled.error();
      }
      // Whatever the cancelled run warmed in the coalition cache, a retry
      // on the same engine reproduces the oracle rows bit for bit.
      auto retry = engine.EstimateAll(spec, threads);
      ASSERT_TRUE(retry.ok()) << retry.error();
      ASSERT_EQ(retry.value().size(), oracle.value().size());
      for (size_t i = 0; i < oracle.value().size(); ++i) {
        EXPECT_EQ(retry.value()[i].estimate, oracle.value()[i].estimate)
            << "threads " << threads << " check " << k << " row " << i;
        EXPECT_EQ(retry.value()[i].ci_radius, oracle.value()[i].ci_radius);
        EXPECT_EQ(retry.value()[i].samples, oracle.value()[i].samples);
      }
    }
  }
}

TEST(CancelBatteryTest, ConcurrentRequestCancelStopsAParallelSweep) {
  // The cooperative flag flipped from outside the sweep (the socket-server
  // shape: another thread decides to cancel). Pre-cancelled here so the
  // outcome is deterministic; the point is the flag path, not the race.
  const CQ q = MustParseCQ(kHierarchicalQuery);
  const Database db = MakeHierarchicalDb(40);
  auto built = ShapleyEngine::Build(q, db);
  ASSERT_TRUE(built.ok()) << built.error();
  ShapleyEngine engine = std::move(built).value();

  CancelToken token;
  token.RequestCancel();
  ParallelOptions parallel;
  parallel.num_threads = 4;
  auto swept = engine.AllValues(parallel, &token);
  ASSERT_FALSE(swept.ok());
  EXPECT_TRUE(CancelToken::IsCancelled(swept.error()));
  EXPECT_EQ(engine.AllValues(parallel), OracleValues(q, db));
}

// ---------------------------------------------------------------------------
// Registry deadline semantics: the serving layer's consistency guarantees.
// ---------------------------------------------------------------------------

MutationSpec Insert(const std::string& literal) {
  auto parsed = ParseMutationLine("+ " + literal);
  SHAPCQ_CHECK_MSG(parsed.ok(), parsed.error().c_str());
  return std::move(parsed).value();
}

void LoadSession(EngineRegistry* registry, const std::string& id,
                 const Database& db) {
  for (size_t slot = 0; slot < db.fact_slot_count(); ++slot) {
    const FactId fact = static_cast<FactId>(slot);
    if (db.is_removed(fact)) continue;
    MutationSpec mutation;
    mutation.op = MutationSpec::Op::kInsert;
    mutation.fact.relation = db.schema().name(db.relation_of(fact));
    mutation.fact.tuple = db.tuple_of(fact);
    mutation.fact.endogenous = db.is_endogenous(fact);
    auto applied = registry->ApplyMutation(id, mutation);
    ASSERT_TRUE(applied.ok()) << applied.error();
  }
}

void ExpectSameRows(const AttributionReport& got,
                    const AttributionReport& want) {
  ASSERT_EQ(got.rows.size(), want.rows.size());
  for (size_t i = 0; i < want.rows.size(); ++i) {
    EXPECT_EQ(got.rows[i].fact, want.rows[i].fact) << i;
    EXPECT_EQ(got.rows[i].value, want.rows[i].value) << i;
  }
  EXPECT_EQ(got.total, want.total);
}

TEST(DeadlineRegistryTest, AlreadyExpiredTokenFailsFastAndLeavesNoResidue) {
  const CQ q = MustParseCQ(kHierarchicalQuery);
  const Database db = MakeHierarchicalDb(20);
  EngineRegistry registry;
  ASSERT_TRUE(registry.Open("s", q).ok());
  LoadSession(&registry, "s", db);

  CancelToken token = CancelToken::AfterMillis(0);
  ReportOptions expired;
  expired.cancel = &token;
  auto report = registry.Report("s", expired);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error(), DeadlineExceededMessage(0));

  // Fast path: the expiry was noticed before any build — no engine, no
  // build counted, the deadline counted once, globally and per session.
  EXPECT_EQ(registry.stats().deadline_exceeded, 1u);
  EXPECT_EQ(registry.stats().degraded_to_approx, 0u);
  EXPECT_EQ(registry.stats().engine_builds, 0u);
  EXPECT_FALSE(registry.Stats("s").value().engine_resident);
  EXPECT_EQ(registry.Stats("s").value().deadline_exceeded, 1u);

  // The undeadlined retry is bit-identical to a fresh oracle.
  auto retry = registry.Report("s", ReportOptions{});
  ASSERT_TRUE(retry.ok()) << retry.error();
  auto oracle = BuildAttributionReport(q, db, ReportOptions{});
  ASSERT_TRUE(oracle.ok()) << oracle.error();
  ExpectSameRows(retry.value(), oracle.value());
}

TEST(DeadlineRegistryTest, ExpiredExactReportDegradesToApproxWhenAsked) {
  const CQ q = MustParseCQ(kHierarchicalQuery);
  const Database db = MakeHierarchicalDb(20);
  EngineRegistry registry;
  ASSERT_TRUE(registry.Open("s", q).ok());
  LoadSession(&registry, "s", db);

  CancelToken token = CancelToken::AtCheck(1);
  ReportOptions degrade;
  degrade.cancel = &token;
  degrade.on_deadline = OnDeadline::kApprox;
  auto report = registry.Report("s", degrade);
  ASSERT_TRUE(report.ok()) << report.error();
  EXPECT_TRUE(report.value().approximate);
  EXPECT_FALSE(report.value().rows.empty());

  EXPECT_EQ(registry.stats().deadline_exceeded, 1u);
  EXPECT_EQ(registry.stats().degraded_to_approx, 1u);
  EXPECT_EQ(registry.stats().approx_reports, 1u);
  // Never cached: the degraded table is a deadline artifact, not a
  // requested approx spec.
  EXPECT_EQ(registry.stats().cached_approx_tables, 0u);

  auto retry = registry.Report("s", ReportOptions{});
  ASSERT_TRUE(retry.ok()) << retry.error();
  auto oracle = BuildAttributionReport(q, db, ReportOptions{});
  ASSERT_TRUE(oracle.ok()) << oracle.error();
  ExpectSameRows(retry.value(), oracle.value());
}

TEST(DeadlineRegistryTest, CancelledSweepKeepsEngineAccountingConsistent) {
  const CQ q = MustParseCQ(kHierarchicalQuery);
  const Database db = MakeHierarchicalDb(20);
  EngineRegistry registry;
  ASSERT_TRUE(registry.Open("s", q).ok());
  LoadSession(&registry, "s", db);

  // Make the engine resident and the cache warm, then invalidate the cache
  // with one more delta so the next report re-sweeps on the warm engine.
  ASSERT_TRUE(registry.Report("s", ReportOptions{}).ok());
  ASSERT_TRUE(registry.ApplyMutation("s", Insert("Reg(s1,late)*")).ok());

  // AtCheck(2): poll #1 is the registry's fast-path check (passes), poll #2
  // is the first orbit boundary of the sweep — a cancellation mid-sweep on
  // a resident engine, deterministically.
  CancelToken token = CancelToken::AtCheck(2);
  ReportOptions cancelled;
  cancelled.cancel = &token;
  auto report = registry.Report("s", cancelled);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error(), DeadlineExceededMessage(0));

  // Consistency after the cancelled sweep: the engine stays resident with a
  // refreshed (non-zero) byte estimate — the stripe accounting was
  // re-enforced on the error path, not skipped.
  auto session = registry.Stats("s");
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(session.value().engine_resident);
  EXPECT_GT(session.value().engine_bytes, 0u);
  EXPECT_EQ(session.value().deadline_exceeded, 1u);

  // And the next undeadlined report is bit-identical to a fresh engine over
  // the mutated database.
  auto retry = registry.Report("s", ReportOptions{});
  ASSERT_TRUE(retry.ok()) << retry.error();
  auto oracle =
      BuildAttributionReport(q, *registry.FindDatabase("s"), ReportOptions{});
  ASSERT_TRUE(oracle.ok()) << oracle.error();
  ExpectSameRows(retry.value(), oracle.value());
}

TEST(DeadlineRegistryTest, CancelledFirstBuildLeavesNothingResident) {
  const CQ q = MustParseCQ(kHierarchicalQuery);
  const Database db = MakeHierarchicalDb(20);
  EngineRegistry registry;
  ASSERT_TRUE(registry.Open("s", q).ok());
  LoadSession(&registry, "s", db);

  // AtCheck(2): past the fast path, into the build recursion.
  CancelToken token = CancelToken::AtCheck(2);
  ReportOptions cancelled;
  cancelled.cancel = &token;
  auto report = registry.Report("s", cancelled);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error(), DeadlineExceededMessage(0));

  // The partial build was discarded whole: nothing resident, nothing in
  // the byte accounting, and the session still reports clean.
  auto session = registry.Stats("s");
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE(session.value().engine_resident);
  EXPECT_EQ(session.value().engine_bytes, 0u);
  EXPECT_EQ(registry.stats().resident_bytes, 0u);

  auto retry = registry.Report("s", ReportOptions{});
  ASSERT_TRUE(retry.ok()) << retry.error();
  auto oracle = BuildAttributionReport(q, db, ReportOptions{});
  ASSERT_TRUE(oracle.ok()) << oracle.error();
  ExpectSameRows(retry.value(), oracle.value());
}

TEST(DeadlineRegistryTest, ApproxTierDeadlineIsTerminalNoDegradation) {
  const CQ q = MustParseCQ(kNonHierarchicalQuery);
  const Database db = MakeNonHierarchicalDb();
  EngineRegistry registry;
  auto opened = registry.Open("s", q);
  ASSERT_TRUE(opened.ok()) << opened.error();
  EXPECT_FALSE(opened.value());  // approx-only session
  LoadSession(&registry, "s", db);

  CancelToken token = CancelToken::AtCheck(1);
  ReportOptions options;
  options.approx.epsilon = 0.25;
  options.approx.delta = 0.1;
  options.cancel = &token;
  options.on_deadline = OnDeadline::kApprox;  // must NOT rescue the sampler
  auto report = registry.Report("s", options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error(), DeadlineExceededMessage(0));
  EXPECT_EQ(registry.stats().deadline_exceeded, 1u);
  EXPECT_EQ(registry.stats().degraded_to_approx, 0u);

  // The undeadlined sampling retry still reproduces bit-identically.
  ReportOptions plain;
  plain.approx = options.approx;
  auto retry = registry.Report("s", plain);
  ASSERT_TRUE(retry.ok()) << retry.error();
  EXPECT_TRUE(retry.value().approximate);
}

TEST(DeadlineRegistryTest, InflightGaugeIsZeroBetweenRequests) {
  const CQ q = MustParseCQ(kHierarchicalQuery);
  EngineRegistry registry;
  ASSERT_TRUE(registry.Open("s", q).ok());
  ASSERT_TRUE(registry.ApplyMutation("s", Insert("Stud(a)")).ok());
  ASSERT_TRUE(registry.ApplyMutation("s", Insert("Reg(a,os)*")).ok());
  EXPECT_EQ(registry.stats().inflight, 0u);
  ASSERT_TRUE(registry.Report("s", ReportOptions{}).ok());
  EXPECT_EQ(registry.stats().inflight, 0u);

  // Deadline outcomes decrement the gauge on their error paths too.
  CancelToken token = CancelToken::AfterMillis(0);
  ReportOptions expired;
  expired.cancel = &token;
  ASSERT_FALSE(registry.Report("s", expired).ok());
  EXPECT_EQ(registry.stats().inflight, 0u);
}

TEST(DeadlineRegistryTest, DeadlineMillisBudgetMapsIntoTheErrorPayload) {
  // A real millisecond budget (not a caller token): an already-huge-looking
  // budget never fires; a zero-work session under a 1 ms budget may or may
  // not fire, but the payload must carry the budget when it does.
  const CQ q = MustParseCQ(kHierarchicalQuery);
  const Database db = MakeHierarchicalDb(20);
  EngineRegistry registry;
  ASSERT_TRUE(registry.Open("s", q).ok());
  LoadSession(&registry, "s", db);

  ReportOptions generous;
  generous.deadline_ms = 60 * 1000;
  auto report = registry.Report("s", generous);
  ASSERT_TRUE(report.ok()) << report.error();

  auto oracle = BuildAttributionReport(q, db, ReportOptions{});
  ASSERT_TRUE(oracle.ok()) << oracle.error();
  ExpectSameRows(report.value(), oracle.value());
  EXPECT_EQ(registry.stats().deadline_exceeded, 0u);
}

}  // namespace
}  // namespace shapcq
