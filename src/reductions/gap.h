// The gap-property violation (Section 5.1 / Theorem 5.1).
//
// For monotone CQs, a nonzero Shapley value is at least 1/poly(|D|) — the
// "gap property" that turns the additive FPRAS into a multiplicative one.
// With negation it fails: this module builds the paper's database families
// whose distinguished fact has Shapley value exactly n!·n!/(2n+1)! ≤ 2^{-n},
// both for the concrete query R(x), S(x,y), ¬R(y) and for an arbitrary
// satisfiable, positively-connected, constant-free CQ¬ with a negated atom
// (the generic construction of the Theorem 5.1 proof).

#ifndef SHAPCQ_REDUCTIONS_GAP_H_
#define SHAPCQ_REDUCTIONS_GAP_H_

#include "db/database.h"
#include "query/cq.h"
#include "util/rational.h"
#include "util/result.h"

namespace shapcq {

/// A (database, fact) pair exhibiting an exponentially small Shapley value.
struct GapInstance {
  Database db;
  FactId f = kNoFact;
};

/// q() :- R(x), S(x,y), ¬R(y) (a CQ¬ with a self-join).
CQ GapQuery();

/// The Section 5.1 database D_n for GapQuery(): |Dn| = 2n+1 endogenous facts
/// and Shapley(D, q, f) = n!·n!/(2n+1)!.
GapInstance BuildGapFamily(int n);

/// n!·n!/(2n+1)!.
Rational GapTheoreticalShapley(int n);

/// The generic Theorem 5.1 construction for any satisfiable, positively
/// connected, constant-free CQ¬ with at least one negated atom: glues n
/// "breaker" copies (satisfying until their distinguished negative fact
/// arrives) with n+1 "enabler" copies (minimal satisfying databases missing
/// one fact). The distinguished fact f of the 0-th enabler copy has
/// |Shapley| = n!·n!/(2n+1)!. Returns an error when the construction's
/// preconditions fail (e.g. the canonical database does not witness
/// satisfiability).
Result<GapInstance> BuildGenericGapFamily(const CQ& q, int n);

}  // namespace shapcq

#endif  // SHAPCQ_REDUCTIONS_GAP_H_
