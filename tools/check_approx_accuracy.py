#!/usr/bin/env python3
"""CI gate for the sampling tier's accuracy claims.

Reads BENCH_approx.json (the merged Google Benchmark output of
bench_additive_fpras and bench_gap_property) and fails (exit 1) unless:

  1. Coverage: every BM_ApproxCiWidth/<m> row has cover_margin_min >= 0 —
     each exact Shapley value sits inside its reported confidence
     interval. The benchmark runs a fixed seed through the engine's
     deterministic reduction, so this checks a fixed outcome, not a
     probabilistic one.
  2. Shrinkage: ci_max is strictly decreasing as the per-orbit sample
     budget m grows (the 1/sqrt(m) additive-FPRAS shape).
  3. Throughput: at least one BM_ApproxSamplesPerSec row carries a
     positive samples_per_sec counter.
  4. Gap property: every BM_GapValueMagnitude/<n> row has
     log2_value <= neg_n (values exponentially small but nonzero — the
     Theorem 5.1 reason no additive FPRAS doubles as a multiplicative
     one) and no brute_match counter equal to 0.

usage: check_approx_accuracy.py BENCH_JSON
"""

import json
import sys

CI_PREFIX = "BM_ApproxCiWidth/"
RATE_PREFIX = "BM_ApproxSamplesPerSec/"
GAP_PREFIX = "BM_GapValueMagnitude/"


def arg_of(name, prefix):
    return int(name[len(prefix):].split("/")[0])


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as handle:
        report = json.load(handle)
    rows = [row for row in report.get("benchmarks", [])
            if row.get("run_type") != "aggregate"]

    failures = []

    ci_rows = sorted(
        ((arg_of(row["name"], CI_PREFIX), row) for row in rows
         if row["name"].startswith(CI_PREFIX)))
    if not ci_rows:
        failures.append("no BM_ApproxCiWidth rows found")
    previous_ci = None
    for m, row in ci_rows:
        margin = row.get("cover_margin_min")
        ci = row.get("ci_max")
        print(f"m={m}: ci_max={ci:.4f} abs_err_max="
              f"{row.get('abs_err_max', 0.0):.4f} cover_margin_min="
              f"{margin:.4f}")
        if margin is None or margin < 0.0:
            failures.append(
                f"BM_ApproxCiWidth/{m}: an exact value escaped its "
                f"confidence interval (cover_margin_min={margin})")
        if previous_ci is not None and ci >= previous_ci:
            failures.append(
                f"BM_ApproxCiWidth/{m}: ci_max={ci} did not shrink from "
                f"{previous_ci} at the smaller budget")
        previous_ci = ci

    rates = [row.get("samples_per_sec", 0.0) for row in rows
             if row["name"].startswith(RATE_PREFIX)]
    if rates:
        print(f"throughput: {max(rates):.0f} samples/s (best row)")
    if not rates or max(rates) <= 0.0:
        failures.append("no positive samples_per_sec counter found")

    gap_rows = sorted(
        ((arg_of(row["name"], GAP_PREFIX), row) for row in rows
         if row["name"].startswith(GAP_PREFIX)))
    if not gap_rows:
        failures.append("no BM_GapValueMagnitude rows found")
    for n, row in gap_rows:
        log2_value = row.get("log2_value", 0.0)
        print(f"gap n={n}: log2(value)={log2_value:.2f} bound={-n}")
        if log2_value > -n:
            failures.append(
                f"BM_GapValueMagnitude/{n}: log2_value={log2_value} above "
                f"the 2^-n gap bound")
        if row.get("brute_match") == 0.0:
            failures.append(
                f"BM_GapValueMagnitude/{n}: brute force disagrees with "
                "n!n!/(2n+1)!")

    if failures:
        for failure in failures:
            print(f"error: {failure}", file=sys.stderr)
        return 1
    print("approx accuracy gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
