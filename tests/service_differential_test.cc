// Differential sweep: a server session must emit exactly the report a fresh
// engine on the equivalently mutated database would. Generated hierarchical
// queries, random delta sequences, a REPORT after every batch — run once
// against a warm registry (incremental engine, never evicted) and once
// against an always-cold registry (engine evicted after every request,
// rebuild-on-readmission on the next), both diffed against a shadow
// database evaluated from scratch. The fresh-process flavor of this sweep
// (shapcq_server vs shapcq_cli binaries) is tests/server_differential.py.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/report.h"
#include "datasets/query_gen.h"
#include "datasets/synthetic.h"
#include "db/textio.h"
#include "service/command_loop.h"
#include "util/random.h"

namespace shapcq {
namespace {

// Extracts the attribution table of the last REPORT in `output`: the lines
// strictly between the "report <id> ..." header and "end report <id>",
// minus the "engine:" line (the only line whose text depends on serving
// path: "CntSat (incremental)" vs "CntSat").
std::string LastReportTable(const std::string& output, const std::string& id) {
  const std::string header = "report " + id + " ";
  const std::string footer = "end report " + id + "\n";
  const size_t header_at = output.rfind(header);
  EXPECT_NE(header_at, std::string::npos) << output;
  const size_t table_at = output.find('\n', header_at) + 1;
  const size_t footer_at = output.find(footer, table_at);
  EXPECT_NE(footer_at, std::string::npos) << output;
  std::string table = output.substr(table_at, footer_at - table_at);
  const std::string engine_line = "engine: CntSat (incremental)\n";
  EXPECT_EQ(table.compare(0, engine_line.size(), engine_line), 0) << table;
  return table.substr(engine_line.size());
}

// The oracle: rank-and-render the shadow database from scratch, engine line
// stripped the same way.
std::string FreshTable(const CQ& q, const Database& db) {
  auto report = BuildAttributionReport(q, db, ReportOptions{});
  EXPECT_TRUE(report.ok()) << report.error();
  const std::string rendered = RenderReport(report.value(), db);
  return rendered.substr(rendered.find('\n') + 1);
}

class ServerDifferentialSweep : public ::testing::TestWithParam<int> {};

TEST_P(ServerDifferentialSweep, SessionMatchesFreshRunAfterEveryReport) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 52561 + 7);
  QueryGenOptions query_options;
  query_options.max_depth = 3;
  query_options.max_branch = 2;
  const CQ q = RandomHierarchicalCq(query_options, &rng);
  SyntheticOptions db_options;
  db_options.domain_size = 3;
  db_options.facts_per_relation = 3;
  const Database seed = RandomDatabaseForQuery(q, {}, db_options, &rng);

  // warm: default registry. cold: every request over budget, so every
  // REPORT readmits an evicted session — the eviction path must be
  // indistinguishable on the wire.
  CommandLoopOptions warm_options;
  CommandLoopOptions cold_options;
  cold_options.registry.engine_byte_budget = 1;
  CommandLoop warm(warm_options);
  CommandLoop cold(cold_options);
  Database shadow;  // the fresh-run oracle's database

  const std::string open_line = "OPEN s " + q.ToString();
  for (CommandLoop* loop : {&warm, &cold}) {
    std::string out;
    loop->ExecuteLine(open_line, &out);
    ASSERT_NE(out.find("ok open s"), std::string::npos) << out;
  }

  // Mutation stream: seed inserts, then random insert/delete batches with a
  // REPORT after each batch.
  std::vector<std::string> live_literals;
  auto run_mutation = [&](const std::string& op_and_literal) {
    auto mutation = ParseMutationLine(op_and_literal);
    ASSERT_TRUE(mutation.ok()) << mutation.error();
    const FactSpec& fact = mutation.value().fact;
    if (mutation.value().op == MutationSpec::Op::kInsert) {
      shadow.AddFact(fact.relation, fact.tuple, fact.endogenous);
    } else {
      shadow.RemoveFact(shadow.FindFact(fact.relation, fact.tuple));
    }
    for (CommandLoop* loop : {&warm, &cold}) {
      std::string out;
      loop->ExecuteLine("DELTA s " + op_and_literal, &out);
      ASSERT_NE(out.find("ok delta s "), std::string::npos) << out;
    }
  };
  for (size_t slot = 0; slot < seed.fact_slot_count(); ++slot) {
    const FactId fact = static_cast<FactId>(slot);
    FactSpec spec;
    spec.relation = seed.schema().name(seed.relation_of(fact));
    spec.tuple = seed.tuple_of(fact);
    spec.endogenous = seed.is_endogenous(fact);
    run_mutation("+ " + FactSpecToString(spec));
    live_literals.push_back(FactSpecToString(spec));
  }

  const int kBatches = 4, kDeltasPerBatch = 3;
  for (int batch = 0; batch <= kBatches; ++batch) {
    if (batch > 0) {
      for (int step = 0; step < kDeltasPerBatch; ++step) {
        const bool do_delete = !live_literals.empty() && rng.Bernoulli(0.4);
        if (do_delete) {
          const size_t pick =
              static_cast<size_t>(rng.UniformInt(live_literals.size()));
          run_mutation("- " + live_literals[pick]);
          live_literals.erase(live_literals.begin() +
                              static_cast<ptrdiff_t>(pick));
        } else {
          const Atom& atom = q.atom(rng.UniformInt(q.atom_count()));
          FactSpec spec;
          spec.relation = atom.relation;
          for (size_t t = 0; t < atom.arity(); ++t) {
            spec.tuple.push_back(V("c" + std::to_string(rng.UniformInt(4))));
          }
          spec.endogenous = rng.Bernoulli(0.7);
          if (shadow.FindFact(spec.relation, spec.tuple) != kNoFact) {
            continue;  // duplicate draw: skip the step
          }
          run_mutation("+ " + FactSpecToString(spec));
          live_literals.push_back(FactSpecToString(spec));
        }
      }
    }

    const std::string expected = FreshTable(q, shadow);
    for (CommandLoop* loop : {&warm, &cold}) {
      std::string out;
      loop->ExecuteLine("REPORT s", &out);
      EXPECT_EQ(LastReportTable(out, "s"), expected)
          << (loop == &warm ? "warm" : "cold") << " registry, batch "
          << batch << ", query " << q.ToString();
    }
  }

  // The warm session never rebuilt; the cold one rebuilt on every report.
  EXPECT_EQ(warm.registry().Stats("s").value().engine_builds, 1u);
  EXPECT_EQ(cold.registry().Stats("s").value().engine_builds,
            static_cast<size_t>(kBatches) + 1);
  EXPECT_GE(cold.registry().stats().evictions, kBatches + 1u);
  EXPECT_EQ(warm.error_count(), 0u);
  EXPECT_EQ(cold.error_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(GeneratedSessions, ServerDifferentialSweep,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace shapcq
