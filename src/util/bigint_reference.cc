#include "util/bigint_reference.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace shapcq {

namespace {

constexpr uint64_t kBase = uint64_t{1} << 32;

// a += b on little-endian magnitudes. b must not alias a.
void AddLimbsInPlace(std::vector<uint32_t>* a, const std::vector<uint32_t>& b) {
  if (a->size() < b.size()) a->resize(b.size(), 0);
  uint64_t carry = 0;
  size_t i = 0;
  for (; i < b.size(); ++i) {
    const uint64_t sum = carry + (*a)[i] + b[i];
    (*a)[i] = static_cast<uint32_t>(sum & 0xffffffffu);
    carry = sum >> 32;
  }
  for (; carry != 0 && i < a->size(); ++i) {
    const uint64_t sum = carry + (*a)[i];
    (*a)[i] = static_cast<uint32_t>(sum & 0xffffffffu);
    carry = sum >> 32;
  }
  if (carry != 0) a->push_back(static_cast<uint32_t>(carry));
}

// a -= b on little-endian magnitudes; requires |a| >= |b|. b must not alias a.
void SubLimbsInPlace(std::vector<uint32_t>* a, const std::vector<uint32_t>& b) {
  int64_t borrow = 0;
  for (size_t i = 0; i < a->size() && (borrow != 0 || i < b.size()); ++i) {
    int64_t diff = static_cast<int64_t>((*a)[i]) - borrow -
                   (i < b.size() ? static_cast<int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    (*a)[i] = static_cast<uint32_t>(diff);
  }
}

}  // namespace

RefBigInt::RefBigInt(int64_t value) {
  if (value == 0) {
    sign_ = 0;
    return;
  }
  sign_ = value > 0 ? 1 : -1;
  // Avoid overflow on INT64_MIN by negating in unsigned space.
  uint64_t magnitude =
      value > 0 ? static_cast<uint64_t>(value)
                : ~static_cast<uint64_t>(value) + 1;
  limbs_.push_back(static_cast<uint32_t>(magnitude & 0xffffffffu));
  if (magnitude >> 32) limbs_.push_back(static_cast<uint32_t>(magnitude >> 32));
}

bool RefBigInt::TryParse(const std::string& text, RefBigInt* out) {
  size_t pos = 0;
  bool negative = false;
  if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) {
    negative = text[pos] == '-';
    ++pos;
  }
  if (pos >= text.size()) return false;
  RefBigInt result;
  const RefBigInt ten(10);
  for (; pos < text.size(); ++pos) {
    if (!std::isdigit(static_cast<unsigned char>(text[pos]))) return false;
    result = result * ten + RefBigInt(text[pos] - '0');
  }
  if (negative && !result.IsZero()) result.sign_ = -1;
  *out = std::move(result);
  return true;
}

RefBigInt RefBigInt::FromString(const std::string& text) {
  RefBigInt result;
  SHAPCQ_CHECK_MSG(TryParse(text, &result), "malformed decimal RefBigInt literal");
  return result;
}

void RefBigInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) sign_ = 0;
}

size_t RefBigInt::BitLength() const {
  if (sign_ == 0) return 0;
  uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

int RefBigInt::CompareMagnitude(const std::vector<uint32_t>& a,
                             const std::vector<uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<uint32_t> RefBigInt::AddMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  const std::vector<uint32_t>& longer = a.size() >= b.size() ? a : b;
  const std::vector<uint32_t>& shorter = a.size() >= b.size() ? b : a;
  std::vector<uint32_t> result;
  result.reserve(longer.size() + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < longer.size(); ++i) {
    uint64_t sum = carry + longer[i] + (i < shorter.size() ? shorter[i] : 0u);
    result.push_back(static_cast<uint32_t>(sum & 0xffffffffu));
    carry = sum >> 32;
  }
  if (carry) result.push_back(static_cast<uint32_t>(carry));
  return result;
}

std::vector<uint32_t> RefBigInt::SubMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  SHAPCQ_CHECK(CompareMagnitude(a, b) >= 0);
  std::vector<uint32_t> result;
  result.reserve(a.size());
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a[i]) - borrow -
                   (i < b.size() ? static_cast<int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    result.push_back(static_cast<uint32_t>(diff));
  }
  return result;
}

std::vector<uint32_t> RefBigInt::MulMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<uint32_t> result(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    uint64_t ai = a[i];
    for (size_t j = 0; j < b.size(); ++j) {
      uint64_t cur = result[i + j] + ai * b[j] + carry;
      result[i + j] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    size_t k = i + b.size();
    while (carry) {
      uint64_t cur = result[k] + carry;
      result[k] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  return result;
}

RefBigInt RefBigInt::operator-() const {
  RefBigInt result = *this;
  result.sign_ = -result.sign_;
  return result;
}

RefBigInt RefBigInt::Abs() const {
  RefBigInt result = *this;
  if (result.sign_ < 0) result.sign_ = 1;
  return result;
}

RefBigInt RefBigInt::operator+(const RefBigInt& other) const {
  if (sign_ == 0) return other;
  if (other.sign_ == 0) return *this;
  if (limbs_.size() == 1 && other.limbs_.size() == 1) {
    // Single-limb fast path: both magnitudes are < 2^32, so the signed sum
    // fits comfortably in an int64 and the int64 constructor does the rest.
    return RefBigInt(sign_ * static_cast<int64_t>(limbs_[0]) +
                  other.sign_ * static_cast<int64_t>(other.limbs_[0]));
  }
  RefBigInt result;
  if (sign_ == other.sign_) {
    result.limbs_ = AddMagnitude(limbs_, other.limbs_);
    result.sign_ = sign_;
  } else {
    int cmp = CompareMagnitude(limbs_, other.limbs_);
    if (cmp == 0) return RefBigInt();
    if (cmp > 0) {
      result.limbs_ = SubMagnitude(limbs_, other.limbs_);
      result.sign_ = sign_;
    } else {
      result.limbs_ = SubMagnitude(other.limbs_, limbs_);
      result.sign_ = other.sign_;
    }
  }
  result.Normalize();
  return result;
}

RefBigInt RefBigInt::operator-(const RefBigInt& other) const { return *this + (-other); }

RefBigInt RefBigInt::operator*(const RefBigInt& other) const {
  if (sign_ == 0 || other.sign_ == 0) return RefBigInt();
  RefBigInt result;
  result.sign_ = sign_ * other.sign_;
  if (limbs_.size() == 1 && other.limbs_.size() == 1) {
    // Single-limb fast path: one hardware multiply, at most two limbs out.
    const uint64_t product =
        static_cast<uint64_t>(limbs_[0]) * other.limbs_[0];
    result.limbs_.push_back(static_cast<uint32_t>(product & 0xffffffffu));
    if (product >> 32) {
      result.limbs_.push_back(static_cast<uint32_t>(product >> 32));
    }
    return result;
  }
  result.limbs_ = MulMagnitude(limbs_, other.limbs_);
  result.Normalize();
  return result;
}

RefBigInt& RefBigInt::AccumulateSigned(const RefBigInt& other, int sign_multiplier) {
  const int other_sign = other.sign_ * sign_multiplier;
  if (other_sign == 0) return *this;
  if (this == &other) {
    // Aliased: either doubling (+=) or cancellation (-=).
    if (sign_multiplier < 0) {
      sign_ = 0;
      limbs_.clear();
    } else {
      AddLimbsInPlace(&limbs_, std::vector<uint32_t>(limbs_));
    }
    return *this;
  }
  if (sign_ == 0) {
    limbs_ = other.limbs_;
    sign_ = other_sign;
    return *this;
  }
  if (sign_ == other_sign) {
    AddLimbsInPlace(&limbs_, other.limbs_);
    return *this;
  }
  const int cmp = CompareMagnitude(limbs_, other.limbs_);
  if (cmp == 0) {
    sign_ = 0;
    limbs_.clear();
    return *this;
  }
  if (cmp > 0) {
    SubLimbsInPlace(&limbs_, other.limbs_);
  } else {
    limbs_ = SubMagnitude(other.limbs_, limbs_);
    sign_ = other_sign;
  }
  Normalize();
  return *this;
}

RefBigInt& RefBigInt::operator*=(const RefBigInt& other) {
  if (sign_ == 0) return *this;
  if (other.sign_ == 0) {
    sign_ = 0;
    limbs_.clear();
    return *this;
  }
  if (other.limbs_.size() == 1) {
    // In-place scan with carry; covers the aliased x *= x only when x is
    // itself single-limb, where the multiplier is copied out first.
    const uint64_t multiplier = other.limbs_[0];
    const int result_sign = sign_ * other.sign_;
    uint64_t carry = 0;
    for (uint32_t& limb : limbs_) {
      const uint64_t cur = static_cast<uint64_t>(limb) * multiplier + carry;
      limb = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    if (carry != 0) limbs_.push_back(static_cast<uint32_t>(carry));
    sign_ = result_sign;
    return *this;
  }
  // MulMagnitude reads both operands before the assignment lands, so the
  // aliased case is safe here too.
  limbs_ = MulMagnitude(limbs_, other.limbs_);
  sign_ *= other.sign_;
  Normalize();
  return *this;
}

RefBigInt& RefBigInt::AddProductOf(const RefBigInt& a, const RefBigInt& b) {
  if (a.sign_ == 0 || b.sign_ == 0) return *this;
  const int product_sign = a.sign_ * b.sign_;
  if (this == &a || this == &b || (sign_ != 0 && sign_ != product_sign)) {
    // Aliased or sign-flipping accumulation: take the allocating route.
    return *this += a * b;
  }
  const std::vector<uint32_t>& al = a.limbs_;
  const std::vector<uint32_t>& bl = b.limbs_;
  if (limbs_.size() < al.size() + bl.size()) {
    limbs_.resize(al.size() + bl.size(), 0);
  }
  for (size_t i = 0; i < al.size(); ++i) {
    const uint64_t ai = al[i];
    uint64_t carry = 0;
    for (size_t j = 0; j < bl.size(); ++j) {
      const uint64_t cur =
          static_cast<uint64_t>(limbs_[i + j]) + ai * bl[j] + carry;
      limbs_[i + j] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    for (size_t k = i + bl.size(); carry != 0; ++k) {
      if (k == limbs_.size()) {
        limbs_.push_back(static_cast<uint32_t>(carry));
        break;
      }
      const uint64_t cur = static_cast<uint64_t>(limbs_[k]) + carry;
      limbs_[k] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
  }
  sign_ = product_sign;
  Normalize();
  return *this;
}

RefBigInt RefBigInt::ShiftLeft(size_t bits) const {
  if (sign_ == 0 || bits == 0) return *this;
  RefBigInt result;
  result.sign_ = sign_;
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  result.limbs_.assign(limb_shift, 0);
  if (bit_shift == 0) {
    result.limbs_.insert(result.limbs_.end(), limbs_.begin(), limbs_.end());
  } else {
    uint32_t carry = 0;
    for (uint32_t limb : limbs_) {
      result.limbs_.push_back((limb << bit_shift) | carry);
      carry = static_cast<uint32_t>(static_cast<uint64_t>(limb) >>
                                    (32 - bit_shift));
    }
    if (carry) result.limbs_.push_back(carry);
  }
  result.Normalize();
  return result;
}

void RefBigInt::DivMod(const RefBigInt& dividend, const RefBigInt& divisor,
                    RefBigInt* quotient, RefBigInt* remainder) {
  SHAPCQ_CHECK_MSG(divisor.sign_ != 0, "division by zero");
  int mag_cmp = CompareMagnitude(dividend.limbs_, divisor.limbs_);
  if (mag_cmp < 0) {
    *quotient = RefBigInt();
    *remainder = dividend;
    return;
  }
  // Shift-subtract long division on magnitudes, one bit at a time.
  size_t shift = dividend.BitLength() - divisor.BitLength();
  RefBigInt rem = dividend.Abs();
  RefBigInt shifted = divisor.Abs().ShiftLeft(shift);
  std::vector<uint32_t> quot_limbs(shift / 32 + 1, 0);
  for (size_t i = shift + 1; i-- > 0;) {
    if (CompareMagnitude(rem.limbs_, shifted.limbs_) >= 0) {
      rem.limbs_ = SubMagnitude(rem.limbs_, shifted.limbs_);
      rem.Normalize();
      quot_limbs[i / 32] |= uint32_t{1} << (i % 32);
    }
    if (i > 0) {
      // shifted >>= 1.
      uint32_t carry = 0;
      for (size_t j = shifted.limbs_.size(); j-- > 0;) {
        uint32_t limb = shifted.limbs_[j];
        shifted.limbs_[j] = (limb >> 1) | (carry << 31);
        carry = limb & 1u;
      }
      shifted.Normalize();
    }
  }
  RefBigInt quot;
  quot.limbs_ = std::move(quot_limbs);
  quot.sign_ = 1;
  quot.Normalize();
  // Truncated division signs: quotient sign is product of operand signs,
  // remainder takes the dividend's sign.
  if (!quot.IsZero()) quot.sign_ = dividend.sign_ * divisor.sign_;
  if (!rem.IsZero()) rem.sign_ = dividend.sign_;
  *quotient = std::move(quot);
  *remainder = std::move(rem);
}

RefBigInt RefBigInt::operator/(const RefBigInt& other) const {
  RefBigInt quotient, remainder;
  DivMod(*this, other, &quotient, &remainder);
  return quotient;
}

RefBigInt RefBigInt::operator%(const RefBigInt& other) const {
  RefBigInt quotient, remainder;
  DivMod(*this, other, &quotient, &remainder);
  return remainder;
}

RefBigInt RefBigInt::Gcd(const RefBigInt& a, const RefBigInt& b) {
  RefBigInt x = a.Abs();
  RefBigInt y = b.Abs();
  while (!y.IsZero()) {
    RefBigInt quotient, remainder;
    DivMod(x, y, &quotient, &remainder);
    x = std::move(y);
    y = std::move(remainder);
  }
  return x;
}

bool RefBigInt::operator==(const RefBigInt& other) const {
  return sign_ == other.sign_ && limbs_ == other.limbs_;
}

bool RefBigInt::operator<(const RefBigInt& other) const {
  if (sign_ != other.sign_) return sign_ < other.sign_;
  int cmp = CompareMagnitude(limbs_, other.limbs_);
  return sign_ >= 0 ? cmp < 0 : cmp > 0;
}

uint32_t RefBigInt::DivModSmallInPlace(std::vector<uint32_t>* limbs,
                                    uint32_t divisor) {
  uint64_t remainder = 0;
  for (size_t i = limbs->size(); i-- > 0;) {
    uint64_t cur = (remainder << 32) | (*limbs)[i];
    (*limbs)[i] = static_cast<uint32_t>(cur / divisor);
    remainder = cur % divisor;
  }
  while (!limbs->empty() && limbs->back() == 0) limbs->pop_back();
  return static_cast<uint32_t>(remainder);
}

std::string RefBigInt::ToString() const {
  if (sign_ == 0) return "0";
  std::vector<uint32_t> scratch = limbs_;
  std::string digits;
  while (!scratch.empty()) {
    uint32_t chunk = DivModSmallInPlace(&scratch, 1000000000u);
    if (scratch.empty()) {
      // Most significant chunk: no zero padding.
      digits = std::to_string(chunk) + digits;
    } else {
      std::string part = std::to_string(chunk);
      digits = std::string(9 - part.size(), '0') + part + digits;
    }
  }
  return sign_ < 0 ? "-" + digits : digits;
}

double RefBigInt::ToDouble() const {
  double result = 0.0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    result = result * 4294967296.0 + static_cast<double>(limbs_[i]);
  }
  return sign_ < 0 ? -result : result;
}

bool RefBigInt::FitsInt64() const {
  if (limbs_.size() > 2) return false;
  if (limbs_.size() < 2) return true;
  uint64_t magnitude = (static_cast<uint64_t>(limbs_[1]) << 32) | limbs_[0];
  if (sign_ > 0) return magnitude <= static_cast<uint64_t>(
                            std::numeric_limits<int64_t>::max());
  return magnitude <= static_cast<uint64_t>(
                          std::numeric_limits<int64_t>::max()) + 1;
}

int64_t RefBigInt::ToInt64() const {
  SHAPCQ_CHECK_MSG(FitsInt64(), "RefBigInt does not fit in int64");
  if (sign_ == 0) return 0;
  uint64_t magnitude = limbs_[0];
  if (limbs_.size() == 2) magnitude |= static_cast<uint64_t>(limbs_[1]) << 32;
  return sign_ > 0 ? static_cast<int64_t>(magnitude)
                   : -static_cast<int64_t>(magnitude - 1) - 1;
}

}  // namespace shapcq
