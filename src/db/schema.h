// Relational schemas: named relation symbols with fixed arity.

#ifndef SHAPCQ_DB_SCHEMA_H_
#define SHAPCQ_DB_SCHEMA_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

namespace shapcq {

/// Index of a relation symbol within a Schema.
using RelationId = int32_t;

/// Sentinel for "relation not present in this schema".
inline constexpr RelationId kNoRelation = -1;

/// A finite collection of relation symbols R(A1, ..., Ak), identified by name.
class Schema {
 public:
  /// Adds a relation symbol; aborts if the name exists with a different
  /// arity, returns the existing id if it exists with the same arity.
  RelationId AddRelation(const std::string& name, size_t arity);
  /// Id of `name`, or kNoRelation.
  RelationId Find(const std::string& name) const;
  /// True if `name` is declared.
  bool Has(const std::string& name) const { return Find(name) != kNoRelation; }

  const std::string& name(RelationId id) const;
  size_t arity(RelationId id) const;
  size_t relation_count() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::vector<size_t> arities_;
  std::unordered_map<std::string, RelationId> index_;
};

}  // namespace shapcq

#endif  // SHAPCQ_DB_SCHEMA_H_
