#include "service/net/fd_stream.h"

#include <sys/socket.h>
#include <sys/types.h>

#include <cerrno>

// MSG_NOSIGNAL is POSIX.1-2008 but spelled differently on some BSDs;
// falling back to 0 only re-enables SIGPIPE, which the server main also
// ignores process-wide.
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace shapcq {

FdStreamBuf::FdStreamBuf(int fd)
    : fd_(fd), in_buf_(kBufferBytes), out_buf_(kBufferBytes) {
  // Empty get area (first read underflows); full put area.
  setg(in_buf_.data(), in_buf_.data(), in_buf_.data());
  setp(out_buf_.data(), out_buf_.data() + out_buf_.size());
}

FdStreamBuf::~FdStreamBuf() {
  FlushOut();  // best-effort: the final command's output reaches the peer
}

FdStreamBuf::int_type FdStreamBuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  while (true) {
    const ssize_t n = ::recv(fd_, in_buf_.data(), in_buf_.size(), 0);
    if (n > 0) {
      setg(in_buf_.data(), in_buf_.data(), in_buf_.data() + n);
      return traits_type::to_int_type(*gptr());
    }
    if (n == 0) return traits_type::eof();  // orderly close (or SHUT_RD)
    if (errno == EINTR) continue;
    return traits_type::eof();  // reset/teardown: same as EOF to the loop
  }
}

bool FdStreamBuf::FlushOut() {
  const char* data = pbase();
  size_t remaining = static_cast<size_t>(pptr() - pbase());
  while (remaining > 0 && !write_failed_) {
    const ssize_t n = ::send(fd_, data, remaining, MSG_NOSIGNAL);
    if (n >= 0) {
      data += n;
      remaining -= static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    write_failed_ = true;  // peer gone; drop this and all later output
  }
  setp(out_buf_.data(), out_buf_.data() + out_buf_.size());
  return !write_failed_;
}

FdStreamBuf::int_type FdStreamBuf::overflow(int_type ch) {
  if (!FlushOut()) return traits_type::eof();
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

int FdStreamBuf::sync() { return FlushOut() ? 0 : -1; }

}  // namespace shapcq
