// Text round-tripping for databases.
//
// The format matches Database::ToString(): whitespace-separated facts
// "R(a,b)" with a trailing '*' marking endogenous facts. Handy for tests,
// bug reports and small examples:
//
//   Stud(Adam) TA(Adam)* Reg(Adam,OS)*

#ifndef SHAPCQ_DB_TEXTIO_H_
#define SHAPCQ_DB_TEXTIO_H_

#include <string>

#include "db/database.h"
#include "util/result.h"

namespace shapcq {

/// One parsed fact literal, e.g. "Reg(Adam,OS)*".
struct FactSpec {
  std::string relation;
  Tuple tuple;
  bool endogenous = false;
};

/// Parses a single fact literal (the element syntax of ParseDatabase);
/// rejects trailing input. Used by delta files (shapcq_cli --mutate) and the
/// server's DELTA command.
Result<FactSpec> ParseFactSpec(const std::string& text);

/// Renders a FactSpec back to its literal form, e.g. "Reg(Adam,OS)*".
std::string FactSpecToString(const FactSpec& spec);

/// One line of the mutation grammar shared by shapcq_cli --mutate and the
/// attribution server's DELTA command: '+' inserts the fact literal, '-'
/// deletes the fact with that literal.
struct MutationSpec {
  enum class Op { kInsert, kDelete };
  Op op = Op::kInsert;
  FactSpec fact;
};

/// Parses "+ R(a,b)*" or "- R(a,b)". The operator must be the first
/// non-whitespace character; blank lines and '#' comments are the caller's
/// concern (they are not mutations and are rejected here).
Result<MutationSpec> ParseMutationLine(const std::string& line);

/// Parses a whitespace-separated fact list; returns an error on malformed
/// input or duplicate facts.
Result<Database> ParseDatabase(const std::string& text);

/// Aborting variant for trusted literals in tests and examples.
Database MustParseDatabase(const std::string& text);

/// Strict decimal size parser shared by the CLI/server flag parsers and the
/// REPORT grammar: plain digits only — no sign (a leading '+' or '-' is
/// rejected), no whitespace, no radix prefixes — and any value that would
/// overflow size_t is rejected instead of saturating (the strtoull ERANGE
/// trap). Returns false without touching *out on any rejection.
bool ParseSizeStrict(const std::string& text, size_t* out);

}  // namespace shapcq

#endif  // SHAPCQ_DB_TEXTIO_H_
