#!/usr/bin/env python3
"""CI gate for the serving layer's perf claim.

Reads a Google Benchmark JSON file containing BM_ServerWarmReport/N and
BM_ServerColdReport/N rows and fails (exit 1) if, at any size present in
both families, the warm-engine report is not at least --min-speedup times
faster than the cold per-request rebuild (default 5 — the ISSUE 4
acceptance bound; measured warm/cold gaps are orders of magnitude larger,
so the gate only trips on real regressions, not runner noise).

usage: check_server_speedup.py BENCH_JSON [--min-speedup 5]
"""

import argparse
import json
import sys

WARM = "BM_ServerWarmReport/"
COLD = "BM_ServerColdReport/"


def times_by_size(benchmarks, prefix):
    out = {}
    for row in benchmarks:
        name = row.get("name", "")
        if not name.startswith(prefix) or row.get("run_type") == "aggregate":
            continue
        size = name[len(prefix):].split("/")[0]
        out[size] = float(row["real_time"])
    return out


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("bench_json")
    parser.add_argument("--min-speedup", type=float, default=5.0)
    args = parser.parse_args()

    with open(args.bench_json) as handle:
        report = json.load(handle)
    benchmarks = report.get("benchmarks", [])
    warm = times_by_size(benchmarks, WARM)
    cold = times_by_size(benchmarks, COLD)
    sizes = sorted(set(warm) & set(cold), key=int)
    if not sizes:
        print("error: no comparable BM_ServerWarmReport/BM_ServerColdReport "
              "rows found", file=sys.stderr)
        return 1

    failed = False
    for size in sizes:
        speedup = cold[size] / warm[size]
        verdict = "OK" if speedup >= args.min_speedup else "REGRESSION"
        if speedup < args.min_speedup:
            failed = True
        print(f"size {size}: warm {warm[size]:.0f} ns vs cold "
              f"{cold[size]:.0f} ns -> speedup {speedup:.1f}x [{verdict}]")
    if failed:
        print(f"error: warm-engine report under {args.min_speedup:.1f}x "
              "faster than cold per-request rebuild", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
