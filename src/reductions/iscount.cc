#include "reductions/iscount.h"

#include "query/parser.h"
#include "util/check.h"
#include "util/combinatorics.h"
#include "util/gaussian.h"

namespace shapcq {

CQ QRst() { return MustParseCQ("qRST() :- R(x), S(x,y), T(y)"); }

CQ QNegRSNegT() {
  return MustParseCQ("qNegRSNegT() :- not R(x), S(x,y), not T(y)");
}

CQ QRNegSt() { return MustParseCQ("qRNegST() :- R(x), not S(x,y), T(y)"); }

CQ QRSNegT() { return MustParseCQ("qRSNegT() :- R(x), S(x,y), not T(y)"); }

Database BuildIsCountInstance(const BipartiteGraph& graph, int r, FactId* f) {
  Database db;
  auto left_value = [](int a) { return V("A" + std::to_string(a)); };
  auto right_value = [](int b) { return V("B" + std::to_string(b)); };
  const Value zero = V("z0");

  for (int a = 0; a < graph.left; ++a) db.AddEndo("R", {left_value(a)});
  for (int b = 0; b < graph.right; ++b) db.AddEndo("T", {right_value(b)});
  for (const auto& [a, b] : graph.edges) {
    db.AddExo("S", {left_value(a), right_value(b)});
  }
  *f = db.AddEndo("T", {zero});
  if (r == 0) {
    // D^0: every left vertex is wired to the new right vertex 0.
    for (int a = 0; a < graph.left; ++a) {
      db.AddExo("S", {left_value(a), zero});
    }
  } else {
    // D^r: r fresh left vertices 0_1..0_r, wired only to vertex 0.
    for (int i = 1; i <= r; ++i) {
      const Value fresh = V("Z" + std::to_string(i));
      db.AddEndo("R", {fresh});
      db.AddExo("S", {fresh, zero});
    }
  }
  return db;
}

BigInt CountIndependentSetsViaShapley(const BipartiteGraph& graph,
                                      const ShapleyOracle& oracle) {
  SHAPCQ_CHECK_MSG(!graph.HasIsolatedVertex(),
                   "Lemma B.3 assumes no isolated vertices");
  const int m = graph.left;
  const int N = graph.TotalVertices();

  // D^0 gives P_{1->1}: the number of permutations of its N+1 endogenous
  // facts in which T(0) leaves a true answer true. The Shapley value of T(0)
  // is -P_{1->0}/(N+1)!, so P_{1->1} = (1 + Shapley)·(N+1)! − P_{0->0} with
  // P_{0->0} = (N+1)!/(m+1) (T(0) first among the m+1 facts R(a) ∪ {T(0)}).
  FactId f0 = kNoFact;
  const Database d0 = BuildIsCountInstance(graph, 0, &f0);
  const Rational shapley0 = oracle(d0, f0);
  const Rational fact_np1(Combinatorics::Factorial(static_cast<size_t>(N + 1)));
  const Rational p0_00 = fact_np1 / Rational(m + 1);
  const Rational p_11 = (Rational(1) + shapley0) * fact_np1 - p0_00;

  // D^1..D^{N+1} give the linear system over |S(g,k)|, k = 0..N.
  RationalMatrix matrix;
  std::vector<Rational> rhs;
  for (int r = 1; r <= N + 1; ++r) {
    FactId fr = kNoFact;
    const Database dr = BuildIsCountInstance(graph, r, &fr);
    const Rational shapley_r = oracle(dr, fr);
    const Rational fact_total(
        Combinatorics::Factorial(static_cast<size_t>(N + r + 1)));
    // m_r = C(N+r+1, r) · r!: interleavings of the r fresh facts.
    const Rational m_r(
        Combinatorics::Binomial(static_cast<size_t>(N + r + 1),
                                static_cast<size_t>(r)) *
        Combinatorics::Factorial(static_cast<size_t>(r)));
    const Rational p_r_00 =
        (Rational(1) + shapley_r) * fact_total - p_11 * m_r;
    std::vector<Rational> row;
    for (int k = 0; k <= N; ++k) {
      row.push_back(
          Rational(Combinatorics::Factorial(static_cast<size_t>(k)) *
                   Combinatorics::Factorial(static_cast<size_t>(N - k + r))));
    }
    matrix.push_back(std::move(row));
    rhs.push_back(p_r_00);
  }

  std::vector<Rational> closed_counts;
  SHAPCQ_CHECK_MSG(SolveLinearSystem(matrix, rhs, &closed_counts),
                   "Lemma B.3 system must be non-singular");
  Rational total(0);
  for (const Rational& count : closed_counts) total += count;
  SHAPCQ_CHECK_MSG(total.denominator().IsOne(),
                   "independent-set count must be integral");
  return total.numerator();
}

}  // namespace shapcq
