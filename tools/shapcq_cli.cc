// shapcq_cli — command-line front end for quick experiments.
//
//   shapcq_cli --db "Stud(a) TA(a)* Reg(a,os)*" \
//              --query "q() :- Stud(x), not TA(x), Reg(x,y)" \
//              [--exo Rel1,Rel2] [--threads N] [--brute-force]
//              [--classify-only]
//
// Facts use the Database::ToString format ('*' marks endogenous). Prints the
// dichotomy classification and, when an engine applies, the full attribution
// report (every endogenous fact's exact Shapley value, ranked).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/plan.h"
#include "core/report.h"
#include "db/textio.h"
#include "query/classify.h"
#include "query/parser.h"

namespace {

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: shapcq_cli --db FACTS --query RULE [--exo R1,R2,...]\n"
      "                  [--threads N] [--brute-force] [--classify-only]\n"
      "                  [--explain]\n"
      "  FACTS: whitespace-separated facts, '*' suffix = endogenous,\n"
      "         e.g. \"Stud(a) TA(a)* Reg(a,os)*\"\n"
      "  RULE:  e.g. \"q() :- Stud(x), not TA(x), Reg(x,y)\"\n"
      "  N:     worker threads for the all-facts engines; 1 = serial\n"
      "         (default), 0 = all hardware threads. Values are identical\n"
      "         at any thread count.\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace shapcq;
  std::string db_text, query_text, exo_text;
  bool brute_force = false, classify_only = false, explain = false;
  unsigned long num_threads = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        PrintUsage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--db") {
      db_text = next();
    } else if (arg == "--query") {
      query_text = next();
    } else if (arg == "--exo") {
      exo_text = next();
    } else if (arg == "--threads") {
      char* end = nullptr;
      const char* text = next();
      num_threads = std::strtoul(text, &end, 10);
      // strtoul silently wraps a leading '-', so reject it explicitly.
      if (end == text || *end != '\0' || text[0] == '-') {
        std::fprintf(stderr, "bad --threads value: %s\n", text);
        return 2;
      }
    } else if (arg == "--brute-force") {
      brute_force = true;
    } else if (arg == "--classify-only") {
      classify_only = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }
  if (db_text.empty() || query_text.empty()) {
    PrintUsage();
    return 2;
  }

  auto db = ParseDatabase(db_text);
  if (!db.ok()) {
    std::fprintf(stderr, "bad --db: %s\n", db.error().c_str());
    return 1;
  }
  auto query = ParseCQ(query_text);
  if (!query.ok()) {
    std::fprintf(stderr, "bad --query: %s\n", query.error().c_str());
    return 1;
  }
  ExoRelations exo;
  std::string rest = exo_text;
  while (!rest.empty()) {
    const size_t comma = rest.find(',');
    exo.insert(rest.substr(0, comma));
    rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
  }

  auto verdict = exo.empty() ? ClassifyExactShapley(query.value())
                             : ClassifyExactShapley(query.value(), exo);
  if (verdict.ok()) {
    std::printf("classification: %s\n", verdict.value().reason.c_str());
  } else {
    std::printf("classification: %s\n", verdict.error().c_str());
  }
  if (explain) {
    auto plan = CompileSafePlan(query.value());
    if (plan.ok()) {
      std::printf("safe plan:\n%s", ExplainPlan(*plan.value()).c_str());
    } else {
      std::printf("safe plan: %s\n", plan.error().c_str());
    }
  }
  if (classify_only) return 0;

  ReportOptions options;
  options.exo = exo;
  options.allow_brute_force = brute_force;
  options.num_threads = static_cast<size_t>(num_threads);
  auto report = BuildAttributionReport(query.value(), db.value(), options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n(hint: pass --brute-force for small |Dn|)\n",
                 report.error().c_str());
    return 1;
  }
  std::printf("%s", RenderReport(report.value(), db.value()).c_str());
  return 0;
}
