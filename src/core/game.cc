#include "core/game.h"

#include <algorithm>
#include <numeric>

#include "eval/homomorphism.h"
#include "util/check.h"
#include "util/combinatorics.h"

namespace shapcq {

QueryGame::QueryGame(const CQ& q, const Database& db) : cq_(&q), db_(db) {
  base_ = EvalBoolean(q, db, db.EmptyWorld()) ? 1 : 0;
}

QueryGame::QueryGame(const UCQ& q, const Database& db) : ucq_(&q), db_(db) {
  base_ = EvalBoolean(q, db, db.EmptyWorld()) ? 1 : 0;
}

size_t QueryGame::player_count() const { return db_.endogenous_count(); }

Rational QueryGame::Value(const std::vector<bool>& coalition) const {
  bool satisfied = cq_ != nullptr ? EvalBoolean(*cq_, db_, coalition)
                                  : EvalBoolean(*ucq_, db_, coalition);
  return Rational((satisfied ? 1 : 0) - base_);
}

Rational ShapleyBySubsets(const CooperativeGame& game, size_t player) {
  const size_t n = game.player_count();
  SHAPCQ_CHECK(player < n);
  SHAPCQ_CHECK_MSG(n <= 30, "subset enumeration beyond 2^30 is a bug");
  BigInt numerator(0);
  std::vector<bool> coalition(n, false);
  const uint64_t subsets = uint64_t{1} << (n - 1);
  // Iterate subsets of players \ {player} via a bitmask skipping `player`.
  for (uint64_t mask = 0; mask < subsets; ++mask) {
    size_t k = 0;
    size_t bit = 0;
    for (size_t p = 0; p < n; ++p) {
      if (p == player) {
        coalition[p] = false;
        continue;
      }
      coalition[p] = (mask >> bit) & 1;
      if (coalition[p]) ++k;
      ++bit;
    }
    const Rational without = game.Value(coalition);
    coalition[player] = true;
    const Rational with = game.Value(coalition);
    coalition[player] = false;
    const Rational delta = with - without;
    if (!delta.IsZero()) {
      // delta is integral for 0/1 games but may be any rational in general;
      // accumulate numerator over the common denominator n! by scaling.
      const BigInt weight =
          Combinatorics::Factorial(k) * Combinatorics::Factorial(n - 1 - k);
      // numerator += weight * delta, tracked exactly below.
      SHAPCQ_CHECK_MSG(delta.denominator().IsOne(),
                       "non-integral marginal contribution unsupported here");
      numerator += weight * delta.numerator();
    }
  }
  return Rational(numerator, Combinatorics::Factorial(n));
}

std::vector<Rational> ShapleyAllBySubsets(const CooperativeGame& game) {
  const size_t n = game.player_count();
  std::vector<Rational> values;
  values.reserve(n);
  for (size_t player = 0; player < n; ++player) {
    values.push_back(ShapleyBySubsets(game, player));
  }
  return values;
}

Rational ShapleyByPermutations(const CooperativeGame& game, size_t player) {
  const size_t n = game.player_count();
  SHAPCQ_CHECK(player < n);
  SHAPCQ_CHECK_MSG(n <= 8, "permutation enumeration beyond 8! is a bug");
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rational total(0);
  do {
    std::vector<bool> coalition(n, false);
    for (size_t pos = 0; pos < n; ++pos) {
      if (order[pos] == player) {
        const Rational without = game.Value(coalition);
        coalition[player] = true;
        const Rational with = game.Value(coalition);
        total += with - without;
        break;
      }
      coalition[order[pos]] = true;
    }
  } while (std::next_permutation(order.begin(), order.end()));
  return total / Rational(Combinatorics::Factorial(n));
}

}  // namespace shapcq
