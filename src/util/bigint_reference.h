// The retained seed implementation of BigInt: 32-bit limbs, schoolbook
// multiplication, shift-subtract division, Euclidean gcd.
//
// When the production BigInt moved to 64-bit limbs with inline small-value
// storage, Karatsuba multiplication and Knuth-D division, this copy of the
// original kernel was kept verbatim (modulo the class name) as the ground
// truth for two consumers:
//   * tests/bigint_reference_differential_test.cc pits every production
//     kernel against it across limb sizes, sign patterns and the Karatsuba
//     threshold boundary;
//   * bench/bench_arith.cc records its multiply/divide timings in the same
//     BENCH_arith.json as the production rows, so the CI speedup gate
//     (tools/check_arith_speedup.py) compares seed vs current on the same
//     machine in the same run.
// Do not optimize this class: its value is that it stays the seed.

#ifndef SHAPCQ_UTIL_BIGINT_REFERENCE_H_
#define SHAPCQ_UTIL_BIGINT_REFERENCE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace shapcq {

/// Seed-era arbitrary-precision signed integer (sign-magnitude, 32-bit
/// limbs, schoolbook kernels). Reference/baseline only — see file comment.
class RefBigInt {
 public:
  RefBigInt() : sign_(0) {}
  RefBigInt(int64_t value);  // NOLINT(google-explicit-constructor)
  static RefBigInt FromString(const std::string& text);
  static bool TryParse(const std::string& text, RefBigInt* out);

  int sign() const { return sign_; }
  bool IsZero() const { return sign_ == 0; }
  bool IsNegative() const { return sign_ < 0; }
  bool IsOne() const {
    return sign_ == 1 && limbs_.size() == 1 && limbs_[0] == 1;
  }

  size_t BitLength() const;

  RefBigInt operator-() const;
  RefBigInt Abs() const;

  RefBigInt operator+(const RefBigInt& other) const;
  RefBigInt operator-(const RefBigInt& other) const;
  RefBigInt operator*(const RefBigInt& other) const;
  RefBigInt operator/(const RefBigInt& other) const;
  RefBigInt operator%(const RefBigInt& other) const;

  RefBigInt& operator+=(const RefBigInt& other) {
    return AccumulateSigned(other, 1);
  }
  RefBigInt& operator-=(const RefBigInt& other) {
    return AccumulateSigned(other, -1);
  }
  RefBigInt& operator*=(const RefBigInt& other);
  RefBigInt& operator/=(const RefBigInt& other) {
    return *this = *this / other;
  }

  RefBigInt& AddProductOf(const RefBigInt& a, const RefBigInt& b);

  static void DivMod(const RefBigInt& dividend, const RefBigInt& divisor,
                     RefBigInt* quotient, RefBigInt* remainder);

  static RefBigInt Gcd(const RefBigInt& a, const RefBigInt& b);

  RefBigInt ShiftLeft(size_t bits) const;

  bool operator==(const RefBigInt& other) const;
  bool operator!=(const RefBigInt& other) const { return !(*this == other); }
  bool operator<(const RefBigInt& other) const;
  bool operator<=(const RefBigInt& other) const { return !(other < *this); }
  bool operator>(const RefBigInt& other) const { return other < *this; }
  bool operator>=(const RefBigInt& other) const { return !(*this < other); }

  std::string ToString() const;
  double ToDouble() const;
  int64_t ToInt64() const;
  bool FitsInt64() const;

 private:
  static int CompareMagnitude(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b);
  static std::vector<uint32_t> AddMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  static std::vector<uint32_t> SubMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  static std::vector<uint32_t> MulMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  static uint32_t DivModSmallInPlace(std::vector<uint32_t>* limbs,
                                     uint32_t divisor);
  RefBigInt& AccumulateSigned(const RefBigInt& other, int sign_multiplier);
  void Normalize();

  int sign_;                     // -1, 0, +1
  std::vector<uint32_t> limbs_;  // little-endian magnitude; empty iff zero
};

}  // namespace shapcq

#endif  // SHAPCQ_UTIL_BIGINT_REFERENCE_H_
