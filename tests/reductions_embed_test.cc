// Lemma B.4 embedding and the Lemma B.1/B.2 base-query transformations:
// Shapley values must be preserved exactly (verified by brute force).

#include "reductions/embed.h"

#include <gtest/gtest.h>

#include <tuple>

#include "core/brute_force.h"
#include "query/parser.h"
#include "reductions/iscount.h"
#include "util/random.h"

namespace shapcq {
namespace {

// A random base instance for the q_RST-family: R and T facts endogenous with
// probability `endo_bias`, S exogenous with the closure property (every
// S(a,b) has R(a) and T(b) in D) that Lemmas B.1/B.4 assume.
Database RandomBaseInstance(int left, int right, double edge_probability,
                            Rng* rng, double endo_bias = 0.8) {
  Database db;
  auto left_value = [](int i) { return V("L" + std::to_string(i)); };
  auto right_value = [](int i) { return V("Rv" + std::to_string(i)); };
  for (int a = 0; a < left; ++a) {
    db.AddFact("R", {left_value(a)}, rng->Bernoulli(endo_bias));
  }
  for (int b = 0; b < right; ++b) {
    db.AddFact("T", {right_value(b)}, rng->Bernoulli(endo_bias));
  }
  db.DeclareRelation("S", 2);
  for (int a = 0; a < left; ++a) {
    for (int b = 0; b < right; ++b) {
      if (rng->Bernoulli(edge_probability)) {
        db.AddExo("S", {left_value(a), right_value(b)});
      }
    }
  }
  return db;
}

TEST(PlanEmbeddingTest, BaseKindFollowsPolarity) {
  EXPECT_EQ(PlanEmbedding(MustParseCQ("q() :- R(x), S(x,y), T(y)"))
                .value()
                .base,
            BaseQueryKind::kRst);
  EXPECT_EQ(PlanEmbedding(MustParseCQ("q() :- not R(x), S(x,y), not T(y)"))
                .value()
                .base,
            BaseQueryKind::kNegRSNegT);
  EXPECT_EQ(PlanEmbedding(MustParseCQ("q() :- R(x), not S(x,y), T(y)"))
                .value()
                .base,
            BaseQueryKind::kRNegSt);
  EXPECT_EQ(PlanEmbedding(MustParseCQ("q() :- R(x), S(x,y), not T(y)"))
                .value()
                .base,
            BaseQueryKind::kRSNegT);
  // Swapped endpoint: the negative atom must land on the T side.
  auto swapped =
      PlanEmbedding(MustParseCQ("q() :- not R(x), S(x,y), T(y)")).value();
  EXPECT_EQ(swapped.base, BaseQueryKind::kRSNegT);
  EXPECT_TRUE(swapped.triplet.alpha_y == 0);  // the ¬R atom plays ¬T
}

TEST(PlanEmbeddingTest, HierarchicalRejected) {
  EXPECT_FALSE(PlanEmbedding(MustParseCQ("q() :- R(x), S(x)")).ok());
}

TEST(LemmaB1Test, ReversalIdentity) {
  // Shapley(D, q_RST, f) = −Shapley(D, q_¬RS¬T, f). The reversal bijection
  // needs every R/T fact endogenous (as in the q_RST hardness instances the
  // lemma is applied to) in addition to the stated closure assumptions.
  Rng rng(31);
  const CQ q_rst = QRst();
  const CQ q_neg = QNegRSNegT();
  for (int trial = 0; trial < 6; ++trial) {
    Database db = RandomBaseInstance(2, 2, 0.7, &rng, /*endo_bias=*/1.0);
    for (FactId f : db.endogenous_facts()) {
      EXPECT_EQ(ShapleyBruteForce(q_rst, db, f),
                -ShapleyBruteForce(q_neg, db, f))
          << db.FactToString(f) << " in " << db.ToString();
    }
  }
}

TEST(LemmaB2Test, ComplementIdentity) {
  // Shapley(D, q_RST, f) = Shapley(D', q_R¬ST, f) with S complemented
  // within R × T.
  Rng rng(32);
  const CQ q_rst = QRst();
  const CQ q_comp = QRNegSt();
  for (int trial = 0; trial < 6; ++trial) {
    Database db = RandomBaseInstance(2, 2, 0.5, &rng);
    Database complemented = ComplementSWithinRT(db);
    ASSERT_EQ(db.endogenous_count(), complemented.endogenous_count());
    for (FactId f : db.endogenous_facts()) {
      FactId mapped = complemented.FindFact(
          db.schema().name(db.relation_of(f)), db.tuple_of(f));
      ASSERT_NE(mapped, kNoFact);
      EXPECT_EQ(ShapleyBruteForce(q_rst, db, f),
                ShapleyBruteForce(q_comp, complemented, mapped))
          << db.FactToString(f) << " in " << db.ToString();
    }
  }
}

// ---------------------------------------------------------------------------
// Full Lemma B.4 embeddings: Shapley preserved for every endogenous fact.
// ---------------------------------------------------------------------------

using EmbedSweepParam = std::tuple<const char*, int>;

class EmbedSweep : public ::testing::TestWithParam<EmbedSweepParam> {};

TEST_P(EmbedSweep, ShapleyPreserved) {
  const CQ q = MustParseCQ(std::get<0>(GetParam()));
  auto plan = PlanEmbedding(q);
  ASSERT_TRUE(plan.ok()) << plan.error();
  const CQ base_query = BaseQueryOf(plan.value().base);
  Rng rng(static_cast<uint64_t>(std::get<1>(GetParam())) * 7741 + 19);
  Database base_db = RandomBaseInstance(2, 2, 0.6, &rng);
  Database embedded = EmbedDatabase(q, plan.value(), base_db);
  ASSERT_EQ(base_db.endogenous_count(), embedded.endogenous_count());
  for (FactId f : base_db.endogenous_facts()) {
    const FactId mapped =
        MapEmbeddedFact(base_db, f, q, plan.value(), embedded);
    EXPECT_EQ(ShapleyBruteForce(base_query, base_db, f),
              ShapleyBruteForce(q, embedded, mapped))
        << "base " << base_db.FactToString(f) << "\nbase db "
        << base_db.ToString() << "\nembedded " << embedded.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    NonHierarchicalShapes, EmbedSweep,
    ::testing::Combine(
        ::testing::Values(
            // The four base shapes embed into themselves.
            "q() :- R(x), S(x,y), T(y)",
            "q() :- not R(x), S(x,y), not T(y)",
            "q() :- R(x), S(x,y), not T(y)",
            "q() :- not R(x), S(x,y), T(y)",  // swapped q_RS¬T
            // Wider queries with spectator atoms and negatives.
            "q() :- A(x), B(x,y), C(y), D(x,y)",
            "q2() :- Stud(x), not TA(x), Reg(x,y), not Course(y)",
            "q() :- A(x), B(x,y), not C(y), not E(x)"),
        ::testing::Range(0, 4)));

}  // namespace
}  // namespace shapcq
