// The unified ReportRequest surface: one grammar, one parser, consumed by
// both the CLI (flags assemble key=value tokens) and the server's REPORT
// command — report parameters are validated in exactly one place.
//
// Structured grammar (any token containing '=' selects it, and then every
// token must be a key=value pair; keys are single-use):
//
//   top_k=K          keep only the K highest-ranked rows (0 = all)
//   threads=N        worker threads (1 = serial, 0 = hardware concurrency)
//   approx=EPS,DELTA sampling tier: additive error EPS at joint failure
//                    probability DELTA, both in (0,1); "approx=EPS" defaults
//                    DELTA to 0.05
//   seed=S           RNG seed of the sampling tier (default 0)
//   max_samples=M    per-orbit sample cap (0 = the full Hoeffding count;
//                    capping widens the reported intervals)
//   force_approx=0|1 sample even when an exact engine applies
//   engine=arena|tree numeric core for per-report engine builds (arena =
//                    the flat SoA arena, the default; tree = the
//                    pointer-linked oracle); values are bit-identical
//   deadline_ms=N    wall-clock budget for this report; expiry returns the
//                    structured [E_DEADLINE] error (or degrades, per
//                    on_deadline). 0 = no deadline — also overrides a
//                    server --default-deadline-ms
//   on_deadline=error|approx
//                    policy when an exact report's deadline expires:
//                    'error' (the default) fails with [E_DEADLINE],
//                    'approx' degrades to the sampling tier (CI-annotated
//                    rows, "approx:" provenance). Inert without a deadline
//                    in effect, so it composes with the server default
//
// Deprecated positional grammar, kept for protocol compatibility (the PR 4
// transcripts): "[top_k] [--threads N]", with the original error strings.
// Mixing the two forms is an error; the deprecated form carries no deadline
// keys (a server --default-deadline-ms still applies to it).

#ifndef SHAPCQ_SERVICE_REPORT_REQUEST_H_
#define SHAPCQ_SERVICE_REPORT_REQUEST_H_

#include <cstddef>
#include <string>

#include "core/report.h"
#include "util/result.h"

namespace shapcq {

/// A parsed report request. Fields not mentioned keep their defaults.
struct ReportRequest {
  size_t top_k = 0;
  size_t threads = 1;
  ApproxSpec approx;            // enabled iff an approx key was given
  EngineCore engine_core = EngineCore::kArena;
  size_t deadline_ms = 0;          // 0 = no deadline
  bool deadline_in_request = false;  // deadline_ms key was given (so
                                     // deadline_ms=0 can override a server
                                     // default)
  OnDeadline on_deadline = OnDeadline::kError;
  bool deprecated_form = false; // parsed from the positional grammar

  /// The engine-facing options (exo/brute-force knobs stay default — they
  /// are not part of the request surface).
  ReportOptions ToReportOptions() const {
    ReportOptions options;
    options.top_k = top_k;
    options.num_threads = threads;
    options.approx = approx;
    options.engine_core = engine_core;
    options.deadline_ms = deadline_ms;
    options.on_deadline = on_deadline;
    return options;
  }
};

/// Parses the argument tail of a REPORT command (everything after the
/// session id) or a CLI-assembled request string. `default_threads` seeds
/// ReportRequest::threads (a threads key overrides it). Errors carry no
/// command context — callers prefix "report <id>: " etc.
Result<ReportRequest> ParseReportRequest(const std::string& args,
                                         size_t default_threads);

}  // namespace shapcq

#endif  // SHAPCQ_SERVICE_REPORT_REQUEST_H_
