// Responsibility and causal effect (Banzhaf), compared across engines and
// against the Shapley value on the paper's running example.

#include "core/measures.h"

#include <gtest/gtest.h>

#include <tuple>

#include "core/shapley.h"
#include "datasets/synthetic.h"
#include "datasets/university.h"
#include "query/parser.h"
#include "util/random.h"

namespace shapcq {
namespace {

TEST(MeasuresTest, ResponsibilityOnRunningExample) {
  UniversityDb u = BuildUniversityDb();
  const CQ q1 = UniversityQ1();
  // fr4 = Reg(Caroline, DB): counterfactual with contingency {fr5}
  // (remove Caroline's other registration; TA facts can stay since
  // Caroline is no TA). Minimal |Γ| = 1 -> responsibility 1/2.
  EXPECT_EQ(ResponsibilityBruteForce(q1, u.db, u.fr4), Rational::Of(1, 2));
  // ft3 = TA(David): never counterfactual -> 0.
  EXPECT_EQ(ResponsibilityBruteForce(q1, u.db, u.ft3), Rational(0));
  // ft1 = TA(Adam): on E = {fr1}, adding TA(Adam) flips true -> false; no
  // contingency needed beyond removing the other helpers: |Γ| = ?
  // (brute force decides; just require a nonzero value with f relevant).
  EXPECT_GT(ResponsibilityBruteForce(q1, u.db, u.ft1), Rational(0));
}

TEST(MeasuresTest, CausalEffectMatchesBruteForceOnRunningExample) {
  UniversityDb u = BuildUniversityDb();
  const CQ q1 = UniversityQ1();
  for (FactId f : u.db.endogenous_facts()) {
    auto fast = CausalEffectViaCountSat(q1, u.db, f);
    ASSERT_TRUE(fast.ok()) << fast.error();
    EXPECT_EQ(fast.value(), CausalEffectBruteForce(q1, u.db, f))
        << u.db.FactToString(f);
  }
}

TEST(MeasuresTest, SignsAgreeWithShapley) {
  // All three measures agree on the direction of influence.
  UniversityDb u = BuildUniversityDb();
  const CQ q1 = UniversityQ1();
  for (FactId f : u.db.endogenous_facts()) {
    const int shapley_sign = ShapleyViaCountSat(q1, u.db, f).value().sign();
    const int effect_sign = CausalEffectViaCountSat(q1, u.db, f).value().sign();
    EXPECT_EQ(shapley_sign, effect_sign) << u.db.FactToString(f);
    if (shapley_sign == 0) {
      EXPECT_EQ(ResponsibilityBruteForce(q1, u.db, f), Rational(0));
    } else {
      EXPECT_GT(ResponsibilityBruteForce(q1, u.db, f), Rational(0));
    }
  }
}

TEST(MeasuresTest, OnlyShapleyIsEfficient) {
  // Shapley sums to q(D) − q(Dx) = 1; the causal effect does not.
  UniversityDb u = BuildUniversityDb();
  const CQ q1 = UniversityQ1();
  Rational shapley_sum(0), effect_sum(0);
  for (FactId f : u.db.endogenous_facts()) {
    shapley_sum += ShapleyViaCountSat(q1, u.db, f).value();
    effect_sum += CausalEffectViaCountSat(q1, u.db, f).value();
  }
  EXPECT_EQ(shapley_sum, Rational(1));
  EXPECT_NE(effect_sum, Rational(1));
}

TEST(MeasuresTest, CausalEffectOfDictator) {
  // A fact that alone decides the query has causal effect exactly 1.
  Database db;
  FactId f = db.AddEndo("R", {V("cm1")});
  db.AddEndo("Noise", {V("cm2")});
  const CQ q = MustParseCQ("q() :- R(x)");
  EXPECT_EQ(CausalEffectViaCountSat(q, db, f).value(), Rational(1));
  EXPECT_EQ(ResponsibilityBruteForce(q, db, f), Rational(1));
}

using MeasuresSweepParam = std::tuple<const char*, int>;

class MeasuresSweep : public ::testing::TestWithParam<MeasuresSweepParam> {};

TEST_P(MeasuresSweep, CountingEngineMatchesBruteForce) {
  const CQ q = MustParseCQ(std::get<0>(GetParam()));
  Rng rng(static_cast<uint64_t>(std::get<1>(GetParam())) * 999331 + 77);
  SyntheticOptions options;
  options.domain_size = 3;
  options.facts_per_relation = 3;
  const Database db = RandomDatabaseForQuery(q, {}, options, &rng);
  for (FactId f : db.endogenous_facts()) {
    auto fast = CausalEffectViaCountSat(q, db, f);
    ASSERT_TRUE(fast.ok()) << fast.error();
    EXPECT_EQ(fast.value(), CausalEffectBruteForce(q, db, f))
        << db.FactToString(f) << " in " << db.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    HierarchicalShapes, MeasuresSweep,
    ::testing::Combine(::testing::Values("q() :- R(x), not S(x)",
                                         "q1() :- Stud(x), not TA(x), Reg(x,y)",
                                         "q() :- R(x), S(y)"),
                       ::testing::Range(0, 4)));

}  // namespace
}  // namespace shapcq
