// Text syntax for CQ¬ / UCQ¬.
//
// Grammar (one rule per query):
//
//   rule    := name "(" vars? ")" ":-" literal ("," literal)*
//   literal := ("not" | "!" | "¬")? name "(" terms? ")"
//   term    := identifier          -- a variable
//            | integer             -- a constant
//            | 'quoted text'       -- a constant
//
// Bare identifiers in argument positions are always variables; constants must
// be quoted or numeric (so the paper's q2 is written
// "q2() :- Stud(x), not TA(x), Reg(x,y), not Course(y,'CS')").
// A UCQ¬ is one rule per line (blank lines ignored).

#ifndef SHAPCQ_QUERY_PARSER_H_
#define SHAPCQ_QUERY_PARSER_H_

#include <string>

#include "query/cq.h"
#include "query/ucq.h"
#include "util/result.h"

namespace shapcq {

/// Parses a single CQ¬ rule.
Result<CQ> ParseCQ(const std::string& text);

/// Parses a CQ¬ rule, aborting with the parse error on failure. For tests
/// and examples where the query text is a trusted literal.
CQ MustParseCQ(const std::string& text);

/// Parses a UCQ¬ (one rule per line).
Result<UCQ> ParseUCQ(const std::string& text);

/// Aborting variant of ParseUCQ.
UCQ MustParseUCQ(const std::string& text);

}  // namespace shapcq

#endif  // SHAPCQ_QUERY_PARSER_H_
