// The paper's running example (Figure 1): the university database with
// Stud, TA, Course, Reg and Adv, plus the queries q1-q4 of Example 2.2 and
// the exact Shapley values of Example 2.3 / Appendix A as test vectors.

#ifndef SHAPCQ_DATASETS_UNIVERSITY_H_
#define SHAPCQ_DATASETS_UNIVERSITY_H_

#include "db/database.h"
#include "query/cq.h"
#include "util/rational.h"

namespace shapcq {

/// The Figure 1 database with named handles on the endogenous facts.
/// Stud, Course and Adv are exogenous; TA and Reg are endogenous
/// (Example 2.3).
struct UniversityDb {
  Database db;
  // TA facts.
  FactId ft1;  // TA(Adam)
  FactId ft2;  // TA(Ben)
  FactId ft3;  // TA(David)
  // Reg facts.
  FactId fr1;  // Reg(Adam, OS)
  FactId fr2;  // Reg(Adam, AI)
  FactId fr3;  // Reg(Ben, OS)
  FactId fr4;  // Reg(Caroline, DB)
  FactId fr5;  // Reg(Caroline, IC)
};

/// Builds the Figure 1 database.
UniversityDb BuildUniversityDb();

/// q1() :- Stud(x), ¬TA(x), Reg(x,y)                    (hierarchical)
CQ UniversityQ1();
/// q2() :- Stud(x), ¬TA(x), Reg(x,y), ¬Course(y,'CS')   (non-hierarchical)
CQ UniversityQ2();
/// q3() :- Adv(x,y), Adv(x,z), ¬TA(y), ¬TA(z), Reg(y,'IC'), Reg(z,'DB')
CQ UniversityQ3();
/// q4() :- Adv(x,y), Adv(x,z), TA(y), ¬TA(z), Reg(z,w), ¬Reg(y,w)
CQ UniversityQ4();

/// Example 2.3's exact values for q1, in the order
/// (ft1, ft2, ft3, fr1, fr2, fr3, fr4, fr5):
/// -3/28, -2/35, 0, 37/210, 37/210, 27/140, 13/42, 13/42.
std::vector<Rational> UniversityQ1PaperValues();

}  // namespace shapcq

#endif  // SHAPCQ_DATASETS_UNIVERSITY_H_
