#include "service/command_loop.h"

#include <cctype>
#include <cerrno>
#include <istream>
#include <ostream>

#include "db/textio.h"
#include "query/parser.h"
#include "service/report_request.h"

namespace shapcq {

namespace {

// Splits off the first whitespace-delimited token; *rest keeps everything
// after the separating whitespace (itself trimmed of leading whitespace).
std::string TakeToken(const std::string& text, std::string* rest) {
  size_t start = 0;
  while (start < text.size() &&
         std::isspace(static_cast<unsigned char>(text[start]))) {
    ++start;
  }
  size_t end = start;
  while (end < text.size() &&
         !std::isspace(static_cast<unsigned char>(text[end]))) {
    ++end;
  }
  size_t next = end;
  while (next < text.size() &&
         std::isspace(static_cast<unsigned char>(text[next]))) {
    ++next;
  }
  *rest = text.substr(next);
  return text.substr(start, end - start);
}

// Re-inserts the command context ("delta s1") into a registry error while
// keeping any structured "[E_...]" tag in front, so "[E_FACT_CAP] session
// at fact cap 2" surfaces as "[E_FACT_CAP] delta s1: session at fact cap
// 2" — the tag stays machine-greppable and the transcript format is
// unchanged from the single-writer loop.
std::string WithContext(const std::string& context, const std::string& error) {
  if (!error.empty() && error[0] == '[') {
    size_t close = error.find("] ");
    if (close != std::string::npos) {
      return error.substr(0, close + 2) + context + ": " +
             error.substr(close + 2);
    }
  }
  return context + ": " + error;
}

// The loop's registry options: the loop-level fact cap is enforced inside
// the registry (under the stripe lock), so merge it down.
RegistryOptions MergedRegistryOptions(const CommandLoopOptions& options) {
  RegistryOptions merged = options.registry;
  if (merged.max_session_facts == 0) {
    merged.max_session_facts = options.max_session_facts;
  }
  return merged;
}

// Reads one protocol line, distinguishing EOF from a transient read error.
// std::getline reports both as a non-good stream; treating them alike made
// an EINTR-interrupted read (any signal without SA_RESTART — SIGCONT after
// job control, say) silently end the session with exit 0. Retrying is not
// enough on its own: an interrupted getline may have already extracted a
// partial line (eofbit, no failbit), so the chunks are accumulated across
// retries — otherwise a retried command would execute truncated.
//
// Returns true with a complete line to execute, false on EOF, stop, or an
// unrecoverable error. The final line of a stream that ends without '\n'
// still executes (eofbit set but failbit clear after extraction).
bool ReadCommandLine(std::istream& in, std::string* line,
                     const volatile std::sig_atomic_t* stop) {
  line->clear();
  std::string chunk;
  while (true) {
    errno = 0;
    std::getline(in, chunk);
    line->append(chunk);
    if (in.good()) return true;
    // Shutdown beats retry: drop any partial line, the command never ran.
    if (stop != nullptr && *stop) return false;
    if (errno == EINTR && !in.bad()) {
      in.clear();
      continue;
    }
    // eofbit alone (failbit clear) means a final unterminated line was
    // extracted: execute it. failbit means nothing more to execute.
    return !in.fail();
  }
}

}  // namespace

CommandLoop::CommandLoop(const CommandLoopOptions& options)
    : owned_registry_(
          std::make_unique<EngineRegistry>(MergedRegistryOptions(options))),
      registry_(owned_registry_.get()),
      options_(options) {}

CommandLoop::CommandLoop(const CommandLoopOptions& options,
                         EngineRegistry* registry, SessionLogManager* log)
    : registry_(registry), log_(log), options_(options) {}

Result<size_t> CommandLoop::InitDurability() {
  if (owned_registry_ == nullptr || options_.log_dir.empty()) {
    return Result<size_t>::Ok(0);
  }
  auto manager = SessionLogManager::Open(options_.log_dir, options_.fsync,
                                         options_.snapshot_every);
  if (!manager.ok()) return Result<size_t>::Error(manager.error());
  owned_log_ =
      std::make_unique<SessionLogManager>(std::move(manager).value());
  log_ = owned_log_.get();
  return log_->Recover(registry_);
}

void CommandLoop::ExecuteLine(const std::string& line, std::string* out) {
  auto fail = [this, out](const std::string& message) {
    *out += "error: " + message + "\n";
    ++error_count_;
  };

  if (options_.max_line_bytes > 0 && line.size() > options_.max_line_bytes) {
    // Resource guard: refuse to parse (or echo) an oversized line, but keep
    // the loop alive — one hostile line must not take the server down.
    return fail("[E_LINE_TOO_LONG] input line of " +
                std::to_string(line.size()) + " bytes exceeds limit " +
                std::to_string(options_.max_line_bytes));
  }

  size_t start = line.find_first_not_of(" \t\r");
  if (start == std::string::npos || line[start] == '#') return;
  size_t end = line.find_last_not_of(" \t\r");
  const std::string trimmed = line.substr(start, end - start + 1);
  if (options_.echo_commands) *out += "> " + trimmed + "\n";

  std::string rest;
  const std::string command = TakeToken(trimmed, &rest);

  if (command == "OPEN") {
    std::string query_text;
    const std::string id = TakeToken(rest, &query_text);
    if (id.empty() || query_text.empty()) {
      return fail("usage: OPEN <session> <query-rule>");
    }
    auto query = ParseCQ(query_text);
    if (!query.ok()) return fail("open " + id + ": " + query.error());
    auto opened = registry_->Open(id, query.value());
    if (!opened.ok()) return fail("open " + id + ": " + opened.error());
    if (log_ != nullptr) {
      auto logged = log_->LogOpen(id, query_text);
      if (!logged.ok()) {
        // The session exists only in RAM and could not be made durable:
        // fail the command and roll the open back, rather than serving a
        // session that would silently vanish on restart.
        registry_->Close(id);
        return fail("[E_LOG_IO] open " + id + ": " + logged.error());
      }
    }
    // Approx-only sessions (safe, self-join-free, but non-hierarchical)
    // announce themselves so clients know reports need approx=EPS,DELTA.
    *out += "ok open " + id + (opened.value() ? "" : " approx-only") + "\n";
    return;
  }

  if (command == "DELTA") {
    std::string mutation_text;
    const std::string id = TakeToken(rest, &mutation_text);
    if (id.empty() || mutation_text.empty()) {
      return fail("usage: DELTA <session> +|- <fact-literal>");
    }
    auto mutation = ParseMutationLine(mutation_text);
    if (!mutation.ok()) return fail("delta " + id + ": " + mutation.error());
    // The whole check-log-apply sequence runs under the session's stripe
    // lock inside Mutate: the fact-cap check, the write-ahead append and
    // the apply cannot interleave with another connection's commands on
    // this session, so log order == apply order. If the apply fails after
    // the append, replay fails identically against the same database
    // state, so the logged record stays a faithful no-op.
    std::function<Result<bool>()> write_ahead = [this, &id,
                                                 &mutation_text]() {
      return log_->LogDelta(id, mutation_text);
    };
    std::function<void(const Database&)> post_apply =
        [this, &id](const Database& db) { log_->MaybeAutoCompact(id, db); };
    auto applied =
        registry_->Mutate(id, mutation.value(),
                          log_ != nullptr ? &write_ahead : nullptr,
                          log_ != nullptr ? &post_apply : nullptr);
    if (!applied.ok()) {
      return fail(WithContext("delta " + id, applied.error()));
    }
    *out += "ok delta " + id +
            " facts=" + std::to_string(applied.value().fact_count) +
            " endo=" + std::to_string(applied.value().endo_count) + "\n";
    return;
  }

  if (command == "REPORT") {
    std::string args;
    const std::string id = TakeToken(rest, &args);
    if (id.empty()) {
      return fail(
          "usage: REPORT <session> [top_k=K threads=N approx=EPS,DELTA "
          "seed=S max_samples=M force_approx=0|1 deadline_ms=N "
          "on_deadline=error|approx]");
    }
    // One shared grammar with the CLI: structured key=value pairs, with the
    // PR 4 positional form "[top_k] [--threads N]" kept as a deprecated
    // compatibility path (identical error strings).
    auto parsed = ParseReportRequest(args, options_.default_threads);
    if (!parsed.ok()) {
      return fail("report " + id + ": " + parsed.error());
    }
    ReportOptions options = parsed.value().ToReportOptions();
    if (!parsed.value().deadline_in_request &&
        options_.default_deadline_ms > 0) {
      // The server-wide default covers requests that say nothing about
      // deadlines (the deprecated positional form included); an explicit
      // deadline_ms= — even =0 — always wins.
      options.deadline_ms = options_.default_deadline_ms;
    }
    if (log_ != nullptr) {
      // Batch fsync point: a served report only ever reflects state that
      // is already durable.
      auto synced = log_->SyncAll();
      if (!synced.ok()) {
        return fail("[E_LOG_IO] report " + id + ": " + synced.error());
      }
    }
    // Rank and render under the stripe lock: in shared mode the database
    // may mutate the instant another connection's DELTA gets the lock.
    auto report = registry_->ReportRendered(id, options);
    if (!report.ok()) {
      return fail(WithContext("report " + id, report.error()));
    }
    *out += "report " + id +
            " rows=" + std::to_string(report.value().rows) +
            " endo=" + std::to_string(report.value().endo_count) + "\n";
    *out += report.value().text;
    *out += "end report " + id + "\n";
    return;
  }

  if (command == "SNAPSHOT") {
    std::string after;
    const std::string id = TakeToken(rest, &after);
    if (id.empty() || !after.empty()) return fail("usage: SNAPSHOT <session>");
    if (log_ == nullptr) {
      return fail("snapshot " + id + ": durability is off (no --log-dir)");
    }
    // Compact under the stripe lock so the snapshot sees a frozen fact
    // table (lock order: registry stripe, then the log manager's mutex).
    Result<bool> compacted = Result<bool>::Ok(false);
    size_t fact_count = 0;
    auto visited = registry_->VisitDatabase(
        id, [this, &id, &compacted, &fact_count](const Database& db) {
          compacted = log_->Compact(id, db);
          fact_count = db.fact_count();
        });
    if (!visited.ok()) {
      return fail(WithContext("snapshot " + id, visited.error()));
    }
    if (!compacted.ok()) {
      return fail("[E_LOG_IO] snapshot " + id + ": " + compacted.error());
    }
    const SessionLogStats stats = log_->Stats(id);
    *out += "ok snapshot " + id + " facts=" + std::to_string(fact_count) +
            " log_bytes=" + std::to_string(stats.log_bytes) + "\n";
    return;
  }

  if (command == "STATS") {
    std::string after;
    const std::string id = TakeToken(rest, &after);
    if (!after.empty()) return fail("usage: STATS [<session>]");
    if (id.empty()) {
      const RegistryStats stats = registry_->stats();
      *out += "stats sessions=" + std::to_string(stats.open_sessions) +
              " resident=" + std::to_string(stats.resident_engines);
      if (options_.stats_show_bytes) {
        *out += " bytes=" + std::to_string(stats.resident_bytes);
      }
      *out += " hits=" + std::to_string(stats.report_hits) +
              " cached=" + std::to_string(stats.report_cache_hits) +
              " cached_exact=" + std::to_string(stats.cached_exact_tables) +
              " cached_approx=" + std::to_string(stats.cached_approx_tables) +
              " misses=" + std::to_string(stats.report_misses) +
              " evictions=" + std::to_string(stats.evictions) +
              " builds=" + std::to_string(stats.engine_builds);
      if (stats.approx_reports > 0) {
        *out += " approx=" + std::to_string(stats.approx_reports);
      }
      if (stats.overloads > 0) {
        *out += " overloads=" + std::to_string(stats.overloads);
      }
      if (stats.deadline_exceeded > 0) {
        *out += " deadline_exceeded=" + std::to_string(stats.deadline_exceeded);
      }
      if (stats.degraded_to_approx > 0) {
        *out += " degraded_to_approx=" +
                std::to_string(stats.degraded_to_approx);
      }
      // A gauge, not a counter: deterministically 0 whenever STATS cannot
      // run concurrently with a report (every serial transcript).
      *out += " inflight=" + std::to_string(stats.inflight);
      if (options_.transport_stats != nullptr) {
        *out += " io_timeouts=" +
                std::to_string(options_.transport_stats->io_timeouts.load(
                    std::memory_order_relaxed));
      }
      if (log_ != nullptr) {
        *out += " log_bytes=" + std::to_string(log_->TotalLogBytes());
      }
      *out += "\n";
      return;
    }
    auto stats = registry_->Stats(id);
    if (!stats.ok()) return fail("stats " + id + ": " + stats.error());
    const SessionStats& s = stats.value();
    *out += "stats " + id + " facts=" + std::to_string(s.fact_count) +
            " endo=" + std::to_string(s.endo_count) +
            " deltas=" + std::to_string(s.deltas_applied) +
            " reports=" + std::to_string(s.reports_served) +
            " builds=" + std::to_string(s.engine_builds) +
            " resident=" + (s.engine_resident ? "yes" : "no");
    if (!s.exact_capable) *out += " tier=approx-only";
    if (s.cached_approx_tables > 0) {
      *out += " cached_approx=" + std::to_string(s.cached_approx_tables);
    }
    if (s.deadline_exceeded > 0) {
      *out += " deadline_exceeded=" + std::to_string(s.deadline_exceeded);
    }
    if (log_ != nullptr) {
      const SessionLogStats log_stats = log_->Stats(id);
      *out += " log_bytes=" + std::to_string(log_stats.log_bytes) +
              " since_snapshot=" +
              std::to_string(log_stats.records_since_snapshot);
    }
    *out += "\n";
    return;
  }

  if (command == "CLOSE") {
    std::string after;
    const std::string id = TakeToken(rest, &after);
    if (id.empty() || !after.empty()) return fail("usage: CLOSE <session>");
    auto closed = registry_->Close(id);
    if (!closed.ok()) return fail("close " + id + ": " + closed.error());
    // The stream ended: its log has nothing left to recover.
    if (log_ != nullptr) log_->Drop(id);
    *out += "ok close " + id + "\n";
    return;
  }

  fail("unknown command '" + command +
       "' (expected OPEN, DELTA, REPORT, SNAPSHOT, STATS or CLOSE)");
}

int CommandLoop::Run(std::istream& in, std::ostream& out,
                     const volatile std::sig_atomic_t* stop) {
  std::string line;
  while (!(stop != nullptr && *stop) && ReadCommandLine(in, &line, stop)) {
    std::string output;
    ExecuteLine(line, &output);
    out << output;
    out.flush();  // interactive clients see each command's output promptly
  }
  // EOF or graceful shutdown: whatever the fsync policy batched up becomes
  // durable before the process exits. In shared mode the server syncs once
  // for all connections instead.
  if (owned_log_ != nullptr) owned_log_->SyncAll();
  return error_count_ == 0 ? 0 : 1;
}

}  // namespace shapcq
