// Arbitrary-precision signed integers.
//
// Shapley values over databases are ratios of sums of factorials; with a few
// hundred endogenous facts those factorials have thousands of bits, so exact
// computation requires big integers. This is a self-contained sign-magnitude
// implementation tuned for the CntSat convolution cascades that dominate
// every engine in this library:
//
//   * 64-bit limbs with 128-bit intermediates (`unsigned __int128` where the
//     compiler provides it, a portable 32-bit-split fallback otherwise) —
//     half the limb traffic of the seed 32-bit kernel for the same values.
//   * Small-value inline storage: magnitudes of up to kInlineLimbs (3) limbs
//     — 192 bits, which covers the overwhelming majority of count-vector
//     cells early in every cascade — live inside the object with no heap
//     allocation at all.
//   * Heap spills draw limb buffers from a thread-local size-class pool
//     (see LimbPool in bigint.cc) instead of the global allocator, so
//     convolution inner loops stop churning malloc/free.
//   * Multiplication is schoolbook below kKaratsubaThreshold limbs and
//     Karatsuba above it (threshold tuned with bench/bench_arith.cc; see
//     DESIGN.md "Arithmetic backbone"). Division is Knuth Algorithm D with
//     a single-limb fast path; Gcd is binary (Stein) with one Euclid step
//     to equalize very unbalanced operands.
//
// Results are bit-identical to the retained seed implementation
// (util/bigint_reference.h), which the differential test battery enforces.

#ifndef SHAPCQ_UTIL_BIGINT_H_
#define SHAPCQ_UTIL_BIGINT_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>

namespace shapcq {

/// Arbitrary-precision signed integer (sign-magnitude, 64-bit limbs, inline
/// small-value storage, pooled heap limbs).
class BigInt {
 public:
  /// One magnitude digit. Little-endian order throughout.
  using Limb = uint64_t;

  /// Magnitudes of at most this many limbs are stored inline (no heap).
  static constexpr uint32_t kInlineLimbs = 3;
  /// Operands with min(|a|, |b|) at or above this many limbs multiply via
  /// Karatsuba; below it, schoolbook wins (threshold methodology in
  /// DESIGN.md; re-tune with bench_arith's BM_BigIntMul sweep).
  static constexpr size_t kKaratsubaThreshold = 16;

  /// Zero.
  BigInt() : size_(0), sign_(0), capacity_(kInlineLimbs) {}
  /// From a machine integer.
  BigInt(int64_t value);  // NOLINT(google-explicit-constructor): numeric glue

  BigInt(const BigInt& other);
  BigInt(BigInt&& other) noexcept;
  BigInt& operator=(const BigInt& other);
  BigInt& operator=(BigInt&& other) noexcept;
  ~BigInt();

  /// Parses a decimal string with optional leading '-'. Aborts on bad input;
  /// use TryParse for untrusted input.
  static BigInt FromString(const std::string& text);
  /// Parses a decimal string; returns false (leaving *out untouched) on
  /// malformed input.
  static bool TryParse(const std::string& text, BigInt* out);

  /// -1, 0 or +1.
  int sign() const { return sign_; }
  bool IsZero() const { return sign_ == 0; }
  bool IsNegative() const { return sign_ < 0; }
  bool IsOne() const { return sign_ == 1 && size_ == 1 && limbs()[0] == 1; }

  /// Number of significant bits of the magnitude (0 for zero).
  size_t BitLength() const;

  /// Approximate memory footprint in bytes (object plus owned limb storage).
  /// Inline magnitudes cost exactly sizeof(BigInt) — the inline limbs are
  /// part of the object and must not be double-counted. A heap buffer is
  /// attributed to the BigInt that currently owns it; buffers parked in the
  /// thread-local free pool belong to no value and are not counted here.
  /// Feeds the byte-budgeted LRU accounting of the serving layer; an
  /// estimate, not an allocator audit.
  size_t ApproxMemoryBytes() const {
    return sizeof(BigInt) + (IsHeap() ? capacity_ * sizeof(Limb) : 0);
  }

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;
  /// Truncated division (C++ semantics: quotient rounds toward zero).
  BigInt operator/(const BigInt& other) const;
  /// Remainder with the sign of the dividend (C++ semantics).
  BigInt operator%(const BigInt& other) const;

  /// True in-place accumulation: reuses this value's limb storage instead of
  /// allocating a temporary and copy-assigning it back. The hot loops of the
  /// CntSat convolutions run entirely on += / AddProductOf.
  BigInt& operator+=(const BigInt& other) { return AccumulateSigned(other, 1); }
  BigInt& operator-=(const BigInt& other) { return AccumulateSigned(other, -1); }
  BigInt& operator*=(const BigInt& other);
  BigInt& operator/=(const BigInt& other) { return *this = *this / other; }

  /// Fused multiply-accumulate: *this += a * b. When the product's sign
  /// cannot flip the accumulator's (the invariant throughout count-vector
  /// arithmetic, where everything is non-negative) and the operands are
  /// below the Karatsuba threshold, the schoolbook partial products are
  /// accumulated directly into this value's limbs — no temporary BigInt is
  /// materialized. Large operands route through the Karatsuba multiplier
  /// into a pooled scratch buffer and are added in one pass.
  BigInt& AddProductOf(const BigInt& a, const BigInt& b);

  /// Computes quotient and remainder in one pass. Aborts if divisor is zero.
  static void DivMod(const BigInt& dividend, const BigInt& divisor,
                     BigInt* quotient, BigInt* remainder);

  /// Greatest common divisor of |a| and |b| (non-negative).
  static BigInt Gcd(const BigInt& a, const BigInt& b);

  /// this * 2^bits.
  BigInt ShiftLeft(size_t bits) const;

  /// Three-way comparison: -1, 0, +1 for a <=> b.
  static int Compare(const BigInt& a, const BigInt& b);

  bool operator==(const BigInt& other) const;
  bool operator!=(const BigInt& other) const { return !(*this == other); }
  bool operator<(const BigInt& other) const {
    return Compare(*this, other) < 0;
  }
  bool operator<=(const BigInt& other) const { return !(other < *this); }
  bool operator>(const BigInt& other) const { return other < *this; }
  bool operator>=(const BigInt& other) const { return !(*this < other); }

  /// Decimal representation.
  std::string ToString() const;
  /// Nearest double (may overflow to +/-inf for huge values).
  double ToDouble() const;
  /// Value as int64 if it fits; aborts otherwise.
  int64_t ToInt64() const;
  /// True if the value fits in int64.
  bool FitsInt64() const;

 private:
  bool IsHeap() const { return capacity_ > kInlineLimbs; }
  const Limb* limbs() const {
    return IsHeap() ? storage_.heap : storage_.inline_limbs;
  }
  Limb* limbs() { return IsHeap() ? storage_.heap : storage_.inline_limbs; }

  // Storage management (implemented over the thread-local LimbPool).
  // EnsureCapacity preserves the first size_ limbs; ReserveDiscard does not.
  void EnsureCapacity(size_t limb_count);
  void ReserveDiscard(size_t limb_count);
  void ReleaseStorage();
  void SetZero();
  // Drops leading zero limbs and syncs sign_ with size_.
  void TrimAndSync(int sign_if_nonzero);

  // Magnitude helpers on this object's buffer.
  BigInt& AccumulateSigned(const BigInt& other, int sign_multiplier);
  void AssignMagnitude(const Limb* limbs, size_t count, int sign);

  uint32_t size_;      // significant limbs; 0 iff value is zero
  int32_t sign_;       // -1, 0, +1; 0 iff size_ == 0
  uint32_t capacity_;  // kInlineLimbs when inline, pool class size when heap
  union {
    Limb inline_limbs[kInlineLimbs];
    Limb* heap;
  } storage_;
};

std::ostream& operator<<(std::ostream& os, const BigInt& value);

}  // namespace shapcq

#endif  // SHAPCQ_UTIL_BIGINT_H_
