// E6 — the additive FPRAS (Section 5.1) as served by the sampling tier
// (core/approx_engine.h), against ground truth on the running example.
//
//   BM_ApproxCiWidth/<m>        accuracy at a per-orbit sample budget m on
//                               the NON-hierarchical q2 (the query the
//                               exact engines refuse): per-fact estimates
//                               vs brute-force exact values.
//   BM_ApproxSamplesPerSec/<t>  sampling throughput at t worker threads
//                               (permutation draws + memoized oracle).
//
// Counters (tools/check_approx_accuracy.py gates them in CI):
//   ci_max            widest reported confidence radius across facts
//   abs_err_max       largest |estimate - exact| across facts
//   cover_margin_min  min over facts of (ci - |error|); >= 0 means every
//                     exact value sits inside its reported interval
//   samples_per_orbit the budget the run actually used
//   samples_per_sec   permutation samples per wall-clock second
//   eval_calls        oracle evaluations that missed the coalition cache
//
// Fixed seed + the engine's deterministic reduction make the accuracy rows
// reproducible: the gate checks a fixed outcome, not a probabilistic one.

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "core/approx_engine.h"
#include "core/brute_force.h"
#include "datasets/university.h"
#include "util/check.h"

namespace {

using namespace shapcq;

// Brute-force ground truth for q2 on the Figure 1 database, indexed by
// endo index (8 endogenous facts — exact in milliseconds, FP^#P-hard only
// asymptotically).
std::vector<double> ExactQ2Values(const CQ& q2, const Database& db) {
  std::vector<double> exact(db.endogenous_count());
  for (FactId f : db.endogenous_facts()) {
    exact[db.endo_index(f)] = ShapleyBruteForce(q2, db, f).ToDouble();
  }
  return exact;
}

void BM_ApproxCiWidth(benchmark::State& state) {
  UniversityDb u = BuildUniversityDb();
  const CQ q2 = UniversityQ2();
  const std::vector<double> exact = ExactQ2Values(q2, u.db);

  ApproxSpec spec;
  spec.epsilon = 0.01;  // Hoeffding count far above every budget below,
  spec.delta = 0.05;    // so max_samples sets the per-orbit budget exactly
  spec.seed = 42;
  spec.max_samples = static_cast<size_t>(state.range(0));

  std::vector<ApproxRow> rows;
  ApproxRunInfo info;
  for (auto _ : state) {
    auto engine = ApproxEngine::Create(q2, u.db, {});
    SHAPCQ_CHECK(engine.ok());
    ApproxEngine approx = std::move(engine).value();
    auto estimated = approx.EstimateAll(spec, /*num_threads=*/1);
    SHAPCQ_CHECK(estimated.ok());
    rows = std::move(estimated).value();
    info = approx.info();
    benchmark::DoNotOptimize(rows.data());
  }

  double ci_max = 0.0, abs_err_max = 0.0;
  double cover_margin_min = 1.0;
  for (size_t i = 0; i < rows.size(); ++i) {
    const double error = std::fabs(rows[i].estimate.ToDouble() - exact[i]);
    ci_max = std::max(ci_max, rows[i].ci_radius);
    abs_err_max = std::max(abs_err_max, error);
    cover_margin_min = std::min(cover_margin_min, rows[i].ci_radius - error);
  }
  state.counters["ci_max"] = ci_max;
  state.counters["abs_err_max"] = abs_err_max;
  state.counters["cover_margin_min"] = cover_margin_min;
  state.counters["samples_per_orbit"] =
      static_cast<double>(info.samples_per_orbit);
  state.counters["orbits"] = static_cast<double>(info.sampled_orbits);
}
BENCHMARK(BM_ApproxCiWidth)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_ApproxSamplesPerSec(benchmark::State& state) {
  UniversityDb u = BuildUniversityDb();
  const CQ q2 = UniversityQ2();

  ApproxSpec spec;
  spec.epsilon = 0.01;
  spec.delta = 0.05;
  spec.seed = 7;
  spec.max_samples = 4096;
  const size_t threads = static_cast<size_t>(state.range(0));

  size_t samples_total = 0, eval_calls = 0, cache_hits = 0;
  for (auto _ : state) {
    auto engine = ApproxEngine::Create(q2, u.db, {});
    SHAPCQ_CHECK(engine.ok());
    ApproxEngine approx = std::move(engine).value();
    auto estimated = approx.EstimateAll(spec, threads);
    SHAPCQ_CHECK(estimated.ok());
    benchmark::DoNotOptimize(estimated.value().data());
    samples_total += approx.info().samples_total;
    eval_calls += approx.info().eval_calls;
    cache_hits += approx.info().cache_hits;
  }
  state.counters["samples_per_sec"] = benchmark::Counter(
      static_cast<double>(samples_total), benchmark::Counter::kIsRate);
  state.counters["eval_calls"] =
      static_cast<double>(eval_calls) / state.iterations();
  state.counters["cache_hits"] =
      static_cast<double>(cache_hits) / state.iterations();
}
BENCHMARK(BM_ApproxSamplesPerSec)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
