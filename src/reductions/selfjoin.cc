#include "reductions/selfjoin.h"

#include <set>

#include "query/parser.h"
#include "util/check.h"

namespace shapcq {

CQ QSelfJoinPositive() { return MustParseCQ("q() :- U(x), M(x,y), U(y)"); }

CQ QSelfJoinNegative() {
  return MustParseCQ("q() :- not U(x), M(x,y), not U(y)");
}

Database CollapseRTIntoSelfJoin(const Database& base_db) {
  // The identification is only sound when no value appears on both sides
  // (otherwise an R fact could stand in for a T fact).
  std::set<int32_t> left, right;
  for (FactId fact : base_db.facts_of("R")) {
    left.insert(base_db.tuple_of(fact)[0].id);
  }
  for (FactId fact : base_db.facts_of("T")) {
    right.insert(base_db.tuple_of(fact)[0].id);
  }
  for (int32_t id : left) {
    SHAPCQ_CHECK_MSG(right.count(id) == 0,
                     "Theorem B.5 requires disjoint R/T domains");
  }
  // S must bridge the two sides only: S ⊆ dom(R) × dom(T), so that
  // homomorphisms of the collapsed query are exactly those of the base one.
  for (FactId fact : base_db.facts_of("S")) {
    SHAPCQ_CHECK_MSG(left.count(base_db.tuple_of(fact)[0].id) > 0 &&
                         right.count(base_db.tuple_of(fact)[1].id) > 0,
                     "S fact outside dom(R) x dom(T)");
  }

  Database out;
  out.DeclareRelation("U", 1);
  out.DeclareRelation("M", 2);
  for (FactId fact : base_db.facts_of("R")) {
    out.AddFact("U", base_db.tuple_of(fact), base_db.is_endogenous(fact));
  }
  for (FactId fact : base_db.facts_of("T")) {
    out.AddFact("U", base_db.tuple_of(fact), base_db.is_endogenous(fact));
  }
  for (FactId fact : base_db.facts_of("S")) {
    out.AddFact("M", base_db.tuple_of(fact), base_db.is_endogenous(fact));
  }
  return out;
}

FactId MapCollapsedFact(const Database& base_db, FactId base_fact,
                        const Database& collapsed_db) {
  const std::string& relation =
      base_db.schema().name(base_db.relation_of(base_fact));
  const std::string target =
      (relation == "R" || relation == "T") ? "U" : "M";
  const FactId mapped =
      collapsed_db.FindFact(target, base_db.tuple_of(base_fact));
  SHAPCQ_CHECK(mapped != kNoFact);
  return mapped;
}

}  // namespace shapcq
