// Microbenchmarks of the exact-arithmetic backbone: BigInt multiply /
// divmod / fused accumulate, CountVector convolution, and Rational
// normalization — the kernels every Shapley engine in this library bottoms
// out in.
//
// Each multiply/divmod family is benchmarked twice on the same values: once
// through the production BigInt (64-bit limbs, inline small-value storage,
// Karatsuba, Knuth-D) and once through the retained seed implementation
// RefBigInt (util/bigint_reference.h: 32-bit limbs, schoolbook,
// shift-subtract). Both rows land in the same BENCH_arith.json, so
// tools/check_arith_speedup.py can gate the seed-vs-current speedup from a
// single run on a single machine — no cross-host baseline drift.
//
// Arg = operand size in 64-bit limbs (the Ref rows hold the same values,
// i.e. twice as many 32-bit limbs).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "util/bigint.h"
#include "util/bigint_reference.h"
#include "util/count_vector.h"
#include "util/random.h"
#include "util/rational.h"

namespace {

using namespace shapcq;

// Deterministic dense operand of the requested 64-bit limb count, assembled
// once per benchmark setup; 32-bit chunk assembly works for both classes.
template <typename T>
T RandomValue(Rng* rng, size_t limbs64) {
  T result(0);
  for (size_t i = 0; i < limbs64; ++i) {
    result = result.ShiftLeft(32) +
             T(static_cast<int64_t>(rng->Next() & 0xffffffffu));
    result = result.ShiftLeft(32) +
             T(static_cast<int64_t>(rng->Next() & 0xffffffffu));
  }
  return result;
}

void BM_BigIntMul(benchmark::State& state) {
  const size_t limbs = static_cast<size_t>(state.range(0));
  Rng rng(limbs * 1000003 + 1);
  const BigInt a = RandomValue<BigInt>(&rng, limbs);
  const BigInt b = RandomValue<BigInt>(&rng, limbs);
  for (auto _ : state) {
    BigInt product = a * b;
    benchmark::DoNotOptimize(product);
  }
}
BENCHMARK(BM_BigIntMul)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(24)
    ->Arg(32)->Arg(48)->Arg(64)->Arg(96)->Arg(128);

void BM_RefBigIntMul(benchmark::State& state) {
  const size_t limbs = static_cast<size_t>(state.range(0));
  Rng rng(limbs * 1000003 + 1);  // same seed: same values as BM_BigIntMul
  const RefBigInt a = RandomValue<RefBigInt>(&rng, limbs);
  const RefBigInt b = RandomValue<RefBigInt>(&rng, limbs);
  for (auto _ : state) {
    RefBigInt product = a * b;
    benchmark::DoNotOptimize(product);
  }
}
BENCHMARK(BM_RefBigIntMul)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(24)
    ->Arg(32)->Arg(48)->Arg(64)->Arg(96)->Arg(128);

void BM_BigIntDivMod(benchmark::State& state) {
  const size_t limbs = static_cast<size_t>(state.range(0));
  Rng rng(limbs * 2000029 + 3);
  const BigInt dividend = RandomValue<BigInt>(&rng, 2 * limbs);
  const BigInt divisor = RandomValue<BigInt>(&rng, limbs);
  for (auto _ : state) {
    BigInt quotient, remainder;
    BigInt::DivMod(dividend, divisor, &quotient, &remainder);
    benchmark::DoNotOptimize(quotient);
    benchmark::DoNotOptimize(remainder);
  }
}
BENCHMARK(BM_BigIntDivMod)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_RefBigIntDivMod(benchmark::State& state) {
  const size_t limbs = static_cast<size_t>(state.range(0));
  Rng rng(limbs * 2000029 + 3);
  const RefBigInt dividend = RandomValue<RefBigInt>(&rng, 2 * limbs);
  const RefBigInt divisor = RandomValue<RefBigInt>(&rng, limbs);
  for (auto _ : state) {
    RefBigInt quotient, remainder;
    RefBigInt::DivMod(dividend, divisor, &quotient, &remainder);
    benchmark::DoNotOptimize(quotient);
    benchmark::DoNotOptimize(remainder);
  }
}
BENCHMARK(BM_RefBigIntDivMod)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// The fused convolution kernel exactly as CountVector uses it: accumulate
// a[i]*b[j] products into a dense cell array.
void BM_BigIntAddProductOf(benchmark::State& state) {
  const size_t limbs = static_cast<size_t>(state.range(0));
  Rng rng(limbs * 3000017 + 7);
  const BigInt a = RandomValue<BigInt>(&rng, limbs);
  const BigInt b = RandomValue<BigInt>(&rng, limbs);
  BigInt accumulator(0);
  for (auto _ : state) {
    accumulator.AddProductOf(a, b);
    benchmark::DoNotOptimize(accumulator);
  }
}
BENCHMARK(BM_BigIntAddProductOf)->Arg(1)->Arg(2)->Arg(8)->Arg(32);

// A convolution cascade of the shape the CntSat recursion produces: fold
// all-subsets vectors together, cells growing from one limb upward. This is
// the end-to-end consumer of the limb pool + inline storage.
void BM_ConvolveCascade(benchmark::State& state) {
  const size_t parts = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    CountVector acc;
    for (size_t i = 0; i < parts; ++i) {
      acc.ConvolveWith(CountVector::All(8));
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_ConvolveCascade)->Arg(4)->Arg(8)->Arg(16);

// Rational normalization with factorial-sized common factors: binary gcd
// plus two exact divisions per construction.
void BM_RationalNormalize(benchmark::State& state) {
  const int64_t n = state.range(0);
  BigInt numerator(1), denominator(1), common(1);
  for (int64_t i = 2; i <= n; ++i) common *= BigInt(i);         // n!
  for (int64_t i = 2; i <= n / 2; ++i) numerator *= BigInt(i);  // (n/2)!
  for (int64_t i = 2; i <= n / 3; ++i) denominator *= BigInt(i);
  const BigInt scaled_num = numerator * common;
  const BigInt scaled_den = denominator * common;
  for (auto _ : state) {
    Rational reduced(scaled_num, scaled_den);
    benchmark::DoNotOptimize(reduced);
  }
}
BENCHMARK(BM_RationalNormalize)->Arg(20)->Arg(60)->Arg(120);

}  // namespace

BENCHMARK_MAIN();
