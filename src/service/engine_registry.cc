#include "service/engine_registry.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>

#include "query/analysis.h"
#include "util/check.h"

namespace shapcq {

namespace {

// Serving copy of a cached full table: the k highest-ranked rows (0 = all),
// with the engine label and the full efficiency total — exactly what
// FillAndRankRows would have produced with ReportOptions::top_k set.
AttributionReport TruncatedCopy(const AttributionReport& full, size_t top_k) {
  AttributionReport copy;
  copy.engine = full.engine;
  copy.total = full.total;
  const size_t rows = top_k > 0 && top_k < full.rows.size()
                          ? top_k
                          : full.rows.size();
  copy.rows.assign(full.rows.begin(),
                   full.rows.begin() + static_cast<ptrdiff_t>(rows));
  return copy;
}

}  // namespace

// One open session. The Database is heap-allocated so its address survives
// unordered_map rehashes and registry moves — the incremental engine holds a
// pointer to it across calls.
struct EngineRegistry::Session {
  CQ query;
  std::unique_ptr<Database> db;
  std::optional<ShapleyEngine> engine;
  size_t engine_bytes = 0;   // last ApproxMemoryBytes estimate
  uint64_t last_used = 0;    // LRU stamp from the registry clock
  uint64_t mutation_epoch = 0;  // bumped by every applied mutation
  // Full ranked table of `cached_epoch`, kept while the engine is resident:
  // polling reports with no intervening delta skip the whole evaluation and
  // ranking pass (cleared with the engine on eviction).
  std::optional<AttributionReport> cached_report;
  uint64_t cached_epoch = 0;
  size_t deltas_applied = 0;
  size_t reports_served = 0;
  size_t engine_builds = 0;
};

struct EngineRegistry::Impl {
  RegistryOptions options;
  std::vector<std::string> session_order;  // OPEN order, for SessionIds
  std::unordered_map<std::string, Session> sessions;
  uint64_t clock = 0;  // monotone use counter backing the LRU order
  RegistryStats stats;

  Session* Find(const std::string& id) {
    auto it = sessions.find(id);
    return it == sessions.end() ? nullptr : &it->second;
  }
  const Session* Find(const std::string& id) const {
    auto it = sessions.find(id);
    return it == sessions.end() ? nullptr : &it->second;
  }

  void Evict(Session& session) {
    SHAPCQ_CHECK(session.engine.has_value());
    SHAPCQ_CHECK(stats.resident_engines > 0);
    SHAPCQ_CHECK(stats.resident_bytes >= session.engine_bytes);
    stats.resident_bytes -= session.engine_bytes;
    --stats.resident_engines;
    ++stats.evictions;
    session.engine.reset();
    session.cached_report.reset();  // the cache rides with the engine
    session.engine_bytes = 0;
  }

  // Updates the current session's byte estimate and evicts least-recently-
  // used engines until both limits hold. `current` (the session that just
  // served a request) is evicted only last, if it alone exceeds a limit.
  void EnforceBudget(Session& current) {
    if (current.engine.has_value()) {
      const size_t fresh = current.engine->ApproxMemoryBytes();
      stats.resident_bytes += fresh - current.engine_bytes;
      current.engine_bytes = fresh;
    }
    auto over = [this] {
      return (options.engine_byte_budget > 0 &&
              stats.resident_bytes > options.engine_byte_budget) ||
             (options.max_resident_engines > 0 &&
              stats.resident_engines > options.max_resident_engines);
    };
    while (over()) {
      Session* victim = nullptr;
      for (auto& [id, session] : sessions) {
        (void)id;
        if (!session.engine.has_value() || &session == &current) continue;
        if (victim == nullptr || session.last_used < victim->last_used) {
          victim = &session;
        }
      }
      if (victim == nullptr) {
        // Only the current engine is resident and it alone breaks a limit:
        // honor the budget between requests by evicting it too.
        if (current.engine.has_value()) Evict(current);
        return;
      }
      Evict(*victim);
    }
  }
};

EngineRegistry::EngineRegistry(const RegistryOptions& options)
    : impl_(std::make_unique<Impl>()) {
  impl_->options = options;
}
EngineRegistry::EngineRegistry() : EngineRegistry(RegistryOptions{}) {}
EngineRegistry::~EngineRegistry() = default;
EngineRegistry::EngineRegistry(EngineRegistry&&) noexcept = default;
EngineRegistry& EngineRegistry::operator=(EngineRegistry&&) noexcept = default;

Result<bool> EngineRegistry::Open(const std::string& session_id,
                                  const CQ& query) {
  if (impl_->Find(session_id) != nullptr) {
    return Result<bool>::Error("session " + session_id + " is already open");
  }
  // Fail at OPEN with the exact scope checks Build() would fail later, so a
  // session never accepts mutations it can not report on.
  if (!IsSafe(query)) {
    return Result<bool>::Error("query has unsafe negation: " +
                               query.ToString());
  }
  if (!IsSelfJoinFree(query)) {
    return Result<bool>::Error("query has a self-join: " + query.ToString());
  }
  if (!IsHierarchical(query)) {
    return Result<bool>::Error("query is not hierarchical: " +
                               query.ToString());
  }
  Session session;
  session.query = query;
  session.db = std::make_unique<Database>();
  impl_->sessions.emplace(session_id, std::move(session));
  impl_->session_order.push_back(session_id);
  ++impl_->stats.open_sessions;
  return Result<bool>::Ok(true);
}

bool EngineRegistry::Has(const std::string& session_id) const {
  return impl_->Find(session_id) != nullptr;
}

Result<FactId> EngineRegistry::ApplyMutation(const std::string& session_id,
                                             const MutationSpec& mutation) {
  Session* session = impl_->Find(session_id);
  if (session == nullptr) {
    return Result<FactId>::Error("no open session " + session_id);
  }
  Database& db = *session->db;
  const FactSpec& fact = mutation.fact;

  Result<FactId> applied = Result<FactId>::Error("");
  if (mutation.op == MutationSpec::Op::kDelete) {
    const FactId victim = db.FindFact(fact.relation, fact.tuple);
    if (victim == kNoFact) {
      return Result<FactId>::Error("no such fact " + FactSpecToString(fact));
    }
    if (session->engine.has_value()) {
      applied = session->engine->DeleteFact(db, victim);
    } else {
      db.RemoveFact(victim);
      applied = Result<FactId>::Ok(victim);
    }
  } else if (session->engine.has_value()) {
    applied = session->engine->InsertFact(db, fact.relation, fact.tuple,
                                          fact.endogenous);
  } else {
    // No resident engine: run the same checks InsertFact would, with the
    // SAME message strings, then mutate the database directly — a protocol
    // transcript must not depend on whether the engine happened to be
    // resident (or evicted) when a delta failed.
    const RelationId rel = db.schema().Find(fact.relation);
    if (rel != kNoRelation && db.schema().arity(rel) != fact.tuple.size()) {
      return Result<FactId>::Error(
          "InsertFact: arity mismatch for relation " + fact.relation);
    }
    for (const Atom& atom : session->query.atoms()) {
      if (atom.relation == fact.relation &&
          atom.arity() != fact.tuple.size()) {
        return Result<FactId>::Error(
            "InsertFact: arity mismatch with query atom " + fact.relation);
      }
    }
    if (rel != kNoRelation && db.FindFact(rel, fact.tuple) != kNoFact) {
      return Result<FactId>::Error("InsertFact: duplicate fact in " +
                                   fact.relation);
    }
    applied = Result<FactId>::Ok(
        db.AddFact(fact.relation, fact.tuple, fact.endogenous));
  }
  if (!applied.ok()) return applied;
  ++session->deltas_applied;
  ++session->mutation_epoch;
  session->last_used = ++impl_->clock;
  if (session->engine.has_value() &&
      impl_->options.engine_byte_budget > 0) {
    // The mutation may have grown the index (new slices, wider vectors):
    // re-estimate and let the byte budget evict if the registry is now
    // over. Without a byte budget the O(index) estimate walk would buy
    // nothing — a mutation cannot change the resident-engine COUNT, and
    // the estimate refreshes at the next computed report anyway — so the
    // delta path stays O(dirtied path).
    impl_->EnforceBudget(*session);
  }
  return applied;
}

Result<AttributionReport> EngineRegistry::Report(const std::string& session_id,
                                                 const ReportOptions& options) {
  Session* session = impl_->Find(session_id);
  if (session == nullptr) {
    return Result<AttributionReport>::Error("no open session " + session_id);
  }
  if (session->engine.has_value()) {
    ++impl_->stats.report_hits;
    if (session->cached_report.has_value() &&
        session->cached_epoch == session->mutation_epoch) {
      // Steady-state polling: no delta since the cached table was ranked,
      // so it is the report, verbatim. Nothing resident changed size, so
      // the budget needs no re-enforcement either.
      ++impl_->stats.report_cache_hits;
      ++session->reports_served;
      session->last_used = ++impl_->clock;
      return Result<AttributionReport>::Ok(
          TruncatedCopy(*session->cached_report, options.top_k));
    }
  } else {
    auto built = ShapleyEngine::Build(session->query, *session->db);
    if (!built.ok()) {
      return Result<AttributionReport>::Error(built.error());
    }
    session->engine.emplace(std::move(built).value());
    session->engine_bytes = 0;  // EnforceBudget refreshes the estimate
    ++impl_->stats.resident_engines;
    ++impl_->stats.report_misses;
    ++impl_->stats.engine_builds;
    ++session->engine_builds;
  }
  // Compute and cache the FULL table (top_k applied per serve, so one cache
  // entry answers every truncation). The served copy is taken before budget
  // enforcement: EnforceBudget may evict the current engine — and the cache
  // with it — when it alone exceeds the budget.
  ReportOptions full = options;
  full.top_k = 0;
  session->cached_report =
      BuildAttributionReportFromEngine(*session->engine, *session->db, full);
  session->cached_epoch = session->mutation_epoch;
  ++session->reports_served;
  session->last_used = ++impl_->clock;
  AttributionReport served =
      TruncatedCopy(*session->cached_report, options.top_k);
  impl_->EnforceBudget(*session);
  return Result<AttributionReport>::Ok(std::move(served));
}

Result<bool> EngineRegistry::Close(const std::string& session_id) {
  auto it = impl_->sessions.find(session_id);
  if (it == impl_->sessions.end()) {
    return Result<bool>::Error("no open session " + session_id);
  }
  Session& session = it->second;
  if (session.engine.has_value()) {
    // Drop the engine's residency accounting without counting an eviction.
    SHAPCQ_CHECK(impl_->stats.resident_engines > 0);
    --impl_->stats.resident_engines;
    impl_->stats.resident_bytes -= session.engine_bytes;
    session.engine.reset();  // before the Database it points into
  }
  impl_->sessions.erase(it);
  auto& order = impl_->session_order;
  order.erase(std::find(order.begin(), order.end(), session_id));
  --impl_->stats.open_sessions;
  return Result<bool>::Ok(true);
}

const Database* EngineRegistry::FindDatabase(
    const std::string& session_id) const {
  const Session* session = impl_->Find(session_id);
  return session == nullptr ? nullptr : session->db.get();
}

Result<SessionStats> EngineRegistry::Stats(
    const std::string& session_id) const {
  const Session* session = impl_->Find(session_id);
  if (session == nullptr) {
    return Result<SessionStats>::Error("no open session " + session_id);
  }
  SessionStats stats;
  stats.fact_count = session->db->fact_count();
  stats.endo_count = session->db->endogenous_count();
  stats.deltas_applied = session->deltas_applied;
  stats.reports_served = session->reports_served;
  stats.engine_builds = session->engine_builds;
  stats.engine_resident = session->engine.has_value();
  stats.engine_bytes = session->engine_bytes;
  return Result<SessionStats>::Ok(stats);
}

RegistryStats EngineRegistry::stats() const { return impl_->stats; }

std::vector<std::string> EngineRegistry::SessionIds() const {
  return impl_->session_order;
}

}  // namespace shapcq
