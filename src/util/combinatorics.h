// Cached exact factorials and binomial coefficients.
//
// The Shapley-by-counting reduction weighs |Sat(D,q,k)| counts by
// k!(n-k-1)!/n!; these helpers provide the exact BigInt ingredients with
// memoization shared across a computation.

#ifndef SHAPCQ_UTIL_COMBINATORICS_H_
#define SHAPCQ_UTIL_COMBINATORICS_H_

#include <cstddef>
#include <vector>

#include "util/bigint.h"

namespace shapcq {

/// Process-wide cache of factorials and binomial coefficients.
///
/// Thread safety: all caches are plain process-wide statics grown on demand
/// with no locking — the library is single-threaded by design. A future
/// multi-threaded engine must either guard these with a mutex, switch to
/// thread_local caches, or pre-warm them (e.g. call Factorial(n) and
/// BinomialRow(n) for the largest n) before spawning workers.
class Combinatorics {
 public:
  /// n! as an exact integer. Returned by value: the memoization cache may
  /// reallocate on a later call within the same expression, so handing out
  /// references would dangle.
  static BigInt Factorial(size_t n);
  /// C(n, k); zero when k > n.
  static BigInt Binomial(size_t n, size_t k);
  /// The full row [C(n,0), ..., C(n,n)]. Rows are memoized (lazy Pascal
  /// triangle, same pattern as FactorialCache): CountVector::All and
  /// ComplementAgainstAll request the same rows over and over inside the
  /// CntSat recursion, and building row n from row n-1 is pure additions.
  /// The cache holds O(n^2) BigInts for the largest n requested — fine for
  /// the |Dn| ≤ a few hundred this library targets. Returned by value (see
  /// Factorial).
  static std::vector<BigInt> BinomialRow(size_t n);

 private:
  static std::vector<BigInt>& FactorialCache();
  static std::vector<std::vector<BigInt>>& BinomialRowCache();
};

}  // namespace shapcq

#endif  // SHAPCQ_UTIL_COMBINATORICS_H_
