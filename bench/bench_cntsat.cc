// E3 — the PTIME side of Theorem 3.1, measured: CntSat-based exact Shapley
// scales polynomially in |Dn| while brute force doubles per fact. Includes
// the DESIGN.md ablation: the count-vector formulation (all k in one
// recursion) vs per-k recomputation.

#include <benchmark/benchmark.h>

#include "core/brute_force.h"
#include "core/count_sat.h"
#include "core/shapley.h"
#include "datasets/synthetic.h"
#include "datasets/university.h"

namespace {

using namespace shapcq;

void BM_CntSatShapley(benchmark::State& state) {
  const CQ q = UniversityQ1();
  const Database db =
      BuildStudentScalingDb(static_cast<int>(state.range(0)), 3);
  const FactId f = db.endogenous_facts()[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(ShapleyViaCountSat(q, db, f).value());
  }
  state.SetLabel("endo=" + std::to_string(db.endogenous_count()));
}
BENCHMARK(BM_CntSatShapley)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_BruteForceShapley(benchmark::State& state) {
  const CQ q = UniversityQ1();
  const Database db =
      BuildStudentScalingDb(static_cast<int>(state.range(0)), 3);
  const FactId f = db.endogenous_facts()[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(ShapleyBruteForce(q, db, f));
  }
  state.SetLabel("endo=" + std::to_string(db.endogenous_count()));
}
// 2^(endo-1) evaluations: 3, 4, 5 students = 10, 14, 17 endogenous facts.
BENCHMARK(BM_BruteForceShapley)->Arg(3)->Arg(4)->Arg(5);

void BM_CountSatVector(benchmark::State& state) {
  // One recursion computing |Sat(D,q,k)| for every k (the shipped design).
  const CQ q = UniversityQ1();
  const Database db =
      BuildStudentScalingDb(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountSat(q, db).value());
  }
}
BENCHMARK(BM_CountSatVector)->Arg(8)->Arg(16)->Arg(32);

void BM_CountSatPerK(benchmark::State& state) {
  // Ablation: recompute the recursion once per cardinality k, as a naive
  // per-k implementation would (n+1 recursions).
  const CQ q = UniversityQ1();
  const Database db =
      BuildStudentScalingDb(static_cast<int>(state.range(0)), 3);
  const size_t n = db.endogenous_count();
  for (auto _ : state) {
    for (size_t k = 0; k <= n; ++k) {
      benchmark::DoNotOptimize(CountSat(q, db).value().at(k));
    }
  }
}
BENCHMARK(BM_CountSatPerK)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
