// Database text round-tripping.

#include "db/textio.h"

#include <gtest/gtest.h>

#include "datasets/university.h"

namespace shapcq {
namespace {

TEST(TextIoTest, ParsesFactsAndKinds) {
  Database db = MustParseDatabase("R(a,b)* S(c) T()*");
  EXPECT_EQ(db.fact_count(), 3u);
  EXPECT_EQ(db.endogenous_count(), 2u);
  FactId r = db.FindFact("R", {V("a"), V("b")});
  ASSERT_NE(r, kNoFact);
  EXPECT_TRUE(db.is_endogenous(r));
  FactId s = db.FindFact("S", {V("c")});
  ASSERT_NE(s, kNoFact);
  EXPECT_FALSE(db.is_endogenous(s));
  EXPECT_NE(db.FindFact("T", {}), kNoFact);
}

TEST(TextIoTest, RoundTripsToString) {
  UniversityDb u = BuildUniversityDb();
  Database reparsed = MustParseDatabase(u.db.ToString());
  EXPECT_EQ(reparsed.ToString(), u.db.ToString());
  EXPECT_EQ(reparsed.endogenous_count(), u.db.endogenous_count());
}

TEST(TextIoTest, WhitespaceFlexible) {
  Database db = MustParseDatabase("  R(a)\n\tS(b , c)*  ");
  EXPECT_EQ(db.fact_count(), 2u);
  EXPECT_NE(db.FindFact("S", {V("b"), V("c")}), kNoFact);
}

TEST(TextIoTest, Errors) {
  EXPECT_FALSE(ParseDatabase("R(a").ok());
  EXPECT_FALSE(ParseDatabase("R a)").ok());
  EXPECT_FALSE(ParseDatabase("(a)").ok());
  EXPECT_FALSE(ParseDatabase("R(a) R(a)").ok());  // duplicate
  EXPECT_FALSE(ParseDatabase("R(,)").ok());
}

TEST(TextIoTest, EmptyInputIsEmptyDatabase) {
  Database db = MustParseDatabase("");
  EXPECT_EQ(db.fact_count(), 0u);
}

TEST(TextIoTest, GeneratedConstantNames) {
  // Fresh/pair constants use '<', '>', '#' — must survive a round trip.
  Database db;
  Value fresh = ValueDictionary::Global().Fresh("tio");
  Value pair = ValueDictionary::Global().Pair(V("a"), V("b"));
  db.AddEndo("R", {fresh, pair});
  Database reparsed = MustParseDatabase(db.ToString());
  EXPECT_EQ(reparsed.ToString(), db.ToString());
}

}  // namespace
}  // namespace shapcq
