// Dataset generators: shapes, constraints, determinism.

#include <gtest/gtest.h>

#include "datasets/citations.h"
#include "datasets/exports.h"
#include "datasets/synthetic.h"
#include "datasets/university.h"
#include "eval/homomorphism.h"
#include "query/parser.h"
#include "util/random.h"

namespace shapcq {
namespace {

TEST(UniversityTest, Figure1Shape) {
  UniversityDb u = BuildUniversityDb();
  EXPECT_EQ(u.db.facts_of("Stud").size(), 4u);
  EXPECT_EQ(u.db.facts_of("TA").size(), 3u);
  EXPECT_EQ(u.db.facts_of("Course").size(), 4u);
  EXPECT_EQ(u.db.facts_of("Reg").size(), 5u);
  EXPECT_EQ(u.db.facts_of("Adv").size(), 4u);
  EXPECT_EQ(u.db.endogenous_count(), 8u);
  // Stud/Course/Adv exogenous, TA/Reg endogenous (Example 2.3).
  for (FactId f : u.db.facts_of("Stud")) EXPECT_FALSE(u.db.is_endogenous(f));
  for (FactId f : u.db.facts_of("TA")) EXPECT_TRUE(u.db.is_endogenous(f));
  for (FactId f : u.db.facts_of("Reg")) EXPECT_TRUE(u.db.is_endogenous(f));
}

TEST(UniversityTest, PaperValuesSumToOne) {
  Rational sum(0);
  for (const Rational& value : UniversityQ1PaperValues()) sum += value;
  EXPECT_EQ(sum, Rational(1));
}

TEST(ExportsTest, SmallDbShape) {
  Database db = BuildSmallExportDb();
  EXPECT_EQ(db.facts_of("Farmer").size(), 2u);
  EXPECT_EQ(db.facts_of("Export").size(), 3u);
  EXPECT_EQ(db.facts_of("Grows").size(), 3u);
  EXPECT_EQ(db.endogenous_count(), 5u);
}

TEST(ExportsTest, RandomGeneratorRespectsKinds) {
  Rng rng(71);
  Database db = BuildRandomExportDb(3, 3, 3, 2, 0.5, &rng);
  for (FactId f : db.facts_of("Farmer")) EXPECT_FALSE(db.is_endogenous(f));
  for (FactId f : db.facts_of("Export")) EXPECT_TRUE(db.is_endogenous(f));
}

TEST(CitationsTest, SmallDbSatisfiesQuery) {
  Database db = BuildSmallCitationsDb();
  EXPECT_TRUE(EvalBooleanAllFacts(CitationsQuery(), db));
  EXPECT_EQ(db.endogenous_count(), 2u);
}

TEST(SyntheticTest, ExoRelationsGetOnlyExoFacts) {
  Rng rng(72);
  const CQ q = CitationsQuery();
  SyntheticOptions options;
  Database db =
      RandomDatabaseForQuery(q, {"Pub", "Citations"}, options, &rng);
  for (FactId f : db.facts_of("Pub")) EXPECT_FALSE(db.is_endogenous(f));
  for (FactId f : db.facts_of("Citations")) {
    EXPECT_FALSE(db.is_endogenous(f));
  }
}

TEST(SyntheticTest, DeterministicUnderSeed) {
  const CQ q = MustParseCQ("q() :- R(x,y), not S(x)");
  SyntheticOptions options;
  Rng rng1(73), rng2(73);
  Database a = RandomDatabaseForQuery(q, {}, options, &rng1);
  Database b = RandomDatabaseForQuery(q, {}, options, &rng2);
  EXPECT_EQ(a.ToString(), b.ToString());
}

TEST(SyntheticTest, DomainIncludesQueryConstants) {
  const CQ q = MustParseCQ("q() :- R(x,'special_const_xyz')");
  SyntheticOptions options;
  options.facts_per_relation = 50;
  Rng rng(74);
  Database db = RandomDatabaseForQuery(q, {}, options, &rng);
  bool hit = false;
  for (FactId f : db.facts_of("R")) {
    hit |= db.tuple_of(f)[1] == V("special_const_xyz");
  }
  EXPECT_TRUE(hit);  // 50 draws over a 5-value column: ~never all miss
}

TEST(SyntheticTest, ScalingDbShape) {
  Database db = BuildStudentScalingDb(10, 3);
  EXPECT_EQ(db.facts_of("Stud").size(), 10u);
  EXPECT_EQ(db.facts_of("TA").size(), 5u);
  EXPECT_EQ(db.facts_of("Reg").size(), 30u);
  EXPECT_EQ(db.endogenous_count(), 35u);
}

TEST(SyntheticTest, ProbGeneratorProbabilities) {
  Rng rng(75);
  const CQ q = CitationsQuery();
  SyntheticOptions options;
  ProbDatabase pdb =
      RandomProbDatabaseForQuery(q, {"Pub"}, options, &rng);
  for (FactId f : pdb.db().facts_of("Pub")) {
    EXPECT_DOUBLE_EQ(pdb.probability(f), 1.0);
  }
  for (FactId f : pdb.db().facts_of("Author")) {
    EXPECT_GT(pdb.probability(f), 0.0);
    EXPECT_LE(pdb.probability(f), 1.0);
  }
}

}  // namespace
}  // namespace shapcq
