// Generic cooperative-game Shapley engines and the textbook axioms.

#include "core/game.h"

#include <gtest/gtest.h>

#include "datasets/university.h"
#include "query/parser.h"

namespace shapcq {
namespace {

// v(E) = 1 iff player 0 ∈ E (a "dictator" game).
FunctionGame DictatorGame(size_t players) {
  return FunctionGame(players, [](const std::vector<bool>& coalition) {
    return Rational(coalition[0] ? 1 : 0);
  });
}

TEST(GameTest, DictatorTakesAll) {
  FunctionGame game = DictatorGame(4);
  EXPECT_EQ(ShapleyBySubsets(game, 0), Rational(1));
  for (size_t p = 1; p < 4; ++p) {
    EXPECT_EQ(ShapleyBySubsets(game, p), Rational(0));
  }
}

TEST(GameTest, SymmetricPlayersSplitEqually) {
  // v(E) = 1 iff E nonempty: n symmetric players share v(A) = 1.
  const size_t n = 5;
  FunctionGame game(n, [](const std::vector<bool>& coalition) {
    for (bool in : coalition) {
      if (in) return Rational(1);
    }
    return Rational(0);
  });
  for (size_t p = 0; p < n; ++p) {
    EXPECT_EQ(ShapleyBySubsets(game, p), Rational::Of(1, 5));
  }
}

TEST(GameTest, NullPlayerGetsZero) {
  // Player 2 never changes the value.
  FunctionGame game(3, [](const std::vector<bool>& coalition) {
    return Rational((coalition[0] && coalition[1]) ? 1 : 0);
  });
  EXPECT_EQ(ShapleyBySubsets(game, 2), Rational(0));
  EXPECT_EQ(ShapleyBySubsets(game, 0), Rational::Of(1, 2));
  EXPECT_EQ(ShapleyBySubsets(game, 1), Rational::Of(1, 2));
}

TEST(GameTest, EfficiencyAxiom) {
  // Values sum to v(all) for an arbitrary monotone game.
  FunctionGame game(4, [](const std::vector<bool>& coalition) {
    int count = 0;
    for (bool in : coalition) count += in ? 1 : 0;
    return Rational(count >= 2 ? 1 : 0);
  });
  Rational sum(0);
  for (const Rational& value : ShapleyAllBySubsets(game)) sum += value;
  EXPECT_EQ(sum, Rational(1));
}

TEST(GameTest, PermutationAndSubsetEnginesAgree) {
  FunctionGame game(5, [](const std::vector<bool>& coalition) {
    // An asymmetric, non-monotone game.
    int value = 0;
    if (coalition[0] && !coalition[1]) value += 1;
    if (coalition[2] && coalition[3]) value += 1;
    if (coalition[4]) value -= 1;
    // Normalize v(∅) = 0: the empty coalition scores 0 already.
    return Rational(value);
  });
  for (size_t p = 0; p < 5; ++p) {
    EXPECT_EQ(ShapleyByPermutations(game, p), ShapleyBySubsets(game, p))
        << "player " << p;
  }
}

TEST(QueryGameTest, MatchesDefinition) {
  UniversityDb u = BuildUniversityDb();
  const CQ q1 = UniversityQ1();
  QueryGame game(q1, u.db);
  EXPECT_EQ(game.player_count(), 8u);
  EXPECT_EQ(game.Value(u.db.EmptyWorld()), Rational(0));  // v(∅) = 0
  World only_fr4 = u.db.EmptyWorld();
  only_fr4[u.db.endo_index(u.fr4)] = true;
  EXPECT_EQ(game.Value(only_fr4), Rational(1));
}

TEST(QueryGameTest, NegativeBaseline) {
  // If Dx already satisfies q, v(E) = q(Dx ∪ E) − 1 ≤ 0.
  Database db;
  db.AddExo("R", {V("qa")});
  FactId blocker = db.AddEndo("S", {V("qa")});
  CQ q = MustParseCQ("q() :- R(x), not S(x)");
  QueryGame game(q, db);
  EXPECT_EQ(game.Value(db.EmptyWorld()), Rational(0));
  World with_blocker = db.EmptyWorld();
  with_blocker[db.endo_index(blocker)] = true;
  EXPECT_EQ(game.Value(with_blocker), Rational(-1));
}

}  // namespace
}  // namespace shapcq
