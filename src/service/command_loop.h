// Line-protocol command loop: the wire layer of the attribution server.
//
// One command per line, executed in order against an EngineRegistry. The
// grammar extends the shapcq_cli --mutate delta grammar:
//
//   OPEN <session> <query-rule>       open a session (empty database)
//   DELTA <session> + <fact-literal>  insert a fact ('*' = endogenous)
//   DELTA <session> - <fact-literal>  delete the fact with that literal
//   REPORT <session> [top_k] [--threads N]
//                                     stream the ranked attribution table
//   STATS                             registry-wide counters
//   STATS <session>                   per-session counters
//   CLOSE <session>                   close the session
//
// Blank lines and lines starting with '#' are skipped. Commands echo as
// "> <line>" before their output, so a transcript is self-describing (and
// diffable as a CI golden file). Errors print one "error: ..." line and the
// loop continues; Run() returns non-zero if any command errored. All output
// is deterministic: no timestamps, pointers, or platform-dependent byte
// counts.
//
// The loop is the single writer of its registry (one command at a time);
// REPORT may parallelize internally via --threads, which is safe under the
// engine's single-writer/parallel-reader contract.

#ifndef SHAPCQ_SERVICE_COMMAND_LOOP_H_
#define SHAPCQ_SERVICE_COMMAND_LOOP_H_

#include <cstddef>
#include <iosfwd>
#include <string>

#include "service/engine_registry.h"

namespace shapcq {

/// Knobs for a CommandLoop.
struct CommandLoopOptions {
  RegistryOptions registry;
  /// Worker threads for REPORT when the command has no --threads override
  /// (1 = serial, 0 = hardware concurrency). Values are identical at any
  /// setting.
  size_t default_threads = 1;
  /// Echo each executed command as "> <line>" before its output.
  bool echo_commands = true;
};

/// Executes protocol lines against an owned EngineRegistry.
class CommandLoop {
 public:
  explicit CommandLoop(const CommandLoopOptions& options);

  /// Executes one protocol line, appending all output (echo, results,
  /// errors) to *out. Blank and comment lines produce no output.
  void ExecuteLine(const std::string& line, std::string* out);

  /// Reads lines from `in` until EOF, writing output to `out` after each
  /// line (a session script or an interactive stdin loop). Returns 0 if
  /// every command succeeded, 1 otherwise.
  int Run(std::istream& in, std::ostream& out);

  /// Commands that printed an "error:" line so far.
  size_t error_count() const { return error_count_; }

  /// The underlying registry (tests and benchmarks drive it directly).
  EngineRegistry& registry() { return registry_; }

 private:
  EngineRegistry registry_;
  CommandLoopOptions options_;
  size_t error_count_ = 0;
};

}  // namespace shapcq

#endif  // SHAPCQ_SERVICE_COMMAND_LOOP_H_
