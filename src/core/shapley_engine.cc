#include "core/shapley_engine.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/atom_pattern.h"
#include "core/shapley.h"
#include "query/analysis.h"
#include "util/check.h"
#include "util/combinatorics.h"
#include "util/thread_pool.h"

namespace shapcq {

namespace {

// Per-atom lists of arena indices: the recursion's working set. Slicing
// copies 32-bit indices, never Tuples.
using IndexLists = std::vector<std::vector<uint32_t>>;

}  // namespace

// ---------------------------------------------------------------------------
// Engine state
// ---------------------------------------------------------------------------

struct ShapleyEngine::Impl {
  // One node of the memoized CntSat recursion tree.
  struct Node {
    enum class Kind { kGround, kComponent, kRootVar };
    Kind kind = Kind::kGround;
    int parent = -1;       // node id, -1 for the root
    int child_index = -1;  // position within parent's children
    std::vector<int> children;
    size_t free_endo = 0;  // kRootVar: endo facts inconsistent at the root var
    bool negated = false;  // kGround: the atom's polarity
    CountVector sat = CountVector::Zero(0);  // memoized |Sat| of this subtree
    int sig = -1;          // hash-consed structural signature
    // Lazily built: context[j] = convolution of all children's combine
    // vectors except child j (sat for kComponent, unsat for kRootVar).
    std::vector<CountVector> context;
  };

  const Database* db = nullptr;
  size_t endo_count = 0;
  size_t global_free_endo = 0;  // endo facts matching no atom pattern
  std::vector<Node> nodes;
  int root = -1;
  CountVector baseline = CountVector::Zero(0);

  // Shared fact arena: matched facts as indices, queried via *db.
  std::vector<FactId> arena_fact;
  std::vector<bool> arena_endo;

  // Per endogenous fact (endo-index order): its ground leaf (-1 for null
  // players) and its orbit key — the hash-consed signatures along the
  // leaf-to-root path. Null players get the empty key.
  std::vector<int> leaf_of_endo;
  std::vector<std::vector<int>> orbit_key_of_endo;

  std::unordered_map<std::string, int> sig_interner;
  std::map<std::vector<int>, Rational> orbit_values;  // memoized per orbit
  Stats stats;

  // One flag per node, allocated before the first parallel fan-out: workers
  // racing to EnsureContexts on a shared ancestor serialize through
  // call_once, which also publishes the built vectors to the losers. Null
  // until a parallel query happens; the serial path never pays for it.
  std::unique_ptr<std::vector<std::once_flag>> context_once;

  int Intern(const std::string& canonical) {
    return sig_interner
        .emplace(canonical, static_cast<int>(sig_interner.size()))
        .first->second;
  }

  int AddNode(Node node) {
    nodes.push_back(std::move(node));
    return static_cast<int>(nodes.size()) - 1;
  }

  int BuildNode(const CQ& q, IndexLists lists);
  void EnsureContexts(int node_id);
  void EnsureContextsFor(int node_id);
  CountVector PropagateToRoot(int leaf, CountVector vec);
  Rational ValueAtLeaf(int leaf);
  const Rational& OrbitValue(size_t endo_index);
};

// ---------------------------------------------------------------------------
// Tree construction (mirrors CoreCount in count_sat.cc, built once)
// ---------------------------------------------------------------------------

int ShapleyEngine::Impl::BuildNode(const CQ& q, IndexLists lists) {
  SHAPCQ_CHECK(q.atom_count() == lists.size());

  // Disconnected subquery: one child per variable-connected component.
  const auto components = AtomComponents(q);
  if (components.size() > 1) {
    std::vector<int> children;
    for (const auto& component : components) {
      CQ sub = q.Restrict(component);
      IndexLists sub_lists;
      sub_lists.reserve(component.size());
      for (size_t index : component) {
        sub_lists.push_back(std::move(lists[index]));
      }
      children.push_back(BuildNode(sub, std::move(sub_lists)));
    }
    Node node;
    node.kind = Node::Kind::kComponent;
    node.children = children;
    node.sat = CountVector();  // identity of Convolve
    std::vector<int> child_sigs;
    for (int child : children) {
      node.sat.ConvolveWith(nodes[child].sat);
      child_sigs.push_back(nodes[child].sig);
    }
    std::sort(child_sigs.begin(), child_sigs.end());
    std::string canonical = "C";
    for (int sig : child_sigs) canonical += "|" + std::to_string(sig);
    node.sig = Intern(canonical);
    const int id = AddNode(std::move(node));
    for (size_t i = 0; i < children.size(); ++i) {
      nodes[children[i]].parent = id;
      nodes[children[i]].child_index = static_cast<int>(i);
    }
    return id;
  }

  if (q.UsedVars().empty()) {
    // Connected and variable-free: a single ground atom (Lemma 3.2 base
    // case, extended for negation).
    SHAPCQ_CHECK(q.atom_count() == 1);
    const std::vector<uint32_t>& list = lists[0];
    SHAPCQ_CHECK_MSG(list.size() <= 1,
                     "ground atom with more than one matching fact");
    Node node;
    node.kind = Node::Kind::kGround;
    node.negated = q.atom(0).negated;
    int state = 0;  // 0 = no matching fact, 1 = exogenous, 2 = endogenous
    if (!list.empty()) state = arena_endo[list[0]] ? 2 : 1;
    if (!node.negated) {
      if (state == 0) node.sat = CountVector::Zero(0);
      if (state == 1) node.sat = CountVector::All(0);
      if (state == 2) node.sat = CountVector::FromCounts({BigInt(0), BigInt(1)});
    } else {
      if (state == 0) node.sat = CountVector::All(0);
      if (state == 1) node.sat = CountVector::Zero(0);
      if (state == 2) node.sat = CountVector::FromCounts({BigInt(1), BigInt(0)});
    }
    node.sig = Intern("G|" + std::to_string(node.negated ? 1 : 0) + "|" +
                      std::to_string(state));
    const int id = AddNode(std::move(node));
    if (state == 2) {
      leaf_of_endo[db->endo_index(arena_fact[list[0]])] = id;
    }
    return id;
  }

  // Connected with variables: slice by the root variable's value.
  std::optional<VarId> rootvar = FindRootVariable(q);
  SHAPCQ_CHECK_MSG(rootvar.has_value(),
                   "connected hierarchical subquery lacks a root variable");

  std::vector<std::vector<size_t>> root_positions(q.atom_count());
  for (size_t i = 0; i < q.atom_count(); ++i) {
    const Atom& atom = q.atom(i);
    for (size_t pos = 0; pos < atom.terms.size(); ++pos) {
      if (atom.terms[pos].IsVar() && atom.terms[pos].var == *rootvar) {
        root_positions[i].push_back(pos);
      }
    }
    SHAPCQ_CHECK(!root_positions[i].empty());
  }

  // Facts with unequal values at the root positions can join nothing: free.
  // Their endogenous members are null players — they stay leaf-less and the
  // node only remembers their count (an All(free_endo) convolution factor).
  std::map<int32_t, IndexLists> slices;
  size_t free_endo = 0;
  for (size_t i = 0; i < q.atom_count(); ++i) {
    for (uint32_t index : lists[i]) {
      const Tuple& tuple = db->tuple_of(arena_fact[index]);
      // shapcq::Value spelled out: inside ShapleyEngine's scope the bare
      // name resolves to the Value() member function.
      const shapcq::Value root_value = tuple[root_positions[i][0]];
      bool consistent = true;
      for (size_t pos : root_positions[i]) {
        if (!(tuple[pos] == root_value)) consistent = false;
      }
      if (!consistent) {
        if (arena_endo[index]) ++free_endo;
        continue;
      }
      auto [it, inserted] = slices.try_emplace(root_value.id);
      if (inserted) it->second.resize(q.atom_count());
      it->second[i].push_back(index);
    }
  }

  std::vector<int> children;
  CountVector unsat_all;  // identity; grows over the slice universes
  for (auto& [value_id, slice_lists] : slices) {
    CQ sliced = q.Substitute(*rootvar, shapcq::Value{value_id});
    const int child = BuildNode(sliced, std::move(slice_lists));
    children.push_back(child);
    unsat_all.ConvolveWith(nodes[child].sat.ComplementAgainstAll());
  }

  Node node;
  node.kind = Node::Kind::kRootVar;
  node.children = children;
  node.free_endo = free_endo;
  node.sat = (CountVector::All(unsat_all.universe_size()) - unsat_all)
                 .Convolve(CountVector::All(free_endo));
  std::vector<int> child_sigs;
  for (int child : children) child_sigs.push_back(nodes[child].sig);
  std::sort(child_sigs.begin(), child_sigs.end());
  std::string canonical = "R|f" + std::to_string(free_endo);
  for (int sig : child_sigs) canonical += "|" + std::to_string(sig);
  node.sig = Intern(canonical);
  const int id = AddNode(std::move(node));
  for (size_t i = 0; i < children.size(); ++i) {
    nodes[children[i]].parent = id;
    nodes[children[i]].child_index = static_cast<int>(i);
  }
  return id;
}

// ---------------------------------------------------------------------------
// Per-fact path re-evaluation
// ---------------------------------------------------------------------------

void ShapleyEngine::Impl::EnsureContexts(int node_id) {
  Node& node = nodes[node_id];
  if (!node.context.empty() || node.children.empty()) return;
  const size_t m = node.children.size();
  const bool rootvar = node.kind == Node::Kind::kRootVar;
  // combine[i]: the vector child i contributes to the parent's product —
  // its sat for conjunction (kComponent), its unsat for the "no slice
  // holds" product (kRootVar).
  std::vector<CountVector> combine;
  combine.reserve(m);
  for (int child : node.children) {
    combine.push_back(rootvar ? nodes[child].sat.ComplementAgainstAll()
                              : nodes[child].sat);
  }
  // prefix[m] and suffix[0] (the full products) are never read by any
  // context[j]; stopping one short skips the two widest convolutions.
  std::vector<CountVector> prefix(m + 1), suffix(m + 1);
  for (size_t i = 0; i + 1 < m; ++i) {
    prefix[i + 1] = prefix[i].Convolve(combine[i]);
  }
  for (size_t i = m; i-- > 1;) {
    suffix[i] = combine[i].Convolve(suffix[i + 1]);
  }
  node.context.reserve(m);
  for (size_t j = 0; j < m; ++j) {
    node.context.push_back(prefix[j].Convolve(suffix[j + 1]));
  }
}

// Thread-aware front door to EnsureContexts: once any parallel query has
// allocated the per-node once_flags, context construction funnels through
// call_once (one builder per node, result published to every waiter). Before
// that, it is the plain serial call.
void ShapleyEngine::Impl::EnsureContextsFor(int node_id) {
  if (context_once != nullptr) {
    std::call_once((*context_once)[node_id],
                   [this, node_id] { EnsureContexts(node_id); });
    return;
  }
  EnsureContexts(node_id);
}

// Walks a perturbed leaf vector up to the root, re-convolving against the
// memoized sibling products. The returned vector is the full-database |Sat|
// with the leaf's fact forced to the given leaf vector (universe n-1).
CountVector ShapleyEngine::Impl::PropagateToRoot(int leaf, CountVector vec) {
  for (int node = leaf; nodes[node].parent >= 0;) {
    const int parent = nodes[node].parent;
    const int j = nodes[node].child_index;
    EnsureContextsFor(parent);
    const Node& pn = nodes[parent];
    if (pn.kind == Node::Kind::kComponent) {
      vec = pn.context[j].Convolve(vec);
    } else {
      CountVector unsat_all =
          pn.context[j].Convolve(vec.ComplementAgainstAll());
      vec = CountVector::All(unsat_all.universe_size()) - unsat_all;
      if (pn.free_endo > 0) {
        vec.ConvolveWith(CountVector::All(pn.free_endo));
      }
    }
    node = parent;
  }
  if (global_free_endo > 0) {
    vec.ConvolveWith(CountVector::All(global_free_endo));
  }
  return vec;
}

// Shapley value of the fact at `leaf`: re-evaluates the two perturbed
// scenarios (fact exogenous / fact removed) along the single path.
Rational ShapleyEngine::Impl::ValueAtLeaf(int leaf) {
  const bool negated = nodes[leaf].negated;
  // Forced exogenous: a positive ground atom is always satisfied (All(0)),
  // a negated one always blocked (Zero(0)). Removal is the mirror image.
  CountVector present = CountVector::All(0);
  CountVector absent = CountVector::Zero(0);
  CountVector sat_with = PropagateToRoot(leaf, negated ? absent : present);
  CountVector sat_without = PropagateToRoot(leaf, negated ? present : absent);
  return ShapleyFromSatCounts(sat_with, sat_without, endo_count);
}

// Memoized per-orbit value for the fact at the given endo index (which must
// not be a null player).
const Rational& ShapleyEngine::Impl::OrbitValue(size_t endo_index) {
  const std::vector<int>& key = orbit_key_of_endo[endo_index];
  auto it = orbit_values.find(key);
  if (it == orbit_values.end()) {
    it = orbit_values.emplace(key, ValueAtLeaf(leaf_of_endo[endo_index]))
             .first;
  }
  return it->second;
}

// ---------------------------------------------------------------------------
// Public interface
// ---------------------------------------------------------------------------

ShapleyEngine::ShapleyEngine() = default;
ShapleyEngine::~ShapleyEngine() = default;
ShapleyEngine::ShapleyEngine(ShapleyEngine&&) noexcept = default;
ShapleyEngine& ShapleyEngine::operator=(ShapleyEngine&&) noexcept = default;

Result<ShapleyEngine> ShapleyEngine::Build(const CQ& q, const Database& db) {
  if (!IsSafe(q)) {
    return Result<ShapleyEngine>::Error(
        "ShapleyEngine requires safe negation: " + q.ToString());
  }
  if (!IsSelfJoinFree(q)) {
    return Result<ShapleyEngine>::Error(
        "ShapleyEngine requires a self-join-free query: " + q.ToString());
  }
  if (!IsHierarchical(q)) {
    return Result<ShapleyEngine>::Error(
        "ShapleyEngine requires a hierarchical query: " + q.ToString());
  }

  ShapleyEngine engine;
  engine.impl_ = std::make_unique<Impl>();
  Impl& impl = *engine.impl_;
  impl.db = &db;
  impl.endo_count = db.endogenous_count();
  impl.leaf_of_endo.assign(impl.endo_count, -1);
  impl.orbit_key_of_endo.assign(impl.endo_count, {});

  // Shared matched-fact index: every fact of every atom's relation, matched
  // once against the precompiled pattern and interned into the flat arena.
  IndexLists lists(q.atom_count());
  size_t relevant_endo = 0;
  for (size_t i = 0; i < q.atom_count(); ++i) {
    const Atom& atom = q.atom(i);
    const AtomPattern pattern = BuildAtomPattern(atom);
    const RelationId rel = db.schema().Find(atom.relation);
    for (FactId fact : db.facts_of(rel)) {
      if (!MatchesPattern(pattern, db.tuple_of(fact))) continue;
      const uint32_t index = static_cast<uint32_t>(impl.arena_fact.size());
      impl.arena_fact.push_back(fact);
      impl.arena_endo.push_back(db.is_endogenous(fact));
      lists[i].push_back(index);
      if (db.is_endogenous(fact)) ++relevant_endo;
    }
  }
  impl.global_free_endo = impl.endo_count - relevant_endo;

  impl.root = impl.BuildNode(q, std::move(lists));
  impl.baseline = impl.nodes[impl.root].sat.Convolve(
      CountVector::All(impl.global_free_endo));

  // Orbit keys: the hash-consed signature of every node on the leaf-to-root
  // path. Equal keys -> the leaves are related by a tree automorphism ->
  // the facts are symmetric players with equal Shapley values.
  for (size_t e = 0; e < impl.endo_count; ++e) {
    int node = impl.leaf_of_endo[e];
    if (node < 0) continue;  // null player: empty key
    std::vector<int>& key = impl.orbit_key_of_endo[e];
    for (; node >= 0; node = impl.nodes[node].parent) {
      key.push_back(impl.nodes[node].sig);
    }
  }

  impl.stats.node_count = impl.nodes.size();
  impl.stats.arena_size = impl.arena_fact.size();
  for (int leaf : impl.leaf_of_endo) {
    if (leaf < 0) ++impl.stats.null_player_count;
  }
  return Result<ShapleyEngine>::Ok(std::move(engine));
}

const CountVector& ShapleyEngine::BaselineSat() const {
  SHAPCQ_CHECK(impl_ != nullptr);
  return impl_->baseline;
}

Rational ShapleyEngine::Value(FactId f) {
  SHAPCQ_CHECK(impl_ != nullptr);
  Impl& impl = *impl_;
  SHAPCQ_CHECK_MSG(impl.db->is_endogenous(f), "Shapley of an exogenous fact");
  const size_t e = impl.db->endo_index(f);
  if (impl.leaf_of_endo[e] < 0) return Rational(0);  // null player
  return impl.OrbitValue(e);
}

std::vector<Rational> ShapleyEngine::AllValues() {
  SHAPCQ_CHECK(impl_ != nullptr);
  Impl& impl = *impl_;
  std::vector<Rational> values;
  values.reserve(impl.endo_count);
  bool any_null = false;
  for (size_t e = 0; e < impl.endo_count; ++e) {
    if (impl.leaf_of_endo[e] < 0) {
      any_null = true;
      values.push_back(Rational(0));
      continue;
    }
    values.push_back(impl.OrbitValue(e));
  }
  impl.stats.orbit_count = impl.orbit_values.size() + (any_null ? 1 : 0);
  return values;
}

std::vector<Rational> ShapleyEngine::AllValues(const ParallelOptions& options) {
  SHAPCQ_CHECK(impl_ != nullptr);
  Impl& impl = *impl_;
  const size_t num_threads =
      ThreadPool::ResolveThreadCount(options.num_threads);

  // Orbit representatives still missing from the memo, in first-seen
  // endo-index order — the exact representative (and therefore the exact
  // leaf) the serial path would evaluate, so every Rational below is computed
  // from the same count vectors as serially: bit-identical by construction.
  std::vector<size_t> rep_endo;
  {
    std::set<std::vector<int>> seen;
    for (size_t e = 0; e < impl.endo_count; ++e) {
      if (impl.leaf_of_endo[e] < 0) continue;  // null player
      const std::vector<int>& key = impl.orbit_key_of_endo[e];
      if (impl.orbit_values.count(key) != 0) continue;  // already memoized
      if (seen.insert(key).second) rep_endo.push_back(e);
    }
  }

  if (num_threads > 1 && rep_endo.size() > 1) {
    // Workers only ever read the caches on the hot path after this.
    Combinatorics::Prewarm(impl.endo_count);
    if (impl.context_once == nullptr) {
      impl.context_once =
          std::make_unique<std::vector<std::once_flag>>(impl.nodes.size());
    }
    // Slot-per-representative output buffer: the pool schedules dynamically,
    // but each worker writes only rep_values[i], so the merge below is
    // independent of which thread computed what.
    std::vector<Rational> rep_values(rep_endo.size());
    ThreadPool pool(std::min(num_threads, rep_endo.size()));
    pool.ParallelFor(rep_endo.size(), [&impl, &rep_endo, &rep_values](
                                          size_t i) {
      rep_values[i] = impl.ValueAtLeaf(impl.leaf_of_endo[rep_endo[i]]);
    });
    for (size_t i = 0; i < rep_endo.size(); ++i) {
      impl.orbit_values.emplace(impl.orbit_key_of_endo[rep_endo[i]],
                                std::move(rep_values[i]));
    }
  }
  // Every orbit is now memoized (or num_threads was 1): the serial assembly
  // fills the per-fact vector and the orbit stats exactly as before.
  return AllValues();
}

std::vector<size_t> ShapleyEngine::OrbitIds() {
  SHAPCQ_CHECK(impl_ != nullptr);
  Impl& impl = *impl_;
  std::map<std::vector<int>, size_t> ids;  // empty key = the null orbit
  std::vector<size_t> out;
  out.reserve(impl.endo_count);
  for (size_t e = 0; e < impl.endo_count; ++e) {
    out.push_back(
        ids.emplace(impl.orbit_key_of_endo[e], ids.size()).first->second);
  }
  impl.stats.orbit_count = ids.size();
  return out;
}

ShapleyEngine::Stats ShapleyEngine::stats() const {
  SHAPCQ_CHECK(impl_ != nullptr);
  return impl_->stats;
}

}  // namespace shapcq
