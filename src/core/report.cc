#include "core/report.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "core/brute_force.h"
#include "core/exoshap.h"
#include "core/shapley.h"
#include "query/classify.h"
#include "util/cancel.h"

namespace shapcq {

std::string DeadlineExceededMessage(size_t deadline_ms) {
  if (deadline_ms == 0) return "[E_DEADLINE] cancelled";
  return "[E_DEADLINE] deadline_ms=" + std::to_string(deadline_ms) +
         " exceeded";
}

namespace {

// Descending by value via the division-free three-way compare: the sign
// fast path settles most pairs (reports mix positive, zero and negative
// attributions) without touching BigInt arithmetic, and ties never build
// a normalized difference Rational.
void RankRows(AttributionReport* report, size_t top_k) {
  std::stable_sort(report->rows.begin(), report->rows.end(),
                   [](const Attribution& a, const Attribution& b) {
                     return Rational::Compare(b.value, a.value) < 0;
                   });
  if (top_k > 0 && report->rows.size() > top_k) {
    report->rows.resize(top_k);
  }
}

// Shared epilogue of the exact report builders: move the per-endo-index
// values into rows, accumulate the efficiency total, and rank descending.
void FillAndRankRows(AttributionReport* report, const Database& db,
                     std::vector<Rational> values, size_t top_k) {
  for (FactId f : db.endogenous_facts()) {
    Rational& value = values[db.endo_index(f)];
    report->total += value;
    Attribution row;
    row.fact = f;
    row.value = std::move(value);
    report->rows.push_back(std::move(row));
  }
  RankRows(report, top_k);
}

// The sampling tier: estimates every endogenous fact with the additive
// FPRAS, stratified by the exact engine's orbits when the query is
// hierarchical (the forced-approx path) and by the signature partition
// otherwise.
Result<AttributionReport> BuildApproxReport(const CQ& q, const Database& db,
                                            const ReportOptions& options,
                                            bool hierarchical,
                                            const CancelToken* cancel) {
  AttributionReport report;
  report.engine = "approx-fpras";
  report.approximate = true;
  report.approx.epsilon = options.approx.epsilon;
  report.approx.delta = options.approx.delta;
  report.approx.seed = options.approx.seed;
  auto verdict = ClassifyExactShapley(q);
  report.approx.dispatch_reason =
      verdict.ok() ? verdict.value().reason : verdict.error();

  ApproxEngine::Options approx_options;
  std::vector<size_t> engine_orbits;
  if (hierarchical) {
    // The exact engine's orbit partition is at least as coarse as the
    // signature one (it groups by value, not just by automorphism), so
    // forced sampling on tractable queries borrows it for stratification.
    auto built = ShapleyEngine::Build(q, db, options.engine_core, cancel);
    if (built.ok()) {
      ShapleyEngine engine = std::move(built).value();
      engine_orbits = engine.OrbitIds();
      approx_options.orbit_ids = &engine_orbits;
    } else if (CancelToken::IsCancelled(built.error())) {
      // Build failures are otherwise tolerated (the signature partition
      // serves), but a deadline expiry must surface, not silently coarsen
      // the stratification.
      return Result<AttributionReport>::Error(built.error());
    }
  }
  auto created = ApproxEngine::Create(q, db, approx_options);
  if (!created.ok()) return Result<AttributionReport>::Error(created.error());
  ApproxEngine engine = std::move(created).value();
  auto rows = engine.EstimateAll(options.approx, options.num_threads, cancel);
  if (!rows.ok()) return Result<AttributionReport>::Error(rows.error());

  const ApproxRunInfo& info = engine.info();
  report.approx.samples_per_orbit = info.samples_per_orbit;
  report.approx.samples_total = info.samples_total;
  report.approx.orbit_count = info.orbit_count;
  report.approx.sampled_orbits = info.sampled_orbits;
  report.approx.budget_capped = info.budget_capped;
  report.approx.orbit_source = info.orbit_source;

  const std::vector<ApproxRow>& estimates = rows.value();
  for (FactId f : db.endogenous_facts()) {
    const ApproxRow& estimate = estimates[db.endo_index(f)];
    report.total += estimate.estimate;
    Attribution row;
    row.fact = f;
    row.value = estimate.estimate;
    row.ci_radius = estimate.ci_radius;
    row.samples = estimate.samples;
    report.rows.push_back(std::move(row));
  }
  RankRows(&report, options.top_k);
  return Result<AttributionReport>::Ok(std::move(report));
}

}  // namespace

Result<AttributionReport> BuildDegradedApproxReport(
    const CQ& q, const Database& db, const ReportOptions& options) {
  // Work-bounded, never re-deadlined, never rebuilding the exact index
  // (signature-stratified orbits): the deadline already expired once, so
  // the degraded answer should cost as little as a useful answer can. A
  // caller-provided approx spec is honored; otherwise a deliberately
  // coarse default — wide CIs are the point of a degraded answer, and the
  // per-sample cost still scales with the database, so the sample budget
  // is the only lever this side of a time-budgeted sampler.
  ReportOptions degraded = options;
  degraded.deadline_ms = 0;
  degraded.cancel = nullptr;
  if (!degraded.approx.enabled()) {
    degraded.approx.epsilon = 0.25;
    degraded.approx.delta = 0.1;
    degraded.approx.max_samples = 512;
  }
  degraded.approx.force = true;
  return BuildApproxReport(q, db, degraded, /*hierarchical=*/false,
                           /*cancel=*/nullptr);
}

Result<AttributionReport> BuildAttributionReport(
    const CQ& q, const Database& db, const ReportOptions& options) {
  AttributionReport report;
  const bool approx_requested = options.approx.enabled();
  if (approx_requested) {
    auto valid = options.approx.Validate();
    if (!valid.ok()) return Result<AttributionReport>::Error(valid.error());
  }
  const bool hierarchical = IsSafe(q) && IsSelfJoinFree(q) && IsHierarchical(q);
  const bool exoshap_applies =
      !hierarchical && IsSafe(q) && IsSelfJoinFree(q) && !options.exo.empty() &&
      !FindNonHierarchicalPath(q, options.exo).has_value();
  const bool force_approx = approx_requested && options.approx.force;

  // One token per report: a caller-owned token wins, else a deadline_ms
  // budget arms a local one. nullptr = uncancellable (the default), and the
  // whole deadline machinery stays off the path.
  CancelToken deadline_token;
  if (options.cancel == nullptr && options.deadline_ms > 0) {
    deadline_token.ArmDeadlineMillis(options.deadline_ms);
  }
  const CancelToken* cancel = options.cancel != nullptr
                                  ? options.cancel
                                  : (deadline_token.Enabled()
                                         ? &deadline_token
                                         : nullptr);

  if (hierarchical && !force_approx) {
    report.engine = "CntSat";
  } else if (exoshap_applies && !force_approx) {
    report.engine = "ExoShap";
  } else if (approx_requested) {
    // The sampling tier works for ANY query the evaluator can decide —
    // exactly the fallback the dichotomy's hard side needs. A deadline
    // expiry here is terminal ([E_DEADLINE]): there is no tier left to
    // degrade to.
    auto approx_report = BuildApproxReport(q, db, options, hierarchical,
                                           cancel);
    if (!approx_report.ok() &&
        CancelToken::IsCancelled(approx_report.error())) {
      return Result<AttributionReport>::Error(
          DeadlineExceededMessage(options.deadline_ms));
    }
    return approx_report;
  } else if (options.allow_brute_force &&
             db.endogenous_count() <= options.brute_force_limit) {
    report.engine = "brute-force";
  } else {
    return Result<AttributionReport>::Error(
        "no polynomial engine applies to " + q.ToString() +
        " (FP^#P-hard per the dichotomies) and brute force is not allowed; "
        "the sampling tier (approx=eps,delta) serves such queries");
  }

  // All-facts attribution is served by the single-pass engines: one shared
  // CntSat recursion (and, for ExoShap, one transformation) for the whole
  // table instead of a from-scratch computation per fact.
  std::vector<Rational> values;
  ParallelOptions parallel;
  parallel.num_threads = options.num_threads;
  if (report.engine == "CntSat") {
    auto result = ShapleyAllViaCountSat(q, db, parallel, options.engine_core,
                                        cancel);
    if (!result.ok()) {
      if (CancelToken::IsCancelled(result.error())) {
        if (options.on_deadline == OnDeadline::kApprox) {
          return BuildDegradedApproxReport(q, db, options);
        }
        return Result<AttributionReport>::Error(
            DeadlineExceededMessage(options.deadline_ms));
      }
      return Result<AttributionReport>::Error(result.error());
    }
    values = std::move(result).value();
  } else if (report.engine == "ExoShap") {
    auto result = ExoShapShapleyAll(q, db, options.exo, parallel);
    if (!result.ok()) return Result<AttributionReport>::Error(result.error());
    values = std::move(result).value();
  } else {
    values.reserve(db.endogenous_count());
    for (FactId f : db.endogenous_facts()) {
      values.push_back(ShapleyBruteForce(q, db, f));
    }
  }
  FillAndRankRows(&report, db, std::move(values), options.top_k);
  return Result<AttributionReport>::Ok(std::move(report));
}

AttributionReport BuildAttributionReportFromEngine(
    ShapleyEngine& engine, const Database& db, const ReportOptions& options) {
  AttributionReport report;
  report.engine = "CntSat (incremental)";
  ParallelOptions parallel;
  parallel.num_threads = options.num_threads;
  FillAndRankRows(&report, db, engine.AllValues(parallel), options.top_k);
  return report;
}

Result<AttributionReport> BuildAttributionReportFromEngine(
    ShapleyEngine& engine, const Database& db, const ReportOptions& options,
    const CancelToken* cancel) {
  using R = Result<AttributionReport>;
  if (cancel == nullptr || !cancel->Enabled()) {
    return R::Ok(BuildAttributionReportFromEngine(engine, db, options));
  }
  AttributionReport report;
  report.engine = "CntSat (incremental)";
  ParallelOptions parallel;
  parallel.num_threads = options.num_threads;
  auto values = engine.AllValues(parallel, cancel);
  if (!values.ok()) {
    if (CancelToken::IsCancelled(values.error())) {
      return R::Error(DeadlineExceededMessage(options.deadline_ms));
    }
    return R::Error(values.error());
  }
  FillAndRankRows(&report, db, std::move(values).value(), options.top_k);
  return R::Ok(std::move(report));
}

std::string RenderReport(const AttributionReport& report, const Database& db) {
  std::string out = "engine: " + report.engine + "\n";
  char line[200];
  if (report.approximate) {
    // Provenance first: the parameters that make the table reproducible
    // (seed-pure) and interpretable (joint coverage at 1 - delta).
    std::snprintf(line, sizeof(line),
                  "approx: eps=%g delta=%g seed=%" PRIu64
                  " samples_per_orbit=%zu orbits=%zu/%zu source=%s capped=%s\n",
                  report.approx.epsilon, report.approx.delta,
                  report.approx.seed, report.approx.samples_per_orbit,
                  report.approx.sampled_orbits, report.approx.orbit_count,
                  report.approx.orbit_source.c_str(),
                  report.approx.budget_capped ? "yes" : "no");
    out += line;
    std::snprintf(line, sizeof(line), "%-30s %14s %10s %10s %9s\n", "fact",
                  "estimate", "~decimal", "+-ci", "samples");
    out += line;
    for (const Attribution& row : report.rows) {
      std::snprintf(line, sizeof(line), "%-30s %14s %10.4f %10.4f %9zu\n",
                    db.FactToString(row.fact).c_str(),
                    row.value.ToString().c_str(), row.value.ToDouble(),
                    row.ci_radius, row.samples);
      out += line;
    }
    std::snprintf(line, sizeof(line), "%-30s %14s\n", "total",
                  report.total.ToString().c_str());
    out += line;
    return out;
  }
  std::snprintf(line, sizeof(line), "%-30s %14s %10s\n", "fact", "Shapley",
                "~decimal");
  out += line;
  for (const Attribution& row : report.rows) {
    std::snprintf(line, sizeof(line), "%-30s %14s %10.4f\n",
                  db.FactToString(row.fact).c_str(),
                  row.value.ToString().c_str(), row.value.ToDouble());
    out += line;
  }
  std::snprintf(line, sizeof(line), "%-30s %14s\n", "total",
                report.total.ToString().c_str());
  out += line;
  return out;
}

}  // namespace shapcq
