// The sampling tier (core/approx_engine.h): interval coverage against the
// exact engines on generated tractable queries, bit-identical results at
// every thread count, orbit soundness, the coalition cache, and the spec
// surface. The ApproxEngineParallelTest suite runs under TSan in CI (the
// shared striped cache and the chunked fan-out are the racy surface).

#include "core/approx_engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "core/brute_force.h"
#include "core/shapley.h"
#include "core/shapley_engine.h"
#include "datasets/query_gen.h"
#include "datasets/synthetic.h"
#include "datasets/university.h"
#include "db/textio.h"
#include "query/analysis.h"
#include "query/parser.h"

namespace shapcq {
namespace {

// One generated (hierarchical query, random database) instance per seed.
struct TractableInstance {
  CQ q;
  Database db;
};

TractableInstance BuildTractable(int seed) {
  Rng rng(static_cast<uint64_t>(seed) * 2654435761u + 17);
  QueryGenOptions gen;
  TractableInstance instance{RandomHierarchicalCq(gen, &rng), Database()};
  SyntheticOptions synth;
  synth.domain_size = 3;
  synth.facts_per_relation = 3;
  instance.db = RandomDatabaseForQuery(instance.q, ExoRelations{}, synth, &rng);
  return instance;
}

// ---------------------------------------------------------------------------
// Coverage battery: on >= 20 generated tractable queries, every exact
// Shapley value must sit inside the reported confidence interval. The run
// is seed-pure and the reduction deterministic, so this is a fixed outcome
// (an actual epsilon-delta failure would reproduce bit-identically).

class ApproxCoverageSweep : public ::testing::TestWithParam<int> {};

TEST_P(ApproxCoverageSweep, IntervalsCoverExactValues) {
  TractableInstance t = BuildTractable(GetParam());
  if (t.db.endogenous_count() == 0) GTEST_SKIP() << "no endogenous facts";

  auto exact = ShapleyAllViaCountSat(t.q, t.db, ParallelOptions{});
  ASSERT_TRUE(exact.ok()) << exact.error() << " for " << t.q.ToString();

  ApproxSpec spec;
  spec.epsilon = 0.12;
  spec.delta = 0.05;
  spec.seed = 1000 + static_cast<uint64_t>(GetParam());
  auto engine = ApproxEngine::Create(t.q, t.db, {});
  ASSERT_TRUE(engine.ok()) << engine.error();
  ApproxEngine approx = std::move(engine).value();
  auto rows = approx.EstimateAll(spec, /*num_threads=*/1);
  ASSERT_TRUE(rows.ok()) << rows.error();
  ASSERT_EQ(rows.value().size(), t.db.endogenous_count());

  for (size_t i = 0; i < rows.value().size(); ++i) {
    const ApproxRow& row = rows.value()[i];
    const double truth = exact.value()[i].ToDouble();
    const double error = std::fabs(row.estimate.ToDouble() - truth);
    EXPECT_LE(error, row.ci_radius)
        << "fact " << i << " of " << t.q.ToString() << ": estimate "
        << row.estimate.ToDouble() << " vs exact " << truth;
    EXPECT_LE(row.ci_radius, spec.epsilon + 1e-12)
        << "interval wider than the requested epsilon without a cap";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxCoverageSweep, ::testing::Range(0, 24));

// ---------------------------------------------------------------------------
// Determinism: fixed (spec, database) must be bit-identical at any thread
// count — same Rational estimates, same radii, same sample counts.

TEST(ApproxEngineTest, BitIdenticalAcrossThreadCounts) {
  UniversityDb u = BuildUniversityDb();
  const CQ q2 = UniversityQ2();  // non-hierarchical: the tier's home turf

  ApproxSpec spec;
  spec.epsilon = 0.08;
  spec.delta = 0.05;
  spec.seed = 99;

  std::vector<ApproxRow> baseline;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    auto engine = ApproxEngine::Create(q2, u.db, {});
    ASSERT_TRUE(engine.ok());
    ApproxEngine approx = std::move(engine).value();
    auto rows = approx.EstimateAll(spec, threads);
    ASSERT_TRUE(rows.ok()) << rows.error();
    if (threads == 1) {
      baseline = std::move(rows).value();
      continue;
    }
    ASSERT_EQ(rows.value().size(), baseline.size());
    for (size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_EQ(rows.value()[i].estimate, baseline[i].estimate)
          << "fact " << i << " at " << threads << " threads";
      EXPECT_EQ(rows.value()[i].ci_radius, baseline[i].ci_radius);
      EXPECT_EQ(rows.value()[i].samples, baseline[i].samples);
      EXPECT_EQ(rows.value()[i].orbit, baseline[i].orbit);
    }
  }
}

TEST(ApproxEngineTest, SeedChangesEstimates) {
  UniversityDb u = BuildUniversityDb();
  const CQ q2 = UniversityQ2();
  ApproxSpec spec;
  spec.epsilon = 0.2;
  spec.delta = 0.05;

  auto run = [&](uint64_t seed) {
    spec.seed = seed;
    auto engine = ApproxEngine::Create(q2, u.db, {});
    EXPECT_TRUE(engine.ok());
    ApproxEngine approx = std::move(engine).value();
    auto rows = approx.EstimateAll(spec, 1);
    EXPECT_TRUE(rows.ok());
    return std::move(rows).value();
  };
  const std::vector<ApproxRow> a = run(1), b = run(2);
  bool any_difference = false;
  for (size_t i = 0; i < a.size(); ++i) {
    any_difference = any_difference || !(a[i].estimate == b[i].estimate);
  }
  EXPECT_TRUE(any_difference) << "two seeds produced identical estimates";
}

// ---------------------------------------------------------------------------
// Orbit soundness.

TEST(ApproxEngineTest, SignatureOrbitMembersHaveEqualExactValues) {
  // Property check over random safe (often non-hierarchical) instances:
  // whenever the signature partition groups two facts, their brute-force
  // Shapley values must agree — the partition claims a symmetry.
  for (int seed = 0; seed < 12; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 40503u + 3);
    QueryGenOptions gen;
    gen.max_atoms = 3;
    const CQ q = RandomSafeCq(gen, &rng);
    SyntheticOptions synth;
    synth.domain_size = 3;
    synth.facts_per_relation = 2;
    Database db = RandomDatabaseForQuery(q, ExoRelations{}, synth, &rng);
    if (db.endogenous_count() == 0 || db.endogenous_count() > 8) continue;

    const std::vector<size_t> orbits = ApproxSymmetryOrbits(q, db);
    std::vector<Rational> values;
    for (FactId f : db.endogenous_facts()) {
      values.push_back(ShapleyBruteForce(q, db, f));
    }
    for (size_t i = 0; i < orbits.size(); ++i) {
      for (size_t j = i + 1; j < orbits.size(); ++j) {
        if (orbits[i] == orbits[j]) {
          EXPECT_EQ(values[i], values[j])
              << q.ToString() << " facts " << i << "," << j
              << " share orbit " << orbits[i] << " but differ";
        }
      }
    }
  }
}

TEST(ApproxEngineTest, EngineOrbitInjectionStratifies) {
  // Forced sampling on a hierarchical query borrows the exact engine's
  // orbits; members of one orbit must share one estimate verbatim.
  UniversityDb u = BuildUniversityDb();
  const CQ q1 = UniversityQ1();
  auto built = ShapleyEngine::Build(q1, u.db);
  ASSERT_TRUE(built.ok());
  ShapleyEngine exact_engine = std::move(built).value();
  const std::vector<size_t> orbit_ids = exact_engine.OrbitIds();

  ApproxEngine::Options options;
  options.orbit_ids = &orbit_ids;
  auto engine = ApproxEngine::Create(q1, u.db, options);
  ASSERT_TRUE(engine.ok());
  ApproxEngine approx = std::move(engine).value();
  ApproxSpec spec;
  spec.epsilon = 0.1;
  spec.delta = 0.05;
  spec.seed = 5;
  auto rows = approx.EstimateAll(spec, 1);
  ASSERT_TRUE(rows.ok());

  const std::set<size_t> distinct(orbit_ids.begin(), orbit_ids.end());
  EXPECT_EQ(approx.info().orbit_count, distinct.size());
  for (size_t i = 0; i < orbit_ids.size(); ++i) {
    for (size_t j = i + 1; j < orbit_ids.size(); ++j) {
      if (orbit_ids[i] == orbit_ids[j]) {
        EXPECT_EQ(rows.value()[i].estimate, rows.value()[j].estimate);
        EXPECT_EQ(rows.value()[i].ci_radius, rows.value()[j].ci_radius);
      }
    }
  }
}

TEST(ApproxEngineTest, UnreferencedRelationOrbitsSkipSampling) {
  // Facts in relations no query atom mentions are null players: their rows
  // come back as exact zeros with zero samples, and their orbits are
  // excluded from the confidence split.
  auto db = ParseDatabase("R(a)* R(b)* Z(a)* Z(b)*");
  ASSERT_TRUE(db.ok());
  const CQ q = MustParseCQ("q() :- R(x)");
  auto engine = ApproxEngine::Create(q, db.value(), {});
  ASSERT_TRUE(engine.ok());
  ApproxEngine approx = std::move(engine).value();
  ApproxSpec spec;
  spec.epsilon = 0.1;
  spec.delta = 0.05;
  auto rows = approx.EstimateAll(spec, 1);
  ASSERT_TRUE(rows.ok());
  EXPECT_LT(approx.info().sampled_orbits, approx.info().orbit_count);
  for (FactId f : db.value().endogenous_facts()) {
    const ApproxRow& row = rows.value()[db.value().endo_index(f)];
    if (db.value().FactToString(f)[0] == 'Z') {
      EXPECT_EQ(row.estimate, Rational(0));
      EXPECT_EQ(row.ci_radius, 0.0);
      EXPECT_EQ(row.samples, 0u);
    } else {
      EXPECT_GT(row.samples, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Spec surface.

TEST(ApproxSpecTest, ValidateRejectsOutOfRangeParameters) {
  ApproxSpec spec;
  spec.epsilon = 0.0;
  EXPECT_FALSE(spec.Validate().ok());
  spec.epsilon = 1.0;
  EXPECT_FALSE(spec.Validate().ok());
  spec.epsilon = 0.1;
  spec.delta = 0.0;
  EXPECT_FALSE(spec.Validate().ok());
  spec.delta = 1.5;
  EXPECT_FALSE(spec.Validate().ok());
  spec.delta = 0.05;
  EXPECT_TRUE(spec.Validate().ok());
}

TEST(ApproxSpecTest, CacheKeySeparatesDistinctSpecs) {
  ApproxSpec a;
  a.epsilon = 0.1;
  ApproxSpec b = a;
  EXPECT_EQ(a.CacheKey(), b.CacheKey());
  b.seed = 1;
  EXPECT_NE(a.CacheKey(), b.CacheKey());
  b = a;
  b.delta = 0.01;
  EXPECT_NE(a.CacheKey(), b.CacheKey());
  b = a;
  b.max_samples = 32;
  EXPECT_NE(a.CacheKey(), b.CacheKey());
  b = a;
  b.force = true;
  EXPECT_NE(a.CacheKey(), b.CacheKey());
}

TEST(ApproxEngineTest, MaxSamplesCapsBudgetAndWidensIntervals) {
  UniversityDb u = BuildUniversityDb();
  const CQ q2 = UniversityQ2();
  ApproxSpec spec;
  spec.epsilon = 0.05;
  spec.delta = 0.05;
  spec.seed = 11;

  auto run = [&](size_t cap) {
    spec.max_samples = cap;
    auto engine = ApproxEngine::Create(q2, u.db, {});
    EXPECT_TRUE(engine.ok());
    ApproxEngine approx = std::move(engine).value();
    auto rows = approx.EstimateAll(spec, 1);
    EXPECT_TRUE(rows.ok());
    return std::make_pair(std::move(rows).value(), approx.info());
  };
  auto [uncapped, info_full] = run(0);
  auto [capped, info_capped] = run(64);
  EXPECT_FALSE(info_full.budget_capped);
  EXPECT_TRUE(info_capped.budget_capped);
  EXPECT_EQ(info_capped.samples_per_orbit, 64u);
  EXPECT_GT(capped[0].ci_radius, uncapped[0].ci_radius);
}

TEST(ApproxEngineTest, EstimateAllRejectsInvalidSpec) {
  UniversityDb u = BuildUniversityDb();
  const CQ q1 = UniversityQ1();
  auto engine = ApproxEngine::Create(q1, u.db, {});
  ASSERT_TRUE(engine.ok());
  ApproxEngine approx = std::move(engine).value();
  ApproxSpec bad;
  bad.epsilon = 2.0;
  EXPECT_FALSE(approx.EstimateAll(bad, 1).ok());
}

// ---------------------------------------------------------------------------
// The coalition cache.

TEST(CoalitionCacheTest, LookupInsertAndCounters) {
  CoalitionCache cache(1024);
  const std::vector<uint64_t> a{0b1010}, b{0b0101};
  EXPECT_EQ(cache.Lookup(a), -1);
  EXPECT_EQ(cache.misses(), 1u);
  cache.Insert(a, true);
  cache.Insert(b, false);
  EXPECT_EQ(cache.Lookup(a), 1);
  EXPECT_EQ(cache.Lookup(b), 0);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.entries(), 2u);
}

TEST(CoalitionCacheTest, EvictsBeyondBound) {
  // Cap 16 = one entry per stripe; hammering distinct keys must evict.
  CoalitionCache cache(16);
  for (uint64_t i = 0; i < 256; ++i) {
    cache.Insert({i}, (i & 1) != 0);
  }
  EXPECT_LE(cache.entries(), 16u);
  EXPECT_GT(cache.evictions(), 0u);
}

TEST(CoalitionCacheTest, ZeroCapDisablesMemoization) {
  UniversityDb u = BuildUniversityDb();
  const CQ q1 = UniversityQ1();
  ApproxEngine::Options options;
  options.cache_entries = 0;
  auto engine = ApproxEngine::Create(q1, u.db, options);
  ASSERT_TRUE(engine.ok());
  ApproxEngine approx = std::move(engine).value();
  ApproxSpec spec;
  spec.epsilon = 0.2;
  spec.delta = 0.05;
  spec.max_samples = 128;
  auto rows = approx.EstimateAll(spec, 1);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(approx.info().cache_hits, 0u);
  // Every sample evaluates twice (with and without the representative).
  EXPECT_EQ(approx.info().eval_calls, 2 * approx.info().samples_total);
}

// ---------------------------------------------------------------------------
// Parallel suite (runs under TSan in CI): many threads over the shared
// striped cache, checked against the serial run for bit-equality.

TEST(ApproxEngineParallelTest, SharedCacheParallelMatchesSerial) {
  Rng rng(77);
  QueryGenOptions gen;
  const CQ q = RandomHierarchicalCq(gen, &rng);
  SyntheticOptions synth;
  synth.domain_size = 4;
  synth.facts_per_relation = 5;
  Database db = RandomDatabaseForQuery(q, ExoRelations{}, synth, &rng);
  if (db.endogenous_count() == 0) GTEST_SKIP();

  ApproxSpec spec;
  spec.epsilon = 0.1;
  spec.delta = 0.05;
  spec.seed = 31;

  ApproxEngine::Options options;
  options.chunk_samples = 32;  // many small chunks = maximal interleaving
  auto serial_engine = ApproxEngine::Create(q, db, options);
  ASSERT_TRUE(serial_engine.ok());
  ApproxEngine serial = std::move(serial_engine).value();
  auto serial_rows = serial.EstimateAll(spec, 1);
  ASSERT_TRUE(serial_rows.ok());

  auto parallel_engine = ApproxEngine::Create(q, db, options);
  ASSERT_TRUE(parallel_engine.ok());
  ApproxEngine parallel = std::move(parallel_engine).value();
  auto parallel_rows = parallel.EstimateAll(spec, 8);
  ASSERT_TRUE(parallel_rows.ok());

  ASSERT_EQ(serial_rows.value().size(), parallel_rows.value().size());
  for (size_t i = 0; i < serial_rows.value().size(); ++i) {
    EXPECT_EQ(serial_rows.value()[i].estimate,
              parallel_rows.value()[i].estimate);
    EXPECT_EQ(serial_rows.value()[i].ci_radius,
              parallel_rows.value()[i].ci_radius);
  }
}

TEST(ApproxEngineParallelTest, RepeatedParallelRunsReuseSharedCache) {
  UniversityDb u = BuildUniversityDb();
  const CQ q2 = UniversityQ2();
  auto engine = ApproxEngine::Create(q2, u.db, {});
  ASSERT_TRUE(engine.ok());
  ApproxEngine approx = std::move(engine).value();
  ApproxSpec spec;
  spec.epsilon = 0.1;
  spec.delta = 0.05;
  spec.seed = 3;

  auto first = approx.EstimateAll(spec, 4);
  ASSERT_TRUE(first.ok());
  const size_t first_evals = approx.info().eval_calls;
  auto second = approx.EstimateAll(spec, 4);
  ASSERT_TRUE(second.ok());
  // The cache persists across runs: the repeat answers (almost) entirely
  // from memo, and the estimates are reproduced bit-identically.
  EXPECT_LT(approx.info().eval_calls, first_evals / 4 + 1);
  for (size_t i = 0; i < first.value().size(); ++i) {
    EXPECT_EQ(first.value()[i].estimate, second.value()[i].estimate);
  }
}

}  // namespace
}  // namespace shapcq
