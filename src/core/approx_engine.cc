#include "core/approx_engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <list>
#include <map>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/monte_carlo.h"
#include "eval/homomorphism.h"
#include "util/cancel.h"
#include "util/check.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace shapcq {

namespace {

// splitmix64 finalizer over (seed, a, b): the per-stream seed derivation.
// Streams are identified by (orbit representative, chunk index), NOT by
// worker id — which worker runs a chunk is scheduling noise, the stream it
// draws from is not. That is the whole determinism contract.
uint64_t MixStreamSeed(uint64_t seed, uint64_t a, uint64_t b) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ull * (a + 1) +
               0xbf58476d1ce4e5b9ull * (b + 1);
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ull;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z;
}

uint64_t HashWords(const std::vector<uint64_t>& words) {
  uint64_t h = 0x9e3779b97f4a7c15ull;
  for (uint64_t w : words) {
    h ^= w;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
  }
  return h;
}

}  // namespace

// ----------------------------------------------------------------------------
// ApproxSpec

Result<bool> ApproxSpec::Validate() const {
  if (!(epsilon > 0.0 && epsilon < 1.0)) {
    return Result<bool>::Error(
        "approx epsilon must be in (0,1), got " + std::to_string(epsilon));
  }
  if (!(delta > 0.0 && delta < 1.0)) {
    return Result<bool>::Error(
        "approx delta must be in (0,1), got " + std::to_string(delta));
  }
  return Result<bool>::Ok(true);
}

std::string ApproxSpec::CacheKey() const {
  // %.17g round-trips every double, so distinct specs cannot collide on a
  // key and equal specs always share one.
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "%.17g,%.17g,%llu,%zu,%d", epsilon,
                delta, static_cast<unsigned long long>(seed), max_samples,
                force ? 1 : 0);
  return buffer;
}

// ----------------------------------------------------------------------------
// CoalitionCache

struct CoalitionCache::Impl {
  // Entries hold their key alongside the value so the LRU list alone can
  // drive map erasure on eviction.
  struct Entry {
    std::vector<uint64_t> words;
    bool value;
  };
  struct WordsHash {
    size_t operator()(const std::vector<uint64_t>& words) const {
      return static_cast<size_t>(HashWords(words));
    }
  };
  struct Stripe {
    std::mutex mutex;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::vector<uint64_t>, std::list<Entry>::iterator,
                       WordsHash>
        index;
  };

  static constexpr size_t kStripes = 16;

  Stripe stripes[kStripes];
  size_t per_stripe_cap = 0;  // 0 = memoization disabled
  std::atomic<size_t> hits{0};
  std::atomic<size_t> misses{0};
  std::atomic<size_t> evictions{0};
  std::atomic<size_t> entries{0};

  Stripe& StripeFor(uint64_t hash) {
    // The low bits pick the map bucket inside the stripe; use high bits for
    // the stripe so the two choices stay independent.
    return stripes[(hash >> 58) % kStripes];
  }
};

CoalitionCache::CoalitionCache(size_t max_entries)
    : impl_(std::make_unique<Impl>()) {
  impl_->per_stripe_cap =
      max_entries == 0
          ? 0
          : (max_entries + Impl::kStripes - 1) / Impl::kStripes;
}
CoalitionCache::~CoalitionCache() = default;
CoalitionCache::CoalitionCache(CoalitionCache&&) noexcept = default;
CoalitionCache& CoalitionCache::operator=(CoalitionCache&&) noexcept = default;

int CoalitionCache::Lookup(const std::vector<uint64_t>& words) {
  if (impl_->per_stripe_cap == 0) {
    impl_->misses.fetch_add(1, std::memory_order_relaxed);
    return -1;
  }
  Impl::Stripe& stripe = impl_->StripeFor(HashWords(words));
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto it = stripe.index.find(words);
  if (it == stripe.index.end()) {
    impl_->misses.fetch_add(1, std::memory_order_relaxed);
    return -1;
  }
  stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second);
  impl_->hits.fetch_add(1, std::memory_order_relaxed);
  return it->second->value ? 1 : 0;
}

void CoalitionCache::Insert(const std::vector<uint64_t>& words, bool value) {
  if (impl_->per_stripe_cap == 0) return;
  Impl::Stripe& stripe = impl_->StripeFor(HashWords(words));
  std::lock_guard<std::mutex> lock(stripe.mutex);
  if (stripe.index.count(words) > 0) return;  // raced with another sampler
  stripe.lru.push_front(Impl::Entry{words, value});
  stripe.index.emplace(words, stripe.lru.begin());
  impl_->entries.fetch_add(1, std::memory_order_relaxed);
  if (stripe.lru.size() > impl_->per_stripe_cap) {
    stripe.index.erase(stripe.lru.back().words);
    stripe.lru.pop_back();
    impl_->evictions.fetch_add(1, std::memory_order_relaxed);
    impl_->entries.fetch_sub(1, std::memory_order_relaxed);
  }
}

size_t CoalitionCache::hits() const {
  return impl_->hits.load(std::memory_order_relaxed);
}
size_t CoalitionCache::misses() const {
  return impl_->misses.load(std::memory_order_relaxed);
}
size_t CoalitionCache::evictions() const {
  return impl_->evictions.load(std::memory_order_relaxed);
}
size_t CoalitionCache::entries() const {
  return impl_->entries.load(std::memory_order_relaxed);
}

// ----------------------------------------------------------------------------
// Symmetry orbits

std::vector<size_t> ApproxSymmetryOrbits(const CQ& q, const Database& db) {
  // A database value is "free" if it occurs exactly once across all live
  // facts (counting multiplicity within a tuple) and never as a query
  // constant: transposing two free values is then a database automorphism
  // that fixes the query, so facts agreeing everywhere except on free
  // positions are symmetric players.
  std::unordered_map<int32_t, size_t> occurrences;
  for (FactId f = 0; f < static_cast<FactId>(db.fact_slot_count()); ++f) {
    if (db.is_removed(f)) continue;
    for (const Value& v : db.tuple_of(f)) ++occurrences[v.id];
  }
  std::unordered_set<int32_t> query_constants;
  for (const Atom& atom : q.atoms()) {
    for (const Term& term : atom.terms) {
      if (term.IsConst()) query_constants.insert(term.constant.id);
    }
  }
  // Signature: relation id, then the tuple with free positions masked. An
  // ordered map keeps this O(n log n) without a vector hash.
  std::map<std::vector<int64_t>, size_t> orbit_of_signature;
  std::vector<size_t> orbits;
  orbits.reserve(db.endogenous_count());
  for (FactId f : db.endogenous_facts()) {
    std::vector<int64_t> signature;
    const Tuple& tuple = db.tuple_of(f);
    signature.reserve(tuple.size() + 1);
    signature.push_back(db.relation_of(f));
    for (const Value& v : tuple) {
      const bool free =
          occurrences[v.id] == 1 && query_constants.count(v.id) == 0;
      signature.push_back(free ? -1 : static_cast<int64_t>(v.id));
    }
    const size_t next = orbit_of_signature.size();
    orbits.push_back(orbit_of_signature.emplace(std::move(signature), next)
                         .first->second);
  }
  return orbits;
}

// ----------------------------------------------------------------------------
// ApproxEngine

struct ApproxEngine::Impl {
  const CQ* q = nullptr;
  const Database* db = nullptr;
  Options options;
  std::vector<size_t> orbits;  // per endo index, dense
  std::string orbit_source;
  CoalitionCache cache{0};
  std::atomic<size_t> eval_calls{0};
  ApproxRunInfo info;

  // Packs `world` into `words` and answers q(Dx ∪ world) through the
  // execution cache. `words` is caller-owned scratch, already sized.
  bool CachedEval(const World& world, std::vector<uint64_t>* words) {
    std::fill(words->begin(), words->end(), 0);
    for (size_t i = 0; i < world.size(); ++i) {
      if (world[i]) (*words)[i >> 6] |= uint64_t{1} << (i & 63);
    }
    return CachedEvalPacked(world, *words);
  }

  // As CachedEval, with `words` already packed to match `world`.
  bool CachedEvalPacked(const World& world,
                        const std::vector<uint64_t>& words) {
    const int cached = cache.Lookup(words);
    if (cached >= 0) return cached == 1;
    const bool value = EvalBoolean(*q, *db, world);
    eval_calls.fetch_add(1, std::memory_order_relaxed);
    cache.Insert(words, value);
    return value;
  }

  // Per-stream integer accumulators: exact, order-independent within the
  // chunk, summed in fixed chunk order by the reduction.
  struct ChunkAccum {
    int64_t sum = 0;      // Σ contribution, contribution ∈ {-1, 0, 1}
    int64_t nonzero = 0;  // Σ contribution² (the variance ingredient)
  };

  // Draws `count` permutation samples for the orbit representative at endo
  // index `rep` from the (rep, chunk) RNG stream. Sampling a uniform
  // position k for the representative and then a uniform k-subset of the
  // other players is distributed exactly like a uniform permutation prefix.
  void RunChunk(size_t rep, uint64_t chunk, size_t count, uint64_t seed,
                ChunkAccum* accum) {
    const size_t n = db->endogenous_count();
    Rng rng(MixStreamSeed(seed, rep, chunk));
    std::vector<size_t> others;
    others.reserve(n - 1);
    for (size_t i = 0; i < n; ++i) {
      if (i != rep) others.push_back(i);
    }
    World world(n, false);
    std::vector<uint64_t> words((n + 63) / 64, 0);
    for (size_t s = 0; s < count; ++s) {
      const size_t k = n == 1 ? 0 : static_cast<size_t>(rng.UniformInt(n));
      // Partial Fisher-Yates: others[0..k) becomes a uniform k-subset. The
      // vector stays permuted across samples — a uniform shuffle of any
      // fixed starting order is still uniform, and the evolution is a pure
      // function of the stream.
      for (size_t i = 0; i < k; ++i) {
        const size_t j =
            i + static_cast<size_t>(rng.UniformInt(others.size() - i));
        std::swap(others[i], others[j]);
      }
      std::fill(world.begin(), world.end(), false);
      std::fill(words.begin(), words.end(), 0);
      for (size_t i = 0; i < k; ++i) {
        world[others[i]] = true;
        words[others[i] >> 6] |= uint64_t{1} << (others[i] & 63);
      }
      const bool before = CachedEvalPacked(world, words);
      world[rep] = true;
      words[rep >> 6] |= uint64_t{1} << (rep & 63);
      const bool after = CachedEvalPacked(world, words);
      const int64_t contribution = (after ? 1 : 0) - (before ? 1 : 0);
      accum->sum += contribution;
      accum->nonzero += contribution != 0;
    }
  }
};

ApproxEngine::ApproxEngine() : impl_(std::make_unique<Impl>()) {}
ApproxEngine::~ApproxEngine() = default;
ApproxEngine::ApproxEngine(ApproxEngine&&) noexcept = default;
ApproxEngine& ApproxEngine::operator=(ApproxEngine&&) noexcept = default;

Result<ApproxEngine> ApproxEngine::Create(const CQ& q, const Database& db,
                                          const Options& options) {
  ApproxEngine engine;
  engine.impl_->q = &q;
  engine.impl_->db = &db;
  engine.impl_->options = options;
  engine.impl_->cache = CoalitionCache(options.cache_entries);
  if (options.orbit_ids != nullptr) {
    if (options.orbit_ids->size() != db.endogenous_count()) {
      return Result<ApproxEngine>::Error(
          "orbit_ids size " + std::to_string(options.orbit_ids->size()) +
          " does not match endogenous count " +
          std::to_string(db.endogenous_count()));
    }
    engine.impl_->orbits = *options.orbit_ids;
    engine.impl_->orbit_source = "engine";
  } else {
    engine.impl_->orbits = ApproxSymmetryOrbits(q, db);
    engine.impl_->orbit_source = "signature";
  }
  return Result<ApproxEngine>::Ok(std::move(engine));
}

Result<std::vector<ApproxRow>> ApproxEngine::EstimateAll(
    const ApproxSpec& spec, size_t num_threads, const CancelToken* cancel) {
  using R = Result<std::vector<ApproxRow>>;
  auto valid = spec.Validate();
  if (!valid.ok()) return R::Error(valid.error());
  if (cancel != nullptr && !cancel->Enabled()) cancel = nullptr;
  if (cancel != nullptr && cancel->Expired()) {
    return R::Error(CancelToken::kCancelledMessage);
  }

  Impl& impl = *impl_;
  const Database& db = *impl.db;
  const size_t n = db.endogenous_count();
  impl.info = ApproxRunInfo{};
  impl.info.orbit_source = impl.orbit_source;
  impl.eval_calls.store(0, std::memory_order_relaxed);
  const size_t cache_hits_before = impl.cache.hits();
  const size_t cache_evictions_before = impl.cache.evictions();

  std::vector<ApproxRow> rows(n);
  if (n == 0) return R::Ok(std::move(rows));

  // Orbit representatives: the first member in endo order (dense first-seen
  // ids make that the member with the smallest endo index).
  const size_t orbit_count =
      1 + *std::max_element(impl.orbits.begin(), impl.orbits.end());
  std::vector<size_t> representative(orbit_count, n);
  for (size_t i = 0; i < n; ++i) {
    rows[i].orbit = impl.orbits[i];
    if (representative[impl.orbits[i]] == n) representative[impl.orbits[i]] = i;
  }
  impl.info.orbit_count = orbit_count;

  // Facts of relations the query never mentions cannot change its truth:
  // their whole orbit is exactly zero (orbit members share one value), so
  // skip sampling it — and keep it out of the confidence split.
  std::unordered_set<std::string> referenced;
  for (const Atom& atom : impl.q->atoms()) referenced.insert(atom.relation);
  std::vector<size_t> sampled;  // orbit ids, ascending (= rep endo order)
  sampled.reserve(orbit_count);
  for (size_t orbit = 0; orbit < orbit_count; ++orbit) {
    const FactId rep_fact = db.endogenous_facts()[representative[orbit]];
    if (referenced.count(db.schema().name(db.relation_of(rep_fact))) > 0) {
      sampled.push_back(orbit);
    }
  }
  impl.info.sampled_orbits = sampled.size();
  if (sampled.empty()) return R::Ok(std::move(rows));

  // Bonferroni split: every sampled orbit gets delta' = delta / #sampled, so
  // all intervals hold simultaneously with probability >= 1 - delta.
  const double orbit_delta = spec.delta / static_cast<double>(sampled.size());
  size_t samples = HoeffdingSampleCount(spec.epsilon, orbit_delta);
  if (spec.max_samples > 0 && spec.max_samples < samples) {
    samples = spec.max_samples;
    impl.info.budget_capped = true;
  }
  impl.info.samples_per_orbit = samples;
  impl.info.samples_total = samples * sampled.size();

  const size_t chunk = impl.options.chunk_samples > 0
                           ? impl.options.chunk_samples
                           : samples;
  const size_t chunks = (samples + chunk - 1) / chunk;
  std::vector<Impl::ChunkAccum> slots(sampled.size() * chunks);
  auto run_task = [&](size_t task) {
    const size_t ordinal = task / chunks;
    const uint64_t chunk_index = task % chunks;
    const size_t rep = representative[sampled[ordinal]];
    const size_t count = chunk_index + 1 == chunks
                             ? samples - static_cast<size_t>(chunk_index) * chunk
                             : chunk;
    impl.RunChunk(rep, chunk_index, count, spec.seed, &slots[task]);
  };
  // Cancellation polls sit at chunk boundaries: a chunk is one
  // deterministic RNG stream, so skipping whole chunks never perturbs the
  // streams an uncancelled retry replays. Workers that observe an expired
  // token skip their remaining tasks; the run then fails as a whole below
  // (partial sums are discarded — only the coalition cache, which cannot
  // affect values, keeps its warmth).
  const size_t threads = ThreadPool::ResolveThreadCount(num_threads);
  if (threads <= 1 || slots.size() <= 1) {
    for (size_t task = 0; task < slots.size(); ++task) {
      if (cancel != nullptr && cancel->Expired()) {
        return R::Error(CancelToken::kCancelledMessage);
      }
      run_task(task);
    }
  } else {
    ThreadPool pool(threads);
    pool.ParallelFor(slots.size(), [&](size_t task) {
      if (cancel != nullptr && cancel->Expired()) return;
      run_task(task);
    });
    if (cancel != nullptr && cancel->Expired()) {
      return R::Error(CancelToken::kCancelledMessage);
    }
  }

  // Serial fixed-order reduction: per-orbit integer totals, then the exact
  // Rational mean and the double CI radius — all pure functions of the
  // streams, independent of how tasks were scheduled.
  for (size_t ordinal = 0; ordinal < sampled.size(); ++ordinal) {
    int64_t total = 0;
    int64_t nonzero = 0;
    for (size_t c = 0; c < chunks; ++c) {
      total += slots[ordinal * chunks + c].sum;
      nonzero += slots[ordinal * chunks + c].nonzero;
    }
    const double m = static_cast<double>(samples);
    // Both radii at half the orbit's confidence share, so min(·,·) is valid
    // at delta' by the union bound.
    const double log_term = std::log(4.0 / orbit_delta);
    const double hoeffding = std::sqrt(2.0 * log_term / m);
    double radius = hoeffding;
    if (samples > 1) {
      // Empirical Bernstein (Maurer–Pontil) for range [-1, 1]: sharp when
      // the observed variance is far below the worst case, which is the
      // common shape (most permutations leave the query's truth unchanged).
      const double mean = static_cast<double>(total) / m;
      const double variance =
          (static_cast<double>(nonzero) - m * mean * mean) / (m - 1.0);
      const double bernstein =
          std::sqrt(2.0 * std::max(variance, 0.0) * log_term / m) +
          14.0 * log_term / (3.0 * (m - 1.0));
      radius = std::min(hoeffding, bernstein);
    }
    ApproxRow row;
    row.estimate = Rational::Of(total, static_cast<int64_t>(samples));
    row.ci_radius = radius;
    row.samples = samples;
    row.orbit = sampled[ordinal];
    // Share the representative's estimate across every orbit member.
    for (size_t i = 0; i < n; ++i) {
      if (impl.orbits[i] == sampled[ordinal]) rows[i] = row;
    }
  }

  impl.info.eval_calls = impl.eval_calls.load(std::memory_order_relaxed);
  impl.info.cache_hits = impl.cache.hits() - cache_hits_before;
  impl.info.cache_evictions =
      impl.cache.evictions() - cache_evictions_before;
  return R::Ok(std::move(rows));
}

const ApproxRunInfo& ApproxEngine::info() const { return impl_->info; }

}  // namespace shapcq
