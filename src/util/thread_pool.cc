#include "util/thread_pool.h"

#include <utility>

#include "util/check.h"

namespace shapcq {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    SHAPCQ_CHECK_MSG(!stopping_, "Submit on a destructing ThreadPool");
    queue_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  // One task per worker, each draining a shared atomic index: dynamic load
  // balancing without one queue entry per item.
  std::atomic<size_t> next{0};
  const size_t tasks = workers_.size() < n ? workers_.size() : n;
  for (size_t t = 0; t < tasks; ++t) {
    Submit([&next, n, &body] {
      for (size_t i; (i = next.fetch_add(1, std::memory_order_relaxed)) < n;) {
        body(i);
      }
    });
  }
  Wait();
}

size_t ThreadPool::ResolveThreadCount(size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

}  // namespace shapcq
