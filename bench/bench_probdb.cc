// E12 — Theorem 4.10: probabilistic query evaluation. Lifted inference
// (polynomial) vs possible-world enumeration (exponential) on hierarchical
// CQ¬ workloads, and ExoProb on the non-hierarchical citations query with
// deterministic relations.

#include <benchmark/benchmark.h>

#include "datasets/citations.h"
#include "datasets/synthetic.h"
#include "datasets/university.h"
#include "probdb/exoprob.h"
#include "probdb/lifted.h"

namespace {

using namespace shapcq;

ProbDatabase MakeStudentsProbDb(int students) {
  ProbDatabase pdb;
  for (int s = 0; s < students; ++s) {
    const Value who = V("ps" + std::to_string(s));
    pdb.AddDeterministic("Stud", {who});
    pdb.AddFact("TA", {who}, 0.5);
    pdb.AddFact("Reg", {who, V("pc0")}, 0.7);
  }
  return pdb;
}

void BM_LiftedInference(benchmark::State& state) {
  const CQ q = UniversityQ1();
  const ProbDatabase pdb =
      MakeStudentsProbDb(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LiftedProbability(q, pdb).value());
  }
}
BENCHMARK(BM_LiftedInference)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_WorldEnumeration(benchmark::State& state) {
  const CQ q = UniversityQ1();
  const ProbDatabase pdb =
      MakeStudentsProbDb(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pdb.ProbabilityBruteForce(q));
  }
}
// 2 probabilistic facts per student: 8, 16, 20 worlds bits.
BENCHMARK(BM_WorldEnumeration)->Arg(4)->Arg(8)->Arg(10);

void BM_ExoProbCitations(benchmark::State& state) {
  Rng rng(777);
  SyntheticOptions options;
  options.domain_size = static_cast<int>(state.range(0));
  options.facts_per_relation = static_cast<int>(state.range(0)) * 2;
  const CQ q = CitationsQuery();
  const ProbDatabase pdb =
      RandomProbDatabaseForQuery(q, CitationsExoRelations(), options, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ExoProbProbability(q, pdb, CitationsExoRelations()).value());
  }
}
BENCHMARK(BM_ExoProbCitations)->Arg(3)->Arg(6)->Arg(12);

}  // namespace

BENCHMARK_MAIN();
