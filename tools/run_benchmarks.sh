#!/usr/bin/env bash
# Builds the Release benchmarks and records the all-facts Shapley benchmark
# as BENCH_shapley.json at the repository root, so the perf trajectory is
# tracked PR over PR. The file now carries a thread-count axis too:
# BM_EngineAllFactsParallel/{students},{threads} rows measure the worker-pool
# engine, with threads=1 as the serial baseline of the speedup curve — read
# them next to the machine's host_cpu count in the JSON "context" block,
# since a speedup is only physically possible when host_cpus > 1.
#
#   tools/run_benchmarks.sh [build-dir]
#
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-bench}"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release \
      -DSHAPCQ_BUILD_TESTS=OFF -DSHAPCQ_BUILD_EXAMPLES=OFF
cmake --build "$build_dir" -j "$(nproc)" --target bench_shapley_all

"$build_dir/bench/bench_shapley_all" \
    --benchmark_format=json \
    --benchmark_out="$repo_root/BENCH_shapley.json" \
    --benchmark_out_format=json

echo "wrote $repo_root/BENCH_shapley.json"
