// Multi-session engine registry: the state layer of the attribution server.
//
// A session is one (query, database-stream) pair: the query is fixed at OPEN,
// the database starts empty and evolves through a stream of fact mutations.
// The registry owns each session's Database (heap-allocated, address-stable —
// the incremental ShapleyEngine captures it by pointer) and, while resident,
// the session's incremental engine.
//
// Engines are the expensive, evictable part. They are built lazily on the
// first report, maintained incrementally by InsertFact/DeleteFact while
// resident, and evicted least-recently-used when the byte budget (or the
// resident-engine cap) is exceeded. An evicted session stays open: its
// database keeps absorbing mutations directly, and the next report rebuilds
// the engine from the retained database ("rebuild-on-readmission"). Reports
// are bit-identical either way — the incremental engine is bit-identical to
// a fresh Build() on the mutated database (PR 3's contract).
//
// Threading: the registry is single-writer. One thread opens sessions,
// applies mutations and requests reports; a report may fan its orbit
// re-evaluations out over ReportOptions::num_threads workers internally (the
// engine's single-writer/parallel-reader contract — see "Threading contract"
// in DESIGN.md). The registry itself takes no locks.

#ifndef SHAPCQ_SERVICE_ENGINE_REGISTRY_H_
#define SHAPCQ_SERVICE_ENGINE_REGISTRY_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/report.h"
#include "core/shapley_engine.h"
#include "db/database.h"
#include "db/textio.h"
#include "query/cq.h"
#include "util/result.h"

namespace shapcq {

/// Eviction knobs. Both limits apply to resident engines only — open
/// sessions and their databases are never evicted, only their engines.
struct RegistryOptions {
  /// Total ShapleyEngine::ApproxMemoryBytes() allowed across resident
  /// engines; 0 = unlimited. A single engine larger than the whole budget is
  /// evicted at the end of its own request, so the budget holds between
  /// requests (every report on such a session is a rebuild).
  size_t engine_byte_budget = 0;
  /// Maximum number of resident engines; 0 = unlimited. Deterministic across
  /// platforms (byte estimates are not), so CI golden transcripts use this.
  size_t max_resident_engines = 0;
};

/// Registry-wide counters, reported by the STATS command.
struct RegistryStats {
  size_t open_sessions = 0;
  size_t resident_engines = 0;
  size_t resident_bytes = 0;  ///< sum of resident engines' last estimates
  size_t report_hits = 0;     ///< reports served by an already-resident engine
  size_t report_cache_hits = 0;  ///< hits served straight from the report
                                 ///< cache (no delta since the last report)
  size_t report_misses = 0;   ///< reports that had to (re)build the engine
  size_t evictions = 0;       ///< engines dropped by budget/cap pressure
  size_t engine_builds = 0;   ///< total Build() calls (first builds + rebuilds)
};

/// Per-session counters and state, reported by "STATS <session>".
struct SessionStats {
  size_t fact_count = 0;
  size_t endo_count = 0;
  size_t deltas_applied = 0;
  size_t reports_served = 0;
  size_t engine_builds = 0;  ///< builds for this session, rebuilds included
  bool engine_resident = false;
  size_t engine_bytes = 0;  ///< last estimate (refreshed at builds, computed
                            ///< reports, and byte-budget enforcement); 0
                            ///< while not resident
};

/// Session store with LRU engine eviction. Not thread-safe (single writer).
class EngineRegistry {
 public:
  explicit EngineRegistry(const RegistryOptions& options);
  EngineRegistry();
  ~EngineRegistry();
  EngineRegistry(EngineRegistry&&) noexcept;
  EngineRegistry& operator=(EngineRegistry&&) noexcept;

  /// Opens a session with an empty database. Fails on a duplicate id or a
  /// query outside the incremental engine's scope (unsafe, self-join, or
  /// non-hierarchical) — the same checks ShapleyEngine::Build would fail,
  /// surfaced before any mutation is accepted.
  Result<bool> Open(const std::string& session_id, const CQ& query);

  /// True if the session is open.
  bool Has(const std::string& session_id) const;

  /// Applies one mutation to the session's database: through the resident
  /// engine when there is one, directly otherwise. Error surfaces are
  /// identical either way (duplicate insert, arity mismatch against schema
  /// or query atom, delete of an absent fact). Returns the inserted or
  /// removed FactId.
  Result<FactId> ApplyMutation(const std::string& session_id,
                               const MutationSpec& mutation);

  /// Ranked attribution table of the session's current database. Ensures the
  /// engine is resident (building it on a miss), marks the session most
  /// recently used, then enforces the eviction policy. While the engine is
  /// resident, the full ranked table is cached per mutation epoch: repeated
  /// reports with no intervening delta are served from the cache (the
  /// steady-state polling path), with options.top_k applied per serve. The
  /// cache is dropped with the engine on eviction. Reports are bit-identical
  /// whether served from the cache, a warm engine, a fresh build, or a
  /// rebuild after an eviction.
  Result<AttributionReport> Report(const std::string& session_id,
                                   const ReportOptions& options);

  /// Closes the session, dropping its database and engine. A close is not an
  /// eviction (the stream ended; nothing will be readmitted).
  Result<bool> Close(const std::string& session_id);

  /// The session's database (for rendering reports); nullptr if not open.
  const Database* FindDatabase(const std::string& session_id) const;

  Result<SessionStats> Stats(const std::string& session_id) const;
  RegistryStats stats() const;

  /// Open session ids, in OPEN order.
  std::vector<std::string> SessionIds() const;

 private:
  struct Session;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace shapcq

#endif  // SHAPCQ_SERVICE_ENGINE_REGISTRY_H_
