// A std::streambuf over a connected socket: the glue that lets the
// line-protocol CommandLoop — written against std::istream/std::ostream —
// serve a TCP connection unchanged.
//
// Reads recv() into a fixed get area; writes buffer into a fixed put area
// and send() on flush (CommandLoop flushes after every command, so clients
// see each command's output promptly). EINTR on either syscall is retried
// internally; a peer that disappears surfaces as EOF on the read side and
// as a sticky write_failed() on the write side (sends use MSG_NOSIGNAL, so
// a dead peer never raises SIGPIPE — the loop keeps executing until it
// reads EOF, exactly like a script whose output pipe closed).
//
// The buffer does not own the fd: the connection handler closes it after
// the stream is destroyed. Not thread-safe; one connection, one thread.

#ifndef SHAPCQ_SERVICE_NET_FD_STREAM_H_
#define SHAPCQ_SERVICE_NET_FD_STREAM_H_

#include <cstddef>
#include <streambuf>
#include <vector>

namespace shapcq {

class FdStreamBuf : public std::streambuf {
 public:
  /// Wraps a connected socket fd (borrowed, not owned).
  explicit FdStreamBuf(int fd);
  ~FdStreamBuf() override;
  FdStreamBuf(const FdStreamBuf&) = delete;
  FdStreamBuf& operator=(const FdStreamBuf&) = delete;

  /// True once any send() failed (peer gone); later writes are dropped.
  bool write_failed() const { return write_failed_; }

 protected:
  int_type underflow() override;
  int_type overflow(int_type ch) override;
  int sync() override;

 private:
  /// Sends the put area, retrying partial sends and EINTR. Returns false
  /// (and latches write_failed_) on an unrecoverable send error.
  bool FlushOut();

  static constexpr size_t kBufferBytes = 8192;

  int fd_;
  std::vector<char> in_buf_;
  std::vector<char> out_buf_;
  bool write_failed_ = false;
};

}  // namespace shapcq

#endif  // SHAPCQ_SERVICE_NET_FD_STREAM_H_
