// Attribution reports: the user-facing summary layer over the Shapley
// engines. Computes values for all endogenous facts with the best
// applicable algorithm, ranks them, and renders a fixed-width table.

#ifndef SHAPCQ_CORE_REPORT_H_
#define SHAPCQ_CORE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/approx_engine.h"
#include "core/shapley_engine.h"
#include "db/database.h"
#include "query/analysis.h"
#include "query/cq.h"
#include "util/rational.h"
#include "util/result.h"

namespace shapcq {

class CancelToken;  // util/cancel.h

/// What an expired deadline on an exact report turns into: a structured
/// [E_DEADLINE] error (kError, the default), or a degradation to the
/// sampling tier (kApprox) — the caller still gets an answer, CI-annotated
/// with the usual "approx:" provenance line. Degraded runs are work-bounded
/// (a default per-orbit sample cap), not re-deadlined: the deadline budget
/// applies to the exact attempt.
enum class OnDeadline { kError, kApprox };

/// The canonical [E_DEADLINE] error payload. `deadline_ms` = 0 means the
/// expiry came from a caller-supplied token rather than a millisecond
/// budget. Deterministic (no timing content), so transcripts stay golden.
std::string DeadlineExceededMessage(size_t deadline_ms);

/// One fact's attribution. The confidence fields are meaningful only on
/// approximate reports (AttributionReport::approximate): the true Shapley
/// value lies within ci_radius of `value`, jointly over all rows, with
/// probability at least 1 - delta.
struct Attribution {
  FactId fact = kNoFact;
  Rational value;
  double ci_radius = 0.0;  // 0 on exact reports
  size_t samples = 0;      // 0 on exact reports and provably-zero rows
};

/// Provenance of an approximate report (AttributionReport::approx).
struct ApproxReportInfo {
  double epsilon = 0.0;
  double delta = 0.0;
  uint64_t seed = 0;
  size_t samples_per_orbit = 0;
  size_t samples_total = 0;
  size_t orbit_count = 0;      ///< symmetry orbits over the endo facts
  size_t sampled_orbits = 0;   ///< orbits that drew samples (rest are
                               ///< provably zero)
  bool budget_capped = false;  ///< max_samples cut the Hoeffding count
                               ///< (intervals widen accordingly)
  std::string orbit_source;    ///< "engine" or "signature"
  std::string dispatch_reason; ///< classifier verdict that routed here
};

/// A full attribution of a query answer to the endogenous facts.
struct AttributionReport {
  std::vector<Attribution> rows;  // sorted by descending value
  std::string engine;             // "CntSat", "ExoShap", "approx-fpras" or
                                  // "brute-force"
  Rational total;                 // = q(D) − q(Dx) by efficiency (for
                                  // approx: the sum of the estimates)
  bool approximate = false;       // rows carry (ci_radius, samples)
  ApproxReportInfo approx;        // populated iff `approximate`
};

/// Options for BuildAttributionReport.
struct ReportOptions {
  ExoRelations exo;               // all-exogenous relations, if known
  bool allow_brute_force = false; // permit the exponential fallback
  size_t brute_force_limit = 20;  // max |Dn| for the fallback
  size_t num_threads = 1;         // worker threads for the all-facts engines
                                  // (1 = serial, 0 = hardware concurrency);
                                  // values are identical at any setting
  size_t top_k = 0;               // keep only the k highest-ranked rows
                                  // (0 = all); `total` stays the full
                                  // efficiency total either way
  ApproxSpec approx;              // sampling tier: disabled unless
                                  // approx.enabled(); with approx.force the
                                  // sampler runs even on tractable queries
  EngineCore engine_core =        // numeric core for ShapleyEngine builds
      EngineCore::kArena;         // (kTree = the differential oracle;
                                  // values are bit-identical either way)
  size_t deadline_ms = 0;         // wall-clock budget for the report
                                  // (0 = none). Covers the CntSat build +
                                  // sweep and the sampling tier; expiry
                                  // yields [E_DEADLINE] or, per
                                  // on_deadline, an approx degradation
  OnDeadline on_deadline =        // policy when the deadline expires on an
      OnDeadline::kError;         // exact report (see OnDeadline)
  const CancelToken* cancel =     // caller-owned token; non-null overrides
      nullptr;                    // deadline_ms (used by the service layer,
                                  // which scopes one token per request)
};

/// Computes Shapley values for every endogenous fact, choosing CntSat for
/// hierarchical queries, ExoShap when `options.exo` removes all
/// non-hierarchical paths, the sampling tier when `options.approx` is
/// enabled (the only engine for FP^#P-hard queries beyond the brute-force
/// limit; with approx.force it preempts the exact engines too), and (only
/// if allowed) brute force otherwise. Returns an error when no permitted
/// engine applies.
Result<AttributionReport> BuildAttributionReport(const CQ& q,
                                                 const Database& db,
                                                 const ReportOptions& options);

/// The deadline-degradation entry: a prompt, work-bounded sampling report
/// for a query whose exact report just blew its deadline. Honors a
/// caller-provided approx spec; otherwise uses a conservative default
/// (eps=0.1, delta=0.05, max_samples=2048). Signature-stratified — it never
/// rebuilds the exact index — and never re-deadlined (the deadline budget
/// belonged to the exact attempt). Shared by BuildAttributionReport's
/// on_deadline=approx path and the serving registry's.
Result<AttributionReport> BuildDegradedApproxReport(
    const CQ& q, const Database& db, const ReportOptions& options);

/// Attribution table served from a live (possibly mutated) ShapleyEngine:
/// the long-lived-service path, where the index is maintained incrementally
/// by InsertFact/DeleteFact instead of rebuilt per report. `db` must be the
/// database the engine was built on and has been mutating.
AttributionReport BuildAttributionReportFromEngine(
    ShapleyEngine& engine, const Database& db, const ReportOptions& options);

/// Cancellable form of the above: polls `cancel` at orbit boundaries of the
/// value sweep and returns the [E_DEADLINE] payload on expiry. The engine
/// keeps every orbit value it finished (each is a pure function of the
/// index), so a later undeadlined report is bit-identical to a fresh
/// engine's. nullptr/disabled tokens reduce to the plain overload.
Result<AttributionReport> BuildAttributionReportFromEngine(
    ShapleyEngine& engine, const Database& db, const ReportOptions& options,
    const CancelToken* cancel);

/// Fixed-width text rendering of a report (fact, exact value, decimal).
/// Approximate reports add an "approx:" provenance line and per-row
/// confidence columns; exact reports render byte-identically to before the
/// sampling tier existed.
std::string RenderReport(const AttributionReport& report, const Database& db);

}  // namespace shapcq

#endif  // SHAPCQ_CORE_REPORT_H_
