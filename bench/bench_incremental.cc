// Incremental maintenance vs rebuild: a single-fact delta on the memoized
// ShapleyEngine tree patches one root-to-leaf path, while the non-
// incremental alternative re-runs Build() over the whole database. Both
// benchmarks apply the same delete + re-insert pair per iteration, so
// time-per-iteration is directly comparable: the patch/rebuild ratio is the
// speedup the long-lived service mode buys (target >=10x at endo >= 70,
// i.e. students >= 20; tools/check_incremental_speedup.py gates 50% in CI).
//
// Arg = students in the q1-shaped scaling database (endo = 3s + ceil(s/2)).

#include <benchmark/benchmark.h>

#include <string>

#include "core/shapley_engine.h"
#include "datasets/synthetic.h"
#include "datasets/university.h"

namespace {

using namespace shapcq;

// The mutated fact: the last endogenous fact (a Reg registration), captured
// as a literal so it can be re-inserted after every delete.
struct DeltaTarget {
  std::string relation;
  Tuple tuple;
  bool endogenous;
};

DeltaTarget TargetOf(const Database& db) {
  const FactId fact = db.endogenous_facts().back();
  return DeltaTarget{db.schema().name(db.relation_of(fact)),
                     db.tuple_of(fact), db.is_endogenous(fact)};
}

void BM_IncrementalDelta(benchmark::State& state) {
  const CQ q = UniversityQ1();
  Database db = BuildStudentScalingDb(static_cast<int>(state.range(0)), 3);
  const DeltaTarget target = TargetOf(db);
  ShapleyEngine engine = std::move(ShapleyEngine::Build(q, db)).value();
  FactId current = db.endogenous_facts().back();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.DeleteFact(db, current));
    auto inserted =
        engine.InsertFact(db, target.relation, target.tuple,
                          target.endogenous);
    current = inserted.value();
    benchmark::DoNotOptimize(current);
  }
  state.SetLabel("endo=" + std::to_string(db.endogenous_count()));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_IncrementalDelta)->Arg(4)->Arg(8)->Arg(16)->Arg(20)->Arg(32);

void BM_RebuildPerDelta(benchmark::State& state) {
  // What a build-once engine must do instead: one full Build() per delta.
  const CQ q = UniversityQ1();
  Database db = BuildStudentScalingDb(static_cast<int>(state.range(0)), 3);
  const DeltaTarget target = TargetOf(db);
  FactId current = db.endogenous_facts().back();
  for (auto _ : state) {
    db.RemoveFact(current);
    benchmark::DoNotOptimize(ShapleyEngine::Build(q, db).value());
    current = db.AddFact(target.relation, target.tuple, target.endogenous);
    benchmark::DoNotOptimize(ShapleyEngine::Build(q, db).value());
  }
  state.SetLabel("endo=" + std::to_string(db.endogenous_count()));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_RebuildPerDelta)->Arg(4)->Arg(8)->Arg(16)->Arg(20)->Arg(32);

void BM_IncrementalDeltaThenAllValues(benchmark::State& state) {
  // The full service round-trip: patch a delta pair, then refresh the whole
  // ranked table (every orbit re-evaluated over the patched tree).
  const CQ q = UniversityQ1();
  Database db = BuildStudentScalingDb(static_cast<int>(state.range(0)), 3);
  const DeltaTarget target = TargetOf(db);
  ShapleyEngine engine = std::move(ShapleyEngine::Build(q, db)).value();
  FactId current = db.endogenous_facts().back();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.DeleteFact(db, current));
    current = engine
                  .InsertFact(db, target.relation, target.tuple,
                              target.endogenous)
                  .value();
    benchmark::DoNotOptimize(engine.AllValues());
  }
  state.SetLabel("endo=" + std::to_string(db.endogenous_count()));
}
BENCHMARK(BM_IncrementalDeltaThenAllValues)->Arg(8)->Arg(20);

}  // namespace

BENCHMARK_MAIN();
