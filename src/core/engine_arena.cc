#include "core/engine_arena.h"

#include <algorithm>
#include <iterator>
#include <limits>
#include <utility>

#include "util/cancel.h"
#include "util/check.h"
#include "util/combinatorics.h"
#include "util/thread_pool.h"

namespace shapcq {

namespace {

// Exact mirror of CountVector::Convolve on raw cell ranges: skip-zero outer
// and inner loops, partial products accumulated in place (no per-pair
// temporary BigInt). Any summation order yields the same exact integers; the
// loop shape is kept identical for performance parity.
std::vector<BigInt> ConvolveCells(const BigInt* a, size_t a_len,
                                  const BigInt* b, size_t b_len) {
  std::vector<BigInt> out(a_len + b_len - 1, BigInt(0));
  for (size_t i = 0; i < a_len; ++i) {
    if (a[i].IsZero()) continue;
    for (size_t j = 0; j < b_len; ++j) {
      if (b[j].IsZero()) continue;
      out[i + j].AddProductOf(a[i], b[j]);
    }
  }
  return out;
}

// Mirror of CountVector::ComplementAgainstAll: row[k] = C(n, k) - a[k] over
// the universe n = a_len - 1.
std::vector<BigInt> ComplementCells(const BigInt* a, size_t a_len) {
  std::vector<BigInt> row = Combinatorics::BinomialRow(a_len - 1);
  for (size_t k = 0; k < a_len; ++k) row[k] -= a[k];
  return row;
}

std::vector<BigInt> IdentityCells() {
  return std::vector<BigInt>(1, BigInt(1));
}

}  // namespace

EngineArena::EngineArena() = default;

// ---------------------------------------------------------------------------
// Cell store
// ---------------------------------------------------------------------------

int EngineArena::NewSlot(size_t len) {
  SHAPCQ_CHECK(cells_.size() + len <=
               std::numeric_limits<uint32_t>::max());
  Slot slot;
  slot.offset = static_cast<uint32_t>(cells_.size());
  slot.len = static_cast<uint32_t>(len);
  slot.cap = slot.len;
  cells_.resize(cells_.size() + len);  // value-initialized BigInt() == 0
  slots_.push_back(slot);
  return static_cast<int>(slots_.size()) - 1;
}

int EngineArena::NewSlotFrom(std::vector<BigInt> cells) {
  SHAPCQ_CHECK(cells_.size() + cells.size() <=
               std::numeric_limits<uint32_t>::max());
  // Bulk move-append (no value-init-then-overwrite pass): compilation calls
  // this once per node, so it is on the Build critical path.
  Slot slot;
  slot.offset = static_cast<uint32_t>(cells_.size());
  slot.len = slot.cap = static_cast<uint32_t>(cells.size());
  cells_.insert(cells_.end(), std::make_move_iterator(cells.begin()),
                std::make_move_iterator(cells.end()));
  slots_.push_back(slot);
  return static_cast<int>(slots_.size()) - 1;
}

void EngineArena::StoreSlotAt(int32_t& slot_ref, std::vector<BigInt> cells) {
  SHAPCQ_CHECK(!cells.empty());
  if (slot_ref < 0) {
    slot_ref = NewSlotFrom(std::move(cells));
    return;
  }
  Slot& slot = slots_[slot_ref];
  if (cells.size() > slot.cap) {
    // Out of place: the old range is stranded until CompactCells.
    slack_cells_ += slot.cap;
    slot.offset = static_cast<uint32_t>(cells_.size());
    slot.len = slot.cap = static_cast<uint32_t>(cells.size());
    cells_.insert(cells_.end(), std::make_move_iterator(cells.begin()),
                  std::make_move_iterator(cells.end()));
    return;
  }
  slot.len = static_cast<uint32_t>(cells.size());
  BigInt* dst = cells_.data() + slot.offset;
  for (size_t i = 0; i < cells.size(); ++i) dst[i] = std::move(cells[i]);
}

void EngineArena::EnsureSlotLen(int32_t& slot_ref, size_t len) {
  if (slot_ref < 0) {
    slot_ref = NewSlot(len);
    return;
  }
  Slot& slot = slots_[slot_ref];
  if (len > slot.cap) {
    slack_cells_ += slot.cap;
    slot.offset = static_cast<uint32_t>(cells_.size());
    slot.len = slot.cap = static_cast<uint32_t>(len);
    cells_.resize(cells_.size() + len);
    return;
  }
  slot.len = static_cast<uint32_t>(len);
}

void EngineArena::ConvolveSlotWithInto(int32_t& dst_ref, int32_t a_slot,
                                       const BigInt* b, size_t b_len) {
  SHAPCQ_CHECK(a_slot >= 0 && b_len > 0);
  const size_t a_len = slots_[a_slot].len;
  EnsureSlotLen(dst_ref, a_len + b_len - 1);  // may grow the cell buffer
  SHAPCQ_CHECK(dst_ref != a_slot);
  const Slot& a = slots_[a_slot];
  const Slot& d = slots_[dst_ref];
  const BigInt* av = cells_.data() + a.offset;
  BigInt* dst = cells_.data() + d.offset;
  for (size_t k = 0; k < d.len; ++k) dst[k] = BigInt();
  for (size_t i = 0; i < a_len; ++i) {
    if (av[i].IsZero()) continue;
    for (size_t j = 0; j < b_len; ++j) {
      if (b[j].IsZero()) continue;
      dst[i + j].AddProductOf(av[i], b[j]);
    }
  }
}

void EngineArena::ConvolveWithSlotInto(int32_t& dst_ref, const BigInt* a,
                                       size_t a_len, int32_t b_slot) {
  SHAPCQ_CHECK(b_slot >= 0 && a_len > 0);
  const size_t b_len = slots_[b_slot].len;
  EnsureSlotLen(dst_ref, a_len + b_len - 1);  // may grow the cell buffer
  SHAPCQ_CHECK(dst_ref != b_slot);
  const Slot& b = slots_[b_slot];
  const Slot& d = slots_[dst_ref];
  const BigInt* bv = cells_.data() + b.offset;
  BigInt* dst = cells_.data() + d.offset;
  for (size_t k = 0; k < d.len; ++k) dst[k] = BigInt();
  for (size_t i = 0; i < a_len; ++i) {
    if (a[i].IsZero()) continue;
    for (size_t j = 0; j < b_len; ++j) {
      if (bv[j].IsZero()) continue;
      dst[i + j].AddProductOf(a[i], bv[j]);
    }
  }
}

void EngineArena::FillSlotInPlace(int32_t slot_id,
                                  std::vector<BigInt> cells) {
  SHAPCQ_CHECK(slot_id >= 0);
  // The serial prepass pinned the exact length; the parallel fill must never
  // move the buffer (concurrent readers hold pointers into it).
  SHAPCQ_CHECK(cells.size() == slots_[slot_id].len);
  BigInt* dst = cells_.data() + slots_[slot_id].offset;
  for (size_t i = 0; i < cells.size(); ++i) dst[i] = std::move(cells[i]);
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

void EngineArena::Reserve(size_t node_count) {
  kind_.reserve(node_count);
  parent_.reserve(node_count);
  child_index_.reserve(node_count);
  child_first_.reserve(node_count);
  child_count_.reserve(node_count);
  children_.reserve(node_count);
  free_endo_.reserve(node_count);
  negated_.reserve(node_count);
  depth_.reserve(node_count);
  sat_slot_.reserve(node_count);
  core_slot_.reserve(node_count);
  prefix_slots_.reserve(node_count);
  suffix_slots_.reserve(node_count);
  prefix_valid_.reserve(node_count);
  suffix_valid_.reserve(node_count);
  r_slot_.reserve(node_count);
  rfree_slot_.reserve(node_count);
  r_epoch_.reserve(node_count);
  rfree_epoch_.reserve(node_count);
  slots_.reserve(3 * node_count);
}

void EngineArena::AppendNode(NodeKind kind, int parent, int child_index,
                             const std::vector<int>& children,
                             uint32_t free_endo, bool negated, CountVector sat,
                             CountVector core_sat) {
  kind_.push_back(static_cast<uint8_t>(kind));
  parent_.push_back(parent);
  child_index_.push_back(child_index);
  child_first_.push_back(children.empty()
                             ? -1
                             : static_cast<int32_t>(children_.size()));
  child_count_.push_back(static_cast<int32_t>(children.size()));
  children_.insert(children_.end(), children.begin(), children.end());
  free_endo_.push_back(free_endo);
  negated_.push_back(negated ? 1 : 0);
  depth_.push_back(0);
  sat_slot_.push_back(NewSlotFrom(std::move(sat).TakeCounts()));
  core_slot_.push_back(kind == NodeKind::kRootVar
                           ? NewSlotFrom(std::move(core_sat).TakeCounts())
                           : -1);
  prefix_slots_.emplace_back();
  suffix_slots_.emplace_back();
  prefix_valid_.push_back(0);
  suffix_valid_.push_back(0);
  r_slot_.push_back(-1);
  rfree_slot_.push_back(-1);
  r_epoch_.push_back(0);
  rfree_epoch_.push_back(0);
  topo_dirty_ = true;
}

void EngineArena::SealStructure(int root) {
  SHAPCQ_CHECK(root >= 0 && static_cast<size_t>(root) < kind_.size());
  root_ = root;
  RecomputeTopo();
}

void EngineArena::EnsureTopo() {
  if (topo_dirty_) RecomputeTopo();
}

void EngineArena::RecomputeTopo() {
  const size_t n = kind_.size();
  topo_.clear();
  topo_.reserve(n);
  depth_.assign(n, 0);
  // BFS from the root over the flat child lists: parents precede children,
  // and depth_ falls out for free (the warm sweep's level grouping).
  topo_.push_back(root_);
  for (size_t head = 0; head < topo_.size(); ++head) {
    const int32_t node = topo_[head];
    const int32_t first = child_first_[node];
    for (int32_t t = 0; t < child_count_[node]; ++t) {
      const int32_t child = children_[first + t];
      depth_[child] = depth_[node] + 1;
      topo_.push_back(child);
    }
  }
  SHAPCQ_CHECK_MSG(topo_.size() == n,
                   "arena tree does not cover every node from the root");
  topo_dirty_ = false;
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

CountVector EngineArena::SatOf(int node) const {
  const Slot& slot = slots_[sat_slot_[node]];
  return CountVector::FromCounts(std::vector<BigInt>(
      cells_.begin() + slot.offset, cells_.begin() + slot.offset + slot.len));
}

// ---------------------------------------------------------------------------
// Combine vectors and sibling partial products
// ---------------------------------------------------------------------------

std::vector<BigInt> EngineArena::CombineOf(int parent, size_t j) const {
  const int32_t child =
      children_[child_first_[parent] + static_cast<int32_t>(j)];
  const Slot& slot = slots_[sat_slot_[child]];
  const BigInt* cells = cells_.data() + slot.offset;
  if (static_cast<NodeKind>(kind_[parent]) == NodeKind::kRootVar) {
    return ComplementCells(cells, slot.len);
  }
  return std::vector<BigInt>(cells, cells + slot.len);
}

void EngineArena::EnsurePartialsAllocated(int parent) {
  const size_t m = static_cast<size_t>(child_count_[parent]);
  std::vector<int32_t>& prefix = prefix_slots_[parent];
  std::vector<int32_t>& suffix = suffix_slots_[parent];
  if (prefix.size() == m + 1) {
    SHAPCQ_CHECK(suffix.size() == m + 1);
    return;
  }
  SHAPCQ_CHECK(prefix.empty() && suffix.empty());
  prefix.assign(m + 1, -1);
  suffix.assign(m + 1, -1);
  StoreSlotAt(prefix[0], IdentityCells());
  StoreSlotAt(suffix[m], IdentityCells());
  prefix_valid_[parent] = 0;
  suffix_valid_[parent] = static_cast<uint32_t>(m);
}

void EngineArena::PrefixUpTo(int parent, size_t j) {
  std::vector<int32_t>& prefix = prefix_slots_[parent];
  for (size_t i = prefix_valid_[parent]; i < j; ++i) {
    const std::vector<BigInt> combine = CombineOf(parent, i);
    ConvolveSlotWithInto(prefix[i + 1], prefix[i], combine.data(),
                         combine.size());
  }
  prefix_valid_[parent] =
      std::max(prefix_valid_[parent], static_cast<uint32_t>(j));
}

void EngineArena::SuffixFrom(int parent, size_t i) {
  std::vector<int32_t>& suffix = suffix_slots_[parent];
  const size_t m = static_cast<size_t>(child_count_[parent]);
  if (suffix_valid_[parent] == m && suffix[m] < 0) {
    // A splice reset the suffix side; re-seed the identity at the new end.
    StoreSlotAt(suffix[m], IdentityCells());
  }
  for (size_t k = suffix_valid_[parent]; k > i; --k) {
    const std::vector<BigInt> combine = CombineOf(parent, k - 1);
    ConvolveWithSlotInto(suffix[k - 1], combine.data(), combine.size(),
                         suffix[k]);
  }
  suffix_valid_[parent] =
      std::min(suffix_valid_[parent], static_cast<uint32_t>(i));
}

std::vector<BigInt> EngineArena::SiblingCombine(int parent, size_t j) {
  EnsurePartialsAllocated(parent);
  PrefixUpTo(parent, j);
  SuffixFrom(parent, j + 1);
  // Pointers only after both builders ran: they may grow the cell buffer.
  const Slot& pre = slots_[prefix_slots_[parent][j]];
  const Slot& suf = slots_[suffix_slots_[parent][j + 1]];
  return ConvolveCells(cells_.data() + pre.offset, pre.len,
                       cells_.data() + suf.offset, suf.len);
}

// ---------------------------------------------------------------------------
// Mutation patches
// ---------------------------------------------------------------------------

void EngineArena::SetLeafSat(int leaf, const CountVector& sat) {
  SHAPCQ_CHECK(static_cast<NodeKind>(kind_[leaf]) == NodeKind::kGround);
  std::vector<BigInt> cells;
  cells.reserve(sat.universe_size() + 1);
  for (size_t k = 0; k <= sat.universe_size(); ++k) cells.push_back(sat.at(k));
  StoreSlotAt(sat_slot_[leaf], std::move(cells));
}

void EngineArena::SetFreeEndo(int node, uint32_t free_endo) {
  SHAPCQ_CHECK(static_cast<NodeKind>(kind_[node]) == NodeKind::kRootVar);
  free_endo_[node] = free_endo;
  const std::vector<BigInt> all = Combinatorics::BinomialRow(free_endo);
  const Slot& core = slots_[core_slot_[node]];
  StoreSlotAt(sat_slot_[node],
              ConvolveCells(cells_.data() + core.offset, core.len, all.data(),
                            all.size()));
}

void EngineArena::SpliceNewChild(int parent, int child) {
  SHAPCQ_CHECK(static_cast<NodeKind>(kind_[parent]) == NodeKind::kRootVar);
  SHAPCQ_CHECK(parent_[child] == parent);
  const size_t m = static_cast<size_t>(child_count_[parent]);
  SHAPCQ_CHECK(static_cast<size_t>(child_index_[child]) == m);

  // Append to the parent's child list by relocating it to the end of the
  // flat array (the old range is a few stranded ints, reclaimed never —
  // splices are rare and the ints are tiny next to the cells).
  const int32_t new_first = static_cast<int32_t>(children_.size());
  const int32_t old_first = child_first_[parent];
  for (size_t t = 0; t < m; ++t) {
    children_.push_back(children_[old_first + static_cast<int32_t>(t)]);
  }
  children_.push_back(child);
  child_first_[parent] = new_first;
  child_count_[parent] = static_cast<int32_t>(m + 1);
  topo_dirty_ = true;

  // Numeric splice, operation-for-operation the tree's: fold the new child's
  // unsat factor into the parent's core product via complement round-trips.
  const Slot& core = slots_[core_slot_[parent]];
  const std::vector<BigInt> core_cpl =
      ComplementCells(cells_.data() + core.offset, core.len);
  const Slot& child_sat = slots_[sat_slot_[child]];
  const std::vector<BigInt> child_cpl =
      ComplementCells(cells_.data() + child_sat.offset, child_sat.len);
  const std::vector<BigInt> unsat_all =
      ConvolveCells(core_cpl.data(), core_cpl.size(), child_cpl.data(),
                    child_cpl.size());
  std::vector<BigInt> new_core =
      ComplementCells(unsat_all.data(), unsat_all.size());
  const std::vector<BigInt> all =
      Combinatorics::BinomialRow(free_endo_[parent]);
  std::vector<BigInt> new_sat =
      ConvolveCells(new_core.data(), new_core.size(), all.data(), all.size());
  StoreSlotAt(core_slot_[parent], std::move(new_core));
  StoreSlotAt(sat_slot_[parent], std::move(new_sat));

  // Partial products: grown prefixes keep their valid entries (they exclude
  // the appended child); every suffix entry misses it, so the suffix side
  // resets to the (new) identity end.
  if (!prefix_slots_[parent].empty()) {
    prefix_slots_[parent].resize(m + 2, -1);
    suffix_slots_[parent].resize(m + 2, -1);
    prefix_valid_[parent] =
        std::min(prefix_valid_[parent], static_cast<uint32_t>(m + 1));
    suffix_valid_[parent] = static_cast<uint32_t>(m + 1);
    suffix_slots_[parent][m + 1] = -1;  // re-seeded by the next SuffixFrom
  }
}

void EngineArena::PatchChildChanged(int parent, size_t j) {
  const std::vector<BigInt> sibling = SiblingCombine(parent, j);
  const int32_t child =
      children_[child_first_[parent] + static_cast<int32_t>(j)];
  const Slot& child_sat = slots_[sat_slot_[child]];
  const BigInt* child_cells = cells_.data() + child_sat.offset;
  if (static_cast<NodeKind>(kind_[parent]) == NodeKind::kComponent) {
    StoreSlotAt(sat_slot_[parent],
                ConvolveCells(sibling.data(), sibling.size(), child_cells,
                              child_sat.len));
  } else {
    const std::vector<BigInt> child_cpl =
        ComplementCells(child_cells, child_sat.len);
    const std::vector<BigInt> unsat_all =
        ConvolveCells(sibling.data(), sibling.size(), child_cpl.data(),
                      child_cpl.size());
    std::vector<BigInt> new_core =
        ComplementCells(unsat_all.data(), unsat_all.size());
    const std::vector<BigInt> all =
        Combinatorics::BinomialRow(free_endo_[parent]);
    std::vector<BigInt> new_sat = ConvolveCells(
        new_core.data(), new_core.size(), all.data(), all.size());
    StoreSlotAt(core_slot_[parent], std::move(new_core));
    StoreSlotAt(sat_slot_[parent], std::move(new_sat));
  }
  // The tree's MarkChildDirty: shrink the watermarks to exclude entries
  // embedding child j's replaced combine vector.
  if (!prefix_slots_[parent].empty()) {
    prefix_valid_[parent] =
        std::min(prefix_valid_[parent], static_cast<uint32_t>(j));
    suffix_valid_[parent] =
        std::max(suffix_valid_[parent], static_cast<uint32_t>(j + 1));
  }
}

void EngineArena::InvalidateValues() {
  ++epoch_;
  orbit_ids_valid_ = false;
  orbit_ids_.clear();
}

// ---------------------------------------------------------------------------
// Evaluation: the difference-propagation sweep
// ---------------------------------------------------------------------------

void EngineArena::EnsureRFree(int node, size_t global_free_endo) {
  if (rfree_epoch_[node] == epoch_) return;
  EnsureR(node, global_free_endo);
  const bool has_factor =
      static_cast<NodeKind>(kind_[node]) == NodeKind::kRootVar &&
      free_endo_[node] > 0;
  if (!has_factor) {
    rfree_slot_[node] = r_slot_[node];  // alias: the factor is the identity
  } else {
    const std::vector<BigInt> all =
        Combinatorics::BinomialRow(free_endo_[node]);
    // A stale alias from an earlier epoch must not clobber r's cells.
    if (rfree_slot_[node] == r_slot_[node]) rfree_slot_[node] = -1;
    ConvolveSlotWithInto(rfree_slot_[node], r_slot_[node], all.data(),
                         all.size());
  }
  rfree_epoch_[node] = epoch_;
}

void EngineArena::EnsureR(int node, size_t global_free_endo) {
  if (r_epoch_[node] == epoch_) return;
  if (node == root_) {
    StoreSlotAt(r_slot_[node], Combinatorics::BinomialRow(global_free_endo));
  } else {
    const int parent = parent_[node];
    EnsureRFree(parent, global_free_endo);
    const std::vector<BigInt> ctx =
        SiblingCombine(parent, static_cast<size_t>(child_index_[node]));
    ConvolveSlotWithInto(r_slot_[node], rfree_slot_[parent], ctx.data(),
                         ctx.size());
  }
  r_epoch_[node] = epoch_;
}

Rational EngineArena::ValueAtLeaf(int leaf, size_t endo_count,
                                  size_t global_free_endo) {
  SHAPCQ_CHECK(static_cast<NodeKind>(kind_[leaf]) == NodeKind::kGround);
  SHAPCQ_CHECK(endo_count >= 1);
  EnsureR(leaf, global_free_endo);
  const Slot& slot = slots_[r_slot_[leaf]];
  // r spans the universe of the other endo_count - 1 players, exactly like
  // the two propagated vectors ShapleyFromSatCounts subtracts.
  SHAPCQ_CHECK(slot.len == endo_count);
  const BigInt* r = cells_.data() + slot.offset;
  const size_t n = endo_count;
  BigInt numerator(0);
  for (size_t k = 0; k + 1 <= n; ++k) {
    if (r[k].IsZero()) continue;
    numerator +=
        Combinatorics::Factorial(k) * Combinatorics::Factorial(n - 1 - k) *
        r[k];
  }
  if (negated_[leaf] != 0) numerator = -numerator;
  return Rational(std::move(numerator), Combinatorics::Factorial(n));
}

bool EngineArena::WarmValuePaths(const std::vector<int>& leaves,
                                 size_t global_free_endo, size_t num_threads,
                                 const CancelToken* cancel) {
  if (root_ < 0 || leaves.empty()) return true;
  if (cancel != nullptr && cancel->Expired()) return false;
  const size_t threads = ThreadPool::ResolveThreadCount(num_threads);
  if (threads <= 1) {
    for (int leaf : leaves) {
      if (cancel != nullptr && cancel->Expired()) return false;
      EnsureR(leaf, global_free_endo);
    }
    return true;
  }
  EnsureTopo();
  const size_t n = kind_.size();

  // Mark every node whose r is cold along the leaves' root paths. A warm
  // node's ancestors are warm by construction, so climbing stops early.
  std::vector<uint8_t> need_r(n, 0);
  for (int leaf : leaves) {
    for (int node = leaf;; node = parent_[node]) {
      if (r_epoch_[node] == epoch_ || need_r[node] != 0) break;
      need_r[node] = 1;
      if (node == root_) break;
    }
  }

  // Per-parent needs: which child contexts the sweep reads (as a prefix-max
  // and suffix-min index), and whether rfree must be derived. Parents with a
  // warm r can still owe partials (a previous round warmed other children).
  constexpr int32_t kNoIndex = -1;
  std::vector<int32_t> need_prefix_to(n, kNoIndex);
  std::vector<int32_t> need_suffix_from(n, kNoIndex);
  std::vector<uint8_t> need_rfree(n, 0);
  std::vector<uint8_t> in_worklist(n, 0);
  bool any = false;
  for (size_t node = 0; node < n; ++node) {
    if (need_r[node] == 0) continue;
    any = true;
    in_worklist[node] = 1;
    if (static_cast<int32_t>(node) == root_) continue;
    const int32_t p = parent_[node];
    const int32_t j = child_index_[node];
    in_worklist[p] = 1;
    need_prefix_to[p] = std::max(need_prefix_to[p], j);
    need_suffix_from[p] = need_suffix_from[p] == kNoIndex
                              ? j + 1
                              : std::min(need_suffix_from[p], j + 1);
    if (rfree_epoch_[p] != epoch_) need_rfree[p] = 1;
  }
  if (!any) return true;

  // Serial prepass, in (depth, id) order: compute every result's exact
  // length (universes add under convolution, so lengths are static functions
  // of the child sat lengths) and pin a slot for it. After this pass the
  // cell buffer never grows again, so the parallel fill below publishes
  // ranges no reallocation can move.
  std::vector<int32_t> worklist;
  for (int32_t node : topo_) {
    if (in_worklist[node] != 0) worklist.push_back(node);
  }
  size_t max_universe = global_free_endo;
  for (int32_t node : worklist) {
    const size_t m = static_cast<size_t>(child_count_[node]);
    if (need_prefix_to[node] != kNoIndex) {
      EnsurePartialsAllocated(node);
      std::vector<size_t> combine_len(m);
      for (size_t t = 0; t < m; ++t) {
        combine_len[t] = SlotLen(sat_slot_[children_[child_first_[node] +
                                                     static_cast<int32_t>(t)]]);
        max_universe = std::max(max_universe, combine_len[t] - 1);
      }
      std::vector<int32_t>& prefix = prefix_slots_[node];
      std::vector<int32_t>& suffix = suffix_slots_[node];
      size_t prefix_len = 1;
      for (size_t i = 0; i < m; ++i) {
        if (i + 1 > static_cast<size_t>(prefix_valid_[node]) &&
            i + 1 <= static_cast<size_t>(need_prefix_to[node])) {
          EnsureSlotLen(prefix[i + 1], prefix_len + combine_len[i] - 1);
        }
        prefix_len += combine_len[i] - 1;
      }
      if (suffix_valid_[node] == m && suffix[m] < 0) {
        EnsureSlotLen(suffix[m], 1);
        cells_[slots_[suffix[m]].offset] = BigInt(1);
      }
      size_t suffix_len = 1;
      for (size_t i = m; i-- > 0;) {
        suffix_len += combine_len[i] - 1;
        if (i < static_cast<size_t>(suffix_valid_[node]) &&
            i >= static_cast<size_t>(need_suffix_from[node])) {
          EnsureSlotLen(suffix[i], suffix_len);
        }
      }
    }
    // r and rfree lengths flow top-down: parents precede children in the
    // worklist, so the parent's rfree slot length is pinned by the time any
    // child computes its own (aliased to r when the factor is the identity).
    if (need_r[node] != 0) {
      size_t r_len;
      if (node == root_) {
        r_len = global_free_endo + 1;
      } else {
        const int32_t p = parent_[node];
        const size_t rfree_len = SlotLen(rfree_slot_[p]);
        // ctx universe = the parent's minus this child's: sum the sibling
        // sat lengths.
        size_t ctx_len = 1;
        const size_t siblings = static_cast<size_t>(child_count_[p]);
        for (size_t t = 0; t < siblings; ++t) {
          if (static_cast<int32_t>(t) == child_index_[node]) continue;
          ctx_len += SlotLen(sat_slot_[children_[child_first_[p] +
                                                 static_cast<int32_t>(t)]]) -
                     1;
        }
        r_len = rfree_len + ctx_len - 1;
      }
      EnsureSlotLen(r_slot_[node], r_len);
      max_universe = std::max(max_universe, r_len - 1);
    }
    if (need_rfree[node] != 0) {
      const bool has_factor =
          static_cast<NodeKind>(kind_[node]) == NodeKind::kRootVar &&
          free_endo_[node] > 0;
      if (!has_factor) {
        rfree_slot_[node] = r_slot_[node];
      } else {
        if (rfree_slot_[node] == r_slot_[node]) rfree_slot_[node] = -1;
        const size_t rfree_len = SlotLen(r_slot_[node]) + free_endo_[node];
        EnsureSlotLen(rfree_slot_[node], rfree_len);
        max_universe = std::max(max_universe, rfree_len);
      }
    }
  }
  Combinatorics::Prewarm(max_universe);

  // Level-parallel fill. Every task writes only slots its node owns (r,
  // rfree, its own partial entries, its own watermarks) and reads only its
  // parent's slots — finished one level earlier, with the ParallelFor join
  // as the happens-before edge. Values are bit-identical to the serial
  // sweep: identical exact-integer formulas into pre-assigned slots.
  std::vector<std::vector<int32_t>> levels;
  for (int32_t node : worklist) {
    const size_t d = static_cast<size_t>(depth_[node]);
    if (levels.size() <= d) levels.resize(d + 1);
    levels[d].push_back(node);
  }
  // Cancellation polls sit BETWEEN levels: inside a level every slot write
  // is all-or-nothing per task, and the epoch watermarks of a level that
  // never ran simply stay cold — a cancelled sweep leaves the arena in a
  // state the serial on-demand path recomputes from correctly.
  ThreadPool pool(threads);
  for (const std::vector<int32_t>& level : levels) {
    if (cancel != nullptr && cancel->Expired()) return false;
    pool.ParallelFor(level.size(), [&](size_t index) {
      const int32_t node = level[index];
      if (need_r[node] != 0) {
        std::vector<BigInt> r;
        if (node == root_) {
          r = Combinatorics::BinomialRow(global_free_endo);
        } else {
          const int32_t p = parent_[node];
          const size_t j = static_cast<size_t>(child_index_[node]);
          const Slot& pre = slots_[prefix_slots_[p][j]];
          const Slot& suf = slots_[suffix_slots_[p][j + 1]];
          const std::vector<BigInt> ctx =
              ConvolveCells(cells_.data() + pre.offset, pre.len,
                            cells_.data() + suf.offset, suf.len);
          const Slot& rfree = slots_[rfree_slot_[p]];
          r = ConvolveCells(cells_.data() + rfree.offset, rfree.len,
                            ctx.data(), ctx.size());
        }
        FillSlotInPlace(r_slot_[node], std::move(r));
        r_epoch_[node] = epoch_;
      }
      if (need_prefix_to[node] != kNoIndex) {
        const std::vector<int32_t>& prefix = prefix_slots_[node];
        const std::vector<int32_t>& suffix = suffix_slots_[node];
        for (size_t i = prefix_valid_[node];
             i < static_cast<size_t>(need_prefix_to[node]); ++i) {
          const std::vector<BigInt> combine = CombineOf(node, i);
          const Slot& prev = slots_[prefix[i]];
          FillSlotInPlace(prefix[i + 1],
                          ConvolveCells(cells_.data() + prev.offset, prev.len,
                                        combine.data(), combine.size()));
        }
        prefix_valid_[node] =
            std::max(prefix_valid_[node],
                     static_cast<uint32_t>(need_prefix_to[node]));
        for (size_t k = suffix_valid_[node];
             k > static_cast<size_t>(need_suffix_from[node]); --k) {
          const std::vector<BigInt> combine = CombineOf(node, k - 1);
          const Slot& next = slots_[suffix[k]];
          FillSlotInPlace(suffix[k - 1],
                          ConvolveCells(combine.data(), combine.size(),
                                        cells_.data() + next.offset,
                                        next.len));
        }
        suffix_valid_[node] =
            std::min(suffix_valid_[node],
                     static_cast<uint32_t>(need_suffix_from[node]));
      }
      if (need_rfree[node] != 0 && rfree_slot_[node] != r_slot_[node]) {
        const std::vector<BigInt> all =
            Combinatorics::BinomialRow(free_endo_[node]);
        const Slot& r = slots_[r_slot_[node]];
        FillSlotInPlace(rfree_slot_[node],
                        ConvolveCells(cells_.data() + r.offset, r.len,
                                      all.data(), all.size()));
      }
      if (need_rfree[node] != 0) rfree_epoch_[node] = epoch_;
    });
  }
  return true;
}

// ---------------------------------------------------------------------------
// Orbit-id cache
// ---------------------------------------------------------------------------

void EngineArena::CacheOrbitIds(std::vector<size_t> ids) {
  orbit_ids_ = std::move(ids);
  orbit_ids_valid_ = true;
}

// ---------------------------------------------------------------------------
// Accounting, compaction, invariants
// ---------------------------------------------------------------------------

size_t EngineArena::ApproxMemoryBytes() const {
  size_t bytes = sizeof(EngineArena);
  bytes += cells_.capacity() * sizeof(BigInt);
  // Inline magnitudes (|Dn| <= 192 bits) cost exactly their slot, already
  // counted above; only heap-spilled cells add their limb buffers (the term
  // below is zero for inline cells).
  for (const BigInt& cell : cells_) {
    bytes += cell.ApproxMemoryBytes() - sizeof(BigInt);
  }
  bytes += slots_.capacity() * sizeof(Slot);
  bytes += kind_.capacity() * sizeof(uint8_t);
  bytes += negated_.capacity() * sizeof(uint8_t);
  bytes += (parent_.capacity() + child_index_.capacity() +
            child_first_.capacity() + child_count_.capacity() +
            children_.capacity() + topo_.capacity() + depth_.capacity() +
            sat_slot_.capacity() + core_slot_.capacity() +
            r_slot_.capacity() + rfree_slot_.capacity()) *
           sizeof(int32_t);
  bytes += (free_endo_.capacity() + prefix_valid_.capacity() +
            suffix_valid_.capacity() + r_epoch_.capacity() +
            rfree_epoch_.capacity()) *
           sizeof(uint32_t);
  for (const std::vector<int32_t>& ids : prefix_slots_) {
    bytes += sizeof(ids) + ids.capacity() * sizeof(int32_t);
  }
  for (const std::vector<int32_t>& ids : suffix_slots_) {
    bytes += sizeof(ids) + ids.capacity() * sizeof(int32_t);
  }
  bytes += orbit_ids_.capacity() * sizeof(size_t);
  return bytes;
}

void EngineArena::CompactCells() {
  // Live slots in first-reference order: node-major, vector-kind-minor. An
  // rfree alias of r is visited once.
  std::vector<int32_t> live;
  std::vector<uint8_t> seen(slots_.size(), 0);
  auto visit = [&](int32_t slot) {
    if (slot < 0 || seen[slot] != 0) return;
    seen[slot] = 1;
    live.push_back(slot);
  };
  for (size_t node = 0; node < kind_.size(); ++node) {
    visit(sat_slot_[node]);
    visit(core_slot_[node]);
    for (int32_t slot : prefix_slots_[node]) visit(slot);
    for (int32_t slot : suffix_slots_[node]) visit(slot);
    visit(r_slot_[node]);
    visit(rfree_slot_[node]);
  }
  size_t total = 0;
  for (int32_t slot : live) total += slots_[slot].len;
  std::vector<BigInt> packed(total);
  size_t at = 0;
  for (int32_t slot : live) {
    Slot& s = slots_[slot];
    for (uint32_t i = 0; i < s.len; ++i) {
      packed[at + i] = std::move(cells_[s.offset + i]);
    }
    s.offset = static_cast<uint32_t>(at);
    s.cap = s.len;
    at += s.len;
  }
  // Slot ids abandoned by re-ranged partial lists keep their structs but
  // point at an empty range.
  for (size_t slot = 0; slot < slots_.size(); ++slot) {
    if (seen[slot] == 0) slots_[slot] = Slot{};
  }
  cells_ = std::move(packed);
  slack_cells_ = 0;
}

void EngineArena::CheckInvariants() const {
  const size_t n = kind_.size();
  SHAPCQ_CHECK(parent_.size() == n && child_index_.size() == n &&
               child_first_.size() == n && child_count_.size() == n &&
               free_endo_.size() == n && negated_.size() == n &&
               depth_.size() == n && sat_slot_.size() == n &&
               core_slot_.size() == n && prefix_slots_.size() == n &&
               suffix_slots_.size() == n && prefix_valid_.size() == n &&
               suffix_valid_.size() == n && r_slot_.size() == n &&
               rfree_slot_.size() == n && r_epoch_.size() == n &&
               rfree_epoch_.size() == n);
  if (n == 0) return;
  SHAPCQ_CHECK(root_ >= 0 && static_cast<size_t>(root_) < n);
  SHAPCQ_CHECK(parent_[root_] == -1);
  for (size_t node = 0; node < n; ++node) {
    const int32_t m = child_count_[node];
    SHAPCQ_CHECK(m >= 0);
    SHAPCQ_CHECK(m == 0 || child_first_[node] >= 0);
    if (m > 0) {
      SHAPCQ_CHECK(static_cast<size_t>(child_first_[node]) + m <=
                   children_.size());
    }
    for (int32_t t = 0; t < m; ++t) {
      const int32_t child = children_[child_first_[node] + t];
      SHAPCQ_CHECK(child >= 0 && static_cast<size_t>(child) < n);
      SHAPCQ_CHECK(parent_[child] == static_cast<int32_t>(node));
      SHAPCQ_CHECK(child_index_[child] == t);
    }
    SHAPCQ_CHECK(sat_slot_[node] >= 0);
    SHAPCQ_CHECK(
        (core_slot_[node] >= 0) ==
        (static_cast<NodeKind>(kind_[node]) == NodeKind::kRootVar));
    SHAPCQ_CHECK(static_cast<NodeKind>(kind_[node]) != NodeKind::kGround ||
                 m == 0);
    SHAPCQ_CHECK(prefix_slots_[node].empty() ||
                 prefix_slots_[node].size() == static_cast<size_t>(m) + 1);
    SHAPCQ_CHECK(prefix_slots_[node].size() == suffix_slots_[node].size());
    SHAPCQ_CHECK(prefix_valid_[node] <= static_cast<uint32_t>(m));
    SHAPCQ_CHECK(suffix_valid_[node] <= static_cast<uint32_t>(m));
  }
  for (const Slot& slot : slots_) {
    SHAPCQ_CHECK(slot.len <= slot.cap);
    SHAPCQ_CHECK(static_cast<size_t>(slot.offset) + slot.cap <=
                 cells_.size());
  }
  if (!topo_dirty_) {
    // Topological order: covers every node exactly once, root first,
    // parents strictly before children.
    SHAPCQ_CHECK(topo_.size() == n);
    std::vector<int32_t> position(n, -1);
    for (size_t i = 0; i < topo_.size(); ++i) {
      const int32_t node = topo_[i];
      SHAPCQ_CHECK(node >= 0 && static_cast<size_t>(node) < n);
      SHAPCQ_CHECK(position[node] == -1);
      position[node] = static_cast<int32_t>(i);
    }
    SHAPCQ_CHECK(topo_[0] == root_);
    for (size_t node = 0; node < n; ++node) {
      if (parent_[node] >= 0) {
        SHAPCQ_CHECK(position[parent_[node]] < position[node]);
        SHAPCQ_CHECK(depth_[node] == depth_[parent_[node]] + 1);
      }
    }
  }
}

}  // namespace shapcq
