// A small DPLL SAT solver (unit propagation + branching): the "best general
// algorithm" baseline run against the hardness reductions, and the oracle
// used to cross-check the relevance encoders.

#ifndef SHAPCQ_REDUCTIONS_DPLL_H_
#define SHAPCQ_REDUCTIONS_DPLL_H_

#include <vector>

#include "reductions/cnf.h"

namespace shapcq {

/// Decides satisfiability; if satisfiable and `model` is non-null, fills it
/// with a satisfying assignment.
bool DpllSatisfiable(const CnfFormula& formula,
                     std::vector<bool>* model = nullptr);

}  // namespace shapcq

#endif  // SHAPCQ_REDUCTIONS_DPLL_H_
