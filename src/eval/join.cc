#include "eval/join.h"

#include <cmath>

#include "eval/homomorphism.h"
#include "util/check.h"

namespace shapcq {

std::vector<Tuple> MaterializeAnswers(const CQ& q, const Database& db) {
  return EnumerateAnswers(q, db, db.FullWorld());
}

std::vector<Tuple> CartesianPower(const std::vector<Value>& domain,
                                  size_t arity, size_t limit) {
  if (arity == 0) return {Tuple{}};
  double estimated = std::pow(static_cast<double>(domain.size()),
                              static_cast<double>(arity));
  SHAPCQ_CHECK_MSG(estimated <= static_cast<double>(limit),
                   "Cartesian power too large");
  std::vector<Tuple> result;
  result.reserve(static_cast<size_t>(estimated));
  Tuple current(arity, domain.empty() ? Value{-1} : domain[0]);
  std::vector<size_t> odometer(arity, 0);
  if (domain.empty()) return {};
  for (;;) {
    for (size_t i = 0; i < arity; ++i) current[i] = domain[odometer[i]];
    result.push_back(current);
    size_t pos = arity;
    while (pos > 0) {
      --pos;
      if (++odometer[pos] < domain.size()) break;
      odometer[pos] = 0;
      if (pos == 0) return result;
    }
  }
}

}  // namespace shapcq
