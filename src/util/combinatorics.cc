#include "util/combinatorics.h"

#include <mutex>

#include "util/check.h"

namespace shapcq {

Combinatorics::Caches& Combinatorics::GetCaches() {
  // Leaked singleton: immune to destruction-order issues at exit.
  static Caches* caches = new Caches();
  return *caches;
}

void Combinatorics::GrowFactorialsLocked(Caches& caches, size_t n) {
  std::vector<BigInt>& cache = caches.factorials;
  while (cache.size() <= n) {
    // Copy then scale in place: *= with a single-limb multiplier runs one
    // carry scan over the copy's limbs, no product temporary.
    BigInt next = cache.back();
    next *= BigInt(static_cast<int64_t>(cache.size()));
    cache.push_back(std::move(next));
  }
}

void Combinatorics::GrowRowsLocked(Caches& caches, size_t n) {
  std::vector<std::vector<BigInt>>& cache = caches.rows;
  while (cache.size() <= n) {
    // Pascal's rule from the previous row: additions only, no division.
    const std::vector<BigInt>& prev = cache.back();
    std::vector<BigInt> row;
    row.reserve(prev.size() + 1);
    row.push_back(BigInt(1));
    for (size_t k = 1; k < prev.size(); ++k) {
      row.push_back(prev[k - 1] + prev[k]);
    }
    row.push_back(BigInt(1));
    cache.push_back(std::move(row));
  }
}

BigInt Combinatorics::Factorial(size_t n) {
  Caches& caches = GetCaches();
  {
    std::shared_lock<std::shared_mutex> lock(caches.mutex);
    if (n < caches.factorials.size()) return caches.factorials[n];
  }
  std::unique_lock<std::shared_mutex> lock(caches.mutex);
  GrowFactorialsLocked(caches, n);
  return caches.factorials[n];
}

BigInt Combinatorics::Binomial(size_t n, size_t k) {
  if (k > n) return BigInt(0);
  {
    // Serve from the row cache when the row is already materialized (don't
    // build an O(n^2) cache for a point query, though).
    Caches& caches = GetCaches();
    std::shared_lock<std::shared_mutex> lock(caches.mutex);
    if (n < caches.rows.size()) return caches.rows[n][k];
  }
  // Use the smaller symmetric index and a running product; exact because the
  // intermediate product i steps in is divisible by i!.
  if (k > n - k) k = n - k;
  BigInt result(1);
  for (size_t i = 1; i <= k; ++i) {
    result *= BigInt(static_cast<int64_t>(n - k + i));
    result /= BigInt(static_cast<int64_t>(i));
  }
  return result;
}

std::vector<BigInt> Combinatorics::BinomialRow(size_t n) {
  Caches& caches = GetCaches();
  {
    std::shared_lock<std::shared_mutex> lock(caches.mutex);
    if (n < caches.rows.size()) return caches.rows[n];
  }
  std::unique_lock<std::shared_mutex> lock(caches.mutex);
  GrowRowsLocked(caches, n);
  return caches.rows[n];
}

void Combinatorics::Prewarm(size_t n) {
  Caches& caches = GetCaches();
  std::unique_lock<std::shared_mutex> lock(caches.mutex);
  GrowFactorialsLocked(caches, n);
  GrowRowsLocked(caches, n);
}

}  // namespace shapcq
