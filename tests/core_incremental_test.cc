// Incremental maintenance of ShapleyEngine: fact inserts/deletes patched
// into the memoized tree must be bit-identical to a fresh Build() on the
// mutated database — directed leaf/new-slice/free-fact cases, database
// tombstoning semantics, delta batching, parallel queries after mutations,
// and a randomized insert/delete fuzz sweep against the rebuild oracle and
// the per-fact ShapleyViaCountSat reference.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/count_sat.h"
#include "core/shapley.h"
#include "core/shapley_engine.h"
#include "datasets/query_gen.h"
#include "datasets/synthetic.h"
#include "datasets/university.h"
#include "eval/homomorphism.h"
#include "query/parser.h"
#include "util/random.h"

namespace shapcq {
namespace {

ParallelOptions Threads(size_t n) {
  ParallelOptions options;
  options.num_threads = n;
  return options;
}

// The mutated-state contract: the live engine must agree bit-identically
// (same Rationals, canonical renderings included) with a fresh Build() on
// the database it maintained, its baseline must equal CountSat, and the
// values must sum to the efficiency delta.
void ExpectMatchesRebuild(const CQ& q, const Database& db,
                          ShapleyEngine& engine, const std::string& label) {
  auto rebuilt = ShapleyEngine::Build(q, db);
  ASSERT_TRUE(rebuilt.ok()) << label << ": " << rebuilt.error();
  ShapleyEngine oracle = std::move(rebuilt).value();
  const std::vector<Rational> expected = oracle.AllValues();
  const std::vector<Rational> actual = engine.AllValues();
  ASSERT_EQ(actual.size(), expected.size()) << label;
  ASSERT_EQ(actual.size(), db.endogenous_count()) << label;
  Rational sum(0);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << label << ", endo index " << i;
    EXPECT_EQ(actual[i].ToString(), expected[i].ToString())
        << label << ", endo index " << i;
    sum += actual[i];
  }
  EXPECT_EQ(engine.BaselineSat(), CountSat(q, db).value()) << label;
  const int delta = (EvalBoolean(q, db, db.FullWorld()) ? 1 : 0) -
                    (EvalBoolean(q, db, db.EmptyWorld()) ? 1 : 0);
  EXPECT_EQ(sum, Rational(delta)) << label << ": efficiency axiom";
}

// ---------------------------------------------------------------------------
// Database-level tombstoning semantics.
// ---------------------------------------------------------------------------

TEST(DatabaseRemoveFactTest, StableIdsAndEndoCompaction) {
  Database db;
  const FactId a = db.AddEndo("R", {V("a")});
  const FactId b = db.AddEndo("R", {V("b")});
  const FactId c = db.AddExo("S", {V("c")});
  const FactId d = db.AddEndo("R", {V("d")});
  ASSERT_EQ(db.fact_count(), 4u);
  ASSERT_EQ(db.endo_index(d), 2u);

  db.RemoveFact(b);
  EXPECT_TRUE(db.is_removed(b));
  EXPECT_EQ(db.fact_count(), 3u);
  EXPECT_EQ(db.fact_slot_count(), 4u);
  // Remaining ids are untouched; endo indices compact in order.
  EXPECT_EQ(db.endo_index(a), 0u);
  EXPECT_EQ(db.endo_index(d), 1u);
  EXPECT_EQ(db.endogenous_count(), 2u);
  EXPECT_FALSE(db.is_endogenous(b));
  EXPECT_EQ(db.FindFact("R", {V("b")}), kNoFact);
  EXPECT_EQ(db.facts_of("R"), (std::vector<FactId>{a, d}));
  EXPECT_EQ(db.ToString(), "R(a)* S(c) R(d)*");
  EXPECT_EQ(db.relation_of(c), db.relation_of(c));  // exo slot untouched

  // Re-adding the removed tuple mints a fresh id.
  const FactId b2 = db.AddEndo("R", {V("b")});
  EXPECT_NE(b2, b);
  EXPECT_EQ(db.endo_index(b2), 2u);
  EXPECT_EQ(db.fact_count(), 4u);
}

TEST(DatabaseRemoveFactTest, CopiesAndDomainSkipTombstones) {
  Database db;
  db.AddExo("R", {V("a"), V("b")});
  const FactId gone = db.AddEndo("R", {V("x"), V("y")});
  const FactId kept = db.AddEndo("R", {V("c"), V("d")});
  db.RemoveFact(gone);

  const Database copy = db.CopyWithoutFact(kept);
  EXPECT_EQ(copy.fact_count(), 1u);
  EXPECT_EQ(copy.ToString(), "R(a,b)");

  const Database exo_copy = db.CopyWithFactExogenous(kept);
  EXPECT_EQ(exo_copy.fact_count(), 2u);
  EXPECT_EQ(exo_copy.endogenous_count(), 0u);

  // The active domain forgets values only the tombstone carried.
  bool saw_x = false;
  for (const Value& value : db.ActiveDomain()) {
    if (value == V("x")) saw_x = true;
  }
  EXPECT_FALSE(saw_x);
}

// ---------------------------------------------------------------------------
// Directed engine mutations on the running example.
// ---------------------------------------------------------------------------

TEST(ShapleyEngineIncrementalTest, InsertIntoExistingSliceAndRoundTrip) {
  UniversityDb u = BuildUniversityDb();
  const CQ q = UniversityQ1();
  auto built = ShapleyEngine::Build(q, u.db);
  ASSERT_TRUE(built.ok()) << built.error();
  ShapleyEngine engine = std::move(built).value();
  const std::vector<Rational> before = engine.AllValues();

  // Ben registers for AI: an existing student slice gains a new course leaf.
  auto inserted = engine.InsertFact(u.db, "Reg", {V("Ben"), V("AI")}, true);
  ASSERT_TRUE(inserted.ok()) << inserted.error();
  ExpectMatchesRebuild(q, u.db, engine, "after Reg(Ben,AI) insert");

  // Deleting it must restore the original values exactly.
  auto deleted = engine.DeleteFact(u.db, inserted.value());
  ASSERT_TRUE(deleted.ok()) << deleted.error();
  ExpectMatchesRebuild(q, u.db, engine, "after Reg(Ben,AI) delete");
  EXPECT_EQ(engine.AllValues(), before);
}

TEST(ShapleyEngineIncrementalTest, InsertOpensNewRootSlice) {
  UniversityDb u = BuildUniversityDb();
  const CQ q = UniversityQ1();
  auto built = ShapleyEngine::Build(q, u.db);
  ASSERT_TRUE(built.ok()) << built.error();
  ShapleyEngine engine = std::move(built).value();
  const size_t nodes_before = engine.stats().node_count;

  // A brand-new student: unseen root value -> a fresh subtree is spliced in.
  ASSERT_TRUE(engine.InsertFact(u.db, "Stud", {V("Eve")}, false).ok());
  ExpectMatchesRebuild(q, u.db, engine, "after Stud(Eve) insert");
  EXPECT_GT(engine.stats().node_count, nodes_before);

  ASSERT_TRUE(engine.InsertFact(u.db, "Reg", {V("Eve"), V("OS")}, true).ok());
  ExpectMatchesRebuild(q, u.db, engine, "after Reg(Eve,OS) insert");
}

TEST(ShapleyEngineIncrementalTest, NegatedLeafAndExogenousMutations) {
  UniversityDb u = BuildUniversityDb();
  const CQ q = UniversityQ1();
  auto built = ShapleyEngine::Build(q, u.db);
  ASSERT_TRUE(built.ok()) << built.error();
  ShapleyEngine engine = std::move(built).value();

  // Caroline becomes a TA: flips a negated leaf from absent to endogenous.
  auto ta = engine.InsertFact(u.db, "TA", {V("Caroline")}, true);
  ASSERT_TRUE(ta.ok()) << ta.error();
  ExpectMatchesRebuild(q, u.db, engine, "after TA(Caroline) insert");

  // Deleting an exogenous fact in a positive leaf (Adam's Stud fact).
  const FactId stud_adam = u.db.FindFact("Stud", {V("Adam")});
  ASSERT_NE(stud_adam, kNoFact);
  ASSERT_TRUE(engine.DeleteFact(u.db, stud_adam).ok());
  ExpectMatchesRebuild(q, u.db, engine, "after Stud(Adam) delete");

  ASSERT_TRUE(engine.DeleteFact(u.db, ta.value()).ok());
  ExpectMatchesRebuild(q, u.db, engine, "after TA(Caroline) delete");
}

TEST(ShapleyEngineIncrementalTest, UnmatchedFactsAreNullPlayers) {
  UniversityDb u = BuildUniversityDb();
  const CQ q = UniversityQ1();
  auto built = ShapleyEngine::Build(q, u.db);
  ASSERT_TRUE(built.ok()) << built.error();
  ShapleyEngine engine = std::move(built).value();
  const size_t nulls_before = engine.stats().null_player_count;

  // An endogenous fact in a relation the query never mentions: a null
  // player, but it still dilutes every other value (the player count grew).
  auto aud = engine.InsertFact(u.db, "Audit", {V("Adam")}, true);
  ASSERT_TRUE(aud.ok()) << aud.error();
  ExpectMatchesRebuild(q, u.db, engine, "after Audit(Adam) insert");
  EXPECT_EQ(engine.Value(aud.value()), Rational(0));
  EXPECT_EQ(engine.stats().null_player_count, nulls_before + 1);

  // An exogenous unmatched fact changes nothing at all.
  auto exo = engine.InsertFact(u.db, "Audit", {V("Ben")}, false);
  ASSERT_TRUE(exo.ok()) << exo.error();
  ExpectMatchesRebuild(q, u.db, engine, "after Audit(Ben) exo insert");

  ASSERT_TRUE(engine.DeleteFact(u.db, aud.value()).ok());
  ASSERT_TRUE(engine.DeleteFact(u.db, exo.value()).ok());
  ExpectMatchesRebuild(q, u.db, engine, "after Audit deletes");
  EXPECT_EQ(engine.stats().null_player_count, nulls_before);
}

TEST(ShapleyEngineIncrementalTest, MutationErrorsLeaveStateIntact) {
  UniversityDb u = BuildUniversityDb();
  const CQ q = UniversityQ1();
  auto built = ShapleyEngine::Build(q, u.db);
  ASSERT_TRUE(built.ok()) << built.error();
  ShapleyEngine engine = std::move(built).value();
  const std::vector<Rational> before = engine.AllValues();

  // Duplicate tuple and arity mismatch are rejected without touching state.
  EXPECT_FALSE(engine.InsertFact(u.db, "TA", {V("Adam")}, true).ok());
  EXPECT_FALSE(engine.InsertFact(u.db, "TA", {V("Adam"), V("x")}, true).ok());
  // Double delete is rejected.
  auto deleted = engine.DeleteFact(u.db, u.ft3);
  ASSERT_TRUE(deleted.ok());
  EXPECT_FALSE(engine.DeleteFact(u.db, u.ft3).ok());
  EXPECT_FALSE(engine.DeleteFact(u.db, static_cast<FactId>(99999)).ok());
  ASSERT_TRUE(
      engine.InsertFact(u.db, "TA", {V("David")}, true).ok());  // restore
  ExpectMatchesRebuild(q, u.db, engine, "after error battery");
}

TEST(ShapleyEngineIncrementalTest, InsertDeclaringNewRelationChecksArity) {
  // "Blocked" is mentioned by the query but has no facts at Build time, so
  // the schema has never seen it: the engine must still reject a tuple whose
  // arity disagrees with the query atom (pattern matching would index past
  // the tuple's end), and accept the right arity.
  Database db;
  db.AddEndo("R", {V("a"), V("b")});
  const CQ q = MustParseCQ("q() :- R(x,y), not Blocked(x,y)");
  auto built = ShapleyEngine::Build(q, db);
  ASSERT_TRUE(built.ok()) << built.error();
  ShapleyEngine engine = std::move(built).value();

  EXPECT_FALSE(engine.InsertFact(db, "Blocked", {V("a")}, false).ok());
  ASSERT_TRUE(engine.InsertFact(db, "Blocked", {V("a"), V("b")}, false).ok());
  ExpectMatchesRebuild(q, db, engine, "after Blocked(a,b) insert");
}

TEST(ShapleyEngineIncrementalTest, ApplyDeltaBatch) {
  UniversityDb u = BuildUniversityDb();
  const CQ q = UniversityQ1();
  auto built = ShapleyEngine::Build(q, u.db);
  ASSERT_TRUE(built.ok()) << built.error();
  ShapleyEngine engine = std::move(built).value();

  std::vector<FactDelta> batch;
  batch.push_back(FactDelta::Delete(u.fr1));
  batch.push_back(FactDelta::Insert("Reg", {V("David"), V("DB")}, true));
  batch.push_back(FactDelta::Insert("Stud", {V("Frank")}, false));
  batch.push_back(FactDelta::Insert("Reg", {V("Frank"), V("AI")}, true));
  batch.push_back(FactDelta::Delete(u.ft2));
  auto applied = engine.ApplyDelta(u.db, batch);
  ASSERT_TRUE(applied.ok()) << applied.error();
  ASSERT_EQ(applied.value().size(), batch.size());
  EXPECT_EQ(applied.value()[0], u.fr1);
  ExpectMatchesRebuild(q, u.db, engine, "after 5-delta batch");

  // A failing delta reports its index; earlier deltas stay applied.
  std::vector<FactDelta> bad;
  bad.push_back(FactDelta::Insert("TA", {V("Frank")}, true));
  bad.push_back(FactDelta::Delete(u.ft2));  // already deleted above
  auto failed = engine.ApplyDelta(u.db, bad);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.error().find("delta 1"), std::string::npos);
  ExpectMatchesRebuild(q, u.db, engine, "after failing batch");
}

TEST(ShapleyEngineIncrementalTest, ParallelQueriesAfterMutations) {
  // The threading contract survives mutations: mutate serially, then query
  // in parallel — bit-identical to a fresh serial build at any thread count.
  UniversityDb u = BuildUniversityDb();
  const CQ q = UniversityQ1();
  auto built = ShapleyEngine::Build(q, u.db);
  ASSERT_TRUE(built.ok()) << built.error();
  ShapleyEngine engine = std::move(built).value();
  engine.AllValues(Threads(4));  // warm contexts + once-flags pre-mutation

  ASSERT_TRUE(engine.InsertFact(u.db, "Reg", {V("David"), V("IC")}, true).ok());
  ASSERT_TRUE(engine.DeleteFact(u.db, u.fr2).ok());

  auto rebuilt = ShapleyEngine::Build(q, u.db);
  ASSERT_TRUE(rebuilt.ok());
  const std::vector<Rational> expected = std::move(rebuilt).value().AllValues();
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    auto fresh = ShapleyEngine::Build(q, u.db);
    ASSERT_TRUE(fresh.ok());
    // Also mutate a fresh engine and query it in parallel directly.
    const std::vector<Rational> values = engine.AllValues(Threads(threads));
    ASSERT_EQ(values.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(values[i].ToString(), expected[i].ToString())
          << threads << " threads, endo index " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Randomized insert/delete fuzz sweep: generated hierarchical queries,
// random databases, random delta sequences. After every delta the live
// engine must match the rebuild oracle bit-identically, satisfy the
// efficiency axiom (inside ExpectMatchesRebuild), and agree with the
// per-fact ShapleyViaCountSat reference on a sampled fact. 20 instances x
// 15 delta attempts ≈ 280+ verified deltas.
// ---------------------------------------------------------------------------

class IncrementalFuzzSweep : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalFuzzSweep, MatchesRebuildAfterEveryDelta) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 86243 + 11);
  QueryGenOptions query_options;
  query_options.max_depth = 3;
  query_options.max_branch = 2;
  const CQ q = RandomHierarchicalCq(query_options, &rng);
  SyntheticOptions db_options;
  db_options.domain_size = 3;
  db_options.facts_per_relation = 4;
  Database db = RandomDatabaseForQuery(q, {}, db_options, &rng);

  auto built = ShapleyEngine::Build(q, db);
  ASSERT_TRUE(built.ok()) << built.error() << " for " << q.ToString();
  ShapleyEngine engine = std::move(built).value();

  std::vector<FactId> live;
  for (size_t i = 0; i < db.fact_slot_count(); ++i) {
    live.push_back(static_cast<FactId>(i));
  }
  // The insert pool: the query's own relations (joinable tuples over a
  // slightly larger domain than the seed database) plus one alien relation
  // the query never mentions (null players).
  std::vector<std::pair<std::string, size_t>> insertable;
  for (const Atom& atom : q.atoms()) {
    insertable.emplace_back(atom.relation, atom.arity());
  }
  insertable.emplace_back("Alien", 1);

  // Duplicate-tuple draws skip their step, so the sweep stays comfortably
  // above 200 applied deltas across the 20 instances.
  const int kDeltas = 15;
  for (int step = 0; step < kDeltas; ++step) {
    const bool do_delete = !live.empty() && rng.Bernoulli(0.45);
    if (do_delete) {
      const size_t pick = static_cast<size_t>(rng.UniformInt(live.size()));
      const FactId victim = live[pick];
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
      auto deleted = engine.DeleteFact(db, victim);
      ASSERT_TRUE(deleted.ok())
          << deleted.error() << " for " << q.ToString();
    } else {
      const auto& [relation, arity] =
          insertable[rng.UniformInt(insertable.size())];
      Tuple tuple;
      for (size_t t = 0; t < arity; ++t) {
        tuple.push_back(
            V("c" + std::to_string(rng.UniformInt(4))));
      }
      if (db.FindFact(relation, tuple) != kNoFact) continue;  // duplicate
      const bool endogenous = rng.Bernoulli(0.7);
      auto inserted = engine.InsertFact(db, relation, tuple, endogenous);
      ASSERT_TRUE(inserted.ok())
          << inserted.error() << " for " << q.ToString();
      live.push_back(inserted.value());
    }

    ExpectMatchesRebuild(q, db, engine,
                         q.ToString() + " after delta " +
                             std::to_string(step));
    if (db.endogenous_count() > 0) {
      // Spot-check one fact against the independent per-fact oracle.
      const FactId f = db.endogenous_facts()[rng.UniformInt(
          db.endogenous_count())];
      auto reference = ShapleyViaCountSat(q, db, f);
      ASSERT_TRUE(reference.ok()) << reference.error();
      EXPECT_EQ(engine.Value(f), reference.value())
          << "per-fact oracle mismatch on " << db.FactToString(f) << " for "
          << q.ToString() << " in " << db.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(GeneratedQueries, IncrementalFuzzSweep,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace shapcq
