// Tuple-independent probabilistic databases (Section 4.3 / Theorem 4.10):
// lifted inference for hierarchical CQ¬s and the ExoProb extension for
// deterministic relations, cross-checked against world enumeration.
//
//   $ ./example_probabilistic_queries

#include <cstdio>

#include "shapcq.h"
#include "datasets/citations.h"

int main() {
  using namespace shapcq;

  // A sensor network: readings are uncertain, the floor plan is certain.
  ProbDatabase pdb;
  pdb.AddDeterministic("Room", {V("lab")});
  pdb.AddDeterministic("Room", {V("office")});
  pdb.AddFact("Motion", {V("lab"), V("t1")}, 0.8);
  pdb.AddFact("Motion", {V("lab"), V("t2")}, 0.5);
  pdb.AddFact("Motion", {V("office"), V("t1")}, 0.3);
  pdb.AddFact("Badge", {V("lab"), V("t1")}, 0.9);
  pdb.AddFact("Badge", {V("office"), V("t1")}, 0.6);

  // "Some room had motion without a badge swipe" — a hierarchical CQ¬
  // (room is a root variable).
  CQ q = MustParseCQ("q() :- Room(r), Motion(r,t), not Badge(r,t)");
  std::printf("query: %s\n", q.ToString().c_str());
  std::printf("classification (Theorem 4.10): %s\n\n",
              ClassifyProbabilisticEvaluation(q, {"Room"}).value()
                  .reason.c_str());

  const double lifted = LiftedProbability(q, pdb).value();
  const double exact = pdb.ProbabilityBruteForce(q);
  const double sampled = pdb.ProbabilityMonteCarlo(q, 200000, 7);
  std::printf("lifted inference:   P = %.6f\n", lifted);
  std::printf("world enumeration:  P = %.6f\n", exact);
  std::printf("Monte Carlo (200k): P = %.6f\n\n", sampled);

  // A non-hierarchical query rescued by deterministic relations: the
  // citations query with deterministic Pub / Citations (Theorem 4.10).
  ProbDatabase bib;
  bib.AddFact("Author", {V("Ada"), V("Technion")}, 0.7);
  bib.AddFact("Author", {V("Grace"), V("MIT")}, 0.4);
  bib.AddDeterministic("Pub", {V("Ada"), V("p1")});
  bib.AddDeterministic("Pub", {V("Grace"), V("p2")});
  bib.AddDeterministic("Citations", {V("p1"), V("12")});
  bib.AddDeterministic("Citations", {V("p2"), V("3")});
  const CQ cq = CitationsQuery();
  std::printf("query: %s\n", cq.ToString().c_str());
  std::printf("  hierarchical? %s -> plain lifted inference refuses:\n",
              IsHierarchical(cq) ? "yes" : "no");
  std::printf("  \"%s\"\n", LiftedProbability(cq, bib).error().c_str());
  const double exo_prob =
      ExoProbProbability(cq, bib, CitationsExoRelations()).value();
  std::printf("  ExoProb (deterministic Pub, Citations): P = %.6f\n",
              exo_prob);
  std::printf("  world enumeration:                      P = %.6f\n",
              bib.ProbabilityBruteForce(cq));
  // P(Author(Ada) ∨ Author(Grace)) = 1 − 0.3·0.6 = 0.82.
  return 0;
}
