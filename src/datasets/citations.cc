#include "datasets/citations.h"

#include "query/parser.h"

namespace shapcq {

CQ CitationsQuery() {
  return MustParseCQ("q() :- Author(x,y), Pub(x,z), Citations(z,w)");
}

ExoRelations CitationsExoRelations() { return {"Pub", "Citations"}; }

ExoRelations CitationsOnlyExo() { return {"Citations"}; }

Database BuildSmallCitationsDb() {
  Database db;
  const Value ada = V("Ada"), grace = V("Grace");
  const Value tech = V("Technion"), mit = V("MIT");
  const Value p1 = V("paper1"), p2 = V("paper2"), p3 = V("paper3");
  const Value c10 = V("10"), c25 = V("25");

  db.AddEndo("Author", {ada, tech});
  db.AddEndo("Author", {grace, mit});
  db.AddExo("Pub", {ada, p1});
  db.AddExo("Pub", {ada, p2});
  db.AddExo("Pub", {grace, p3});
  db.AddExo("Citations", {p1, c10});
  db.AddExo("Citations", {p3, c25});
  return db;
}

Database BuildRandomCitationsDb(int researchers, int papers,
                                double pub_probability,
                                double cite_probability, Rng* rng) {
  Database db;
  auto person = [](int i) { return V("person" + std::to_string(i)); };
  auto paper = [](int i) { return V("paper" + std::to_string(i)); };
  const Value inst = V("inst");

  for (int r = 0; r < researchers; ++r) db.AddEndo("Author", {person(r), inst});
  for (int r = 0; r < researchers; ++r) {
    for (int p = 0; p < papers; ++p) {
      if (rng->Bernoulli(pub_probability)) {
        db.AddExo("Pub", {person(r), paper(p)});
      }
    }
  }
  for (int p = 0; p < papers; ++p) {
    if (rng->Bernoulli(cite_probability)) {
      db.AddExo("Citations",
                {paper(p), V(static_cast<int64_t>(rng->UniformInt(500)))});
    }
  }
  return db;
}

}  // namespace shapcq
