// ExoShap (Algorithm 1): polynomial-time Shapley computation for self-join-
// free CQ¬s without a non-hierarchical path, given a set X of all-exogenous
// relations (Theorem 4.3, tractable side).
//
// The three database/query transformations, each preserving every Shapley
// value of the (unchanged) endogenous facts:
//
//  1. Complement: each negated exogenous atom α is replaced by a positive
//     atom over the complement relation R̄ = Dom(D)^arity \ R (Lemma C.3).
//  2. Join: each connected component of the exogenous-atom graph gx(q)
//     (atoms linked by shared exogenous variables) is replaced by one atom
//     over the materialized join of its relations (Lemma 4.6).
//  3. Pad: exogenous variables are projected away and each exogenous atom is
//     widened to the exact variable set of a covering non-exogenous atom,
//     its relation becoming projection × Dom^(#missing vars) (Lemma 4.8).
//
// The result is a hierarchical query, handed to CntSat.

#ifndef SHAPCQ_CORE_EXOSHAP_H_
#define SHAPCQ_CORE_EXOSHAP_H_

#include <string>

#include "core/shapley_engine.h"
#include "db/database.h"
#include "query/analysis.h"
#include "query/cq.h"
#include "util/rational.h"
#include "util/result.h"

namespace shapcq {

/// A query/database pair mid- or post-transformation. Endogenous facts keep
/// their (relation, tuple) identity across all steps.
struct TransformedInstance {
  CQ query;
  Database db;
  ExoRelations exo;  // exogenous relations of the transformed query
};

/// Step 1: replace negated exogenous atoms by positive complement atoms.
TransformedInstance ComplementNegatedExoAtoms(const CQ& q, const Database& db,
                                              const ExoRelations& exo);

/// Step 2: join each gx(q)-component into a single exogenous atom. Negated
/// exogenous atoms must have been eliminated first (step 1).
TransformedInstance JoinExogenousComponents(const CQ& q, const Database& db,
                                            const ExoRelations& exo);

/// Step 3: drop exogenous variables and pad each exogenous atom to the
/// variable set of a covering non-exogenous atom. Requires steps 1-2; fails
/// (returns error) if no covering atom exists — which, by Lemma 4.4, means
/// the query has a non-hierarchical path.
Result<TransformedInstance> PadExogenousAtoms(const CQ& q, const Database& db,
                                              const ExoRelations& exo);

/// Full pipeline; the returned query is hierarchical.
Result<TransformedInstance> ExoShapTransform(const CQ& q, const Database& db,
                                             const ExoRelations& exo);

/// Shapley(D,q,f) via the full ExoShap pipeline + CntSat. Requires q safe
/// and self-join-free, with no non-hierarchical path w.r.t. `exo`; f must be
/// endogenous and must not belong to a relation in `exo`.
Result<Rational> ExoShapShapley(const CQ& q, const Database& db,
                                const ExoRelations& exo, FactId f);

/// Shapley values of EVERY endogenous fact (endo-index order of `db`).
/// Runs the ExoShap transformation once and serves all facts from one
/// ShapleyEngine over the transformed instance — the per-fact ExoShapShapley
/// re-materializes complements/joins/pads for each fact, an O(|Dn|) blow-up
/// this entry point avoids. Preconditions as for ExoShapShapley. With
/// options.num_threads > 1 the engine over the transformed instance runs its
/// parallel all-facts path (bit-identical output at any thread count).
Result<std::vector<Rational>> ExoShapShapleyAll(
    const CQ& q, const Database& db, const ExoRelations& exo,
    const ParallelOptions& options = {});

}  // namespace shapcq

#endif  // SHAPCQ_CORE_EXOSHAP_H_
