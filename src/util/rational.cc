#include "util/rational.h"

#include <cmath>
#include <ostream>
#include <utility>

#include "util/check.h"

namespace shapcq {

Rational::Rational(BigInt numerator, BigInt denominator)
    : numerator_(std::move(numerator)), denominator_(std::move(denominator)) {
  SHAPCQ_CHECK_MSG(!denominator_.IsZero(), "rational with zero denominator");
  Reduce();
}

Rational Rational::Of(int64_t numerator, int64_t denominator) {
  return Rational(BigInt(numerator), BigInt(denominator));
}

bool Rational::TryParse(const std::string& text, Rational* out) {
  size_t slash = text.find('/');
  BigInt numerator, denominator(1);
  if (slash == std::string::npos) {
    if (!BigInt::TryParse(text, &numerator)) return false;
  } else {
    if (!BigInt::TryParse(text.substr(0, slash), &numerator)) return false;
    if (!BigInt::TryParse(text.substr(slash + 1), &denominator)) return false;
    if (denominator.IsZero()) return false;
  }
  *out = Rational(std::move(numerator), std::move(denominator));
  return true;
}

void Rational::Reduce() {
  if (denominator_.IsNegative()) {
    numerator_ = -numerator_;
    denominator_ = -denominator_;
  }
  if (numerator_.IsZero()) {
    denominator_ = BigInt(1);
    return;
  }
  if (denominator_.IsOne()) return;
  // Binary gcd (BigInt::Gcd is Stein's algorithm) followed by two exact
  // divisions: the remainders are zero by construction, so Knuth-D runs its
  // quotient loop with no add-back churn. This is the normalization path
  // every Rational constructor funnels through — the hot edge of report
  // assembly.
  BigInt gcd = BigInt::Gcd(numerator_, denominator_);
  if (!gcd.IsOne()) {
    numerator_ = numerator_ / gcd;
    denominator_ = denominator_ / gcd;
  }
}

int Rational::Compare(const Rational& a, const Rational& b) {
  const int a_sign = a.sign();
  const int b_sign = b.sign();
  if (a_sign != b_sign) return a_sign < b_sign ? -1 : 1;
  if (a_sign == 0) return 0;
  // Same nonzero sign: denominators are positive, so the order of the cross
  // products is the order of the values.
  return BigInt::Compare(a.numerator_ * b.denominator_,
                         b.numerator_ * a.denominator_);
}

Rational Rational::operator-() const {
  Rational result = *this;
  result.numerator_ = -result.numerator_;
  return result;
}

Rational Rational::Abs() const {
  Rational result = *this;
  result.numerator_ = result.numerator_.Abs();
  return result;
}

Rational Rational::operator+(const Rational& other) const {
  return Rational(
      numerator_ * other.denominator_ + other.numerator_ * denominator_,
      denominator_ * other.denominator_);
}

Rational Rational::operator-(const Rational& other) const {
  return *this + (-other);
}

Rational Rational::operator*(const Rational& other) const {
  return Rational(numerator_ * other.numerator_,
                  denominator_ * other.denominator_);
}

Rational Rational::operator/(const Rational& other) const {
  SHAPCQ_CHECK_MSG(!other.IsZero(), "rational division by zero");
  return Rational(numerator_ * other.denominator_,
                  denominator_ * other.numerator_);
}

bool Rational::operator==(const Rational& other) const {
  // Both sides are reduced with positive denominators, so representation
  // equality is value equality.
  return numerator_ == other.numerator_ && denominator_ == other.denominator_;
}

bool Rational::operator<(const Rational& other) const {
  return Compare(*this, other) < 0;
}

std::string Rational::ToString() const {
  if (denominator_.IsOne()) return numerator_.ToString();
  return numerator_.ToString() + "/" + denominator_.ToString();
}

double Rational::ToDouble() const {
  if (numerator_.IsZero()) return 0.0;
  // Scale the numerator up by 2^64, divide exactly, then scale back in
  // floating point. This keeps ~64 bits of precision in the quotient even
  // when numerator and denominator are astronomically large.
  BigInt scaled = numerator_.ShiftLeft(64);
  BigInt quotient, remainder;
  BigInt::DivMod(scaled, denominator_, &quotient, &remainder);
  return quotient.ToDouble() * std::pow(2.0, -64.0);
}

std::ostream& operator<<(std::ostream& os, const Rational& value) {
  return os << value.ToString();
}

}  // namespace shapcq
