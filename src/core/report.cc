#include "core/report.h"

#include <algorithm>
#include <cstdio>

#include "core/brute_force.h"
#include "core/exoshap.h"
#include "core/shapley.h"

namespace shapcq {

namespace {

// Shared epilogue of both report builders: move the per-endo-index values
// into rows, accumulate the efficiency total, and rank descending.
void FillAndRankRows(AttributionReport* report, const Database& db,
                     std::vector<Rational> values, size_t top_k) {
  for (FactId f : db.endogenous_facts()) {
    Rational& value = values[db.endo_index(f)];
    report->total += value;
    report->rows.push_back(Attribution{f, std::move(value)});
  }
  // Descending by value via the division-free three-way compare: the sign
  // fast path settles most pairs (reports mix positive, zero and negative
  // attributions) without touching BigInt arithmetic, and ties never build
  // a normalized difference Rational.
  std::stable_sort(report->rows.begin(), report->rows.end(),
                   [](const Attribution& a, const Attribution& b) {
                     return Rational::Compare(b.value, a.value) < 0;
                   });
  if (top_k > 0 && report->rows.size() > top_k) {
    report->rows.resize(top_k);
  }
}

}  // namespace

Result<AttributionReport> BuildAttributionReport(
    const CQ& q, const Database& db, const ReportOptions& options) {
  AttributionReport report;
  const bool hierarchical = IsSafe(q) && IsSelfJoinFree(q) && IsHierarchical(q);
  const bool exoshap_applies =
      !hierarchical && IsSafe(q) && IsSelfJoinFree(q) && !options.exo.empty() &&
      !FindNonHierarchicalPath(q, options.exo).has_value();

  if (hierarchical) {
    report.engine = "CntSat";
  } else if (exoshap_applies) {
    report.engine = "ExoShap";
  } else if (options.allow_brute_force &&
             db.endogenous_count() <= options.brute_force_limit) {
    report.engine = "brute-force";
  } else {
    return Result<AttributionReport>::Error(
        "no polynomial engine applies to " + q.ToString() +
        " (FP^#P-hard per the dichotomies) and brute force is not allowed");
  }

  // All-facts attribution is served by the single-pass engines: one shared
  // CntSat recursion (and, for ExoShap, one transformation) for the whole
  // table instead of a from-scratch computation per fact.
  std::vector<Rational> values;
  ParallelOptions parallel;
  parallel.num_threads = options.num_threads;
  if (report.engine == "CntSat") {
    auto result = ShapleyAllViaCountSat(q, db, parallel);
    if (!result.ok()) return Result<AttributionReport>::Error(result.error());
    values = std::move(result).value();
  } else if (report.engine == "ExoShap") {
    auto result = ExoShapShapleyAll(q, db, options.exo, parallel);
    if (!result.ok()) return Result<AttributionReport>::Error(result.error());
    values = std::move(result).value();
  } else {
    values.reserve(db.endogenous_count());
    for (FactId f : db.endogenous_facts()) {
      values.push_back(ShapleyBruteForce(q, db, f));
    }
  }
  FillAndRankRows(&report, db, std::move(values), options.top_k);
  return Result<AttributionReport>::Ok(std::move(report));
}

AttributionReport BuildAttributionReportFromEngine(
    ShapleyEngine& engine, const Database& db, const ReportOptions& options) {
  AttributionReport report;
  report.engine = "CntSat (incremental)";
  ParallelOptions parallel;
  parallel.num_threads = options.num_threads;
  FillAndRankRows(&report, db, engine.AllValues(parallel), options.top_k);
  return report;
}

std::string RenderReport(const AttributionReport& report, const Database& db) {
  std::string out = "engine: " + report.engine + "\n";
  char line[160];
  std::snprintf(line, sizeof(line), "%-30s %14s %10s\n", "fact", "Shapley",
                "~decimal");
  out += line;
  for (const Attribution& row : report.rows) {
    std::snprintf(line, sizeof(line), "%-30s %14s %10.4f\n",
                  db.FactToString(row.fact).c_str(),
                  row.value.ToString().c_str(), row.value.ToDouble());
    out += line;
  }
  std::snprintf(line, sizeof(line), "%-30s %14s\n", "total",
                report.total.ToString().c_str());
  out += line;
  return out;
}

}  // namespace shapcq
