// Relevance screening (Section 5.2): before paying for an exact or
// approximate Shapley computation, decide whether a fact matters at all.
// For polarity-consistent queries this is polynomial (Algorithms 2/3 —
// Proposition 5.7) and equivalent to Shapley ≠ 0; in general it is
// NP-complete (Propositions 5.5/5.8), shown here on a SAT-encoded instance.
//
//   $ ./example_relevance_screening

#include <cstdio>

#include "shapcq.h"
#include "datasets/university.h"
#include "reductions/dpll.h"
#include "reductions/satred.h"

int main() {
  using namespace shapcq;

  // --- Polynomial case: the running example's q1. --------------------------
  UniversityDb u = BuildUniversityDb();
  const CQ q1 = UniversityQ1();
  std::printf("query: %s (polarity consistent: %s)\n\n", q1.ToString().c_str(),
              IsPolarityConsistent(q1) ? "yes" : "no");
  std::printf("%-22s %5s %5s %10s\n", "fact", "pos?", "neg?",
              "Shapley!=0");
  for (FactId f : u.db.endogenous_facts()) {
    const bool pos = IsPosRelevant(q1, u.db, f).value();
    const bool neg = IsNegRelevant(q1, u.db, f).value();
    std::printf("%-22s %5s %5s %10s\n", u.db.FactToString(f).c_str(),
                pos ? "yes" : "no", neg ? "yes" : "no",
                ShapleyIsNonzero(q1, u.db, f).value() ? "nonzero" : "zero");
  }
  std::printf("(TA(David) screens out: David never registered, so his TA "
              "status cannot matter)\n\n");

  // --- Example 5.3: relevance without Shapley impact. ----------------------
  Database duel;
  FactId r12 = duel.AddEndo("R", {V(1), V(2)});
  duel.AddEndo("R", {V(2), V(1)});
  const CQ qduel = MustParseCQ("q() :- R(x,y), not R(y,x)");
  std::printf("query: %s\n", qduel.ToString().c_str());
  std::printf("R(1,2) is positively relevant (E = {}) AND negatively "
              "relevant (E = {R(2,1)}),\n");
  std::printf("so the permutation counts cancel: Shapley = %s\n\n",
              ShapleyBruteForce(qduel, duel, r12).ToString().c_str());

  // --- NP-hard case: relevance as SAT (Proposition 5.5). -------------------
  RelevanceInstance hard = Figure4Instance();
  const CQ qhard = QrstNegR();
  std::printf("query: %s\n", qhard.ToString().c_str());
  std::printf("database: the paper's Figure 4 encoding of\n"
              "  (x1 | x2) & (~x1 | ~x3) & (x3 | x4 | ~x1 | ~x2)\n");
  std::printf("IsRelevant is NP-complete here (R occurs both positively and "
              "negatively).\n");
  std::printf("Brute force says T(c) relevant: %s — matching "
              "satisfiability.\n",
              IsRelevantBruteForce(qhard, hard.db, hard.f) ? "yes" : "no");

  // The same story for the UCQ q_SAT (Proposition 5.8).
  CnfFormula formula;
  formula.num_vars = 3;
  formula.clauses.push_back(Clause{{{0, true}, {1, true}, {2, false}}});
  formula.clauses.push_back(Clause{{{0, false}, {1, false}, {2, true}}});
  RelevanceInstance ucq_instance = EncodeQSat(formula);
  std::printf("\nUCQ q_SAT on %s:\n  DPLL: %s, relevance of R(0): %s\n",
              formula.ToString().c_str(),
              DpllSatisfiable(formula) ? "SAT" : "UNSAT",
              IsRelevantBruteForce(QSat(), ucq_instance.db, ucq_instance.f)
                  ? "relevant"
                  : "irrelevant");
  return 0;
}
