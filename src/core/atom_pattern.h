// Precompiled atom match patterns.
//
// Matching a fact against an atom must check (a) constant positions and
// (b) repeated-variable positions holding equal values. Deriving those
// checks from the term list per fact costs O(arity^2) per fact; an
// AtomPattern derives them once per atom so every fact is matched with one
// linear scan over the (usually tiny) check lists. Shared by CntSat and the
// all-facts ShapleyEngine, which match every database fact against every
// atom of the query.

#ifndef SHAPCQ_CORE_ATOM_PATTERN_H_
#define SHAPCQ_CORE_ATOM_PATTERN_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "db/value_dictionary.h"
#include "query/atom.h"

namespace shapcq {

/// The constant/equality constraints a tuple must satisfy to match an atom.
struct AtomPattern {
  /// (position, required constant) for each constant term.
  std::vector<std::pair<size_t, Value>> const_checks;
  /// (first position of a variable, later position of the same variable);
  /// the tuple must hold equal values at the two positions.
  std::vector<std::pair<size_t, size_t>> eq_checks;
};

/// Compiles the atom's term list into its constraint lists (O(arity^2),
/// paid once per atom instead of once per fact).
inline AtomPattern BuildAtomPattern(const Atom& atom) {
  AtomPattern pattern;
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    const Term& term = atom.terms[i];
    if (term.IsConst()) {
      pattern.const_checks.emplace_back(i, term.constant);
      continue;
    }
    // Record equalities against the first occurrence only.
    bool first = true;
    for (size_t j = 0; j < i; ++j) {
      if (atom.terms[j].IsVar() && atom.terms[j].var == term.var) {
        first = false;
        break;
      }
    }
    if (!first) continue;
    for (size_t j = i + 1; j < atom.terms.size(); ++j) {
      if (atom.terms[j].IsVar() && atom.terms[j].var == term.var) {
        pattern.eq_checks.emplace_back(i, j);
      }
    }
  }
  return pattern;
}

/// Does the tuple satisfy the pattern? Linear in the number of checks.
inline bool MatchesPattern(const AtomPattern& pattern, const Tuple& tuple) {
  for (const auto& [pos, constant] : pattern.const_checks) {
    if (!(tuple[pos] == constant)) return false;
  }
  for (const auto& [first, later] : pattern.eq_checks) {
    if (!(tuple[first] == tuple[later])) return false;
  }
  return true;
}

}  // namespace shapcq

#endif  // SHAPCQ_CORE_ATOM_PATTERN_H_
