#include "query/classify.h"

namespace shapcq {

namespace {

Result<Classification> ValidateScope(const CQ& q) {
  if (!IsSafe(q)) {
    return Result<Classification>::Error(
        "query has unsafe negation: " + q.ToString());
  }
  if (!IsSelfJoinFree(q)) {
    return Result<Classification>::Error(
        "query has self-joins, outside the dichotomy's scope: " +
        q.ToString());
  }
  return Result<Classification>::Ok(
      Classification{Complexity::kPolynomialTime, ""});
}

}  // namespace

Result<Classification> ClassifyExactShapley(const CQ& q) {
  auto scope = ValidateScope(q);
  if (!scope.ok()) return scope;
  auto triplet = FindNonHierarchicalTriplet(q);
  if (!triplet.has_value()) {
    return Result<Classification>::Ok(Classification{
        Complexity::kPolynomialTime, "hierarchical (Theorem 3.1)"});
  }
  const auto& t = *triplet;
  return Result<Classification>::Ok(Classification{
      Complexity::kSharpPHard,
      "non-hierarchical triplet (" + q.atom(t.alpha_x).relation + ", " +
          q.atom(t.alpha_xy).relation + ", " + q.atom(t.alpha_y).relation +
          ") on variables (" + q.var_name(t.x) + ", " + q.var_name(t.y) +
          ") (Theorem 3.1)"});
}

Result<Classification> ClassifyExactShapley(const CQ& q,
                                            const ExoRelations& exo) {
  auto scope = ValidateScope(q);
  if (!scope.ok()) return scope;
  auto path = FindNonHierarchicalPath(q, exo);
  if (!path.has_value()) {
    return Result<Classification>::Ok(Classification{
        Complexity::kPolynomialTime,
        "no non-hierarchical path (Theorem 4.3, ExoShap applies)"});
  }
  std::string path_text;
  for (size_t i = 0; i < path->path.size(); ++i) {
    if (i > 0) path_text += "-";
    path_text += q.var_name(path->path[i]);
  }
  return Result<Classification>::Ok(Classification{
      Complexity::kSharpPHard,
      "non-hierarchical path " + path_text + " induced by " +
          q.atom(path->alpha_x).relation + " and " +
          q.atom(path->alpha_y).relation + " (Theorem 4.3)"});
}

Result<Classification> ClassifyProbabilisticEvaluation(
    const CQ& q, const ExoRelations& deterministic) {
  // Theorem 4.10: identical frontier, deterministic relations playing the
  // role of exogenous relations.
  return ClassifyExactShapley(q, deterministic);
}

}  // namespace shapcq
