#!/usr/bin/env bash
# Builds the Release benchmarks and records the all-facts Shapley benchmark
# as BENCH_shapley.json (and the incremental patch-vs-rebuild benchmark as
# BENCH_incremental.json) at the repository root, so the perf trajectory is
# tracked PR over PR. BENCH_shapley.json carries a thread-count axis:
# BM_EngineAllFactsParallel/{students},{threads} rows measure the worker-pool
# engine, with threads=1 as the serial baseline of the speedup curve.
#
# Both files embed git_sha and host_nproc in the JSON "context" block, so
# the single-core-container caveat (a parallel speedup is only physically
# possible when host_nproc > 1) is machine-readable instead of a prose note.
#
#   tools/run_benchmarks.sh [build-dir]
#
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-bench}"

git_sha="$(git -C "$repo_root" rev-parse HEAD 2>/dev/null || echo unknown)"
host_nproc="$(nproc)"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release \
      -DSHAPCQ_BUILD_TESTS=OFF -DSHAPCQ_BUILD_EXAMPLES=OFF
cmake --build "$build_dir" -j "$host_nproc" \
      --target bench_shapley_all bench_incremental

"$build_dir/bench/bench_shapley_all" \
    --benchmark_context=git_sha="$git_sha" \
    --benchmark_context=host_nproc="$host_nproc" \
    --benchmark_format=json \
    --benchmark_out="$repo_root/BENCH_shapley.json" \
    --benchmark_out_format=json

"$build_dir/bench/bench_incremental" \
    --benchmark_context=git_sha="$git_sha" \
    --benchmark_context=host_nproc="$host_nproc" \
    --benchmark_format=json \
    --benchmark_out="$repo_root/BENCH_incremental.json" \
    --benchmark_out_format=json

"$repo_root/tools/check_incremental_speedup.py" \
    "$repo_root/BENCH_incremental.json"

echo "wrote $repo_root/BENCH_shapley.json and $repo_root/BENCH_incremental.json"
