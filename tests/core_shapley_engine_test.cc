// The single-pass all-facts ShapleyEngine: differential agreement with the
// per-fact CntSat path and the exponential oracle, the efficiency axiom
// (values sum to v(Dn) − v(∅)), orbit symmetry, and null players.

#include "core/shapley_engine.h"

#include <gtest/gtest.h>

#include <tuple>

#include "core/brute_force.h"
#include "core/count_sat.h"
#include "core/exoshap.h"
#include "core/shapley.h"
#include "datasets/citations.h"
#include "datasets/query_gen.h"
#include "datasets/synthetic.h"
#include "datasets/university.h"
#include "eval/homomorphism.h"
#include "query/parser.h"
#include "util/random.h"

namespace shapcq {
namespace {

TEST(ShapleyEngineTest, Example23ExactValues) {
  UniversityDb u = BuildUniversityDb();
  auto engine = ShapleyEngine::Build(UniversityQ1(), u.db);
  ASSERT_TRUE(engine.ok()) << engine.error();
  const std::vector<Rational> values = std::move(engine).value().AllValues();
  const std::vector<Rational> expected = UniversityQ1PaperValues();
  const std::vector<FactId> facts = {u.ft1, u.ft2, u.ft3, u.fr1,
                                     u.fr2, u.fr3, u.fr4, u.fr5};
  for (size_t i = 0; i < facts.size(); ++i) {
    EXPECT_EQ(values[u.db.endo_index(facts[i])], expected[i])
        << u.db.FactToString(facts[i]);
  }
}

TEST(ShapleyEngineTest, BaselineSatMatchesCountSat) {
  UniversityDb u = BuildUniversityDb();
  const CQ q1 = UniversityQ1();
  auto engine = ShapleyEngine::Build(q1, u.db);
  ASSERT_TRUE(engine.ok()) << engine.error();
  EXPECT_EQ(engine.value().BaselineSat(), CountSat(q1, u.db).value());
}

TEST(ShapleyEngineTest, SingleFactQueriesMatchAllFacts) {
  UniversityDb u = BuildUniversityDb();
  auto engine = ShapleyEngine::Build(UniversityQ1(), u.db);
  ASSERT_TRUE(engine.ok()) << engine.error();
  ShapleyEngine built = std::move(engine).value();
  const std::vector<Rational> all = built.AllValues();
  for (FactId f : u.db.endogenous_facts()) {
    EXPECT_EQ(built.Value(f), all[u.db.endo_index(f)])
        << u.db.FactToString(f);
  }
}

TEST(ShapleyEngineTest, RejectsNonHierarchical) {
  UniversityDb u = BuildUniversityDb();
  EXPECT_FALSE(ShapleyEngine::Build(UniversityQ2(), u.db).ok());
}

TEST(ShapleyEngineTest, OrbitSymmetryOnRunningExample) {
  // Caroline's two registrations are interchangeable (both 13/42), as are
  // Adam's (both 37/210): the engine must place each pair in one orbit and
  // separate facts with different values.
  UniversityDb u = BuildUniversityDb();
  auto engine = ShapleyEngine::Build(UniversityQ1(), u.db);
  ASSERT_TRUE(engine.ok()) << engine.error();
  ShapleyEngine built = std::move(engine).value();
  const std::vector<size_t> orbits = built.OrbitIds();
  EXPECT_EQ(orbits[u.db.endo_index(u.fr4)], orbits[u.db.endo_index(u.fr5)]);
  EXPECT_EQ(orbits[u.db.endo_index(u.fr1)], orbits[u.db.endo_index(u.fr2)]);
  EXPECT_NE(orbits[u.db.endo_index(u.ft1)], orbits[u.db.endo_index(u.ft2)]);
  EXPECT_NE(orbits[u.db.endo_index(u.fr1)], orbits[u.db.endo_index(u.fr4)]);
  // 8 endogenous facts, two symmetric pairs -> at most 6 orbits.
  EXPECT_LE(built.stats().orbit_count, 6u);
  // Members of one orbit share one computed value — by construction, but
  // assert the observable: equal orbit id implies equal Shapley value.
  const std::vector<Rational> values = built.AllValues();
  for (FactId a : u.db.endogenous_facts()) {
    for (FactId b : u.db.endogenous_facts()) {
      if (orbits[u.db.endo_index(a)] == orbits[u.db.endo_index(b)]) {
        EXPECT_EQ(values[u.db.endo_index(a)], values[u.db.endo_index(b)]);
      }
    }
  }
}

TEST(ShapleyEngineTest, FullySymmetricDatabaseHasOneOrbit) {
  Database db;
  for (int i = 0; i < 6; ++i) db.AddEndo("R", {V("r" + std::to_string(i))});
  const CQ q = MustParseCQ("q() :- R(x)");
  auto engine = ShapleyEngine::Build(q, db);
  ASSERT_TRUE(engine.ok()) << engine.error();
  ShapleyEngine built = std::move(engine).value();
  const std::vector<Rational> values = built.AllValues();
  EXPECT_EQ(built.stats().orbit_count, 1u);
  // Six interchangeable facts, v(full) − v(empty) = 1: each gets 1/6.
  for (const Rational& value : values) {
    EXPECT_EQ(value, Rational::Of(1, 6));
  }
}

TEST(ShapleyEngineTest, NullPlayersGetZeroWithoutComputation) {
  // Facts in a relation the query never mentions are null players, as are
  // facts failing the atom's repeated-variable pattern.
  Database db;
  const FactId in_query = db.AddEndo("R", {V("a"), V("a")});
  const FactId wrong_pattern = db.AddEndo("R", {V("a"), V("b")});
  const FactId other_rel = db.AddEndo("S", {V("a")});
  const CQ q = MustParseCQ("q() :- R(x,x)");
  auto engine = ShapleyEngine::Build(q, db);
  ASSERT_TRUE(engine.ok()) << engine.error();
  ShapleyEngine built = std::move(engine).value();
  EXPECT_EQ(built.Value(wrong_pattern), Rational(0));
  EXPECT_EQ(built.Value(other_rel), Rational(0));
  EXPECT_EQ(built.Value(in_query), Rational(1));
  EXPECT_EQ(built.stats().null_player_count, 2u);
  // Differential: the per-fact reference agrees on the null players.
  EXPECT_EQ(ShapleyViaCountSat(q, db, wrong_pattern).value(), Rational(0));
  EXPECT_EQ(ShapleyViaCountSat(q, db, other_rel).value(), Rational(0));
}

TEST(ShapleyEngineTest, ExoShapAllMatchesPerFact) {
  // q2 is non-hierarchical, but with Stud/Course exogenous ExoShap applies;
  // the all-facts path (one transformation) must equal per-fact brute force.
  UniversityDb u = BuildUniversityDb();
  const CQ q2 = UniversityQ2();
  const ExoRelations exo = {"Stud", "Course"};
  auto all = ExoShapShapleyAll(q2, u.db, exo);
  ASSERT_TRUE(all.ok()) << all.error();
  for (FactId f : u.db.endogenous_facts()) {
    EXPECT_EQ(all.value()[u.db.endo_index(f)], ShapleyBruteForce(q2, u.db, f))
        << u.db.FactToString(f);
  }
}

// ---------------------------------------------------------------------------
// Parallel execution: determinism across thread counts.
//
// The contract under test is strict: AllValues at ANY thread count returns
// the same Rationals, in the same order, as the serial engine — not merely
// numerically equal, but assembled from the same per-orbit computations
// (see "Threading contract" in DESIGN.md).
// ---------------------------------------------------------------------------

ParallelOptions Threads(size_t n) {
  ParallelOptions options;
  options.num_threads = n;
  return options;
}

// Serial/parallel comparison on a prebuilt (query, database) pair: fresh
// engines per thread count, element-wise exact equality.
void ExpectThreadCountInvariant(const CQ& q, const Database& db) {
  auto serial_build = ShapleyEngine::Build(q, db);
  ASSERT_TRUE(serial_build.ok()) << serial_build.error();
  ShapleyEngine serial_engine = std::move(serial_build).value();
  const std::vector<Rational> serial = serial_engine.AllValues();
  const size_t serial_orbits = serial_engine.stats().orbit_count;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    auto engine = ShapleyEngine::Build(q, db);
    ASSERT_TRUE(engine.ok()) << engine.error();
    ShapleyEngine built = std::move(engine).value();
    const std::vector<Rational> parallel = built.AllValues(Threads(threads));
    ASSERT_EQ(parallel.size(), serial.size()) << threads << " threads";
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i], serial[i])
          << threads << " threads, endo index " << i;
      // Bit-identical, not just ==: the canonical string renderings agree.
      EXPECT_EQ(parallel[i].ToString(), serial[i].ToString())
          << threads << " threads, endo index " << i;
    }
    // The parallel run memoizes exactly the orbits the serial run would.
    EXPECT_EQ(built.stats().orbit_count, serial_orbits) << threads
                                                        << " threads";
  }
}

TEST(ShapleyEngineParallelTest, UniversityDeterministicAcrossThreadCounts) {
  UniversityDb u = BuildUniversityDb();
  ExpectThreadCountInvariant(UniversityQ1(), u.db);
}

TEST(ShapleyEngineParallelTest, ScalingDbDeterministicAcrossThreadCounts) {
  // Big enough that every thread count actually fans out over many orbits.
  const Database db = BuildStudentScalingDb(12, 3);
  ExpectThreadCountInvariant(UniversityQ1(), db);
}

TEST(ShapleyEngineParallelTest, SyntheticDeterministicAcrossThreadCounts) {
  Rng rng(20260731);
  SyntheticOptions options;
  options.domain_size = 5;
  options.facts_per_relation = 8;
  for (const char* text :
       {"q() :- R(x), not S(x)", "q() :- R(x,y), S(x,z), T(x)",
        "q1() :- Stud(x), not TA(x), Reg(x,y)"}) {
    const CQ q = MustParseCQ(text);
    const Database db = RandomDatabaseForQuery(q, {}, options, &rng);
    ExpectThreadCountInvariant(q, db);
  }
}

TEST(ShapleyEngineParallelTest, CitationsExoShapDeterministicAcrossThreads) {
  // The citations workload is non-hierarchical; the parallel path must also
  // be reachable (and invariant) through the ExoShap transformation layer.
  Rng rng(7);
  const Database db = BuildRandomCitationsDb(6, 5, 0.6, 0.5, &rng);
  const CQ q = CitationsQuery();
  const ExoRelations exo = CitationsExoRelations();
  auto serial = ExoShapShapleyAll(q, db, exo);
  ASSERT_TRUE(serial.ok()) << serial.error();
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    auto parallel = ExoShapShapleyAll(q, db, exo, Threads(threads));
    ASSERT_TRUE(parallel.ok()) << parallel.error();
    ASSERT_EQ(parallel.value().size(), serial.value().size());
    for (size_t i = 0; i < serial.value().size(); ++i) {
      EXPECT_EQ(parallel.value()[i], serial.value()[i])
          << threads << " threads, endo index " << i;
    }
  }
}

TEST(ShapleyEngineParallelTest, SmallCitationsAllThreadCounts) {
  const Database db = BuildSmallCitationsDb();
  const CQ q = CitationsQuery();
  const ExoRelations exo = CitationsExoRelations();
  auto serial = ExoShapShapleyAll(q, db, exo);
  ASSERT_TRUE(serial.ok()) << serial.error();
  for (size_t threads : {2u, 4u, 8u}) {
    auto parallel = ExoShapShapleyAll(q, db, exo, Threads(threads));
    ASSERT_TRUE(parallel.ok()) << parallel.error();
    EXPECT_EQ(parallel.value(), serial.value()) << threads << " threads";
  }
}

TEST(ShapleyEngineParallelTest, AutoThreadCountMatchesSerial) {
  // num_threads = 0 resolves to the hardware concurrency, whatever that is
  // on the host running the tests — output must still be invariant.
  UniversityDb u = BuildUniversityDb();
  auto serial = ShapleyAllViaCountSat(UniversityQ1(), u.db);
  auto automatic = ShapleyAllViaCountSat(UniversityQ1(), u.db, Threads(0));
  ASSERT_TRUE(serial.ok() && automatic.ok());
  EXPECT_EQ(automatic.value(), serial.value());
}

TEST(ShapleyEngineParallelTest, ValueQueriesAfterParallelAllValues) {
  // A parallel AllValues fills the orbit memo; later single-fact queries on
  // the same engine must serve the identical values.
  UniversityDb u = BuildUniversityDb();
  auto engine = ShapleyEngine::Build(UniversityQ1(), u.db);
  ASSERT_TRUE(engine.ok()) << engine.error();
  ShapleyEngine built = std::move(engine).value();
  const std::vector<Rational> all = built.AllValues(Threads(4));
  for (FactId f : u.db.endogenous_facts()) {
    EXPECT_EQ(built.Value(f), all[u.db.endo_index(f)]) << u.db.FactToString(f);
  }
  // And a repeated parallel query is a pure replay of the memo.
  EXPECT_EQ(built.AllValues(Threads(8)), all);
}

// Randomized differential battery: generated hierarchical queries × random
// databases; the parallel engine against the per-fact ShapleyViaCountSat
// oracle and the efficiency axiom.
class ShapleyEngineParallelSweep : public ::testing::TestWithParam<int> {};

TEST_P(ShapleyEngineParallelSweep, MatchesOracleAndEfficiency) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 31);
  QueryGenOptions query_options;
  query_options.max_depth = 3;
  query_options.max_branch = 2;
  const CQ q = RandomHierarchicalCq(query_options, &rng);
  SyntheticOptions db_options;
  db_options.domain_size = 3;
  db_options.facts_per_relation = 4;
  const Database db = RandomDatabaseForQuery(q, {}, db_options, &rng);
  auto engine = ShapleyEngine::Build(q, db);
  ASSERT_TRUE(engine.ok()) << engine.error() << " for " << q.ToString();
  const std::vector<Rational> values =
      std::move(engine).value().AllValues(Threads(4));
  ASSERT_EQ(values.size(), db.endogenous_count());
  Rational sum(0);
  for (FactId f : db.endogenous_facts()) {
    const Rational& fast = values[db.endo_index(f)];
    sum += fast;
    auto reference = ShapleyViaCountSat(q, db, f);
    ASSERT_TRUE(reference.ok()) << reference.error();
    EXPECT_EQ(fast, reference.value())
        << "parallel mismatch vs oracle on " << db.FactToString(f) << " for "
        << q.ToString() << " in " << db.ToString();
  }
  const int delta = (EvalBoolean(q, db, db.FullWorld()) ? 1 : 0) -
                    (EvalBoolean(q, db, db.EmptyWorld()) ? 1 : 0);
  EXPECT_EQ(sum, Rational(delta))
      << "efficiency axiom violated for " << q.ToString() << " in "
      << db.ToString();
}

INSTANTIATE_TEST_SUITE_P(GeneratedQueries, ShapleyEngineParallelSweep,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Randomized differential sweeps.
// ---------------------------------------------------------------------------

using EngineSweepParam = std::tuple<const char*, int>;

class ShapleyEngineSweep : public ::testing::TestWithParam<EngineSweepParam> {};

TEST_P(ShapleyEngineSweep, MatchesPerFactAndBruteForce) {
  const CQ q = MustParseCQ(std::get<0>(GetParam()));
  Rng rng(static_cast<uint64_t>(std::get<1>(GetParam())) * 7919 + 17);
  SyntheticOptions options;
  options.domain_size = 3;
  options.facts_per_relation = 3;
  const Database db = RandomDatabaseForQuery(q, {}, options, &rng);
  auto engine = ShapleyEngine::Build(q, db);
  ASSERT_TRUE(engine.ok()) << engine.error();
  const std::vector<Rational> values = std::move(engine).value().AllValues();
  ASSERT_EQ(values.size(), db.endogenous_count());
  for (FactId f : db.endogenous_facts()) {
    const Rational& fast = values[db.endo_index(f)];
    auto reference = ShapleyViaCountSat(q, db, f);
    ASSERT_TRUE(reference.ok()) << reference.error();
    EXPECT_EQ(fast, reference.value())
        << "per-fact mismatch on " << db.FactToString(f) << " in "
        << db.ToString();
    EXPECT_EQ(fast, ShapleyBruteForce(q, db, f))
        << "oracle mismatch on " << db.FactToString(f) << " in "
        << db.ToString();
  }
}

TEST_P(ShapleyEngineSweep, EfficiencySumsToQueryDelta) {
  const CQ q = MustParseCQ(std::get<0>(GetParam()));
  Rng rng(static_cast<uint64_t>(std::get<1>(GetParam())) * 50021 + 3);
  SyntheticOptions options;
  options.domain_size = 4;
  options.facts_per_relation = 5;
  const Database db = RandomDatabaseForQuery(q, {}, options, &rng);
  auto engine = ShapleyEngine::Build(q, db);
  ASSERT_TRUE(engine.ok()) << engine.error();
  const std::vector<Rational> values = std::move(engine).value().AllValues();
  Rational sum(0);
  for (const Rational& value : values) sum += value;
  const int delta = (EvalBoolean(q, db, db.FullWorld()) ? 1 : 0) -
                    (EvalBoolean(q, db, db.EmptyWorld()) ? 1 : 0);
  EXPECT_EQ(sum, Rational(delta)) << db.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    HierarchicalShapes, ShapleyEngineSweep,
    ::testing::Combine(
        ::testing::Values("q() :- R(x)",
                          "q() :- R(x), not S(x)",
                          "q1() :- Stud(x), not TA(x), Reg(x,y)",
                          "q() :- R(x,y), S(x,y), T(x)",
                          "q() :- R(x), S(y)",
                          "q() :- R(x,y), not S(x)",
                          "q() :- R(x,x)",
                          "q() :- R(x,y), S(x,z), T(x)"),
        ::testing::Range(0, 5)));

}  // namespace
}  // namespace shapcq
