// Lemma B.3 forward: recovering |IS(g)| from a Shapley oracle for q_RS¬T via
// the exact linear system, checked against direct enumeration. Also the
// |S(g)| = |IS(g)| bijection used inside the proof.

#include "reductions/iscount.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "query/analysis.h"
#include "util/random.h"

namespace shapcq {
namespace {

ShapleyOracle BruteForceOracle() {
  const CQ q = QRSNegT();
  return [q](const Database& db, FactId f) {
    return ShapleyBruteForce(q, db, f);
  };
}

TEST(BaseQueriesTest, Shapes) {
  for (const CQ& q : {QRst(), QNegRSNegT(), QRNegSt(), QRSNegT()}) {
    EXPECT_TRUE(IsSafe(q)) << q.ToString();
    EXPECT_TRUE(IsSelfJoinFree(q)) << q.ToString();
    EXPECT_FALSE(IsHierarchical(q)) << q.ToString();
  }
}

TEST(BipartiteTest, IndependentSetCounts) {
  // Single edge a-b: subsets of {a, b} minus {a,b} itself = 3.
  BipartiteGraph single{1, 1, {{0, 0}}};
  EXPECT_EQ(CountIndependentSetsBruteForce(single).ToInt64(), 3);
  // Two disjoint edges: 3 * 3.
  BipartiteGraph two{2, 2, {{0, 0}, {1, 1}}};
  EXPECT_EQ(CountIndependentSetsBruteForce(two).ToInt64(), 9);
  // Complete bipartite K_{2,2}: left subsets (4) + right subsets (4) - 1.
  BipartiteGraph k22{2, 2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}}};
  EXPECT_EQ(CountIndependentSetsBruteForce(k22).ToInt64(), 7);
}

TEST(BipartiteTest, ClosedSubsetBijection) {
  // Σ_k |S(g,k)| = |IS(g)| (the bijection in the proof of Lemma 3.3).
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    BipartiteGraph graph = RandomBipartite(2, 3, 0.5, &rng);
    ASSERT_FALSE(graph.HasIsolatedVertex());
    BigInt total(0);
    for (const BigInt& count : CountClosedSubsetsBruteForce(graph)) {
      total += count;
    }
    EXPECT_EQ(total, CountIndependentSetsBruteForce(graph));
  }
}

TEST(BipartiteTest, RandomGeneratorAvoidsIsolation) {
  Rng rng(12);
  for (int trial = 0; trial < 20; ++trial) {
    EXPECT_FALSE(RandomBipartite(3, 4, 0.2, &rng).HasIsolatedVertex());
  }
}

TEST(IsCountInstanceTest, D0Shape) {
  BipartiteGraph graph{2, 2, {{0, 0}, {1, 1}}};
  FactId f = kNoFact;
  Database d0 = BuildIsCountInstance(graph, 0, &f);
  ASSERT_NE(f, kNoFact);
  // Endo: 2 R + 2 T + T(0) = 5; S facts exogenous: 2 edges + 2 wires.
  EXPECT_EQ(d0.endogenous_count(), 5u);
  EXPECT_EQ(d0.facts_of("S").size(), 4u);
  EXPECT_TRUE(d0.is_endogenous(f));
}

TEST(IsCountInstanceTest, DrShape) {
  BipartiteGraph graph{2, 2, {{0, 0}, {1, 1}}};
  FactId f = kNoFact;
  Database d3 = BuildIsCountInstance(graph, 3, &f);
  // Endo: 2 R + 2 T + T(0) + 3 fresh R = 8; S: 2 edges + 3 wires.
  EXPECT_EQ(d3.endogenous_count(), 8u);
  EXPECT_EQ(d3.facts_of("S").size(), 5u);
}

TEST(IsCountTest, SingleEdgeGraph) {
  BipartiteGraph graph{1, 1, {{0, 0}}};
  EXPECT_EQ(CountIndependentSetsViaShapley(graph, BruteForceOracle()),
            CountIndependentSetsBruteForce(graph));
}

TEST(IsCountTest, CompleteBipartite22) {
  BipartiteGraph graph{2, 2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}}};
  EXPECT_EQ(CountIndependentSetsViaShapley(graph, BruteForceOracle()),
            CountIndependentSetsBruteForce(graph));
}

TEST(IsCountTest, RandomGraphsMatchEnumeration) {
  Rng rng(13);
  for (int trial = 0; trial < 3; ++trial) {
    BipartiteGraph graph = RandomBipartite(2, 2, 0.5, &rng);
    EXPECT_EQ(CountIndependentSetsViaShapley(graph, BruteForceOracle()),
              CountIndependentSetsBruteForce(graph))
        << "trial " << trial;
  }
}

TEST(IsCountTest, PathGraph) {
  // Path a0 - b0 - a1: IS count of P3 = 5.
  BipartiteGraph graph{2, 1, {{0, 0}, {1, 0}}};
  EXPECT_EQ(CountIndependentSetsBruteForce(graph).ToInt64(), 5);
  EXPECT_EQ(CountIndependentSetsViaShapley(graph, BruteForceOracle()),
            BigInt(5));
}

}  // namespace
}  // namespace shapcq
