// Load-generator benchmark for the socket-serving layer: N concurrent
// clients, each on a private session over a real TCP connection to an
// in-process TcpServer (8-stripe registry), drive a mixed OPEN / DELTA /
// REPORT / STATS / CLOSE workload one round-trip at a time.
//
//   BM_ServiceLoadMixed/<clients>  aggregate command throughput and the
//                                  per-command round-trip latency
//                                  distribution at that concurrency.
//
// Counters (all computed from wall-clock time, not benchmark CPU time):
//   cmds_per_sec  aggregate completed commands per second across clients
//   p50_us/p99_us per-command round-trip latency percentiles, microseconds
//
// tools/check_service_load.py gates the 4-client run against the 1-client
// run within the same JSON: per-client throughput must retain at least
// --min-ratio of the single-client rate (a registry serialized by one
// global lock collapses toward 1/clients). Same-run comparison, so the
// gate is immune to absolute runner speed.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "service/command_loop.h"
#include "service/net/tcp_server.h"
#include "util/check.h"

namespace {

using namespace shapcq;

// A blocking client with buffered line reads over one connection.
class LoadClient {
 public:
  explicit LoadClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~LoadClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  LoadClient(const LoadClient&) = delete;
  LoadClient& operator=(const LoadClient&) = delete;

  bool connected() const { return fd_ >= 0; }

  bool Send(const std::string& text) {
    size_t sent = 0;
    while (sent < text.size()) {
      const ssize_t n = ::send(fd_, text.data() + sent, text.size() - sent, 0);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  // One '\n'-terminated line (terminator stripped); false on EOF.
  bool ReadLine(std::string* line) {
    line->clear();
    while (true) {
      if (pos_ == len_) {
        const ssize_t n = ::recv(fd_, buffer_, sizeof(buffer_), 0);
        if (n <= 0) return false;
        len_ = static_cast<size_t>(n);
        pos_ = 0;
      }
      while (pos_ < len_) {
        const char ch = buffer_[pos_++];
        if (ch == '\n') return true;
        line->push_back(ch);
      }
    }
  }

 private:
  int fd_ = -1;
  char buffer_[8192];
  size_t len_ = 0;
  size_t pos_ = 0;
};

// Sends one command and reads its complete response: the "> " echo, then
// the ack/stats/error line — or, for a report header, every row through
// the "end report" trailer. Returns false on any protocol surprise, so
// the benchmark fails loudly instead of timing garbage.
bool RunCommand(LoadClient* client, const std::string& line) {
  if (!client->Send(line + "\n")) return false;
  std::string reply;
  if (!client->ReadLine(&reply)) return false;  // "> <line>" echo
  if (reply != "> " + line) return false;
  if (!client->ReadLine(&reply)) return false;  // ack / header / error
  if (reply.compare(0, 7, "error: ") == 0) return false;
  if (reply.compare(0, 7, "report ") == 0) {
    while (reply.compare(0, 11, "end report ") != 0) {
      if (!client->ReadLine(&reply)) return false;
    }
  }
  return true;
}

// The mixed workload of one client on its private session: 32 deltas
// growing the database to 16 endogenous facts, a full Shapley REPORT
// after every 4th delta, then STATS and CLOSE (43 commands total). The
// report cadence keeps the engine's exact-Shapley work dominant over
// protocol round-trips, which is the work stripes can actually overlap.
std::vector<std::string> WorkloadScript(const std::string& id) {
  std::vector<std::string> lines;
  lines.push_back("OPEN " + id + " q() :- Stud(x), not TA(x), Reg(x,y)");
  size_t deltas = 0;
  for (int i = 0; i < 16; ++i) {
    const std::string student = "u" + std::to_string(i);
    lines.push_back("DELTA " + id + " + Stud(" + student + ")");
    lines.push_back("DELTA " + id + " + Reg(" + student + ",c" +
                    std::to_string(i) + ")*");
    deltas += 2;
    if (deltas % 8 == 0) {
      lines.push_back("REPORT " + id);
    } else if (deltas % 4 == 0) {
      lines.push_back("REPORT " + id + " 3");
    }
  }
  lines.push_back("STATS " + id);
  lines.push_back("CLOSE " + id);
  return lines;
}

void BM_ServiceLoadMixed(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));

  CommandLoopOptions loop_options;
  loop_options.registry.num_stripes = 8;
  EngineRegistry registry(loop_options.registry);
  TcpServerOptions net_options;  // ephemeral port, default connection cap
  auto listening =
      TcpServer::Listen(net_options, loop_options, &registry, nullptr);
  SHAPCQ_CHECK_MSG(listening.ok(), listening.error().c_str());
  TcpServer server = std::move(listening).value();
  std::thread serve_thread([&server]() { server.Serve(nullptr); });

  std::vector<double> latencies_us;
  size_t total_commands = 0;
  double elapsed_seconds = 0.0;
  size_t round = 0;
  bool workload_ok = true;

  for (auto _ : state) {
    std::vector<std::vector<double>> per_client(
        static_cast<size_t>(clients));
    std::vector<std::thread> drivers;
    const auto round_start = std::chrono::steady_clock::now();
    for (int c = 0; c < clients; ++c) {
      drivers.emplace_back([&per_client, &workload_ok, c, round,
                            port = server.port()]() {
        LoadClient client(port);
        if (!client.connected()) {
          workload_ok = false;
          return;
        }
        const std::string id =
            "w" + std::to_string(c) + "_" + std::to_string(round);
        std::vector<double>& latencies = per_client[static_cast<size_t>(c)];
        for (const std::string& line : WorkloadScript(id)) {
          const auto start = std::chrono::steady_clock::now();
          if (!RunCommand(&client, line)) {
            workload_ok = false;
            return;
          }
          const auto stop = std::chrono::steady_clock::now();
          latencies.push_back(
              std::chrono::duration<double, std::micro>(stop - start)
                  .count());
        }
      });
    }
    for (std::thread& t : drivers) t.join();
    elapsed_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      round_start)
            .count();
    ++round;
    for (const std::vector<double>& lane : per_client) {
      total_commands += lane.size();
      latencies_us.insert(latencies_us.end(), lane.begin(), lane.end());
    }
  }

  server.Shutdown();
  serve_thread.join();
  SHAPCQ_CHECK_MSG(workload_ok, "load client hit a protocol error");
  SHAPCQ_CHECK_MSG(server.total_errors() == 0,
                   "server reported command errors under load");

  std::sort(latencies_us.begin(), latencies_us.end());
  const auto percentile = [&latencies_us](double p) {
    if (latencies_us.empty()) return 0.0;
    size_t index = static_cast<size_t>(
        p * static_cast<double>(latencies_us.size()));
    index = std::min(index, latencies_us.size() - 1);
    return latencies_us[index];
  };
  state.counters["cmds_per_sec"] =
      elapsed_seconds > 0.0
          ? static_cast<double>(total_commands) / elapsed_seconds
          : 0.0;
  state.counters["p50_us"] = percentile(0.50);
  state.counters["p99_us"] = percentile(0.99);
  state.SetLabel("clients=" + std::to_string(clients));
}
BENCHMARK(BM_ServiceLoadMixed)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
