// Cooperative cancellation for long-running engine work.
//
// A CancelToken carries an optional wall-clock deadline (steady_clock, so
// system clock steps cannot fire or defer it) and a cooperative cancel flag.
// Work loops poll Expired() at coarse, value-preserving boundaries — orbit
// representatives, sampling chunks, arena sweep levels, delta records —
// never inside a numeric kernel, so a run that is not cancelled executes
// exactly the instruction stream of an un-tokened run and stays
// bit-identical (see "Deadlines, cancellation & degradation" in DESIGN.md).
//
// Expiry latches: once Expired() has returned true it returns true forever,
// so every boundary after the first hit unwinds promptly without re-reading
// the clock. Tokens are passed as `const CancelToken*`; nullptr (or a
// default-constructed token) means "never expires" and costs one branch per
// boundary.
//
// For deterministic tests, AtCheck(k) builds a token that expires on the
// k-th Expired() poll regardless of time — the fuzz battery in
// tests/cancel_test.cc uses it to cancel at chosen points of Build, the
// value sweep, the patch path and the sampling loops.

#ifndef SHAPCQ_UTIL_CANCEL_H_
#define SHAPCQ_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace shapcq {

class CancelToken {
 public:
  /// The canonical error payload of a cancelled computation. Engine-layer
  /// entry points return it verbatim; the service layer recognizes it via
  /// IsCancelled() and maps it to the structured [E_DEADLINE] protocol
  /// error (or the on_deadline=approx degradation path).
  static constexpr const char* kCancelledMessage =
      "cancelled: deadline exceeded";

  /// Never expires (Enabled() is false; Expired() is one branch).
  CancelToken() = default;

  // Atomics make the token address-stable: share it by pointer.
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Expires `ms` milliseconds from now. ms = 0 is the "cancel immediately"
  /// edge: already expired at the first check.
  static CancelToken AfterMillis(uint64_t ms) {
    CancelToken token;
    token.ArmDeadlineMillis(ms);
    return token;
  }

  /// Arms a deadline `ms` from now on an existing (typically
  /// default-constructed) token. Call before sharing the token with workers
  /// — arming is not synchronized against concurrent Expired() polls.
  void ArmDeadlineMillis(uint64_t ms) {
    enabled_ = true;
    has_deadline_ = true;
    deadline_ =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  }

  /// Deterministic test mode: expires on the k-th Expired() call (1-based;
  /// k = 0 behaves like AfterMillis(0) — expired at the first check).
  static CancelToken AtCheck(uint64_t k) {
    CancelToken token;
    token.enabled_ = true;
    token.check_trigger_ = k == 0 ? 1 : k;
    return token;
  }

  /// Cooperative cancel: the next Expired() poll (from any thread) returns
  /// true. Safe to call concurrently with polls.
  void RequestCancel() {
    enabled_ = true;
    cancelled_.store(true, std::memory_order_relaxed);
  }

  /// Whether this token can ever expire. Callers with a cheaper
  /// no-cancellation code path may branch on it once up front.
  bool Enabled() const { return enabled_; }

  /// Polls the token at a work boundary. Latches: true once, true forever.
  bool Expired() const {
    if (!enabled_) return false;
    if (latched_.load(std::memory_order_relaxed)) return true;
    bool expired = cancelled_.load(std::memory_order_relaxed);
    if (!expired && check_trigger_ != 0) {
      const uint64_t check =
          checks_.fetch_add(1, std::memory_order_relaxed) + 1;
      expired = check >= check_trigger_;
    }
    if (!expired && has_deadline_) {
      expired = std::chrono::steady_clock::now() >= deadline_;
    }
    if (expired) latched_.store(true, std::memory_order_relaxed);
    return expired;
  }

  /// Whether an engine-layer error string is the cancellation payload.
  static bool IsCancelled(const std::string& error) {
    return error.find(kCancelledMessage) != std::string::npos;
  }

 private:
  // The factories return by value; atomics forbid the implicit moves, so
  // spell out the member transfer (pre-sharing, single-threaded by design).
  CancelToken(CancelToken&& other) noexcept
      : enabled_(other.enabled_),
        has_deadline_(other.has_deadline_),
        deadline_(other.deadline_),
        check_trigger_(other.check_trigger_),
        checks_(other.checks_.load(std::memory_order_relaxed)),
        cancelled_(other.cancelled_.load(std::memory_order_relaxed)),
        latched_(other.latched_.load(std::memory_order_relaxed)) {}
  CancelToken& operator=(CancelToken&&) = delete;

  bool enabled_ = false;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  uint64_t check_trigger_ = 0;  // 0 = no deterministic trigger
  mutable std::atomic<uint64_t> checks_{0};
  std::atomic<bool> cancelled_{false};
  mutable std::atomic<bool> latched_{false};
};

}  // namespace shapcq

#endif  // SHAPCQ_UTIL_CANCEL_H_
