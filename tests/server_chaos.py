#!/usr/bin/env python3
"""Chaos harness for shapcq_server --listen: socket faults and timeouts.

Six checks against a real server process, driving the transport through
its unhappy paths:

  1. Idle-watchdog reap: with --idle-timeout-ms, a client that opens a
     session and goes silent is half-closed (orderly EOF, no error line)
     while a concurrent active client is served byte-identically to a
     serial replay — and the silent client's session survives the reap.
  2. Read-timeout reap: with --io-timeout-ms, a connected-but-mute peer
     (the dead-peer/slow-loris shape) is reaped within the timeout; the
     server stays healthy and counts the reap in its drained io_timeouts=.
  3. net_short_write: every socket send capped to one byte (the injected
     fault) must still deliver byte-identical transcripts — the flush loop
     handles short writes, not just full ones.
  4. net_drop_mid_response: the n-th send transmits half its payload and
     then fails hard (the vanished-client shape). The victim receives a
     clean prefix of the oracle transcript, and the NEXT connection is
     served in full — one dead peer never wedges the server.
  5. net_eintr_recv: an EINTR storm on recv (the first N reads each take a
     spurious signal) must be fully transparent — byte-identical output.
  6. Deadline under chaos: with the short-write fault armed for the whole
     run, a REPORT deadline_ms=1 on a session grown until the budget
     reliably expires returns the structured [E_DEADLINE] line, and the
     immediately following undeadlined REPORT on the same connection is
     byte-identical to a fault-free serial oracle — cancellation leaves
     the engine consistent even when every reply dribbles out one byte at
     a time.

The net faults ride the SHAPCQ_FAULT environment hook of
src/util/fault_injector.h, same switch the WAL crash harness uses.

usage: server_chaos.py SHAPCQ_SERVER
"""

import argparse
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

QUERY = "q() :- Stud(x), not TA(x), Reg(x,y)"


def fail(message):
    print("FAIL: " + message)
    sys.exit(1)


def client_script(session):
    lines = [
        "OPEN %s %s" % (session, QUERY),
        "DELTA %s + Stud(ann)" % session,
        "DELTA %s + Stud(bob)" % session,
        "DELTA %s + Reg(ann,os_%s)*" % (session, session),
        "REPORT %s" % session,
        "DELTA %s + Reg(bob,db)*" % session,
        "DELTA %s + TA(bob)*" % session,
        "REPORT %s top_k=2" % session,
        "STATS %s" % session,
        "CLOSE %s" % session,
    ]
    return "\n".join(lines) + "\n"


def start_listen_server(server_bin, extra_flags, env_extra=None):
    env = os.environ.copy()
    if env_extra:
        env.update(env_extra)
    proc = subprocess.Popen(
        [server_bin, "--listen", "127.0.0.1:0"] + extra_flags,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        env=env,
    )
    deadline = time.time() + 10
    while time.time() < deadline:
        line = proc.stderr.readline()
        if not line:
            fail("server exited before announcing its port")
        match = re.search(rb"listening on 127\.0\.0\.1:(\d+)", line)
        if match:
            return proc, int(match.group(1))
    fail("server never announced its port")


def finish_server(proc):
    """SIGTERMs the server; returns (exit_code, remaining stderr bytes)."""
    proc.send_signal(signal.SIGTERM)
    try:
        code = proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail("server did not drain within 30s of SIGTERM")
    stderr = proc.stderr.read()
    proc.stderr.close()
    return code, stderr


def drained_io_timeouts(stderr):
    match = re.search(rb"io_timeouts=(\d+)", stderr)
    if not match:
        fail("no io_timeouts= tally on the drained stderr line: %r" % stderr)
    return int(match.group(1))


def roundtrip(port, payload, timeout=30):
    sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    try:
        sock.sendall(payload.encode())
        sock.shutdown(socket.SHUT_WR)
    except OSError:
        pass  # server closed mid-send (the drop fault does exactly that)
    received = b""
    while True:
        try:
            chunk = sock.recv(65536)
        except OSError:
            break
        if not chunk:
            break
        received += chunk
    sock.close()
    return received


def serial_replay(server_bin, script_text):
    with tempfile.NamedTemporaryFile("w", suffix=".txt", delete=False) as f:
        f.write(script_text)
        path = f.name
    try:
        result = subprocess.run(
            [server_bin, "--script", path],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
        )
        if result.returncode != 0:
            fail("serial replay exited %d" % result.returncode)
        return result.stdout
    finally:
        os.unlink(path)


def read_lines(sock_file, count):
    lines = []
    for _ in range(count):
        line = sock_file.readline()
        if not line:
            break
        lines.append(line)
    return lines


def check_idle_reap_isolated(server_bin):
    proc, port = start_listen_server(server_bin, ["--idle-timeout-ms", "200"])

    # The victim: one command, then silence with the connection held open.
    silent = socket.create_connection(("127.0.0.1", port), timeout=30)
    silent_file = silent.makefile("rwb")
    silent_file.write(b"OPEN idle %s\n" % QUERY.encode())
    silent_file.flush()
    acks = read_lines(silent_file, 2)
    if acks != [b"> OPEN idle %s\n" % QUERY.encode(), b"ok open idle\n"]:
        fail("silent client's OPEN not acked: %r" % acks)

    # A concurrent active client must be served as if the reap never
    # happened (its own activity keeps it clear of the watchdog).
    active = roundtrip(port, client_script("busy"))
    expected = serial_replay(server_bin, client_script("busy"))
    if active != expected:
        fail("active client transcript changed under the idle watchdog")

    # The victim sees an orderly EOF (no error line, no reset) within the
    # timeout plus watchdog slack.
    silent.settimeout(10)
    leftover = silent_file.read()
    if leftover != b"":
        fail("reaped client got unexpected bytes: %r" % leftover)
    silent.close()

    # The reaped SESSION survives: only the connection died.
    probe = roundtrip(port, "STATS idle\n")
    if b"stats idle " not in probe:
        fail("session 'idle' did not survive its connection's reap: %r"
             % probe)

    code, stderr = finish_server(proc)
    if code != 0:
        fail("idle-reap server exited %d" % code)
    if drained_io_timeouts(stderr) < 1:
        fail("idle reap not counted in io_timeouts")
    print("idle reap: silent client reaped, neighbor and session unharmed")


def check_io_timeout_reap(server_bin):
    proc, port = start_listen_server(server_bin, ["--io-timeout-ms", "150"])

    # The dead peer: connects and never sends a byte.
    mute = socket.create_connection(("127.0.0.1", port), timeout=30)
    mute.settimeout(10)
    start = time.time()
    got = mute.recv(4096)
    elapsed = time.time() - start
    if got != b"":
        fail("mute client received bytes: %r" % got)
    if elapsed > 5:
        fail("mute client reaped only after %.1fs (timeout 0.15s)" % elapsed)
    mute.close()

    # The server is past the reap and fully serviceable.
    got = roundtrip(port, client_script("after"))
    expected = serial_replay(server_bin, client_script("after"))
    if got != expected:
        fail("post-reap client transcript differs from serial replay")

    code, stderr = finish_server(proc)
    if code != 0:
        fail("io-timeout server exited %d" % code)
    if drained_io_timeouts(stderr) < 1:
        fail("read-timeout reap not counted in io_timeouts")
    print("io timeout: dead peer reaped in %.2fs, server healthy" % elapsed)


def check_short_write_identity(server_bin):
    proc, port = start_listen_server(
        server_bin, [], env_extra={"SHAPCQ_FAULT": "net_short_write:1000000"}
    )
    got = roundtrip(port, client_script("dribble"))
    code, _ = finish_server(proc)
    if code != 0:
        fail("short-write server exited %d" % code)
    expected = serial_replay(server_bin, client_script("dribble"))
    if got != expected:
        fail(
            "one-byte-send transcript differs from oracle\n--- got ---\n%s"
            % got.decode(errors="replace")
        )
    print("net_short_write: 1-byte sends, transcript byte-identical")


def check_drop_mid_response(server_bin):
    # The 6th socket send transmits half its bytes and then fails hard —
    # mid-workload for the first client, spent before the second.
    proc, port = start_listen_server(
        server_bin, [], env_extra={"SHAPCQ_FAULT": "net_drop_mid_response:6"}
    )
    expected = serial_replay(server_bin, client_script("victim"))
    victim = roundtrip(port, client_script("victim"))
    if victim == expected:
        fail("drop fault never fired (victim got the full transcript)")
    if not expected.startswith(victim):
        fail(
            "victim's truncated transcript is not a prefix of the oracle\n"
            "--- victim ---\n%s" % victim.decode(errors="replace")
        )

    # One dead peer never wedges the server: the next connection (fault
    # spent) is served in full.
    after = roundtrip(port, client_script("survivor"))
    expected_after = serial_replay(server_bin, client_script("survivor"))
    if after != expected_after:
        fail("post-drop client transcript differs from serial replay")

    code, _ = finish_server(proc)
    if code != 0:
        fail("drop-fault server exited %d" % code)
    print(
        "net_drop_mid_response: victim got %d/%d oracle bytes, server "
        "stayed serviceable" % (len(victim), len(expected))
    )


def check_eintr_storm_transparent(server_bin):
    proc, port = start_listen_server(
        server_bin, [], env_extra={"SHAPCQ_FAULT": "net_eintr_recv:50"}
    )
    got = roundtrip(port, client_script("storm"))
    code, _ = finish_server(proc)
    if code != 0:
        fail("eintr-storm server exited %d" % code)
    expected = serial_replay(server_bin, client_script("storm"))
    if got != expected:
        fail("EINTR-storm transcript differs from oracle")
    print("net_eintr_recv: 50-signal storm fully transparent")


def big_session_lines(n):
    """An OPEN + delta stream big enough (for large n) that a 1ms REPORT
    deadline reliably expires mid-build/sweep."""
    lines = ["OPEN big %s" % QUERY]
    for i in range(n):
        s = "s%d" % i
        lines.append("DELTA big + Stud(%s)" % s)
        lines.append("DELTA big + Reg(%s,c%d)*" % (s, i % 7))
        if i % 3 == 0:
            lines.append("DELTA big + TA(%s)*" % s)
    return lines


def check_deadline_under_faults(server_bin):
    # Machine-speed independent: grow the session (fresh server + fresh
    # fault budget each round) until deadline_ms=1 reliably expires.
    needle = b"error: [E_DEADLINE] report big: deadline_ms=1 exceeded\n"
    n = 256
    while True:
        proc, port = start_listen_server(
            server_bin, [],
            env_extra={"SHAPCQ_FAULT": "net_short_write:1000000000"},
        )
        script = "\n".join(
            big_session_lines(n) + ["REPORT big deadline_ms=1", "REPORT big"]
        ) + "\n"
        transcript = roundtrip(port, script, timeout=120)
        code, _ = finish_server(proc)
        if code != 0:
            fail("deadline-chaos server exited %d" % code)
        if needle in transcript:
            break
        if n >= 1 << 16:
            fail("deadline_ms=1 never expired even at n=%d" % n)
        n *= 2

    # The undeadlined retry on the same (dribbling) connection must be
    # byte-identical to a fault-free serial oracle of the same session.
    oracle_script = "\n".join(big_session_lines(n) + ["REPORT big"]) + "\n"
    oracle = serial_replay(server_bin, oracle_script)
    marker = b"> REPORT big\n"
    got_tail = transcript[transcript.rfind(marker):]
    want_tail = oracle[oracle.rfind(marker):]
    if got_tail != want_tail:
        fail(
            "undeadlined retry after [E_DEADLINE] under net_short_write "
            "differs from the fault-free oracle\n--- got ---\n%s"
            % got_tail.decode(errors="replace")
        )
    print(
        "deadline under chaos: n=%d expired with [E_DEADLINE], dribbled "
        "retry byte-identical to fault-free oracle" % n
    )


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("server", help="path to shapcq_server")
    args = parser.parse_args()

    check_idle_reap_isolated(args.server)
    check_io_timeout_reap(args.server)
    check_short_write_identity(args.server)
    check_drop_mid_response(args.server)
    check_eintr_storm_transparent(args.server)
    check_deadline_under_faults(args.server)
    print("OK")


if __name__ == "__main__":
    main()
