// Count vectors: the working data structure of the CntSat algorithm.
//
// A CountVector over a universe of n elements stores, for each k in 0..n, how
// many k-subsets of the universe have some property (e.g. "joined with the
// exogenous facts, the subset satisfies q"). The CntSat recursion combines
// sub-results over *disjoint* universes:
//   * conjunction of independent properties  -> Convolve
//   * "all subsets"                          -> All
//   * negation of the property               -> ComplementAgainstAll
// Disjointness of the universes is what makes convolution count correctly.

#ifndef SHAPCQ_UTIL_COUNT_VECTOR_H_
#define SHAPCQ_UTIL_COUNT_VECTOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/bigint.h"

namespace shapcq {

/// Exact per-cardinality subset counts over a finite universe.
class CountVector {
 public:
  /// Empty-universe vector: counts [1] (the empty subset qualifies). Note this
  /// is the multiplicative identity of Convolve, not a zero.
  CountVector() : counts_(1, BigInt(1)) {}

  /// No subset of a universe of size n qualifies.
  static CountVector Zero(size_t universe_size);
  /// Every subset qualifies: counts[k] = C(n, k).
  static CountVector All(size_t universe_size);
  /// Takes explicit counts; counts.size() must be universe_size + 1.
  static CountVector FromCounts(std::vector<BigInt> counts);

  /// Moves the raw cells out (the engine-arena compile step flattens them
  /// into its cell buffer). Leaves this vector empty (hollow) — only
  /// destruction, reassignment and ApproxMemoryBytes are valid afterwards,
  /// hence rvalue-only.
  std::vector<BigInt> TakeCounts() && { return std::move(counts_); }

  size_t universe_size() const { return counts_.size() - 1; }
  /// Number of qualifying k-subsets.
  const BigInt& at(size_t k) const { return counts_[k]; }
  /// Sum over all k (number of qualifying subsets of any size).
  BigInt Total() const;

  /// Approximate memory footprint in bytes (object plus owned BigInt cells).
  /// Feeds the byte-budgeted LRU accounting of the serving layer.
  size_t ApproxMemoryBytes() const;

  /// Counts of subsets of the combined (disjoint) universe whose restriction
  /// to each part qualifies in that part. Accumulates partial products
  /// directly into the result cells (BigInt::AddProductOf), so no temporary
  /// BigInt is allocated per (i, j) pair.
  CountVector Convolve(const CountVector& other) const;
  /// *this = *this ⊛ other. Convolution needs a fresh output buffer, but the
  /// assignment is a move — use this form in convolution cascades to make
  /// the intent (and the absence of a second copy) explicit.
  CountVector& ConvolveWith(const CountVector& other);
  /// Counts of subsets that do NOT qualify: All(n) - *this.
  CountVector ComplementAgainstAll() const;
  /// Pointwise sum; universes must have equal size.
  CountVector operator+(const CountVector& other) const;
  /// Pointwise difference; universes must have equal size.
  CountVector operator-(const CountVector& other) const;

  bool operator==(const CountVector& other) const {
    return counts_ == other.counts_;
  }

  /// "[c0, c1, ..., cn]" for debugging and test failure messages.
  std::string ToString() const;

 private:
  explicit CountVector(std::vector<BigInt> counts)
      : counts_(std::move(counts)) {}

  std::vector<BigInt> counts_;  // counts_[k] for k = 0..universe_size
};

}  // namespace shapcq

#endif  // SHAPCQ_UTIL_COUNT_VECTOR_H_
