#!/usr/bin/env python3
"""Regenerates the checked-in corrupted session-log corpus.

Each file is a shapcq_server write-ahead log (see src/service/session_log.h:
[u32 length][u32 crc32c][u8 type][payload], little-endian headers) damaged in
one specific way. tests/session_log_corpus_test.cc copies these into a temp
log dir and asserts recovery adopts exactly the longest trustworthy prefix —
and that recovering the recovered state is a fixed point.

Deterministic: running it twice produces byte-identical files.

    python3 tests/data/corrupt_logs/make_corpus.py
"""

import os
import struct

OPEN, DELTA, SNAPSHOT = 1, 2, 3


def crc32c(data: bytes) -> int:
    poly = 0x82F63B78
    crc = 0xFFFFFFFF
    for byte in data:
        crc ^= byte
        for _ in range(8):
            crc = (crc >> 1) ^ (poly if crc & 1 else 0)
    return crc ^ 0xFFFFFFFF


def record(rtype: int, payload: str) -> bytes:
    body = bytes([rtype]) + payload.encode()
    return struct.pack("<II", len(body), crc32c(body)) + body


def main() -> None:
    out_dir = os.path.dirname(os.path.abspath(__file__))
    open_rec = record(OPEN, "q() :- R(x)")
    delta_a = record(DELTA, "+ R(a)*")
    delta_b = record(DELTA, "+ R(b)*")

    # Bit flipped inside the second record's checksum word: the OPEN record
    # survives, the delta is a torn tail.
    flipped = bytearray(open_rec + delta_a)
    flipped[len(open_rec) + 4] ^= 0x01
    corpus = {
        "bitflip_crc.log": bytes(flipped),
        # The next record's length prefix itself is cut short.
        "truncated_length.log": open_rec + delta_a[:2],
        # A second OPEN mid-log: replay must stop before it and keep the
        # trustworthy OPEN + first-delta prefix.
        "duplicate_open.log": open_rec + delta_a + open_rec + delta_b,
        # Not a log at all; must be left untouched and unadopted.
        "garbage_header.log": b"this is not a session log format",
        # Zero records: nothing to adopt.
        "empty.log": b"",
        # Length prefix claims ~2 GiB; the sanity cap rejects it.
        "huge_length.log": struct.pack("<II", 0x7FFFFFFF, 0) + b"\x02abc",
        # Structurally valid records, but the first is not an OPEN.
        "not_open_first.log": delta_a + open_rec,
        # Positive control: checkpointed log with a post-snapshot delta.
        "snapshot_ok.log": (
            open_rec + record(SNAPSHOT, "R(a)* R(b)") + record(DELTA, "+ R(c)*")
        ),
    }
    for name, data in sorted(corpus.items()):
        with open(os.path.join(out_dir, name), "wb") as f:
            f.write(data)
        print(f"{name}: {len(data)} bytes")


if __name__ == "__main__":
    main()
