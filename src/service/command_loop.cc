#include "service/command_loop.h"

#include <cctype>
#include <cstdlib>
#include <istream>
#include <ostream>

#include "query/parser.h"

namespace shapcq {

namespace {

// Splits off the first whitespace-delimited token; *rest keeps everything
// after the separating whitespace (itself trimmed of leading whitespace).
std::string TakeToken(const std::string& text, std::string* rest) {
  size_t start = 0;
  while (start < text.size() &&
         std::isspace(static_cast<unsigned char>(text[start]))) {
    ++start;
  }
  size_t end = start;
  while (end < text.size() &&
         !std::isspace(static_cast<unsigned char>(text[end]))) {
    ++end;
  }
  size_t next = end;
  while (next < text.size() &&
         std::isspace(static_cast<unsigned char>(text[next]))) {
    ++next;
  }
  *rest = text.substr(next);
  return text.substr(start, end - start);
}

bool ParseSize(const std::string& token, size_t* out) {
  if (token.empty() || token[0] == '-') return false;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size()) return false;
  *out = static_cast<size_t>(value);
  return true;
}

}  // namespace

CommandLoop::CommandLoop(const CommandLoopOptions& options)
    : registry_(options.registry), options_(options) {}

void CommandLoop::ExecuteLine(const std::string& line, std::string* out) {
  size_t start = line.find_first_not_of(" \t\r");
  if (start == std::string::npos || line[start] == '#') return;
  size_t end = line.find_last_not_of(" \t\r");
  const std::string trimmed = line.substr(start, end - start + 1);
  if (options_.echo_commands) *out += "> " + trimmed + "\n";

  auto fail = [this, out](const std::string& message) {
    *out += "error: " + message + "\n";
    ++error_count_;
  };

  std::string rest;
  const std::string command = TakeToken(trimmed, &rest);

  if (command == "OPEN") {
    std::string query_text;
    const std::string id = TakeToken(rest, &query_text);
    if (id.empty() || query_text.empty()) {
      return fail("usage: OPEN <session> <query-rule>");
    }
    auto query = ParseCQ(query_text);
    if (!query.ok()) return fail("open " + id + ": " + query.error());
    auto opened = registry_.Open(id, query.value());
    if (!opened.ok()) return fail("open " + id + ": " + opened.error());
    *out += "ok open " + id + "\n";
    return;
  }

  if (command == "DELTA") {
    std::string mutation_text;
    const std::string id = TakeToken(rest, &mutation_text);
    if (id.empty() || mutation_text.empty()) {
      return fail("usage: DELTA <session> +|- <fact-literal>");
    }
    auto mutation = ParseMutationLine(mutation_text);
    if (!mutation.ok()) return fail("delta " + id + ": " + mutation.error());
    auto applied = registry_.ApplyMutation(id, mutation.value());
    if (!applied.ok()) return fail("delta " + id + ": " + applied.error());
    const Database* db = registry_.FindDatabase(id);
    *out += "ok delta " + id + " facts=" + std::to_string(db->fact_count()) +
            " endo=" + std::to_string(db->endogenous_count()) + "\n";
    return;
  }

  if (command == "REPORT") {
    std::string args;
    const std::string id = TakeToken(rest, &args);
    if (id.empty()) {
      return fail("usage: REPORT <session> [top_k] [--threads N]");
    }
    ReportOptions options;
    options.num_threads = options_.default_threads;
    bool top_k_seen = false;
    while (!args.empty()) {
      std::string next;
      const std::string token = TakeToken(args, &next);
      if (token == "--threads") {
        std::string after;
        const std::string value = TakeToken(next, &after);
        if (!ParseSize(value, &options.num_threads)) {
          return fail("report " + id + ": bad --threads value '" + value +
                      "'");
        }
        args = after;
      } else if (!top_k_seen && ParseSize(token, &options.top_k)) {
        top_k_seen = true;
        args = next;
      } else {
        return fail("report " + id + ": unexpected argument '" + token +
                    "'");
      }
    }
    auto report = registry_.Report(id, options);
    if (!report.ok()) return fail("report " + id + ": " + report.error());
    const Database* db = registry_.FindDatabase(id);
    *out += "report " + id + " rows=" +
            std::to_string(report.value().rows.size()) +
            " endo=" + std::to_string(db->endogenous_count()) + "\n";
    *out += RenderReport(report.value(), *db);
    *out += "end report " + id + "\n";
    return;
  }

  if (command == "STATS") {
    std::string after;
    const std::string id = TakeToken(rest, &after);
    if (!after.empty()) return fail("usage: STATS [<session>]");
    if (id.empty()) {
      const RegistryStats stats = registry_.stats();
      *out += "stats sessions=" + std::to_string(stats.open_sessions) +
              " resident=" + std::to_string(stats.resident_engines) +
              " hits=" + std::to_string(stats.report_hits) +
              " cached=" + std::to_string(stats.report_cache_hits) +
              " misses=" + std::to_string(stats.report_misses) +
              " evictions=" + std::to_string(stats.evictions) +
              " builds=" + std::to_string(stats.engine_builds) + "\n";
      return;
    }
    auto stats = registry_.Stats(id);
    if (!stats.ok()) return fail("stats " + id + ": " + stats.error());
    const SessionStats& s = stats.value();
    *out += "stats " + id + " facts=" + std::to_string(s.fact_count) +
            " endo=" + std::to_string(s.endo_count) +
            " deltas=" + std::to_string(s.deltas_applied) +
            " reports=" + std::to_string(s.reports_served) +
            " builds=" + std::to_string(s.engine_builds) +
            " resident=" + (s.engine_resident ? "yes" : "no") + "\n";
    return;
  }

  if (command == "CLOSE") {
    std::string after;
    const std::string id = TakeToken(rest, &after);
    if (id.empty() || !after.empty()) return fail("usage: CLOSE <session>");
    auto closed = registry_.Close(id);
    if (!closed.ok()) return fail("close " + id + ": " + closed.error());
    *out += "ok close " + id + "\n";
    return;
  }

  fail("unknown command '" + command +
       "' (expected OPEN, DELTA, REPORT, STATS or CLOSE)");
}

int CommandLoop::Run(std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    std::string output;
    ExecuteLine(line, &output);
    out << output;
    out.flush();  // interactive clients see each command's output promptly
  }
  return error_count_ == 0 ? 0 : 1;
}

}  // namespace shapcq
