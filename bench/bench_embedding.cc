// E14 — Lemma B.4: the hardness embedding, run as an experiment. For each
// non-hierarchical query shape, random base instances of the matching
// q_RST-variant are embedded and Shapley values of all endogenous facts are
// compared across the embedding (they must be identical). Also exercises
// the Lemma B.1 reversal and Lemma B.2 complement identities.

#include <cstdio>

#include "core/brute_force.h"
#include "query/parser.h"
#include "reductions/embed.h"
#include "reductions/iscount.h"
#include "util/random.h"

namespace {

using namespace shapcq;

Database RandomBase(Rng* rng, double endo_bias) {
  Database db;
  for (int a = 0; a < 2; ++a) {
    db.AddFact("R", {V("eL" + std::to_string(a))}, rng->Bernoulli(endo_bias));
  }
  for (int b = 0; b < 2; ++b) {
    db.AddFact("T", {V("eR" + std::to_string(b))}, rng->Bernoulli(endo_bias));
  }
  db.DeclareRelation("S", 2);
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      if (rng->Bernoulli(0.6)) {
        db.AddExo("S", {V("eL" + std::to_string(a)),
                        V("eR" + std::to_string(b))});
      }
    }
  }
  return db;
}

}  // namespace

int main() {
  std::printf("E14: Lemma B.4 embeddings preserve Shapley values\n\n");
  std::printf("%-52s %-12s %8s %9s\n", "target query", "base", "facts",
              "preserved");
  Rng rng(2718);
  const char* kQueries[] = {
      "q() :- R(x), S(x,y), T(y)",
      "q() :- not R(x), S(x,y), not T(y)",
      "q() :- R(x), S(x,y), not T(y)",
      "q2() :- Stud(x), not TA(x), Reg(x,y), not Course(y)",
      "q() :- A(x), B(x,y), C(y), D(x,y)",
      "q() :- A(x), B(x,y), not C(y), not E(x)",
  };
  const char* kBaseNames[] = {"q_RST", "q_negRSnegT", "q_RnegST", "q_RSnegT"};
  for (const char* text : kQueries) {
    const CQ q = MustParseCQ(text);
    auto plan = PlanEmbedding(q);
    const CQ base_query = BaseQueryOf(plan.value().base);
    int facts_checked = 0;
    bool all = true;
    for (int trial = 0; trial < 4; ++trial) {
      Database base_db = RandomBase(&rng, 0.8);
      Database embedded = EmbedDatabase(q, plan.value(), base_db);
      for (FactId f : base_db.endogenous_facts()) {
        const FactId mapped =
            MapEmbeddedFact(base_db, f, q, plan.value(), embedded);
        all &= ShapleyBruteForce(base_query, base_db, f) ==
               ShapleyBruteForce(q, embedded, mapped);
        ++facts_checked;
      }
    }
    std::printf("%-52s %-12s %8d %9s\n", text,
                kBaseNames[static_cast<int>(plan.value().base)],
                facts_checked, all ? "yes" : "NO");
  }

  std::printf("\nLemma B.1 (reversal) and B.2 (complement) identities:\n");
  int checked = 0;
  bool b1 = true, b2 = true;
  for (int trial = 0; trial < 6; ++trial) {
    Database db = RandomBase(&rng, 1.0);
    Database complemented = ComplementSWithinRT(db);
    for (FactId f : db.endogenous_facts()) {
      b1 &= ShapleyBruteForce(QRst(), db, f) ==
            -ShapleyBruteForce(QNegRSNegT(), db, f);
      const FactId mapped = complemented.FindFact(
          db.schema().name(db.relation_of(f)), db.tuple_of(f));
      b2 &= ShapleyBruteForce(QRst(), db, f) ==
            ShapleyBruteForce(QRNegSt(), complemented, mapped);
      ++checked;
    }
  }
  std::printf("  B.1: Shapley(D,q_RST,f) == -Shapley(D,q_negRSnegT,f): %s "
              "(%d facts)\n", b1 ? "yes" : "NO", checked);
  std::printf("  B.2: Shapley(D,q_RST,f) == Shapley(D',q_RnegST,f):    %s "
              "(%d facts)\n", b2 ? "yes" : "NO", checked);
  return (b1 && b2) ? 0 : 1;
}
