// ExoProb: Theorem 4.10's tractable side. Evaluation of a self-join-free CQ¬
// without a non-hierarchical path over a tuple-independent database with
// deterministic relations, by running the ExoShap transformations (with
// deterministic relations in the role of exogenous ones) and then lifted
// inference on the resulting hierarchical query.

#ifndef SHAPCQ_PROBDB_EXOPROB_H_
#define SHAPCQ_PROBDB_EXOPROB_H_

#include "probdb/prob_database.h"
#include "query/analysis.h"
#include "query/cq.h"
#include "util/result.h"

namespace shapcq {

/// P(D ⊨ q) in polynomial time for queries without a non-hierarchical path
/// w.r.t. the all-deterministic relations `deterministic`.
Result<double> ExoProbProbability(const CQ& q, const ProbDatabase& pdb,
                                  const ExoRelations& deterministic);

}  // namespace shapcq

#endif  // SHAPCQ_PROBDB_EXOPROB_H_
