// E7 — why additive ≠ multiplicative under negation: on the gap family the
// value is nonzero but 2^-Θ(n); a sampler must see at least one nonzero
// marginal permutation to even report a nonzero estimate. This bench
// measures the fraction of sampling runs that detect nonzero-ness as n
// grows — it collapses to 0 exponentially fast, while for the running
// example (a "large" value) it is always 1.

#include <cstdio>

#include "core/monte_carlo.h"
#include "datasets/university.h"
#include "reductions/gap.h"

int main() {
  using namespace shapcq;
  const CQ q = GapQuery();
  const size_t samples = 5000;
  const int runs = 40;

  std::printf("E7: fraction of %d runs (%zu samples each) whose estimate is "
              "nonzero\n\n", runs, samples);
  std::printf("%20s %14s %18s\n", "instance", "exact value",
              "nonzero detected");
  {
    UniversityDb u = BuildUniversityDb();
    int detected = 0;
    for (int run = 0; run < runs; ++run) {
      Rng rng(run + 1);
      if (ShapleyMonteCarlo(UniversityQ1(), u.db, u.ft1, samples, &rng) !=
          0.0) {
        ++detected;
      }
    }
    std::printf("%20s %14s %17.0f%%\n", "q1 / TA(Adam)", "-3/28",
                100.0 * detected / runs);
  }
  for (int n : {1, 2, 3, 4, 5, 6, 8, 10}) {
    GapInstance gap = BuildGapFamily(n);
    int detected = 0;
    for (int run = 0; run < runs; ++run) {
      Rng rng(100 * n + run);
      if (ShapleyMonteCarlo(q, gap.db, gap.f, samples, &rng) != 0.0) {
        ++detected;
      }
    }
    std::printf("%19s%d %14.3e %17.0f%%\n", "gap family n=", n,
                GapTheoreticalShapley(n).ToDouble(),
                100.0 * detected / runs);
  }
  std::printf("\nshape: detection probability ~ samples * n!n!/(2n+1)! — "
              "exponentially\nvanishing, so a multiplicative FPRAS cannot be "
              "built from sampling.\nSection 5.2 shows the deeper obstacle: "
              "deciding nonzero-ness is\nNP-complete for q_RST¬R "
              "(Corollary 5.6).\n");
  return 0;
}
