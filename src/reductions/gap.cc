#include "reductions/gap.h"

#include <set>
#include <string>

#include "eval/homomorphism.h"
#include "eval/join.h"
#include "query/analysis.h"
#include "query/parser.h"
#include "util/check.h"
#include "util/combinatorics.h"

namespace shapcq {

CQ GapQuery() { return MustParseCQ("qGap() :- R(x), S(x,y), not R(y)"); }

GapInstance BuildGapFamily(int n) {
  SHAPCQ_CHECK(n >= 1);
  GapInstance out;
  Database& db = out.db;
  auto cx = [](int i) { return V("gx" + std::to_string(i)); };
  auto cy = [](int i) { return V("gy" + std::to_string(i)); };
  for (int i = 0; i <= 2 * n; ++i) db.AddExo("S", {cx(i), cy(i)});
  for (int i = 1; i <= n; ++i) {
    db.AddExo("R", {cx(i)});
    db.AddEndo("R", {cy(i)});
  }
  out.f = db.AddEndo("R", {cx(0)});
  for (int i = n + 1; i <= 2 * n; ++i) db.AddEndo("R", {cx(i)});
  return out;
}

Rational GapTheoreticalShapley(int n) {
  SHAPCQ_CHECK(n >= 1);
  const BigInt numerator = Combinatorics::Factorial(static_cast<size_t>(n)) *
                           Combinatorics::Factorial(static_cast<size_t>(n));
  return Rational(numerator,
                  Combinatorics::Factorial(static_cast<size_t>(2 * n + 1)));
}

namespace {

// A standalone fact as (relation name, tuple).
struct LooseFact {
  std::string relation;
  Tuple tuple;
};

// The canonical database of q's positive atoms: each variable frozen to a
// fresh constant.
std::vector<LooseFact> CanonicalFacts(const CQ& q) {
  std::vector<Value> frozen(q.var_count());
  for (size_t v = 0; v < q.var_count(); ++v) {
    frozen[v] = ValueDictionary::Global().Fresh("frz_" + q.var_name(
                                                    static_cast<VarId>(v)));
  }
  std::vector<LooseFact> facts;
  std::set<std::pair<std::string, Tuple>> seen;
  for (const Atom& atom : q.atoms()) {
    if (atom.negated) continue;
    Tuple tuple(atom.terms.size());
    for (size_t i = 0; i < atom.terms.size(); ++i) {
      tuple[i] = atom.terms[i].IsConst()
                     ? atom.terms[i].constant
                     : frozen[static_cast<size_t>(atom.terms[i].var)];
    }
    if (seen.insert({atom.relation, tuple}).second) {
      facts.push_back({atom.relation, std::move(tuple)});
    }
  }
  return facts;
}

Database FromLooseFacts(const std::vector<LooseFact>& facts) {
  Database db;
  for (const LooseFact& fact : facts) db.AddExo(fact.relation, fact.tuple);
  return db;
}

// Renames every constant c of `facts` to a copy-local fresh constant.
std::vector<LooseFact> RenameToCopy(const std::vector<LooseFact>& facts,
                                    int copy) {
  std::vector<LooseFact> renamed;
  ValueDictionary& dict = ValueDictionary::Global();
  for (const LooseFact& fact : facts) {
    Tuple tuple(fact.tuple.size());
    for (size_t i = 0; i < fact.tuple.size(); ++i) {
      tuple[i] =
          dict.Intern("cp" + std::to_string(copy) + "_" +
                      dict.Name(fact.tuple[i]));
    }
    renamed.push_back({fact.relation, std::move(tuple)});
  }
  return renamed;
}

bool SameFact(const LooseFact& a, const LooseFact& b) {
  return a.relation == b.relation && a.tuple == b.tuple;
}

}  // namespace

Result<GapInstance> BuildGenericGapFamily(const CQ& q, int n) {
  SHAPCQ_CHECK(n >= 1);
  if (HasConstants(q)) {
    return Result<GapInstance>::Error("Theorem 5.1 requires no constants");
  }
  if (!q.HasNegation()) {
    return Result<GapInstance>::Error(
        "Theorem 5.1 requires at least one negated atom");
  }
  if (!IsPositivelyConnected(q)) {
    return Result<GapInstance>::Error(
        "Theorem 5.1 requires a positively connected query");
  }
  if (!IsSafe(q)) {
    return Result<GapInstance>::Error("Theorem 5.1 requires safe negation");
  }

  // Minimal satisfying database: the canonical database, greedily shrunk.
  std::vector<LooseFact> minimal = CanonicalFacts(q);
  {
    Database check = FromLooseFacts(minimal);
    if (!EvalBooleanAllFacts(q, check)) {
      return Result<GapInstance>::Error(
          "canonical database does not satisfy q; the generic construction "
          "needs a satisfiability witness");
    }
    for (size_t i = 0; i < minimal.size();) {
      std::vector<LooseFact> without = minimal;
      without.erase(without.begin() + static_cast<ptrdiff_t>(i));
      Database candidate = FromLooseFacts(without);
      if (EvalBooleanAllFacts(q, candidate)) {
        minimal = std::move(without);
      } else {
        ++i;
      }
    }
  }
  // Enabler gadget: (minimal \ {enabler_fact}) ⊭ q, minimal ⊨ q.
  const LooseFact enabler_fact = minimal.front();

  // Breaker gadget: add facts to negated relations over the minimal
  // database's domain until q flips to false; the last added fact breaks it.
  std::vector<LooseFact> breaker = minimal;
  LooseFact breaker_fact;
  {
    Database base = FromLooseFacts(breaker);
    const std::vector<Value> domain = base.ActiveDomain();
    std::set<std::string> negated_relations;
    for (const Atom& atom : q.atoms()) {
      if (atom.negated) negated_relations.insert(atom.relation);
    }
    bool broken = false;
    for (const std::string& relation : negated_relations) {
      // Arity from the query atom (the relation may be absent from base).
      size_t query_arity = 0;
      for (const Atom& atom : q.atoms()) {
        if (atom.relation == relation) query_arity = atom.arity();
      }
      for (Tuple& tuple : CartesianPower(domain, query_arity)) {
        bool exists = false;
        for (const LooseFact& fact : breaker) {
          if (fact.relation == relation && fact.tuple == tuple) exists = true;
        }
        if (exists) continue;
        breaker.push_back({relation, tuple});
        Database candidate = FromLooseFacts(breaker);
        if (!EvalBooleanAllFacts(q, candidate)) {
          breaker_fact = {relation, std::move(tuple)};
          broken = true;
          break;
        }
      }
      if (broken) break;
    }
    if (!broken) {
      return Result<GapInstance>::Error(
          "could not break satisfaction by saturating negated relations");
    }
  }

  // Assemble: breaker copies 1..n, enabler copies 0 and n+1..2n, domains
  // disjoint by renaming; only the distinguished facts are endogenous.
  GapInstance out;
  Database& db = out.db;
  auto add_copy = [&](const std::vector<LooseFact>& facts,
                      const LooseFact& special, int copy) -> FactId {
    FactId special_id = kNoFact;
    const std::vector<LooseFact> renamed = RenameToCopy(facts, copy);
    const std::vector<LooseFact> special_renamed =
        RenameToCopy({special}, copy);
    for (const LooseFact& fact : renamed) {
      const bool is_special = SameFact(fact, special_renamed[0]);
      const FactId id = db.AddFact(fact.relation, fact.tuple, is_special);
      if (is_special) special_id = id;
    }
    SHAPCQ_CHECK(special_id != kNoFact);
    return special_id;
  };

  out.f = add_copy(minimal, enabler_fact, 0);
  for (int i = 1; i <= n; ++i) add_copy(breaker, breaker_fact, i);
  for (int i = n + 1; i <= 2 * n; ++i) add_copy(minimal, enabler_fact, i);
  return Result<GapInstance>::Ok(std::move(out));
}

}  // namespace shapcq
