// The introduction's comparison, made concrete: Shapley value vs causal
// responsibility (Meliou et al.) vs causal effect (Salimi et al.; the
// Banzhaf value for Boolean queries) on the running example. All three
// agree on the *direction* of a fact's influence, but only the Shapley
// value distributes the answer (sums to q(D) − q(Dx)) — the axiomatic
// reason the paper adopts it.
//
//   $ ./example_measures_comparison

#include <cstdio>

#include "shapcq.h"
#include "core/measures.h"
#include "core/report.h"
#include "datasets/university.h"

int main() {
  using namespace shapcq;
  UniversityDb u = BuildUniversityDb();
  const CQ q1 = UniversityQ1();
  std::printf("query: %s\n\n", q1.ToString().c_str());

  std::printf("%-22s %10s %14s %16s\n", "fact", "Shapley", "causal effect",
              "responsibility");
  Rational shapley_sum(0), effect_sum(0);
  for (FactId f : u.db.endogenous_facts()) {
    const Rational shapley = ShapleyViaCountSat(q1, u.db, f).value();
    const Rational effect = CausalEffectViaCountSat(q1, u.db, f).value();
    const Rational responsibility = ResponsibilityBruteForce(q1, u.db, f);
    shapley_sum += shapley;
    effect_sum += effect;
    std::printf("%-22s %10s %14s %16s\n", u.db.FactToString(f).c_str(),
                shapley.ToString().c_str(), effect.ToString().c_str(),
                responsibility.ToString().c_str());
  }
  std::printf("%-22s %10s %14s %16s\n", "sum", shapley_sum.ToString().c_str(),
              effect_sum.ToString().c_str(), "-");
  std::printf("\nOnly the Shapley column sums to q(D) - q(Dx) = 1 "
              "(efficiency), so it is the\nonly measure that reads as a "
              "share of the answer. Responsibility collapses\nAdam's two "
              "registrations and Ben's one towards coarse 1/(1+k) levels, "
              "and\nthe causal effect assigns Caroline's two courses 15/64 "
              "each — 30/64 jointly,\nmore than her answer-winning role "
              "supports.\n\n");

  // The report API wraps engine selection + ranking.
  auto report = BuildAttributionReport(q1, u.db, {});
  std::printf("%s", RenderReport(report.value(), u.db).c_str());
  return 0;
}
