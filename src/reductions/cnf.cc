#include "reductions/cnf.h"

#include "util/check.h"

namespace shapcq {

bool CnfFormula::Eval(const std::vector<bool>& assignment) const {
  SHAPCQ_CHECK(assignment.size() == static_cast<size_t>(num_vars));
  for (const Clause& clause : clauses) {
    bool satisfied = false;
    for (const Literal& literal : clause.literals) {
      if (assignment[static_cast<size_t>(literal.var)] == literal.positive) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

bool CnfFormula::SatisfiableBruteForce() const {
  SHAPCQ_CHECK_MSG(num_vars <= 24, "brute-force SAT beyond 2^24 is a bug");
  std::vector<bool> assignment(static_cast<size_t>(num_vars), false);
  const uint64_t total = uint64_t{1} << num_vars;
  for (uint64_t mask = 0; mask < total; ++mask) {
    for (int v = 0; v < num_vars; ++v) {
      assignment[static_cast<size_t>(v)] = (mask >> v) & 1;
    }
    if (Eval(assignment)) return true;
  }
  return false;
}

std::string CnfFormula::ToString() const {
  std::string out;
  for (size_t c = 0; c < clauses.size(); ++c) {
    if (c > 0) out += " & ";
    out += "(";
    for (size_t l = 0; l < clauses[c].literals.size(); ++l) {
      if (l > 0) out += " | ";
      const Literal& literal = clauses[c].literals[l];
      if (!literal.positive) out += "~";
      out += "x";
      out += std::to_string(literal.var);
    }
    out += ")";
  }
  return out;
}

bool Is224Form(const CnfFormula& formula) {
  for (const Clause& clause : formula.clauses) {
    size_t positives = 0, negatives = 0;
    for (const Literal& literal : clause.literals) {
      (literal.positive ? positives : negatives) += 1;
    }
    const bool two_pos = positives == 2 && negatives == 0;
    const bool two_neg = positives == 0 && negatives == 2;
    const bool four_mixed = positives == 2 && negatives == 2;
    if (!two_pos && !two_neg && !four_mixed) return false;
  }
  return true;
}

bool Is3CnfForm(const CnfFormula& formula) {
  for (const Clause& clause : formula.clauses) {
    if (clause.literals.size() != 3) return false;
  }
  return true;
}

CnfFormula Random3Cnf(int num_vars, int num_clauses, Rng* rng) {
  SHAPCQ_CHECK(num_vars >= 3);
  CnfFormula formula;
  formula.num_vars = num_vars;
  for (int c = 0; c < num_clauses; ++c) {
    Clause clause;
    // Three distinct variables.
    std::vector<int> vars;
    while (vars.size() < 3) {
      int candidate = static_cast<int>(
          rng->UniformInt(static_cast<uint64_t>(num_vars)));
      bool duplicate = false;
      for (int v : vars) duplicate |= (v == candidate);
      if (!duplicate) vars.push_back(candidate);
    }
    for (int v : vars) {
      clause.literals.push_back(Literal{v, rng->Bernoulli(0.5)});
    }
    formula.clauses.push_back(std::move(clause));
  }
  return formula;
}

CnfFormula Random224Cnf(int num_vars, int num_clauses, Rng* rng) {
  SHAPCQ_CHECK(num_vars >= 4 && num_clauses >= 1);
  CnfFormula formula;
  formula.num_vars = num_vars;
  auto pick_distinct = [&](size_t count) {
    std::vector<int> vars;
    while (vars.size() < count) {
      int candidate = static_cast<int>(
          rng->UniformInt(static_cast<uint64_t>(num_vars)));
      bool duplicate = false;
      for (int v : vars) duplicate |= (v == candidate);
      if (!duplicate) vars.push_back(candidate);
    }
    return vars;
  };
  for (int c = 0; c < num_clauses; ++c) {
    Clause clause;
    // First clause is forced all-positive so the instance is in the
    // non-trivial regime of Proposition 5.5.
    const uint64_t shape = c == 0 ? 0 : rng->UniformInt(3);
    if (shape == 0) {
      for (int v : pick_distinct(2)) clause.literals.push_back({v, true});
    } else if (shape == 1) {
      for (int v : pick_distinct(2)) clause.literals.push_back({v, false});
    } else {
      std::vector<int> vars = pick_distinct(4);
      clause.literals.push_back({vars[0], true});
      clause.literals.push_back({vars[1], true});
      clause.literals.push_back({vars[2], false});
      clause.literals.push_back({vars[3], false});
    }
    formula.clauses.push_back(std::move(clause));
  }
  return formula;
}

}  // namespace shapcq
