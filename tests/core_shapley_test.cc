// Exact Shapley computation: the paper's Example 2.3 values, the efficiency
// property, and randomized agreement between the polynomial engine and the
// exponential reference.

#include "core/shapley.h"

#include <gtest/gtest.h>

#include <tuple>

#include "core/brute_force.h"
#include "datasets/synthetic.h"
#include "datasets/university.h"
#include "eval/homomorphism.h"
#include "query/parser.h"
#include "util/random.h"

namespace shapcq {
namespace {

TEST(ShapleyTest, Example23ExactValues) {
  UniversityDb u = BuildUniversityDb();
  const CQ q1 = UniversityQ1();
  const std::vector<Rational> expected = UniversityQ1PaperValues();
  const std::vector<FactId> facts = {u.ft1, u.ft2, u.ft3, u.fr1,
                                     u.fr2, u.fr3, u.fr4, u.fr5};
  for (size_t i = 0; i < facts.size(); ++i) {
    auto value = ShapleyViaCountSat(q1, u.db, facts[i]);
    ASSERT_TRUE(value.ok()) << value.error();
    EXPECT_EQ(value.value(), expected[i])
        << u.db.FactToString(facts[i]) << " got " << value.value().ToString();
  }
}

TEST(ShapleyTest, Example23MatchesBruteForce) {
  UniversityDb u = BuildUniversityDb();
  const CQ q1 = UniversityQ1();
  for (FactId f : u.db.endogenous_facts()) {
    EXPECT_EQ(ShapleyViaCountSat(q1, u.db, f).value(),
              ShapleyBruteForce(q1, u.db, f))
        << u.db.FactToString(f);
  }
}

TEST(ShapleyTest, SignsFollowPolarity) {
  // TA facts only hurt q1 (≤ 0); Reg facts only help (≥ 0) — the polarity
  // observation of the introduction.
  UniversityDb u = BuildUniversityDb();
  const CQ q1 = UniversityQ1();
  auto values = ShapleyAllViaCountSat(q1, u.db).value();
  EXPECT_LE(values[u.db.endo_index(u.ft1)], Rational(0));
  EXPECT_LE(values[u.db.endo_index(u.ft2)], Rational(0));
  EXPECT_GE(values[u.db.endo_index(u.fr1)], Rational(0));
  EXPECT_GE(values[u.db.endo_index(u.fr4)], Rational(0));
}

TEST(ShapleyTest, MoreRegistrationsMoreNegativeImpact) {
  // Example 2.3: |Shapley(ft1)| > |Shapley(ft2)| because Adam is registered
  // to more courses than Ben.
  UniversityDb u = BuildUniversityDb();
  auto values = ShapleyAllViaCountSat(UniversityQ1(), u.db).value();
  EXPECT_GT(values[u.db.endo_index(u.ft1)].Abs(),
            values[u.db.endo_index(u.ft2)].Abs());
}

TEST(ShapleyTest, RejectsExogenousFact) {
  UniversityDb u = BuildUniversityDb();
  FactId stud = u.db.FindFact("Stud", {V("Adam")});
  ASSERT_NE(stud, kNoFact);
  EXPECT_FALSE(ShapleyViaCountSat(UniversityQ1(), u.db, stud).ok());
}

TEST(ShapleyTest, RejectsNonHierarchical) {
  UniversityDb u = BuildUniversityDb();
  EXPECT_FALSE(ShapleyViaCountSat(UniversityQ2(), u.db, u.ft1).ok());
}

TEST(ShapleyTest, DispatcherUsesExoShapAndBruteForce) {
  UniversityDb u = BuildUniversityDb();
  // q2 + exogenous Stud/Course: ExoShap path.
  const CQ q2 = UniversityQ2();
  for (FactId f : {u.ft1, u.fr3}) {
    EXPECT_EQ(ShapleyExact(q2, u.db, f, {"Stud", "Course"}),
              ShapleyBruteForce(q2, u.db, f))
        << u.db.FactToString(f);
  }
  // q2 with no exogenous knowledge: brute-force fallback, still correct.
  EXPECT_EQ(ShapleyExact(q2, u.db, u.ft1), ShapleyBruteForce(q2, u.db, u.ft1));
}

TEST(ShapleyFromSatCountsTest, HandAssembled) {
  // n = 2, f's partner fact alone satisfies nothing; with f the query always
  // holds: Shapley(f) = Σ_k k!(1-k)!/2! ((1) - (0)) over k=0,1 = 1.
  CountVector with_f = CountVector::All(1);
  CountVector without_f = CountVector::Zero(1);
  EXPECT_EQ(ShapleyFromSatCounts(with_f, without_f, 2), Rational(1));
  // Reversal gives -1.
  EXPECT_EQ(ShapleyFromSatCounts(without_f, with_f, 2), Rational(-1));
  // Identical counts give 0.
  EXPECT_EQ(ShapleyFromSatCounts(with_f, with_f, 2), Rational(0));
}

// ---------------------------------------------------------------------------
// Randomized sweeps.
// ---------------------------------------------------------------------------

using ShapleySweepParam = std::tuple<const char*, int>;

class ShapleySweep : public ::testing::TestWithParam<ShapleySweepParam> {};

TEST_P(ShapleySweep, CountingEngineMatchesBruteForce) {
  const CQ q = MustParseCQ(std::get<0>(GetParam()));
  Rng rng(static_cast<uint64_t>(std::get<1>(GetParam())) * 104729 + 5);
  SyntheticOptions options;
  options.domain_size = 3;
  options.facts_per_relation = 3;
  const Database db = RandomDatabaseForQuery(q, {}, options, &rng);
  for (FactId f : db.endogenous_facts()) {
    auto fast = ShapleyViaCountSat(q, db, f);
    ASSERT_TRUE(fast.ok()) << fast.error();
    EXPECT_EQ(fast.value(), ShapleyBruteForce(q, db, f))
        << "fact " << db.FactToString(f) << " in " << db.ToString();
  }
}

TEST_P(ShapleySweep, EfficiencySumsToQueryDelta) {
  const CQ q = MustParseCQ(std::get<0>(GetParam()));
  Rng rng(static_cast<uint64_t>(std::get<1>(GetParam())) * 31337 + 99);
  SyntheticOptions options;
  options.domain_size = 3;
  options.facts_per_relation = 4;
  const Database db = RandomDatabaseForQuery(q, {}, options, &rng);
  auto values = ShapleyAllViaCountSat(q, db);
  ASSERT_TRUE(values.ok()) << values.error();
  Rational sum(0);
  for (const Rational& value : values.value()) sum += value;
  const int delta = (EvalBoolean(q, db, db.FullWorld()) ? 1 : 0) -
                    (EvalBoolean(q, db, db.EmptyWorld()) ? 1 : 0);
  EXPECT_EQ(sum, Rational(delta)) << db.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    HierarchicalShapes, ShapleySweep,
    ::testing::Combine(
        ::testing::Values("q() :- R(x)",
                          "q() :- R(x), not S(x)",
                          "q1() :- Stud(x), not TA(x), Reg(x,y)",
                          "q() :- R(x,y), S(x,y), T(x)",
                          "q() :- R(x), S(y)",
                          "q() :- R(x,y), not S(x)"),
        ::testing::Range(0, 5)));

}  // namespace
}  // namespace shapcq
