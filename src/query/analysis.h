// Static analysis of CQ¬s: the structural notions driving both dichotomies.
//
//  * safety, self-join-freeness, hierarchy, non-hierarchical triplets
//    (Section 2 / Theorem 3.1),
//  * Gaifman graph, exogenous-atom graph, non-hierarchical paths
//    (Section 4 / Theorem 4.3),
//  * polarity consistency and positive connectivity (Section 5).

#ifndef SHAPCQ_QUERY_ANALYSIS_H_
#define SHAPCQ_QUERY_ANALYSIS_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "query/cq.h"
#include "query/ucq.h"

namespace shapcq {

/// A set of relation names declared to contain only exogenous facts
/// (the set X of Section 4).
using ExoRelations = std::set<std::string>;

/// For each variable id, the indices of atoms using it (the paper's A_x).
std::vector<std::vector<size_t>> AtomsOfVars(const CQ& q);

/// Safe negation: every variable of a negated atom occurs in a positive atom,
/// and every head variable occurs in a positive atom.
bool IsSafe(const CQ& q);

/// True if no two atoms share a relation symbol.
bool IsSelfJoinFree(const CQ& q);

/// Hierarchical (over all atoms, any polarity): for all variables x, y,
/// A_x ⊆ A_y, A_y ⊆ A_x, or A_x ∩ A_y = ∅.
bool IsHierarchical(const CQ& q);

/// Witness of non-hierarchy: variables x, y and atoms with
/// x ∈ α_x \ α_y, y ∈ α_y \ α_x, {x,y} ⊆ α_xy.
struct NonHierarchicalTriplet {
  size_t alpha_x;
  size_t alpha_xy;
  size_t alpha_y;
  VarId x;
  VarId y;
};

/// Any non-hierarchical triplet, or nullopt when hierarchical.
std::optional<NonHierarchicalTriplet> FindNonHierarchicalTriplet(const CQ& q);

/// A triplet with the polarity property of Lemma B.4: if two of its atoms
/// are negative, the negative ones are α_x and α_y (never α_xy together with
/// one endpoint). Exists for every safe non-hierarchical CQ¬.
std::optional<NonHierarchicalTriplet> FindReductionTriplet(const CQ& q);

/// Gaifman graph adjacency: vars adjacent iff they co-occur in some atom.
std::vector<std::vector<bool>> GaifmanAdjacency(const CQ& q);

/// True if every atom over a relation in `exo` — an "exogenous atom".
bool IsExogenousAtom(const CQ& q, size_t atom_index, const ExoRelations& exo);

/// Variables occurring only in exogenous atoms (Varsx(q)).
std::vector<VarId> ExogenousVars(const CQ& q, const ExoRelations& exo);

/// Connected components of the exogenous-atom graph gx(q): vertices are
/// exogenous atoms, edges join atoms sharing an exogenous variable.
std::vector<std::vector<size_t>> ExogenousAtomComponents(
    const CQ& q, const ExoRelations& exo);

/// Witness of a non-hierarchical path (Section 4.1): atoms α_x, α_y over
/// non-exogenous relations, x ∈ α_x \ α_y, y ∈ α_y \ α_x, and a path from x
/// to y in the Gaifman graph after deleting (Vars(α_x) ∪ Vars(α_y)) \ {x,y}.
struct NonHierarchicalPath {
  size_t alpha_x;
  size_t alpha_y;
  VarId x;
  VarId y;
  std::vector<VarId> path;  // x = path.front(), y = path.back()
};

/// Any non-hierarchical path w.r.t. exogenous relations `exo`, or nullopt.
std::optional<NonHierarchicalPath> FindNonHierarchicalPath(
    const CQ& q, const ExoRelations& exo);

/// A relation symbol is polarity consistent if it occurs only positively or
/// only negatively in the query.
bool IsRelationPolarityConsistent(const CQ& q, const std::string& relation);
bool IsRelationPolarityConsistent(const UCQ& q, const std::string& relation);

/// The whole query is polarity consistent if every relation symbol is.
bool IsPolarityConsistent(const CQ& q);
bool IsPolarityConsistent(const UCQ& q);

/// Positively connected: all variables of q are connected in the Gaifman
/// graph restricted to positive atoms (precondition of Theorem 5.1).
bool IsPositivelyConnected(const CQ& q);

/// True if some atom of q contains a constant term.
bool HasConstants(const CQ& q);

/// Connected components of atoms under variable sharing; ground atoms (no
/// variables) each form their own component. Components partition atom
/// indices.
std::vector<std::vector<size_t>> AtomComponents(const CQ& q);

/// A variable occurring in every atom of q, or nullopt. For connected
/// hierarchical queries with at least one variable, a root always exists.
std::optional<VarId> FindRootVariable(const CQ& q);

}  // namespace shapcq

#endif  // SHAPCQ_QUERY_ANALYSIS_H_
