// Relation complements over the active domain.
//
// Several constructions in the paper replace a relation R^D by its complement
// R̄^D: every tuple over Dom(D)^arity(R) not in R^D (proof of Lemma 3.3, the
// first step of ExoShap, and the hardness reduction of Theorem 4.3).

#ifndef SHAPCQ_EVAL_COMPLEMENT_H_
#define SHAPCQ_EVAL_COMPLEMENT_H_

#include <string>
#include <vector>

#include "db/database.h"

namespace shapcq {

/// Tuples of Dom(D)^arity not present in `relation` of db. The relation must
/// be declared (possibly empty). `domain` defaults to the active domain of
/// db when empty.
std::vector<Tuple> ComplementRelation(const Database& db,
                                      const std::string& relation,
                                      std::vector<Value> domain = {});

}  // namespace shapcq

#endif  // SHAPCQ_EVAL_COMPLEMENT_H_
