// Arbitrary-precision signed integers.
//
// Shapley values over databases are ratios of sums of factorials; with a few
// hundred endogenous facts those factorials have thousands of bits, so exact
// computation requires big integers. This is a self-contained sign-magnitude
// implementation with 32-bit limbs (64-bit intermediates), schoolbook
// multiplication and shift-subtract division — ample for the sizes this
// library handles (|Dn| up to a few hundred). Single-limb operands (the
// overwhelmingly common case early in a convolution cascade) take dedicated
// fast paths, and the compound operators accumulate in place.

#ifndef SHAPCQ_UTIL_BIGINT_H_
#define SHAPCQ_UTIL_BIGINT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace shapcq {

/// Arbitrary-precision signed integer (sign-magnitude, 32-bit limbs).
class BigInt {
 public:
  /// Zero.
  BigInt() : sign_(0) {}
  /// From a machine integer.
  BigInt(int64_t value);  // NOLINT(google-explicit-constructor): numeric glue
  /// Parses a decimal string with optional leading '-'. Aborts on bad input;
  /// use TryParse for untrusted input.
  static BigInt FromString(const std::string& text);
  /// Parses a decimal string; returns false (leaving *out untouched) on
  /// malformed input.
  static bool TryParse(const std::string& text, BigInt* out);

  /// -1, 0 or +1.
  int sign() const { return sign_; }
  bool IsZero() const { return sign_ == 0; }
  bool IsNegative() const { return sign_ < 0; }
  bool IsOne() const { return sign_ == 1 && limbs_.size() == 1 && limbs_[0] == 1; }

  /// Number of significant bits of the magnitude (0 for zero).
  size_t BitLength() const;

  /// Approximate memory footprint in bytes (object plus owned limb storage).
  /// Feeds the byte-budgeted LRU accounting of the serving layer; an
  /// estimate, not an allocator audit.
  size_t ApproxMemoryBytes() const {
    return sizeof(BigInt) + limbs_.capacity() * sizeof(uint32_t);
  }

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;
  /// Truncated division (C++ semantics: quotient rounds toward zero).
  BigInt operator/(const BigInt& other) const;
  /// Remainder with the sign of the dividend (C++ semantics).
  BigInt operator%(const BigInt& other) const;

  /// True in-place accumulation: reuses this value's limb storage instead of
  /// allocating a temporary and copy-assigning it back. The hot loops of the
  /// CntSat convolutions run entirely on += / AddProductOf.
  BigInt& operator+=(const BigInt& other) { return AccumulateSigned(other, 1); }
  BigInt& operator-=(const BigInt& other) { return AccumulateSigned(other, -1); }
  BigInt& operator*=(const BigInt& other);
  BigInt& operator/=(const BigInt& other) { return *this = *this / other; }

  /// Fused multiply-accumulate: *this += a * b. When the product's sign
  /// cannot flip the accumulator's (the invariant throughout count-vector
  /// arithmetic, where everything is non-negative), the partial products are
  /// accumulated directly into this value's limbs — no temporary BigInt is
  /// materialized. Falls back to *this += a * b otherwise.
  BigInt& AddProductOf(const BigInt& a, const BigInt& b);

  /// Computes quotient and remainder in one pass. Aborts if divisor is zero.
  static void DivMod(const BigInt& dividend, const BigInt& divisor,
                     BigInt* quotient, BigInt* remainder);

  /// Greatest common divisor of |a| and |b| (non-negative).
  static BigInt Gcd(const BigInt& a, const BigInt& b);

  /// this * 2^bits.
  BigInt ShiftLeft(size_t bits) const;

  bool operator==(const BigInt& other) const;
  bool operator!=(const BigInt& other) const { return !(*this == other); }
  bool operator<(const BigInt& other) const;
  bool operator<=(const BigInt& other) const { return !(other < *this); }
  bool operator>(const BigInt& other) const { return other < *this; }
  bool operator>=(const BigInt& other) const { return !(*this < other); }

  /// Decimal representation.
  std::string ToString() const;
  /// Nearest double (may overflow to +/-inf for huge values).
  double ToDouble() const;
  /// Value as int64 if it fits; aborts otherwise.
  int64_t ToInt64() const;
  /// True if the value fits in int64.
  bool FitsInt64() const;

 private:
  // Magnitude comparison: -1, 0, +1 for |*this| vs |other|.
  static int CompareMagnitude(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b);
  static std::vector<uint32_t> AddMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<uint32_t> SubMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  static std::vector<uint32_t> MulMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  // Divides magnitude by a small divisor in place; returns the remainder.
  static uint32_t DivModSmallInPlace(std::vector<uint32_t>* limbs,
                                     uint32_t divisor);
  // *this += other with other's sign multiplied by sign_multiplier (+1 or
  // -1); the shared body of += and -=.
  BigInt& AccumulateSigned(const BigInt& other, int sign_multiplier);
  void Normalize();

  int sign_;                     // -1, 0, +1
  std::vector<uint32_t> limbs_;  // little-endian magnitude; empty iff zero
};

std::ostream& operator<<(std::ostream& os, const BigInt& value);

}  // namespace shapcq

#endif  // SHAPCQ_UTIL_BIGINT_H_
