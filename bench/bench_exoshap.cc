// E4 — Theorem 4.3's tractable side, measured: ExoShap on the Example 4.1
// citations workload. Polynomial growth with database size, agreement with
// brute force where brute force is feasible, and the per-step output sizes
// of the Figure 3 pipeline (the cost of faithful Cartesian padding —
// DESIGN.md ablation note 3).

#include <chrono>
#include <cstdio>

#include "core/brute_force.h"
#include "core/exoshap.h"
#include "datasets/citations.h"
#include "util/random.h"

int main() {
  using namespace shapcq;
  using Clock = std::chrono::steady_clock;
  const CQ q = CitationsQuery();

  std::printf("E4: ExoShap on q() :- Author(x,y), Pub(x,z), Citations(z,w)\n");
  std::printf("    exogenous {Pub, Citations} (Example 4.1)\n\n");
  std::printf("%-6s %-6s %-10s %-12s %-12s %-7s\n", "|Dn|", "|D|",
              "ExoShap(ms)", "brute(ms)", "padded facts", "match");

  for (int researchers : {6, 10, 14, 18, 24, 32}) {
    Rng rng(1000 + static_cast<uint64_t>(researchers));
    Database db = BuildRandomCitationsDb(researchers, researchers, 0.3, 0.5,
                                         &rng);
    const FactId f = db.endogenous_facts()[0];

    auto t0 = Clock::now();
    const Rational fast =
        ExoShapShapley(q, db, CitationsExoRelations(), f).value();
    auto t1 = Clock::now();
    const double fast_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    // Padded-relation size: the price of the faithful Lemma 4.8 padding.
    auto transformed = ExoShapTransform(q, db, CitationsExoRelations());
    size_t padded = 0;
    for (const Atom& atom : transformed.value().query.atoms()) {
      if (transformed.value().exo.count(atom.relation)) {
        padded += transformed.value().db.facts_of(atom.relation).size();
      }
    }

    double slow_ms = -1;
    bool match = true;
    if (db.endogenous_count() <= 18) {
      auto t2 = Clock::now();
      const Rational slow = ShapleyBruteForce(q, db, f);
      auto t3 = Clock::now();
      slow_ms = std::chrono::duration<double, std::milli>(t3 - t2).count();
      match = slow == fast;
    }
    if (slow_ms < 0) {
      std::printf("%-6zu %-6zu %-10.2f %-12s %-12zu %-7s\n",
                  db.endogenous_count(), db.fact_count(), fast_ms, "(skip)",
                  padded, "-");
    } else {
      std::printf("%-6zu %-6zu %-10.2f %-12.2f %-12zu %-7s\n",
                  db.endogenous_count(), db.fact_count(), fast_ms, slow_ms,
                  padded, match ? "yes" : "NO");
    }
  }
  std::printf("\nshape: ExoShap stays in the milliseconds as |Dn| grows; the "
              "brute-force\ncolumn doubles per endogenous fact, as Theorem "
              "3.1 predicts for the\nquery without the exogenous "
              "assumption.\n");
  return 0;
}
