// Process-wide fault injection: the chaos layer behind the durability and
// transport test harnesses. One injector, armed once from the SHAPCQ_FAULT
// environment variable (or programmatically in-process), consulted at
// explicit fault points in the WAL writer and the socket transport.
//
// SHAPCQ_FAULT=<point>:<n> arms one fault. Crash points (the PR 6 WAL
// harness — immediate _exit, no flushing, equivalent to kill -9, exit code
// kFaultExitCode so harnesses can tell an injected crash from an ordinary
// failure):
//
//   mid_record:<n>    write only half of the n-th append's bytes, then die
//   after_append:<n>  write the full n-th record, die before any fsync
//   before_fsync:<n>  die at the first moment the fsync policy would sync
//                     a file whose latest append was the n-th
//
// Socket points (this PR's chaos layer — no crashing; they perturb the
// transport exactly the way a hostile network would, so the server's retry
// and reap paths get exercised deterministically):
//
//   net_short_write:<n>       the next n sends transmit at most one byte
//                             each (the send loop must iterate; responses
//                             stay byte-identical)
//   net_drop_mid_response:<n> the n-th send fails hard after transmitting
//                             half its bytes (peer vanished mid-response;
//                             the connection must die cleanly without
//                             taking neighbors down)
//   net_eintr_recv:<n>        the next n receives fail with EINTR before
//                             reading (a signal storm; the read loop must
//                             retry without dropping or duplicating bytes)
//
// Crash-point bookkeeping is intentionally unsynchronized (the WAL writer
// already serializes appends per log, and the harness arms exactly one
// fault per process). The net counters are atomics: connection threads hit
// them concurrently.

#ifndef SHAPCQ_UTIL_FAULT_INJECTOR_H_
#define SHAPCQ_UTIL_FAULT_INJECTOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace shapcq {

class FaultInjector {
 public:
  enum class Point { kNone, kMidRecord, kAfterAppend, kBeforeFsync };
  enum class NetPoint { kNone, kShortWrite, kDropMidResponse, kEintrRecv };
  static constexpr int kFaultExitCode = 86;

  /// The process-wide injector, configured once from SHAPCQ_FAULT.
  static FaultInjector& Global();

  /// Called by the WAL writer once per append, before writing; returns the
  /// crash point to honor for this append (kNone almost always).
  Point OnAppend();
  /// True if a sync about to happen should die first (the before_fsync
  /// point, armed by the append counter when the record was written).
  bool ShouldCrashBeforeFsync();

  /// Dies now: _exit(kFaultExitCode), no stream flushing, no atexit.
  [[noreturn]] static void Crash();

  /// Test hook: (re)arm a crash point programmatically.
  void Arm(Point point, uint64_t nth_append);
  /// Test hook: (re)arm a socket point programmatically. For kShortWrite
  /// and kEintrRecv `n` is a budget (that many faulted calls); for
  /// kDropMidResponse it is the 1-based ordinal of the send to kill.
  void ArmNet(NetPoint point, uint64_t n);

  /// Consulted by the transport before each send of `len` bytes: 0 = send
  /// everything, otherwise the byte cap for this call (consumes one
  /// short-write fault).
  size_t NetSendCap(size_t len);
  /// Consulted by the transport before each send: true = this send is the
  /// armed mid-response drop (transmit half, then fail hard).
  bool NetDropThisSend();
  /// Consulted by the transport before each receive: true = fail this call
  /// with EINTR instead of reading (consumes one fault).
  bool NetEintrThisRecv();

 private:
  FaultInjector();

  Point point_ = Point::kNone;
  uint64_t trigger_append_ = 0;  // 1-based append ordinal; 0 = disarmed
  uint64_t appends_seen_ = 0;
  bool fsync_armed_ = false;  // set when the trigger append was written

  std::atomic<uint64_t> net_short_writes_{0};  // remaining capped sends
  std::atomic<uint64_t> net_drop_send_{0};     // 1-based ordinal; 0 = off
  std::atomic<uint64_t> net_sends_seen_{0};
  std::atomic<uint64_t> net_eintr_recvs_{0};   // remaining EINTR receives
};

}  // namespace shapcq

#endif  // SHAPCQ_UTIL_FAULT_INJECTOR_H_
