// Factorials, binomials, count vectors, the rational linear solver, and the
// deterministic RNG.

#include <gtest/gtest.h>

#include "util/combinatorics.h"
#include "util/count_vector.h"
#include "util/gaussian.h"
#include "util/random.h"

namespace shapcq {
namespace {

TEST(CombinatoricsTest, FactorialValues) {
  EXPECT_EQ(Combinatorics::Factorial(0).ToInt64(), 1);
  EXPECT_EQ(Combinatorics::Factorial(1).ToInt64(), 1);
  EXPECT_EQ(Combinatorics::Factorial(5).ToInt64(), 120);
  EXPECT_EQ(Combinatorics::Factorial(12).ToInt64(), 479001600);
  EXPECT_EQ(Combinatorics::Factorial(20).ToString(), "2432902008176640000");
}

TEST(CombinatoricsTest, BinomialValues) {
  EXPECT_EQ(Combinatorics::Binomial(0, 0).ToInt64(), 1);
  EXPECT_EQ(Combinatorics::Binomial(5, 2).ToInt64(), 10);
  EXPECT_EQ(Combinatorics::Binomial(10, 0).ToInt64(), 1);
  EXPECT_EQ(Combinatorics::Binomial(10, 10).ToInt64(), 1);
  EXPECT_EQ(Combinatorics::Binomial(10, 11).ToInt64(), 0);
  EXPECT_EQ(Combinatorics::Binomial(52, 5).ToInt64(), 2598960);
}

TEST(CombinatoricsTest, BinomialRowMatchesPointwise) {
  for (size_t n : {0u, 1u, 5u, 17u}) {
    const auto row = Combinatorics::BinomialRow(n);
    ASSERT_EQ(row.size(), n + 1);
    for (size_t k = 0; k <= n; ++k) {
      EXPECT_EQ(row[k], Combinatorics::Binomial(n, k)) << n << " " << k;
    }
  }
}

TEST(CombinatoricsTest, PascalIdentity) {
  for (size_t n = 1; n < 20; ++n) {
    for (size_t k = 1; k <= n; ++k) {
      EXPECT_EQ(Combinatorics::Binomial(n, k),
                Combinatorics::Binomial(n - 1, k - 1) +
                    Combinatorics::Binomial(n - 1, k));
    }
  }
}

TEST(CountVectorTest, DefaultIsConvolutionIdentity) {
  CountVector identity;
  CountVector all = CountVector::All(3);
  EXPECT_EQ(identity.Convolve(all), all);
  EXPECT_EQ(all.Convolve(identity), all);
}

TEST(CountVectorTest, AllCountsBinomials) {
  CountVector all = CountVector::All(4);
  EXPECT_EQ(all.universe_size(), 4u);
  EXPECT_EQ(all.at(0).ToInt64(), 1);
  EXPECT_EQ(all.at(2).ToInt64(), 6);
  EXPECT_EQ(all.at(4).ToInt64(), 1);
  EXPECT_EQ(all.Total().ToInt64(), 16);
}

TEST(CountVectorTest, ZeroAndComplement) {
  CountVector zero = CountVector::Zero(3);
  EXPECT_EQ(zero.Total().ToInt64(), 0);
  EXPECT_EQ(zero.ComplementAgainstAll(), CountVector::All(3));
  EXPECT_EQ(CountVector::All(3).ComplementAgainstAll(), CountVector::Zero(3));
}

TEST(CountVectorTest, ConvolveIsVandermonde) {
  // All(a) ⊛ All(b) == All(a+b) — the Vandermonde identity.
  EXPECT_EQ(CountVector::All(3).Convolve(CountVector::All(5)),
            CountVector::All(8));
}

TEST(CountVectorTest, ConvolveCountsPairs) {
  // Universe {x} with property "contains x" ⊛ universe {y} with property
  // "contains y": only {x,y} qualifies.
  CountVector pick_x = CountVector::FromCounts({BigInt(0), BigInt(1)});
  CountVector pick_y = CountVector::FromCounts({BigInt(0), BigInt(1)});
  CountVector both = pick_x.Convolve(pick_y);
  EXPECT_EQ(both.at(0).ToInt64(), 0);
  EXPECT_EQ(both.at(1).ToInt64(), 0);
  EXPECT_EQ(both.at(2).ToInt64(), 1);
}

TEST(CountVectorTest, AddSubtract) {
  CountVector all = CountVector::All(2);
  EXPECT_EQ(all - all, CountVector::Zero(2));
  EXPECT_EQ((all - all) + all, all);
}

TEST(GaussianTest, SolvesDiagonal) {
  RationalMatrix matrix = {{Rational(2), Rational(0)},
                           {Rational(0), Rational(4)}};
  std::vector<Rational> rhs = {Rational(6), Rational(8)};
  std::vector<Rational> solution;
  ASSERT_TRUE(SolveLinearSystem(matrix, rhs, &solution));
  EXPECT_EQ(solution[0], Rational(3));
  EXPECT_EQ(solution[1], Rational(2));
}

TEST(GaussianTest, SolvesWithPivoting) {
  RationalMatrix matrix = {{Rational(0), Rational(1)},
                           {Rational(1), Rational(1)}};
  std::vector<Rational> rhs = {Rational(5), Rational(7)};
  std::vector<Rational> solution;
  ASSERT_TRUE(SolveLinearSystem(matrix, rhs, &solution));
  EXPECT_EQ(solution[0], Rational(2));
  EXPECT_EQ(solution[1], Rational(5));
}

TEST(GaussianTest, DetectsSingular) {
  RationalMatrix matrix = {{Rational(1), Rational(2)},
                           {Rational(2), Rational(4)}};
  std::vector<Rational> rhs = {Rational(1), Rational(2)};
  std::vector<Rational> solution;
  EXPECT_FALSE(SolveLinearSystem(matrix, rhs, &solution));
  EXPECT_EQ(Determinant(matrix), Rational(0));
}

TEST(GaussianTest, ExactFractions) {
  RationalMatrix matrix = {{Rational::Of(1, 3), Rational::Of(1, 7)},
                           {Rational::Of(1, 2), Rational::Of(1, 5)}};
  std::vector<Rational> rhs = {Rational(1), Rational(1)};
  std::vector<Rational> solution;
  ASSERT_TRUE(SolveLinearSystem(matrix, rhs, &solution));
  // Verify by substitution, exactly.
  EXPECT_EQ(matrix[0][0] * solution[0] + matrix[0][1] * solution[1],
            Rational(1));
  EXPECT_EQ(matrix[1][0] * solution[0] + matrix[1][1] * solution[1],
            Rational(1));
}

TEST(GaussianTest, DeterminantOfVandermondeLikeSystem) {
  // The Lemma B.3 coefficient matrix for N = 2 must be non-singular.
  const int N = 2;
  RationalMatrix matrix;
  for (int r = 1; r <= N + 1; ++r) {
    std::vector<Rational> row;
    for (int k = 0; k <= N; ++k) {
      row.push_back(
          Rational(Combinatorics::Factorial(static_cast<size_t>(k)) *
                   Combinatorics::Factorial(static_cast<size_t>(N - k + r))));
    }
    matrix.push_back(row);
  }
  EXPECT_NE(Determinant(matrix), Rational(0));
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformIntInBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(7), 7u);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(2);
  std::vector<int> hits(5, 0);
  for (int i = 0; i < 5000; ++i) ++hits[rng.UniformInt(5)];
  for (int count : hits) EXPECT_GT(count, 700);  // ~1000 expected each
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(3);
  auto perm = rng.Permutation(20);
  std::vector<bool> seen(20, false);
  for (size_t index : perm) {
    ASSERT_LT(index, 20u);
    EXPECT_FALSE(seen[index]);
    seen[index] = true;
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(4);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

}  // namespace
}  // namespace shapcq
