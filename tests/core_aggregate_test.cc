// Aggregate Shapley (Section 3 Remarks): Count and Sum over CQ¬ answers via
// linearity, against the brute-force game.

#include "core/aggregate.h"

#include <gtest/gtest.h>

#include "datasets/exports.h"
#include "query/parser.h"
#include "util/random.h"

namespace shapcq {
namespace {

TEST(AggregateTest, CountValueOnWorlds) {
  Database db = BuildSmallExportDb();
  AggregateQuery agg = ExportCountAggregate();
  // Empty world: no endogenous Export facts, count 0.
  EXPECT_EQ(AggregateValue(agg, db, db.EmptyWorld()), Rational(0));
  // Full world: rice grows in JP and FR, so only cocoa->JP is an answer...
  // but Grows(JP,cocoa) is exogenous, blocking it: count 0.
  EXPECT_EQ(AggregateValue(agg, db, db.FullWorld()), Rational(0));
}

TEST(AggregateTest, CountShapleyMatchesBruteForce) {
  Database db = BuildSmallExportDb();
  AggregateQuery agg = ExportCountAggregate();
  for (FactId f : db.endogenous_facts()) {
    auto fast = ShapleyAggregate(agg, db, f, {"Farmer"});
    ASSERT_TRUE(fast.ok()) << fast.error();
    EXPECT_EQ(fast.value(), ShapleyAggregateBruteForce(agg, db, f))
        << db.FactToString(f);
  }
}

TEST(AggregateTest, SumOverProfits) {
  // The Remarks' example: Sum{ r | Export(p,c), ¬Grows(c,p), Profit(c,p,r) }.
  Database db;
  const Value rice = V("rice"), jp = V("JP"), fr = V("FR");
  db.AddEndo("Export", {rice, jp});
  db.AddEndo("Export", {rice, fr});
  db.AddEndo("Grows", {jp, rice});
  db.AddExo("Profit", {jp, rice, V(100)});
  db.AddExo("Profit", {fr, rice, V(40)});
  AggregateQuery agg;
  agg.cq = MustParseCQ("s(r) :- Export(p,c), not Grows(c,p), Profit(c,p,r)");
  agg.kind = AggregateQuery::Kind::kSum;
  agg.sum_position = 0;

  World world = db.FullWorld();
  // Grows(JP,rice) blocks the 100; only 40 counts.
  EXPECT_EQ(AggregateValue(agg, db, world), Rational(40));
  world[db.endo_index(db.FindFact("Grows", {jp, rice}))] = false;
  EXPECT_EQ(AggregateValue(agg, db, world), Rational(140));

  for (FactId f : db.endogenous_facts()) {
    auto fast = ShapleyAggregate(agg, db, f);
    ASSERT_TRUE(fast.ok()) << fast.error();
    EXPECT_EQ(fast.value(), ShapleyAggregateBruteForce(agg, db, f))
        << db.FactToString(f);
  }
}

TEST(AggregateTest, SumWeightsScaleValues) {
  // Two independent answers with weights 1 and 3: Shapley of each enabling
  // fact equals its own weight (no interaction).
  Database db;
  FactId fa = db.AddEndo("A", {V("w1"), V(1)});
  FactId fb = db.AddEndo("A", {V("w3"), V(3)});
  AggregateQuery agg;
  agg.cq = MustParseCQ("s(x, r) :- A(x, r)");
  agg.kind = AggregateQuery::Kind::kSum;
  agg.sum_position = 1;
  EXPECT_EQ(ShapleyAggregate(agg, db, fa).value(), Rational(1));
  EXPECT_EQ(ShapleyAggregate(agg, db, fb).value(), Rational(3));
}

TEST(AggregateTest, RandomizedCountAgainstBruteForce) {
  Rng rng(2024);
  for (int trial = 0; trial < 4; ++trial) {
    Database db = BuildRandomExportDb(/*farmers=*/2, /*products=*/2,
                                      /*countries=*/2, /*exports_each=*/2,
                                      /*grow_probability=*/0.4, &rng);
    if (db.endogenous_count() > 12) continue;
    AggregateQuery agg = ExportCountAggregate();
    for (FactId f : db.endogenous_facts()) {
      auto fast = ShapleyAggregate(agg, db, f, {"Farmer"});
      ASSERT_TRUE(fast.ok()) << fast.error();
      EXPECT_EQ(fast.value(), ShapleyAggregateBruteForce(agg, db, f))
          << "trial " << trial << " fact " << db.FactToString(f);
    }
  }
}

TEST(AggregateTest, EfficiencyForAggregates) {
  // Σ_f Shapley(D, agg, f) = agg(D) − agg(Dx).
  Database db = BuildSmallExportDb();
  AggregateQuery agg = ExportCountAggregate();
  Rational sum(0);
  for (FactId f : db.endogenous_facts()) {
    sum += ShapleyAggregate(agg, db, f, {"Farmer"}).value();
  }
  EXPECT_EQ(sum, AggregateValue(agg, db, db.FullWorld()) -
                     AggregateValue(agg, db, db.EmptyWorld()));
}

}  // namespace
}  // namespace shapcq
