// Probabilistic databases (Section 4.3 / Theorem 4.10): lifted inference vs
// world enumeration, ExoProb for deterministic relations, Monte Carlo.

#include <gtest/gtest.h>

#include <tuple>

#include "datasets/citations.h"
#include "datasets/synthetic.h"
#include "probdb/exoprob.h"
#include "probdb/lifted.h"
#include "probdb/prob_database.h"
#include "query/parser.h"
#include "util/random.h"

namespace shapcq {
namespace {

TEST(ProbDbTest, FactBookkeeping) {
  ProbDatabase pdb;
  FactId p = pdb.AddFact("R", {V("pb1")}, 0.4);
  FactId d = pdb.AddDeterministic("R", {V("pb2")});
  EXPECT_DOUBLE_EQ(pdb.probability(p), 0.4);
  EXPECT_DOUBLE_EQ(pdb.probability(d), 1.0);
  EXPECT_EQ(pdb.probabilistic_count(), 1u);
}

TEST(ProbDbTest, SingleFactProbability) {
  ProbDatabase pdb;
  pdb.AddFact("R", {V("pf1")}, 0.3);
  CQ q = MustParseCQ("q() :- R(x)");
  EXPECT_NEAR(LiftedProbability(q, pdb).value(), 0.3, 1e-12);
  EXPECT_NEAR(pdb.ProbabilityBruteForce(q), 0.3, 1e-12);
}

TEST(ProbDbTest, IndependentOrAndNegation) {
  ProbDatabase pdb;
  pdb.AddFact("R", {V("pi1")}, 0.5);
  pdb.AddFact("R", {V("pi2")}, 0.5);
  pdb.AddFact("S", {V("pi1")}, 0.25);
  // P(∃x R(x) ∧ ¬S(x)) — slice pi1: 0.5·0.75; slice pi2: 0.5·1.
  CQ q = MustParseCQ("q() :- R(x), not S(x)");
  const double expected = 1.0 - (1.0 - 0.5 * 0.75) * (1.0 - 0.5);
  EXPECT_NEAR(LiftedProbability(q, pdb).value(), expected, 1e-12);
  EXPECT_NEAR(pdb.ProbabilityBruteForce(q), expected, 1e-12);
}

TEST(ProbDbTest, DeterministicNegativeBlocksForever) {
  ProbDatabase pdb;
  pdb.AddFact("R", {V("pd1")}, 0.9);
  pdb.AddDeterministic("S", {V("pd1")});
  CQ q = MustParseCQ("q() :- R(x), not S(x)");
  EXPECT_NEAR(LiftedProbability(q, pdb).value(), 0.0, 1e-12);
}

TEST(ProbDbTest, RejectsNonHierarchical) {
  ProbDatabase pdb;
  pdb.AddFact("R", {V("ph1")}, 0.5);
  EXPECT_FALSE(LiftedProbability(
                   MustParseCQ("q() :- R(x), S(x,y), T(y)"), pdb)
                   .ok());
}

TEST(ProbDbTest, MonteCarloConverges) {
  ProbDatabase pdb;
  pdb.AddFact("R", {V("pm1")}, 0.5);
  pdb.AddFact("R", {V("pm2")}, 0.5);
  pdb.AddFact("S", {V("pm1")}, 0.25);
  CQ q = MustParseCQ("q() :- R(x), not S(x)");
  const double exact = LiftedProbability(q, pdb).value();
  EXPECT_NEAR(pdb.ProbabilityMonteCarlo(q, 40000, 5), exact, 0.02);
}

TEST(ProbDbTest, ExoProbCitations) {
  // Theorem 4.10: the citations query with deterministic Pub/Citations.
  ProbDatabase pdb;
  pdb.AddFact("Author", {V("Ada"), V("T1")}, 0.7);
  pdb.AddFact("Author", {V("Grace"), V("T2")}, 0.4);
  pdb.AddDeterministic("Pub", {V("Ada"), V("pp1")});
  pdb.AddDeterministic("Pub", {V("Grace"), V("pp2")});
  pdb.AddDeterministic("Citations", {V("pp1"), V("9")});
  const CQ q = CitationsQuery();
  auto lifted = ExoProbProbability(q, pdb, CitationsExoRelations());
  ASSERT_TRUE(lifted.ok()) << lifted.error();
  // Only Ada's paper is cited: P = P(Author(Ada)).
  EXPECT_NEAR(lifted.value(), 0.7, 1e-12);
  EXPECT_NEAR(pdb.ProbabilityBruteForce(q), 0.7, 1e-12);
}

TEST(ProbDbTest, ExoProbRejectsNonHierarchicalPath) {
  ProbDatabase pdb;
  pdb.AddFact("Author", {V("Ada"), V("T1")}, 0.7);
  pdb.AddDeterministic("Pub", {V("Ada"), V("pp1")});
  pdb.AddFact("Citations", {V("pp1"), V("9")}, 0.5);
  EXPECT_FALSE(ExoProbProbability(CitationsQuery(), pdb, {"Pub"}).ok());
}

// ---------------------------------------------------------------------------
// Randomized sweeps: lifted / ExoProb == world enumeration.
// ---------------------------------------------------------------------------

using ProbSweepParam = std::tuple<const char*, int>;

class LiftedSweep : public ::testing::TestWithParam<ProbSweepParam> {};

TEST_P(LiftedSweep, MatchesWorldEnumeration) {
  const CQ q = MustParseCQ(std::get<0>(GetParam()));
  Rng rng(static_cast<uint64_t>(std::get<1>(GetParam())) * 15485863 + 2);
  SyntheticOptions options;
  options.domain_size = 3;
  options.facts_per_relation = 3;
  ProbDatabase pdb = RandomProbDatabaseForQuery(q, {}, options, &rng);
  auto lifted = LiftedProbability(q, pdb);
  ASSERT_TRUE(lifted.ok()) << lifted.error();
  EXPECT_NEAR(lifted.value(), pdb.ProbabilityBruteForce(q), 1e-9)
      << q.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    HierarchicalShapes, LiftedSweep,
    ::testing::Combine(
        ::testing::Values("q() :- R(x)",
                          "q() :- R(x), not S(x)",
                          "q1() :- Stud(x), not TA(x), Reg(x,y)",
                          "q() :- R(x,y), S(x,y), T(x)",
                          "q() :- R(x), S(y)",
                          "q() :- E(x,x), not F(x)"),
        ::testing::Range(0, 5)));

class ExoProbSweep : public ::testing::TestWithParam<int> {};

TEST_P(ExoProbSweep, MatchesWorldEnumeration) {
  const CQ q = CitationsQuery();
  const ExoRelations det = CitationsExoRelations();
  Rng rng(static_cast<uint64_t>(GetParam()) * 49979687 + 8);
  SyntheticOptions options;
  options.domain_size = 3;
  options.facts_per_relation = 3;
  ProbDatabase pdb = RandomProbDatabaseForQuery(q, det, options, &rng);
  auto lifted = ExoProbProbability(q, pdb, det);
  ASSERT_TRUE(lifted.ok()) << lifted.error();
  EXPECT_NEAR(lifted.value(), pdb.ProbabilityBruteForce(q), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExoProbSweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace shapcq
