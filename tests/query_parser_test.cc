// Parser and CQ/UCQ representation.

#include "query/parser.h"

#include <gtest/gtest.h>

#include "query/analysis.h"

namespace shapcq {
namespace {

TEST(ParserTest, SimplePositiveQuery) {
  CQ q = MustParseCQ("q() :- R(x,y), S(y,z)");
  EXPECT_EQ(q.name(), "q");
  EXPECT_TRUE(q.IsBoolean());
  ASSERT_EQ(q.atom_count(), 2u);
  EXPECT_EQ(q.atom(0).relation, "R");
  EXPECT_EQ(q.atom(1).relation, "S");
  EXPECT_EQ(q.var_count(), 3u);
  EXPECT_FALSE(q.atom(0).negated);
  // y is shared.
  EXPECT_EQ(q.atom(0).terms[1].var, q.atom(1).terms[0].var);
}

TEST(ParserTest, NegationSpellings) {
  for (const char* text :
       {"q() :- R(x), not S(x)", "q() :- R(x), !S(x)", "q() :- R(x), \xC2\xACS(x)",
        "q() :- R(x), NOT S(x)"}) {
    CQ q = MustParseCQ(text);
    ASSERT_EQ(q.atom_count(), 2u) << text;
    EXPECT_FALSE(q.atom(0).negated) << text;
    EXPECT_TRUE(q.atom(1).negated) << text;
  }
}

TEST(ParserTest, Constants) {
  CQ q = MustParseCQ("q() :- Course(y,'CS'), Level(y, 3)");
  EXPECT_TRUE(q.atom(0).terms[1].IsConst());
  EXPECT_EQ(q.atom(0).terms[1].constant, V("CS"));
  EXPECT_TRUE(q.atom(1).terms[1].IsConst());
  EXPECT_EQ(q.atom(1).terms[1].constant, V("3"));
  EXPECT_EQ(q.var_count(), 1u);
}

TEST(ParserTest, HeadVariables) {
  CQ q = MustParseCQ("answers(x, z) :- R(x,y), S(y,z)");
  ASSERT_EQ(q.head().size(), 2u);
  EXPECT_EQ(q.var_name(q.head()[0]), "x");
  EXPECT_EQ(q.var_name(q.head()[1]), "z");
  EXPECT_FALSE(q.IsBoolean());
}

TEST(ParserTest, ZeroArityAtom) {
  CQ q = MustParseCQ("q() :- Flag(), R(x)");
  EXPECT_EQ(q.atom(0).arity(), 0u);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseCQ("").ok());
  EXPECT_FALSE(ParseCQ("q()").ok());
  EXPECT_FALSE(ParseCQ("q() :- ").ok());
  EXPECT_FALSE(ParseCQ("q() :- R(x").ok());
  EXPECT_FALSE(ParseCQ("q() :- R(x) S(y)").ok());
  EXPECT_FALSE(ParseCQ("q() :- R('unterminated)").ok());
  EXPECT_FALSE(ParseCQ("q(x,) :- R(x) extra").ok());
  EXPECT_FALSE(ParseCQ("q('c') :- R(x)").ok());  // constant in head
}

TEST(ParserTest, ToStringRoundTrip) {
  const char* text = "q2() :- Stud(x), not TA(x), Reg(x,y), not Course(y,'CS')";
  CQ q = MustParseCQ(text);
  CQ reparsed = MustParseCQ(q.ToString());
  EXPECT_EQ(q.ToString(), reparsed.ToString());
}

TEST(ParserTest, UcqOneRulePerLine) {
  UCQ ucq = MustParseUCQ(
      "q1() :- R(x)\n"
      "\n"
      "q2() :- S(x), not T(x)\n");
  ASSERT_EQ(ucq.size(), 2u);
  EXPECT_EQ(ucq.disjunct(0).name(), "q1");
  EXPECT_EQ(ucq.disjunct(1).name(), "q2");
}

TEST(ParserTest, UcqErrors) {
  EXPECT_FALSE(ParseUCQ("").ok());
  EXPECT_FALSE(ParseUCQ("q() :- R(x\nq() :- S(y)").ok());
}

TEST(CQTest, SubstituteRemovesVariable) {
  CQ q = MustParseCQ("q() :- R(x,y), S(y,x)");
  CQ grounded = q.Substitute(q.FindVar("x"), V("c1"));
  EXPECT_EQ(grounded.var_count(), 1u);
  EXPECT_TRUE(grounded.atom(0).terms[0].IsConst());
  EXPECT_EQ(grounded.atom(0).terms[0].constant, V("c1"));
  EXPECT_TRUE(grounded.atom(1).terms[1].IsConst());
  // y still shared between the two atoms.
  EXPECT_EQ(grounded.atom(0).terms[1].var, grounded.atom(1).terms[0].var);
}

TEST(CQTest, SubstituteDropsHeadVar) {
  CQ q = MustParseCQ("q(x,y) :- R(x,y)");
  CQ grounded = q.Substitute(q.FindVar("x"), V("c1"));
  ASSERT_EQ(grounded.head().size(), 1u);
  EXPECT_EQ(grounded.var_name(grounded.head()[0]), "y");
}

TEST(CQTest, RestrictKeepsSelectedAtoms) {
  CQ q = MustParseCQ("q() :- R(x,y), S(y,z), not T(z)");
  CQ sub = q.Restrict({1, 2});
  ASSERT_EQ(sub.atom_count(), 2u);
  EXPECT_EQ(sub.atom(0).relation, "S");
  EXPECT_EQ(sub.atom(1).relation, "T");
  EXPECT_TRUE(sub.atom(1).negated);
  EXPECT_EQ(sub.var_count(), 2u);  // y and z
}

TEST(CQTest, PositiveNegativePartition) {
  CQ q = MustParseCQ("q() :- R(x), not S(x), T(x), not U(x)");
  EXPECT_EQ(q.PositiveAtoms(), (std::vector<size_t>{0, 2}));
  EXPECT_EQ(q.NegativeAtoms(), (std::vector<size_t>{1, 3}));
  EXPECT_TRUE(q.HasNegation());
  EXPECT_FALSE(MustParseCQ("q() :- R(x)").HasNegation());
}

TEST(CQTest, UsedVarsIgnoresHeadOnly) {
  CQ q;
  q.GetOrAddVar("unused");
  q.AddPositive("R", {"x"});
  EXPECT_EQ(q.UsedVars().size(), 1u);
}

TEST(AtomTest, VariablesDeduplicated) {
  CQ q = MustParseCQ("q() :- R(x,y,x)");
  EXPECT_EQ(q.atom(0).Variables().size(), 2u);
  EXPECT_TRUE(q.atom(0).Uses(q.FindVar("x")));
  EXPECT_TRUE(q.atom(0).Uses(q.FindVar("y")));
}

}  // namespace
}  // namespace shapcq
