#include "db/value_dictionary.h"

#include "util/check.h"

namespace shapcq {

ValueDictionary& ValueDictionary::Global() {
  static ValueDictionary* dictionary = new ValueDictionary();
  return *dictionary;
}

Value ValueDictionary::Intern(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return Value{it->second};
  int32_t id = static_cast<int32_t>(names_.size());
  names_.push_back(name);
  index_.emplace(name, id);
  return Value{id};
}

Value ValueDictionary::Lookup(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? Value{-1} : Value{it->second};
}

Value ValueDictionary::Fresh(const std::string& prefix) {
  for (;;) {
    std::string candidate =
        prefix + "#" + std::to_string(fresh_counter_++);
    if (index_.find(candidate) == index_.end()) return Intern(candidate);
  }
}

Value ValueDictionary::Pair(Value a, Value b) {
  return Intern("<" + Name(a) + "," + Name(b) + ">");
}

const std::string& ValueDictionary::Name(Value value) const {
  SHAPCQ_CHECK_MSG(value.id >= 0 &&
                       static_cast<size_t>(value.id) < names_.size(),
                   "unknown Value id");
  return names_[static_cast<size_t>(value.id)];
}

Value V(const std::string& name) {
  return ValueDictionary::Global().Intern(name);
}

Value V(int64_t number) {
  return ValueDictionary::Global().Intern(std::to_string(number));
}

}  // namespace shapcq
