// Lifted (extensional) inference for hierarchical self-join-free CQ¬ over
// tuple-independent databases — the probabilistic mirror of CntSat, giving
// the PTIME side of the Fink–Olteanu dichotomy that Theorem 4.10 builds on.
//
//   disconnected subquery -> product of component probabilities
//   root variable         -> P = 1 − Π_a (1 − P_slice_a)
//   ground positive atom  -> p(fact) (0 if absent)
//   ground negative atom  -> 1 − p(fact) (1 if absent)

#ifndef SHAPCQ_PROBDB_LIFTED_H_
#define SHAPCQ_PROBDB_LIFTED_H_

#include "probdb/prob_database.h"
#include "query/cq.h"
#include "util/result.h"

namespace shapcq {

/// P(D ⊨ q) in polynomial time. Requires q safe, self-join-free and
/// hierarchical.
Result<double> LiftedProbability(const CQ& q, const ProbDatabase& pdb);

}  // namespace shapcq

#endif  // SHAPCQ_PROBDB_LIFTED_H_
