// Theorem B.5: the self-join collapse preserves Shapley values, extending
// hardness to queries like ¬Citizen(x), Married(x,y), ¬Citizen(y).

#include "reductions/selfjoin.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "query/analysis.h"
#include "reductions/iscount.h"
#include "util/random.h"

namespace shapcq {
namespace {

// Base instance with disjoint R/T domains and S ⊆ dom(R) × dom(T).
Database RandomDisjointBase(Rng* rng) {
  Database db;
  for (int a = 0; a < 2; ++a) {
    db.AddFact("R", {V("sjL" + std::to_string(a))}, rng->Bernoulli(0.8));
  }
  for (int b = 0; b < 2; ++b) {
    db.AddFact("T", {V("sjR" + std::to_string(b))}, rng->Bernoulli(0.8));
  }
  db.DeclareRelation("S", 2);
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      if (rng->Bernoulli(0.6)) {
        db.AddExo("S", {V("sjL" + std::to_string(a)),
                        V("sjR" + std::to_string(b))});
      }
    }
  }
  return db;
}

TEST(SelfJoinTest, QueriesHaveSelfJoins) {
  EXPECT_FALSE(IsSelfJoinFree(QSelfJoinPositive()));
  EXPECT_FALSE(IsSelfJoinFree(QSelfJoinNegative()));
  EXPECT_TRUE(IsPolarityConsistent(QSelfJoinPositive()));
  EXPECT_TRUE(IsPolarityConsistent(QSelfJoinNegative()));
}

TEST(SelfJoinTest, CollapseMergesRelations) {
  Rng rng(61);
  Database base = RandomDisjointBase(&rng);
  Database collapsed = CollapseRTIntoSelfJoin(base);
  EXPECT_EQ(collapsed.facts_of("U").size(),
            base.facts_of("R").size() + base.facts_of("T").size());
  EXPECT_EQ(collapsed.facts_of("M").size(), base.facts_of("S").size());
  EXPECT_EQ(collapsed.endogenous_count(), base.endogenous_count());
}

TEST(SelfJoinTest, PositiveCollapsePreservesShapley) {
  Rng rng(62);
  const CQ base_query = QRst();
  const CQ collapsed_query = QSelfJoinPositive();
  for (int trial = 0; trial < 8; ++trial) {
    Database base = RandomDisjointBase(&rng);
    Database collapsed = CollapseRTIntoSelfJoin(base);
    for (FactId f : base.endogenous_facts()) {
      const FactId mapped = MapCollapsedFact(base, f, collapsed);
      EXPECT_EQ(ShapleyBruteForce(base_query, base, f),
                ShapleyBruteForce(collapsed_query, collapsed, mapped))
          << base.FactToString(f) << " in " << base.ToString();
    }
  }
}

TEST(SelfJoinTest, NegativeCollapsePreservesShapley) {
  Rng rng(63);
  const CQ base_query = QNegRSNegT();
  const CQ collapsed_query = QSelfJoinNegative();
  for (int trial = 0; trial < 8; ++trial) {
    Database base = RandomDisjointBase(&rng);
    Database collapsed = CollapseRTIntoSelfJoin(base);
    for (FactId f : base.endogenous_facts()) {
      const FactId mapped = MapCollapsedFact(base, f, collapsed);
      EXPECT_EQ(ShapleyBruteForce(base_query, base, f),
                ShapleyBruteForce(collapsed_query, collapsed, mapped))
          << base.FactToString(f) << " in " << base.ToString();
    }
  }
}

}  // namespace
}  // namespace shapcq
