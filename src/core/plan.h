// Safe-plan compilation for hierarchical self-join-free CQ¬.
//
// The PTIME algorithms of this library (CntSat, lifted inference) both walk
// the same recursive structure: split independent components, project on a
// root variable, stop at ground atoms. This module reifies that structure
// as an explicit *safe plan* — the classic Dalvi–Suciu formulation — which
//  (a) makes the extensional evaluation inspectable (`ExplainPlan`), and
//  (b) provides an independently-structured third implementation of
//      probabilistic evaluation for differential testing.
//
// A query compiles to a safe plan iff it is hierarchical (for self-join-free
// safe CQ¬) — exactly the tractability frontier of Theorems 3.1/4.10.

#ifndef SHAPCQ_CORE_PLAN_H_
#define SHAPCQ_CORE_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "probdb/prob_database.h"
#include "query/cq.h"
#include "util/result.h"

namespace shapcq {

/// A node of a safe plan.
struct SafePlan {
  enum class Kind {
    kAtomLeaf,         // a single (possibly negated) ground-able atom
    kIndependentJoin,  // conjunction of variable-disjoint children
    kRootProject,      // ∃-projection of a root variable; data-dependent fanout
  };

  Kind kind = Kind::kAtomLeaf;
  /// The subquery this node evaluates (atoms reference `query`'s own ids).
  CQ query;
  /// For kRootProject: the projected (root) variable of `query`.
  VarId root = -1;
  /// For kIndependentJoin: one child per component; for kRootProject: the
  /// template child (its query is `query` with `root` still in place — the
  /// evaluator substitutes slice values at runtime).
  std::vector<std::unique_ptr<SafePlan>> children;
};

/// Compiles q into a safe plan. Fails iff q is unsafe, has self-joins, or
/// is not hierarchical (mirroring CntSat's scope).
Result<std::unique_ptr<SafePlan>> CompileSafePlan(const CQ& q);

/// Indented tree rendering, e.g.
///   join
///     project[x]
///       leaf: Stud(x)
std::string ExplainPlan(const SafePlan& plan);

/// P(D ⊨ q) evaluated by walking the compiled plan — an independent
/// implementation of LiftedProbability used for differential testing.
Result<double> PlanProbability(const CQ& q, const ProbDatabase& pdb);

}  // namespace shapcq

#endif  // SHAPCQ_CORE_PLAN_H_
