// Write-ahead session logs: the durability layer of the attribution server.
//
// One append-only file per session under a log directory. Each record is
//
//   [u32 length][u32 crc32c][u8 type][payload bytes ...]
//
// with both header words little-endian. `length` counts the type byte plus
// the payload; `crc32c` (Castagnoli polynomial) covers the same bytes. Three
// record types carry the whole session history as text the existing parsers
// already understand:
//
//   OPEN      the query rule, e.g. "q() :- Stud(x), not TA(x), Reg(x,y)"
//   DELTA     one mutation line, e.g. "+ Reg(Adam,OS)*" (ParseMutationLine)
//   SNAPSHOT  the live fact table, e.g. "Stud(Adam) TA(Adam)*" (a checkpoint:
//             replay restarts from here, earlier records are gone)
//
// Recovery reads the longest valid prefix of a log — a record whose header
// is short, whose length runs past EOF, or whose checksum mismatches ends
// the prefix — and truncates the torn tail in place so later appends start
// at a clean record boundary. A log whose first record is not a valid OPEN
// is ignored entirely (never half-adopted).
//
// Compaction (the SNAPSHOT command, or automatically every N deltas)
// rewrites the log as OPEN + SNAPSHOT of the current fact table via a
// temp-file rename, bounding replay time by the live table size instead of
// the delta history.
//
// Fault injection: SessionLogWriter consults the process-wide FaultInjector
// (util/fault_injector.h, armed via the SHAPCQ_FAULT environment variable)
// at three crash points per append — mid_record (deliberate partial write),
// after_append (record fully written, process dies before any fsync),
// before_fsync (dies at the moment the fsync policy would have synced). The
// same injector carries the socket chaos points; this header re-exports it
// so the PR 6 durability harnesses keep compiling unchanged.

#ifndef SHAPCQ_SERVICE_SESSION_LOG_H_
#define SHAPCQ_SERVICE_SESSION_LOG_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "db/database.h"
#include "util/fault_injector.h"
#include "util/result.h"

namespace shapcq {

class EngineRegistry;

/// CRC-32C (Castagnoli), the checksum guarding every log record. Software
/// slice-by-one; Crc32c("123456789") == 0xE3069283.
uint32_t Crc32c(const void* data, size_t size);

/// When a SessionLogWriter must sync appended records to stable storage.
enum class FsyncPolicy {
  kAlways,  ///< fsync after every record: survives OS crash per command
  kBatch,   ///< fsync at REPORT/SNAPSHOT/CLOSE/shutdown: bounded loss window
  kOff      ///< never fsync: survives process crash only (page cache)
};

/// Parses "always" / "batch" / "off".
Result<FsyncPolicy> ParseFsyncPolicy(const std::string& text);
const char* FsyncPolicyName(FsyncPolicy policy);

/// One decoded log record.
struct LogRecord {
  enum class Type : uint8_t { kOpen = 1, kDelta = 2, kSnapshot = 3 };
  Type type = Type::kOpen;
  std::string payload;
};

/// Result of reading one session log file.
struct LogReadResult {
  std::vector<LogRecord> records;  ///< the longest valid prefix, decoded
  size_t valid_bytes = 0;          ///< byte length of that prefix on disk
  bool tail_truncated = false;     ///< a torn/corrupt tail followed it
};

/// Decodes the longest valid record prefix of the file (missing file =>
/// error; empty file => zero records). Never modifies the file.
Result<LogReadResult> ReadSessionLog(const std::string& path);

/// Truncates the file to its valid prefix so future appends start at a
/// clean record boundary.
Result<bool> TruncateFile(const std::string& path, size_t valid_bytes);

/// Session ids are single protocol tokens but may still contain characters
/// that are unsafe in filenames ('/', '.', '%'); logs are named
/// "<escaped-id>.log" with %XX percent-encoding for anything outside
/// [A-Za-z0-9_-].
std::string EscapeSessionId(const std::string& session_id);
Result<std::string> UnescapeSessionId(const std::string& escaped);

/// Appends records to one session's log file. Move-only (owns the fd).
class SessionLogWriter {
 public:
  /// Creates or truncates the file (fresh session).
  static Result<SessionLogWriter> Create(const std::string& path,
                                         FsyncPolicy policy);
  /// Opens an existing file for appending at `resume_bytes` (a recovered
  /// session; the caller has already truncated any torn tail).
  static Result<SessionLogWriter> Resume(const std::string& path,
                                         FsyncPolicy policy,
                                         size_t resume_bytes);

  /// Empty writer (no file); exists for Result<SessionLogWriter>.
  SessionLogWriter() = default;
  SessionLogWriter(SessionLogWriter&& other) noexcept;
  SessionLogWriter& operator=(SessionLogWriter&& other) noexcept;
  SessionLogWriter(const SessionLogWriter&) = delete;
  SessionLogWriter& operator=(const SessionLogWriter&) = delete;
  ~SessionLogWriter();

  /// Encodes and appends one record, then syncs per the fsync policy.
  Result<bool> Append(LogRecord::Type type, const std::string& payload);

  /// Syncs buffered appends now (kBatch flush; no-op when clean).
  Result<bool> Sync();

  /// Bytes of encoded records appended (== file size while healthy).
  size_t log_bytes() const { return bytes_; }
  const std::string& path() const { return path_; }

 private:
  SessionLogWriter(int fd, std::string path, FsyncPolicy policy,
                   size_t bytes);
  int fd_ = -1;
  std::string path_;
  FsyncPolicy policy_ = FsyncPolicy::kBatch;
  size_t bytes_ = 0;
  bool dirty_ = false;  // appended since the last fsync
};

/// Per-session durability counters, surfaced by "STATS <session>".
struct SessionLogStats {
  size_t log_bytes = 0;
  size_t records_since_snapshot = 0;  ///< DELTA records after the last
                                      ///< checkpoint (the replay debt)
};

/// Owns every open session's log writer: the durability side of a
/// CommandLoop. Thread-safe: one internal mutex serializes the session
/// table and every append/sync, so connection threads of the socket server
/// can share one manager (per-session append order is additionally pinned
/// by the registry's stripe lock — see EngineRegistry::Mutate). Moves are
/// not thread-safe; move only before serving starts.
class SessionLogManager {
 public:
  /// Creates `log_dir` if needed.
  static Result<SessionLogManager> Open(const std::string& log_dir,
                                        FsyncPolicy policy,
                                        size_t snapshot_every);

  /// Empty manager (no directory); exists for Result<SessionLogManager>.
  SessionLogManager() = default;
  SessionLogManager(SessionLogManager&&) noexcept;
  SessionLogManager& operator=(SessionLogManager&&) noexcept;
  ~SessionLogManager();

  /// Replays every session log under log_dir into the registry: database
  /// rebuilt through the ParseMutationLine / ParseFactSpec paths, engines
  /// left to build lazily on the first REPORT. Torn tails are truncated;
  /// logs without a valid leading OPEN are skipped. Sessions recover in
  /// sorted id order (directory order is not deterministic). Returns the
  /// number of sessions recovered.
  Result<size_t> Recover(EngineRegistry* registry);

  /// Starts a fresh log for the session (OPEN record). Any stale file for
  /// the id is truncated.
  Result<bool> LogOpen(const std::string& session_id,
                       const std::string& query_text);

  /// Appends one DELTA record ("+ R(a)*" / "- R(a)"). Write-ahead: called
  /// before the mutation is applied to the registry.
  Result<bool> LogDelta(const std::string& session_id,
                        const std::string& mutation_text);

  /// Compacts the session's log to OPEN + SNAPSHOT of `db`'s live fact
  /// table (temp file + rename; the old log survives any crash before the
  /// rename commits). Resets records_since_snapshot.
  Result<bool> Compact(const std::string& session_id, const Database& db);

  /// Compacts iff the auto-snapshot threshold is armed and reached.
  /// Best-effort: a failed automatic compaction leaves the (still valid,
  /// just longer) log in place.
  void MaybeAutoCompact(const std::string& session_id, const Database& db);

  /// Removes the session's log (CLOSE: the stream ended, nothing to
  /// recover).
  void Drop(const std::string& session_id);

  /// Syncs every dirty log (kBatch flush points: REPORT, shutdown).
  Result<bool> SyncAll();

  /// Counters for the session; zeros if it has no log.
  SessionLogStats Stats(const std::string& session_id) const;
  /// Sum of log_bytes over all sessions.
  size_t TotalLogBytes() const;

  bool HasLog(const std::string& session_id) const;
  const std::string& log_dir() const { return log_dir_; }

 private:
  struct Entry {
    SessionLogWriter writer;
    std::string query_text;             // for the OPEN record of compactions
    size_t records_since_snapshot = 0;  // DELTAs since the last checkpoint
  };

  SessionLogManager(std::string log_dir, FsyncPolicy policy,
                    size_t snapshot_every);
  std::string PathFor(const std::string& session_id) const;
  Result<bool> CompactLocked(const std::string& session_id,
                             const Database& db);

  std::string log_dir_;
  FsyncPolicy policy_ = FsyncPolicy::kBatch;
  size_t snapshot_every_ = 0;
  mutable std::mutex mutex_;  // guards entries_ and every writer
  std::map<std::string, Entry> entries_;
};

}  // namespace shapcq

#endif  // SHAPCQ_SERVICE_SESSION_LOG_H_
