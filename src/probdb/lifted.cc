#include "probdb/lifted.h"

#include <map>
#include <optional>

#include "query/analysis.h"
#include "util/check.h"

namespace shapcq {

namespace {

struct ProbFact {
  Tuple tuple;
  double probability;
};

using AtomLists = std::vector<std::vector<ProbFact>>;

bool Matches(const Atom& atom, const Tuple& tuple) {
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    const Term& term = atom.terms[i];
    if (term.IsConst()) {
      if (!(term.constant == tuple[i])) return false;
    } else {
      for (size_t j = i + 1; j < atom.terms.size(); ++j) {
        if (atom.terms[j].IsVar() && atom.terms[j].var == term.var &&
            !(tuple[j] == tuple[i])) {
          return false;
        }
      }
    }
  }
  return true;
}

double GroundAtomProbability(const Atom& atom,
                             const std::vector<ProbFact>& list) {
  SHAPCQ_CHECK(list.size() <= 1);
  const double present = list.empty() ? 0.0 : list[0].probability;
  return atom.negated ? 1.0 - present : present;
}

double CoreProbability(const CQ& q, const AtomLists& lists) {
  const auto components = AtomComponents(q);
  if (components.size() > 1) {
    double product = 1.0;
    for (const auto& component : components) {
      CQ sub = q.Restrict(component);
      AtomLists sub_lists;
      for (size_t index : component) sub_lists.push_back(lists[index]);
      product *= CoreProbability(sub, sub_lists);
    }
    return product;
  }

  if (q.UsedVars().empty()) {
    SHAPCQ_CHECK(q.atom_count() == 1);
    return GroundAtomProbability(q.atom(0), lists[0]);
  }

  std::optional<VarId> root = FindRootVariable(q);
  SHAPCQ_CHECK_MSG(root.has_value(),
                   "connected hierarchical subquery lacks a root variable");

  std::vector<std::vector<size_t>> root_positions(q.atom_count());
  for (size_t i = 0; i < q.atom_count(); ++i) {
    const Atom& atom = q.atom(i);
    for (size_t pos = 0; pos < atom.terms.size(); ++pos) {
      if (atom.terms[pos].IsVar() && atom.terms[pos].var == *root) {
        root_positions[i].push_back(pos);
      }
    }
    SHAPCQ_CHECK(!root_positions[i].empty());
  }

  std::map<int32_t, AtomLists> slices;
  for (size_t i = 0; i < q.atom_count(); ++i) {
    for (const ProbFact& fact : lists[i]) {
      const Value value = fact.tuple[root_positions[i][0]];
      bool consistent = true;
      for (size_t pos : root_positions[i]) {
        if (!(fact.tuple[pos] == value)) consistent = false;
      }
      if (!consistent) continue;  // joins nothing, influences nothing
      auto [it, inserted] = slices.try_emplace(value.id);
      if (inserted) it->second.resize(q.atom_count());
      it->second[i].push_back(fact);
    }
  }

  double none_satisfied = 1.0;
  for (auto& [value_id, slice_lists] : slices) {
    CQ sliced = q.Substitute(*root, Value{value_id});
    none_satisfied *= 1.0 - CoreProbability(sliced, slice_lists);
  }
  return 1.0 - none_satisfied;
}

}  // namespace

Result<double> LiftedProbability(const CQ& q, const ProbDatabase& pdb) {
  if (!IsSafe(q)) {
    return Result<double>::Error("LiftedProbability requires safe negation");
  }
  if (!IsSelfJoinFree(q)) {
    return Result<double>::Error(
        "LiftedProbability requires a self-join-free query");
  }
  if (!IsHierarchical(q)) {
    return Result<double>::Error(
        "LiftedProbability requires a hierarchical query (FP^#P-hard "
        "otherwise, Theorem 4.10)");
  }
  const Database& db = pdb.db();
  AtomLists lists(q.atom_count());
  for (size_t i = 0; i < q.atom_count(); ++i) {
    const Atom& atom = q.atom(i);
    const RelationId rel = db.schema().Find(atom.relation);
    for (FactId fact : db.facts_of(rel)) {
      if (!Matches(atom, db.tuple_of(fact))) continue;
      lists[i].push_back(ProbFact{db.tuple_of(fact), pdb.probability(fact)});
    }
  }
  return Result<double>::Ok(CoreProbability(q, lists));
}

}  // namespace shapcq
