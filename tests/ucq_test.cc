// UCQ¬ semantics end-to-end: evaluation, games, brute-force Shapley and
// sampling over unions, including sign behavior with negation.

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/game.h"
#include "core/monte_carlo.h"
#include "db/textio.h"
#include "eval/homomorphism.h"
#include "query/parser.h"
#include "util/random.h"

namespace shapcq {
namespace {

TEST(UcqSemanticsTest, UnionIsDisjunction) {
  Database db = MustParseDatabase("A(u)* B(v)*");
  UCQ ucq = MustParseUCQ(
      "q1() :- A(x)\n"
      "q2() :- B(x)");
  World world(2, false);
  EXPECT_FALSE(EvalBoolean(ucq, db, world));
  world[0] = true;
  EXPECT_TRUE(EvalBoolean(ucq, db, world));
  world[0] = false;
  world[1] = true;
  EXPECT_TRUE(EvalBoolean(ucq, db, world));
}

TEST(UcqSemanticsTest, SymmetricDisjunctsShareEqually) {
  // Two facts, each satisfying its own disjunct: an OR game, 1/2 each.
  Database db = MustParseDatabase("A(u)* B(v)*");
  UCQ ucq = MustParseUCQ(
      "q1() :- A(x)\n"
      "q2() :- B(x)");
  for (FactId f : db.endogenous_facts()) {
    EXPECT_EQ(ShapleyBruteForce(ucq, db, f), Rational::Of(1, 2));
  }
}

TEST(UcqSemanticsTest, EfficiencyHoldsForUnions) {
  Database db = MustParseDatabase("A(u)* B(u)* C(u) D(v)*");
  UCQ ucq = MustParseUCQ(
      "q1() :- A(x), not B(x)\n"
      "q2() :- C(x), D(y)");
  Rational sum(0);
  for (FactId f : db.endogenous_facts()) {
    sum += ShapleyBruteForce(ucq, db, f);
  }
  const int delta = (EvalBoolean(ucq, db, db.FullWorld()) ? 1 : 0) -
                    (EvalBoolean(ucq, db, db.EmptyWorld()) ? 1 : 0);
  EXPECT_EQ(sum, Rational(delta));
}

TEST(UcqSemanticsTest, NegationAcrossDisjunctsCanFlipSigns) {
  // T(u) hurts q1 (¬T) but helps q2 (T): its net Shapley value may be
  // anything; here the two effects are visible via relevance of both
  // polarities.
  Database db = MustParseDatabase("A(u) T(u)* C(u)");
  UCQ ucq = MustParseUCQ(
      "q1() :- A(x), not T(x)\n"
      "q2() :- C(x), T(x)");
  FactId t = db.endogenous_facts()[0];
  // Without T: q1 holds. With T: q2 holds. The answer never changes:
  // Shapley = 0 even though T is pivotal inside each disjunct.
  EXPECT_EQ(ShapleyBruteForce(ucq, db, t), Rational(0));
}

TEST(UcqSemanticsTest, CountSatBruteForceOverUnion) {
  Database db = MustParseDatabase("A(u)* B(v)*");
  UCQ ucq = MustParseUCQ(
      "q1() :- A(x)\n"
      "q2() :- B(x)");
  CountVector counts = CountSatBruteForce(ucq, db);
  // k=0: no; k=1: both singletons satisfy; k=2: yes.
  EXPECT_EQ(counts.at(0).ToInt64(), 0);
  EXPECT_EQ(counts.at(1).ToInt64(), 2);
  EXPECT_EQ(counts.at(2).ToInt64(), 1);
}

TEST(UcqSemanticsTest, MonteCarloMatchesBruteForce) {
  Database db = MustParseDatabase("A(u)* B(v)* B(w)*");
  UCQ ucq = MustParseUCQ(
      "q1() :- A(x)\n"
      "q2() :- B(x), B2(x)");
  FactId a = db.FindFact("A", {V("u")});
  Rng rng(37);
  const double estimate = ShapleyMonteCarlo(ucq, db, a, 20000, &rng);
  EXPECT_NEAR(estimate, ShapleyBruteForce(ucq, db, a).ToDouble(), 0.02);
}

TEST(UcqSemanticsTest, GameAdapter) {
  Database db = MustParseDatabase("A(u)*");
  UCQ ucq = MustParseUCQ("q1() :- A(x)");
  QueryGame game(ucq, db);
  EXPECT_EQ(game.player_count(), 1u);
  EXPECT_EQ(game.Value(db.FullWorld()), Rational(1));
}

}  // namespace
}  // namespace shapcq
