// Alternative contribution measures from the paper's introduction, for
// comparison with the Shapley value:
//
//  * causal responsibility (Meliou et al. [23]): 1/(1 + |Γ|) for the
//    smallest contingency set Γ ⊆ Dn \ {f} such that f is counterfactual
//    for q on (Dn \ Γ); 0 if f is never counterfactual;
//  * causal effect (Salimi et al. [27]): E[q | f present] − E[q | f absent]
//    with every other endogenous fact present independently with
//    probability 1/2 — which for 0/1 queries coincides with the Banzhaf
//    value, and is therefore computable exactly from the same |Sat(D,q,k)|
//    vectors CntSat produces:
//      CausalEffect = Σ_k (|Sat_k with f| − |Sat_k without f|) / 2^{n-1}.
//
// These make the introduction's comparison concrete: all three measures
// agree on the sign of a fact's influence, but only Shapley distributes the
// total wealth (efficiency), which the examples and tests demonstrate.

#ifndef SHAPCQ_CORE_MEASURES_H_
#define SHAPCQ_CORE_MEASURES_H_

#include "db/database.h"
#include "query/cq.h"
#include "util/rational.h"
#include "util/result.h"

namespace shapcq {

/// Causal responsibility by exhaustive contingency search (exponential;
/// |Dn| must be small). Considers both polarities: f is counterfactual on
/// E = Dn \ Γ if removing f from Dx ∪ E \ {f} ∪ {f} flips the answer.
Rational ResponsibilityBruteForce(const CQ& q, const Database& db, FactId f);

/// Causal effect (= Banzhaf value for Boolean queries), exactly, via the
/// CntSat counting reduction. Same scope as ShapleyViaCountSat: safe,
/// self-join-free, hierarchical.
Result<Rational> CausalEffectViaCountSat(const CQ& q, const Database& db,
                                         FactId f);

/// Causal effect by subset enumeration (exponential reference).
Rational CausalEffectBruteForce(const CQ& q, const Database& db, FactId f);

}  // namespace shapcq

#endif  // SHAPCQ_CORE_MEASURES_H_
