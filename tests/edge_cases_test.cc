// Edge cases and failure-injection across modules: abort paths
// (SHAPCQ_CHECK), degenerate databases, zero-arity relations inside the
// ExoShap pipeline, and UCQ engines.

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/count_sat.h"
#include "core/exoshap.h"
#include "core/monte_carlo.h"
#include "core/shapley.h"
#include "db/textio.h"
#include "probdb/prob_database.h"
#include "query/parser.h"

namespace shapcq {
namespace {

using EdgeDeathTest = ::testing::Test;

TEST(EdgeDeathTest, DuplicateFactAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Database db;
  db.AddEndo("R", {V("dd1")});
  EXPECT_DEATH(db.AddEndo("R", {V("dd1")}), "duplicate fact");
}

TEST(EdgeDeathTest, KindConflictAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Database db;
  db.AddEndo("R", {V("dk1")});
  EXPECT_DEATH(db.AddFactIfAbsent("R", {V("dk1")}, false),
               "other endogeneity");
}

TEST(EdgeDeathTest, BadProbabilityAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  ProbDatabase pdb;
  EXPECT_DEATH(pdb.AddFact("R", {V("dp1")}, 0.0), "probability");
  EXPECT_DEATH(pdb.AddFact("R", {V("dp2")}, 1.5), "probability");
}

TEST(EdgeDeathTest, DivisionByZeroAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(BigInt(1) / BigInt(0), "division by zero");
  EXPECT_DEATH(Rational(1) / Rational(0), "division by zero");
}

TEST(EdgeCaseTest, ShapleyWithSingleEndogenousFact) {
  Database db;
  FactId f = db.AddEndo("R", {V("se1")});
  const CQ q = MustParseCQ("q() :- R(x)");
  EXPECT_EQ(ShapleyViaCountSat(q, db, f).value(), Rational(1));
  EXPECT_EQ(ShapleyBruteForce(q, db, f), Rational(1));
}

TEST(EdgeCaseTest, QueryOverUndeclaredRelations) {
  Database db;
  FactId f = db.AddEndo("Other", {V("ud1")});
  const CQ q = MustParseCQ("q() :- Missing(x)");
  EXPECT_EQ(ShapleyViaCountSat(q, db, f).value(), Rational(0));
}

TEST(EdgeCaseTest, AlwaysTrueQueryGivesZeroes) {
  // Dx alone satisfies q: no endogenous fact can ever matter.
  Database db = MustParseDatabase("R(a) S(b)* S(c)*");
  const CQ q = MustParseCQ("q() :- R(x)");
  for (FactId f : db.endogenous_facts()) {
    EXPECT_EQ(ShapleyViaCountSat(q, db, f).value(), Rational(0));
  }
}

TEST(EdgeCaseTest, NegationOnlyBlockersSumToMinusOne) {
  // Dx ⊨ q; the blockers jointly destroy it: Σ Shapley = q(D) − q(Dx) = −1.
  Database db = MustParseDatabase("R(a) S(a)* T(a)");
  const CQ q = MustParseCQ("q() :- R(x), not S(x)");
  Rational sum(0);
  for (FactId f : db.endogenous_facts()) {
    sum += ShapleyViaCountSat(q, db, f).value();
  }
  EXPECT_EQ(sum, Rational(-1));
}

TEST(EdgeCaseTest, ExoShapWithFullyExogenousVariables) {
  // The exogenous atom's variables all project away; the padded relation is
  // Dom^|Vars(β)| when the join is non-empty, empty otherwise.
  const CQ q = MustParseCQ("q() :- A(x), not B(y,z), C(y,z)");
  ExoRelations exo = {"B", "C"};
  Database sat = MustParseDatabase("A(u)* B(v,w) C(v,x)");
  // B joined with C (after complementing B): (v,w) pairs not in B joined
  // with C(v,x)... just verify against brute force.
  for (FactId f : sat.endogenous_facts()) {
    auto value = ExoShapShapley(q, sat, exo, f);
    ASSERT_TRUE(value.ok()) << value.error();
    EXPECT_EQ(value.value(), ShapleyBruteForce(q, sat, f));
  }
}

TEST(EdgeCaseTest, ExoShapOnHierarchicalQueryMatchesCountSat) {
  // ExoShap is also correct when the query was already hierarchical.
  Database db = MustParseDatabase("Stud(a) TA(a)* Reg(a,c1)* Reg(a,c2)*");
  const CQ q = MustParseCQ("q1() :- Stud(x), not TA(x), Reg(x,y)");
  for (FactId f : db.endogenous_facts()) {
    EXPECT_EQ(ExoShapShapley(q, db, {"Stud"}, f).value(),
              ShapleyViaCountSat(q, db, f).value())
        << db.FactToString(f);
  }
}

TEST(EdgeCaseTest, UcqBruteForceCountsDisjunctsOnce) {
  // Identical disjuncts must not double-count.
  Database db = MustParseDatabase("R(a)*");
  UCQ ucq = MustParseUCQ(
      "q1() :- R(x)\n"
      "q2() :- R(x)");
  FactId f = db.endogenous_facts()[0];
  EXPECT_EQ(ShapleyBruteForce(ucq, db, f), Rational(1));
}

TEST(EdgeCaseTest, MonteCarloSingleFact) {
  Database db = MustParseDatabase("R(a)*");
  const CQ q = MustParseCQ("q() :- R(x)");
  Rng rng(3);
  EXPECT_DOUBLE_EQ(
      ShapleyMonteCarlo(q, db, db.endogenous_facts()[0], 100, &rng), 1.0);
}

TEST(EdgeCaseTest, CountSatConstantsOnlyQuery) {
  Database db = MustParseDatabase("R(a)* R(b)* S(z)");
  const CQ q = MustParseCQ("q() :- R('a'), not S('c')");
  auto counted = CountSat(q, db);
  ASSERT_TRUE(counted.ok()) << counted.error();
  // Must pick R(a); S(c) absent; R(b) free: c[1] = 1 {R(a)}, c[2] = 1.
  EXPECT_EQ(counted.value().at(0).ToInt64(), 0);
  EXPECT_EQ(counted.value().at(1).ToInt64(), 1);
  EXPECT_EQ(counted.value().at(2).ToInt64(), 1);
  EXPECT_EQ(counted.value(), CountSatBruteForce(q, db));
}

}  // namespace
}  // namespace shapcq
