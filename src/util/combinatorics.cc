#include "util/combinatorics.h"

#include "util/check.h"

namespace shapcq {

std::vector<BigInt>& Combinatorics::FactorialCache() {
  static std::vector<BigInt>* cache = new std::vector<BigInt>{BigInt(1)};
  return *cache;
}

BigInt Combinatorics::Factorial(size_t n) {
  std::vector<BigInt>& cache = FactorialCache();
  while (cache.size() <= n) {
    cache.push_back(cache.back() * BigInt(static_cast<int64_t>(cache.size())));
  }
  return cache[n];
}

BigInt Combinatorics::Binomial(size_t n, size_t k) {
  if (k > n) return BigInt(0);
  // Use the smaller symmetric index and a running product; exact because the
  // intermediate product i steps in is divisible by i!.
  if (k > n - k) k = n - k;
  BigInt result(1);
  for (size_t i = 1; i <= k; ++i) {
    result = result * BigInt(static_cast<int64_t>(n - k + i));
    result = result / BigInt(static_cast<int64_t>(i));
  }
  return result;
}

std::vector<BigInt> Combinatorics::BinomialRow(size_t n) {
  std::vector<BigInt> row;
  row.reserve(n + 1);
  row.push_back(BigInt(1));
  for (size_t k = 1; k <= n; ++k) {
    // C(n,k) = C(n,k-1) * (n-k+1) / k, exact at every step.
    BigInt next = row.back() * BigInt(static_cast<int64_t>(n - k + 1));
    row.push_back(next / BigInt(static_cast<int64_t>(k)));
  }
  return row;
}

}  // namespace shapcq
