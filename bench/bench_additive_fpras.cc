// E6 — the additive FPRAS (Section 5.1): Monte-Carlo estimation error vs
// sample count on the running example, against the Hoeffding prediction
// ε = sqrt(2 ln(2/δ) / m). Mean absolute error over repeated runs should
// sit well inside the bound.

#include <cmath>
#include <cstdio>

#include "core/monte_carlo.h"
#include "core/shapley.h"
#include "datasets/university.h"

int main() {
  using namespace shapcq;
  UniversityDb u = BuildUniversityDb();
  const CQ q1 = UniversityQ1();
  const Rational exact = ShapleyViaCountSat(q1, u.db, u.ft1).value();
  const double truth = exact.ToDouble();
  const double delta = 0.05;

  std::printf("E6: additive FPRAS error vs samples, fact TA(Adam), "
              "exact = %s = %.5f\n\n", exact.ToString().c_str(), truth);
  std::printf("%10s %14s %14s %22s\n", "samples", "mean |error|",
              "max |error|", "Hoeffding eps (d=.05)");
  for (size_t samples : {50u, 200u, 800u, 3200u, 12800u, 51200u}) {
    double total_error = 0.0, max_error = 0.0;
    const int runs = 20;
    for (int run = 0; run < runs; ++run) {
      Rng rng(1000 * run + samples);
      const double estimate =
          ShapleyMonteCarlo(q1, u.db, u.ft1, samples, &rng);
      const double error = std::fabs(estimate - truth);
      total_error += error;
      max_error = std::max(max_error, error);
    }
    // Invert m >= 2 ln(2/δ)/ε²  ->  ε = sqrt(2 ln(2/δ)/m).
    const double epsilon =
        std::sqrt(2.0 * std::log(2.0 / delta) / static_cast<double>(samples));
    std::printf("%10zu %14.5f %14.5f %22.5f\n", samples, total_error / runs,
                max_error, epsilon);
  }
  std::printf("\nshape: error decays like 1/sqrt(m) and stays below the "
              "Hoeffding epsilon,\nmatching the additive-FPRAS guarantee for "
              "every CQ with negation.\n");

  // Estimator ablation: permutation sampling vs stratified sampling at the
  // same evaluation budget (n strata × m/n samples each).
  const size_t n = u.db.endogenous_count();
  std::printf("\nablation: permutation vs stratified sampler "
              "(mean |error| over 20 runs)\n");
  std::printf("%10s %16s %16s\n", "budget", "permutation", "stratified");
  for (size_t budget : {400u, 1600u, 6400u, 25600u}) {
    double plain_error = 0, strat_error = 0;
    const int runs = 20;
    for (int run = 0; run < runs; ++run) {
      Rng rng_a(10000 + run * 2), rng_b(10001 + run * 2);
      plain_error += std::fabs(
          ShapleyMonteCarlo(q1, u.db, u.ft1, budget, &rng_a) - truth);
      strat_error += std::fabs(
          ShapleyStratifiedMonteCarlo(q1, u.db, u.ft1, budget / n, &rng_b) -
          truth);
    }
    std::printf("%10zu %16.5f %16.5f\n", budget, plain_error / runs,
                strat_error / runs);
  }
  return 0;
}
