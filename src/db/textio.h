// Text round-tripping for databases.
//
// The format matches Database::ToString(): whitespace-separated facts
// "R(a,b)" with a trailing '*' marking endogenous facts. Handy for tests,
// bug reports and small examples:
//
//   Stud(Adam) TA(Adam)* Reg(Adam,OS)*

#ifndef SHAPCQ_DB_TEXTIO_H_
#define SHAPCQ_DB_TEXTIO_H_

#include <string>

#include "db/database.h"
#include "util/result.h"

namespace shapcq {

/// One parsed fact literal, e.g. "Reg(Adam,OS)*".
struct FactSpec {
  std::string relation;
  Tuple tuple;
  bool endogenous = false;
};

/// Parses a single fact literal (the element syntax of ParseDatabase);
/// rejects trailing input. Used by delta files (shapcq_cli --mutate).
Result<FactSpec> ParseFactSpec(const std::string& text);

/// Parses a whitespace-separated fact list; returns an error on malformed
/// input or duplicate facts.
Result<Database> ParseDatabase(const std::string& text);

/// Aborting variant for trusted literals in tests and examples.
Database MustParseDatabase(const std::string& text);

}  // namespace shapcq

#endif  // SHAPCQ_DB_TEXTIO_H_
