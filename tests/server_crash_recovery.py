#!/usr/bin/env python3
"""Crash-recovery differential harness for shapcq_server --log-dir.

Three attack modes, one oracle:

  1. Randomized kill -9: drive a durable server interactively, one command
     per round trip (send a line, read its complete acknowledged output),
     SIGKILL it after a random number of acked commands, restart on the
     same --log-dir, and REPORT every open session. A killed process loses
     only process state — the page cache survives — so the acked prefix is
     exactly what must recover, regardless of --fsync policy.
  2. Armed crash points: run scripts with SHAPCQ_FAULT=<point>:<n> so the
     server kills itself (exit 86) while physically writing the n-th log
     record — including a deliberate half-written record (mid_record). The
     durable prefix is computable (n-1 records for mid_record, n for
     after_append / before_fsync), so recovery is checked against it.
  3. Torn tails and graceful shutdown: garbage appended to a log must be
     truncated away on restart; SIGTERM must drain, sync, and exit 0 with
     state recoverable.

The oracle for every mode is an uninterrupted, durability-off server fed
the same surviving command prefix plus the same REPORTs: every report
block (header line through "end report") must be byte-identical, and the
per-session fact counts must match.

usage: server_crash_recovery.py SHAPCQ_SERVER [--kills 20] [--seed N]
"""

import argparse
import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import time

QUERIES = [
    "q() :- R(x)",
    "q() :- R(x), not S(x)",
    "q() :- Stud(x), not TA(x), Reg(x,y)",
    "q() :- R(x), S(x,y), not T(x,y)",
    "q() :- E(x,y), not F(x,y)",
]

FSYNC_POLICIES = ["always", "batch", "off"]


def atoms_of(query):
    out = []
    for literal in query.split(":-")[1].split("),"):
        literal = literal.strip().rstrip(")")
        if literal.startswith("not "):
            literal = literal[4:]
        relation, args = literal.split("(")
        args = args.strip()
        out.append((relation.strip(), 0 if not args else args.count(",") + 1))
    return out


def build_script(rng, sessions=3, deltas_per_session=8, with_snapshots=True):
    """An interleaved multi-session script of OPEN/DELTA (+ optional REPORT
    and SNAPSHOT) commands. No CLOSE: every session stays recoverable."""
    shadows = {}  # sid -> list of live literals, insertion order
    per_session = []
    for i in range(sessions):
        sid = f"s{i}"
        query = QUERIES[(i + rng.randrange(len(QUERIES))) % len(QUERIES)]
        shadows[sid] = []
        lines = [("OPEN", f"OPEN {sid} {query}")]
        relations = atoms_of(query)
        for _ in range(deltas_per_session):
            if shadows[sid] and rng.random() < 0.3:
                victim = rng.choice(shadows[sid])
                shadows[sid].remove(victim)
                lines.append(("DELTA", f"DELTA {sid} - {victim}"))
                continue
            for _ in range(20):  # retry duplicate draws
                relation, arity = rng.choice(relations)
                tuple_ = ",".join(f"c{rng.randrange(3)}" for _ in range(arity))
                endo = "*" if rng.random() < 0.7 else ""
                literal = f"{relation}({tuple_}){endo}"
                if any(f.rstrip("*") == literal.rstrip("*")
                       for f in shadows[sid]):
                    continue
                shadows[sid].append(literal)
                lines.append(("DELTA", f"DELTA {sid} + {literal}"))
                break
            if rng.random() < 0.15:
                lines.append(("REPORT", f"REPORT {sid}"))
            if with_snapshots and rng.random() < 0.1:
                lines.append(("SNAPSHOT", f"SNAPSHOT {sid}"))
        per_session.append(lines)

    script, cursors = [], [0] * sessions
    while any(c < len(s) for c, s in zip(cursors, per_session)):
        i = rng.randrange(sessions)
        if cursors[i] < len(per_session[i]):
            script.append(per_session[i][cursors[i]])
            cursors[i] += 1
    return script


def report_commands(prefix):
    """REPORT + STATS per session opened in the command prefix, sorted."""
    sids = sorted(line.split()[1] for kind, line in prefix if kind == "OPEN")
    out = []
    for sid in sids:
        out.append(f"REPORT {sid}")
        out.append(f"STATS {sid}")
    return sids, out


def report_blocks(stdout):
    """Every report block, header line through end marker, plus the
    facts=/endo= fields of every per-session stats line."""
    blocks, current = [], None
    for line in stdout.splitlines():
        if line.startswith("report "):
            current = [line]
        elif current is not None:
            current.append(line)
            if line.startswith("end report"):
                blocks.append("\n".join(current))
                current = None
        elif line.startswith("stats ") and " facts=" in line:
            fields = [f for f in line.split()
                      if f.split("=")[0] in ("facts", "endo")]
            blocks.append(line.split()[1] + " " + " ".join(fields))
    return blocks


def run_oracle(server, prefix, reports):
    """The uninterrupted reference: durability off, same state-changing
    commands. SNAPSHOT needs --log-dir and REPORT/STATS are stateless, so
    only the OPEN/DELTA lines are replayed before the final REPORTs (a
    prefix REPORT would add a block the recovered run does not emit)."""
    script = "\n".join(line for kind, line in prefix
                       if kind in ("OPEN", "DELTA")) + "\n"
    script += "\n".join(reports) + "\n"
    result = subprocess.run([server], input=script, capture_output=True,
                            text=True)
    if result.returncode != 0:
        raise RuntimeError(f"oracle run failed:\n{result.stdout}"
                           f"{result.stderr}")
    return report_blocks(result.stdout)


def run_recovered(server, log_dir, reports):
    """Restart on the log dir and interrogate the recovered sessions."""
    result = subprocess.run(
        [server, "--log-dir", log_dir],
        input="\n".join(reports) + "\n", capture_output=True, text=True)
    if result.returncode != 0:
        raise RuntimeError(f"recovered server failed:\n{result.stdout}"
                           f"{result.stderr}")
    return report_blocks(result.stdout), result.stderr


class InteractiveServer:
    """A durable server driven one acknowledged command at a time."""

    def __init__(self, server, log_dir, fsync, snapshot_every=0):
        cmd = [server, "--log-dir", log_dir, f"--fsync={fsync}"]
        if snapshot_every:
            cmd += ["--snapshot-every", str(snapshot_every)]
        self.proc = subprocess.Popen(
            cmd, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, text=True, bufsize=1)

    def exec(self, line):
        """Sends one command and reads its complete output (the ack)."""
        self.proc.stdin.write(line + "\n")
        self.proc.stdin.flush()
        echo = self.proc.stdout.readline()
        assert echo.startswith("> "), f"expected echo, got {echo!r}"
        result = self.proc.stdout.readline()
        out = [echo, result]
        if result.startswith("report "):
            while not out[-1].startswith("end report"):
                out.append(self.proc.stdout.readline())
        return "".join(out)

    def kill9(self):
        self.proc.kill()  # SIGKILL: no handler, no flush, no fsync
        self.proc.wait()
        self.proc.stdin.close()
        self.proc.stdout.close()


def check(name, recovered, oracle, failures):
    if recovered == oracle:
        return True
    print(f"{name}: MISMATCH\nrecovered:\n" + "\n---\n".join(recovered) +
          "\noracle:\n" + "\n---\n".join(oracle), file=sys.stderr)
    failures.append(name)
    return False


def randomized_kill_run(server, rng, index, failures):
    policy = FSYNC_POLICIES[index % len(FSYNC_POLICIES)]
    snapshot_every = rng.choice([0, 3])
    script = build_script(rng, with_snapshots=True)
    kill_after = rng.randrange(1, len(script) + 1)
    with tempfile.TemporaryDirectory() as tmp:
        log_dir = os.path.join(tmp, "logs")
        victim = InteractiveServer(server, log_dir, policy, snapshot_every)
        prefix = script[:kill_after]
        for kind, line in prefix:
            out = victim.exec(line)
            if "error:" in out:
                raise RuntimeError(f"unexpected error for {line!r}: {out}")
        victim.kill9()

        sids, reports = report_commands(prefix)
        recovered, stderr = run_recovered(server, log_dir, reports)
        if f"recovered sessions={len(sids)}" not in stderr:
            failures.append(f"kill{index}: bad recovery count: {stderr!r}")
            return
        oracle = run_oracle(server, prefix, reports)
        check(f"kill{index} (fsync={policy}, snap={snapshot_every}, "
              f"k={kill_after}/{len(script)})", recovered, oracle, failures)


def armed_fault_runs(server, rng, failures):
    """SHAPCQ_FAULT=<point>:<n>: the server must die with exit 86 and the
    computable record prefix must recover."""
    script = build_script(rng, with_snapshots=False)
    # Without snapshots/compaction, log appends map 1:1 onto OPEN and DELTA
    # commands in script order (REPORTs append nothing).
    append_lines = [entry for entry in script if entry[0] in ("OPEN", "DELTA")]
    total_appends = len(append_lines)
    full_input = "\n".join(line for _, line in script) + "\n"

    cases = []
    for point, survive_offset in (("mid_record", -1), ("after_append", 0),
                                  ("before_fsync", 0)):
        for nth in (1, 2, total_appends // 2, total_appends):
            cases.append((point, nth, nth + survive_offset))

    for point, nth, survived in cases:
        name = f"fault {point}:{nth}"
        with tempfile.TemporaryDirectory() as tmp:
            log_dir = os.path.join(tmp, "logs")
            env = dict(os.environ, SHAPCQ_FAULT=f"{point}:{nth}")
            victim = subprocess.run(
                [server, "--log-dir", log_dir, "--fsync=always"],
                input=full_input, capture_output=True, text=True, env=env)
            if victim.returncode != 86:
                failures.append(f"{name}: expected injected-crash exit 86, "
                                f"got {victim.returncode}")
                continue
            prefix = append_lines[:survived]
            if not prefix:  # mid_record:1 → nothing durable, nothing opens
                sids, reports = [], ["STATS"]
            else:
                sids, reports = report_commands(prefix)
            recovered, stderr = run_recovered(server, log_dir, reports)
            if f"recovered sessions={len(sids)}" not in stderr:
                failures.append(f"{name}: bad recovery count: {stderr!r}")
                continue
            if not prefix:
                continue
            oracle = run_oracle(server, prefix, reports)
            check(name, recovered, oracle, failures)


def torn_tail_run(server, rng, failures):
    """Garbage appended to a live log is truncated away on restart."""
    script = build_script(rng, sessions=1, with_snapshots=False)
    with tempfile.TemporaryDirectory() as tmp:
        log_dir = os.path.join(tmp, "logs")
        victim = InteractiveServer(server, log_dir, "batch")
        for _, line in script:
            victim.exec(line)
        victim.kill9()

        log_path = os.path.join(log_dir, "s0.log")
        intact = os.path.getsize(log_path)
        with open(log_path, "ab") as f:
            f.write(b"\x0c\x00\x00\x00torn half-record garbage")
        sids, reports = report_commands(script)
        recovered, _ = run_recovered(server, log_dir, reports)
        oracle = run_oracle(server, script, reports)
        if check("torn tail", recovered, oracle, failures):
            if os.path.getsize(log_path) != intact:
                failures.append("torn tail: file not truncated back to the "
                                "valid prefix")


def sigterm_run(server, rng, failures):
    """SIGTERM drains, syncs (batch policy), exits 0; state then recovers."""
    script = build_script(rng, sessions=2, with_snapshots=False)
    with tempfile.TemporaryDirectory() as tmp:
        log_dir = os.path.join(tmp, "logs")
        victim = InteractiveServer(server, log_dir, "batch")
        for _, line in script:
            victim.exec(line)
        victim.proc.send_signal(signal.SIGTERM)
        deadline = time.time() + 10
        while victim.proc.poll() is None and time.time() < deadline:
            time.sleep(0.05)
        if victim.proc.poll() != 0:
            failures.append(f"sigterm: expected clean exit 0, got "
                            f"{victim.proc.poll()}")
            victim.kill9()
            return
        victim.proc.stdin.close()
        victim.proc.stdout.close()

        sids, reports = report_commands(script)
        recovered, stderr = run_recovered(server, log_dir, reports)
        if f"recovered sessions={len(sids)}" not in stderr:
            failures.append(f"sigterm: bad recovery count: {stderr!r}")
            return
        oracle = run_oracle(server, script, reports)
        check("sigterm", recovered, oracle, failures)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("server")
    parser.add_argument("--kills", type=int, default=20)
    parser.add_argument("--seed", type=int, default=20260807)
    args = parser.parse_args()
    rng = random.Random(args.seed)

    failures = []
    for index in range(args.kills):
        randomized_kill_run(args.server, rng, index, failures)
    armed_fault_runs(args.server, rng, failures)
    torn_tail_run(args.server, rng, failures)
    sigterm_run(args.server, rng, failures)

    print(f"{args.kills} randomized kill -9 runs, 12 armed crash points, "
          f"torn-tail + SIGTERM checks: {len(failures)} failures")
    for failure in failures:
        print(f"  FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
