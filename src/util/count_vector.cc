#include "util/count_vector.h"

#include <utility>

#include "util/check.h"
#include "util/combinatorics.h"

namespace shapcq {

CountVector CountVector::Zero(size_t universe_size) {
  return CountVector(std::vector<BigInt>(universe_size + 1, BigInt(0)));
}

CountVector CountVector::All(size_t universe_size) {
  return CountVector(Combinatorics::BinomialRow(universe_size));
}

CountVector CountVector::FromCounts(std::vector<BigInt> counts) {
  SHAPCQ_CHECK_MSG(!counts.empty(), "count vector must cover k = 0");
  return CountVector(std::move(counts));
}

BigInt CountVector::Total() const {
  BigInt total(0);
  for (const BigInt& count : counts_) total += count;
  return total;
}

size_t CountVector::ApproxMemoryBytes() const {
  // Each cell reports sizeof(BigInt) (its slot in counts_) plus any heap
  // limb buffer it owns; inline magnitudes therefore cost exactly the slot,
  // with no double-counting, and buffers parked in the thread-local limb
  // pool are attributed to no cell. Unused vector capacity is slots too.
  size_t bytes = sizeof(CountVector);
  for (const BigInt& count : counts_) bytes += count.ApproxMemoryBytes();
  bytes += (counts_.capacity() - counts_.size()) * sizeof(BigInt);
  return bytes;
}

CountVector CountVector::Convolve(const CountVector& other) const {
  std::vector<BigInt> result(counts_.size() + other.counts_.size() - 1,
                             BigInt(0));
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i].IsZero()) continue;
    for (size_t j = 0; j < other.counts_.size(); ++j) {
      if (other.counts_[j].IsZero()) continue;
      result[i + j].AddProductOf(counts_[i], other.counts_[j]);
    }
  }
  return CountVector(std::move(result));
}

CountVector& CountVector::ConvolveWith(const CountVector& other) {
  *this = Convolve(other);
  return *this;
}

CountVector CountVector::ComplementAgainstAll() const {
  std::vector<BigInt> row = Combinatorics::BinomialRow(universe_size());
  for (size_t k = 0; k < counts_.size(); ++k) row[k] -= counts_[k];
  return CountVector(std::move(row));
}

CountVector CountVector::operator+(const CountVector& other) const {
  SHAPCQ_CHECK(counts_.size() == other.counts_.size());
  std::vector<BigInt> result = counts_;
  for (size_t k = 0; k < result.size(); ++k) result[k] += other.counts_[k];
  return CountVector(std::move(result));
}

CountVector CountVector::operator-(const CountVector& other) const {
  SHAPCQ_CHECK(counts_.size() == other.counts_.size());
  std::vector<BigInt> result = counts_;
  for (size_t k = 0; k < result.size(); ++k) result[k] -= other.counts_[k];
  return CountVector(std::move(result));
}

std::string CountVector::ToString() const {
  std::string result = "[";
  for (size_t k = 0; k < counts_.size(); ++k) {
    if (k > 0) result += ", ";
    result += counts_[k].ToString();
  }
  result += "]";
  return result;
}

}  // namespace shapcq
