#include "reductions/coloring.h"

#include "util/check.h"

namespace shapcq {

SimpleGraph RandomGraph(int n, double edge_probability, Rng* rng) {
  SimpleGraph graph;
  graph.n = n;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng->Bernoulli(edge_probability)) graph.edges.push_back({u, v});
    }
  }
  return graph;
}

bool IsThreeColorableBruteForce(const SimpleGraph& graph) {
  SHAPCQ_CHECK_MSG(graph.n <= 12, "3^n search beyond n=12 is a bug");
  std::vector<int> color(static_cast<size_t>(graph.n), 0);
  int64_t total = 1;
  for (int i = 0; i < graph.n; ++i) total *= 3;
  for (int64_t code = 0; code < total; ++code) {
    int64_t rest = code;
    for (int v = 0; v < graph.n; ++v) {
      color[static_cast<size_t>(v)] = static_cast<int>(rest % 3);
      rest /= 3;
    }
    bool proper = true;
    for (const auto& [u, v] : graph.edges) {
      if (color[static_cast<size_t>(u)] == color[static_cast<size_t>(v)]) {
        proper = false;
        break;
      }
    }
    if (proper) return true;
  }
  return graph.n == 0;
}

CnfFormula ColoringToThreeTwoSat(const SimpleGraph& graph) {
  // Variable x_v^c gets index 3v + c.
  CnfFormula formula;
  formula.num_vars = 3 * graph.n;
  auto var = [](int vertex, int color) { return 3 * vertex + color; };
  for (int v = 0; v < graph.n; ++v) {
    formula.clauses.push_back(
        Clause{{{var(v, 0), true}, {var(v, 1), true}, {var(v, 2), true}}});
  }
  for (const auto& [u, v] : graph.edges) {
    for (int c = 0; c < 3; ++c) {
      formula.clauses.push_back(
          Clause{{{var(u, c), false}, {var(v, c), false}}});
    }
  }
  for (int v = 0; v < graph.n; ++v) {
    for (int c1 = 0; c1 < 3; ++c1) {
      for (int c2 = c1 + 1; c2 < 3; ++c2) {
        formula.clauses.push_back(
            Clause{{{var(v, c1), false}, {var(v, c2), false}}});
      }
    }
  }
  return formula;
}

CnfFormula ThreeTwoTo224(const CnfFormula& formula) {
  CnfFormula out;
  out.num_vars = formula.num_vars;
  for (const Clause& clause : formula.clauses) {
    bool all_positive = true, all_negative = true;
    for (const Literal& literal : clause.literals) {
      (literal.positive ? all_negative : all_positive) = false;
    }
    if (clause.literals.size() == 2 && all_negative) {
      out.clauses.push_back(clause);
      continue;
    }
    SHAPCQ_CHECK_MSG(clause.literals.size() == 3 && all_positive,
                     "input must be a (3+,2-) formula");
    // (xi ∨ xj ∨ xk) ≡sat (xi ∨ xj ∨ ¬y ∨ ¬y) ∧ (xk ∨ y) ∧ (¬xk ∨ ¬y)
    // with a fresh y per clause — the paper's rewrite, with ¬y literally
    // repeated to fill the four slots of the 4+− clause shape.
    const int xi = clause.literals[0].var;
    const int xj = clause.literals[1].var;
    const int xk = clause.literals[2].var;
    const int y = out.num_vars++;
    out.clauses.push_back(
        Clause{{{xi, true}, {xj, true}, {y, false}, {y, false}}});
    out.clauses.push_back(Clause{{{xk, true}, {y, true}}});
    out.clauses.push_back(Clause{{{xk, false}, {y, false}}});
  }
  return out;
}

}  // namespace shapcq
