// Executable hardness reductions for the relevance problem (Section 5.2).
//
//  * Proposition 5.5: relevance of a T-fact to
//      q_RST¬R() :- T(z), ¬R(x), ¬R(y), R(z), R(w), S(x,y,z,w)
//    is NP-complete, by encoding a (2+,2−,4+−)-CNF formula into a database.
//  * Proposition 5.8: relevance of R(0) to the UCQ¬ q_SAT (union of four
//    polarity-consistent CQ¬s) is NP-complete, by encoding a 3CNF formula.
//
// Both encoders produce (database, fact) instances whose relevance equals
// satisfiability of the source formula — verified in the tests against DPLL.

#ifndef SHAPCQ_REDUCTIONS_SATRED_H_
#define SHAPCQ_REDUCTIONS_SATRED_H_

#include "db/database.h"
#include "query/cq.h"
#include "query/ucq.h"
#include "reductions/cnf.h"

namespace shapcq {

/// A (database, endogenous fact) pair for a relevance question.
struct RelevanceInstance {
  Database db;
  FactId f = kNoFact;
};

/// q_RST¬R() :- T(z), ¬R(x), ¬R(y), R(z), R(w), S(x,y,z,w).
CQ QrstNegR();

/// Proposition 5.5 encoding. The formula must be in (2+,2−,4+−) form and
/// contain at least one all-positive 2-clause (the non-trivial regime; see
/// the paper). The fact f = T(c) is relevant to QrstNegR() iff the formula
/// is satisfiable.
RelevanceInstance EncodeQrstNegR(const CnfFormula& formula);

/// The paper's Figure 4 example instance, for
/// (x1 ∨ x2) ∧ (¬x1 ∨ ¬x3) ∧ (x3 ∨ x4 ∨ ¬x1 ∨ ¬x2).
RelevanceInstance Figure4Instance();

/// q_SAT() :- q1() ∨ q2() ∨ q3() ∨ q4() of Proposition 5.8.
UCQ QSat();

/// Proposition 5.8 encoding: f = R(0) is relevant to QSat() iff the 3CNF
/// formula is satisfiable.
RelevanceInstance EncodeQSat(const CnfFormula& formula);

}  // namespace shapcq

#endif  // SHAPCQ_REDUCTIONS_SATRED_H_
