// The dichotomy classifiers (Theorems 3.1, 4.3, 4.10) on the paper's queries.

#include "query/classify.h"

#include <gtest/gtest.h>

#include "datasets/citations.h"
#include "datasets/university.h"
#include "query/parser.h"

namespace shapcq {
namespace {

TEST(ClassifyTest, Theorem31OnExampleQueries) {
  EXPECT_TRUE(ClassifyExactShapley(UniversityQ1()).value().IsTractable());
  EXPECT_FALSE(ClassifyExactShapley(UniversityQ2()).value().IsTractable());
}

TEST(ClassifyTest, BaseQueriesAreHard) {
  for (const char* text :
       {"q() :- R(x), S(x,y), T(y)", "q() :- not R(x), S(x,y), not T(y)",
        "q() :- R(x), not S(x,y), T(y)", "q() :- R(x), S(x,y), not T(y)"}) {
    auto result = ClassifyExactShapley(MustParseCQ(text));
    ASSERT_TRUE(result.ok()) << text;
    EXPECT_EQ(result.value().complexity, Complexity::kSharpPHard) << text;
  }
}

TEST(ClassifyTest, OutOfScopeQueries) {
  // Self-joins (q3, q4) and unsafe negation are outside Theorem 3.1.
  EXPECT_FALSE(ClassifyExactShapley(UniversityQ3()).ok());
  EXPECT_FALSE(ClassifyExactShapley(UniversityQ4()).ok());
  EXPECT_FALSE(
      ClassifyExactShapley(MustParseCQ("q() :- R(x), not S(x,y)")).ok());
}

TEST(ClassifyTest, Theorem43CitationsExample) {
  const CQ q = CitationsQuery();
  // Hard with no exogenous knowledge...
  EXPECT_FALSE(ClassifyExactShapley(q).value().IsTractable());
  EXPECT_FALSE(ClassifyExactShapley(q, {}).value().IsTractable());
  // ... tractable once Pub and Citations (or even just Citations) are
  // exogenous (Example 4.1) ...
  EXPECT_TRUE(
      ClassifyExactShapley(q, CitationsExoRelations()).value().IsTractable());
  EXPECT_TRUE(
      ClassifyExactShapley(q, CitationsOnlyExo()).value().IsTractable());
  // ... but knowing only Pub does not help.
  EXPECT_FALSE(ClassifyExactShapley(q, {"Pub"}).value().IsTractable());
}

TEST(ClassifyTest, Theorem43Section41Pair) {
  CQ q = MustParseCQ("q() :- not R(x,w), S(z,x), not P(z,w), T(y,w)");
  CQ qp = MustParseCQ("q() :- not R(x,w), S(z,x), not P(z,y), T(y,w)");
  ExoRelations exo = {"S", "P"};
  EXPECT_TRUE(ClassifyExactShapley(q, exo).value().IsTractable());
  EXPECT_FALSE(ClassifyExactShapley(qp, exo).value().IsTractable());
}

TEST(ClassifyTest, Theorem43Q2WithExoStudCourse) {
  // Example 4.1 (end): q2 becomes tractable when Stud and Course are
  // exogenous.
  const CQ q2 = UniversityQ2();
  EXPECT_FALSE(ClassifyExactShapley(q2).value().IsTractable());
  EXPECT_TRUE(
      ClassifyExactShapley(q2, {"Stud", "Course"}).value().IsTractable());
}

TEST(ClassifyTest, HierarchicalStaysTractableWithExo) {
  EXPECT_TRUE(
      ClassifyExactShapley(UniversityQ1(), {"Stud"}).value().IsTractable());
}

TEST(ClassifyTest, Theorem410MirrorsTheorem43) {
  const CQ q = CitationsQuery();
  EXPECT_TRUE(ClassifyProbabilisticEvaluation(q, CitationsExoRelations())
                  .value()
                  .IsTractable());
  EXPECT_FALSE(ClassifyProbabilisticEvaluation(q, {}).value().IsTractable());
}

TEST(ClassifyTest, ReasonsMentionWitnesses) {
  auto hard = ClassifyExactShapley(UniversityQ2()).value();
  EXPECT_NE(hard.reason.find("non-hierarchical triplet"), std::string::npos);
  auto easy = ClassifyExactShapley(UniversityQ1()).value();
  EXPECT_NE(easy.reason.find("hierarchical"), std::string::npos);
}

}  // namespace
}  // namespace shapcq
