#include "reductions/embed.h"

#include "reductions/iscount.h"
#include "util/check.h"

namespace shapcq {

Result<EmbedPlan> PlanEmbedding(const CQ& q) {
  if (!IsSafe(q) || !IsSelfJoinFree(q)) {
    return Result<EmbedPlan>::Error(
        "embedding requires a safe self-join-free query");
  }
  auto triplet = FindReductionTriplet(q);
  if (!triplet.has_value()) {
    return Result<EmbedPlan>::Error(
        "query is hierarchical; nothing to embed");
  }
  EmbedPlan plan;
  plan.triplet = *triplet;
  const bool x_neg = q.atom(plan.triplet.alpha_x).negated;
  const bool s_neg = q.atom(plan.triplet.alpha_xy).negated;
  const bool y_neg = q.atom(plan.triplet.alpha_y).negated;
  if (s_neg) {
    SHAPCQ_CHECK_MSG(!x_neg && !y_neg,
                     "reduction triplet has an unsupported signature");
    plan.base = BaseQueryKind::kRNegSt;
  } else if (x_neg && y_neg) {
    plan.base = BaseQueryKind::kNegRSNegT;
  } else if (!x_neg && !y_neg) {
    plan.base = BaseQueryKind::kRst;
  } else {
    plan.base = BaseQueryKind::kRSNegT;
    if (x_neg) {
      // Swap endpoints so the negative one plays the ¬T role.
      std::swap(plan.triplet.alpha_x, plan.triplet.alpha_y);
      std::swap(plan.triplet.x, plan.triplet.y);
    }
  }
  return Result<EmbedPlan>::Ok(plan);
}

CQ BaseQueryOf(BaseQueryKind kind) {
  switch (kind) {
    case BaseQueryKind::kRst:
      return QRst();
    case BaseQueryKind::kNegRSNegT:
      return QNegRSNegT();
    case BaseQueryKind::kRNegSt:
      return QRNegSt();
    case BaseQueryKind::kRSNegT:
      return QRSNegT();
  }
  SHAPCQ_CHECK_MSG(false, "unreachable");
  return QRst();
}

namespace {

// Grounds `atom` with x -> a, y -> b (either may be unused), every other
// variable -> ⊙.
Tuple GroundAtom(const Atom& atom, VarId x, Value a, VarId y, Value b,
                 Value odot) {
  Tuple tuple(atom.terms.size());
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    const Term& term = atom.terms[i];
    if (term.IsConst()) {
      tuple[i] = term.constant;
    } else if (term.var == x) {
      tuple[i] = a;
    } else if (term.var == y) {
      tuple[i] = b;
    } else {
      tuple[i] = odot;
    }
  }
  return tuple;
}

}  // namespace

Database EmbedDatabase(const CQ& q, const EmbedPlan& plan,
                       const Database& base_db) {
  const Value odot = V("odot");
  const VarId x = plan.triplet.x;
  const VarId y = plan.triplet.y;
  const Atom& alpha_x = q.atom(plan.triplet.alpha_x);
  const Atom& alpha_y = q.atom(plan.triplet.alpha_y);
  const Atom& alpha_xy = q.atom(plan.triplet.alpha_xy);

  Database out;
  // Every relation of q exists (possibly empty — negative non-triplet atoms
  // rely on their relations being empty).
  for (const Atom& atom : q.atoms()) {
    out.DeclareRelation(atom.relation, atom.arity());
  }

  // R facts through α_x, T facts through α_y (endogeneity preserved).
  for (FactId fact : base_db.facts_of("R")) {
    out.AddFactIfAbsent(alpha_x.relation,
                        GroundAtom(alpha_x, x, base_db.tuple_of(fact)[0], y,
                                   odot, odot),
                        base_db.is_endogenous(fact));
  }
  for (FactId fact : base_db.facts_of("T")) {
    out.AddFactIfAbsent(alpha_y.relation,
                        GroundAtom(alpha_y, y, base_db.tuple_of(fact)[0], x,
                                   odot, odot),
                        base_db.is_endogenous(fact));
  }
  // S facts through α_xy and through every positive non-triplet atom.
  for (FactId fact : base_db.facts_of("S")) {
    SHAPCQ_CHECK_MSG(!base_db.is_endogenous(fact),
                     "Lemma B.4 assumes every S fact is exogenous");
    const Value a = base_db.tuple_of(fact)[0];
    const Value b = base_db.tuple_of(fact)[1];
    out.AddFactIfAbsent(alpha_xy.relation,
                        GroundAtom(alpha_xy, x, a, y, b, odot), false);
    for (size_t i = 0; i < q.atom_count(); ++i) {
      if (i == plan.triplet.alpha_x || i == plan.triplet.alpha_y ||
          i == plan.triplet.alpha_xy || q.atom(i).negated) {
        continue;
      }
      out.AddFactIfAbsent(q.atom(i).relation,
                          GroundAtom(q.atom(i), x, a, y, b, odot), false);
    }
  }
  return out;
}

FactId MapEmbeddedFact(const Database& base_db, FactId base_fact, const CQ& q,
                       const EmbedPlan& plan, const Database& embedded_db) {
  const Value odot = V("odot");
  const std::string& relation =
      base_db.schema().name(base_db.relation_of(base_fact));
  SHAPCQ_CHECK_MSG(relation == "R" || relation == "T",
                   "only R and T facts have endogenous counterparts");
  const Value value = base_db.tuple_of(base_fact)[0];
  Tuple tuple;
  std::string target;
  if (relation == "R") {
    const Atom& alpha_x = q.atom(plan.triplet.alpha_x);
    tuple = GroundAtom(alpha_x, plan.triplet.x, value, plan.triplet.y, odot,
                       odot);
    target = alpha_x.relation;
  } else {
    const Atom& alpha_y = q.atom(plan.triplet.alpha_y);
    tuple = GroundAtom(alpha_y, plan.triplet.y, value, plan.triplet.x, odot,
                       odot);
    target = alpha_y.relation;
  }
  const FactId mapped = embedded_db.FindFact(target, tuple);
  SHAPCQ_CHECK(mapped != kNoFact);
  return mapped;
}

Database ComplementSWithinRT(const Database& db) {
  Database out;
  for (FactId fact : db.facts_of("R")) {
    out.AddFact("R", db.tuple_of(fact), db.is_endogenous(fact));
  }
  for (FactId fact : db.facts_of("T")) {
    out.AddFact("T", db.tuple_of(fact), db.is_endogenous(fact));
  }
  out.DeclareRelation("S", 2);
  for (FactId r_fact : db.facts_of("R")) {
    for (FactId t_fact : db.facts_of("T")) {
      Tuple pair{db.tuple_of(r_fact)[0], db.tuple_of(t_fact)[0]};
      if (db.FindFact("S", pair) == kNoFact) {
        out.AddFactIfAbsent("S", std::move(pair), false);
      }
    }
  }
  return out;
}

}  // namespace shapcq
