#include "core/exoshap.h"

#include <algorithm>
#include <memory>
#include <set>

#include "core/count_sat.h"
#include "core/shapley.h"
#include "core/shapley_engine.h"
#include "eval/complement.h"
#include "eval/homomorphism.h"
#include "eval/join.h"
#include "util/check.h"

namespace shapcq {

namespace {

std::string FreshRelationName(const Schema& schema, const std::string& base) {
  if (!schema.Has(base)) return base;
  for (int i = 2;; ++i) {
    std::string candidate = base + "_" + std::to_string(i);
    if (!schema.Has(candidate)) return candidate;
  }
}

// Copies an atom of `from` into `to`, translating variables by name.
Atom TranslateAtom(const Atom& atom, const CQ& from, CQ* to) {
  Atom copy;
  copy.relation = atom.relation;
  copy.negated = atom.negated;
  for (const Term& term : atom.terms) {
    if (term.IsConst()) {
      copy.terms.push_back(term);
    } else {
      copy.terms.push_back(
          Term::MakeVar(to->GetOrAddVar(from.var_name(term.var))));
    }
  }
  return copy;
}

}  // namespace

TransformedInstance ComplementNegatedExoAtoms(const CQ& q, const Database& db,
                                              const ExoRelations& exo) {
  TransformedInstance out{q, db, exo};
  for (Atom& atom : out.query.mutable_atoms()) {
    if (!atom.negated || exo.count(atom.relation) == 0) continue;
    // Make sure the relation exists even if it has no facts.
    out.db.DeclareRelation(atom.relation, atom.arity());
    const std::string name =
        FreshRelationName(out.db.schema(), atom.relation + "_c");
    out.db.DeclareRelation(name, atom.arity());
    for (Tuple& tuple : ComplementRelation(out.db, atom.relation)) {
      out.db.AddExo(name, std::move(tuple));
    }
    atom.negated = false;
    atom.relation = name;
    out.exo.insert(name);
  }
  return out;
}

TransformedInstance JoinExogenousComponents(const CQ& q, const Database& db,
                                            const ExoRelations& exo) {
  const auto components = ExogenousAtomComponents(q, exo);
  TransformedInstance out;
  out.db = db;
  out.exo = exo;
  CQ rebuilt(q.name());

  std::vector<bool> in_component(q.atom_count(), false);
  for (const auto& component : components) {
    for (size_t index : component) {
      SHAPCQ_CHECK_MSG(!q.atom(index).negated,
                       "JoinExogenousComponents requires step 1 first");
      in_component[index] = true;
    }
  }
  // Non-exogenous atoms survive unchanged (same order).
  for (size_t i = 0; i < q.atom_count(); ++i) {
    if (!in_component[i]) rebuilt.AddAtom(TranslateAtom(q.atom(i), q, &rebuilt));
  }
  // One joined atom per component.
  for (const auto& component : components) {
    CQ join_query("qC");
    for (size_t index : component) {
      join_query.AddAtom(TranslateAtom(q.atom(index), q, &join_query));
    }
    std::vector<VarId> head = join_query.UsedVars();
    join_query.SetHead(head);
    const std::vector<Tuple> tuples = MaterializeAnswers(join_query, db);

    std::string base = "Join";
    for (size_t index : component) base += "_" + q.atom(index).relation;
    const std::string name = FreshRelationName(out.db.schema(), base);
    out.db.DeclareRelation(name, head.size());
    for (const Tuple& tuple : tuples) out.db.AddExo(name, tuple);
    out.exo.insert(name);

    Atom joined;
    joined.relation = name;
    joined.negated = false;
    for (VarId var : head) {
      joined.terms.push_back(
          Term::MakeVar(rebuilt.GetOrAddVar(join_query.var_name(var))));
    }
    rebuilt.AddAtom(std::move(joined));
  }
  out.query = std::move(rebuilt);
  return out;
}

Result<TransformedInstance> PadExogenousAtoms(const CQ& q, const Database& db,
                                              const ExoRelations& exo) {
  TransformedInstance out{q, db, exo};
  const std::vector<VarId> exo_var_list = ExogenousVars(q, exo);
  const std::set<VarId> exo_vars(exo_var_list.begin(), exo_var_list.end());

  for (size_t i = 0; i < q.atom_count(); ++i) {
    if (!IsExogenousAtom(q, i, exo)) continue;
    const Atom& atom = q.atom(i);
    SHAPCQ_CHECK_MSG(!atom.negated, "PadExogenousAtoms requires step 1 first");

    // Non-exogenous variables of the atom, in first-occurrence order.
    std::vector<VarId> kept;
    for (VarId var : atom.Variables()) {
      if (exo_vars.count(var) == 0) kept.push_back(var);
    }
    // Covering non-exogenous atom β with Vars(kept) ⊆ Vars(β) (Lemma 4.4).
    int beta = -1;
    for (size_t j = 0; j < q.atom_count(); ++j) {
      if (IsExogenousAtom(q, j, exo)) continue;
      bool covers = true;
      for (VarId var : kept) {
        if (!q.atom(j).Uses(var)) covers = false;
      }
      if (covers) {
        beta = static_cast<int>(j);
        break;
      }
    }
    if (beta < 0) {
      return Result<TransformedInstance>::Error(
          "no covering non-exogenous atom for " + atom.relation +
          " — the query has a non-hierarchical path (Lemma 4.4)");
    }

    // Projection of the atom's relation onto the kept variables.
    CQ proj_query("proj");
    proj_query.AddAtom(TranslateAtom(atom, q, &proj_query));
    std::vector<VarId> proj_head;
    for (VarId var : kept) {
      proj_head.push_back(proj_query.FindVar(q.var_name(var)));
    }
    proj_query.SetHead(proj_head);
    const std::vector<Tuple> projected =
        MaterializeAnswers(proj_query, out.db);

    // β's variables in order; the missing ones are padded over the domain.
    const std::vector<VarId> beta_vars =
        q.atom(static_cast<size_t>(beta)).Variables();
    std::vector<VarId> missing;
    for (VarId var : beta_vars) {
      if (std::find(kept.begin(), kept.end(), var) == kept.end()) {
        missing.push_back(var);
      }
    }
    const std::vector<Tuple> pads =
        CartesianPower(out.db.ActiveDomain(), missing.size());

    const std::string name =
        FreshRelationName(out.db.schema(), atom.relation + "_p");
    out.db.DeclareRelation(name, beta_vars.size());
    for (const Tuple& base : projected) {
      for (const Tuple& pad : pads) {
        Tuple widened(beta_vars.size());
        for (size_t pos = 0; pos < beta_vars.size(); ++pos) {
          const VarId var = beta_vars[pos];
          auto kept_it = std::find(kept.begin(), kept.end(), var);
          if (kept_it != kept.end()) {
            widened[pos] = base[static_cast<size_t>(kept_it - kept.begin())];
          } else {
            auto miss_it = std::find(missing.begin(), missing.end(), var);
            widened[pos] = pad[static_cast<size_t>(miss_it - missing.begin())];
          }
        }
        out.db.AddFactIfAbsent(name, std::move(widened), /*endogenous=*/false);
      }
    }
    out.exo.insert(name);

    Atom& replaced = out.query.mutable_atoms()[i];
    replaced.relation = name;
    replaced.negated = false;
    replaced.terms.clear();
    for (VarId var : beta_vars) replaced.terms.push_back(Term::MakeVar(var));
  }
  return Result<TransformedInstance>::Ok(std::move(out));
}

Result<TransformedInstance> ExoShapTransform(const CQ& q, const Database& db,
                                             const ExoRelations& exo) {
  if (!IsSafe(q)) {
    return Result<TransformedInstance>::Error("ExoShap requires safe negation");
  }
  if (!IsSelfJoinFree(q)) {
    return Result<TransformedInstance>::Error(
        "ExoShap requires a self-join-free query");
  }
  if (FindNonHierarchicalPath(q, exo).has_value()) {
    return Result<TransformedInstance>::Error(
        "query has a non-hierarchical path: FP^#P-hard (Theorem 4.3)");
  }
  // Exogenous relations must not hide endogenous facts.
  for (const std::string& relation : exo) {
    for (FactId fact : db.facts_of(relation)) {
      if (db.is_endogenous(fact)) {
        return Result<TransformedInstance>::Error(
            "relation " + relation +
            " declared exogenous but contains an endogenous fact");
      }
    }
  }
  TransformedInstance step1 = ComplementNegatedExoAtoms(q, db, exo);
  TransformedInstance step2 =
      JoinExogenousComponents(step1.query, step1.db, step1.exo);
  auto step3 = PadExogenousAtoms(step2.query, step2.db, step2.exo);
  if (!step3.ok()) return step3;
  SHAPCQ_CHECK_MSG(IsHierarchical(step3.value().query),
                   "ExoShap output is not hierarchical");
  return step3;
}

namespace {

// A query whose atoms are all exogenous ignores the endogenous facts.
bool IgnoresEndogenousFacts(const CQ& q, const ExoRelations& exo) {
  for (const Atom& atom : q.atoms()) {
    if (exo.count(atom.relation) == 0) return false;
  }
  return true;
}

// The shared tail of both ExoShap entry points: the transformed instance
// and a ShapleyEngine built over it. The instance is heap-pinned because
// the engine holds a pointer to its database.
struct MappedShapleyEngine {
  std::unique_ptr<TransformedInstance> instance;
  ShapleyEngine engine;

  // The transformation preserves each endogenous fact's (relation, tuple)
  // identity but not its FactId / endo index.
  FactId MapFact(const Database& original, FactId f) const {
    const FactId mapped = instance->db.FindFact(
        original.schema().name(original.relation_of(f)), original.tuple_of(f));
    SHAPCQ_CHECK_MSG(mapped != kNoFact,
                     "endogenous fact lost by the transformation");
    return mapped;
  }
};

Result<MappedShapleyEngine> BuildMappedEngine(const CQ& q, const Database& db,
                                              const ExoRelations& exo) {
  auto transformed = ExoShapTransform(q, db, exo);
  if (!transformed.ok()) {
    return Result<MappedShapleyEngine>::Error(transformed.error());
  }
  auto instance =
      std::make_unique<TransformedInstance>(std::move(transformed).value());
  SHAPCQ_CHECK(instance->db.endogenous_count() == db.endogenous_count());
  auto engine = ShapleyEngine::Build(instance->query, instance->db);
  if (!engine.ok()) return Result<MappedShapleyEngine>::Error(engine.error());
  return Result<MappedShapleyEngine>::Ok(
      MappedShapleyEngine{std::move(instance), std::move(engine).value()});
}

}  // namespace

Result<Rational> ExoShapShapley(const CQ& q, const Database& db,
                                const ExoRelations& exo, FactId f) {
  if (!db.is_endogenous(f)) {
    return Result<Rational>::Error("Shapley of an exogenous fact");
  }
  if (IgnoresEndogenousFacts(q, exo)) return Result<Rational>::Ok(Rational(0));
  auto built = BuildMappedEngine(q, db, exo);
  if (!built.ok()) return Result<Rational>::Error(built.error());
  MappedShapleyEngine mapped = std::move(built).value();
  return Result<Rational>::Ok(mapped.engine.Value(mapped.MapFact(db, f)));
}

Result<std::vector<Rational>> ExoShapShapleyAll(const CQ& q,
                                                const Database& db,
                                                const ExoRelations& exo,
                                                const ParallelOptions& options) {
  using AllResult = Result<std::vector<Rational>>;
  if (IgnoresEndogenousFacts(q, exo)) {
    return AllResult::Ok(
        std::vector<Rational>(db.endogenous_count(), Rational(0)));
  }
  auto built = BuildMappedEngine(q, db, exo);
  if (!built.ok()) return AllResult::Error(built.error());
  MappedShapleyEngine mapped = std::move(built).value();
  // One all-facts pass over the transformed instance — in parallel when
  // requested — then reorder into the ORIGINAL db's endo-index order.
  const std::vector<Rational> transformed_values =
      mapped.engine.AllValues(options);
  std::vector<Rational> values;
  values.reserve(db.endogenous_count());
  for (FactId f : db.endogenous_facts()) {
    values.push_back(
        transformed_values[mapped.instance->db.endo_index(mapped.MapFact(db, f))]);
  }
  return AllResult::Ok(std::move(values));
}

}  // namespace shapcq
