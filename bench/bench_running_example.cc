// E1 — Example 2.3 / Appendix A: exact Shapley values of every endogenous
// fact of the Figure 1 database for q1, paper value vs computed, via both
// the polynomial engine and brute force. Also prints q2's values under the
// Section 4 exogenous assumption (no paper values exist for q2; brute force
// is the cross-check).

#include <cstdio>

#include "core/brute_force.h"
#include "core/exoshap.h"
#include "core/shapley.h"
#include "datasets/university.h"

int main() {
  using namespace shapcq;
  UniversityDb u = BuildUniversityDb();
  const CQ q1 = UniversityQ1();
  const std::vector<Rational> paper = UniversityQ1PaperValues();
  const std::vector<FactId> facts = {u.ft1, u.ft2, u.ft3, u.fr1,
                                     u.fr2, u.fr3, u.fr4, u.fr5};

  std::printf("E1: Example 2.3 — Shapley(D, q1, f) on the Figure 1 database\n");
  std::printf("    q1() :- Stud(x), not TA(x), Reg(x,y)\n\n");
  std::printf("%-22s %10s %10s %10s %7s\n", "fact", "paper", "CntSat",
              "brute", "match");
  bool all_match = true;
  Rational sum(0);
  for (size_t i = 0; i < facts.size(); ++i) {
    const Rational fast = ShapleyViaCountSat(q1, u.db, facts[i]).value();
    const Rational slow = ShapleyBruteForce(q1, u.db, facts[i]);
    const bool match = fast == paper[i] && slow == paper[i];
    all_match &= match;
    sum += fast;
    std::printf("%-22s %10s %10s %10s %7s\n",
                u.db.FactToString(facts[i]).c_str(),
                paper[i].ToString().c_str(), fast.ToString().c_str(),
                slow.ToString().c_str(), match ? "yes" : "NO");
  }
  std::printf("%-22s %10s\n", "sum (efficiency)", sum.ToString().c_str());
  std::printf("\nresult: %s\n",
              all_match && sum == Rational(1)
                  ? "all values match the paper; efficiency holds"
                  : "MISMATCH AGAINST THE PAPER");

  // q2 under exogenous Stud/Course (Section 4; tractable by Theorem 4.3).
  const CQ q2 = UniversityQ2();
  std::printf("\nq2() :- Stud(x), not TA(x), Reg(x,y), not Course(y,'CS')\n");
  std::printf("with exogenous {Stud, Course} (Theorem 4.3):\n\n");
  std::printf("%-22s %10s %10s %7s\n", "fact", "ExoShap", "brute", "match");
  for (FactId f : facts) {
    const Rational fast =
        ExoShapShapley(q2, u.db, {"Stud", "Course"}, f).value();
    const Rational slow = ShapleyBruteForce(q2, u.db, f);
    std::printf("%-22s %10s %10s %7s\n", u.db.FactToString(f).c_str(),
                fast.ToString().c_str(), slow.ToString().c_str(),
                fast == slow ? "yes" : "NO");
  }
  return 0;
}
