// Single-pass exact Shapley values for ALL endogenous facts.
//
// The per-fact reduction (shapley.h) runs the full CntSat recursion twice per
// fact — an O(|Dn|) blow-up over what the recursion structure requires,
// because forcing one fact exogenous (or removing it) only perturbs the
// recursion along the root-to-leaf path that contains the fact. This engine
// exploits that:
//
//  1. Shared index. The matched-fact index (every fact matched against every
//     atom pattern) and the root-variable slice tree of the CntSat recursion
//     are built ONCE. Facts live in a flat arena; recursion slices are
//     vectors of arena indices, never copied Tuples.
//  2. Node memoization. Every tree node caches its |Sat| count vector, and
//     every internal node lazily caches, per child, the convolution of all
//     OTHER children's combine vectors (prefix x suffix products). A per-fact
//     query then re-evaluates only the leaf-to-root path, convolving the
//     perturbed child vector against the memoized sibling product at each
//     ancestor.
//  3. Orbits. Facts whose leaf-to-root paths traverse structurally identical
//     (hash-consed signature-equal) children are symmetric players of the
//     game; one Shapley value is computed per orbit. Facts matching no atom
//     — and facts inconsistent at repeated root positions — are null players
//     with value 0, no computation at all.
//  4. Mutations. InsertFact/DeleteFact/ApplyDelta splice a fact into (or out
//     of) the arena and the affected leaf, then re-derive the memoized |Sat|
//     vectors only along the dirtied root-to-leaf path, convolving against
//     the still-valid sibling products; orbit signatures are re-hashed for
//     the dirty path and orbit keys regenerate lazily on the next query. The
//     engine therefore tracks a changing database without rebuilds — see
//     "Incremental maintenance" in DESIGN.md.
//
// Results are bit-identical to the per-fact path: both assemble
// Shapley(D,q,f) from the same two exact |Sat| vectors. After any mutation
// sequence they are bit-identical to a fresh Build() on the mutated
// database.

#ifndef SHAPCQ_CORE_SHAPLEY_ENGINE_H_
#define SHAPCQ_CORE_SHAPLEY_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "db/database.h"
#include "query/cq.h"
#include "util/count_vector.h"
#include "util/rational.h"
#include "util/result.h"

namespace shapcq {

class CancelToken;  // util/cancel.h

/// Which numeric core backs a built engine. kArena (the default) compiles
/// the recursion tree into the flat EngineArena: count-vector cells in one
/// contiguous buffer, evaluation as a shared difference-propagation sweep,
/// mutation patches on arena ranges. kTree keeps every count vector inside
/// the pointer-linked tree nodes — the original implementation, retained as
/// the always-on differential oracle and the `--engine=tree` escape hatch.
/// Both cores produce bit-identical values for every query and mutation
/// sequence (the fuzz battery in tests/engine_arena_test.cc enforces it).
enum class EngineCore { kArena, kTree };

/// Maps "arena"/"tree" to the enum; nullopt for anything else. Shared by
/// the CLI and server --engine flags and the report-request grammar.
std::optional<EngineCore> ParseEngineCore(const std::string& name);

/// One fact mutation for ShapleyEngine::ApplyDelta: an insert carries the
/// fact literal, a delete the (stable) FactId of a live fact.
struct FactDelta {
  enum class Op { kInsert, kDelete };

  Op op = Op::kInsert;
  std::string relation;    ///< kInsert: relation name
  Tuple tuple;             ///< kInsert: the tuple
  bool endogenous = true;  ///< kInsert: player or given
  FactId fact = kNoFact;   ///< kDelete: fact to remove

  static FactDelta Insert(std::string relation, Tuple tuple,
                          bool endogenous = true) {
    FactDelta delta;
    delta.op = Op::kInsert;
    delta.relation = std::move(relation);
    delta.tuple = std::move(tuple);
    delta.endogenous = endogenous;
    return delta;
  }
  static FactDelta Delete(FactId fact) {
    FactDelta delta;
    delta.op = Op::kDelete;
    delta.fact = fact;
    return delta;
  }
};

/// Execution options for the all-facts entry points. The default is the
/// serial path; num_threads > 1 shards the orbit-representative
/// re-evaluations over a worker pool. Results are bit-identical to serial at
/// every thread count: representatives are chosen in fixed endo-index order,
/// each value is a pure function of the built tree, and the merge writes
/// results into pre-assigned slots (see "Threading contract" in DESIGN.md).
struct ParallelOptions {
  /// Worker threads for all-facts queries. 1 = serial (no pool, no locks on
  /// the hot path); 0 = auto (std::thread::hardware_concurrency).
  size_t num_threads = 1;
};

/// All-facts exact Shapley computation over a shared CntSat index.
/// Build() once per (query, database); value queries are then cheap.
class ShapleyEngine {
 public:
  /// Build/query statistics, for tests and benchmarks.
  struct Stats {
    size_t node_count = 0;        ///< recursion tree nodes
    size_t arena_size = 0;        ///< facts matched into the shared arena
    size_t null_player_count = 0; ///< endogenous facts with Shapley ≡ 0
    size_t orbit_count = 0;       ///< distinct orbits among endogenous facts
  };

  /// Empty engine; the only way to get a usable one is Build().
  ShapleyEngine();
  ~ShapleyEngine();
  ShapleyEngine(ShapleyEngine&&) noexcept;
  ShapleyEngine& operator=(ShapleyEngine&&) noexcept;

  /// Builds the shared index and memoized recursion tree, then (with the
  /// default kArena core) compiles it into the flat arena. Requires q safe,
  /// self-join-free and hierarchical (returns an error otherwise, mirroring
  /// CountSat). The database is captured by reference metadata only; it must
  /// outlive the engine. A non-null `cancel` token is polled at every
  /// recursion step of the tree build; on expiry Build unwinds promptly and
  /// returns the cancellation error (CancelToken::IsCancelled) — the
  /// partially built engine is discarded and the database is untouched, so
  /// a retry without a deadline is bit-identical to an uncancelled build.
  static Result<ShapleyEngine> Build(const CQ& q, const Database& db,
                                     EngineCore core = EngineCore::kArena,
                                     const CancelToken* cancel = nullptr);

  /// Which numeric core this engine runs on.
  EngineCore core() const;

  /// |Sat(D,q,k)| for all k of the unmodified database — identical to
  /// CountSat(q, db).
  const CountVector& BaselineSat() const;

  /// Shapley(D,q,f). Aborts if f is exogenous.
  Rational Value(FactId f);

  /// Shapley values of every endogenous fact, endo-index order. Computes one
  /// value per orbit and shares it across the orbit's members.
  std::vector<Rational> AllValues();

  /// As AllValues(), with options.num_threads workers re-evaluating orbit
  /// representatives concurrently. Output is bit-identical to the serial
  /// path for every thread count. Concurrent calls into one engine are NOT
  /// supported — the engine parallelizes internally, it is not re-entrant.
  std::vector<Rational> AllValues(const ParallelOptions& options);

  /// Cancellable all-facts query: as AllValues(options), polling `cancel`
  /// before each orbit-representative evaluation (and, on the arena core,
  /// between the level-parallel sweep's levels). On expiry it returns the
  /// cancellation error; every representative already evaluated stays
  /// memoized — each is a pure function of the built index, so a later
  /// (undeadlined) AllValues resumes from the partial memo and returns
  /// values bit-identical to a fresh engine's. nullptr/disabled tokens take
  /// the plain AllValues(options) path unchanged.
  Result<std::vector<Rational>> AllValues(const ParallelOptions& options,
                                          const CancelToken* cancel);

  /// Orbit id of every endogenous fact, endo-index order. Ids are dense,
  /// first-seen order; all null players share one orbit. Facts with equal
  /// orbit ids are symmetric players (equal Shapley values by construction).
  std::vector<size_t> OrbitIds();

  // -------------------------------------------------------------------------
  // Incremental maintenance. All three mutators take the SAME database the
  // engine was built on (passed mutably so the call site owns the write;
  // aborts on a different database). They update the database and patch the
  // memoized tree along the single dirtied root-to-leaf path, so subsequent
  // queries are bit-identical to a fresh Build() on the mutated database.
  // Mutations are NOT thread-safe: mutate serially, between (possibly
  // parallel) query calls — see "Threading contract" in DESIGN.md.
  // -------------------------------------------------------------------------

  /// Adds the fact to the database and splices it into the index: into an
  /// existing empty leaf, a freshly built subtree for an unseen root value,
  /// or the free-fact counters for facts the query cannot join. Returns the
  /// new FactId, or an error for a duplicate tuple or arity mismatch (the
  /// database is untouched on error).
  Result<FactId> InsertFact(Database& db, const std::string& relation,
                            Tuple tuple, bool endogenous);

  /// Removes a live fact (tombstoning its id) and patches its leaf or free
  /// counter out of the index. Returns the removed id, or an error if the
  /// fact id is invalid or already removed (the database is untouched).
  Result<FactId> DeleteFact(Database& db, FactId fact);

  /// Applies the deltas in order; stops at the first failing delta (earlier
  /// deltas stay applied). Returns the FactId per delta: the inserted id for
  /// inserts, the removed id for deletes.
  Result<std::vector<FactId>> ApplyDelta(Database& db,
                                         const std::vector<FactDelta>& delta);

  /// Cancellable batch: as ApplyDelta, polling `cancel` between delta
  /// records (never inside a patch — each record's root-to-leaf patch is
  /// atomic with respect to cancellation). On expiry it returns the
  /// cancellation error; deltas applied before the expiry stay applied, in
  /// line with the first-failing-delta contract above, and engine state
  /// remains exactly "the prefix was applied" — bit-identical to a fresh
  /// Build() on the prefix-mutated database.
  Result<std::vector<FactId>> ApplyDelta(Database& db,
                                         const std::vector<FactDelta>& delta,
                                         const CancelToken* cancel);

  /// Statistics of the built engine. orbit_count is populated by AllValues /
  /// OrbitIds (0 before the first all-facts query).
  Stats stats() const;

  /// Approximate heap footprint of the engine's index in bytes: recursion
  /// nodes, memoized count vectors (BigInt limbs), partial products, the
  /// fact arena, routing maps, orbit keys and the per-orbit value memo. An
  /// estimate for the serving layer's byte-budgeted LRU eviction — monotone
  /// in index size, not an allocator audit. Excludes the Database itself
  /// (owned by the caller, retained across evictions).
  size_t ApproxMemoryBytes() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace shapcq

#endif  // SHAPCQ_CORE_SHAPLEY_ENGINE_H_
