#include "db/database.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "util/check.h"

namespace shapcq {

Database::RelationData& Database::DataFor(RelationId relation) {
  if (relation_data_.size() <= static_cast<size_t>(relation)) {
    relation_data_.resize(static_cast<size_t>(relation) + 1);
  }
  return relation_data_[static_cast<size_t>(relation)];
}

FactId Database::AddFact(const std::string& relation, Tuple tuple,
                         bool endogenous) {
  RelationId rel = schema_.AddRelation(relation, tuple.size());
  RelationData& data = DataFor(rel);
  SHAPCQ_CHECK_MSG(data.by_tuple.find(tuple) == data.by_tuple.end(),
                   "duplicate fact");
  FactId id = static_cast<FactId>(relations_of_.size());
  data.fact_ids.push_back(id);
  data.by_tuple.emplace(tuple, id);
  relations_of_.push_back(rel);
  tuples_of_.push_back(std::move(tuple));
  removed_.push_back(false);
  ++live_count_;
  endogenous_.push_back(endogenous);
  if (endogenous) {
    endo_index_of_.push_back(static_cast<int32_t>(endo_facts_.size()));
    endo_facts_.push_back(id);
  } else {
    endo_index_of_.push_back(-1);
  }
  domain_dirty_ = true;
  return id;
}

FactId Database::AddFactIfAbsent(const std::string& relation, Tuple tuple,
                                 bool endogenous) {
  RelationId rel = schema_.AddRelation(relation, tuple.size());
  const RelationData& data = DataFor(rel);
  auto it = data.by_tuple.find(tuple);
  if (it != data.by_tuple.end()) {
    SHAPCQ_CHECK_MSG(endogenous_[static_cast<size_t>(it->second)] ==
                         endogenous,
                     "fact exists with the other endogeneity");
    return it->second;
  }
  return AddFact(relation, std::move(tuple), endogenous);
}

void Database::RemoveFact(FactId fact) {
  SHAPCQ_CHECK(fact >= 0 && static_cast<size_t>(fact) < relations_of_.size());
  SHAPCQ_CHECK_MSG(!removed_[static_cast<size_t>(fact)],
                   "fact already removed");
  RelationData& data = DataFor(relations_of_[static_cast<size_t>(fact)]);
  data.by_tuple.erase(tuples_of_[static_cast<size_t>(fact)]);
  data.fact_ids.erase(
      std::find(data.fact_ids.begin(), data.fact_ids.end(), fact));
  if (endogenous_[static_cast<size_t>(fact)]) {
    const int32_t e = endo_index_of_[static_cast<size_t>(fact)];
    endo_facts_.erase(endo_facts_.begin() + e);
    for (size_t i = static_cast<size_t>(e); i < endo_facts_.size(); ++i) {
      endo_index_of_[static_cast<size_t>(endo_facts_[i])] =
          static_cast<int32_t>(i);
    }
    endo_index_of_[static_cast<size_t>(fact)] = -1;
    endogenous_[static_cast<size_t>(fact)] = false;
  }
  removed_[static_cast<size_t>(fact)] = true;
  --live_count_;
  domain_dirty_ = true;
}

bool Database::is_removed(FactId fact) const {
  SHAPCQ_CHECK(fact >= 0 && static_cast<size_t>(fact) < removed_.size());
  return removed_[static_cast<size_t>(fact)];
}

FactId Database::FindFact(RelationId relation, const Tuple& tuple) const {
  if (relation == kNoRelation ||
      static_cast<size_t>(relation) >= relation_data_.size()) {
    return kNoFact;
  }
  const RelationData& data = relation_data_[static_cast<size_t>(relation)];
  auto it = data.by_tuple.find(tuple);
  return it == data.by_tuple.end() ? kNoFact : it->second;
}

FactId Database::FindFact(const std::string& relation,
                          const Tuple& tuple) const {
  return FindFact(schema_.Find(relation), tuple);
}

RelationId Database::relation_of(FactId fact) const {
  SHAPCQ_CHECK(fact >= 0 && static_cast<size_t>(fact) < relations_of_.size());
  return relations_of_[static_cast<size_t>(fact)];
}

const Tuple& Database::tuple_of(FactId fact) const {
  SHAPCQ_CHECK(fact >= 0 && static_cast<size_t>(fact) < tuples_of_.size());
  return tuples_of_[static_cast<size_t>(fact)];
}

bool Database::is_endogenous(FactId fact) const {
  SHAPCQ_CHECK(fact >= 0 && static_cast<size_t>(fact) < endogenous_.size());
  return endogenous_[static_cast<size_t>(fact)];
}

size_t Database::endo_index(FactId fact) const {
  SHAPCQ_CHECK(is_endogenous(fact));
  return static_cast<size_t>(endo_index_of_[static_cast<size_t>(fact)]);
}

const std::vector<FactId>& Database::facts_of(RelationId relation) const {
  static const std::vector<FactId>* empty = new std::vector<FactId>();
  if (relation == kNoRelation ||
      static_cast<size_t>(relation) >= relation_data_.size()) {
    return *empty;
  }
  return relation_data_[static_cast<size_t>(relation)].fact_ids;
}

std::vector<FactId> Database::facts_of(const std::string& relation) const {
  return facts_of(schema_.Find(relation));
}

const std::vector<Value>& Database::ActiveDomain() const {
  if (domain_dirty_) {
    active_domain_.clear();
    std::unordered_set<int32_t> seen;
    for (size_t i = 0; i < tuples_of_.size(); ++i) {
      if (removed_[i]) continue;
      for (const Value& value : tuples_of_[i]) {
        if (seen.insert(value.id).second) active_domain_.push_back(value);
      }
    }
    domain_dirty_ = false;
  }
  return active_domain_;
}

Database Database::CopyWithFactExogenous(FactId fact) const {
  SHAPCQ_CHECK(is_endogenous(fact));
  Database copy;
  copy.schema_ = schema_;
  for (size_t i = 0; i < fact_slot_count(); ++i) {
    if (removed_[i]) continue;
    FactId id = static_cast<FactId>(i);
    bool endo = endogenous_[i] && id != fact;
    copy.AddFact(schema_.name(relations_of_[i]), tuples_of_[i], endo);
  }
  return copy;
}

Database Database::CopyWithoutFact(FactId fact) const {
  Database copy;
  copy.schema_ = schema_;
  for (size_t i = 0; i < fact_slot_count(); ++i) {
    if (removed_[i]) continue;
    if (static_cast<FactId>(i) == fact) continue;
    copy.AddFact(schema_.name(relations_of_[i]), tuples_of_[i],
                 endogenous_[i]);
  }
  return copy;
}

std::string Database::FactToString(FactId fact) const {
  const ValueDictionary& dict = ValueDictionary::Global();
  std::string out = schema_.name(relation_of(fact)) + "(";
  const Tuple& tuple = tuple_of(fact);
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) out += ",";
    out += dict.Name(tuple[i]);
  }
  out += ")";
  if (is_endogenous(fact)) out += "*";
  return out;
}

std::string Database::ToString() const {
  std::string out;
  for (size_t i = 0; i < fact_slot_count(); ++i) {
    if (removed_[i]) continue;
    if (!out.empty()) out += " ";
    out += FactToString(static_cast<FactId>(i));
  }
  return out;
}

}  // namespace shapcq
