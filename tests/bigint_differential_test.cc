// Differential hardening of BigInt against native 128-bit arithmetic:
// thousands of randomized operations whose ground truth a machine type can
// still hold. The exactness of every Shapley value in this library reduces
// to this layer being right.

#include <gtest/gtest.h>

#include "util/bigint.h"
#include "util/random.h"

namespace shapcq {
namespace {

BigInt FromI128(__int128 value) {
  const bool negative = value < 0;
  unsigned __int128 magnitude =
      negative ? -static_cast<unsigned __int128>(value)
               : static_cast<unsigned __int128>(value);
  // Assemble from 32-bit chunks (a uint64 low half may not fit in int64).
  BigInt result(0);
  for (int chunk = 3; chunk >= 0; --chunk) {
    result = result.ShiftLeft(32) +
             BigInt(static_cast<int64_t>((magnitude >> (32 * chunk)) &
                                         0xffffffffu));
  }
  return negative ? -result : result;
}

std::string I128ToString(__int128 value) {
  if (value == 0) return "0";
  const bool negative = value < 0;
  unsigned __int128 magnitude =
      negative ? -static_cast<unsigned __int128>(value)
               : static_cast<unsigned __int128>(value);
  std::string digits;
  while (magnitude > 0) {
    digits.insert(digits.begin(),
                  static_cast<char>('0' + static_cast<int>(magnitude % 10)));
    magnitude /= 10;
  }
  return negative ? "-" + digits : digits;
}

int64_t RandomOperand(Rng* rng, int bits) {
  const uint64_t raw = rng->Next() >> (64 - bits);
  return rng->Bernoulli(0.5) ? static_cast<int64_t>(raw)
                             : -static_cast<int64_t>(raw);
}

class BigIntDifferential : public ::testing::TestWithParam<int> {};

TEST_P(BigIntDifferential, MulAddSubAgainstI128) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2685821657736338717ULL + 1);
  for (int i = 0; i < 500; ++i) {
    const int64_t a = RandomOperand(&rng, 60);
    const int64_t b = RandomOperand(&rng, 60);
    const __int128 wa = a, wb = b;
    EXPECT_EQ((BigInt(a) * BigInt(b)).ToString(), I128ToString(wa * wb))
        << a << " * " << b;
    EXPECT_EQ((BigInt(a) + BigInt(b)).ToString(), I128ToString(wa + wb));
    EXPECT_EQ((BigInt(a) - BigInt(b)).ToString(), I128ToString(wa - wb));
  }
}

TEST_P(BigIntDifferential, DivModAgainstI128) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 0x9e3779b97f4a7c15ULL + 3);
  for (int i = 0; i < 500; ++i) {
    // 120-bit dividend (as a product), up to 60-bit divisor.
    const int64_t a = RandomOperand(&rng, 60);
    const int64_t b = RandomOperand(&rng, 58);
    int64_t d = RandomOperand(&rng, 30 + static_cast<int>(i % 28));
    if (d == 0) d = 7;
    const __int128 dividend = static_cast<__int128>(a) * b;
    BigInt quotient, remainder;
    BigInt::DivMod(FromI128(dividend), BigInt(d), &quotient, &remainder);
    EXPECT_EQ(quotient.ToString(), I128ToString(dividend / d))
        << a << "*" << b << " / " << d;
    EXPECT_EQ(remainder.ToString(), I128ToString(dividend % d));
  }
}

TEST_P(BigIntDifferential, RoundTripThroughStrings) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 6364136223846793005ULL + 5);
  for (int i = 0; i < 200; ++i) {
    const __int128 value =
        static_cast<__int128>(RandomOperand(&rng, 62)) * RandomOperand(&rng, 62);
    const std::string text = I128ToString(value);
    EXPECT_EQ(BigInt::FromString(text).ToString(), text);
    EXPECT_EQ(FromI128(value).ToString(), text);
  }
}

TEST_P(BigIntDifferential, GcdAgainstEuclid) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 1442695040888963407ULL + 7);
  for (int i = 0; i < 300; ++i) {
    int64_t a = RandomOperand(&rng, 50);
    int64_t b = RandomOperand(&rng, 50);
    int64_t x = a < 0 ? -a : a, y = b < 0 ? -b : b;
    while (y != 0) {
      int64_t t = x % y;
      x = y;
      y = t;
    }
    EXPECT_EQ(BigInt::Gcd(BigInt(a), BigInt(b)).ToInt64(), x)
        << a << " gcd " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntDifferential, ::testing::Range(0, 6));

}  // namespace
}  // namespace shapcq
