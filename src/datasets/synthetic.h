// Synthetic workload generators: random databases shaped for a given query,
// used by the property-based tests (algorithm == brute force on thousands of
// random instances) and by the scaling benchmarks.

#ifndef SHAPCQ_DATASETS_SYNTHETIC_H_
#define SHAPCQ_DATASETS_SYNTHETIC_H_

#include "db/database.h"
#include "probdb/prob_database.h"
#include "query/analysis.h"
#include "query/cq.h"
#include "util/random.h"

namespace shapcq {

/// Knobs for RandomDatabaseForQuery.
struct SyntheticOptions {
  int domain_size = 4;          // constants per instance
  int facts_per_relation = 4;   // attempted inserts per relation of q
  double endogenous_bias = 0.7; // P(fact is endogenous) outside exo relations
};

/// Random database over exactly the relations of q (plus any constants the
/// query mentions, which are folded into the domain). Relations named in
/// `exo` receive only exogenous facts; all tuples are uniform over the
/// domain. Duplicates are dropped, so relations may end up smaller than
/// facts_per_relation.
Database RandomDatabaseForQuery(const CQ& q, const ExoRelations& exo,
                                const SyntheticOptions& options, Rng* rng);

/// Random tuple-independent database over the relations of q: facts in
/// `deterministic` relations get probability 1, the rest a uniform
/// probability in (0.1, 0.9].
ProbDatabase RandomProbDatabaseForQuery(const CQ& q,
                                        const ExoRelations& deterministic,
                                        const SyntheticOptions& options,
                                        Rng* rng);

/// A q1-shaped scaling instance: `students` students, each registered to
/// `courses_each` courses, a TA fact for every other student. All facts
/// endogenous except Stud. Used by the CntSat scaling bench.
Database BuildStudentScalingDb(int students, int courses_each);

}  // namespace shapcq

#endif  // SHAPCQ_DATASETS_SYNTHETIC_H_
