// Theorem B.5: hardness beyond self-join-freeness. For a polarity-consistent
// CQ¬ with a non-hierarchical triplet whose middle relation occurs only
// once, Shapley computation stays FP^#P-complete — e.g. the "married
// couple" queries
//   q() :- Unemployed(x), Married(x,y), Unemployed(y)
//   q() :- ¬Citizen(x), Married(x,y), ¬Citizen(y)
// The reduction identifies the R and T relations of a base instance
// (assuming their domains are disjoint) into a single relation; this module
// implements that identification so the theorem can be validated
// instance-by-instance.

#ifndef SHAPCQ_REDUCTIONS_SELFJOIN_H_
#define SHAPCQ_REDUCTIONS_SELFJOIN_H_

#include "db/database.h"
#include "query/cq.h"

namespace shapcq {

/// q() :- U(x), M(x,y), U(y) — the positive self-join query.
CQ QSelfJoinPositive();
/// q() :- ¬U(x), M(x,y), ¬U(y) — the negated self-join query.
CQ QSelfJoinNegative();

/// Theorem B.5's instance transformation: facts of R and T (whose value
/// domains must be disjoint — checked) are merged into one relation "U",
/// S becomes "M". Shapley values are preserved against the corresponding
/// base query (q_RST -> QSelfJoinPositive, q_¬RS¬T -> QSelfJoinNegative).
Database CollapseRTIntoSelfJoin(const Database& base_db);

/// The collapsed counterpart of a base R- or T-fact.
FactId MapCollapsedFact(const Database& base_db, FactId base_fact,
                        const Database& collapsed_db);

}  // namespace shapcq

#endif  // SHAPCQ_REDUCTIONS_SELFJOIN_H_
