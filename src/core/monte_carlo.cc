#include "core/monte_carlo.h"

#include <cmath>

#include "eval/homomorphism.h"
#include "util/check.h"

namespace shapcq {

size_t HoeffdingSampleCount(double epsilon, double delta) {
  SHAPCQ_CHECK(epsilon > 0 && epsilon < 1 && delta > 0 && delta < 1);
  return static_cast<size_t>(
      std::ceil(2.0 * std::log(2.0 / delta) / (epsilon * epsilon)));
}

namespace {

template <typename Query>
double ShapleyMonteCarloImpl(const Query& q, const Database& db, FactId f,
                             size_t samples, Rng* rng) {
  SHAPCQ_CHECK(db.is_endogenous(f));
  SHAPCQ_CHECK(samples > 0);
  const size_t n = db.endogenous_count();
  const size_t f_index = db.endo_index(f);
  int64_t total = 0;
  std::vector<size_t> order(n);
  for (size_t s = 0; s < samples; ++s) {
    for (size_t i = 0; i < n; ++i) order[i] = i;
    rng->Shuffle(&order);
    World world(n, false);
    for (size_t pos = 0; pos < n; ++pos) {
      if (order[pos] == f_index) break;
      world[order[pos]] = true;
    }
    const bool before = EvalBoolean(q, db, world);
    world[f_index] = true;
    const bool after = EvalBoolean(q, db, world);
    total += (after ? 1 : 0) - (before ? 1 : 0);
  }
  return static_cast<double>(total) / static_cast<double>(samples);
}

}  // namespace

double ShapleyMonteCarlo(const CQ& q, const Database& db, FactId f,
                         size_t samples, Rng* rng) {
  return ShapleyMonteCarloImpl(q, db, f, samples, rng);
}

double ShapleyMonteCarlo(const UCQ& q, const Database& db, FactId f,
                         size_t samples, Rng* rng) {
  return ShapleyMonteCarloImpl(q, db, f, samples, rng);
}

double ShapleyAdditiveFpras(const CQ& q, const Database& db, FactId f,
                            double epsilon, double delta, Rng* rng) {
  return ShapleyMonteCarlo(q, db, f, HoeffdingSampleCount(epsilon, delta),
                           rng);
}

double ShapleyStratifiedMonteCarlo(const CQ& q, const Database& db, FactId f,
                                   size_t samples_per_stratum, Rng* rng) {
  SHAPCQ_CHECK(db.is_endogenous(f));
  SHAPCQ_CHECK(samples_per_stratum > 0);
  const size_t n = db.endogenous_count();
  const size_t f_index = db.endo_index(f);
  // Other players, by endo index.
  std::vector<size_t> others;
  others.reserve(n - 1);
  for (size_t i = 0; i < n; ++i) {
    if (i != f_index) others.push_back(i);
  }
  double stratum_mean_sum = 0.0;
  for (size_t k = 0; k < n; ++k) {
    int64_t total = 0;
    for (size_t s = 0; s < samples_per_stratum; ++s) {
      // Uniform k-subset via a partial Fisher-Yates of `others`.
      for (size_t i = 0; i < k; ++i) {
        const size_t j =
            i + static_cast<size_t>(rng->UniformInt(others.size() - i));
        std::swap(others[i], others[j]);
      }
      World world(n, false);
      for (size_t i = 0; i < k; ++i) world[others[i]] = true;
      const bool before = EvalBoolean(q, db, world);
      world[f_index] = true;
      const bool after = EvalBoolean(q, db, world);
      total += (after ? 1 : 0) - (before ? 1 : 0);
    }
    stratum_mean_sum +=
        static_cast<double>(total) / static_cast<double>(samples_per_stratum);
  }
  return stratum_mean_sum / static_cast<double>(n);
}

}  // namespace shapcq
