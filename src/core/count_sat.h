// CntSat for hierarchical self-join-free CQ¬ (Lemma 3.2).
//
// Computes the full vector |Sat(D,q,k)| for k = 0..|Dn|: the number of
// k-subsets E of the endogenous facts with (Dx ∪ E) ⊨ q. The recursion
// follows the hierarchical structure of the query:
//
//  * disconnected subquery  -> independent conjunction: convolve components;
//  * connected with a root variable x (x occurs in every atom) -> the
//    database splits into disjoint slices by the value of x; the query holds
//    iff some slice holds, so unsatisfying counts multiply (convolve) and
//    sat = all − Π unsat;
//  * ground atom            -> base case extended for negation (Lemma 3.2):
//    a positive ground atom must be present (a forced pick if endogenous,
//    free if exogenous, impossible if absent); a negative ground atom must be
//    absent (impossible if exogenous, a forced non-pick if endogenous, free
//    if absent).
//
// Endogenous facts that match no atom pattern (wrong constants, unequal
// values at repeated-variable positions, relations not in q) are "free":
// they never affect satisfaction and enter through a binomial convolution.

#ifndef SHAPCQ_CORE_COUNT_SAT_H_
#define SHAPCQ_CORE_COUNT_SAT_H_

#include "db/database.h"
#include "query/cq.h"
#include "util/count_vector.h"
#include "util/result.h"

namespace shapcq {

/// Presence state of the (at most one) fact matching a fully-ground atom.
enum class GroundFactState {
  kAbsent = 0,      ///< no matching fact in the database
  kExogenous = 1,   ///< matched by an exogenous fact
  kEndogenous = 2,  ///< matched by an endogenous fact
};

/// |Sat| vector of a ground-atom leaf (the Lemma 3.2 base case with the
/// negation extension). Shared by the CntSat recursion and by ShapleyEngine,
/// whose incremental patches re-derive a leaf's vector whenever a fact
/// insert/delete flips the leaf's state.
CountVector GroundLeafSat(bool negated, GroundFactState state);

/// |Sat(D,q,k)| for all k, in time polynomial in |D|. Requires q safe,
/// self-join-free and hierarchical (returns an error otherwise).
Result<CountVector> CountSat(const CQ& q, const Database& db);

}  // namespace shapcq

#endif  // SHAPCQ_CORE_COUNT_SAT_H_
