// Unions of conjunctive queries with negation (UCQ¬).

#ifndef SHAPCQ_QUERY_UCQ_H_
#define SHAPCQ_QUERY_UCQ_H_

#include <string>
#include <vector>

#include "query/cq.h"

namespace shapcq {

/// A UCQ¬: q() :- q1() ∨ ... ∨ qn(). Satisfied when any disjunct is.
class UCQ {
 public:
  UCQ() = default;
  explicit UCQ(std::vector<CQ> disjuncts) : disjuncts_(std::move(disjuncts)) {}

  void AddDisjunct(CQ cq) { disjuncts_.push_back(std::move(cq)); }
  const std::vector<CQ>& disjuncts() const { return disjuncts_; }
  size_t size() const { return disjuncts_.size(); }
  const CQ& disjunct(size_t index) const { return disjuncts_[index]; }

  /// One disjunct per line.
  std::string ToString() const;

 private:
  std::vector<CQ> disjuncts_;
};

}  // namespace shapcq

#endif  // SHAPCQ_QUERY_UCQ_H_
