// CNF substrate, DPLL, and the Lemma D.1 reduction chain
// (3-colorability → (3+,2−)-SAT → (2+,2−,4+−)-SAT).

#include <gtest/gtest.h>

#include "reductions/cnf.h"
#include "reductions/coloring.h"
#include "reductions/dpll.h"
#include "util/random.h"

namespace shapcq {
namespace {

CnfFormula TinyUnsat() {
  // (x0) ∧ (¬x0).
  CnfFormula formula;
  formula.num_vars = 1;
  formula.clauses.push_back(Clause{{{0, true}}});
  formula.clauses.push_back(Clause{{{0, false}}});
  return formula;
}

TEST(CnfTest, EvalAndToString) {
  CnfFormula formula;
  formula.num_vars = 2;
  formula.clauses.push_back(Clause{{{0, true}, {1, false}}});
  EXPECT_TRUE(formula.Eval({true, true}));
  EXPECT_TRUE(formula.Eval({false, false}));
  EXPECT_FALSE(formula.Eval({false, true}));
  EXPECT_EQ(formula.ToString(), "(x0 | ~x1)");
}

TEST(CnfTest, BruteForceSat) {
  EXPECT_FALSE(TinyUnsat().SatisfiableBruteForce());
  CnfFormula empty;
  empty.num_vars = 2;
  EXPECT_TRUE(empty.SatisfiableBruteForce());
}

TEST(CnfTest, FormClassifiers) {
  Rng rng(1);
  EXPECT_TRUE(Is3CnfForm(Random3Cnf(5, 10, &rng)));
  EXPECT_TRUE(Is224Form(Random224Cnf(5, 10, &rng)));
  EXPECT_FALSE(Is224Form(Random3Cnf(5, 10, &rng)));
  EXPECT_FALSE(Is3CnfForm(Random224Cnf(5, 10, &rng)));
}

TEST(DpllTest, MatchesBruteForceOnRandom3Cnf) {
  Rng rng(42);
  for (int trial = 0; trial < 60; ++trial) {
    // Around the 3SAT threshold to get a mix of SAT/UNSAT.
    CnfFormula formula = Random3Cnf(6, 4 + trial % 24, &rng);
    std::vector<bool> model;
    const bool satisfiable = DpllSatisfiable(formula, &model);
    EXPECT_EQ(satisfiable, formula.SatisfiableBruteForce())
        << formula.ToString();
    if (satisfiable) EXPECT_TRUE(formula.Eval(model));
  }
}

TEST(DpllTest, MatchesBruteForceOnRandom224Cnf) {
  Rng rng(43);
  for (int trial = 0; trial < 60; ++trial) {
    CnfFormula formula = Random224Cnf(6, 4 + trial % 20, &rng);
    EXPECT_EQ(DpllSatisfiable(formula), formula.SatisfiableBruteForce())
        << formula.ToString();
  }
}

TEST(DpllTest, UnsatCore) { EXPECT_FALSE(DpllSatisfiable(TinyUnsat())); }

TEST(ColoringTest, TriangleIsColorableK4PlusIsNot) {
  SimpleGraph triangle{3, {{0, 1}, {1, 2}, {0, 2}}};
  EXPECT_TRUE(IsThreeColorableBruteForce(triangle));
  SimpleGraph k4{4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}};
  EXPECT_FALSE(IsThreeColorableBruteForce(k4));
}

TEST(ColoringTest, ReductionToThreeTwoSatAgrees) {
  Rng rng(44);
  for (int trial = 0; trial < 20; ++trial) {
    SimpleGraph graph = RandomGraph(5, 0.5 + 0.4 * (trial % 2), &rng);
    CnfFormula formula = ColoringToThreeTwoSat(graph);
    EXPECT_EQ(DpllSatisfiable(formula), IsThreeColorableBruteForce(graph))
        << "trial " << trial;
  }
}

TEST(ColoringTest, FullChainPreservesSatisfiability) {
  // 3-colorability → (3+,2−) → (2+,2−,4+−), equisatisfiable at every step.
  Rng rng(45);
  for (int trial = 0; trial < 10; ++trial) {
    SimpleGraph graph = RandomGraph(4, 0.6, &rng);
    CnfFormula three_two = ColoringToThreeTwoSat(graph);
    CnfFormula two_two_four = ThreeTwoTo224(three_two);
    EXPECT_TRUE(Is224Form(two_two_four));
    EXPECT_EQ(DpllSatisfiable(two_two_four),
              IsThreeColorableBruteForce(graph))
        << "trial " << trial;
  }
}

TEST(ColoringTest, RewriteKeepsVariablesSatisfiable) {
  // Direct check of the clause gadget: (x0 ∨ x1 ∨ x2) vs its three-clause
  // (2+,2−,4+−) rewrite, over all assignments of the original variables.
  CnfFormula three;
  three.num_vars = 3;
  three.clauses.push_back(Clause{{{0, true}, {1, true}, {2, true}}});
  CnfFormula rewritten = ThreeTwoTo224(three);
  ASSERT_EQ(rewritten.num_vars, 4);
  for (int mask = 0; mask < 8; ++mask) {
    std::vector<bool> base = {(mask & 1) != 0, (mask & 2) != 0,
                              (mask & 4) != 0};
    // The rewrite is satisfiable with this base assignment iff some value of
    // the fresh variable works.
    bool rewrite_ok = false;
    for (bool y : {false, true}) {
      std::vector<bool> full = base;
      full.push_back(y);
      rewrite_ok |= rewritten.Eval(full);
    }
    EXPECT_EQ(rewrite_ok, three.Eval(base)) << "mask " << mask;
  }
}

}  // namespace
}  // namespace shapcq
