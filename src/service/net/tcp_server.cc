#include "service/net/tcp_server.h"

#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "service/net/fd_stream.h"
#include "util/thread_pool.h"

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace shapcq {

namespace {

// Best-effort one-shot reply on a socket we are about to close (the
// overload rejection); partial sends and errors are not retried — the
// point is closing, not delivery guarantees.
void SendLine(int fd, const std::string& line) {
  (void)::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
}

// Orderly close of a rejected connection. close() with unread bytes in the
// receive queue sends RST, which can destroy the rejection line still in
// flight to the client — so half-close our side and drain what the client
// already sent (bounded: one short poll window, a few KB) before closing.
void CloseRejected(int fd) {
  ::shutdown(fd, SHUT_WR);
  char sink[1024];
  for (int rounds = 0; rounds < 8; ++rounds) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    if (::poll(&pfd, 1, 50) <= 0) break;
    const ssize_t got = ::recv(fd, sink, sizeof sink, 0);
    if (got <= 0) break;
  }
  ::close(fd);
}

}  // namespace

struct TcpServer::Impl {
  TcpServerOptions options;
  CommandLoopOptions loop_options;
  EngineRegistry* registry = nullptr;
  SessionLogManager* log = nullptr;

  int listen_fd = -1;
  uint16_t bound_port = 0;
  std::unique_ptr<ThreadPool> pool;

  // Per-connection state the idle watchdog reads while the worker runs:
  // the activity clock (stamped by FdStreamBuf on every recv/send) and the
  // reaped latch (count each reap once). shared_ptr: the watchdog may hold
  // a reference across the worker's teardown.
  struct ConnState {
    std::atomic<int64_t> last_activity_ms{0};
    std::atomic<bool> reaped{false};
  };

  // live_conns is the drain AND watchdog set: a connection registers its
  // fd before its worker starts and erases it (same mutex) before closing,
  // so neither the drain nor a reap ever SHUT_RDs a recycled descriptor.
  std::mutex live_mutex;
  std::map<int, std::shared_ptr<ConnState>> live_conns;
  std::atomic<size_t> live{0};
  std::atomic<size_t> total_errors{0};
  std::atomic<size_t> rejected{0};
  std::atomic<bool> shutdown_requested{false};

  ~Impl() {
    if (listen_fd >= 0) ::close(listen_fd);
  }

  void CountIoTimeout() {
    if (loop_options.transport_stats != nullptr) {
      loop_options.transport_stats->io_timeouts.fetch_add(
          1, std::memory_order_relaxed);
    }
  }

  void HandleConnection(int fd, std::shared_ptr<ConnState> state) {
    {
      const int io_timeout = options.io_timeout_ms > 0
                                 ? static_cast<int>(options.io_timeout_ms)
                                 : -1;
      FdStreamBuf buf(fd, io_timeout);
      buf.SetActivityClock(&state->last_activity_ms);
      std::iostream stream(&buf);
      // Shared mode: this connection's loop borrows the server's registry
      // and log manager; no stop pointer — drain reaches the loop as EOF
      // via SHUT_RD, after the in-flight command completed.
      CommandLoop loop(loop_options, registry, log);
      loop.Run(stream, stream, nullptr);
      total_errors.fetch_add(loop.error_count(), std::memory_order_relaxed);
      // Read-poll expiry is this thread's reap; the watchdog's SHUT_RD
      // surfaced as plain EOF and was counted (and latched) by the
      // watchdog itself — never twice.
      if (buf.timed_out() && !state->reaped.load(std::memory_order_relaxed)) {
        CountIoTimeout();
      }
    }
    {
      std::lock_guard<std::mutex> lock(live_mutex);
      live_conns.erase(fd);
    }
    ::close(fd);
    live.fetch_sub(1, std::memory_order_relaxed);
  }

  // The idle watchdog, riding the accept loop's poll tick: half-close any
  // connection whose last socket activity is idle_timeout_ms old. SHUT_RD
  // keeps the write side open, so an in-flight command still delivers its
  // response before the worker reads EOF and unwinds — an idle reap never
  // truncates a neighbor's (or even the victim's) response.
  void ReapIdle() {
    const int64_t now = FdStreamBuf::NowMillis();
    std::lock_guard<std::mutex> lock(live_mutex);
    for (auto& [fd, state] : live_conns) {
      if (state->reaped.load(std::memory_order_relaxed)) continue;
      const int64_t last =
          state->last_activity_ms.load(std::memory_order_relaxed);
      if (now - last < static_cast<int64_t>(options.idle_timeout_ms)) {
        continue;
      }
      state->reaped.store(true, std::memory_order_relaxed);
      CountIoTimeout();
      ::shutdown(fd, SHUT_RD);
    }
  }
};

TcpServer::TcpServer(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
TcpServer::TcpServer(TcpServer&&) noexcept = default;
TcpServer& TcpServer::operator=(TcpServer&&) noexcept = default;
TcpServer::~TcpServer() = default;

Result<TcpServer> TcpServer::Listen(const TcpServerOptions& options,
                                    const CommandLoopOptions& loop_options,
                                    EngineRegistry* registry,
                                    SessionLogManager* log) {
  using R = Result<TcpServer>;
  auto impl = std::make_unique<Impl>();
  impl->options = options;
  impl->loop_options = loop_options;
  impl->registry = registry;
  impl->log = log;

  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE | AI_NUMERICSERV;
  struct addrinfo* found = nullptr;
  const int rc = ::getaddrinfo(options.host.c_str(),
                               std::to_string(options.port).c_str(), &hints,
                               &found);
  if (rc != 0) {
    return R::Error("listen " + options.host + ": " + ::gai_strerror(rc));
  }

  std::string last_error = "no usable address";
  for (struct addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
        ::listen(fd, 128) != 0) {
      last_error = std::strerror(errno);
      ::close(fd);
      continue;
    }
    impl->listen_fd = fd;
    break;
  }
  ::freeaddrinfo(found);
  if (impl->listen_fd < 0) {
    return R::Error("listen " + options.host + ":" +
                    std::to_string(options.port) + ": " + last_error);
  }

  // Resolve the bound port (meaningful when options.port was 0).
  struct sockaddr_storage addr;
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(impl->listen_fd,
                    reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) == 0) {
    if (addr.ss_family == AF_INET) {
      impl->bound_port =
          ntohs(reinterpret_cast<struct sockaddr_in*>(&addr)->sin_port);
    } else if (addr.ss_family == AF_INET6) {
      impl->bound_port =
          ntohs(reinterpret_cast<struct sockaddr_in6*>(&addr)->sin6_port);
    }
  }

  const size_t pool_size =
      impl->options.max_connections > 0 ? impl->options.max_connections : 1;
  impl->pool = std::make_unique<ThreadPool>(pool_size);
  return R::Ok(TcpServer(std::move(impl)));
}

uint16_t TcpServer::port() const { return impl_->bound_port; }

size_t TcpServer::Serve(const volatile std::sig_atomic_t* stop) {
  size_t admitted = 0;
  struct pollfd pfd;
  pfd.fd = impl_->listen_fd;
  pfd.events = POLLIN;

  auto should_stop = [&]() {
    return (stop != nullptr && *stop) ||
           impl_->shutdown_requested.load(std::memory_order_relaxed);
  };

  while (!should_stop()) {
    pfd.revents = 0;
    // 100 ms tick: the latency bound on noticing the stop flag (a signal
    // also EINTRs the poll, so SIGTERM reacts immediately).
    const int ready = ::poll(&pfd, 1, 100);
    // The idle watchdog rides every tick — timeouts, EINTRs and idle polls
    // included — so a reap is never deferred by a quiet listener.
    if (impl_->options.idle_timeout_ms > 0) impl_->ReapIdle();
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // listener gone; drain below
    }
    if (ready == 0 || (pfd.revents & POLLIN) == 0) continue;

    const int fd = ::accept(impl_->listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
          errno == ECONNABORTED) {
        continue;
      }
      break;
    }
    // Atomic admission: claim a slot before handing off; over the cap,
    // reply-and-close instead of queueing invisibly.
    if (impl_->live.fetch_add(1, std::memory_order_relaxed) >=
        impl_->options.max_connections) {
      impl_->live.fetch_sub(1, std::memory_order_relaxed);
      impl_->rejected.fetch_add(1, std::memory_order_relaxed);
      SendLine(fd, "error: [E_OVERLOAD] server at connection cap (max " +
                       std::to_string(impl_->options.max_connections) +
                       ")\n");
      CloseRejected(fd);
      continue;
    }
    ++admitted;
    auto state = std::make_shared<Impl::ConnState>();
    state->last_activity_ms.store(FdStreamBuf::NowMillis(),
                                  std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(impl_->live_mutex);
      impl_->live_conns.emplace(fd, state);
    }
    Impl* impl = impl_.get();
    impl_->pool->Submit(
        [impl, fd, state]() { impl->HandleConnection(fd, state); });
  }

  // Drain: no new clients, half-close the live ones (the in-flight command
  // finishes, the next read is EOF), join the workers.
  ::close(impl_->listen_fd);
  impl_->listen_fd = -1;
  {
    std::lock_guard<std::mutex> lock(impl_->live_mutex);
    for (const auto& [fd, state] : impl_->live_conns) {
      (void)state;
      ::shutdown(fd, SHUT_RD);
    }
  }
  impl_->pool->Wait();
  return admitted;
}

void TcpServer::Shutdown() {
  impl_->shutdown_requested.store(true, std::memory_order_relaxed);
}

size_t TcpServer::total_errors() const {
  return impl_->total_errors.load(std::memory_order_relaxed);
}

size_t TcpServer::rejected_connections() const {
  return impl_->rejected.load(std::memory_order_relaxed);
}

}  // namespace shapcq
