#include "util/random.h"

#include "util/check.h"

namespace shapcq {

namespace {
inline uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
  // All-zero state is the lone degenerate fixed point; splitmix64 cannot
  // produce four zero outputs, but keep the guard explicit.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  SHAPCQ_CHECK(bound > 0);
  // Rejection sampling over the largest multiple of bound.
  const uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    uint64_t value = Next();
    if (value >= threshold) return value % bound;
  }
}

int64_t Rng::UniformInRange(int64_t lo, int64_t hi) {
  SHAPCQ_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 top bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double probability) {
  return UniformDouble() < probability;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  Shuffle(&perm);
  return perm;
}

}  // namespace shapcq
