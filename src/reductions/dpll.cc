#include "reductions/dpll.h"

#include "util/check.h"

namespace shapcq {

namespace {

enum class Truth : int8_t { kUnset, kTrue, kFalse };

class Dpll {
 public:
  explicit Dpll(const CnfFormula& formula)
      : formula_(formula),
        values_(static_cast<size_t>(formula.num_vars), Truth::kUnset) {}

  bool Solve() { return Search(); }

  std::vector<bool> Model() const {
    std::vector<bool> model(values_.size());
    for (size_t i = 0; i < values_.size(); ++i) {
      model[i] = values_[i] == Truth::kTrue;  // kUnset -> false (don't-care)
    }
    return model;
  }

 private:
  Truth LiteralTruth(const Literal& literal) const {
    Truth value = values_[static_cast<size_t>(literal.var)];
    if (value == Truth::kUnset) return Truth::kUnset;
    const bool is_true = (value == Truth::kTrue) == literal.positive;
    return is_true ? Truth::kTrue : Truth::kFalse;
  }

  // Unit propagation: returns false on conflict; records assignments in
  // *trail for backtracking.
  bool Propagate(std::vector<int>* trail) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Clause& clause : formula_.clauses) {
        int unset_count = 0;
        const Literal* unit = nullptr;
        bool satisfied = false;
        for (const Literal& literal : clause.literals) {
          Truth t = LiteralTruth(literal);
          if (t == Truth::kTrue) {
            satisfied = true;
            break;
          }
          if (t == Truth::kUnset) {
            ++unset_count;
            unit = &literal;
          }
        }
        if (satisfied) continue;
        if (unset_count == 0) return false;  // conflict
        if (unset_count == 1) {
          values_[static_cast<size_t>(unit->var)] =
              unit->positive ? Truth::kTrue : Truth::kFalse;
          trail->push_back(unit->var);
          changed = true;
        }
      }
    }
    return true;
  }

  bool Search() {
    std::vector<int> trail;
    if (!Propagate(&trail)) {
      Undo(trail);
      return false;
    }
    int branch = -1;
    for (size_t v = 0; v < values_.size(); ++v) {
      if (values_[v] == Truth::kUnset) {
        branch = static_cast<int>(v);
        break;
      }
    }
    if (branch < 0) return true;  // complete assignment, all clauses sat
    for (Truth choice : {Truth::kTrue, Truth::kFalse}) {
      values_[static_cast<size_t>(branch)] = choice;
      if (Search()) return true;
      values_[static_cast<size_t>(branch)] = Truth::kUnset;
    }
    Undo(trail);
    return false;
  }

  void Undo(const std::vector<int>& trail) {
    for (int var : trail) values_[static_cast<size_t>(var)] = Truth::kUnset;
  }

  const CnfFormula& formula_;
  std::vector<Truth> values_;
};

}  // namespace

bool DpllSatisfiable(const CnfFormula& formula, std::vector<bool>* model) {
  Dpll solver(formula);
  const bool satisfiable = solver.Solve();
  if (satisfiable && model != nullptr) {
    *model = solver.Model();
    SHAPCQ_CHECK(formula.Eval(*model));
  }
  return satisfiable;
}

}  // namespace shapcq
