// Example 4.1: the academic-publications scenario of Livshits et al. —
//   q() :- Author(x,y), Pub(x,z), Citations(z,w)
// with Pub and Citations exogenous. Non-hierarchical, yet tractable by
// ExoShap (Theorem 4.3).

#ifndef SHAPCQ_DATASETS_CITATIONS_H_
#define SHAPCQ_DATASETS_CITATIONS_H_

#include "db/database.h"
#include "query/analysis.h"
#include "query/cq.h"
#include "util/random.h"

namespace shapcq {

/// q() :- Author(x,y), Pub(x,z), Citations(z,w).
CQ CitationsQuery();

/// {Pub, Citations} — the exogenous relations of Example 4.1.
ExoRelations CitationsExoRelations();

/// {Citations} — the weaker prior-knowledge variant, still tractable.
ExoRelations CitationsOnlyExo();

/// A small hand-made instance with endogenous Author facts.
Database BuildSmallCitationsDb();

/// Random instance: Author facts endogenous, Pub/Citations exogenous.
Database BuildRandomCitationsDb(int researchers, int papers,
                                double pub_probability,
                                double cite_probability, Rng* rng);

}  // namespace shapcq

#endif  // SHAPCQ_DATASETS_CITATIONS_H_
