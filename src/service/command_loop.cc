#include "service/command_loop.h"

#include <cctype>
#include <istream>
#include <ostream>

#include "db/textio.h"
#include "query/parser.h"

namespace shapcq {

namespace {

// Splits off the first whitespace-delimited token; *rest keeps everything
// after the separating whitespace (itself trimmed of leading whitespace).
std::string TakeToken(const std::string& text, std::string* rest) {
  size_t start = 0;
  while (start < text.size() &&
         std::isspace(static_cast<unsigned char>(text[start]))) {
    ++start;
  }
  size_t end = start;
  while (end < text.size() &&
         !std::isspace(static_cast<unsigned char>(text[end]))) {
    ++end;
  }
  size_t next = end;
  while (next < text.size() &&
         std::isspace(static_cast<unsigned char>(text[next]))) {
    ++next;
  }
  *rest = text.substr(next);
  return text.substr(start, end - start);
}

}  // namespace

CommandLoop::CommandLoop(const CommandLoopOptions& options)
    : registry_(options.registry), options_(options) {}

Result<size_t> CommandLoop::InitDurability() {
  if (options_.log_dir.empty()) return Result<size_t>::Ok(0);
  auto manager = SessionLogManager::Open(options_.log_dir, options_.fsync,
                                         options_.snapshot_every);
  if (!manager.ok()) return Result<size_t>::Error(manager.error());
  log_.emplace(std::move(manager).value());
  return log_->Recover(&registry_);
}

void CommandLoop::ExecuteLine(const std::string& line, std::string* out) {
  auto fail = [this, out](const std::string& message) {
    *out += "error: " + message + "\n";
    ++error_count_;
  };

  if (options_.max_line_bytes > 0 && line.size() > options_.max_line_bytes) {
    // Resource guard: refuse to parse (or echo) an oversized line, but keep
    // the loop alive — one hostile line must not take the server down.
    return fail("[E_LINE_TOO_LONG] input line of " +
                std::to_string(line.size()) + " bytes exceeds limit " +
                std::to_string(options_.max_line_bytes));
  }

  size_t start = line.find_first_not_of(" \t\r");
  if (start == std::string::npos || line[start] == '#') return;
  size_t end = line.find_last_not_of(" \t\r");
  const std::string trimmed = line.substr(start, end - start + 1);
  if (options_.echo_commands) *out += "> " + trimmed + "\n";

  std::string rest;
  const std::string command = TakeToken(trimmed, &rest);

  if (command == "OPEN") {
    std::string query_text;
    const std::string id = TakeToken(rest, &query_text);
    if (id.empty() || query_text.empty()) {
      return fail("usage: OPEN <session> <query-rule>");
    }
    auto query = ParseCQ(query_text);
    if (!query.ok()) return fail("open " + id + ": " + query.error());
    auto opened = registry_.Open(id, query.value());
    if (!opened.ok()) return fail("open " + id + ": " + opened.error());
    if (log_.has_value()) {
      auto logged = log_->LogOpen(id, query_text);
      if (!logged.ok()) {
        // The session exists only in RAM and could not be made durable:
        // fail the command and roll the open back, rather than serving a
        // session that would silently vanish on restart.
        registry_.Close(id);
        return fail("[E_LOG_IO] open " + id + ": " + logged.error());
      }
    }
    *out += "ok open " + id + "\n";
    return;
  }

  if (command == "DELTA") {
    std::string mutation_text;
    const std::string id = TakeToken(rest, &mutation_text);
    if (id.empty() || mutation_text.empty()) {
      return fail("usage: DELTA <session> +|- <fact-literal>");
    }
    auto mutation = ParseMutationLine(mutation_text);
    if (!mutation.ok()) return fail("delta " + id + ": " + mutation.error());
    const Database* db = registry_.FindDatabase(id);
    if (db != nullptr && options_.max_session_facts > 0 &&
        mutation.value().op == MutationSpec::Op::kInsert &&
        db->fact_count() >= options_.max_session_facts) {
      return fail("[E_FACT_CAP] delta " + id + ": session at fact cap " +
                  std::to_string(options_.max_session_facts));
    }
    if (db != nullptr && log_.has_value()) {
      // Write-ahead: the record is durable before the mutation applies. If
      // the apply below fails, replay fails identically against the same
      // database state, so the logged record stays a faithful no-op.
      auto logged = log_->LogDelta(id, mutation_text);
      if (!logged.ok()) {
        return fail("[E_LOG_IO] delta " + id + ": " + logged.error());
      }
    }
    auto applied = registry_.ApplyMutation(id, mutation.value());
    if (!applied.ok()) return fail("delta " + id + ": " + applied.error());
    db = registry_.FindDatabase(id);
    *out += "ok delta " + id + " facts=" + std::to_string(db->fact_count()) +
            " endo=" + std::to_string(db->endogenous_count()) + "\n";
    if (log_.has_value()) log_->MaybeAutoCompact(id, *db);
    return;
  }

  if (command == "REPORT") {
    std::string args;
    const std::string id = TakeToken(rest, &args);
    if (id.empty()) {
      return fail("usage: REPORT <session> [top_k] [--threads N]");
    }
    ReportOptions options;
    options.num_threads = options_.default_threads;
    bool top_k_seen = false;
    while (!args.empty()) {
      std::string next;
      const std::string token = TakeToken(args, &next);
      if (token == "--threads") {
        std::string after;
        const std::string value = TakeToken(next, &after);
        if (!ParseSizeStrict(value, &options.num_threads)) {
          return fail("report " + id + ": bad --threads value '" + value +
                      "'");
        }
        args = after;
      } else if (!top_k_seen && ParseSizeStrict(token, &options.top_k)) {
        top_k_seen = true;
        args = next;
      } else {
        return fail("report " + id + ": unexpected argument '" + token +
                    "'");
      }
    }
    if (log_.has_value()) {
      // Batch fsync point: a served report only ever reflects state that
      // is already durable.
      auto synced = log_->SyncAll();
      if (!synced.ok()) {
        return fail("[E_LOG_IO] report " + id + ": " + synced.error());
      }
    }
    auto report = registry_.Report(id, options);
    if (!report.ok()) return fail("report " + id + ": " + report.error());
    const Database* db = registry_.FindDatabase(id);
    *out += "report " + id + " rows=" +
            std::to_string(report.value().rows.size()) +
            " endo=" + std::to_string(db->endogenous_count()) + "\n";
    *out += RenderReport(report.value(), *db);
    *out += "end report " + id + "\n";
    return;
  }

  if (command == "SNAPSHOT") {
    std::string after;
    const std::string id = TakeToken(rest, &after);
    if (id.empty() || !after.empty()) return fail("usage: SNAPSHOT <session>");
    if (!log_.has_value()) {
      return fail("snapshot " + id + ": durability is off (no --log-dir)");
    }
    const Database* db = registry_.FindDatabase(id);
    if (db == nullptr) {
      return fail("snapshot " + id + ": no open session " + id);
    }
    auto compacted = log_->Compact(id, *db);
    if (!compacted.ok()) {
      return fail("[E_LOG_IO] snapshot " + id + ": " + compacted.error());
    }
    const SessionLogStats stats = log_->Stats(id);
    *out += "ok snapshot " + id + " facts=" +
            std::to_string(db->fact_count()) +
            " log_bytes=" + std::to_string(stats.log_bytes) + "\n";
    return;
  }

  if (command == "STATS") {
    std::string after;
    const std::string id = TakeToken(rest, &after);
    if (!after.empty()) return fail("usage: STATS [<session>]");
    if (id.empty()) {
      const RegistryStats stats = registry_.stats();
      *out += "stats sessions=" + std::to_string(stats.open_sessions) +
              " resident=" + std::to_string(stats.resident_engines) +
              " bytes=" + std::to_string(stats.resident_bytes) +
              " hits=" + std::to_string(stats.report_hits) +
              " cached=" + std::to_string(stats.report_cache_hits) +
              " misses=" + std::to_string(stats.report_misses) +
              " evictions=" + std::to_string(stats.evictions) +
              " builds=" + std::to_string(stats.engine_builds);
      if (log_.has_value()) {
        *out += " log_bytes=" + std::to_string(log_->TotalLogBytes());
      }
      *out += "\n";
      return;
    }
    auto stats = registry_.Stats(id);
    if (!stats.ok()) return fail("stats " + id + ": " + stats.error());
    const SessionStats& s = stats.value();
    *out += "stats " + id + " facts=" + std::to_string(s.fact_count) +
            " endo=" + std::to_string(s.endo_count) +
            " deltas=" + std::to_string(s.deltas_applied) +
            " reports=" + std::to_string(s.reports_served) +
            " builds=" + std::to_string(s.engine_builds) +
            " resident=" + (s.engine_resident ? "yes" : "no");
    if (log_.has_value()) {
      const SessionLogStats log_stats = log_->Stats(id);
      *out += " log_bytes=" + std::to_string(log_stats.log_bytes) +
              " since_snapshot=" +
              std::to_string(log_stats.records_since_snapshot);
    }
    *out += "\n";
    return;
  }

  if (command == "CLOSE") {
    std::string after;
    const std::string id = TakeToken(rest, &after);
    if (id.empty() || !after.empty()) return fail("usage: CLOSE <session>");
    auto closed = registry_.Close(id);
    if (!closed.ok()) return fail("close " + id + ": " + closed.error());
    // The stream ended: its log has nothing left to recover.
    if (log_.has_value()) log_->Drop(id);
    *out += "ok close " + id + "\n";
    return;
  }

  fail("unknown command '" + command +
       "' (expected OPEN, DELTA, REPORT, SNAPSHOT, STATS or CLOSE)");
}

int CommandLoop::Run(std::istream& in, std::ostream& out,
                     const volatile std::sig_atomic_t* stop) {
  std::string line;
  while (!(stop != nullptr && *stop) && std::getline(in, line)) {
    std::string output;
    ExecuteLine(line, &output);
    out << output;
    out.flush();  // interactive clients see each command's output promptly
  }
  // EOF or graceful shutdown: whatever the fsync policy batched up becomes
  // durable before the process exits.
  if (log_.has_value()) log_->SyncAll();
  return error_count_ == 0 ? 0 : 1;
}

}  // namespace shapcq
