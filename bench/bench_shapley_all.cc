// All-facts exact Shapley: the single-pass ShapleyEngine against the
// per-fact CntSat loop it replaces. The engine builds the matched-fact index
// and the recursion tree once and re-evaluates only a root-to-leaf path per
// fact (one path per symmetry orbit), so the gap widens with |Dn|; the
// per-fact loop re-runs the whole recursion twice per fact.
//
// Arg = students in the q1-shaped scaling database (endo = 3s + ceil(s/2)):
// s = 20 crosses the endo >= 64 threshold tracked in BENCH_shapley.json.
// BM_EngineAllFactsParallel adds a thread-count axis ({students, threads})
// over the same workload; serial-vs-parallel speedups land in the same JSON.

#include <benchmark/benchmark.h>

#include "core/shapley.h"
#include "core/shapley_engine.h"
#include "datasets/synthetic.h"
#include "datasets/university.h"

namespace {

using namespace shapcq;

void BM_EngineAllFacts(benchmark::State& state) {
  // Default core: the flat SoA arena (engine_arena.h). Build is kept out of
  // the timed region — it is the same serial tree construction in either
  // core (BM_EngineBuildOnly tracks it in this same JSON), so the row
  // measures the all-facts value computation the arena replaces. Compared
  // against BM_EngineAllFactsTree below; tools/check_arena_speedup.py gates
  // the arena/tree ratio at the endo >= 70 sizes.
  const CQ q = UniversityQ1();
  const Database db =
      BuildStudentScalingDb(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    state.PauseTiming();
    ShapleyEngine engine = std::move(ShapleyEngine::Build(q, db)).value();
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine.AllValues());
  }
  state.SetLabel("endo=" + std::to_string(db.endogenous_count()));
}
BENCHMARK(BM_EngineAllFacts)->Arg(4)->Arg(8)->Arg(16)->Arg(20)->Arg(32);

void BM_EngineAllFactsTree(benchmark::State& state) {
  // The pointer-tree core (--engine=tree, the always-on differential
  // oracle): same build, same values, per-node CountVector storage and
  // per-leaf path re-walks instead of the arena's shared prefix/suffix
  // sweeps. The gap against BM_EngineAllFacts is the arena speedup.
  const CQ q = UniversityQ1();
  const Database db =
      BuildStudentScalingDb(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    state.PauseTiming();
    ShapleyEngine engine =
        std::move(ShapleyEngine::Build(q, db, EngineCore::kTree)).value();
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine.AllValues());
  }
  state.SetLabel("endo=" + std::to_string(db.endogenous_count()));
}
BENCHMARK(BM_EngineAllFactsTree)->Arg(4)->Arg(8)->Arg(16)->Arg(20)->Arg(32);

void BM_PerFactCountSatLoop(benchmark::State& state) {
  // The pre-engine ShapleyAllViaCountSat: one ShapleyViaCountSat call (two
  // full CntSat runs over copied databases) per endogenous fact.
  const CQ q = UniversityQ1();
  const Database db =
      BuildStudentScalingDb(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    std::vector<Rational> values;
    values.reserve(db.endogenous_count());
    for (FactId f : db.endogenous_facts()) {
      values.push_back(ShapleyViaCountSat(q, db, f).value());
    }
    benchmark::DoNotOptimize(values);
  }
  state.SetLabel("endo=" + std::to_string(db.endogenous_count()));
}
BENCHMARK(BM_PerFactCountSatLoop)->Arg(4)->Arg(8)->Arg(16)->Arg(20)->Arg(32);

void BM_EngineAllFactsParallel(benchmark::State& state) {
  // The worker-pool path: args = {students, threads}. threads=1 routes to
  // the serial engine inside AllValues, so the t=1 rows double as the
  // baseline for the per-thread speedup curve BENCH_shapley.json records.
  // Output is bit-identical across the thread axis (asserted by the
  // determinism tests); only wall-clock should move.
  const CQ q = UniversityQ1();
  const Database db =
      BuildStudentScalingDb(static_cast<int>(state.range(0)), 3);
  ParallelOptions options;
  options.num_threads = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    // Build is identical serial work at every thread count — keep it out of
    // the timed region so the rows measure the value-computation speedup,
    // not (Build + values) / (Build + values/t). Engine destruction stays
    // timed (cheap relative to AllValues).
    state.PauseTiming();
    ShapleyEngine engine = std::move(ShapleyEngine::Build(q, db)).value();
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine.AllValues(options));
  }
  state.SetLabel("endo=" + std::to_string(db.endogenous_count()) +
                 " threads=" + std::to_string(options.num_threads));
}
BENCHMARK(BM_EngineAllFactsParallel)
    ->Args({20, 1})
    ->Args({20, 2})
    ->Args({20, 4})
    ->Args({20, 8})
    ->Args({32, 1})
    ->Args({32, 2})
    ->Args({32, 4})
    ->Args({32, 8});

void BM_EngineBuildOnly(benchmark::State& state) {
  // The shared index + memoized tree, without any value queries: the fixed
  // cost one baseline CntSat-equivalent pass pays.
  const CQ q = UniversityQ1();
  const Database db =
      BuildStudentScalingDb(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ShapleyEngine::Build(q, db).value());
  }
  state.SetLabel("endo=" + std::to_string(db.endogenous_count()));
}
BENCHMARK(BM_EngineBuildOnly)->Arg(8)->Arg(20)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
