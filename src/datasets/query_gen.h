// Random query generators for differential testing.
//
// RandomHierarchicalCq builds queries that are hierarchical *by
// construction*: a variable tree where each atom's variable set is exactly
// the root-to-node path of some node. For two variables on one path the
// atom sets nest; for incomparable nodes they are disjoint — the definition
// of hierarchical. Safety is ensured by giving every node a positive atom.
//
// RandomSafeCq samples unconstrained (often non-hierarchical) safe CQ¬s for
// exercising the brute-force engines, relevance algorithms and classifiers.

#ifndef SHAPCQ_DATASETS_QUERY_GEN_H_
#define SHAPCQ_DATASETS_QUERY_GEN_H_

#include "query/cq.h"
#include "util/random.h"

namespace shapcq {

/// Knobs for the generators.
struct QueryGenOptions {
  int max_depth = 3;          // variable-tree depth
  int max_branch = 2;         // children per node
  double negation_rate = 0.4; // P(an extra atom is negated)
  double constant_rate = 0.15;// P(a term is a constant instead of a variable)
  int max_atoms = 6;          // cap for RandomSafeCq
};

/// A random hierarchical, self-join-free, safe CQ¬ (Boolean head).
CQ RandomHierarchicalCq(const QueryGenOptions& options, Rng* rng);

/// A random safe self-join-free CQ¬, unconstrained hierarchy-wise.
CQ RandomSafeCq(const QueryGenOptions& options, Rng* rng);

}  // namespace shapcq

#endif  // SHAPCQ_DATASETS_QUERY_GEN_H_
