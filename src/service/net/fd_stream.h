// A std::streambuf over a connected socket: the glue that lets the
// line-protocol CommandLoop — written against std::istream/std::ostream —
// serve a TCP connection unchanged.
//
// Reads recv() into a fixed get area; writes buffer into a fixed put area
// and send() on flush (CommandLoop flushes after every command, so clients
// see each command's output promptly). EINTR on either syscall is retried
// internally; a peer that disappears surfaces as EOF on the read side and
// as a sticky write_failed() on the write side (sends use MSG_NOSIGNAL, so
// a dead peer never raises SIGPIPE — the loop keeps executing until it
// reads EOF, exactly like a script whose output pipe closed).
//
// Timeouts: with io_timeout_ms >= 0 every read waits at most that long for
// bytes (poll(POLLIN) before recv); expiry latches timed_out() and surfaces
// as EOF, so the connection loop unwinds through its ordinary
// end-of-stream path — the dead-peer/slow-loris reap is just "the stream
// ended", with the latch telling the server to count it.
//
// Chaos: both syscalls consult the process-wide FaultInjector
// (util/fault_injector.h) — net_short_write caps sends at one byte,
// net_drop_mid_response kills a chosen send halfway, net_eintr_recv fails
// reads with EINTR — so tests/server_chaos.py can drive the retry and
// teardown paths deterministically. Disarmed, each hook is one relaxed
// atomic load.
//
// The buffer does not own the fd: the connection handler closes it after
// the stream is destroyed. Not thread-safe; one connection, one thread —
// except the activity clock, an atomic the idle watchdog reads
// concurrently.

#ifndef SHAPCQ_SERVICE_NET_FD_STREAM_H_
#define SHAPCQ_SERVICE_NET_FD_STREAM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <streambuf>
#include <vector>

namespace shapcq {

class FdStreamBuf : public std::streambuf {
 public:
  /// Wraps a connected socket fd (borrowed, not owned). io_timeout_ms is
  /// the longest a read will wait for the peer to send anything; < 0
  /// waits forever (the default, and the pre-timeout behavior).
  explicit FdStreamBuf(int fd, int io_timeout_ms = -1);
  ~FdStreamBuf() override;
  FdStreamBuf(const FdStreamBuf&) = delete;
  FdStreamBuf& operator=(const FdStreamBuf&) = delete;

  /// True once any send() failed (peer gone); later writes are dropped.
  bool write_failed() const { return write_failed_; }

  /// True once a read waited io_timeout_ms without the peer sending a
  /// byte (that read returned EOF and ended the connection loop).
  bool timed_out() const { return timed_out_; }

  /// Points the activity clock at a server-owned atomic (milliseconds on
  /// the server's steady clock): every successful recv and send stamps it,
  /// so the idle watchdog sees both "client sent bytes" and "server is
  /// mid-response" as activity. Null (the default) disables stamping.
  void SetActivityClock(std::atomic<int64_t>* last_activity_ms) {
    last_activity_ms_ = last_activity_ms;
  }

  /// Milliseconds on the steady clock the activity stamps use (shared with
  /// the idle watchdog so the two always compare like for like).
  static int64_t NowMillis();

 protected:
  int_type underflow() override;
  int_type overflow(int_type ch) override;
  int sync() override;

 private:
  /// Sends the put area, retrying partial sends and EINTR. Returns false
  /// (and latches write_failed_) on an unrecoverable send error.
  bool FlushOut();

  void StampActivity();

  static constexpr size_t kBufferBytes = 8192;

  int fd_;
  int io_timeout_ms_;
  std::vector<char> in_buf_;
  std::vector<char> out_buf_;
  bool write_failed_ = false;
  bool timed_out_ = false;
  std::atomic<int64_t>* last_activity_ms_ = nullptr;
};

}  // namespace shapcq

#endif  // SHAPCQ_SERVICE_NET_FD_STREAM_H_
