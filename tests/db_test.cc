// Database substrate: interning, schema, facts, worlds, derived copies.

#include "db/database.h"

#include <gtest/gtest.h>

#include "db/value_dictionary.h"

namespace shapcq {
namespace {

TEST(ValueDictionaryTest, InterningIsStable) {
  Value a1 = V("intern_a");
  Value a2 = V("intern_a");
  Value b = V("intern_b");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(ValueDictionary::Global().Name(a1), "intern_a");
}

TEST(ValueDictionaryTest, NumericShorthand) {
  EXPECT_EQ(V(42), V("42"));
  EXPECT_NE(V(42), V(43));
}

TEST(ValueDictionaryTest, FreshIsDistinct) {
  Value f1 = ValueDictionary::Global().Fresh("fresh");
  Value f2 = ValueDictionary::Global().Fresh("fresh");
  EXPECT_NE(f1, f2);
}

TEST(ValueDictionaryTest, PairIsCanonical) {
  Value p1 = ValueDictionary::Global().Pair(V("pa"), V("pb"));
  Value p2 = ValueDictionary::Global().Pair(V("pa"), V("pb"));
  Value p3 = ValueDictionary::Global().Pair(V("pb"), V("pa"));
  EXPECT_EQ(p1, p2);
  EXPECT_NE(p1, p3);
}

TEST(SchemaTest, AddAndFind) {
  Schema schema;
  RelationId r = schema.AddRelation("R", 2);
  EXPECT_EQ(schema.Find("R"), r);
  EXPECT_EQ(schema.Find("S"), kNoRelation);
  EXPECT_EQ(schema.arity(r), 2u);
  EXPECT_EQ(schema.name(r), "R");
  EXPECT_EQ(schema.AddRelation("R", 2), r);  // idempotent
  EXPECT_EQ(schema.relation_count(), 1u);
}

TEST(DatabaseTest, AddAndLookupFacts) {
  Database db;
  FactId f1 = db.AddEndo("R", {V("a"), V("b")});
  FactId f2 = db.AddExo("R", {V("b"), V("c")});
  FactId f3 = db.AddExo("S", {V("a")});
  EXPECT_EQ(db.fact_count(), 3u);
  EXPECT_EQ(db.endogenous_count(), 1u);
  EXPECT_TRUE(db.is_endogenous(f1));
  EXPECT_FALSE(db.is_endogenous(f2));
  EXPECT_EQ(db.endo_index(f1), 0u);
  EXPECT_EQ(db.FindFact("R", {V("a"), V("b")}), f1);
  EXPECT_EQ(db.FindFact("R", {V("a"), V("c")}), kNoFact);
  EXPECT_EQ(db.FindFact("Missing", {V("a")}), kNoFact);
  EXPECT_EQ(db.facts_of("R").size(), 2u);
  EXPECT_EQ(db.facts_of("S").size(), 1u);
  EXPECT_EQ(db.relation_of(f3), db.schema().Find("S"));
}

TEST(DatabaseTest, AddFactIfAbsent) {
  Database db;
  FactId f1 = db.AddFactIfAbsent("R", {V("a")}, true);
  FactId f2 = db.AddFactIfAbsent("R", {V("a")}, true);
  EXPECT_EQ(f1, f2);
  EXPECT_EQ(db.fact_count(), 1u);
}

TEST(DatabaseTest, WorldPresence) {
  Database db;
  FactId endo = db.AddEndo("R", {V("a")});
  FactId exo = db.AddExo("R", {V("b")});
  World world = db.EmptyWorld();
  EXPECT_FALSE(db.IsPresent(endo, world));
  EXPECT_TRUE(db.IsPresent(exo, world));
  world[db.endo_index(endo)] = true;
  EXPECT_TRUE(db.IsPresent(endo, world));
  EXPECT_EQ(db.FullWorld(), World{true});
}

TEST(DatabaseTest, ActiveDomain) {
  Database db;
  db.AddEndo("R", {V("a"), V("b")});
  db.AddExo("S", {V("b"), V("c")});
  const auto& domain = db.ActiveDomain();
  EXPECT_EQ(domain.size(), 3u);
  db.AddExo("S", {V("d"), V("d")});
  EXPECT_EQ(db.ActiveDomain().size(), 4u);  // cache invalidated
}

TEST(DatabaseTest, CopyWithFactExogenous) {
  Database db;
  FactId f1 = db.AddEndo("R", {V("a")});
  db.AddEndo("R", {V("b")});
  db.AddExo("S", {V("c")});
  Database copy = db.CopyWithFactExogenous(f1);
  EXPECT_EQ(copy.fact_count(), 3u);
  EXPECT_EQ(copy.endogenous_count(), 1u);
  FactId moved = copy.FindFact("R", {V("a")});
  ASSERT_NE(moved, kNoFact);
  EXPECT_FALSE(copy.is_endogenous(moved));
}

TEST(DatabaseTest, CopyWithoutFact) {
  Database db;
  FactId f1 = db.AddEndo("R", {V("a")});
  db.AddEndo("R", {V("b")});
  Database copy = db.CopyWithoutFact(f1);
  EXPECT_EQ(copy.fact_count(), 1u);
  EXPECT_EQ(copy.FindFact("R", {V("a")}), kNoFact);
  EXPECT_NE(copy.FindFact("R", {V("b")}), kNoFact);
}

TEST(DatabaseTest, DeclareEmptyRelation) {
  Database db;
  RelationId r = db.DeclareRelation("Empty", 3);
  EXPECT_EQ(db.facts_of(r).size(), 0u);
  EXPECT_EQ(db.schema().arity(r), 3u);
}

TEST(DatabaseTest, ZeroArityRelation) {
  Database db;
  FactId f = db.AddExo("Flag", {});
  EXPECT_EQ(db.FindFact("Flag", {}), f);
  EXPECT_EQ(db.tuple_of(f).size(), 0u);
}

TEST(DatabaseTest, FactToString) {
  Database db;
  FactId endo = db.AddEndo("R", {V("a"), V("b")});
  FactId exo = db.AddExo("S", {});
  EXPECT_EQ(db.FactToString(endo), "R(a,b)*");
  EXPECT_EQ(db.FactToString(exo), "S()");
}

}  // namespace
}  // namespace shapcq
