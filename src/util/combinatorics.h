// Cached exact factorials and binomial coefficients.
//
// The Shapley-by-counting reduction weighs |Sat(D,q,k)| counts by
// k!(n-k-1)!/n!; these helpers provide the exact BigInt ingredients with
// memoization shared across a computation.

#ifndef SHAPCQ_UTIL_COMBINATORICS_H_
#define SHAPCQ_UTIL_COMBINATORICS_H_

#include <cstddef>
#include <vector>

#include "util/bigint.h"

namespace shapcq {

/// Process-wide cache of factorials and binomial coefficients. Thread-unsafe
/// by design (the library is single-threaded); all methods grow the cache on
/// demand.
class Combinatorics {
 public:
  /// n! as an exact integer. Returned by value: the memoization cache may
  /// reallocate on a later call within the same expression, so handing out
  /// references would dangle.
  static BigInt Factorial(size_t n);
  /// C(n, k); zero when k > n.
  static BigInt Binomial(size_t n, size_t k);
  /// The full row [C(n,0), ..., C(n,n)].
  static std::vector<BigInt> BinomialRow(size_t n);

 private:
  static std::vector<BigInt>& FactorialCache();
};

}  // namespace shapcq

#endif  // SHAPCQ_UTIL_COMBINATORICS_H_
