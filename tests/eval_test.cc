// Query evaluation: homomorphism search over worlds, answer enumeration,
// complements. The central check replays Example 2.3's characterization of
// when q1 holds, over all 2^8 worlds of the running-example database.

#include "eval/homomorphism.h"

#include <gtest/gtest.h>

#include "datasets/university.h"
#include "eval/complement.h"
#include "eval/join.h"
#include "query/parser.h"

namespace shapcq {
namespace {

TEST(EvalTest, Example23Characterization) {
  UniversityDb u = BuildUniversityDb();
  const CQ q1 = UniversityQ1();
  const size_t n = u.db.endogenous_count();
  ASSERT_EQ(n, 8u);
  auto in = [&](const World& world, FactId f) {
    return world[u.db.endo_index(f)];
  };
  for (uint64_t mask = 0; mask < (1u << n); ++mask) {
    World world(n);
    for (size_t i = 0; i < n; ++i) world[i] = (mask >> i) & 1;
    const bool cond1 = in(world, u.fr4) || in(world, u.fr5);
    const bool cond2 = (in(world, u.fr1) || in(world, u.fr2)) && !in(world, u.ft1);
    const bool cond3 = in(world, u.fr3) && !in(world, u.ft2);
    EXPECT_EQ(EvalBoolean(q1, u.db, world), cond1 || cond2 || cond3)
        << "world mask " << mask;
  }
}

TEST(EvalTest, EmptyAndFullWorlds) {
  UniversityDb u = BuildUniversityDb();
  const CQ q1 = UniversityQ1();
  EXPECT_FALSE(EvalBoolean(q1, u.db, u.db.EmptyWorld()));
  // Full world: every student with a registration is a TA except Caroline.
  EXPECT_TRUE(EvalBoolean(q1, u.db, u.db.FullWorld()));
}

TEST(EvalTest, ConstantsInAtoms) {
  UniversityDb u = BuildUniversityDb();
  CQ q = MustParseCQ("q() :- Reg(x,'OS')");
  World world = u.db.EmptyWorld();
  EXPECT_FALSE(EvalBoolean(q, u.db, world));
  world[u.db.endo_index(u.fr1)] = true;  // Reg(Adam, OS)
  EXPECT_TRUE(EvalBoolean(q, u.db, world));
  EXPECT_FALSE(
      EvalBoolean(MustParseCQ("q() :- Reg(x,'Pottery')"), u.db, world));
}

TEST(EvalTest, RepeatedVariables) {
  Database db;
  db.AddExo("E", {V("u1"), V("u1")});
  db.AddExo("E", {V("u1"), V("u2")});
  EXPECT_TRUE(EvalBooleanAllFacts(MustParseCQ("q() :- E(x,x)"), db));
  Database db2;
  db2.AddExo("E", {V("u1"), V("u2")});
  EXPECT_FALSE(EvalBooleanAllFacts(MustParseCQ("q() :- E(x,x)"), db2));
}

TEST(EvalTest, NegationAgainstWorld) {
  Database db;
  FactId r = db.AddExo("R", {V("n1")});
  (void)r;
  FactId s = db.AddEndo("S", {V("n1")});
  CQ q = MustParseCQ("q() :- R(x), not S(x)");
  World world = db.EmptyWorld();
  EXPECT_TRUE(EvalBoolean(q, db, world));
  world[db.endo_index(s)] = true;
  EXPECT_FALSE(EvalBoolean(q, db, world));
}

TEST(EvalTest, MissingRelationIsEmpty) {
  Database db;
  db.AddExo("R", {V("m1")});
  // S never declared: positive atom fails, negative atom trivially holds.
  EXPECT_FALSE(EvalBooleanAllFacts(MustParseCQ("q() :- S(x)"), db));
  EXPECT_TRUE(EvalBooleanAllFacts(MustParseCQ("q() :- R(x), not S(x)"), db));
}

TEST(EvalTest, SelfJoinQuery) {
  // Example 5.3's query and database.
  Database db;
  db.AddEndo("R", {V(1), V(2)});
  db.AddEndo("R", {V(2), V(1)});
  CQ q = MustParseCQ("q() :- R(x,y), not R(y,x)");
  World world(2, false);
  EXPECT_FALSE(EvalBoolean(q, db, world));
  world[0] = true;  // only R(1,2): holds
  EXPECT_TRUE(EvalBoolean(q, db, world));
  world[1] = true;  // both: blocked both ways
  EXPECT_FALSE(EvalBoolean(q, db, world));
}

TEST(EvalTest, UcqDisjunction) {
  Database db;
  db.AddExo("B", {V("u9")});
  UCQ ucq = MustParseUCQ(
      "q1() :- A(x)\n"
      "q2() :- B(x)");
  EXPECT_TRUE(EvalBoolean(ucq, db, db.EmptyWorld()));
  UCQ neither = MustParseUCQ(
      "q1() :- A(x)\n"
      "q2() :- C(x)");
  EXPECT_FALSE(EvalBoolean(neither, db, db.EmptyWorld()));
}

TEST(EvalTest, EnumerateAnswersProjects) {
  UniversityDb u = BuildUniversityDb();
  CQ q = MustParseCQ("names(x) :- Stud(x), not TA(x), Reg(x,y)");
  // Full world: Adam/Ben/David are TAs; only Caroline qualifies.
  auto answers = EnumerateAnswers(q, u.db, u.db.FullWorld());
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0], Tuple{V("Caroline")});
  // Empty world: no registrations at all.
  EXPECT_TRUE(EnumerateAnswers(q, u.db, u.db.EmptyWorld()).empty());
}

TEST(EvalTest, EnumerateAnswersDeduplicates) {
  Database db;
  db.AddExo("R", {V("k1"), V("p1")});
  db.AddExo("R", {V("k1"), V("p2")});
  CQ q = MustParseCQ("keys(x) :- R(x,y)");
  EXPECT_EQ(EnumerateAnswers(q, db, db.FullWorld()).size(), 1u);
}

TEST(EvalTest, ForEachHomomorphismCountsMatches) {
  Database db;
  db.AddExo("R", {V("h1")});
  db.AddExo("R", {V("h2")});
  db.AddExo("S", {V("h1")});
  CQ q = MustParseCQ("q() :- R(x), S(y)");
  int count = 0;
  ForEachHomomorphism(q, db, db.FullWorld(), true,
                      [&](const Assignment&) {
                        ++count;
                        return true;
                      });
  EXPECT_EQ(count, 2);  // (h1,h1), (h2,h1)
}

TEST(EvalTest, EarlyStopReported) {
  Database db;
  db.AddExo("R", {V("e1")});
  db.AddExo("R", {V("e2")});
  CQ q = MustParseCQ("q() :- R(x)");
  int count = 0;
  bool stopped = ForEachHomomorphism(q, db, db.FullWorld(), true,
                                     [&](const Assignment&) {
                                       ++count;
                                       return false;
                                     });
  EXPECT_TRUE(stopped);
  EXPECT_EQ(count, 1);
}

TEST(CartesianPowerTest, SizesAndOrder) {
  std::vector<Value> domain = {V("c1"), V("c2"), V("c3")};
  EXPECT_EQ(CartesianPower(domain, 0).size(), 1u);
  EXPECT_EQ(CartesianPower(domain, 1).size(), 3u);
  EXPECT_EQ(CartesianPower(domain, 2).size(), 9u);
  auto cube = CartesianPower(domain, 3);
  EXPECT_EQ(cube.size(), 27u);
  EXPECT_EQ(cube.front(), (Tuple{V("c1"), V("c1"), V("c1")}));
  EXPECT_EQ(cube.back(), (Tuple{V("c3"), V("c3"), V("c3")}));
}

TEST(ComplementTest, BinaryRelation) {
  Database db;
  db.AddExo("S", {V("z1"), V("z2")});
  db.AddExo("R", {V("z3")});
  // Active domain {z1, z2, z3}: 9 pairs, 1 present.
  auto complement = ComplementRelation(db, "S");
  EXPECT_EQ(complement.size(), 8u);
  for (const Tuple& tuple : complement) {
    EXPECT_EQ(db.FindFact("S", tuple), kNoFact);
  }
}

TEST(ComplementTest, EmptyRelationIsFullPower) {
  Database db;
  db.AddExo("R", {V("w1")});
  db.AddExo("R", {V("w2")});
  db.DeclareRelation("S", 2);
  EXPECT_EQ(ComplementRelation(db, "S").size(), 4u);
}

TEST(MaterializeTest, JoinWithProjection) {
  Database db;
  db.AddExo("A", {V("j1"), V("j2")});
  db.AddExo("A", {V("j1"), V("j3")});
  db.AddExo("B", {V("j2"), V("j4")});
  CQ q = MustParseCQ("out(x,z) :- A(x,y), B(y,z)");
  auto answers = MaterializeAnswers(q, db);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0], (Tuple{V("j1"), V("j4")}));
}

}  // namespace
}  // namespace shapcq
