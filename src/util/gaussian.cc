#include "util/gaussian.h"

#include <cstddef>

#include "util/check.h"

namespace shapcq {

bool SolveLinearSystem(const RationalMatrix& matrix,
                       const std::vector<Rational>& rhs,
                       std::vector<Rational>* solution) {
  const size_t n = matrix.size();
  if (rhs.size() != n) return false;
  for (const auto& row : matrix) {
    if (row.size() != n) return false;
  }
  // Augmented copy.
  RationalMatrix a = matrix;
  std::vector<Rational> b = rhs;

  for (size_t col = 0; col < n; ++col) {
    // Partial "pivoting": any nonzero pivot works over exact rationals.
    size_t pivot = col;
    while (pivot < n && a[pivot][col].IsZero()) ++pivot;
    if (pivot == n) return false;
    std::swap(a[pivot], a[col]);
    std::swap(b[pivot], b[col]);

    const Rational inv = Rational(1) / a[col][col];
    for (size_t j = col; j < n; ++j) a[col][j] *= inv;
    b[col] *= inv;

    for (size_t row = 0; row < n; ++row) {
      if (row == col || a[row][col].IsZero()) continue;
      const Rational factor = a[row][col];
      for (size_t j = col; j < n; ++j) a[row][j] -= factor * a[col][j];
      b[row] -= factor * b[col];
    }
  }
  *solution = std::move(b);
  return true;
}

Rational Determinant(const RationalMatrix& matrix) {
  const size_t n = matrix.size();
  for (const auto& row : matrix) SHAPCQ_CHECK(row.size() == n);
  RationalMatrix a = matrix;
  Rational det(1);
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    while (pivot < n && a[pivot][col].IsZero()) ++pivot;
    if (pivot == n) return Rational(0);
    if (pivot != col) {
      std::swap(a[pivot], a[col]);
      det = -det;
    }
    det *= a[col][col];
    const Rational inv = Rational(1) / a[col][col];
    for (size_t row = col + 1; row < n; ++row) {
      if (a[row][col].IsZero()) continue;
      const Rational factor = a[row][col] * inv;
      for (size_t j = col; j < n; ++j) a[row][j] -= factor * a[col][j];
    }
  }
  return det;
}

}  // namespace shapcq
