// The approximation story of Section 5, end to end: the additive FPRAS
// works for every CQ¬, but the gap property fails under negation —
// exponentially small yet nonzero Shapley values defeat any
// sampling-based multiplicative approximation.
//
//   $ ./example_approximation_limits

#include <cmath>
#include <cstdio>

#include "shapcq.h"
#include "datasets/university.h"
#include "reductions/gap.h"

int main() {
  using namespace shapcq;

  // --- Additive approximation on an ordinary database. ---------------------
  UniversityDb u = BuildUniversityDb();
  const CQ q1 = UniversityQ1();
  const Rational exact = ShapleyViaCountSat(q1, u.db, u.ft1).value();
  std::printf("additive FPRAS on the running example, fact TA(Adam):\n");
  std::printf("%10s %12s %12s\n", "samples", "estimate", "|error|");
  Rng rng(99);
  for (size_t samples : {100u, 1000u, 10000u, 100000u}) {
    const double estimate = ShapleyMonteCarlo(q1, u.db, u.ft1, samples, &rng);
    std::printf("%10zu %12.5f %12.5f\n", samples, estimate,
                std::fabs(estimate - exact.ToDouble()));
  }
  std::printf("exact value: %s = %.5f\n\n", exact.ToString().c_str(),
              exact.ToDouble());

  // --- The gap family: q() :- R(x), S(x,y), ¬R(y). -------------------------
  const CQ qgap = GapQuery();
  std::printf("gap family for %s (Theorem 5.1):\n", qgap.ToString().c_str());
  std::printf("%4s %8s %22s %14s %12s\n", "n", "|Dn|", "Shapley = n!n!/(2n+1)!",
              "<= 2^-n", "20k-sample est.");
  for (int n : {1, 2, 4, 6, 8, 10}) {
    GapInstance gap = BuildGapFamily(n);
    const Rational value = GapTheoreticalShapley(n);
    Rng sample_rng(7 + static_cast<uint64_t>(n));
    const double estimate =
        ShapleyMonteCarlo(qgap, gap.db, gap.f, 20000, &sample_rng);
    std::printf("%4d %8zu %22.3e %14.3e %12.5f\n", n,
                gap.db.endogenous_count(), value.ToDouble(),
                std::pow(2.0, -n), estimate);
  }
  std::printf(
      "\nThe value is always strictly positive, but from n≈8 on, sampling\n"
      "estimates it as exactly 0: a multiplicative guarantee would need\n"
      "2^Θ(n) samples. This is why Section 5 ties multiplicative\n"
      "approximation to the (NP-hard) relevance problem instead.\n");

  // The generic construction (Theorem 5.1) does the same for any
  // satisfiable, positively connected, constant-free CQ¬ with negation:
  const CQ other = MustParseCQ("q() :- A(x,y), not B(y,x)");
  auto generic = BuildGenericGapFamily(other, 3);
  std::printf("\ngeneric construction on %s: |Shapley| = %s (= 3!3!/7!)\n",
              other.ToString().c_str(),
              ShapleyBruteForce(other, generic.value().db, generic.value().f)
                  .Abs()
                  .ToString()
                  .c_str());
  return 0;
}
