// Databases with endogenous and exogenous facts.
//
// Following the paper, a database D = Dx ∪ Dn is a set of facts over a schema,
// each fact marked exogenous (taken as given) or endogenous (a player in the
// Shapley game). A World selects a subset E of the endogenous facts; query
// evaluation is always against Dx ∪ E.

#ifndef SHAPCQ_DB_DATABASE_H_
#define SHAPCQ_DB_DATABASE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/schema.h"
#include "db/value_dictionary.h"

namespace shapcq {

/// Index of a fact within a Database.
using FactId = int32_t;

/// Sentinel for "no such fact".
inline constexpr FactId kNoFact = -1;

/// A subset E of the endogenous facts, indexed by endogenous index
/// (0 .. Database::endogenous_count()-1). world[i] == true means the i-th
/// endogenous fact is present.
using World = std::vector<bool>;

/// A database instance: schema + facts partitioned into Dx and Dn.
class Database {
 public:
  /// Mutable schema access (relations are typically declared implicitly by
  /// AddFact, but queries may mention relations with no facts).
  Schema& schema() { return schema_; }
  const Schema& schema() const { return schema_; }

  /// Declares a relation without adding facts (so empty relations exist).
  RelationId DeclareRelation(const std::string& name, size_t arity) {
    return schema_.AddRelation(name, arity);
  }

  /// Adds a fact; aborts if the same tuple already exists in the relation
  /// (set semantics — duplicates are almost always a construction bug).
  FactId AddFact(const std::string& relation, Tuple tuple, bool endogenous);
  /// Adds a fact unless the tuple is already present; returns the id of the
  /// (pre-)existing or new fact. Aborts if present with a different kind.
  FactId AddFactIfAbsent(const std::string& relation, Tuple tuple,
                         bool endogenous);
  /// Convenience wrappers.
  FactId AddEndo(const std::string& relation, Tuple tuple) {
    return AddFact(relation, std::move(tuple), /*endogenous=*/true);
  }
  FactId AddExo(const std::string& relation, Tuple tuple) {
    return AddFact(relation, std::move(tuple), /*endogenous=*/false);
  }

  /// Removes a fact. The slot is tombstoned: every other FactId stays valid
  /// (stable fact identity across mutations), and the removed id keeps
  /// answering relation_of/tuple_of for logging. Endo indices of later
  /// endogenous facts shift down by one (the endogenous ordering stays
  /// dense, preserving the relative order of the remaining facts). Re-adding
  /// the same tuple later mints a fresh FactId.
  void RemoveFact(FactId fact);
  /// True if the fact slot has been tombstoned by RemoveFact.
  bool is_removed(FactId fact) const;

  /// Id of the fact with this tuple, or kNoFact.
  FactId FindFact(RelationId relation, const Tuple& tuple) const;
  FactId FindFact(const std::string& relation, const Tuple& tuple) const;

  /// Number of live (non-removed) facts.
  size_t fact_count() const { return live_count_; }
  /// Number of fact slots ever allocated (valid FactId range, including
  /// tombstones) — the bound for slot-indexed iteration.
  size_t fact_slot_count() const { return relations_of_.size(); }
  RelationId relation_of(FactId fact) const;
  const Tuple& tuple_of(FactId fact) const;
  bool is_endogenous(FactId fact) const;
  /// Index of `fact` within the endogenous ordering; aborts if exogenous.
  size_t endo_index(FactId fact) const;

  /// Number of endogenous facts (the players).
  size_t endogenous_count() const { return endo_facts_.size(); }
  /// The endogenous facts, in endo-index order.
  const std::vector<FactId>& endogenous_facts() const { return endo_facts_; }

  /// All facts of a relation (empty if the relation has no facts or is not
  /// declared).
  const std::vector<FactId>& facts_of(RelationId relation) const;
  std::vector<FactId> facts_of(const std::string& relation) const;

  /// True if the fact is present in the world Dx ∪ E.
  bool IsPresent(FactId fact, const World& world) const {
    return !is_endogenous(fact) || world[endo_index(fact)];
  }

  /// All constants appearing in any fact, deduplicated, in first-seen order.
  const std::vector<Value>& ActiveDomain() const;

  /// Copy with the given endogenous fact moved to the exogenous side.
  /// Fact ids and endo indices are NOT preserved.
  Database CopyWithFactExogenous(FactId fact) const;
  /// Copy with the given fact removed entirely.
  Database CopyWithoutFact(FactId fact) const;

  /// World of all-absent / all-present endogenous facts.
  World EmptyWorld() const { return World(endogenous_count(), false); }
  World FullWorld() const { return World(endogenous_count(), true); }

  /// Readable rendering, e.g. "R(a,b)* S(b)" with '*' marking endogenous.
  std::string FactToString(FactId fact) const;
  std::string ToString() const;

 private:
  struct RelationData {
    std::vector<FactId> fact_ids;
    std::unordered_map<Tuple, FactId, TupleHash> by_tuple;
  };

  RelationData& DataFor(RelationId relation);

  Schema schema_;
  std::vector<RelationId> relations_of_;
  std::vector<Tuple> tuples_of_;
  std::vector<bool> removed_;
  size_t live_count_ = 0;
  std::vector<bool> endogenous_;
  std::vector<int32_t> endo_index_of_;  // -1 for exogenous facts
  std::vector<FactId> endo_facts_;
  std::vector<RelationData> relation_data_;
  mutable std::vector<Value> active_domain_;  // lazily rebuilt cache
  mutable bool domain_dirty_ = true;
};

}  // namespace shapcq

#endif  // SHAPCQ_DB_DATABASE_H_
