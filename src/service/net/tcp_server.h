// TCP transport for the attribution server: many concurrent line-protocol
// clients over one shared, striped EngineRegistry.
//
// Thread-per-connection over util/thread_pool: the accept loop (Serve, the
// caller's thread) admits sockets and hands each to a pooled worker, which
// runs a shared-mode CommandLoop over an FdStreamBuf until the client
// closes. All connections share ONE registry and ONE SessionLogManager;
// per-session atomicity comes from the registry's stripe locks (see
// engine_registry.h) — the transport adds no locking of its own beyond the
// live-fd set.
//
// Admission control: at most options.max_connections concurrent clients
// (also the worker-pool size, so an admitted connection always has a
// thread). The connection over the cap receives one structured
// "error: [E_OVERLOAD] server at connection cap ..." line and is closed —
// fail fast and visibly, never queue invisibly.
//
// Timeouts: io_timeout_ms bounds each read's wait for peer bytes (the
// poll-based FdStreamBuf timeout); idle_timeout_ms reaps connections with
// no socket activity at all via a watchdog riding the accept loop's 100 ms
// tick. Both reaps are orderly — shutdown(SHUT_RD)/EOF, never a mid-command
// kill — leave every other connection untouched, and count into
// TransportStats::io_timeouts (the STATS io_timeouts= field).
//
// Graceful drain (SIGTERM with live clients): the stop flag flips, the
// accept loop notices within one 100 ms poll tick and stops admitting,
// every live connection is shutdown(SHUT_RD) — the in-flight command
// finishes and the next read returns EOF, so no command is cut off midway —
// and Serve joins the workers before returning. The caller then syncs the
// WALs (SessionLogManager::SyncAll) and exits 0; drain first, sync after,
// so the sync covers every drained command.

#ifndef SHAPCQ_SERVICE_NET_TCP_SERVER_H_
#define SHAPCQ_SERVICE_NET_TCP_SERVER_H_

#include <csignal>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "service/command_loop.h"
#include "service/engine_registry.h"
#include "service/session_log.h"
#include "util/result.h"

namespace shapcq {

/// Transport knobs (the protocol/registry knobs live in CommandLoopOptions).
struct TcpServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral: the OS picks, port() reports (tests and harnesses).
  uint16_t port = 0;
  /// Concurrent-connection cap, and the worker-pool size.
  size_t max_connections = 64;
  /// Longest a connection's read waits for the peer to send anything, in
  /// milliseconds (0 = forever). Expiry ends that connection through the
  /// ordinary EOF path — the dead-peer/slow-loris reap — and counts one
  /// TransportStats::io_timeouts.
  size_t io_timeout_ms = 0;
  /// Idle-connection reap: a connection with no socket activity (no bytes
  /// in either direction) for this many milliseconds is shutdown(SHUT_RD)
  /// by the accept-loop watchdog (0 = never). Orderly: an in-flight
  /// command finishes and its response is delivered; only the next read
  /// sees EOF. Checked every accept tick (~100 ms), so the reap lands
  /// within idle_timeout_ms + one tick. Also counts io_timeouts.
  size_t idle_timeout_ms = 0;
};

/// A listening attribution server. Move-only; the listener socket is open
/// from Listen() until Serve() returns (or the server is destroyed).
class TcpServer {
 public:
  /// Binds and listens. `registry` and (nullable) `log` are borrowed and
  /// shared by every connection; `loop_options` configures each
  /// connection's CommandLoop (its registry/log_dir fields are ignored —
  /// the shared core wins). Fails with the socket error if the address
  /// cannot be bound.
  static Result<TcpServer> Listen(const TcpServerOptions& options,
                                  const CommandLoopOptions& loop_options,
                                  EngineRegistry* registry,
                                  SessionLogManager* log);

  /// Empty server (not listening); exists for Result<TcpServer>.
  TcpServer() = default;
  TcpServer(TcpServer&&) noexcept;
  TcpServer& operator=(TcpServer&&) noexcept;
  ~TcpServer();

  /// The bound port (resolves port 0 to the OS's choice).
  uint16_t port() const;

  /// Accepts and serves until *stop is set (SIGTERM/SIGINT) or Shutdown()
  /// is called, then drains: stops accepting, SHUT_RDs live connections,
  /// joins the workers. Returns the number of admitted connections.
  size_t Serve(const volatile std::sig_atomic_t* stop);

  /// Makes Serve() return (in-process tests; thread-safe, idempotent).
  void Shutdown();

  /// Protocol "error:" lines across all finished connections.
  size_t total_errors() const;
  /// Connections refused by the connection cap.
  size_t rejected_connections() const;

 private:
  struct Impl;
  explicit TcpServer(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace shapcq

#endif  // SHAPCQ_SERVICE_NET_TCP_SERVER_H_
