#include "db/value_dictionary.h"

#include <mutex>

#include "util/check.h"

namespace shapcq {

ValueDictionary& ValueDictionary::Global() {
  static ValueDictionary* dictionary = new ValueDictionary();
  return *dictionary;
}

Value ValueDictionary::InternLocked(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return Value{it->second};
  int32_t id = static_cast<int32_t>(names_.size());
  names_.push_back(name);
  index_.emplace(name, id);
  return Value{id};
}

Value ValueDictionary::Intern(const std::string& name) {
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = index_.find(name);
    if (it != index_.end()) return Value{it->second};
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  return InternLocked(name);
}

Value ValueDictionary::Lookup(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = index_.find(name);
  return it == index_.end() ? Value{-1} : Value{it->second};
}

Value ValueDictionary::Fresh(const std::string& prefix) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  for (;;) {
    std::string candidate =
        prefix + "#" + std::to_string(fresh_counter_++);
    if (index_.find(candidate) == index_.end()) {
      return InternLocked(candidate);
    }
  }
}

Value ValueDictionary::Pair(Value a, Value b) {
  // Name()'s references are stable, so composing outside the lock is safe
  // (and keeps the lock non-recursive).
  return Intern("<" + Name(a) + "," + Name(b) + ">");
}

const std::string& ValueDictionary::Name(Value value) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  SHAPCQ_CHECK_MSG(value.id >= 0 &&
                       static_cast<size_t>(value.id) < names_.size(),
                   "unknown Value id");
  return names_[static_cast<size_t>(value.id)];
}

size_t ValueDictionary::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return names_.size();
}

Value V(const std::string& name) {
  return ValueDictionary::Global().Intern(name);
}

Value V(int64_t number) {
  return ValueDictionary::Global().Intern(std::to_string(number));
}

}  // namespace shapcq
