// shapcq — umbrella header.
//
// A C++ library reproducing "The Impact of Negation on the Complexity of the
// Shapley Value in Conjunctive Queries" (Reshef, Kimelfeld, Livshits;
// PODS 2020): exact and approximate Shapley values of database facts for
// conjunctive queries with (safe) negation, the dichotomy classifiers, the
// ExoShap algorithm for exogenous relations, relevance decision procedures,
// probabilistic-database evaluation, and the paper's hardness constructions
// as executable reductions.

#ifndef SHAPCQ_SHAPCQ_H_
#define SHAPCQ_SHAPCQ_H_

#include "core/aggregate.h"       // IWYU pragma: export
#include "core/brute_force.h"     // IWYU pragma: export
#include "core/count_sat.h"       // IWYU pragma: export
#include "core/exoshap.h"         // IWYU pragma: export
#include "core/game.h"            // IWYU pragma: export
#include "core/monte_carlo.h"     // IWYU pragma: export
#include "core/relevance.h"       // IWYU pragma: export
#include "core/shapley.h"         // IWYU pragma: export
#include "db/database.h"          // IWYU pragma: export
#include "db/schema.h"            // IWYU pragma: export
#include "db/value_dictionary.h"  // IWYU pragma: export
#include "eval/complement.h"      // IWYU pragma: export
#include "eval/homomorphism.h"    // IWYU pragma: export
#include "eval/join.h"            // IWYU pragma: export
#include "probdb/exoprob.h"       // IWYU pragma: export
#include "probdb/lifted.h"        // IWYU pragma: export
#include "probdb/prob_database.h" // IWYU pragma: export
#include "query/analysis.h"       // IWYU pragma: export
#include "query/classify.h"       // IWYU pragma: export
#include "query/cq.h"             // IWYU pragma: export
#include "query/parser.h"         // IWYU pragma: export
#include "query/ucq.h"            // IWYU pragma: export
#include "util/bigint.h"          // IWYU pragma: export
#include "util/rational.h"        // IWYU pragma: export

#endif  // SHAPCQ_SHAPCQ_H_
