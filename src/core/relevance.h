// Relevance of a fact to a query (Definition 5.2) and its decision
// algorithms.
//
// f is relevant to q if adding f changes the query answer against Dx ∪ E for
// some E ⊆ Dn — positively if it turns the answer true, negatively if false.
// For polarity-consistent queries, Algorithms 2 and 3 (IsPosRelevant /
// IsNegRelevant) decide this in polynomial time (Proposition 5.7); the
// tractability extends to polarity-consistent UCQ¬s but provably not to
// unions of individually polarity-consistent CQ¬s (Proposition 5.8).
//
// For a fact whose relation is polarity consistent in q, relevance coincides
// with Shapley(D,q,f) ≠ 0, tying these algorithms to the (im)possibility of
// multiplicative approximation (Section 5.2).

#ifndef SHAPCQ_CORE_RELEVANCE_H_
#define SHAPCQ_CORE_RELEVANCE_H_

#include "db/database.h"
#include "query/cq.h"
#include "query/ucq.h"
#include "util/result.h"

namespace shapcq {

/// Exponential reference implementations: enumerate all E ⊆ Dn \ {f}.
bool IsPosRelevantBruteForce(const CQ& q, const Database& db, FactId f);
bool IsNegRelevantBruteForce(const CQ& q, const Database& db, FactId f);
bool IsRelevantBruteForce(const CQ& q, const Database& db, FactId f);
bool IsPosRelevantBruteForce(const UCQ& q, const Database& db, FactId f);
bool IsNegRelevantBruteForce(const UCQ& q, const Database& db, FactId f);
bool IsRelevantBruteForce(const UCQ& q, const Database& db, FactId f);

/// Algorithm 2 / Algorithm 3 (polynomial data complexity). Require q to be
/// polarity consistent; return an error otherwise.
Result<bool> IsPosRelevant(const CQ& q, const Database& db, FactId f);
Result<bool> IsNegRelevant(const CQ& q, const Database& db, FactId f);
Result<bool> IsRelevant(const CQ& q, const Database& db, FactId f);

/// UCQ¬ variants; require the *whole union* to be polarity consistent
/// (per-disjunct consistency is not enough — Proposition 5.8).
Result<bool> IsPosRelevant(const UCQ& q, const Database& db, FactId f);
Result<bool> IsNegRelevant(const UCQ& q, const Database& db, FactId f);
Result<bool> IsRelevant(const UCQ& q, const Database& db, FactId f);

/// Shapley(D,q,f) ≠ 0, decided via relevance. Requires the whole query to be
/// polarity consistent (so the algorithms apply); the relation of f is then
/// polarity consistent too, which is what makes the equivalence hold.
Result<bool> ShapleyIsNonzero(const CQ& q, const Database& db, FactId f);

/// UCQ¬ variant; requires the whole union to be polarity consistent —
/// Corollary 5.9 shows the decision is NP-complete without it.
Result<bool> ShapleyIsNonzero(const UCQ& q, const Database& db, FactId f);

}  // namespace shapcq

#endif  // SHAPCQ_CORE_RELEVANCE_H_
