#!/usr/bin/env python3
"""CI gate for the incremental engine's perf claim.

Reads a Google Benchmark JSON file containing BM_IncrementalDelta/N and
BM_RebuildPerDelta/N rows and fails (exit 1) if, at any size present in both
families, the incremental patch time exceeds the given fraction of the
rebuild time (default 0.5 — a deliberately loose bound next to the >=10x
measured at endo >= 70, so the gate only trips on real regressions, not on
runner noise).

usage: check_incremental_speedup.py BENCH_JSON [--max-ratio 0.5]
"""

import argparse
import json
import sys

PATCH = "BM_IncrementalDelta/"
REBUILD = "BM_RebuildPerDelta/"


def times_by_size(benchmarks, prefix):
    out = {}
    for row in benchmarks:
        name = row.get("name", "")
        if not name.startswith(prefix) or row.get("run_type") == "aggregate":
            continue
        size = name[len(prefix):].split("/")[0]
        out[size] = float(row["real_time"])
    return out


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("bench_json")
    parser.add_argument("--max-ratio", type=float, default=0.5)
    args = parser.parse_args()

    with open(args.bench_json) as handle:
        report = json.load(handle)
    benchmarks = report.get("benchmarks", [])
    patch = times_by_size(benchmarks, PATCH)
    rebuild = times_by_size(benchmarks, REBUILD)
    sizes = sorted(set(patch) & set(rebuild), key=int)
    if not sizes:
        print("error: no comparable BM_IncrementalDelta/BM_RebuildPerDelta "
              "rows found", file=sys.stderr)
        return 1

    failed = False
    for size in sizes:
        ratio = patch[size] / rebuild[size]
        verdict = "OK" if ratio <= args.max_ratio else "REGRESSION"
        if ratio > args.max_ratio:
            failed = True
        print(f"size {size}: patch {patch[size]:.0f} ns vs rebuild "
              f"{rebuild[size]:.0f} ns -> ratio {ratio:.3f} "
              f"(speedup {1 / ratio:.1f}x) [{verdict}]")
    if failed:
        print(f"error: incremental patch exceeded {args.max_ratio:.0%} of "
              "rebuild time", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
