#!/usr/bin/env python3
"""CI gate for the concurrent-serving throughput claim.

Reads a Google Benchmark JSON file containing BM_ServiceLoadMixed/<clients>
rows (each carrying a wall-clock `cmds_per_sec` counter plus `p50_us` /
`p99_us` round-trip latency percentiles) and fails (exit 1) if, at the
highest client count present, per-client throughput retains less than its
machine-adjusted bar relative to the single-client rate:

    retention = cmds_per_sec[N] / (N * cmds_per_sec[1])
    bar       = min_ratio * min(num_cpus, N) / N

min(num_cpus, N)/N is the physically achievable retention — on the
single-core containers this repo also runs in, nothing can scale, and the
bar degrades gracefully instead of failing tautologically (same caveat as
run_benchmarks.sh records for the Shapley thread curve). On a multi-core
runner the bar is min_ratio of perfect scaling; a registry serialized by
one global lock collapses toward 1/N and trips it. Both rows come from
the same run on the same machine, so the gate is immune to absolute
runner speed.

usage: check_service_load.py BENCH_JSON [--min-ratio 0.4]
"""

import argparse
import json
import sys

PREFIX = "BM_ServiceLoadMixed/"


def rows_by_clients(benchmarks):
    out = {}
    for row in benchmarks:
        name = row.get("name", "")
        if not name.startswith(PREFIX) or row.get("run_type") == "aggregate":
            continue
        clients = int(name[len(PREFIX):].split("/")[0])
        out[clients] = row
    return out


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("bench_json")
    parser.add_argument("--min-ratio", type=float, default=0.4)
    args = parser.parse_args()

    with open(args.bench_json) as handle:
        report = json.load(handle)
    rows = rows_by_clients(report.get("benchmarks", []))
    if 1 not in rows or len(rows) < 2:
        print("error: need a BM_ServiceLoadMixed/1 row and at least one "
              "multi-client row", file=sys.stderr)
        return 1
    num_cpus = int(report.get("context", {}).get("num_cpus", 1))

    for clients in sorted(rows):
        row = rows[clients]
        print(f"clients {clients}: "
              f"{row.get('cmds_per_sec', 0.0):.0f} cmds/s, "
              f"p50 {row.get('p50_us', 0.0):.0f} us, "
              f"p99 {row.get('p99_us', 0.0):.0f} us")

    top = max(c for c in rows if c > 1)
    base = float(rows[1].get("cmds_per_sec", 0.0))
    high = float(rows[top].get("cmds_per_sec", 0.0))
    if base <= 0.0:
        print("error: single-client cmds_per_sec counter missing or zero",
              file=sys.stderr)
        return 1
    retention = high / (top * base)
    achievable = min(num_cpus, top) / top
    bar = args.min_ratio * achievable
    verdict = "OK" if retention >= bar else "REGRESSION"
    print(f"{top}-client per-client retention: {retention:.2f} "
          f"(bar {bar:.2f} = {args.min_ratio:.2f} x achievable "
          f"{achievable:.2f} on {num_cpus} cpus) [{verdict}]")
    if retention < bar:
        print(f"error: {top}-client serving retains under the "
              f"machine-adjusted bar of single-client per-client throughput "
              "(stripe contention regression?)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
