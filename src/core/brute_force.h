// Exponential-time reference implementations over databases.
//
// These are the oracles the polynomial algorithms are validated against in
// the test suite, and the "best general algorithm" baselines that the
// hardness-side benchmarks time out against.

#ifndef SHAPCQ_CORE_BRUTE_FORCE_H_
#define SHAPCQ_CORE_BRUTE_FORCE_H_

#include "db/database.h"
#include "query/cq.h"
#include "query/ucq.h"
#include "util/count_vector.h"
#include "util/rational.h"

namespace shapcq {

/// Shapley(D, q, f) by subset enumeration (2^{n-1} query evaluations).
Rational ShapleyBruteForce(const CQ& q, const Database& db, FactId f);
Rational ShapleyBruteForce(const UCQ& q, const Database& db, FactId f);

/// |Sat(D,q,k)| for all k by enumerating the 2^n subsets of Dn.
CountVector CountSatBruteForce(const CQ& q, const Database& db);
CountVector CountSatBruteForce(const UCQ& q, const Database& db);

}  // namespace shapcq

#endif  // SHAPCQ_CORE_BRUTE_FORCE_H_
