// Interned constant values.
//
// Database constants (the set Const of the paper) are interned process-wide:
// a Value is a small integer id, cheap to copy, hash and compare, and valid
// across databases and queries. The dictionary also mints fresh constants for
// reduction gadgets (the paper's "fresh constant" a, b, c, d and the pairing
// values <a,b> used along non-hierarchical paths).

#ifndef SHAPCQ_DB_VALUE_DICTIONARY_H_
#define SHAPCQ_DB_VALUE_DICTIONARY_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace shapcq {

/// An interned database constant. Equality of ids is equality of constants.
struct Value {
  int32_t id = -1;

  bool operator==(const Value& other) const { return id == other.id; }
  bool operator!=(const Value& other) const { return id != other.id; }
  bool operator<(const Value& other) const { return id < other.id; }
};

/// A tuple of constants; the payload of a fact.
using Tuple = std::vector<Value>;

struct ValueHash {
  size_t operator()(const Value& value) const {
    return std::hash<int32_t>()(value.id);
  }
};

struct TupleHash {
  size_t operator()(const Tuple& tuple) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const Value& value : tuple) {
      h ^= static_cast<size_t>(value.id) + 0x9e3779b9 + (h << 6) + (h >> 2);
    }
    return h;
  }
};

/// Process-wide constant interner.
///
/// Thread-safe: the singleton is shared by every session of the concurrent
/// server, and the registry's stripe locks cannot cover it (two sessions on
/// different stripes intern constants while parsing deltas at the same
/// time). Reads take a shared lock; Intern takes it exclusively only on a
/// miss. Names live in a deque, so the reference `Name` returns stays valid
/// across later interns.
class ValueDictionary {
 public:
  /// The singleton dictionary.
  static ValueDictionary& Global();

  /// Interns `name`, returning its (stable) Value.
  Value Intern(const std::string& name);
  /// Returns the Value of `name` if interned; otherwise a Value with id -1.
  Value Lookup(const std::string& name) const;
  /// Mints a constant guaranteed distinct from all interned ones, with a
  /// readable name derived from `prefix`.
  Value Fresh(const std::string& prefix);
  /// Pairing constant for two values, e.g. "<a,b>"; interned so repeated
  /// calls with the same arguments return the same Value.
  Value Pair(Value a, Value b);
  /// Human-readable name of a value. The reference stays valid for the
  /// process lifetime (interned names are never removed).
  const std::string& Name(Value value) const;
  /// Number of interned constants.
  size_t size() const;

 private:
  /// Find-or-insert; requires `mutex_` held exclusively.
  Value InternLocked(const std::string& name);

  mutable std::shared_mutex mutex_;
  std::deque<std::string> names_;
  std::unordered_map<std::string, int32_t> index_;
  int64_t fresh_counter_ = 0;
};

/// Shorthand: interns `name` in the global dictionary.
Value V(const std::string& name);
/// Shorthand: interns the decimal form of `number`.
Value V(int64_t number);

}  // namespace shapcq

#endif  // SHAPCQ_DB_VALUE_DICTIONARY_H_
