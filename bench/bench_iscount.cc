// E11 — Lemma B.3 run forward: recover the independent-set count |IS(g)| of
// random bipartite graphs from N+2 Shapley values of q_RS¬T instances plus
// an exact linear solve, and compare with direct enumeration. Demonstrates
// the reduction that makes Shapley computation #P-hard for q_RS¬T.

#include <chrono>
#include <cstdio>

#include "core/brute_force.h"
#include "reductions/iscount.h"
#include "util/random.h"

int main() {
  using namespace shapcq;
  using Clock = std::chrono::steady_clock;
  const CQ q = QRSNegT();
  ShapleyOracle oracle = [&q](const Database& db, FactId f) {
    return ShapleyBruteForce(q, db, f);
  };

  std::printf("E11: |IS(g)| via the Lemma B.3 Shapley pipeline vs direct "
              "enumeration\n\n");
  std::printf("%10s %8s %14s %14s %12s %7s\n", "left+right", "edges",
              "via Shapley", "enumeration", "pipeline(ms)", "match");
  Rng rng(31415);
  for (auto [left, right] : {std::pair{1, 1}, {1, 2}, {2, 2}, {2, 3}, {3, 3}}) {
    BipartiteGraph graph = RandomBipartite(left, right, 0.5, &rng);
    auto t0 = Clock::now();
    const BigInt via_shapley = CountIndependentSetsViaShapley(graph, oracle);
    auto t1 = Clock::now();
    const BigInt direct = CountIndependentSetsBruteForce(graph);
    std::printf("%7d+%-3d %8zu %14s %14s %12.1f %7s\n", left, right,
                graph.edges.size(), via_shapley.ToString().c_str(),
                direct.ToString().c_str(),
                std::chrono::duration<double, std::milli>(t1 - t0).count(),
                via_shapley == direct ? "yes" : "NO");
  }
  std::printf("\nshape: the counts coincide on every instance. The pipeline "
              "cost is the\nN+2 Shapley-oracle calls (here brute force, hence "
              "the exponential growth);\na polynomial Shapley algorithm for "
              "q_RS¬T would count independent sets in\npolynomial time — "
              "i.e. FP^#P-hardness (Lemma 3.3).\n");
  return 0;
}
