#include "db/textio.h"

#include <cctype>

#include "util/check.h"

namespace shapcq {

namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '<' || c == '>' || c == '#' || c == '-' || c == '.';
}

}  // namespace

Result<Database> ParseDatabase(const std::string& text) {
  Database db;
  size_t pos = 0;
  const size_t n = text.size();
  while (pos < n) {
    if (std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
      continue;
    }
    // Relation name.
    size_t start = pos;
    while (pos < n && IsNameChar(text[pos])) ++pos;
    if (pos == start) {
      return Result<Database>::Error("expected relation name at offset " +
                                     std::to_string(pos));
    }
    const std::string relation = text.substr(start, pos - start);
    if (pos >= n || text[pos] != '(') {
      return Result<Database>::Error("expected '(' after " + relation);
    }
    ++pos;
    // Arguments: const (',' const)* — or empty.
    Tuple tuple;
    auto skip_spaces = [&] {
      while (pos < n && std::isspace(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    };
    skip_spaces();
    while (pos < n && text[pos] != ')') {
      start = pos;
      while (pos < n && IsNameChar(text[pos])) ++pos;
      if (pos == start) {
        return Result<Database>::Error("expected constant in " + relation);
      }
      tuple.push_back(V(text.substr(start, pos - start)));
      skip_spaces();
      if (pos < n && text[pos] == ',') {
        ++pos;
        skip_spaces();
        if (pos >= n || text[pos] == ')') {
          return Result<Database>::Error("trailing comma in " + relation);
        }
      }
    }
    if (pos >= n) {
      return Result<Database>::Error("unterminated fact " + relation);
    }
    ++pos;  // ')'
    bool endogenous = false;
    if (pos < n && text[pos] == '*') {
      endogenous = true;
      ++pos;
    }
    if (db.FindFact(relation, tuple) != kNoFact) {
      return Result<Database>::Error("duplicate fact " + relation);
    }
    db.AddFact(relation, std::move(tuple), endogenous);
  }
  return Result<Database>::Ok(std::move(db));
}

Database MustParseDatabase(const std::string& text) {
  auto result = ParseDatabase(text);
  SHAPCQ_CHECK_MSG(result.ok(), result.error().c_str());
  return std::move(result).value();
}

}  // namespace shapcq
