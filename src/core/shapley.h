// Exact Shapley values of database facts (Theorem 3.1, tractable side).
//
// The reduction of Livshits et al. (inherited by the paper for CQ¬s):
//
//   Shapley(D,q,f) = Σ_{k=0}^{n-1} k!(n−1−k)!/n! ·
//                    ( |Sat_k(D with f exogenous)| − |Sat_k(D without f)| )
//
// where n = |Dn| and both counts range over k-subsets of Dn \ {f}. The two
// count vectors come from CntSat, so the whole computation is polynomial for
// hierarchical self-join-free CQ¬s.

#ifndef SHAPCQ_CORE_SHAPLEY_H_
#define SHAPCQ_CORE_SHAPLEY_H_

#include <vector>

#include "core/shapley_engine.h"
#include "db/database.h"
#include "query/analysis.h"
#include "query/cq.h"
#include "util/count_vector.h"
#include "util/rational.h"
#include "util/result.h"

namespace shapcq {

/// Assembles Shapley(D,q,f) from the two |Sat| vectors over Dn \ {f}
/// (universe size n−1 each). Exposed for reuse by ExoShap and tests.
Rational ShapleyFromSatCounts(const CountVector& sat_with_f,
                              const CountVector& sat_without_f,
                              size_t endogenous_count);

/// Shapley(D,q,f) in polynomial time via CntSat. Requires q safe,
/// self-join-free and hierarchical; f must be endogenous.
///
/// This is the reference per-fact path (two full CntSat runs over copied
/// databases); it is kept verbatim as the differential-testing oracle for
/// ShapleyEngine, which computes the same values from one shared recursion.
Result<Rational> ShapleyViaCountSat(const CQ& q, const Database& db, FactId f);

/// Shapley values of every endogenous fact (endo-index order). Runs the
/// single-pass ShapleyEngine (shapley_engine.h): one shared CntSat index,
/// per-fact path re-evaluation, one value per symmetry orbit. With
/// options.num_threads > 1 the orbit re-evaluations run on a worker pool;
/// the output is bit-identical to the serial default at any thread count —
/// and to either numeric core (`core` picks the flat arena or the
/// pointer-linked tree oracle). A non-null `cancel` token covers both the
/// engine build and the value sweep; on expiry the call returns the
/// cancellation error (CancelToken::IsCancelled) and nothing is retained.
Result<std::vector<Rational>> ShapleyAllViaCountSat(
    const CQ& q, const Database& db, const ParallelOptions& options = {},
    EngineCore core = EngineCore::kArena, const CancelToken* cancel = nullptr);

/// Convenience dispatcher: hierarchical self-join-free queries go through
/// CntSat; with a non-empty `exo` set, non-hierarchical queries without a
/// non-hierarchical path go through ExoShap; anything else falls back to
/// exponential brute force (only acceptable for small |Dn|).
Rational ShapleyExact(const CQ& q, const Database& db, FactId f,
                      const ExoRelations& exo = {});

}  // namespace shapcq

#endif  // SHAPCQ_CORE_SHAPLEY_H_
