// E8 + E10 — relevance is NP-complete: the Proposition 5.5 encoder
// (q_RST¬R from (2+,2−,4+−)-CNF) and the Proposition 5.8 encoder (the UCQ¬
// q_SAT from 3CNF). For each size we verify reduction correctness
// (brute-force relevance == DPLL satisfiability) and time the two general
// solvers — both exponential, as the theory demands.

#include <chrono>
#include <cstdio>

#include "core/relevance.h"
#include "reductions/dpll.h"
#include "reductions/satred.h"
#include "util/random.h"

int main() {
  using namespace shapcq;
  using Clock = std::chrono::steady_clock;

  std::printf("E8: relevance for q_RST¬R  <->  (2+,2-,4+-)-SAT "
              "(Proposition 5.5)\n\n");
  std::printf("%6s %8s %8s %12s %12s %9s\n", "vars", "clauses", "|Dn|",
              "relev.(ms)", "DPLL(ms)", "agree");
  Rng rng(4242);
  const CQ q = QrstNegR();
  for (int vars : {4, 6, 8, 10, 12}) {
    const int clauses = vars * 2;
    int agree = 0, trials = 5;
    double relevance_ms = 0, dpll_ms = 0;
    size_t endo = 0;
    for (int trial = 0; trial < trials; ++trial) {
      CnfFormula formula = Random224Cnf(vars, clauses, &rng);
      RelevanceInstance instance = EncodeQrstNegR(formula);
      endo = instance.db.endogenous_count();
      auto t0 = Clock::now();
      const bool relevant = IsRelevantBruteForce(q, instance.db, instance.f);
      auto t1 = Clock::now();
      const bool satisfiable = DpllSatisfiable(formula);
      auto t2 = Clock::now();
      relevance_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
      dpll_ms += std::chrono::duration<double, std::milli>(t2 - t1).count();
      agree += (relevant == satisfiable) ? 1 : 0;
    }
    std::printf("%6d %8d %8zu %12.2f %12.3f %8d/%d\n", vars, clauses, endo,
                relevance_ms / trials, dpll_ms / trials, agree, trials);
  }

  std::printf("\nE10: relevance for the UCQ q_SAT  <->  3SAT "
              "(Proposition 5.8)\n\n");
  std::printf("%6s %8s %8s %12s %12s %9s\n", "vars", "clauses", "|Dn|",
              "relev.(ms)", "DPLL(ms)", "agree");
  const UCQ ucq = QSat();
  for (int vars : {3, 4, 5, 6, 7}) {
    const int clauses = vars * 4;
    int agree = 0, trials = 5;
    double relevance_ms = 0, dpll_ms = 0;
    size_t endo = 0;
    for (int trial = 0; trial < trials; ++trial) {
      CnfFormula formula = Random3Cnf(vars, clauses, &rng);
      RelevanceInstance instance = EncodeQSat(formula);
      endo = instance.db.endogenous_count();
      auto t0 = Clock::now();
      const bool relevant =
          IsRelevantBruteForce(ucq, instance.db, instance.f);
      auto t1 = Clock::now();
      const bool satisfiable = DpllSatisfiable(formula);
      auto t2 = Clock::now();
      relevance_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
      dpll_ms += std::chrono::duration<double, std::milli>(t2 - t1).count();
      agree += (relevant == satisfiable) ? 1 : 0;
    }
    std::printf("%6d %8d %8zu %12.2f %12.3f %8d/%d\n", vars, clauses, endo,
                relevance_ms / trials, dpll_ms / trials, agree, trials);
  }
  std::printf("\nshape: agreement 100%% at every size (the reductions are "
              "answer-preserving);\nbrute-force relevance doubles with |Dn| "
              "= #variables-derived facts, exactly\nthe exponential wall the "
              "propositions predict for the general problem.\n");
  return 0;
}
