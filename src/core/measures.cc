#include "core/measures.h"

#include "core/count_sat.h"
#include "eval/homomorphism.h"
#include "util/check.h"

namespace shapcq {

Rational ResponsibilityBruteForce(const CQ& q, const Database& db, FactId f) {
  SHAPCQ_CHECK(db.is_endogenous(f));
  const size_t n = db.endogenous_count();
  SHAPCQ_CHECK_MSG(n <= 26, "contingency search beyond 2^26 is a bug");
  const size_t f_index = db.endo_index(f);
  // Find the largest E ⊆ Dn \ {f} on which f is counterfactual; the
  // contingency is Γ = Dn \ {f} \ E, so responsibility = 1/(1 + |Γ|).
  int64_t best_kept = -1;
  World world(n, false);
  const uint64_t subsets = uint64_t{1} << (n - 1);
  for (uint64_t mask = 0; mask < subsets; ++mask) {
    size_t bit = 0;
    int64_t kept = 0;
    for (size_t p = 0; p < n; ++p) {
      if (p == f_index) {
        world[p] = false;
        continue;
      }
      world[p] = (mask >> bit) & 1;
      kept += world[p] ? 1 : 0;
      ++bit;
    }
    if (kept <= best_kept) continue;
    const bool without = EvalBoolean(q, db, world);
    world[f_index] = true;
    const bool with = EvalBoolean(q, db, world);
    world[f_index] = false;
    if (with != without) best_kept = kept;
  }
  if (best_kept < 0) return Rational(0);
  const int64_t contingency = static_cast<int64_t>(n) - 1 - best_kept;
  return Rational(BigInt(1), BigInt(1 + contingency));
}

Result<Rational> CausalEffectViaCountSat(const CQ& q, const Database& db,
                                         FactId f) {
  if (!db.is_endogenous(f)) {
    return Result<Rational>::Error("causal effect of an exogenous fact");
  }
  const size_t n = db.endogenous_count();
  const Database with_f = db.CopyWithFactExogenous(f);
  const Database without_f = db.CopyWithoutFact(f);
  auto sat_with = CountSat(q, with_f);
  if (!sat_with.ok()) return Result<Rational>::Error(sat_with.error());
  auto sat_without = CountSat(q, without_f);
  if (!sat_without.ok()) return Result<Rational>::Error(sat_without.error());
  BigInt numerator(0);
  for (size_t k = 0; k + 1 <= n; ++k) {
    numerator += sat_with.value().at(k) - sat_without.value().at(k);
  }
  return Result<Rational>::Ok(
      Rational(numerator, BigInt(1).ShiftLeft(n - 1)));
}

Rational CausalEffectBruteForce(const CQ& q, const Database& db, FactId f) {
  SHAPCQ_CHECK(db.is_endogenous(f));
  const size_t n = db.endogenous_count();
  SHAPCQ_CHECK_MSG(n <= 26, "subset enumeration beyond 2^26 is a bug");
  const size_t f_index = db.endo_index(f);
  BigInt numerator(0);
  World world(n, false);
  const uint64_t subsets = uint64_t{1} << (n - 1);
  for (uint64_t mask = 0; mask < subsets; ++mask) {
    size_t bit = 0;
    for (size_t p = 0; p < n; ++p) {
      if (p == f_index) {
        world[p] = false;
        continue;
      }
      world[p] = (mask >> bit) & 1;
      ++bit;
    }
    const bool without = EvalBoolean(q, db, world);
    world[f_index] = true;
    const bool with = EvalBoolean(q, db, world);
    world[f_index] = false;
    numerator += BigInt((with ? 1 : 0) - (without ? 1 : 0));
  }
  return Rational(numerator, BigInt(1).ShiftLeft(n - 1));
}

}  // namespace shapcq
