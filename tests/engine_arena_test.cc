// The flat SoA engine arena (core/engine_arena.h): unit tests of the cell
// store, topological structure, slack/compaction and byte accounting on a
// hand-built arena, engine-level degenerate cases, and the differential
// fuzz battery of the migration contract — the arena core (the default)
// must stay bit-identical to the pointer-tree oracle (--engine=tree) after
// build and after every mutation, at every thread count.

#include "core/engine_arena.h"

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/shapley_engine.h"
#include "datasets/query_gen.h"
#include "datasets/synthetic.h"
#include "datasets/university.h"
#include "query/parser.h"
#include "util/random.h"

namespace shapcq {
namespace {

ParallelOptions Threads(size_t n) {
  ParallelOptions options;
  options.num_threads = n;
  return options;
}

CountVector Counts(std::vector<int> values) {
  std::vector<BigInt> cells;
  cells.reserve(values.size());
  for (int v : values) cells.push_back(BigInt(v));
  return CountVector::FromCounts(std::move(cells));
}

// A three-node arena built by hand (component root over two ground
// leaves), bypassing ShapleyEngine: the unit tests below exercise the cell
// store directly.
EngineArena MakeSmallArena() {
  EngineArena arena;
  arena.AppendNode(EngineArena::NodeKind::kComponent, /*parent=*/-1,
                   /*child_index=*/-1, {1, 2}, /*free_endo=*/0,
                   /*negated=*/false, CountVector::All(4), CountVector());
  arena.AppendNode(EngineArena::NodeKind::kGround, /*parent=*/0,
                   /*child_index=*/0, {}, /*free_endo=*/0, /*negated=*/false,
                   Counts({1, 2, 1}), CountVector());
  arena.AppendNode(EngineArena::NodeKind::kGround, /*parent=*/0,
                   /*child_index=*/1, {}, /*free_endo=*/0, /*negated=*/true,
                   CountVector::Zero(3), CountVector());
  arena.SealStructure(0);
  return arena;
}

// ---------------------------------------------------------------------------
// Unit tests on the hand-built arena.
// ---------------------------------------------------------------------------

TEST(EngineArenaTest, StructureAndSatRoundTrip) {
  EngineArena arena = MakeSmallArena();
  EXPECT_EQ(arena.node_count(), 3u);
  EXPECT_EQ(arena.root(), 0);
  arena.CheckInvariants();
  EXPECT_EQ(arena.SatOf(0), CountVector::All(4));
  EXPECT_EQ(arena.SatOf(1), Counts({1, 2, 1}));
  EXPECT_EQ(arena.SatOf(2), CountVector::Zero(3));
  EXPECT_EQ(arena.SlackCells(), 0u);
}

TEST(EngineArenaTest, LeafStoreReusesCapacityInPlace) {
  EngineArena arena = MakeSmallArena();
  // Same length as the absorbed vector: the slot is rewritten in place, no
  // cells are stranded.
  arena.SetLeafSat(1, Counts({3, 1, 4}));
  EXPECT_EQ(arena.SlackCells(), 0u);
  EXPECT_EQ(arena.SatOf(1), Counts({3, 1, 4}));
  // Shorter also fits the capacity in place.
  arena.SetLeafSat(1, Counts({7, 7}));
  EXPECT_EQ(arena.SlackCells(), 0u);
  EXPECT_EQ(arena.SatOf(1), Counts({7, 7}));
  arena.CheckInvariants();
}

TEST(EngineArenaTest, WideningStoreStrandsSlackAndCompactReclaims) {
  EngineArena arena = MakeSmallArena();
  const size_t bytes_before = arena.ApproxMemoryBytes();
  // Universe grew past the slot's capacity (3 cells): the vector moves to a
  // fresh range and the old one becomes slack.
  arena.SetLeafSat(1, CountVector::All(5));
  EXPECT_EQ(arena.SlackCells(), 3u);
  EXPECT_EQ(arena.SatOf(1), CountVector::All(5));
  EXPECT_GT(arena.ApproxMemoryBytes(), bytes_before);
  arena.CheckInvariants();

  const size_t bytes_slack = arena.ApproxMemoryBytes();
  arena.CompactCells();
  EXPECT_EQ(arena.SlackCells(), 0u);
  EXPECT_LE(arena.ApproxMemoryBytes(), bytes_slack);
  // Values are untouched by compaction.
  EXPECT_EQ(arena.SatOf(0), CountVector::All(4));
  EXPECT_EQ(arena.SatOf(1), CountVector::All(5));
  EXPECT_EQ(arena.SatOf(2), CountVector::Zero(3));
  arena.CheckInvariants();
}

TEST(EngineArenaTest, ApproxMemoryBytesCoversTheCellBuffer) {
  EngineArena arena = MakeSmallArena();
  // 5 + 3 + 4 absorbed cells at 40 bytes of inline BigInt each is a hard
  // floor for the buffer term of the estimate.
  EXPECT_GE(arena.ApproxMemoryBytes(), 12 * sizeof(BigInt));
}

// ---------------------------------------------------------------------------
// Engine-level: core selection and degenerate queries.
// ---------------------------------------------------------------------------

TEST(EngineArenaCoreTest, ParseEngineCoreMapsFlagValues) {
  EXPECT_EQ(ParseEngineCore("arena"), EngineCore::kArena);
  EXPECT_EQ(ParseEngineCore("tree"), EngineCore::kTree);
  EXPECT_FALSE(ParseEngineCore("btree").has_value());
  EXPECT_FALSE(ParseEngineCore("").has_value());
}

TEST(EngineArenaCoreTest, BuildReportsTheSelectedCore) {
  UniversityDb u = BuildUniversityDb();
  auto arena = ShapleyEngine::Build(UniversityQ1(), u.db);
  ASSERT_TRUE(arena.ok()) << arena.error();
  EXPECT_EQ(arena.value().core(), EngineCore::kArena);
  auto tree = ShapleyEngine::Build(UniversityQ1(), u.db, EngineCore::kTree);
  ASSERT_TRUE(tree.ok()) << tree.error();
  EXPECT_EQ(tree.value().core(), EngineCore::kTree);
}

TEST(EngineArenaCoreTest, EmptyDatabaseAgreesAcrossCores) {
  const CQ q = MustParseCQ("q() :- R(x)");
  Database db;
  auto arena_built = ShapleyEngine::Build(q, db);
  ASSERT_TRUE(arena_built.ok()) << arena_built.error();
  ShapleyEngine arena = std::move(arena_built).value();
  auto tree_built = ShapleyEngine::Build(q, db, EngineCore::kTree);
  ASSERT_TRUE(tree_built.ok()) << tree_built.error();
  ShapleyEngine tree = std::move(tree_built).value();
  EXPECT_TRUE(arena.AllValues().empty());
  EXPECT_TRUE(tree.AllValues().empty());
  EXPECT_EQ(arena.BaselineSat(), tree.BaselineSat());
  EXPECT_GT(arena.ApproxMemoryBytes(), 0u);
}

TEST(EngineArenaCoreTest, ExogenousOnlyDatabaseAgreesAcrossCores) {
  const CQ q = MustParseCQ("q() :- R(x)");
  Database db;
  db.AddExo("R", {V("a")});
  db.AddExo("S", {V("b")});
  auto arena_built = ShapleyEngine::Build(q, db);
  ASSERT_TRUE(arena_built.ok()) << arena_built.error();
  ShapleyEngine arena = std::move(arena_built).value();
  auto tree_built = ShapleyEngine::Build(q, db, EngineCore::kTree);
  ASSERT_TRUE(tree_built.ok()) << tree_built.error();
  ShapleyEngine tree = std::move(tree_built).value();
  EXPECT_TRUE(arena.AllValues().empty());
  EXPECT_TRUE(tree.AllValues().empty());
  EXPECT_EQ(arena.BaselineSat(), tree.BaselineSat());
}

// ---------------------------------------------------------------------------
// The migration contract: arena vs tree oracle, bit-identical, at every
// thread count, after build and after every delta.
// ---------------------------------------------------------------------------

// Compares the arena engine (at thread counts 1/2/4/8) against the tree
// oracle's serial values: same Rationals, same canonical renderings, same
// baseline, same orbit partition.
void ExpectCoresAgree(ShapleyEngine& arena_engine, ShapleyEngine& tree_engine,
                      size_t endo_count, const std::string& label) {
  const std::vector<Rational> oracle = tree_engine.AllValues();
  ASSERT_EQ(oracle.size(), endo_count) << label;
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    const std::vector<Rational> got =
        arena_engine.AllValues(Threads(threads));
    ASSERT_EQ(got.size(), oracle.size()) << label << ", t=" << threads;
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], oracle[i])
          << label << ", t=" << threads << ", endo index " << i;
      ASSERT_EQ(got[i].ToString(), oracle[i].ToString())
          << label << ", t=" << threads << ", endo index " << i;
    }
  }
  EXPECT_EQ(arena_engine.BaselineSat(), tree_engine.BaselineSat()) << label;
  EXPECT_EQ(arena_engine.OrbitIds(), tree_engine.OrbitIds()) << label;
}

class EngineArenaDifferentialFuzz : public ::testing::TestWithParam<int> {};

TEST_P(EngineArenaDifferentialFuzz, BitIdenticalToTreeOracleUnderDeltas) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 50021 + 7);
  QueryGenOptions query_options;
  query_options.max_depth = 3;
  query_options.max_branch = 2;
  const CQ q = RandomHierarchicalCq(query_options, &rng);
  SyntheticOptions db_options;
  db_options.domain_size = 3;
  db_options.facts_per_relation = 4;
  Database arena_db = RandomDatabaseForQuery(q, {}, db_options, &rng);
  // Each engine maintains its own copy of the database; identical deltas
  // keep the copies (and the stable FactIds) in lockstep.
  Database tree_db = arena_db;

  auto arena_built = ShapleyEngine::Build(q, arena_db);
  ASSERT_TRUE(arena_built.ok()) << arena_built.error() << " for "
                                << q.ToString();
  ShapleyEngine arena_engine = std::move(arena_built).value();
  auto tree_built = ShapleyEngine::Build(q, tree_db, EngineCore::kTree);
  ASSERT_TRUE(tree_built.ok()) << tree_built.error() << " for "
                               << q.ToString();
  ShapleyEngine tree_engine = std::move(tree_built).value();

  ExpectCoresAgree(arena_engine, tree_engine, arena_db.endogenous_count(),
                   q.ToString() + " after build");

  std::vector<FactId> live;
  for (size_t i = 0; i < arena_db.fact_slot_count(); ++i) {
    live.push_back(static_cast<FactId>(i));
  }
  std::vector<std::pair<std::string, size_t>> insertable;
  for (const Atom& atom : q.atoms()) {
    insertable.emplace_back(atom.relation, atom.arity());
  }
  insertable.emplace_back("Alien", 1);

  const int kDeltas = 8;
  for (int step = 0; step < kDeltas; ++step) {
    const bool do_delete = !live.empty() && rng.Bernoulli(0.45);
    if (do_delete) {
      const size_t pick = static_cast<size_t>(rng.UniformInt(live.size()));
      const FactId victim = live[pick];
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
      auto arena_deleted = arena_engine.DeleteFact(arena_db, victim);
      ASSERT_TRUE(arena_deleted.ok())
          << arena_deleted.error() << " for " << q.ToString();
      auto tree_deleted = tree_engine.DeleteFact(tree_db, victim);
      ASSERT_TRUE(tree_deleted.ok())
          << tree_deleted.error() << " for " << q.ToString();
    } else {
      const auto& [relation, arity] =
          insertable[rng.UniformInt(insertable.size())];
      Tuple tuple;
      for (size_t t = 0; t < arity; ++t) {
        tuple.push_back(V("c" + std::to_string(rng.UniformInt(4))));
      }
      if (arena_db.FindFact(relation, tuple) != kNoFact) continue;
      const bool endogenous = rng.Bernoulli(0.7);
      auto arena_inserted =
          arena_engine.InsertFact(arena_db, relation, tuple, endogenous);
      ASSERT_TRUE(arena_inserted.ok())
          << arena_inserted.error() << " for " << q.ToString();
      auto tree_inserted =
          tree_engine.InsertFact(tree_db, relation, tuple, endogenous);
      ASSERT_TRUE(tree_inserted.ok())
          << tree_inserted.error() << " for " << q.ToString();
      // Stable ids must allocate identically, or later deletes diverge.
      ASSERT_EQ(arena_inserted.value(), tree_inserted.value());
      live.push_back(arena_inserted.value());
    }
    ASSERT_EQ(arena_db.ToString(), tree_db.ToString());
    ExpectCoresAgree(arena_engine, tree_engine, arena_db.endogenous_count(),
                     q.ToString() + " after delta " + std::to_string(step));
  }
}

INSTANTIATE_TEST_SUITE_P(GeneratedQueries, EngineArenaDifferentialFuzz,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Thread axis on a fixed workload (also the TSan target: the level-parallel
// warm sweep writes disjoint slots of one shared cell buffer).
// ---------------------------------------------------------------------------

TEST(EngineArenaParallelTest, ThreadCountsBitIdenticalOnScalingDb) {
  const CQ q = UniversityQ1();
  Database db = BuildStudentScalingDb(6, 3);
  auto built = ShapleyEngine::Build(q, db);
  ASSERT_TRUE(built.ok()) << built.error();
  ShapleyEngine engine = std::move(built).value();
  const std::vector<Rational> serial = engine.AllValues(Threads(1));
  for (const size_t threads : {2u, 4u, 8u}) {
    EXPECT_EQ(engine.AllValues(Threads(threads)), serial)
        << "t=" << threads;
  }

  // And again on a mutated engine, against a fresh tree oracle.
  const Atom& atom = q.atoms().front();
  Tuple tuple;
  for (size_t t = 0; t < atom.arity(); ++t) {
    tuple.push_back(V("zz" + std::to_string(t)));
  }
  auto inserted = engine.InsertFact(db, atom.relation, tuple, true);
  ASSERT_TRUE(inserted.ok()) << inserted.error();
  auto oracle_built = ShapleyEngine::Build(q, db, EngineCore::kTree);
  ASSERT_TRUE(oracle_built.ok()) << oracle_built.error();
  ShapleyEngine oracle = std::move(oracle_built).value();
  const std::vector<Rational> expected = oracle.AllValues();
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    EXPECT_EQ(engine.AllValues(Threads(threads)), expected)
        << "t=" << threads;
  }
}

}  // namespace
}  // namespace shapcq
