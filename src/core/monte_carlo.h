// Monte-Carlo approximation of the Shapley value (Section 5.1).
//
// Sampling random permutations of the endogenous facts and averaging the
// marginal contribution of f gives an unbiased estimate. The contribution of
// a single permutation lies in {-1, 0, 1}, so by Hoeffding's inequality
// O(log(1/δ)/ε²) samples give an *additive* ε-approximation with probability
// 1-δ — an additive FPRAS for every CQ¬/UCQ¬. Theorem 5.1 shows this can
// never be turned into a multiplicative FPRAS by sampling alone: with
// negation the true value may be 2^{-Θ(|D|)} yet nonzero.

#ifndef SHAPCQ_CORE_MONTE_CARLO_H_
#define SHAPCQ_CORE_MONTE_CARLO_H_

#include <cstddef>

#include "db/database.h"
#include "query/cq.h"
#include "query/ucq.h"
#include "util/random.h"

namespace shapcq {

/// Smallest m with 2·exp(−m·ε²/2) ≤ δ, i.e. m ≥ 2·ln(2/δ)/ε²
/// (Hoeffding for variables in [−1, 1]).
size_t HoeffdingSampleCount(double epsilon, double delta);

/// Mean marginal contribution of f over `samples` random permutations.
double ShapleyMonteCarlo(const CQ& q, const Database& db, FactId f,
                         size_t samples, Rng* rng);
double ShapleyMonteCarlo(const UCQ& q, const Database& db, FactId f,
                         size_t samples, Rng* rng);

/// Additive (ε, δ)-approximation: ShapleyMonteCarlo with the Hoeffding
/// sample count.
double ShapleyAdditiveFpras(const CQ& q, const Database& db, FactId f,
                            double epsilon, double delta, Rng* rng);

/// Stratified estimator: Shapley(f) = (1/n) Σ_k E[Δ_k] with Δ_k the
/// marginal contribution after a uniformly random k-subset of Dn \ {f}.
/// Samples every stratum k the same number of times; unbiased like the
/// permutation sampler but with lower variance at equal evaluation budget
/// (each permutation sample draws from the highest-variance stratum mix).
double ShapleyStratifiedMonteCarlo(const CQ& q, const Database& db, FactId f,
                                   size_t samples_per_stratum, Rng* rng);

}  // namespace shapcq

#endif  // SHAPCQ_CORE_MONTE_CARLO_H_
