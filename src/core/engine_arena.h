// Flat structure-of-arrays arena for the ShapleyEngine recursion tree.
//
// The memoized tree (shapley_engine.cc) is pointer-rich: every node owns its
// |Sat| CountVector (a heap vector of BigInts), its prefix/suffix partial
// products and a lazily built sibling-context table, plus routing maps. At
// serving scale the all-facts hot path is therefore cache-miss bound. The
// arena is the compiled form of that tree:
//
//  * Node metadata lives in index-linked parallel arrays (kind, parent,
//    child ranges into one concatenated child-id array, free-endo counters,
//    leaf polarity) — no per-node objects, no virtual dispatch.
//  * Every count-vector cell lives in ONE flat cell buffer. A logical vector
//    is a slot (offset, length, capacity) into that buffer; with 64-bit
//    limbs and |Dn| <= 192 every cell's magnitude is stored inline in its
//    40-byte BigInt slot, so a bottom-up sweep walks contiguous memory.
//    Replacing a vector reuses its range in place when the new length fits
//    and appends a fresh range otherwise (the stranded cells are tracked as
//    slack and reclaimed by CompactCells()).
//  * Nodes are kept in topological order (parents before children), so the
//    all-facts evaluation is a batched top-down sweep over dense index
//    ranges instead of per-fact recursion re-entry.
//
// The evaluation sweep exploits that the with/without perturbation of
// ValueAtLeaf propagates LINEARLY: at a component ancestor the difference
// vector picks up a convolution with the sibling context, and at a root-var
// ancestor the two complement steps cancel, leaving the same convolution
// (plus the free-fact binomial factor). Hence
//
//   sat_with - sat_without  =  sign * r[leaf],
//   r[root]  = All(global_free_endo),
//   r[child] = r[parent] (* All(parent.free_endo)) * ctx_parent[child],
//
// with sign = -1 exactly for negated leaves. One convolution sweep down the
// shared paths replaces the tree's two full root-to-leaf re-propagations per
// orbit representative, and r[] is shared across every leaf below a common
// ancestor. Shapley(leaf) then assembles from r[leaf] alone — the exact
// same integers the tree oracle subtracts out of its two propagated
// vectors, so values are bit-identical by construction.
//
// Incremental maintenance mirrors the tree patches on arena storage: leaf
// flips, free-counter moves and new-child splices re-derive the dirtied
// root-to-leaf path with the same prefix/suffix partial products (and the
// same watermark invalidation rules) the tree keeps per node.
//
// The arena does NOT know about queries, routing or orbits: the owning
// ShapleyEngine keeps the tree's routing metadata (slice maps, stored
// subqueries, structural signatures) and drives the arena through the calls
// below. Node ids are the tree's node ids throughout.

#ifndef SHAPCQ_CORE_ENGINE_ARENA_H_
#define SHAPCQ_CORE_ENGINE_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bigint.h"
#include "util/count_vector.h"
#include "util/rational.h"

namespace shapcq {

class CancelToken;  // util/cancel.h

/// Compiled SoA form of the memoized CntSat recursion tree. See the file
/// comment for the layout and the difference-propagation evaluation sweep.
class EngineArena {
 public:
  /// Mirrors ShapleyEngine's node kinds (values must stay in sync with the
  /// tree's enum; asserted at compile sites).
  enum class NodeKind : uint8_t { kGround = 0, kComponent = 1, kRootVar = 2 };

  EngineArena();

  // -------------------------------------------------------------------------
  // Compilation. AppendNode is called once per tree node, in tree-id order
  // (the arena's arrays are indexed by tree node id); `sat` / `core_sat`
  // cells are moved into the flat buffer. SealStructure fixes the root and
  // computes the topological order. After sealing, AppendNode keeps working:
  // a mutation that grew the tree absorbs its new nodes the same way (the
  // topological order recomputes lazily).
  // -------------------------------------------------------------------------

  void Reserve(size_t node_count);
  /// Pre-sizes the flat cell buffer (compilation knows the exact total |Sat|
  /// cell count up front, so the absorb pass never reallocates it).
  void ReserveCells(size_t cell_count) { cells_.reserve(cell_count); }
  void AppendNode(NodeKind kind, int parent, int child_index,
                  const std::vector<int>& children, uint32_t free_endo,
                  bool negated, CountVector sat, CountVector core_sat);
  void SealStructure(int root);

  size_t node_count() const { return kind_.size(); }
  int root() const { return root_; }

  // -------------------------------------------------------------------------
  // Reads.
  // -------------------------------------------------------------------------

  /// Materializes the node's memoized |Sat| vector (the root's feeds the
  /// engine's baseline).
  CountVector SatOf(int node) const;

  // -------------------------------------------------------------------------
  // Mutation patches (bit-identical math to the tree's patch path).
  // -------------------------------------------------------------------------

  /// Replaces a ground leaf's |Sat| after its presence state flipped.
  void SetLeafSat(int leaf, const CountVector& sat);

  /// Updates a root-var node's free-endo counter and re-derives its sat
  /// (sat = core_sat * All(free_endo)).
  void SetFreeEndo(int node, uint32_t free_endo);

  /// Appends `child` (already absorbed via AbsorbNodes) under `parent` and
  /// folds its unsat factor into the parent's core_sat/sat — the new-slice
  /// splice of an insert. Prefix partials keep their valid entries (they
  /// exclude the appended child); suffix partials reset.
  void SpliceNewChild(int parent, int child);

  /// Re-derives `parent`'s sat (and core_sat for root-var nodes) after child
  /// j's sat changed, convolving the child's new combine vector against the
  /// prefix/suffix sibling product, then shrinks the watermarks exactly like
  /// the tree's MarkChildDirty. One step of the root-to-leaf patch walk.
  void PatchChildChanged(int parent, size_t j);

  /// Drops every cached r-vector (the difference-propagation sweep state).
  /// Every value-affecting mutation must call this: the player count or the
  /// path products changed.
  void InvalidateValues();

  // -------------------------------------------------------------------------
  // Evaluation.
  // -------------------------------------------------------------------------

  /// Shapley value of the endogenous fact at `leaf`, assembled from r[leaf]
  /// (computed and memoized along the path on demand). Bit-identical to the
  /// tree oracle's two-propagation ValueAtLeaf.
  Rational ValueAtLeaf(int leaf, size_t endo_count, size_t global_free_endo);

  /// Warms r[] along the paths of all `leaves` — level-parallel over the
  /// marked nodes when num_threads > 1, serial otherwise. Results of
  /// subsequent ValueAtLeaf calls are bit-identical at every thread count
  /// (each slot is written once, and every vector is a pure function of the
  /// built index). A non-null `cancel` token is polled at level boundaries
  /// (serial mode: per leaf); returns false when the sweep stopped early on
  /// an expired token. A partial warm is fully consistent: epoch watermarks
  /// advance only for completed slots, so cold nodes simply recompute on
  /// the next (possibly undeadlined) sweep — values stay bit-identical.
  bool WarmValuePaths(const std::vector<int>& leaves, size_t global_free_endo,
                      size_t num_threads, const CancelToken* cancel = nullptr);

  // -------------------------------------------------------------------------
  // Orbit-id cache (read by ShapleyEngine::OrbitIds and, through it, the
  // sampling tier's orbit stratification). Dropped by InvalidateValues.
  // -------------------------------------------------------------------------

  bool HasOrbitIds() const { return orbit_ids_valid_; }
  const std::vector<size_t>& CachedOrbitIds() const { return orbit_ids_; }
  void CacheOrbitIds(std::vector<size_t> ids);

  // -------------------------------------------------------------------------
  // Accounting and invariants.
  // -------------------------------------------------------------------------

  /// Heap footprint of the arena: a handful of buffer-capacity sums (plus
  /// the heap spill of any cell wider than BigInt's inline storage, i.e.
  /// only for |Dn| > 192). O(cells) integer reads, no tree walk.
  size_t ApproxMemoryBytes() const;

  /// Cells stranded by out-of-place vector replacements, in units of cells.
  size_t SlackCells() const { return slack_cells_; }

  /// Rewrites the cell buffer dense (every live slot packed back to back,
  /// slack dropped). Values are untouched.
  void CompactCells();

  /// Aborts (SHAPCQ_CHECK) unless the structural invariants hold: parallel
  /// arrays equal-sized, child ranges well-formed and mutually consistent
  /// with parent/child_index, topological order covering every node with
  /// parents before children, and every live slot range inside the buffer
  /// with len <= cap. Test hook; O(nodes + slots).
  void CheckInvariants() const;

 private:
  struct Slot {
    uint32_t offset = 0;
    uint32_t len = 0;
    uint32_t cap = 0;
  };

  // --- cell store ---
  int NewSlot(size_t len);
  int NewSlotFrom(std::vector<BigInt> cells);
  // Moves `cells` into the slot, allocating it (or a wider range) on demand.
  // In place whenever the new length fits the slot's capacity.
  void StoreSlotAt(int32_t& slot_ref, std::vector<BigInt> cells);
  // Parallel-phase variant: the slot must exist with len pre-set to
  // cells.size() (the warm sweep's serial prepass guarantees it), so the
  // store never moves the buffer under a concurrent reader.
  void FillSlotInPlace(int32_t slot, std::vector<BigInt> cells);
  // Serial-prepass half of FillSlotInPlace: allocates the slot (or re-ranges
  // an existing one whose capacity is too small) and pins len = `len`.
  void EnsureSlotLen(int32_t& slot_ref, size_t len);
  // Convolves slot `a` with the caller-scratch range `b` (never inside the
  // cell buffer) straight into `dst_ref` — no temporary vector, no
  // per-cell moves. `dst_ref` must not be `a` (re-ranged on demand; a's
  // cells are resolved after the possible buffer growth). The mirror
  // overload keeps the scratch range on the left so the accumulation
  // order matches the tree's Convolve exactly on both operand orders.
  void ConvolveSlotWithInto(int32_t& dst_ref, int32_t a_slot, const BigInt* b,
                            size_t b_len);
  void ConvolveWithSlotInto(int32_t& dst_ref, const BigInt* a, size_t a_len,
                            int32_t b_slot);
  const BigInt* SlotCells(int32_t slot) const {
    return cells_.data() + slots_[slot].offset;
  }
  size_t SlotLen(int32_t slot) const { return slots_[slot].len; }

  // --- combine/partial helpers (all bit-identical to the tree's math) ---
  // Child j's combine vector: its sat for component parents, its complement
  // against All for root-var parents.
  std::vector<BigInt> CombineOf(int parent, size_t j) const;
  void EnsurePartialsAllocated(int parent);
  // prefix[j] = combine[0] * ... * combine[j-1]; suffix[i] likewise from the
  // right. Valid-watermark semantics mirror the tree exactly.
  void PrefixUpTo(int parent, size_t j);
  void SuffixFrom(int parent, size_t i);
  std::vector<BigInt> SiblingCombine(int parent, size_t j);

  // --- evaluation sweep (serial half; the parallel half lives in
  // WarmValuePaths) ---
  void EnsureR(int node, size_t global_free_endo);
  void EnsureRFree(int node, size_t global_free_endo);
  void EnsureTopo();
  void RecomputeTopo();

  // --- node SoA (indexed by tree node id) ---
  std::vector<uint8_t> kind_;
  std::vector<int32_t> parent_;
  std::vector<int32_t> child_index_;
  std::vector<int32_t> child_first_;  // into children_, -1 when childless
  std::vector<int32_t> child_count_;
  std::vector<int32_t> children_;  // concatenated child-id lists
  std::vector<uint32_t> free_endo_;
  std::vector<uint8_t> negated_;
  std::vector<int32_t> topo_;   // parents before children (root first)
  std::vector<int32_t> depth_;  // distance from the root
  bool topo_dirty_ = false;
  int32_t root_ = -1;

  // --- flat cell buffer and per-node slots ---
  std::vector<BigInt> cells_;
  std::vector<Slot> slots_;
  size_t slack_cells_ = 0;
  std::vector<int32_t> sat_slot_;
  std::vector<int32_t> core_slot_;  // -1 for non-root-var nodes

  // Partial-product slot ids, lazily sized child_count+1 per node (empty
  // until the first sibling product is needed). Watermarks as in the tree:
  // prefix[0..prefix_valid] and suffix[suffix_valid..m] are built; a splice
  // grows the lists, keeping the still-valid prefix entries.
  std::vector<std::vector<int32_t>> prefix_slots_;
  std::vector<std::vector<int32_t>> suffix_slots_;
  std::vector<uint32_t> prefix_valid_;
  std::vector<uint32_t> suffix_valid_;

  // Difference-propagation vectors, valid iff the epoch matches epoch_.
  // rfree_slot_ aliases r_slot_ when the free-endo factor is the identity.
  std::vector<int32_t> r_slot_;
  std::vector<int32_t> rfree_slot_;
  std::vector<uint32_t> r_epoch_;
  std::vector<uint32_t> rfree_epoch_;
  uint32_t epoch_ = 1;

  std::vector<size_t> orbit_ids_;
  bool orbit_ids_valid_ = false;
};

}  // namespace shapcq

#endif  // SHAPCQ_CORE_ENGINE_ARENA_H_
