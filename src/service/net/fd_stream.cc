#include "service/net/fd_stream.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>

#include <cerrno>
#include <chrono>

#include "util/fault_injector.h"

// MSG_NOSIGNAL is POSIX.1-2008 but spelled differently on some BSDs;
// falling back to 0 only re-enables SIGPIPE, which the server main also
// ignores process-wide.
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace shapcq {

int64_t FdStreamBuf::NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

FdStreamBuf::FdStreamBuf(int fd, int io_timeout_ms)
    : fd_(fd), io_timeout_ms_(io_timeout_ms), in_buf_(kBufferBytes),
      out_buf_(kBufferBytes) {
  // Empty get area (first read underflows); full put area.
  setg(in_buf_.data(), in_buf_.data(), in_buf_.data());
  setp(out_buf_.data(), out_buf_.data() + out_buf_.size());
}

FdStreamBuf::~FdStreamBuf() {
  FlushOut();  // best-effort: the final command's output reaches the peer
}

void FdStreamBuf::StampActivity() {
  if (last_activity_ms_ != nullptr) {
    last_activity_ms_->store(NowMillis(), std::memory_order_relaxed);
  }
}

FdStreamBuf::int_type FdStreamBuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  while (true) {
    if (io_timeout_ms_ >= 0) {
      // Bounded wait for the peer: a poll that expires with nothing to
      // read is the dead-peer/slow-loris signal — latch it and end the
      // stream. POLLHUP/POLLERR fall through to recv, which reports the
      // close/reset the ordinary way.
      struct pollfd pfd;
      pfd.fd = fd_;
      pfd.events = POLLIN;
      pfd.revents = 0;
      const int ready = ::poll(&pfd, 1, io_timeout_ms_);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return traits_type::eof();
      }
      if (ready == 0) {
        timed_out_ = true;
        return traits_type::eof();
      }
    }
    if (FaultInjector::Global().NetEintrThisRecv()) {
      // Chaos: this recv "was interrupted" — the retry loop must absorb
      // it without dropping or duplicating bytes.
      errno = EINTR;
      continue;
    }
    const ssize_t n = ::recv(fd_, in_buf_.data(), in_buf_.size(), 0);
    if (n > 0) {
      StampActivity();
      setg(in_buf_.data(), in_buf_.data(), in_buf_.data() + n);
      return traits_type::to_int_type(*gptr());
    }
    if (n == 0) return traits_type::eof();  // orderly close (or SHUT_RD)
    if (errno == EINTR) continue;
    return traits_type::eof();  // reset/teardown: same as EOF to the loop
  }
}

bool FdStreamBuf::FlushOut() {
  const char* data = pbase();
  size_t remaining = static_cast<size_t>(pptr() - pbase());
  while (remaining > 0 && !write_failed_) {
    FaultInjector& fault = FaultInjector::Global();
    if (fault.NetDropThisSend()) {
      // Chaos: the peer vanishes mid-response — transmit half, then fail
      // hard. The latch drops the rest (and all later output), exactly
      // like a real ECONNRESET halfway through a table.
      const size_t half = remaining / 2;
      if (half > 0) (void)::send(fd_, data, half, MSG_NOSIGNAL);
      write_failed_ = true;
      break;
    }
    size_t len = remaining;
    const size_t cap = fault.NetSendCap(len);
    if (cap > 0 && cap < len) len = cap;
    const ssize_t n = ::send(fd_, data, len, MSG_NOSIGNAL);
    if (n >= 0) {
      StampActivity();
      data += n;
      remaining -= static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    write_failed_ = true;  // peer gone; drop this and all later output
  }
  setp(out_buf_.data(), out_buf_.data() + out_buf_.size());
  return !write_failed_;
}

FdStreamBuf::int_type FdStreamBuf::overflow(int_type ch) {
  if (!FlushOut()) return traits_type::eof();
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

int FdStreamBuf::sync() { return FlushOut() ? 0 : -1; }

}  // namespace shapcq
