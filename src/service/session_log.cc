#include "service/session_log.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "db/textio.h"
#include "query/parser.h"
#include "service/engine_registry.h"

namespace shapcq {

namespace {

// Header: [u32 length][u32 crc32c], little-endian; body: [u8 type][payload].
constexpr size_t kHeaderBytes = 8;
// A corrupt length prefix must not trigger a giant allocation: anything
// claiming more than this is treated as a torn tail.
constexpr size_t kMaxRecordBytes = size_t{1} << 30;

void PutU32(uint32_t value, std::string* out) {
  out->push_back(static_cast<char>(value & 0xFF));
  out->push_back(static_cast<char>((value >> 8) & 0xFF));
  out->push_back(static_cast<char>((value >> 16) & 0xFF));
  out->push_back(static_cast<char>((value >> 24) & 0xFF));
}

uint32_t GetU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

bool IsKnownType(uint8_t type) {
  return type == static_cast<uint8_t>(LogRecord::Type::kOpen) ||
         type == static_cast<uint8_t>(LogRecord::Type::kDelta) ||
         type == static_cast<uint8_t>(LogRecord::Type::kSnapshot);
}

std::string EncodeRecord(LogRecord::Type type, const std::string& payload) {
  std::string body;
  body.reserve(1 + payload.size());
  body.push_back(static_cast<char>(type));
  body += payload;
  std::string record;
  record.reserve(kHeaderBytes + body.size());
  PutU32(static_cast<uint32_t>(body.size()), &record);
  PutU32(Crc32c(body.data(), body.size()), &record);
  record += body;
  return record;
}

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

// Writes all of buf[0..size) to fd, retrying short writes.
bool WriteFully(int fd, const char* buf, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, buf + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

// fsync the directory containing `path`, so creates/renames/unlinks of log
// files are themselves durable. Best-effort: some filesystems reject
// directory fsync, which must not fail the command.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

bool IsHexDigit(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
         (c >= 'A' && c <= 'F');
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return c - 'A' + 10;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size) {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? 0x82F63B78u ^ (crc >> 1) : crc >> 1;
      }
      table[i] = crc;
    }
    return table;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Result<FsyncPolicy> ParseFsyncPolicy(const std::string& text) {
  if (text == "always") return Result<FsyncPolicy>::Ok(FsyncPolicy::kAlways);
  if (text == "batch") return Result<FsyncPolicy>::Ok(FsyncPolicy::kBatch);
  if (text == "off") return Result<FsyncPolicy>::Ok(FsyncPolicy::kOff);
  return Result<FsyncPolicy>::Error("bad fsync policy '" + text +
                                    "' (expected always, batch or off)");
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kOff:
      return "off";
  }
  return "?";
}

Result<LogReadResult> ReadSessionLog(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Result<LogReadResult>::Error(ErrnoMessage("cannot open", path));
  }
  std::string data;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string message = ErrnoMessage("cannot read", path);
      ::close(fd);
      return Result<LogReadResult>::Error(message);
    }
    if (n == 0) break;
    data.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  LogReadResult result;
  size_t pos = 0;
  const unsigned char* bytes =
      reinterpret_cast<const unsigned char*>(data.data());
  while (pos + kHeaderBytes <= data.size()) {
    const uint32_t length = GetU32(bytes + pos);
    const uint32_t crc = GetU32(bytes + pos + 4);
    if (length < 1 || length > kMaxRecordBytes ||
        pos + kHeaderBytes + length > data.size()) {
      break;  // torn or corrupt tail: length prefix is not satisfiable
    }
    const char* body = data.data() + pos + kHeaderBytes;
    if (Crc32c(body, length) != crc ||
        !IsKnownType(static_cast<uint8_t>(body[0]))) {
      break;  // bit rot or a half-written body under a stale header
    }
    LogRecord record;
    record.type = static_cast<LogRecord::Type>(body[0]);
    record.payload.assign(body + 1, length - 1);
    result.records.push_back(std::move(record));
    pos += kHeaderBytes + length;
  }
  result.valid_bytes = pos;
  result.tail_truncated = pos != data.size();
  return Result<LogReadResult>::Ok(std::move(result));
}

Result<bool> TruncateFile(const std::string& path, size_t valid_bytes) {
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    return Result<bool>::Error(ErrnoMessage("cannot truncate", path));
  }
  return Result<bool>::Ok(true);
}

std::string EscapeSessionId(const std::string& session_id) {
  std::string out;
  for (const char c : session_id) {
    const bool safe = std::isalnum(static_cast<unsigned char>(c)) ||
                      c == '_' || c == '-';
    if (safe) {
      out.push_back(c);
    } else {
      static const char* kHex = "0123456789ABCDEF";
      out.push_back('%');
      out.push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xF]);
      out.push_back(kHex[static_cast<unsigned char>(c) & 0xF]);
    }
  }
  return out;
}

Result<std::string> UnescapeSessionId(const std::string& escaped) {
  std::string out;
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '%') {
      out.push_back(escaped[i]);
      continue;
    }
    if (i + 2 >= escaped.size() || !IsHexDigit(escaped[i + 1]) ||
        !IsHexDigit(escaped[i + 2])) {
      return Result<std::string>::Error("bad escape in log name " + escaped);
    }
    out.push_back(static_cast<char>(HexValue(escaped[i + 1]) * 16 +
                                    HexValue(escaped[i + 2])));
    i += 2;
  }
  return Result<std::string>::Ok(std::move(out));
}

// ---------------------------------------------------------------------------
// SessionLogWriter
// ---------------------------------------------------------------------------

SessionLogWriter::SessionLogWriter(int fd, std::string path,
                                   FsyncPolicy policy, size_t bytes)
    : fd_(fd), path_(std::move(path)), policy_(policy), bytes_(bytes) {}

SessionLogWriter::SessionLogWriter(SessionLogWriter&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      policy_(other.policy_),
      bytes_(other.bytes_),
      dirty_(other.dirty_) {
  other.fd_ = -1;
}

SessionLogWriter& SessionLogWriter::operator=(
    SessionLogWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    policy_ = other.policy_;
    bytes_ = other.bytes_;
    dirty_ = other.dirty_;
    other.fd_ = -1;
  }
  return *this;
}

SessionLogWriter::~SessionLogWriter() {
  if (fd_ >= 0) {
    if (dirty_ && policy_ == FsyncPolicy::kBatch) ::fsync(fd_);
    ::close(fd_);
  }
}

Result<SessionLogWriter> SessionLogWriter::Create(const std::string& path,
                                                  FsyncPolicy policy) {
  const int fd =
      ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) {
    return Result<SessionLogWriter>::Error(
        ErrnoMessage("cannot create log", path));
  }
  SyncParentDir(path);  // the file's existence is part of the record
  return Result<SessionLogWriter>::Ok(
      SessionLogWriter(fd, path, policy, 0));
}

Result<SessionLogWriter> SessionLogWriter::Resume(const std::string& path,
                                                  FsyncPolicy policy,
                                                  size_t resume_bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    return Result<SessionLogWriter>::Error(
        ErrnoMessage("cannot reopen log", path));
  }
  return Result<SessionLogWriter>::Ok(
      SessionLogWriter(fd, path, policy, resume_bytes));
}

Result<bool> SessionLogWriter::Append(LogRecord::Type type,
                                      const std::string& payload) {
  const std::string record = EncodeRecord(type, payload);
  const FaultInjector::Point crash = FaultInjector::Global().OnAppend();
  if (crash == FaultInjector::Point::kMidRecord) {
    // Simulate a torn write: half the record reaches the file, then the
    // process dies as if kill -9'd mid-write.
    WriteFully(fd_, record.data(), record.size() / 2);
    FaultInjector::Crash();
  }
  if (!WriteFully(fd_, record.data(), record.size())) {
    return Result<bool>::Error(ErrnoMessage("cannot append to", path_));
  }
  if (crash == FaultInjector::Point::kAfterAppend) FaultInjector::Crash();
  bytes_ += record.size();
  dirty_ = true;
  if (policy_ == FsyncPolicy::kAlways) return Sync();
  return Result<bool>::Ok(true);
}

Result<bool> SessionLogWriter::Sync() {
  if (!dirty_ || policy_ == FsyncPolicy::kOff) {
    return Result<bool>::Ok(true);
  }
  if (FaultInjector::Global().ShouldCrashBeforeFsync()) {
    FaultInjector::Crash();
  }
  if (::fsync(fd_) != 0) {
    return Result<bool>::Error(ErrnoMessage("cannot fsync", path_));
  }
  dirty_ = false;
  return Result<bool>::Ok(true);
}

// ---------------------------------------------------------------------------
// SessionLogManager
// ---------------------------------------------------------------------------

SessionLogManager::SessionLogManager(std::string log_dir, FsyncPolicy policy,
                                     size_t snapshot_every)
    : log_dir_(std::move(log_dir)),
      policy_(policy),
      snapshot_every_(snapshot_every) {}

// Moves transfer the session table but not the mutex (each manager owns its
// own); they are only legal before serving starts, per the class contract.
SessionLogManager::SessionLogManager(SessionLogManager&& other) noexcept
    : log_dir_(std::move(other.log_dir_)),
      policy_(other.policy_),
      snapshot_every_(other.snapshot_every_),
      entries_(std::move(other.entries_)) {}
SessionLogManager& SessionLogManager::operator=(
    SessionLogManager&& other) noexcept {
  if (this != &other) {
    log_dir_ = std::move(other.log_dir_);
    policy_ = other.policy_;
    snapshot_every_ = other.snapshot_every_;
    entries_ = std::move(other.entries_);
  }
  return *this;
}
SessionLogManager::~SessionLogManager() = default;

Result<SessionLogManager> SessionLogManager::Open(const std::string& log_dir,
                                                  FsyncPolicy policy,
                                                  size_t snapshot_every) {
  struct stat st;
  if (::stat(log_dir.c_str(), &st) == 0) {
    if (!S_ISDIR(st.st_mode)) {
      return Result<SessionLogManager>::Error("log dir " + log_dir +
                                              " is not a directory");
    }
  } else if (::mkdir(log_dir.c_str(), 0755) != 0) {
    return Result<SessionLogManager>::Error(
        ErrnoMessage("cannot create log dir", log_dir));
  }
  return Result<SessionLogManager>::Ok(
      SessionLogManager(log_dir, policy, snapshot_every));
}

std::string SessionLogManager::PathFor(const std::string& session_id) const {
  return log_dir_ + "/" + EscapeSessionId(session_id) + ".log";
}

Result<size_t> SessionLogManager::Recover(EngineRegistry* registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Enumerate "<escaped-id>.log" entries; sort so recovery order (and thus
  // OPEN order / SessionIds) is deterministic across filesystems.
  std::vector<std::pair<std::string, std::string>> found;  // (id, path)
  DIR* dir = ::opendir(log_dir_.c_str());
  if (dir == nullptr) {
    return Result<size_t>::Error(ErrnoMessage("cannot open log dir", log_dir_));
  }
  for (struct dirent* entry = ::readdir(dir); entry != nullptr;
       entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.size() > 8 && name.substr(name.size() - 8) == ".log.tmp") {
      // A compaction died before its rename committed; the original log is
      // intact, so the orphaned temp file is just litter.
      ::unlink((log_dir_ + "/" + name).c_str());
      continue;
    }
    if (name.size() < 4 || name.substr(name.size() - 4) != ".log") continue;
    auto id = UnescapeSessionId(name.substr(0, name.size() - 4));
    if (!id.ok()) continue;  // not one of ours; leave it alone
    found.emplace_back(std::move(id).value(), log_dir_ + "/" + name);
  }
  ::closedir(dir);
  std::sort(found.begin(), found.end());

  size_t recovered = 0;
  for (const auto& [session_id, path] : found) {
    auto read = ReadSessionLog(path);
    if (!read.ok()) return Result<size_t>::Error(read.error());
    LogReadResult log = std::move(read).value();

    // The first record must be a valid OPEN whose query still parses and
    // is in scope; otherwise the file is not an adoptable session log.
    if (log.records.empty() ||
        log.records[0].type != LogRecord::Type::kOpen) {
      continue;
    }
    auto query = ParseCQ(log.records[0].payload);
    if (!query.ok()) continue;
    auto opened = registry->Open(session_id, query.value());
    if (!opened.ok()) continue;

    // Replay the tail. A second OPEN record means a writer went wrong —
    // stop at it and truncate, keeping the trustworthy prefix. DELTA
    // replay failures are ignored: a mutation that failed when it was
    // logged (write-ahead) fails identically against the same database
    // state and was a no-op then too.
    size_t replayed_bytes = kHeaderBytes + 1 + log.records[0].payload.size();
    size_t since_snapshot = 0;
    bool stop = false;
    for (size_t i = 1; i < log.records.size() && !stop; ++i) {
      const LogRecord& record = log.records[i];
      switch (record.type) {
        case LogRecord::Type::kOpen:
          stop = true;
          continue;
        case LogRecord::Type::kSnapshot: {
          // A checkpoint of the live fact table; records before it were
          // compacted away, so it always lands on the empty database.
          size_t pos = 0;
          const std::string& facts = record.payload;
          while (pos < facts.size()) {
            while (pos < facts.size() &&
                   std::isspace(static_cast<unsigned char>(facts[pos]))) {
              ++pos;
            }
            if (pos >= facts.size()) break;
            size_t end = pos;
            while (end < facts.size() &&
                   !std::isspace(static_cast<unsigned char>(facts[end]))) {
              ++end;
            }
            auto fact = ParseFactSpec(facts.substr(pos, end - pos));
            pos = end;
            if (!fact.ok()) continue;
            MutationSpec mutation;
            mutation.op = MutationSpec::Op::kInsert;
            mutation.fact = std::move(fact).value();
            registry->ApplyMutation(session_id, mutation);
          }
          since_snapshot = 0;
          break;
        }
        case LogRecord::Type::kDelta: {
          auto mutation = ParseMutationLine(record.payload);
          if (mutation.ok()) {
            registry->ApplyMutation(session_id, mutation.value());
          }
          ++since_snapshot;
          break;
        }
      }
      replayed_bytes += kHeaderBytes + 1 + record.payload.size();
    }

    if (stop || log.tail_truncated ||
        replayed_bytes != log.valid_bytes) {
      auto truncated = TruncateFile(path, replayed_bytes);
      if (!truncated.ok()) return Result<size_t>::Error(truncated.error());
    }
    auto writer = SessionLogWriter::Resume(path, policy_, replayed_bytes);
    if (!writer.ok()) return Result<size_t>::Error(writer.error());
    Entry entry{std::move(writer).value(), log.records[0].payload,
                since_snapshot};
    entries_.erase(session_id);
    entries_.emplace(session_id, std::move(entry));
    ++recovered;
  }
  return Result<size_t>::Ok(recovered);
}

Result<bool> SessionLogManager::LogOpen(const std::string& session_id,
                                        const std::string& query_text) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto writer = SessionLogWriter::Create(PathFor(session_id), policy_);
  if (!writer.ok()) return Result<bool>::Error(writer.error());
  Entry entry{std::move(writer).value(), query_text, 0};
  auto appended = entry.writer.Append(LogRecord::Type::kOpen, query_text);
  if (!appended.ok()) {
    ::unlink(entry.writer.path().c_str());
    return appended;
  }
  entries_.erase(session_id);
  entries_.emplace(session_id, std::move(entry));
  return Result<bool>::Ok(true);
}

Result<bool> SessionLogManager::LogDelta(const std::string& session_id,
                                         const std::string& mutation_text) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(session_id);
  if (it == entries_.end()) {
    return Result<bool>::Error("no log for session " + session_id);
  }
  auto appended =
      it->second.writer.Append(LogRecord::Type::kDelta, mutation_text);
  if (!appended.ok()) return appended;
  ++it->second.records_since_snapshot;
  return Result<bool>::Ok(true);
}

Result<bool> SessionLogManager::Compact(const std::string& session_id,
                                        const Database& db) {
  std::lock_guard<std::mutex> lock(mutex_);
  return CompactLocked(session_id, db);
}

Result<bool> SessionLogManager::CompactLocked(const std::string& session_id,
                                              const Database& db) {
  auto it = entries_.find(session_id);
  if (it == entries_.end()) {
    return Result<bool>::Error("no log for session " + session_id);
  }
  const std::string path = PathFor(session_id);
  const std::string tmp_path = path + ".tmp";
  auto tmp = SessionLogWriter::Create(tmp_path, policy_);
  if (!tmp.ok()) return Result<bool>::Error(tmp.error());
  SessionLogWriter writer = std::move(tmp).value();
  auto open_rec =
      writer.Append(LogRecord::Type::kOpen, it->second.query_text);
  if (!open_rec.ok()) {
    ::unlink(tmp_path.c_str());
    return open_rec;
  }
  auto snap = writer.Append(LogRecord::Type::kSnapshot, db.ToString());
  if (!snap.ok()) {
    ::unlink(tmp_path.c_str());
    return snap;
  }
  // The rename is the commit point: sync the tmp contents first so a crash
  // can never promote an unsynced snapshot over a good log.
  auto synced = writer.Sync();
  if (!synced.ok() && policy_ != FsyncPolicy::kOff) {
    ::unlink(tmp_path.c_str());
    return synced;
  }
  const size_t compacted_bytes = writer.log_bytes();
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    const std::string message = ErrnoMessage("cannot rename", tmp_path);
    ::unlink(tmp_path.c_str());
    return Result<bool>::Error(message);
  }
  SyncParentDir(path);
  // Swap the live writer onto the compacted file.
  auto resumed = SessionLogWriter::Resume(path, policy_, compacted_bytes);
  if (!resumed.ok()) return Result<bool>::Error(resumed.error());
  it->second.writer = std::move(resumed).value();
  it->second.records_since_snapshot = 0;
  return Result<bool>::Ok(true);
}

void SessionLogManager::MaybeAutoCompact(const std::string& session_id,
                                         const Database& db) {
  if (snapshot_every_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(session_id);
  if (it == entries_.end()) return;
  if (it->second.records_since_snapshot < snapshot_every_) return;
  CompactLocked(session_id, db);  // best-effort: the longer log stays valid
}

void SessionLogManager::Drop(const std::string& session_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(session_id);
  if (it == entries_.end()) return;
  const std::string path = it->second.writer.path();
  entries_.erase(it);  // closes the fd first
  ::unlink(path.c_str());
  SyncParentDir(path);
}

Result<bool> SessionLogManager::SyncAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, entry] : entries_) {
    (void)id;
    auto synced = entry.writer.Sync();
    if (!synced.ok()) return synced;
  }
  return Result<bool>::Ok(true);
}

SessionLogStats SessionLogManager::Stats(const std::string& session_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(session_id);
  SessionLogStats stats;
  if (it == entries_.end()) return stats;
  stats.log_bytes = it->second.writer.log_bytes();
  stats.records_since_snapshot = it->second.records_since_snapshot;
  return stats;
}

size_t SessionLogManager::TotalLogBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (const auto& [id, entry] : entries_) {
    (void)id;
    total += entry.writer.log_bytes();
  }
  return total;
}

bool SessionLogManager::HasLog(const std::string& session_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.find(session_id) != entries_.end();
}

}  // namespace shapcq
