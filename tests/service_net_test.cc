// TCP transport + striped registry under real concurrency: N socket
// clients on disjoint sessions must produce byte-identical transcripts to
// a serial replay of the same commands, the connection cap must reject
// with a structured overload, and Shutdown must drain cleanly. Runs under
// the ThreadSanitizer CI job (in-process server, no tool binaries needed),
// so the stripe locks, the shared log-manager mutex and the admission
// atomics are race-checked here.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/command_loop.h"
#include "service/net/tcp_server.h"

namespace shapcq {
namespace {

// A blocking test client over one connection.
class Client {
 public:
  explicit Client(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return fd_ >= 0; }

  void Send(const std::string& text) {
    ASSERT_TRUE(connected());
    size_t sent = 0;
    while (sent < text.size()) {
      const ssize_t n = ::send(fd_, text.data() + sent, text.size() - sent, 0);
      ASSERT_GT(n, 0);
      sent += static_cast<size_t>(n);
    }
  }

  void CloseWrite() { ::shutdown(fd_, SHUT_WR); }

  // One '\n'-terminated line (terminator stripped); "" on EOF.
  std::string ReadLine() {
    std::string line;
    char ch = 0;
    while (::recv(fd_, &ch, 1, 0) == 1) {
      if (ch == '\n') return line;
      line.push_back(ch);
    }
    return line;
  }

  std::string ReadToEof() {
    std::string all;
    char buf[4096];
    ssize_t n = 0;
    while ((n = ::recv(fd_, buf, sizeof(buf), 0)) > 0) {
      all.append(buf, static_cast<size_t>(n));
    }
    return all;
  }

 private:
  int fd_ = -1;
};

// Connects, sends the whole script, half-closes, drains the reply.
std::string Roundtrip(uint16_t port, const std::string& script) {
  Client client(port);
  EXPECT_TRUE(client.connected());
  if (!client.connected()) return "";
  client.Send(script);
  client.CloseWrite();
  return client.ReadToEof();
}

// A mixed DELTA/REPORT workload on one private session.
std::string ClientScript(const std::string& id) {
  std::string script;
  script += "OPEN " + id + " q() :- Stud(x), not TA(x), Reg(x,y)\n";
  script += "DELTA " + id + " + Stud(ann)\n";
  script += "DELTA " + id + " + Stud(bob)\n";
  script += "DELTA " + id + " + Reg(ann,os_" + id + ")*\n";
  script += "REPORT " + id + "\n";
  script += "DELTA " + id + " + Reg(bob,db)*\n";
  script += "DELTA " + id + " + TA(bob)*\n";
  script += "REPORT " + id + " 2\n";
  script += "DELTA " + id + " - Reg(bob,db)\n";
  script += "REPORT " + id + " --threads 2\n";
  script += "STATS " + id + "\n";
  script += "CLOSE " + id + "\n";
  return script;
}

CommandLoopOptions ConcurrentOptions() {
  CommandLoopOptions options;
  options.registry.num_stripes = 8;
  return options;
}

TEST(ServiceNetTest, ConcurrentDisjointSessionsMatchSerialReplay) {
  CommandLoopOptions loop_options = ConcurrentOptions();
  EngineRegistry registry(loop_options.registry);
  TcpServerOptions net_options;  // ephemeral port
  auto listening =
      TcpServer::Listen(net_options, loop_options, &registry, nullptr);
  ASSERT_TRUE(listening.ok()) << listening.error();
  TcpServer server = std::move(listening).value();
  std::thread serve_thread([&server]() { server.Serve(nullptr); });

  constexpr int kClients = 4;
  std::vector<std::string> received(kClients);
  {
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&received, i, port = server.port()]() {
        received[i] =
            Roundtrip(port, ClientScript("c" + std::to_string(i)));
      });
    }
    for (std::thread& t : clients) t.join();
  }
  server.Shutdown();
  serve_thread.join();
  EXPECT_EQ(server.total_errors(), 0u);

  // The serial oracle: the same commands through a single-writer loop.
  // Disjoint sessions ⇒ every per-session line (acks, reports, STATS
  // <session>) is independent of interleaving, so the transcripts must be
  // byte-identical.
  for (int i = 0; i < kClients; ++i) {
    CommandLoop serial(CommandLoopOptions{});
    std::string expected;
    std::istringstream script(ClientScript("c" + std::to_string(i)));
    std::string line;
    while (std::getline(script, line)) {
      serial.ExecuteLine(line, &expected);
    }
    EXPECT_EQ(received[i], expected) << "client " << i;
    EXPECT_EQ(serial.error_count(), 0u);
  }
}

TEST(ServiceNetTest, ConnectionCapRejectsWithStructuredOverload) {
  CommandLoopOptions loop_options = ConcurrentOptions();
  EngineRegistry registry(loop_options.registry);
  TcpServerOptions net_options;
  net_options.max_connections = 1;
  auto listening =
      TcpServer::Listen(net_options, loop_options, &registry, nullptr);
  ASSERT_TRUE(listening.ok()) << listening.error();
  TcpServer server = std::move(listening).value();
  std::thread serve_thread([&server]() { server.Serve(nullptr); });

  {
    // Hold the only slot — the echoed reply proves the connection was
    // admitted and its handler is live.
    Client holder(server.port());
    ASSERT_TRUE(holder.connected());
    holder.Send("OPEN s q() :- R(x)\n");
    EXPECT_EQ(holder.ReadLine(), "> OPEN s q() :- R(x)");
    EXPECT_EQ(holder.ReadLine(), "ok open s");

    Client rejected(server.port());
    ASSERT_TRUE(rejected.connected());
    EXPECT_EQ(rejected.ReadToEof(),
              "error: [E_OVERLOAD] server at connection cap (max 1)\n");

    holder.CloseWrite();
    holder.ReadToEof();
  }

  // The slot frees once the holder's handler finishes; a later client is
  // admitted again (poll with a deadline — the decrement is asynchronous).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool admitted = false;
  while (!admitted && std::chrono::steady_clock::now() < deadline) {
    const std::string reply = Roundtrip(server.port(), "STATS s\n");
    if (reply.find("stats s ") != std::string::npos) {
      admitted = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(admitted);
  EXPECT_GE(server.rejected_connections(), 1u);

  server.Shutdown();
  serve_thread.join();
}

TEST(ServiceNetTest, ShutdownDrainsLiveConnectionsCleanly) {
  CommandLoopOptions loop_options = ConcurrentOptions();
  EngineRegistry registry(loop_options.registry);
  auto listening = TcpServer::Listen(TcpServerOptions{}, loop_options,
                                     &registry, nullptr);
  ASSERT_TRUE(listening.ok()) << listening.error();
  TcpServer server = std::move(listening).value();
  std::thread serve_thread([&server]() { server.Serve(nullptr); });

  Client client(server.port());
  ASSERT_TRUE(client.connected());
  client.Send("OPEN s q() :- R(x)\nDELTA s + R(a)*\n");
  EXPECT_EQ(client.ReadLine(), "> OPEN s q() :- R(x)");
  EXPECT_EQ(client.ReadLine(), "ok open s");
  EXPECT_EQ(client.ReadLine(), "> DELTA s + R(a)*");
  EXPECT_EQ(client.ReadLine(), "ok delta s facts=1 endo=1");

  // Shutdown with the client still attached: the server half-closes the
  // connection, the handler sees EOF, Serve joins its workers, and the
  // client observes an orderly close — not a reset, not a hang.
  server.Shutdown();
  serve_thread.join();
  EXPECT_EQ(client.ReadToEof(), "");
  EXPECT_EQ(server.total_errors(), 0u);
  // The session survived the drain in the shared registry.
  EXPECT_TRUE(registry.Has("s"));
}

}  // namespace
}  // namespace shapcq