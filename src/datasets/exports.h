// The introduction's trade scenario: farmers exporting products to countries
// where the product does not grow —
//   q() :- Farmer(m), Export(m,p,c), ¬Grows(c,p)
// and the aggregate Count{ c | Farmer(m), Export(m,p,c), ¬Grows(c,p) }.

#ifndef SHAPCQ_DATASETS_EXPORTS_H_
#define SHAPCQ_DATASETS_EXPORTS_H_

#include "core/aggregate.h"
#include "db/database.h"
#include "query/cq.h"
#include "util/random.h"

namespace shapcq {

/// q() :- Farmer(m), Export(m,p,c), ¬Grows(c,p).
CQ ExportQuery();

/// The Boolean query with head (c): groundwork for the Count aggregate.
AggregateQuery ExportCountAggregate();

/// A small hand-made instance: Farmer and Grows exogenous, Export endogenous.
Database BuildSmallExportDb();

/// Random instance: `farmers` farmers each exporting up to `exports_each`
/// random (product, country) pairs (endogenous), with each (country,
/// product) growing with probability `grow_probability` (endogenous Grows
/// facts — the negative-impact players). Farmer facts are exogenous.
Database BuildRandomExportDb(int farmers, int products, int countries,
                             int exports_each, double grow_probability,
                             Rng* rng);

}  // namespace shapcq

#endif  // SHAPCQ_DATASETS_EXPORTS_H_
