// Propositions 5.5 and 5.8: the relevance-hardness encoders, verified
// instance-by-instance — relevance of the encoded fact (decided by brute
// force) must equal satisfiability of the source formula (decided by DPLL).

#include "reductions/satred.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/relevance.h"
#include "eval/homomorphism.h"
#include "query/analysis.h"
#include "reductions/dpll.h"
#include "util/random.h"

namespace shapcq {
namespace {

TEST(QrstNegRTest, QueryShape) {
  const CQ q = QrstNegR();
  EXPECT_TRUE(IsSafe(q));
  EXPECT_FALSE(IsSelfJoinFree(q));  // R appears four times
  // T is polarity consistent (the fact f = T(c) lives there); R is not.
  EXPECT_TRUE(IsRelationPolarityConsistent(q, "T"));
  EXPECT_FALSE(IsRelationPolarityConsistent(q, "R"));
  EXPECT_FALSE(IsPolarityConsistent(q));
}

TEST(QrstNegRTest, Figure4InstanceIsRelevant) {
  // The paper's example formula is satisfiable (e.g. x2 = x3 = 1), so T(c)
  // is (positively) relevant.
  RelevanceInstance instance = Figure4Instance();
  const CQ q = QrstNegR();
  EXPECT_TRUE(IsPosRelevantBruteForce(q, instance.db, instance.f));
  // Zeroness coincides (Corollary 5.6 direction): Shapley ≠ 0.
  EXPECT_NE(ShapleyBruteForce(q, instance.db, instance.f), Rational(0));
}

TEST(QrstNegRTest, Figure4WitnessFromPaper) {
  // The paper exhibits E = {R(2), R(3)} (1-based x2, x3) as a witness:
  // Dx ∪ E ⊭ q while adding T(c) satisfies it.
  RelevanceInstance instance = Figure4Instance();
  const CQ q = QrstNegR();
  const Database& db = instance.db;
  World world = db.EmptyWorld();
  world[db.endo_index(db.FindFact("R", {V("x2")}))] = true;
  world[db.endo_index(db.FindFact("R", {V("x3")}))] = true;
  EXPECT_FALSE(EvalBoolean(q, db, world));
  world[db.endo_index(instance.f)] = true;
  EXPECT_TRUE(EvalBoolean(q, db, world));
}

TEST(QrstNegRTest, UnsatisfiableFormulaMeansIrrelevant) {
  // (x0 ∨ x1) ∧ (¬x0 ∨ ¬x1) ∧ (¬x0 ∨ ¬x0) ∧ (¬x1 ∨ ¬x1) is unsatisfiable.
  CnfFormula formula;
  formula.num_vars = 2;
  formula.clauses.push_back(Clause{{{0, true}, {1, true}}});
  formula.clauses.push_back(Clause{{{0, false}, {1, false}}});
  formula.clauses.push_back(Clause{{{0, false}, {0, false}}});
  formula.clauses.push_back(Clause{{{1, false}, {1, false}}});
  ASSERT_FALSE(DpllSatisfiable(formula));
  RelevanceInstance instance = EncodeQrstNegR(formula);
  EXPECT_FALSE(
      IsRelevantBruteForce(QrstNegR(), instance.db, instance.f));
  EXPECT_EQ(ShapleyBruteForce(QrstNegR(), instance.db, instance.f),
            Rational(0));
}

TEST(QrstNegRTest, RandomFormulasMatchSat) {
  Rng rng(505);
  const CQ q = QrstNegR();
  for (int trial = 0; trial < 25; ++trial) {
    CnfFormula formula = Random224Cnf(4, 3 + trial % 6, &rng);
    RelevanceInstance instance = EncodeQrstNegR(formula);
    EXPECT_EQ(IsRelevantBruteForce(q, instance.db, instance.f),
              DpllSatisfiable(formula))
        << formula.ToString();
  }
}

TEST(QSatTest, QueryShape) {
  const UCQ q = QSat();
  ASSERT_EQ(q.size(), 4u);
  // Each disjunct is polarity consistent; the union is not (T flips).
  for (const CQ& disjunct : q.disjuncts()) {
    EXPECT_TRUE(IsPolarityConsistent(disjunct)) << disjunct.ToString();
  }
  EXPECT_FALSE(IsPolarityConsistent(q));
  EXPECT_TRUE(IsRelationPolarityConsistent(q, "R"));
}

TEST(QSatTest, SatisfiableFormulaMeansRelevant) {
  // (x0 ∨ x1 ∨ x2) — satisfiable.
  CnfFormula formula;
  formula.num_vars = 3;
  formula.clauses.push_back(Clause{{{0, true}, {1, true}, {2, true}}});
  RelevanceInstance instance = EncodeQSat(formula);
  EXPECT_TRUE(IsPosRelevantBruteForce(QSat(), instance.db, instance.f));
}

TEST(QSatTest, UnsatisfiableFormulaMeansIrrelevant) {
  // All eight sign patterns over three variables: unsatisfiable.
  CnfFormula formula;
  formula.num_vars = 3;
  for (int mask = 0; mask < 8; ++mask) {
    Clause clause;
    for (int v = 0; v < 3; ++v) {
      clause.literals.push_back(Literal{v, ((mask >> v) & 1) != 0});
    }
    formula.clauses.push_back(clause);
  }
  ASSERT_FALSE(DpllSatisfiable(formula));
  RelevanceInstance instance = EncodeQSat(formula);
  EXPECT_FALSE(IsRelevantBruteForce(QSat(), instance.db, instance.f));
}

TEST(QSatTest, RandomFormulasMatchSat) {
  Rng rng(707);
  const UCQ q = QSat();
  for (int trial = 0; trial < 20; ++trial) {
    CnfFormula formula = Random3Cnf(4, 6 + trial % 18, &rng);
    RelevanceInstance instance = EncodeQSat(formula);
    if (instance.db.endogenous_count() > 16) continue;
    EXPECT_EQ(IsRelevantBruteForce(q, instance.db, instance.f),
              DpllSatisfiable(formula))
        << formula.ToString();
  }
}

TEST(QSatTest, AddingFAlwaysSatisfies) {
  // R(0) satisfies disjunct q4 on its own: f is never negatively relevant.
  Rng rng(808);
  CnfFormula formula = Random3Cnf(3, 4, &rng);
  RelevanceInstance instance = EncodeQSat(formula);
  EXPECT_FALSE(IsNegRelevantBruteForce(QSat(), instance.db, instance.f));
}

}  // namespace
}  // namespace shapcq
