// BigInt: construction, arithmetic, division, gcd, conversions.

#include "util/bigint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <tuple>

#include "util/random.h"

namespace shapcq {
namespace {

TEST(BigIntTest, DefaultIsZero) {
  BigInt zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_EQ(zero.sign(), 0);
  EXPECT_EQ(zero.ToString(), "0");
  EXPECT_EQ(zero.ToInt64(), 0);
}

TEST(BigIntTest, FromInt64RoundTrips) {
  for (int64_t value : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{42},
                        int64_t{-123456789}, int64_t{1} << 40,
                        std::numeric_limits<int64_t>::max(),
                        std::numeric_limits<int64_t>::min()}) {
    BigInt big(value);
    EXPECT_TRUE(big.FitsInt64());
    EXPECT_EQ(big.ToInt64(), value) << value;
    EXPECT_EQ(big.ToString(), std::to_string(value)) << value;
  }
}

TEST(BigIntTest, ParseRoundTrips) {
  for (const char* text :
       {"0", "1", "-1", "999999999999999999999999999999",
        "-123456789012345678901234567890"}) {
    BigInt parsed = BigInt::FromString(text);
    EXPECT_EQ(parsed.ToString(), text);
  }
}

TEST(BigIntTest, ParseRejectsGarbage) {
  BigInt out;
  EXPECT_FALSE(BigInt::TryParse("", &out));
  EXPECT_FALSE(BigInt::TryParse("-", &out));
  EXPECT_FALSE(BigInt::TryParse("12a3", &out));
  EXPECT_FALSE(BigInt::TryParse("1 2", &out));
}

TEST(BigIntTest, ParseAcceptsPlusSign) {
  EXPECT_EQ(BigInt::FromString("+17").ToInt64(), 17);
}

TEST(BigIntTest, AdditionCarriesAcrossLimbs) {
  BigInt a = BigInt::FromString("4294967295");  // 2^32 - 1
  EXPECT_EQ((a + BigInt(1)).ToString(), "4294967296");
}

TEST(BigIntTest, SignedAddition) {
  EXPECT_EQ((BigInt(5) + BigInt(-7)).ToInt64(), -2);
  EXPECT_EQ((BigInt(-5) + BigInt(7)).ToInt64(), 2);
  EXPECT_EQ((BigInt(-5) + BigInt(-7)).ToInt64(), -12);
  EXPECT_EQ((BigInt(5) + BigInt(-5)).ToInt64(), 0);
}

TEST(BigIntTest, SubtractionThroughZero) {
  EXPECT_EQ((BigInt(3) - BigInt(10)).ToInt64(), -7);
  EXPECT_EQ((BigInt(10) - BigInt(3)).ToInt64(), 7);
  EXPECT_TRUE((BigInt(10) - BigInt(10)).IsZero());
}

TEST(BigIntTest, MultiplicationMatchesInt64) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const int64_t a = rng.UniformInRange(-1000000, 1000000);
    const int64_t b = rng.UniformInRange(-1000000, 1000000);
    EXPECT_EQ((BigInt(a) * BigInt(b)).ToInt64(), a * b) << a << " * " << b;
  }
}

TEST(BigIntTest, MultiplicationLarge) {
  BigInt a = BigInt::FromString("123456789012345678901234567890");
  BigInt b = BigInt::FromString("987654321098765432109876543210");
  EXPECT_EQ((a * b).ToString(),
            "121932631137021795226185032733622923332237463801111263526900");
}

TEST(BigIntTest, DivModMatchesCppSemantics) {
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    const int64_t a = rng.UniformInRange(-100000, 100000);
    int64_t b = rng.UniformInRange(-1000, 1000);
    if (b == 0) b = 17;
    BigInt quotient, remainder;
    BigInt::DivMod(BigInt(a), BigInt(b), &quotient, &remainder);
    EXPECT_EQ(quotient.ToInt64(), a / b) << a << " / " << b;
    EXPECT_EQ(remainder.ToInt64(), a % b) << a << " % " << b;
  }
}

TEST(BigIntTest, DivisionReconstructsDividend) {
  Rng rng(99);
  for (int i = 0; i < 100; ++i) {
    // Random large operands built from pieces.
    BigInt a = BigInt(static_cast<int64_t>(rng.Next() >> 1)) *
                   BigInt(static_cast<int64_t>(rng.Next() >> 1)) +
               BigInt(static_cast<int64_t>(rng.Next() >> 40));
    BigInt b = BigInt(static_cast<int64_t>((rng.Next() >> 20) | 1));
    BigInt quotient, remainder;
    BigInt::DivMod(a, b, &quotient, &remainder);
    EXPECT_EQ((quotient * b + remainder), a);
    EXPECT_TRUE(remainder.Abs() < b.Abs());
  }
}

TEST(BigIntTest, GcdBasics) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)).ToInt64(), 6);
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)).ToInt64(), 6);
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)).ToInt64(), 5);
  EXPECT_EQ(BigInt::Gcd(BigInt(7), BigInt(0)).ToInt64(), 7);
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)).ToInt64(), 1);
}

TEST(BigIntTest, ComparisonTotalOrder) {
  EXPECT_LT(BigInt(-5), BigInt(3));
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_LT(BigInt(3), BigInt(5));
  EXPECT_LT(BigInt(0), BigInt::FromString("99999999999999999999"));
  EXPECT_LT(BigInt::FromString("-99999999999999999999"), BigInt(0));
  EXPECT_EQ(BigInt(7), BigInt::FromString("7"));
}

TEST(BigIntTest, ShiftLeft) {
  EXPECT_EQ(BigInt(1).ShiftLeft(10).ToInt64(), 1024);
  EXPECT_EQ(BigInt(3).ShiftLeft(33).ToString(), "25769803776");
  EXPECT_EQ(BigInt(-1).ShiftLeft(4).ToInt64(), -16);
  EXPECT_TRUE(BigInt(0).ShiftLeft(100).IsZero());
}

TEST(BigIntTest, BitLength) {
  EXPECT_EQ(BigInt(0).BitLength(), 0u);
  EXPECT_EQ(BigInt(1).BitLength(), 1u);
  EXPECT_EQ(BigInt(255).BitLength(), 8u);
  EXPECT_EQ(BigInt(256).BitLength(), 9u);
  EXPECT_EQ(BigInt(1).ShiftLeft(100).BitLength(), 101u);
}

TEST(BigIntTest, ToDoubleApproximates) {
  EXPECT_DOUBLE_EQ(BigInt(12345).ToDouble(), 12345.0);
  EXPECT_NEAR(BigInt::FromString("1000000000000000000000").ToDouble(), 1e21,
              1e6);
  EXPECT_DOUBLE_EQ(BigInt(-7).ToDouble(), -7.0);
}

TEST(BigIntTest, FitsInt64Boundary) {
  BigInt max(std::numeric_limits<int64_t>::max());
  BigInt min(std::numeric_limits<int64_t>::min());
  EXPECT_TRUE(max.FitsInt64());
  EXPECT_TRUE(min.FitsInt64());
  EXPECT_FALSE((max + BigInt(1)).FitsInt64());
  EXPECT_FALSE((min - BigInt(1)).FitsInt64());
  EXPECT_EQ((min).ToInt64(), std::numeric_limits<int64_t>::min());
}

TEST(BigIntTest, FactorialChain) {
  // 30! computed by repeated multiplication, against the known value.
  BigInt factorial(1);
  for (int64_t i = 2; i <= 30; ++i) factorial *= BigInt(i);
  EXPECT_EQ(factorial.ToString(), "265252859812191058636308480000000");
}

TEST(BigIntTest, NegationInvolution) {
  BigInt value = BigInt::FromString("123456789123456789");
  EXPECT_EQ(-(-value), value);
  EXPECT_EQ((-value).Abs(), value);
}

}  // namespace
}  // namespace shapcq
