// Deadline-aware serving, end to end over BOTH transports: a REPORT with
// deadline_ms=1 on a large session expires promptly (structured
// [E_DEADLINE], or an on_deadline=approx degradation), and the SAME session
// then serves an undeadlined REPORT bit-identical to a fresh serial oracle
// — over ExecuteLine (the stdin/script transport) and over a real TCP
// connection. Plus the socket reaps: the idle watchdog ends a silent client
// without touching its session or its neighbors, and the read-poll timeout
// reaps a stalled reader; both count into TransportStats::io_timeouts.
//
// Deadline expiry here is genuinely timing-based (the protocol carries
// milliseconds, not check ordinals), so the session is GROWN until the 1 ms
// report reliably expires — deterministic outcome, without assuming any
// particular machine speed. The deterministic-point battery lives in
// cancel_test.cc.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/command_loop.h"
#include "service/net/tcp_server.h"

namespace shapcq {
namespace {

// The session script: a hierarchical query over n student triples — wide
// enough (at the grown size) that the exact build + sweep dwarfs 1 ms.
std::vector<std::string> SessionScript(size_t n) {
  std::vector<std::string> lines;
  lines.push_back("OPEN big q() :- Stud(x), not TA(x), Reg(x,y)");
  for (size_t i = 0; i < n; ++i) {
    const std::string s = "s" + std::to_string(i);
    lines.push_back("DELTA big + Stud(" + s + ")");
    lines.push_back("DELTA big + Reg(" + s + ",c" + std::to_string(i % 7) +
                    ")*");
    if (i % 3 == 0) lines.push_back("DELTA big + TA(" + s + ")*");
  }
  return lines;
}

void Replay(CommandLoop* loop, const std::vector<std::string>& lines) {
  std::string sink;
  for (const std::string& line : lines) loop->ExecuteLine(line, &sink);
  ASSERT_EQ(loop->error_count(), 0u) << sink;
}

// Grows the session until `report_line` produces `needle`, returning the
// loop (with the deadline already tripped) and the size that tripped it.
struct GrownLoop {
  std::unique_ptr<CommandLoop> loop;
  size_t n = 0;
  std::string output;  // transcript of the tripping report_line
};

GrownLoop GrowUntilDeadline(const CommandLoopOptions& options,
                            const std::string& report_line,
                            const std::string& needle,
                            size_t start_n = 256) {
  GrownLoop grown;
  for (size_t n = start_n; n <= (1u << 16); n *= 2) {
    auto loop = std::make_unique<CommandLoop>(options);
    Replay(loop.get(), SessionScript(n));
    std::string out;
    loop->ExecuteLine(report_line, &out);
    if (out.find(needle) != std::string::npos) {
      grown.loop = std::move(loop);
      grown.n = n;
      grown.output = std::move(out);
      return grown;
    }
  }
  return grown;  // loop == nullptr: never expired (the test fails on it)
}

// ---------------------------------------------------------------------------
// stdin/script transport.
// ---------------------------------------------------------------------------

TEST(DeadlineProtocolTest, ExpiredReportThenUndeadlinedRetryBitIdentical) {
  GrownLoop grown = GrowUntilDeadline(CommandLoopOptions{},
                                      "REPORT big deadline_ms=1",
                                      "[E_DEADLINE]");
  ASSERT_NE(grown.loop, nullptr) << "deadline_ms=1 never expired";
  EXPECT_NE(grown.output.find(
                "error: [E_DEADLINE] report big: deadline_ms=1 exceeded"),
            std::string::npos)
      << grown.output;

  // The undeadlined retry on the SAME loop (whose session just blew its
  // deadline) must be byte-identical to a fresh serial oracle's report.
  std::string retry;
  grown.loop->ExecuteLine("REPORT big", &retry);
  CommandLoop oracle((CommandLoopOptions()));
  Replay(&oracle, SessionScript(grown.n));
  std::string want;
  oracle.ExecuteLine("REPORT big", &want);
  EXPECT_EQ(retry, want);
  EXPECT_NE(retry.find("end report big"), std::string::npos);

  // Counters: globally and per session, once; the gauge is idle again.
  std::string stats;
  grown.loop->ExecuteLine("STATS", &stats);
  EXPECT_NE(stats.find(" deadline_exceeded=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find(" inflight=0"), std::string::npos) << stats;
  std::string session_stats;
  grown.loop->ExecuteLine("STATS big", &session_stats);
  EXPECT_NE(session_stats.find(" deadline_exceeded=1"), std::string::npos)
      << session_stats;
}

TEST(DeadlineProtocolTest, PolicyApproxDegradesWithProvenance) {
  // Start small: the degraded sampling report's cost scales with the
  // session, so find the smallest size whose exact build blows 1 ms.
  GrownLoop grown = GrowUntilDeadline(
      CommandLoopOptions{},
      "REPORT big deadline_ms=1 on_deadline=approx", "approx:",
      /*start_n=*/32);
  ASSERT_NE(grown.loop, nullptr) << "degradation never triggered";
  // Degraded, not errored: a served report with sampling provenance.
  EXPECT_EQ(grown.output.find("error:"), std::string::npos) << grown.output;
  EXPECT_NE(grown.output.find("report big rows="), std::string::npos);
  EXPECT_NE(grown.output.find("end report big"), std::string::npos);

  std::string stats;
  grown.loop->ExecuteLine("STATS", &stats);
  EXPECT_NE(stats.find(" deadline_exceeded=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find(" degraded_to_approx=1"), std::string::npos) << stats;

  // The degraded answer was not cached: the next plain report is exact.
  std::string retry;
  grown.loop->ExecuteLine("REPORT big", &retry);
  EXPECT_EQ(retry.find("approx:"), std::string::npos) << retry;
  CommandLoop oracle((CommandLoopOptions()));
  Replay(&oracle, SessionScript(grown.n));
  std::string want;
  oracle.ExecuteLine("REPORT big", &want);
  EXPECT_EQ(retry, want);
}

TEST(DeadlineProtocolTest, ServerDefaultDeadlineAppliesAndZeroOptsOut) {
  CommandLoopOptions options;
  options.default_deadline_ms = 1;
  // The bare REPORT carries no deadline keys — the server default applies
  // (to the deprecated positional form just the same).
  GrownLoop grown =
      GrowUntilDeadline(options, "REPORT big", "[E_DEADLINE]");
  ASSERT_NE(grown.loop, nullptr) << "server default deadline never fired";
  EXPECT_NE(grown.output.find("deadline_ms=1 exceeded"), std::string::npos)
      << grown.output;

  std::string positional;
  grown.loop->ExecuteLine("REPORT big 3", &positional);
  EXPECT_NE(positional.find("[E_DEADLINE]"), std::string::npos)
      << positional;

  // deadline_ms=0 is the per-request opt-out: the report runs undeadlined.
  std::string opted_out;
  grown.loop->ExecuteLine("REPORT big deadline_ms=0", &opted_out);
  EXPECT_EQ(opted_out.find("[E_DEADLINE]"), std::string::npos) << opted_out;
  EXPECT_NE(opted_out.find("end report big"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Socket transport.
// ---------------------------------------------------------------------------

// A blocking test client over one connection (the service_net_test shape).
class Client {
 public:
  explicit Client(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return fd_ >= 0; }

  void Send(const std::string& text) {
    ASSERT_TRUE(connected());
    size_t sent = 0;
    while (sent < text.size()) {
      const ssize_t n = ::send(fd_, text.data() + sent, text.size() - sent, 0);
      ASSERT_GT(n, 0);
      sent += static_cast<size_t>(n);
    }
  }

  void CloseWrite() { ::shutdown(fd_, SHUT_WR); }

  std::string ReadLine() {
    std::string line;
    char ch = 0;
    while (::recv(fd_, &ch, 1, 0) == 1) {
      if (ch == '\n') return line;
      line.push_back(ch);
    }
    return line;
  }

  std::string ReadToEof() {
    std::string all;
    char buf[4096];
    ssize_t n = 0;
    while ((n = ::recv(fd_, buf, sizeof(buf), 0)) > 0) {
      all.append(buf, static_cast<size_t>(n));
    }
    return all;
  }

 private:
  int fd_ = -1;
};

std::string Roundtrip(uint16_t port, const std::string& script) {
  Client client(port);
  EXPECT_TRUE(client.connected());
  if (!client.connected()) return "";
  client.Send(script);
  client.CloseWrite();
  return client.ReadToEof();
}

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string joined;
  for (const std::string& line : lines) joined += line + "\n";
  return joined;
}

TEST(DeadlineSocketTest, ExpiredReportOverSocketThenRetryBitIdentical) {
  std::string transcript;
  size_t n = 0;
  for (n = 256; n <= (1u << 16); n *= 2) {
    CommandLoopOptions loop_options;
    loop_options.registry.num_stripes = 8;
    EngineRegistry registry(loop_options.registry);
    auto listening = TcpServer::Listen(TcpServerOptions{}, loop_options,
                                       &registry, nullptr);
    ASSERT_TRUE(listening.ok()) << listening.error();
    TcpServer server = std::move(listening).value();
    std::thread serve_thread([&server]() { server.Serve(nullptr); });

    std::string script = JoinLines(SessionScript(n));
    script += "REPORT big deadline_ms=1\n";
    script += "REPORT big\n";
    transcript = Roundtrip(server.port(), script);
    server.Shutdown();
    serve_thread.join();
    if (transcript.find("[E_DEADLINE]") != std::string::npos) break;
  }
  ASSERT_LE(n, 1u << 16) << "deadline_ms=1 never expired over the socket";
  EXPECT_NE(transcript.find(
                "error: [E_DEADLINE] report big: deadline_ms=1 exceeded"),
            std::string::npos);

  // The undeadlined retry (same connection, right after the expiry) must be
  // byte-identical to a fresh serial loop's report of the same session.
  const size_t retry_at = transcript.rfind("> REPORT big\n");
  ASSERT_NE(retry_at, std::string::npos);
  CommandLoop oracle((CommandLoopOptions()));
  Replay(&oracle, SessionScript(n));
  std::string want;
  oracle.ExecuteLine("REPORT big", &want);
  EXPECT_EQ(transcript.substr(retry_at), want);
}

TEST(DeadlineSocketTest, IdleWatchdogReapsSilentClientWithoutCollateral) {
  TransportStats transport;
  CommandLoopOptions loop_options;
  loop_options.registry.num_stripes = 8;
  loop_options.transport_stats = &transport;
  EngineRegistry registry(loop_options.registry);
  TcpServerOptions net_options;
  net_options.idle_timeout_ms = 150;
  auto listening =
      TcpServer::Listen(net_options, loop_options, &registry, nullptr);
  ASSERT_TRUE(listening.ok()) << listening.error();
  TcpServer server = std::move(listening).value();
  std::thread serve_thread([&server]() { server.Serve(nullptr); });

  // The victim: opens a session, then goes silent without closing.
  Client silent(server.port());
  ASSERT_TRUE(silent.connected());
  silent.Send("OPEN a q() :- R(x)\n");
  EXPECT_EQ(silent.ReadLine(), "> OPEN a q() :- R(x)");
  EXPECT_EQ(silent.ReadLine(), "ok open a");

  // The watchdog reaps it within idle_timeout_ms + one accept tick; the
  // client observes an orderly EOF — no error line, no reset.
  EXPECT_EQ(silent.ReadToEof(), "");
  EXPECT_GE(transport.io_timeouts.load(), 1u);

  // No collateral: the reaped client's session survives in the registry,
  // and a fresh active client serves exactly like a serial loop would.
  EXPECT_TRUE(registry.Has("a"));
  const std::string script =
      "OPEN b q() :- R(x)\nDELTA b + R(a)*\nREPORT b\nCLOSE b\n";
  const std::string got = Roundtrip(server.port(), script);
  CommandLoop oracle((CommandLoopOptions()));
  std::string want;
  oracle.ExecuteLine("OPEN b q() :- R(x)", &want);
  oracle.ExecuteLine("DELTA b + R(a)*", &want);
  oracle.ExecuteLine("REPORT b", &want);
  oracle.ExecuteLine("CLOSE b", &want);
  EXPECT_EQ(got, want);

  server.Shutdown();
  serve_thread.join();
  EXPECT_EQ(server.total_errors(), 0u);
}

TEST(DeadlineSocketTest, IoTimeoutReapsStalledReaderAfterReply) {
  TransportStats transport;
  CommandLoopOptions loop_options;
  loop_options.registry.num_stripes = 8;
  loop_options.transport_stats = &transport;
  EngineRegistry registry(loop_options.registry);
  TcpServerOptions net_options;
  net_options.io_timeout_ms = 100;
  auto listening =
      TcpServer::Listen(net_options, loop_options, &registry, nullptr);
  ASSERT_TRUE(listening.ok()) << listening.error();
  TcpServer server = std::move(listening).value();
  std::thread serve_thread([&server]() { server.Serve(nullptr); });

  // One command, then a stall: the reply arrives in full, then the next
  // read's poll expires and the server ends the connection cleanly.
  Client stalled(server.port());
  ASSERT_TRUE(stalled.connected());
  stalled.Send("STATS\n");
  EXPECT_EQ(stalled.ReadLine(), "> STATS");
  const std::string stats_line = stalled.ReadLine();
  EXPECT_EQ(stats_line.rfind("stats sessions=0 ", 0), 0u) << stats_line;
  EXPECT_EQ(stalled.ReadToEof(), "");
  EXPECT_EQ(transport.io_timeouts.load(), 1u);
  EXPECT_EQ(server.total_errors(), 0u);

  server.Shutdown();
  serve_thread.join();
}

}  // namespace
}  // namespace shapcq
