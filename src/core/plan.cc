#include "core/plan.h"

#include <unordered_map>

#include "query/analysis.h"
#include "util/check.h"

namespace shapcq {

namespace {

// Placeholder constants stand for the value of a projected root variable;
// the evaluator binds them per slice.
Value FreshPlaceholder(const CQ& q, VarId root) {
  return ValueDictionary::Global().Fresh("$" + q.var_name(root));
}

Result<std::unique_ptr<SafePlan>> CompileNode(const CQ& q) {
  auto node = std::make_unique<SafePlan>();
  node->query = q;

  const auto components = AtomComponents(q);
  if (components.size() > 1) {
    node->kind = SafePlan::Kind::kIndependentJoin;
    for (const auto& component : components) {
      auto child = CompileNode(q.Restrict(component));
      if (!child.ok()) {
        return Result<std::unique_ptr<SafePlan>>::Error(child.error());
      }
      node->children.push_back(std::move(child).value());
    }
    return Result<std::unique_ptr<SafePlan>>::Ok(std::move(node));
  }

  if (q.UsedVars().empty()) {
    SHAPCQ_CHECK(q.atom_count() == 1);
    node->kind = SafePlan::Kind::kAtomLeaf;
    return Result<std::unique_ptr<SafePlan>>::Ok(std::move(node));
  }

  auto root = FindRootVariable(q);
  if (!root.has_value()) {
    return Result<std::unique_ptr<SafePlan>>::Error(
        "no root variable: the query is not hierarchical");
  }
  node->kind = SafePlan::Kind::kRootProject;
  node->root = *root;
  auto child = CompileNode(q.Substitute(*root, FreshPlaceholder(q, *root)));
  if (!child.ok()) {
    return Result<std::unique_ptr<SafePlan>>::Error(child.error());
  }
  node->children.push_back(std::move(child).value());
  return Result<std::unique_ptr<SafePlan>>::Ok(std::move(node));
}

std::string AtomToString(const CQ& q, const Atom& atom) {
  const ValueDictionary& dict = ValueDictionary::Global();
  std::string out = atom.negated ? "not " : "";
  out += atom.relation + "(";
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    if (i > 0) out += ",";
    out += atom.terms[i].IsVar() ? q.var_name(atom.terms[i].var)
                                 : dict.Name(atom.terms[i].constant);
  }
  return out + ")";
}

void ExplainInto(const SafePlan& plan, int depth, std::string* out) {
  out->append(static_cast<size_t>(2 * depth), ' ');
  switch (plan.kind) {
    case SafePlan::Kind::kAtomLeaf:
      *out += "leaf: " + AtomToString(plan.query, plan.query.atom(0)) + "\n";
      return;
    case SafePlan::Kind::kIndependentJoin:
      *out += "join\n";
      break;
    case SafePlan::Kind::kRootProject:
      *out += "project[" + plan.query.var_name(plan.root) + "]\n";
      break;
  }
  for (const auto& child : plan.children) {
    ExplainInto(*child, depth + 1, out);
  }
}

// Placeholder bindings: placeholder value id -> concrete value id.
using Bindings = std::unordered_map<int32_t, int32_t>;

Value Resolve(Value value, const Bindings& bindings) {
  auto it = bindings.find(value.id);
  return it == bindings.end() ? value : Value{it->second};
}

double EvalNode(const SafePlan& plan, const ProbDatabase& pdb,
                const Bindings& bindings);

double EvalLeaf(const SafePlan& plan, const ProbDatabase& pdb,
                const Bindings& bindings) {
  const Atom& atom = plan.query.atom(0);
  Tuple tuple(atom.terms.size());
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    SHAPCQ_CHECK_MSG(atom.terms[i].IsConst(), "leaf atom must be ground");
    tuple[i] = Resolve(atom.terms[i].constant, bindings);
  }
  const FactId fact = pdb.db().FindFact(atom.relation, tuple);
  const double present = fact == kNoFact ? 0.0 : pdb.probability(fact);
  return atom.negated ? 1.0 - present : present;
}

double EvalRootProject(const SafePlan& plan, const ProbDatabase& pdb,
                       const Bindings& bindings) {
  const CQ& q = plan.query;
  const SafePlan& child = *plan.children[0];
  // The child's query replaced the root by a placeholder: recover it as the
  // constant of the child's query that is absent from ours. Simpler: it is
  // the constant that Resolve cannot find and was minted by CompileNode —
  // identified structurally: any term that is a variable here and a
  // constant in the child occupies the same position.
  Value placeholder{-1};
  for (size_t a = 0; a < q.atom_count() && placeholder.id < 0; ++a) {
    const Atom& ours = q.atom(a);
    const Atom& theirs = child.query.atom(a);
    for (size_t i = 0; i < ours.terms.size(); ++i) {
      if (ours.terms[i].IsVar() && ours.terms[i].var == plan.root) {
        placeholder = theirs.terms[i].constant;
        break;
      }
    }
  }
  SHAPCQ_CHECK(placeholder.id >= 0);

  // Candidate slice values: root-position values of facts matching each
  // atom's resolved constants, with consistent root positions.
  std::unordered_map<int32_t, bool> slice_values;
  for (size_t a = 0; a < q.atom_count(); ++a) {
    const Atom& atom = q.atom(a);
    std::vector<size_t> root_positions;
    for (size_t i = 0; i < atom.terms.size(); ++i) {
      if (atom.terms[i].IsVar() && atom.terms[i].var == plan.root) {
        root_positions.push_back(i);
      }
    }
    const RelationId rel = pdb.db().schema().Find(atom.relation);
    for (FactId fact : pdb.db().facts_of(rel)) {
      const Tuple& tuple = pdb.db().tuple_of(fact);
      bool consistent = true;
      const Value value = tuple[root_positions[0]];
      for (size_t pos : root_positions) {
        if (!(tuple[pos] == value)) consistent = false;
      }
      for (size_t i = 0; i < atom.terms.size() && consistent; ++i) {
        if (atom.terms[i].IsConst() &&
            !(Resolve(atom.terms[i].constant, bindings) == tuple[i])) {
          consistent = false;
        }
      }
      if (consistent) slice_values.emplace(value.id, true);
    }
  }

  double none = 1.0;
  for (const auto& [value_id, unused] : slice_values) {
    Bindings extended = bindings;
    extended[placeholder.id] = value_id;
    none *= 1.0 - EvalNode(child, pdb, extended);
  }
  return 1.0 - none;
}

double EvalNode(const SafePlan& plan, const ProbDatabase& pdb,
                const Bindings& bindings) {
  switch (plan.kind) {
    case SafePlan::Kind::kAtomLeaf:
      return EvalLeaf(plan, pdb, bindings);
    case SafePlan::Kind::kIndependentJoin: {
      double product = 1.0;
      for (const auto& child : plan.children) {
        product *= EvalNode(*child, pdb, bindings);
      }
      return product;
    }
    case SafePlan::Kind::kRootProject:
      return EvalRootProject(plan, pdb, bindings);
  }
  SHAPCQ_CHECK_MSG(false, "unreachable");
  return 0.0;
}

}  // namespace

Result<std::unique_ptr<SafePlan>> CompileSafePlan(const CQ& q) {
  if (!IsSafe(q)) {
    return Result<std::unique_ptr<SafePlan>>::Error(
        "safe plans require safe negation");
  }
  if (!IsSelfJoinFree(q)) {
    return Result<std::unique_ptr<SafePlan>>::Error(
        "safe plans require a self-join-free query");
  }
  if (!IsHierarchical(q)) {
    return Result<std::unique_ptr<SafePlan>>::Error(
        "no safe plan: the query is not hierarchical (Theorems 3.1/4.10)");
  }
  return CompileNode(q);
}

std::string ExplainPlan(const SafePlan& plan) {
  std::string out;
  ExplainInto(plan, 0, &out);
  return out;
}

Result<double> PlanProbability(const CQ& q, const ProbDatabase& pdb) {
  auto plan = CompileSafePlan(q);
  if (!plan.ok()) return Result<double>::Error(plan.error());
  return Result<double>::Ok(EvalNode(*plan.value(), pdb, {}));
}

}  // namespace shapcq
