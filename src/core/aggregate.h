// Shapley values for aggregate queries over CQ¬s (Section 3, Remarks).
//
// For a summation aggregate Σ_{answers a} weight(a) over a CQ¬ with free
// variables, linearity of expectation reduces the Shapley value of a fact to
// a weighted sum of Boolean Shapley values of the grounded queries q[head→a]
// — so the dichotomy of Theorem 3.1 carries over.

#ifndef SHAPCQ_CORE_AGGREGATE_H_
#define SHAPCQ_CORE_AGGREGATE_H_

#include <cstddef>
#include <vector>

#include "db/database.h"
#include "query/analysis.h"
#include "query/cq.h"
#include "util/rational.h"
#include "util/result.h"

namespace shapcq {

/// An aggregate over the answers of a CQ¬ with a non-empty head.
///  * kCount: value(E) = number of distinct answers of q on Dx ∪ E.
///  * kSum:   value(E) = Σ over distinct answers of the numeric value of the
///            head variable at `sum_position` (constants must parse as
///            integers).
struct AggregateQuery {
  enum class Kind { kCount, kSum };
  CQ cq;
  Kind kind = Kind::kCount;
  size_t sum_position = 0;  // index into cq.head(); used by kSum
};

/// Aggregate value on the world Dx ∪ E.
Rational AggregateValue(const AggregateQuery& agg, const Database& db,
                        const World& world);

/// All head tuples the query can produce on ANY world Dx ∪ E. With negation
/// the query is non-monotone, so this is computed from the positive atoms
/// alone (a sound superset of every world's answer set).
std::vector<Tuple> PotentialAnswers(const CQ& q, const Database& db);

/// Shapley(D, agg, f) = Σ_a weight(a) · Shapley(D, q[head→a], f) by
/// linearity. Each grounded Boolean query goes through CntSat when
/// hierarchical, or through ExoShap when `exo` relations remove its
/// non-hierarchical paths; returns an error if a grounding is intractable.
Result<Rational> ShapleyAggregate(const AggregateQuery& agg,
                                  const Database& db, FactId f,
                                  const ExoRelations& exo = {});

/// Exponential reference: treats the aggregate as a cooperative game.
Rational ShapleyAggregateBruteForce(const AggregateQuery& agg,
                                    const Database& db, FactId f);

}  // namespace shapcq

#endif  // SHAPCQ_CORE_AGGREGATE_H_
