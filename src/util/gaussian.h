// Exact Gaussian elimination over the rationals.
//
// The hardness proof of Lemma B.3 recovers the independent-set counts
// |S(g,k)| from Shapley values by solving an (N+1)x(N+1) linear system with
// factorial coefficients; exact rational elimination reproduces that step
// without numerical error.

#ifndef SHAPCQ_UTIL_GAUSSIAN_H_
#define SHAPCQ_UTIL_GAUSSIAN_H_

#include <vector>

#include "util/rational.h"

namespace shapcq {

/// Dense rational matrix, row-major.
using RationalMatrix = std::vector<std::vector<Rational>>;

/// Solves matrix * x = rhs exactly. Returns false if the matrix is singular
/// (or non-square / dimension-mismatched). On success *solution holds x.
bool SolveLinearSystem(const RationalMatrix& matrix,
                       const std::vector<Rational>& rhs,
                       std::vector<Rational>* solution);

/// Exact determinant via fraction-free elimination on a copy. Empty matrix
/// has determinant 1.
Rational Determinant(const RationalMatrix& matrix);

}  // namespace shapcq

#endif  // SHAPCQ_UTIL_GAUSSIAN_H_
