// shapcq_server — long-lived attribution server over incremental
// ShapleyEngines.
//
// Speaks the line protocol of src/service/command_loop.h on stdin/stdout
// (or replays a session script with --script). One process holds many open
// sessions; each session's engine is maintained incrementally across DELTA
// batches and evicted least-recently-used under memory pressure.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "service/command_loop.h"

namespace {

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: shapcq_server [--script FILE] [--threads N]\n"
      "                     [--budget-bytes B] [--max-resident K]\n"
      "\n"
      "Long-lived attribution server: one incremental Shapley engine per\n"
      "open session, byte-budgeted LRU eviction, rebuild-on-readmission.\n"
      "Reads one command per line from stdin (or FILE with --script) and\n"
      "writes results to stdout. Commands:\n"
      "\n"
      "  OPEN <session> <query-rule>\n"
      "      Open a session with an empty database. The query must be\n"
      "      safe, self-join-free and hierarchical (the incremental\n"
      "      engine's scope), e.g.:\n"
      "        OPEN s1 q() :- Stud(x), not TA(x), Reg(x,y)\n"
      "  DELTA <session> + <fact-literal>\n"
      "  DELTA <session> - <fact-literal>\n"
      "      Insert or delete one fact; '*' marks endogenous, e.g.:\n"
      "        DELTA s1 + Reg(Adam,OS)*\n"
      "      Deletes name the fact by literal. While the session's engine\n"
      "      is resident, each delta patches one root-to-leaf path; after\n"
      "      an eviction, deltas apply to the retained database and the\n"
      "      next REPORT rebuilds.\n"
      "  REPORT <session> [top_k] [--threads N]\n"
      "      Stream the ranked attribution table (every endogenous fact's\n"
      "      exact Shapley value; top_k keeps the k highest rows).\n"
      "  STATS            registry counters (sessions, hits, evictions)\n"
      "  STATS <session>  per-session counters\n"
      "  CLOSE <session>  close the session\n"
      "\n"
      "Blank lines and '#' comments are skipped; commands echo as\n"
      "'> <line>' so a transcript reads as a session log. The exit code is\n"
      "non-zero if any command errored.\n"
      "\n"
      "  --script FILE     replay FILE instead of reading stdin\n"
      "  --threads N       default REPORT worker threads (1 = serial,\n"
      "                    0 = all hardware threads; values are identical\n"
      "                    at any thread count)\n"
      "  --budget-bytes B  total resident engine bytes before LRU eviction\n"
      "                    (0 = unlimited)\n"
      "  --max-resident K  max resident engines before LRU eviction\n"
      "                    (0 = unlimited; deterministic across platforms)\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace shapcq;
  std::string script_path;
  CommandLoopOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        PrintUsage();
        std::exit(2);
      }
      return argv[++i];
    };
    auto next_size = [&](const char* flag) -> size_t {
      const char* text = next();
      char* end = nullptr;
      const unsigned long long value = std::strtoull(text, &end, 10);
      if (end == text || *end != '\0' || text[0] == '-') {
        std::fprintf(stderr, "bad %s value: %s\n", flag, text);
        std::exit(2);
      }
      return static_cast<size_t>(value);
    };
    if (arg == "--script") {
      script_path = next();
    } else if (arg == "--threads") {
      options.default_threads = next_size("--threads");
    } else if (arg == "--budget-bytes") {
      options.registry.engine_byte_budget = next_size("--budget-bytes");
    } else if (arg == "--max-resident") {
      options.registry.max_resident_engines = next_size("--max-resident");
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }

  CommandLoop loop(options);
  if (!script_path.empty()) {
    std::ifstream script(script_path);
    if (!script) {
      std::fprintf(stderr, "cannot open script %s\n", script_path.c_str());
      return 1;
    }
    return loop.Run(script, std::cout);
  }
  return loop.Run(std::cin, std::cout);
}
