#include "util/bigint.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <limits>
#include <ostream>
#include <vector>

#include "util/check.h"

// 128-bit intermediates: unsigned __int128 where the compiler provides it,
// a 32-bit-split portable fallback otherwise. Every kernel below is written
// against the MulWide / Div2By1 primitives so the two paths share one
// algorithm. Compile with -DSHAPCQ_BIGINT_FORCE_PORTABLE to exercise the
// fallback on an __int128-capable toolchain — the portable-fallback CI job
// runs the whole differential battery that way, so both shapes stay tested.
#if !defined(SHAPCQ_BIGINT_FORCE_PORTABLE) && defined(__SIZEOF_INT128__)
#define SHAPCQ_BIGINT_HAS_INT128 1
#else
#define SHAPCQ_BIGINT_HAS_INT128 0
#endif

namespace shapcq {

namespace {

using Limb = BigInt::Limb;

inline int CountLeadingZeros(Limb x) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_clzll(x);
#else
  int n = 0;
  while (!(x >> 63)) {
    x <<= 1;
    ++n;
  }
  return n;
#endif
}

inline int CountTrailingZeros(Limb x) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_ctzll(x);
#else
  int n = 0;
  while (!(x & 1)) {
    x >>= 1;
    ++n;
  }
  return n;
#endif
}

// hi:lo = a * b.
inline void MulWide(Limb a, Limb b, Limb* hi, Limb* lo) {
#if SHAPCQ_BIGINT_HAS_INT128
  const unsigned __int128 product = static_cast<unsigned __int128>(a) * b;
  *lo = static_cast<Limb>(product);
  *hi = static_cast<Limb>(product >> 64);
#else
  const Limb a_lo = a & 0xffffffffu, a_hi = a >> 32;
  const Limb b_lo = b & 0xffffffffu, b_hi = b >> 32;
  const Limb p0 = a_lo * b_lo;
  const Limb p1 = a_lo * b_hi;
  const Limb p2 = a_hi * b_lo;
  const Limb p3 = a_hi * b_hi;
  const Limb mid = (p0 >> 32) + (p1 & 0xffffffffu) + (p2 & 0xffffffffu);
  *lo = (mid << 32) | (p0 & 0xffffffffu);
  *hi = p3 + (p1 >> 32) + (p2 >> 32) + (mid >> 32);
#endif
}

// Divides u1:u0 by d (requires u1 < d); returns the quotient, stores the
// remainder. The portable branch is the classic base-2^32 two-digit long
// division (Hacker's Delight divlu2).
inline Limb Div2By1(Limb u1, Limb u0, Limb d, Limb* r) {
#if SHAPCQ_BIGINT_HAS_INT128
  const unsigned __int128 n =
      (static_cast<unsigned __int128>(u1) << 64) | u0;
  *r = static_cast<Limb>(n % d);
  return static_cast<Limb>(n / d);
#else
  const Limb base = Limb{1} << 32;
  const int s = CountLeadingZeros(d);
  d <<= s;
  if (s != 0) {
    u1 = (u1 << s) | (u0 >> (64 - s));
    u0 <<= s;
  }
  const Limb dh = d >> 32, dl = d & 0xffffffffu;
  const Limb un1 = u0 >> 32, un0 = u0 & 0xffffffffu;
  Limb q1 = u1 / dh, rhat = u1 % dh;
  while (q1 >= base || q1 * dl > ((rhat << 32) | un1)) {
    --q1;
    rhat += dh;
    if (rhat >= base) break;
  }
  const Limb un21 = (u1 << 32) + un1 - q1 * d;
  Limb q0 = un21 / dh;
  rhat = un21 % dh;
  while (q0 >= base || q0 * dl > ((rhat << 32) | un0)) {
    --q0;
    rhat += dh;
    if (rhat >= base) break;
  }
  *r = ((un21 << 32) + un0 - q0 * d) >> s;
  return (q1 << 32) | q0;
#endif
}

// ---------------------------------------------------------------------------
// LimbPool: thread-local size-class freelists for heap limb buffers.
//
// Every heap spill of a BigInt goes through Acquire/Release instead of the
// global allocator. Capacities are powers of two from kMinPoolCapacity up to
// kMinPoolCapacity << (kNumSizeClasses - 1); larger requests fall through to
// plain new[]/delete[]. The cache is strictly thread-local (no locks, no
// sharing — TSan-clean by construction); a buffer acquired on one thread may
// be released on another, in which case it simply parks in (or is freed
// from) the releasing thread's cache. After the cache's thread-exit
// destructor has run, Acquire/Release degrade to plain new[]/delete[] so
// static-duration BigInts destroyed late stay correct.
// ---------------------------------------------------------------------------

constexpr size_t kMinPoolCapacity = 4;   // > BigInt::kInlineLimbs by contract
constexpr size_t kNumSizeClasses = 13;   // up to 4 << 12 = 16384 limbs
// Parked memory is bounded two ways: at most kMaxFreePerClass buffers AND at
// most kMaxFreeLimbsPerClass limbs (128 KiB) per class — so a thread parks
// ≤ ~1.7 MiB total, instead of 64 of the largest buffers (~8 MiB in the top
// class alone). Parked bytes are invisible to ApproxMemoryBytes by design,
// so this bound is what keeps the registry's byte budget honest.
constexpr size_t kMaxFreePerClass = 64;
constexpr size_t kMaxFreeLimbsPerClass = 16384;

static_assert(kMinPoolCapacity > BigInt::kInlineLimbs,
              "heap capacities must exceed kInlineLimbs: capacity_ is the "
              "inline/heap discriminator");

inline size_t ClassCapacity(size_t size_class) {
  return kMinPoolCapacity << size_class;
}

// Smallest class whose capacity is >= limb_count; kNumSizeClasses if none.
inline size_t SizeClassFor(size_t limb_count) {
  size_t size_class = 0;
  size_t capacity = kMinPoolCapacity;
  while (size_class < kNumSizeClasses && capacity < limb_count) {
    capacity <<= 1;
    ++size_class;
  }
  return size_class;
}

struct LimbPoolCache;
thread_local LimbPoolCache* g_pool_cache = nullptr;
thread_local bool g_pool_cache_dead = false;

struct LimbPoolCache {
  std::vector<Limb*> free_lists[kNumSizeClasses];

  LimbPoolCache() { g_pool_cache = this; }
  ~LimbPoolCache() {
    for (std::vector<Limb*>& list : free_lists) {
      for (Limb* buffer : list) delete[] buffer;
    }
    g_pool_cache = nullptr;
    g_pool_cache_dead = true;
  }
};

inline LimbPoolCache* GetPoolCache() {
  if (g_pool_cache != nullptr) return g_pool_cache;
  if (g_pool_cache_dead) return nullptr;
  static thread_local LimbPoolCache cache;
  return g_pool_cache;
}

Limb* PoolAcquire(size_t min_limbs, uint32_t* capacity_out) {
  const size_t size_class = SizeClassFor(min_limbs);
  if (size_class >= kNumSizeClasses) {
    *capacity_out = static_cast<uint32_t>(min_limbs);
    return new Limb[min_limbs];
  }
  const size_t capacity = ClassCapacity(size_class);
  *capacity_out = static_cast<uint32_t>(capacity);
  LimbPoolCache* cache = GetPoolCache();
  if (cache != nullptr && !cache->free_lists[size_class].empty()) {
    Limb* buffer = cache->free_lists[size_class].back();
    cache->free_lists[size_class].pop_back();
    return buffer;
  }
  return new Limb[capacity];
}

void PoolRelease(Limb* buffer, size_t capacity) {
  const size_t size_class = SizeClassFor(capacity);
  if (size_class < kNumSizeClasses && ClassCapacity(size_class) == capacity) {
    const size_t max_parked = std::min(
        kMaxFreePerClass, std::max<size_t>(1, kMaxFreeLimbsPerClass / capacity));
    LimbPoolCache* cache = GetPoolCache();
    if (cache != nullptr &&
        cache->free_lists[size_class].size() < max_parked) {
      cache->free_lists[size_class].push_back(buffer);
      return;
    }
  }
  delete[] buffer;
}

// RAII scratch buffer drawn from the pool (Karatsuba temporaries, division
// work areas, large fused-accumulate products).
class PooledScratch {
 public:
  explicit PooledScratch(size_t limb_count) {
    data_ = PoolAcquire(limb_count, &capacity_);
  }
  ~PooledScratch() { PoolRelease(data_, capacity_); }
  PooledScratch(const PooledScratch&) = delete;
  PooledScratch& operator=(const PooledScratch&) = delete;

  Limb* data() { return data_; }

 private:
  Limb* data_;
  uint32_t capacity_;
};

// ---------------------------------------------------------------------------
// Raw magnitude kernels (little-endian limb arrays, no sign handling).
// ---------------------------------------------------------------------------

// -1, 0, +1 for a[0..an) vs b[0..bn); operands need not be trimmed.
int CompareLimbs(const Limb* a, size_t an, const Limb* b, size_t bn) {
  while (an > 0 && a[an - 1] == 0) --an;
  while (bn > 0 && b[bn - 1] == 0) --bn;
  if (an != bn) return an < bn ? -1 : 1;
  for (size_t i = an; i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

size_t SignificantLimbs(const Limb* a, size_t n) {
  while (n > 0 && a[n - 1] == 0) --n;
  return n;
}

// a[0..an) -= b[0..bn) in place; requires |a| >= |b| (final borrow is zero).
void SubLimbsInPlace(Limb* a, size_t an, const Limb* b, size_t bn) {
  Limb borrow = 0;
  size_t i = 0;
  for (; i < bn; ++i) {
    const Limb t = a[i] - borrow;
    const Limb borrow1 = static_cast<Limb>(t > a[i]);
    const Limb result = t - b[i];
    borrow = borrow1 | static_cast<Limb>(result > t);
    a[i] = result;
  }
  for (; borrow != 0 && i < an; ++i) {
    const Limb t = a[i] - borrow;
    borrow = static_cast<Limb>(t > a[i]);
    a[i] = t;
  }
  SHAPCQ_CHECK_MSG(borrow == 0, "magnitude subtraction underflow");
}

// res[off..) += add[0..n), propagating the carry; the sum must fit below
// res + res_len.
void AddLimbsAt(Limb* res, size_t res_len, size_t off, const Limb* add,
                size_t n) {
  Limb carry = 0;
  size_t i = 0;
  for (; i < n; ++i) {
    const Limb sum1 = res[off + i] + add[i];
    const Limb carry1 = static_cast<Limb>(sum1 < add[i]);
    const Limb sum2 = sum1 + carry;
    carry = carry1 | static_cast<Limb>(sum2 < carry);
    res[off + i] = sum2;
  }
  for (; carry != 0; ++i) {
    SHAPCQ_CHECK_MSG(off + i < res_len, "magnitude addition overflow");
    const Limb sum = res[off + i] + carry;
    carry = static_cast<Limb>(sum < carry);
    res[off + i] = sum;
  }
}

// out[0..n) = a[0..n) * m; returns the carry limb.
Limb MulRowTo(Limb* out, const Limb* a, size_t n, Limb m) {
#if SHAPCQ_BIGINT_HAS_INT128
  unsigned __int128 carry = 0;
  for (size_t i = 0; i < n; ++i) {
    const unsigned __int128 cur =
        static_cast<unsigned __int128>(a[i]) * m + static_cast<Limb>(carry);
    out[i] = static_cast<Limb>(cur);
    carry = cur >> 64;
  }
  return static_cast<Limb>(carry);
#else
  Limb carry = 0;
  for (size_t i = 0; i < n; ++i) {
    Limb hi, lo;
    MulWide(a[i], m, &hi, &lo);
    const Limb sum = lo + carry;
    carry = hi + static_cast<Limb>(sum < lo);
    out[i] = sum;
  }
  return carry;
#endif
}

// acc[0..n) += a[0..n) * m; returns the carry limb.
Limb MulAddRow(Limb* acc, const Limb* a, size_t n, Limb m) {
#if SHAPCQ_BIGINT_HAS_INT128
  unsigned __int128 carry = 0;
  for (size_t i = 0; i < n; ++i) {
    const unsigned __int128 cur = static_cast<unsigned __int128>(a[i]) * m +
                                  acc[i] + static_cast<Limb>(carry);
    acc[i] = static_cast<Limb>(cur);
    carry = cur >> 64;
  }
  return static_cast<Limb>(carry);
#else
  Limb carry = 0;
  for (size_t i = 0; i < n; ++i) {
    Limb hi, lo;
    MulWide(a[i], m, &hi, &lo);
    Limb sum = lo + carry;
    Limb carry_out = hi + static_cast<Limb>(sum < lo);
    const Limb with_acc = sum + acc[i];
    carry_out += static_cast<Limb>(with_acc < sum);
    acc[i] = with_acc;
    carry = carry_out;
  }
  return carry;
#endif
}

// acc[0..n) -= a[0..n) * m; returns the borrow limb.
Limb MulSubRow(Limb* acc, const Limb* a, size_t n, Limb m) {
  Limb borrow = 0;
  for (size_t i = 0; i < n; ++i) {
    Limb hi, lo;
    MulWide(m, a[i], &hi, &lo);
    lo += borrow;
    hi += static_cast<Limb>(lo < borrow);
    const Limb t = acc[i];
    acc[i] = t - lo;
    borrow = hi + static_cast<Limb>(t < lo);
  }
  return borrow;
}

void MulMagnitudeTo(const Limb* a, size_t an, const Limb* b, size_t bn,
                    Limb* res);

// Schoolbook product into res[0..an+bn) (fully overwritten). Requires
// an >= bn >= 1.
void SchoolbookMulTo(const Limb* a, size_t an, const Limb* b, size_t bn,
                     Limb* res) {
  std::memset(res, 0, (an + bn) * sizeof(Limb));
  for (size_t i = 0; i < an; ++i) {
    // Row i writes res[i..i+bn); position i+bn has never been written by an
    // earlier row (max earlier index is i-1+bn), so the carry is a store.
    res[i + bn] = MulAddRow(res + i, b, bn, a[i]);
  }
}

// Karatsuba product into res[0..an+bn) (fully overwritten). Requires
// an >= bn > an/2 and bn >= BigInt::kKaratsubaThreshold.
void KaratsubaMulTo(const Limb* a, size_t an, const Limb* b, size_t bn,
                    Limb* res) {
  const size_t h = an >> 1;  // split point; bn > h by the balance precondition
  const Limb* a0 = a;
  const size_t a0n = h;
  const Limb* a1 = a + h;
  const size_t a1n = an - h;
  const Limb* b0 = b;
  const size_t b0n = h;
  const Limb* b1 = b + h;
  const size_t b1n = bn - h;

  // z0 = a0*b0 and z2 = a1*b1 land directly in their final positions: they
  // occupy disjoint halves res[0..2h) and res[2h..an+bn).
  MulMagnitudeTo(a0, a0n, b0, b0n, res);
  MulMagnitudeTo(a1, a1n, b1, b1n, res + 2 * h);

  // z1 = (a0+a1)(b0+b1) - z0 - z2, computed in pooled scratch.
  const size_t sa_len = std::max(a0n, a1n) + 1;
  const size_t sb_len = std::max(b0n, b1n) + 1;
  const size_t z1_len = sa_len + sb_len;
  PooledScratch scratch(sa_len + sb_len + z1_len);
  Limb* sum_a = scratch.data();
  Limb* sum_b = sum_a + sa_len;
  Limb* z1 = sum_b + sb_len;

  std::memcpy(sum_a, a1, a1n * sizeof(Limb));
  sum_a[sa_len - 1] = 0;
  AddLimbsAt(sum_a, sa_len, 0, a0, a0n);
  std::memcpy(sum_b, b1, b1n * sizeof(Limb));
  if (b1n < sb_len) {
    std::memset(sum_b + b1n, 0, (sb_len - b1n) * sizeof(Limb));
  }
  AddLimbsAt(sum_b, sb_len, 0, b0, b0n);

  MulMagnitudeTo(sum_a, sa_len, sum_b, sb_len, z1);
  SubLimbsInPlace(z1, z1_len, res, SignificantLimbs(res, 2 * h));
  SubLimbsInPlace(z1, z1_len, res + 2 * h,
                  SignificantLimbs(res + 2 * h, an + bn - 2 * h));
  AddLimbsAt(res, an + bn, h, z1, SignificantLimbs(z1, z1_len));
}

// Full product dispatcher into res[0..an+bn) (fully overwritten). Requires
// an, bn >= 1. Balanced large operands go to Karatsuba; a very lopsided pair
// is cut into divisor-sized chunks so the recursion stays balanced.
void MulMagnitudeTo(const Limb* a, size_t an, const Limb* b, size_t bn,
                    Limb* res) {
  if (an < bn) {
    std::swap(a, b);
    std::swap(an, bn);
  }
  if (bn == 1) {
    res[an] = MulRowTo(res, a, an, b[0]);
    return;
  }
  if (bn < BigInt::kKaratsubaThreshold) {
    SchoolbookMulTo(a, an, b, bn, res);
    return;
  }
  if (bn * 2 <= an) {
    std::memset(res, 0, (an + bn) * sizeof(Limb));
    PooledScratch scratch(2 * bn);
    for (size_t off = 0; off < an; off += bn) {
      const size_t chunk = std::min(bn, an - off);
      MulMagnitudeTo(a + off, chunk, b, bn, scratch.data());
      AddLimbsAt(res, an + bn, off, scratch.data(),
                 SignificantLimbs(scratch.data(), chunk + bn));
    }
    return;
  }
  KaratsubaMulTo(a, an, b, bn, res);
}

// In-place right shift of a[0..*n) by the given bit count; trims *n.
void ShiftRightInPlace(Limb* a, size_t* n, size_t bits) {
  const size_t limb_shift = bits / 64;
  const size_t bit_shift = bits % 64;
  if (limb_shift >= *n) {
    *n = 0;
    return;
  }
  const size_t new_n = *n - limb_shift;
  if (bit_shift == 0) {
    std::memmove(a, a + limb_shift, new_n * sizeof(Limb));
  } else {
    for (size_t i = 0; i < new_n; ++i) {
      const Limb lo = a[i + limb_shift] >> bit_shift;
      const Limb hi = (i + limb_shift + 1 < *n)
                          ? a[i + limb_shift + 1] << (64 - bit_shift)
                          : 0;
      a[i] = lo | hi;
    }
  }
  *n = SignificantLimbs(a, new_n);
}

size_t TrailingZeroBits(const Limb* a, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != 0) return i * 64 + CountTrailingZeros(a[i]);
  }
  return n * 64;
}

}  // namespace

// ---------------------------------------------------------------------------
// Storage management.
// ---------------------------------------------------------------------------

BigInt::~BigInt() { ReleaseStorage(); }

void BigInt::ReleaseStorage() {
  if (IsHeap()) {
    PoolRelease(storage_.heap, capacity_);
    capacity_ = kInlineLimbs;
  }
}

void BigInt::SetZero() {
  size_ = 0;
  sign_ = 0;
}

void BigInt::EnsureCapacity(size_t limb_count) {
  if (limb_count <= capacity_) return;
  uint32_t new_capacity = 0;
  Limb* buffer = PoolAcquire(limb_count, &new_capacity);
  if (size_ > 0) std::memcpy(buffer, limbs(), size_ * sizeof(Limb));
  ReleaseStorage();
  storage_.heap = buffer;
  capacity_ = new_capacity;
}

void BigInt::ReserveDiscard(size_t limb_count) {
  if (limb_count <= capacity_) return;
  uint32_t new_capacity = 0;
  Limb* buffer = PoolAcquire(limb_count, &new_capacity);
  ReleaseStorage();
  storage_.heap = buffer;
  capacity_ = new_capacity;
}

void BigInt::TrimAndSync(int sign_if_nonzero) {
  while (size_ > 0 && limbs()[size_ - 1] == 0) --size_;
  sign_ = size_ == 0 ? 0 : sign_if_nonzero;
}

void BigInt::AssignMagnitude(const Limb* source, size_t count, int sign) {
  ReserveDiscard(count);
  if (count > 0) std::memcpy(limbs(), source, count * sizeof(Limb));
  size_ = static_cast<uint32_t>(count);
  TrimAndSync(sign);
}

BigInt::BigInt(const BigInt& other)
    : size_(0), sign_(0), capacity_(kInlineLimbs) {
  AssignMagnitude(other.limbs(), other.size_, other.sign_);
}

BigInt::BigInt(BigInt&& other) noexcept
    : size_(other.size_), sign_(other.sign_), capacity_(other.capacity_) {
  if (other.IsHeap()) {
    storage_.heap = other.storage_.heap;
    other.capacity_ = kInlineLimbs;
  } else {
    std::memcpy(storage_.inline_limbs, other.storage_.inline_limbs,
                sizeof(storage_.inline_limbs));
  }
  other.SetZero();
}

BigInt& BigInt::operator=(const BigInt& other) {
  if (this != &other) AssignMagnitude(other.limbs(), other.size_, other.sign_);
  return *this;
}

BigInt& BigInt::operator=(BigInt&& other) noexcept {
  if (this == &other) return *this;
  ReleaseStorage();
  size_ = other.size_;
  sign_ = other.sign_;
  capacity_ = other.capacity_;
  if (other.IsHeap()) {
    storage_.heap = other.storage_.heap;
    other.capacity_ = kInlineLimbs;
  } else {
    std::memcpy(storage_.inline_limbs, other.storage_.inline_limbs,
                sizeof(storage_.inline_limbs));
  }
  other.SetZero();
  return *this;
}

// ---------------------------------------------------------------------------
// Construction and parsing.
// ---------------------------------------------------------------------------

BigInt::BigInt(int64_t value) : size_(0), sign_(0), capacity_(kInlineLimbs) {
  if (value == 0) return;
  sign_ = value > 0 ? 1 : -1;
  // Avoid overflow on INT64_MIN by negating in unsigned space.
  storage_.inline_limbs[0] = value > 0
                                 ? static_cast<uint64_t>(value)
                                 : ~static_cast<uint64_t>(value) + 1;
  size_ = 1;
}

bool BigInt::TryParse(const std::string& text, BigInt* out) {
  size_t pos = 0;
  bool negative = false;
  if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) {
    negative = text[pos] == '-';
    ++pos;
  }
  if (pos >= text.size()) return false;
  for (size_t i = pos; i < text.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) return false;
  }
  // Fold 18 decimal digits at a time: one single-limb multiply and one
  // single-limb add per chunk instead of per digit.
  BigInt result;
  constexpr size_t kChunkDigits = 18;
  constexpr int64_t kChunkScale = 1000000000000000000;  // 10^18
  while (pos < text.size()) {
    const size_t take = std::min(kChunkDigits, text.size() - pos);
    int64_t chunk = 0;
    int64_t scale = 1;
    for (size_t i = 0; i < take; ++i) {
      chunk = chunk * 10 + (text[pos + i] - '0');
      scale *= 10;
    }
    result *= take == kChunkDigits ? BigInt(kChunkScale) : BigInt(scale);
    result += BigInt(chunk);
    pos += take;
  }
  if (negative && !result.IsZero()) result.sign_ = -1;
  *out = std::move(result);
  return true;
}

BigInt BigInt::FromString(const std::string& text) {
  BigInt result;
  SHAPCQ_CHECK_MSG(TryParse(text, &result), "malformed decimal BigInt literal");
  return result;
}

size_t BigInt::BitLength() const {
  if (size_ == 0) return 0;
  return size_ * 64 - CountLeadingZeros(limbs()[size_ - 1]);
}

// ---------------------------------------------------------------------------
// Comparison.
// ---------------------------------------------------------------------------

int BigInt::Compare(const BigInt& a, const BigInt& b) {
  if (a.sign_ != b.sign_) return a.sign_ < b.sign_ ? -1 : 1;
  if (a.sign_ == 0) return 0;
  const int magnitude_cmp = CompareLimbs(a.limbs(), a.size_, b.limbs(), b.size_);
  return a.sign_ > 0 ? magnitude_cmp : -magnitude_cmp;
}

bool BigInt::operator==(const BigInt& other) const {
  return sign_ == other.sign_ && size_ == other.size_ &&
         std::memcmp(limbs(), other.limbs(), size_ * sizeof(Limb)) == 0;
}

// ---------------------------------------------------------------------------
// Addition and subtraction.
// ---------------------------------------------------------------------------

BigInt BigInt::operator-() const {
  BigInt result = *this;
  result.sign_ = -result.sign_;
  return result;
}

BigInt BigInt::Abs() const {
  BigInt result = *this;
  if (result.sign_ < 0) result.sign_ = 1;
  return result;
}

BigInt BigInt::operator+(const BigInt& other) const {
  BigInt result = *this;
  result.AccumulateSigned(other, 1);
  return result;
}

BigInt BigInt::operator-(const BigInt& other) const {
  BigInt result = *this;
  result.AccumulateSigned(other, -1);
  return result;
}

BigInt& BigInt::AccumulateSigned(const BigInt& other, int sign_multiplier) {
  const int other_sign = other.sign_ * sign_multiplier;
  if (other_sign == 0) return *this;
  if (this == &other) {
    // Aliased: either doubling (+=) or cancellation (-=).
    if (sign_multiplier < 0) {
      SetZero();
      return *this;
    }
    Limb carry = 0;
    Limb* mine = limbs();
    for (size_t i = 0; i < size_; ++i) {
      const Limb limb = mine[i];
      mine[i] = (limb << 1) | carry;
      carry = limb >> 63;
    }
    if (carry != 0) {
      EnsureCapacity(size_ + 1);
      limbs()[size_++] = carry;
    }
    return *this;
  }
  if (sign_ == 0) {
    AssignMagnitude(other.limbs(), other.size_, other_sign);
    return *this;
  }
  if (sign_ == other_sign) {
    // Magnitude addition in place.
    if (size_ < other.size_) {
      EnsureCapacity(other.size_);
      std::memset(limbs() + size_, 0, (other.size_ - size_) * sizeof(Limb));
      size_ = other.size_;
    }
    Limb* mine = limbs();
    const Limb* theirs = other.limbs();
    Limb carry = 0;
    size_t i = 0;
    for (; i < other.size_; ++i) {
      const Limb sum1 = mine[i] + theirs[i];
      const Limb carry1 = static_cast<Limb>(sum1 < theirs[i]);
      const Limb sum2 = sum1 + carry;
      carry = carry1 | static_cast<Limb>(sum2 < carry);
      mine[i] = sum2;
    }
    for (; carry != 0 && i < size_; ++i) {
      const Limb sum = mine[i] + carry;
      carry = static_cast<Limb>(sum < carry);
      mine[i] = sum;
    }
    if (carry != 0) {
      EnsureCapacity(size_ + 1);
      limbs()[size_++] = carry;
    }
    return *this;
  }
  const int cmp = CompareLimbs(limbs(), size_, other.limbs(), other.size_);
  if (cmp == 0) {
    SetZero();
    return *this;
  }
  if (cmp > 0) {
    SubLimbsInPlace(limbs(), size_, other.limbs(), other.size_);
    TrimAndSync(sign_);
  } else {
    // *this = |other| - |*this| with other's sign; computed in place, each
    // position is read before it is written.
    EnsureCapacity(other.size_);
    Limb* mine = limbs();
    const Limb* theirs = other.limbs();
    Limb borrow = 0;
    for (size_t i = 0; i < other.size_; ++i) {
      const Limb subtrahend = i < size_ ? mine[i] : 0;
      const Limb t = theirs[i] - borrow;
      const Limb borrow1 = static_cast<Limb>(t > theirs[i]);
      const Limb result = t - subtrahend;
      borrow = borrow1 | static_cast<Limb>(result > t);
      mine[i] = result;
    }
    SHAPCQ_CHECK_MSG(borrow == 0, "magnitude subtraction underflow");
    size_ = other.size_;
    TrimAndSync(other_sign);
  }
  return *this;
}

// ---------------------------------------------------------------------------
// Multiplication.
// ---------------------------------------------------------------------------

BigInt BigInt::operator*(const BigInt& other) const {
  if (sign_ == 0 || other.sign_ == 0) return BigInt();
  BigInt result;
  if (size_ == 1 && other.size_ == 1) {
    // Single-limb fast path: one hardware multiply, at most two limbs out.
    Limb hi, lo;
    MulWide(limbs()[0], other.limbs()[0], &hi, &lo);
    result.storage_.inline_limbs[0] = lo;
    result.storage_.inline_limbs[1] = hi;
    result.size_ = hi != 0 ? 2 : 1;
    result.sign_ = sign_ * other.sign_;
    return result;
  }
  result.ReserveDiscard(size_ + other.size_);
  MulMagnitudeTo(limbs(), size_, other.limbs(), other.size_, result.limbs());
  result.size_ = size_ + other.size_;
  result.TrimAndSync(sign_ * other.sign_);
  return result;
}

BigInt& BigInt::operator*=(const BigInt& other) {
  if (sign_ == 0) return *this;
  if (other.sign_ == 0) {
    SetZero();
    return *this;
  }
  if (other.size_ == 1) {
    // In-place scan with carry; covers the aliased x *= x only when x is
    // itself single-limb, where the multiplier limb is read up front.
    const Limb multiplier = other.limbs()[0];
    const int result_sign = sign_ * other.sign_;
    const Limb carry = MulRowTo(limbs(), limbs(), size_, multiplier);
    if (carry != 0) {
      EnsureCapacity(size_ + 1);
      limbs()[size_++] = carry;
    }
    sign_ = result_sign;
    return *this;
  }
  return *this = *this * other;
}

BigInt& BigInt::AddProductOf(const BigInt& a, const BigInt& b) {
  if (a.sign_ == 0 || b.sign_ == 0) return *this;
  const int product_sign = a.sign_ * b.sign_;
  if (this == &a || this == &b || (sign_ != 0 && sign_ != product_sign)) {
    // Aliased or sign-flipping accumulation: take the allocating route.
    return *this += a * b;
  }
  const size_t an = a.size_;
  const size_t bn = b.size_;
  if (std::min(an, bn) >= kKaratsubaThreshold) {
    // Large operands: Karatsuba into pooled scratch, then one addition pass.
    PooledScratch product(an + bn);
    MulMagnitudeTo(a.limbs(), an, b.limbs(), bn, product.data());
    const size_t product_size = SignificantLimbs(product.data(), an + bn);
    if (size_ < product_size) {
      EnsureCapacity(product_size);
      std::memset(limbs() + size_, 0, (product_size - size_) * sizeof(Limb));
      size_ = static_cast<uint32_t>(product_size);
    }
    EnsureCapacity(size_ + 1);
    limbs()[size_] = 0;
    AddLimbsAt(limbs(), size_ + 1, 0, product.data(), product_size);
    if (limbs()[size_] != 0) ++size_;
    TrimAndSync(product_sign);
    return *this;
  }
  // Schoolbook partial products accumulated straight into this value's
  // limbs — no temporary BigInt, no scratch.
  if (size_ < an + bn) {
    EnsureCapacity(an + bn);
    std::memset(limbs() + size_, 0, (an + bn - size_) * sizeof(Limb));
    size_ = static_cast<uint32_t>(an + bn);
  }
  const Limb* al = a.limbs();
  const Limb* bl = b.limbs();
  for (size_t i = 0; i < an; ++i) {
    Limb carry = MulAddRow(limbs() + i, bl, bn, al[i]);
    for (size_t k = i + bn; carry != 0; ++k) {
      if (k == size_) {
        EnsureCapacity(size_ + 1);
        limbs()[size_++] = carry;
        break;
      }
      const Limb sum = limbs()[k] + carry;
      carry = static_cast<Limb>(sum < carry);
      limbs()[k] = sum;
    }
  }
  TrimAndSync(product_sign);
  return *this;
}

// ---------------------------------------------------------------------------
// Shifts.
// ---------------------------------------------------------------------------

BigInt BigInt::ShiftLeft(size_t bits) const {
  if (sign_ == 0 || bits == 0) return *this;
  const size_t limb_shift = bits / 64;
  const size_t bit_shift = bits % 64;
  BigInt result;
  result.ReserveDiscard(size_ + limb_shift + 1);
  Limb* out = result.limbs();
  std::memset(out, 0, limb_shift * sizeof(Limb));
  const Limb* in = limbs();
  if (bit_shift == 0) {
    std::memcpy(out + limb_shift, in, size_ * sizeof(Limb));
    result.size_ = static_cast<uint32_t>(size_ + limb_shift);
  } else {
    Limb carry = 0;
    for (size_t i = 0; i < size_; ++i) {
      out[limb_shift + i] = (in[i] << bit_shift) | carry;
      carry = in[i] >> (64 - bit_shift);
    }
    out[limb_shift + size_] = carry;
    result.size_ = static_cast<uint32_t>(size_ + limb_shift + 1);
  }
  result.TrimAndSync(sign_);
  return result;
}

// ---------------------------------------------------------------------------
// Division (Knuth Algorithm D with a single-limb fast path).
// ---------------------------------------------------------------------------

void BigInt::DivMod(const BigInt& dividend, const BigInt& divisor,
                    BigInt* quotient, BigInt* remainder) {
  SHAPCQ_CHECK_MSG(divisor.sign_ != 0, "division by zero");
  const int cmp =
      CompareLimbs(dividend.limbs(), dividend.size_, divisor.limbs(),
                   divisor.size_);
  if (cmp < 0) {
    // |dividend| < |divisor|: computed via locals so the out-params may
    // alias the inputs.
    BigInt rem = dividend;
    *quotient = BigInt();
    *remainder = std::move(rem);
    return;
  }
  const size_t an = dividend.size_;
  const size_t bn = divisor.size_;
  BigInt quot, rem;
  if (bn == 1) {
    // Single-limb divisor: one Div2By1 per dividend limb.
    const Limb d = divisor.limbs()[0];
    quot.ReserveDiscard(an);
    const Limb* u = dividend.limbs();
    Limb* q = quot.limbs();
    Limb r = 0;
    for (size_t i = an; i-- > 0;) {
      q[i] = Div2By1(r, u[i], d, &r);
    }
    quot.size_ = static_cast<uint32_t>(an);
    rem = BigInt();
    if (r != 0) {
      rem.storage_.inline_limbs[0] = r;
      rem.size_ = 1;
      rem.sign_ = 1;
    }
  } else {
    // Knuth Algorithm D. Normalize so the divisor's top bit is set, run the
    // quotient-digit loop with a two-limb qhat estimate, then denormalize
    // the remainder.
    const size_t m = an - bn;
    const int shift = CountLeadingZeros(divisor.limbs()[bn - 1]);
    PooledScratch work(an + 1 + bn);
    Limb* u = work.data();       // an + 1 limbs
    Limb* v = u + (an + 1);      // bn limbs
    {
      const Limb* src = divisor.limbs();
      if (shift == 0) {
        std::memcpy(v, src, bn * sizeof(Limb));
      } else {
        Limb carry = 0;
        for (size_t i = 0; i < bn; ++i) {
          v[i] = (src[i] << shift) | carry;
          carry = src[i] >> (64 - shift);
        }
      }
      const Limb* usrc = dividend.limbs();
      if (shift == 0) {
        std::memcpy(u, usrc, an * sizeof(Limb));
        u[an] = 0;
      } else {
        Limb carry = 0;
        for (size_t i = 0; i < an; ++i) {
          u[i] = (usrc[i] << shift) | carry;
          carry = usrc[i] >> (64 - shift);
        }
        u[an] = carry;
      }
    }
    quot.ReserveDiscard(m + 1);
    Limb* q = quot.limbs();
    const Limb v_top = v[bn - 1];
    const Limb v_next = v[bn - 2];
    for (size_t j = m + 1; j-- > 0;) {
      Limb qhat, rhat;
      bool rhat_overflow = false;
      if (u[j + bn] >= v_top) {
        // u[j+bn] == v_top after normalization (it cannot exceed it);
        // clamp the digit to base-1.
        qhat = std::numeric_limits<Limb>::max();
        rhat = u[j + bn - 1] + v_top;
        rhat_overflow = rhat < v_top;
      } else {
        qhat = Div2By1(u[j + bn], u[j + bn - 1], v_top, &rhat);
      }
      while (!rhat_overflow) {
        // Refine qhat with the next divisor limb: at most two decrements.
        Limb p_hi, p_lo;
        MulWide(qhat, v_next, &p_hi, &p_lo);
        if (p_hi < rhat || (p_hi == rhat && p_lo <= u[j + bn - 2])) break;
        --qhat;
        rhat += v_top;
        rhat_overflow = rhat < v_top;
      }
      const Limb borrow = MulSubRow(u + j, v, bn, qhat);
      const Limb top = u[j + bn];
      u[j + bn] = top - borrow;
      if (top < borrow) {
        // qhat was one too large: add the divisor back.
        --qhat;
        Limb carry = 0;
        for (size_t i = 0; i < bn; ++i) {
          const Limb sum1 = u[j + i] + v[i];
          const Limb carry1 = static_cast<Limb>(sum1 < v[i]);
          const Limb sum2 = sum1 + carry;
          carry = carry1 | static_cast<Limb>(sum2 < carry);
          u[j + i] = sum2;
        }
        u[j + bn] += carry;
      }
      q[j] = qhat;
    }
    quot.size_ = static_cast<uint32_t>(m + 1);
    size_t rem_size = bn;
    ShiftRightInPlace(u, &rem_size, static_cast<size_t>(shift));
    rem.AssignMagnitude(u, rem_size, 1);
  }
  quot.TrimAndSync(1);
  rem.TrimAndSync(1);
  // Truncated division signs: quotient sign is product of operand signs,
  // remainder takes the dividend's sign.
  if (!quot.IsZero()) quot.sign_ = dividend.sign_ * divisor.sign_;
  if (!rem.IsZero()) rem.sign_ = dividend.sign_;
  *quotient = std::move(quot);
  *remainder = std::move(rem);
}

BigInt BigInt::operator/(const BigInt& other) const {
  BigInt quotient, remainder;
  DivMod(*this, other, &quotient, &remainder);
  return quotient;
}

BigInt BigInt::operator%(const BigInt& other) const {
  BigInt quotient, remainder;
  DivMod(*this, other, &quotient, &remainder);
  return remainder;
}

// ---------------------------------------------------------------------------
// Gcd (binary / Stein, with one Euclid step to equalize lopsided operands).
// ---------------------------------------------------------------------------

BigInt BigInt::Gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a.Abs();
  BigInt y = b.Abs();
  if (x.IsZero()) return y;
  if (y.IsZero()) return x;
  if (x.size_ + 2 <= y.size_ || y.size_ + 2 <= x.size_) {
    // Very different magnitudes: one fast Knuth-D reduction brings them
    // within range, then the binary loop's subtract cadence is efficient.
    if (x.size_ < y.size_) std::swap(x, y);
    BigInt quotient, remainder;
    DivMod(x, y, &quotient, &remainder);
    x = std::move(y);
    y = std::move(remainder);
    if (y.IsZero()) return x;
  }
  const size_t x_twos = TrailingZeroBits(x.limbs(), x.size_);
  const size_t y_twos = TrailingZeroBits(y.limbs(), y.size_);
  const size_t common_twos = std::min(x_twos, y_twos);
  size_t xn = x.size_;
  ShiftRightInPlace(x.limbs(), &xn, x_twos);
  x.size_ = static_cast<uint32_t>(xn);
  size_t yn = y.size_;
  ShiftRightInPlace(y.limbs(), &yn, y_twos);
  y.size_ = static_cast<uint32_t>(yn);
  // Both odd from here on; classic Stein: strip twos, subtract, repeat.
  while (true) {
    const int cmp = CompareLimbs(x.limbs(), x.size_, y.limbs(), y.size_);
    if (cmp == 0) break;
    if (cmp < 0) std::swap(x, y);
    SubLimbsInPlace(x.limbs(), x.size_, y.limbs(), y.size_);
    size_t n = SignificantLimbs(x.limbs(), x.size_);
    ShiftRightInPlace(x.limbs(), &n, TrailingZeroBits(x.limbs(), n));
    x.size_ = static_cast<uint32_t>(n);
  }
  x.TrimAndSync(1);
  return common_twos == 0 ? x : x.ShiftLeft(common_twos);
}

// ---------------------------------------------------------------------------
// Conversions.
// ---------------------------------------------------------------------------

std::string BigInt::ToString() const {
  if (sign_ == 0) return "0";
  // Peel 19 decimal digits per pass with one Div2By1 per limb.
  constexpr Limb kChunkScale = 10000000000000000000ull;  // 10^19
  constexpr size_t kChunkDigits = 19;
  PooledScratch scratch(size_);
  Limb* work = scratch.data();
  std::memcpy(work, limbs(), size_ * sizeof(Limb));
  size_t n = size_;
  std::string digits;
  while (n > 0) {
    Limb chunk = 0;
    for (size_t i = n; i-- > 0;) {
      work[i] = Div2By1(chunk, work[i], kChunkScale, &chunk);
    }
    n = SignificantLimbs(work, n);
    if (n == 0) {
      // Most significant chunk: no zero padding.
      digits = std::to_string(chunk) + digits;
    } else {
      std::string part = std::to_string(chunk);
      digits = std::string(kChunkDigits - part.size(), '0') + part + digits;
    }
  }
  return sign_ < 0 ? "-" + digits : digits;
}

double BigInt::ToDouble() const {
  // Accumulate 32 bits at a time, exactly reproducing the rounding sequence
  // of the seed 32-bit implementation: downstream reports format doubles,
  // and bit-identical tables across the limb-width change require the same
  // last-ulp behavior, not just the same mathematical value.
  double result = 0.0;
  for (size_t i = size_; i-- > 0;) {
    const Limb limb = limbs()[i];
    result = result * 4294967296.0 + static_cast<double>(limb >> 32);
    result = result * 4294967296.0 + static_cast<double>(limb & 0xffffffffu);
  }
  return sign_ < 0 ? -result : result;
}

bool BigInt::FitsInt64() const {
  if (size_ > 1) return false;
  if (size_ == 0) return true;
  const uint64_t magnitude = limbs()[0];
  if (sign_ > 0) {
    return magnitude <=
           static_cast<uint64_t>(std::numeric_limits<int64_t>::max());
  }
  return magnitude <=
         static_cast<uint64_t>(std::numeric_limits<int64_t>::max()) + 1;
}

int64_t BigInt::ToInt64() const {
  SHAPCQ_CHECK_MSG(FitsInt64(), "BigInt does not fit in int64");
  if (sign_ == 0) return 0;
  const uint64_t magnitude = limbs()[0];
  return sign_ > 0 ? static_cast<int64_t>(magnitude)
                   : -static_cast<int64_t>(magnitude - 1) - 1;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.ToString();
}

}  // namespace shapcq
