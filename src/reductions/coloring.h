// Lemma D.1: NP-completeness pipeline for (2+,2−,4+−)-SAT.
//
//   3-colorability  →  (3+,2−)-SAT  →  (2+,2−,4+−)-SAT
//
// Implemented as executable converters so the reduction chain can be
// validated instance-by-instance against brute force.

#ifndef SHAPCQ_REDUCTIONS_COLORING_H_
#define SHAPCQ_REDUCTIONS_COLORING_H_

#include <utility>
#include <vector>

#include "reductions/cnf.h"
#include "util/random.h"

namespace shapcq {

/// An undirected graph on vertices 0..n-1.
struct SimpleGraph {
  int n = 0;
  std::vector<std::pair<int, int>> edges;
};

/// Random G(n, p) graph.
SimpleGraph RandomGraph(int n, double edge_probability, Rng* rng);

/// Proper 3-colorability by exhaustive search (3^n; n must be small).
bool IsThreeColorableBruteForce(const SimpleGraph& graph);

/// The (3+,2−) formula of Lemma D.1: variables x_v^c; clauses
/// (x_v^1 ∨ x_v^2 ∨ x_v^3), (¬x_u^c ∨ ¬x_v^c) per edge, (¬x_v^c ∨ ¬x_v^c')
/// per vertex and color pair. Satisfiable iff the graph is 3-colorable.
CnfFormula ColoringToThreeTwoSat(const SimpleGraph& graph);

/// Clause-by-clause rewrite of a (3+,2−) formula into (2+,2−,4+−) form with
/// one fresh variable per positive 3-clause (Lemma D.1, second reduction).
/// Input clauses must be all-positive 3-clauses or all-negative 2-clauses.
CnfFormula ThreeTwoTo224(const CnfFormula& formula);

}  // namespace shapcq

#endif  // SHAPCQ_REDUCTIONS_COLORING_H_
