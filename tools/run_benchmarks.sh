#!/usr/bin/env bash
# Builds the Release benchmarks and records the all-facts Shapley benchmark
# as BENCH_shapley.json, the incremental patch-vs-rebuild benchmark as
# BENCH_incremental.json, the serving-layer warm-vs-cold benchmark as
# BENCH_server.json, the arithmetic-backbone microbenchmarks as
# BENCH_arith.json, the durability-layer replay/compaction/fsync
# benchmark as BENCH_recovery.json, the concurrent socket-serving load
# benchmark as BENCH_service_load.json, and the sampling-tier accuracy +
# gap-property benchmarks (merged) as BENCH_approx.json at the repository
# root, so the perf trajectory is tracked PR over PR. BENCH_arith.json carries seed-implementation rows
# (BM_RefBigInt*) next to the production rows, which is what lets
# tools/check_arith_speedup.py gate the speedup within one run.
# BENCH_shapley.json carries a thread-count axis:
# BM_EngineAllFactsParallel/{students},{threads} rows measure the worker-pool
# engine, with threads=1 as the serial baseline of the speedup curve.
#
# All files embed git_sha and host_nproc in the JSON "context" block, so
# the single-core-container caveat (a parallel speedup is only physically
# possible when host_nproc > 1) is machine-readable instead of a prose note.
#
# Every benchmark binary is checked for existence up front and every JSON is
# written to a temp file and moved into place only after the run succeeds:
# a missing binary or a crashed benchmark fails the script loudly instead of
# leaving a partial BENCH_*.json behind.
#
# Checked-in recordings are protected against CPU downgrades: once a
# BENCH_*.json was recorded on a multi-core host (the bench-multicore CI
# job), re-recording it on a host with fewer CPUs refuses to overwrite the
# file — a single-core container run must not silently clobber the only
# recording on which the parallel speedup claims are physically meaningful.
# Pass --allow-downgrade to override deliberately.
#
#   tools/run_benchmarks.sh [--allow-downgrade] [build-dir]
#
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
allow_downgrade=0
positional=()
for arg in "$@"; do
  case "$arg" in
    --allow-downgrade) allow_downgrade=1 ;;
    *) positional+=("$arg") ;;
  esac
done
build_dir="${positional[0]:-$repo_root/build-bench}"

git_sha="$(git -C "$repo_root" rev-parse HEAD 2>/dev/null || echo unknown)"
host_nproc="$(nproc)"

bench_targets=(bench_shapley_all bench_incremental bench_server bench_arith
               bench_recovery bench_service_load bench_additive_fpras
               bench_gap_property)

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release \
      -DSHAPCQ_BUILD_TESTS=OFF -DSHAPCQ_BUILD_EXAMPLES=OFF
cmake --build "$build_dir" -j "$host_nproc" --target "${bench_targets[@]}"

for target in "${bench_targets[@]}"; do
  if [[ ! -x "$build_dir/bench/$target" ]]; then
    echo "error: benchmark binary $build_dir/bench/$target is missing" >&2
    echo "       (build failed or was skipped; refusing to emit partial" \
         "BENCH_*.json)" >&2
    exit 1
  fi
done

# Refuses to replace an existing recording with one from a host with fewer
# CPUs (per the num_cpus/host_nproc context of both files) unless
# --allow-downgrade was passed. Exits 0 when the overwrite is fine.
guard_cpu_downgrade() {
  local out="$1" tmp="$2"
  [[ -f "$out" && "$allow_downgrade" != 1 ]] || return 0
  if ! python3 - "$out" "$tmp" <<'EOF'
import json, sys

def cpus(path):
    try:
        ctx = json.load(open(path)).get("context", {})
    except (OSError, ValueError):
        return None
    try:
        return int(ctx.get("num_cpus", ctx.get("host_nproc")))
    except (TypeError, ValueError):
        return None

old, new = cpus(sys.argv[1]), cpus(sys.argv[2])
if old is not None and new is not None and new < old:
    print(f"refusing to overwrite {sys.argv[1]}: existing recording is from "
          f"a {old}-CPU host, this run has {new} CPUs", file=sys.stderr)
    sys.exit(1)
EOF
  then
    echo "error: pass --allow-downgrade to deliberately re-record" \
         "$out on a smaller host" >&2
    return 1
  fi
}

# Runs one benchmark binary and atomically publishes its JSON: the output
# lands in BENCH_*.json only if the benchmark exits zero and the JSON is
# well-formed.
record() {
  local target="$1" out="$2"
  local tmp="$out.tmp"
  "$build_dir/bench/$target" \
      --benchmark_context=git_sha="$git_sha" \
      --benchmark_context=host_nproc="$host_nproc" \
      --benchmark_format=json \
      --benchmark_out="$tmp" \
      --benchmark_out_format=json
  python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$tmp"
  guard_cpu_downgrade "$out" "$tmp"
  mv "$tmp" "$out"
}

record bench_shapley_all "$repo_root/BENCH_shapley.json"
record bench_incremental "$repo_root/BENCH_incremental.json"
record bench_server "$repo_root/BENCH_server.json"
record bench_arith "$repo_root/BENCH_arith.json"
record bench_recovery "$repo_root/BENCH_recovery.json"
record bench_service_load "$repo_root/BENCH_service_load.json"

# The sampling tier publishes ONE file: the accuracy rows (additive FPRAS
# vs ground truth) and the gap-property rows (why only ADDITIVE guarantees
# exist under negation) belong to the same claim, so they are merged into
# BENCH_approx.json before the accuracy gate runs on it.
approx_tmp="$(mktemp)" gap_tmp="$(mktemp)"
record_to() {
  local target="$1" out="$2"
  "$build_dir/bench/$target" \
      --benchmark_context=git_sha="$git_sha" \
      --benchmark_context=host_nproc="$host_nproc" \
      --benchmark_format=json \
      --benchmark_out="$out" \
      --benchmark_out_format=json
}
record_to bench_additive_fpras "$approx_tmp"
record_to bench_gap_property "$gap_tmp"
approx_merged="$repo_root/BENCH_approx.json.tmp"
python3 - "$approx_tmp" "$gap_tmp" "$approx_merged" <<'EOF'
import json, sys
merged = json.load(open(sys.argv[1]))
gap = json.load(open(sys.argv[2]))
merged["benchmarks"].extend(gap["benchmarks"])
with open(sys.argv[3], "w") as out:
    json.dump(merged, out, indent=2)
EOF
rm -f "$approx_tmp" "$gap_tmp"
guard_cpu_downgrade "$repo_root/BENCH_approx.json" "$approx_merged"
mv "$approx_merged" "$repo_root/BENCH_approx.json"

"$repo_root/tools/check_arena_speedup.py" \
    "$repo_root/BENCH_shapley.json"
"$repo_root/tools/check_incremental_speedup.py" \
    "$repo_root/BENCH_incremental.json"
"$repo_root/tools/check_server_speedup.py" \
    "$repo_root/BENCH_server.json"
"$repo_root/tools/check_arith_speedup.py" \
    "$repo_root/BENCH_arith.json"
"$repo_root/tools/check_service_load.py" \
    "$repo_root/BENCH_service_load.json"
"$repo_root/tools/check_approx_accuracy.py" \
    "$repo_root/BENCH_approx.json"

echo "wrote $repo_root/BENCH_shapley.json, $repo_root/BENCH_incremental.json," \
     "$repo_root/BENCH_server.json, $repo_root/BENCH_arith.json," \
     "$repo_root/BENCH_recovery.json, $repo_root/BENCH_service_load.json" \
     "and $repo_root/BENCH_approx.json"
