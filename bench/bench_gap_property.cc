// E5 — Theorem 5.1 / Section 5.1: the gap property fails under negation.
// Series (a figure in spirit): n vs the exact Shapley value n!n!/(2n+1)! of
// the distinguished fact, the 2^-n bound, and brute-force verification at
// small n. Also runs the generic Theorem 5.1 construction on other queries.

#include <cmath>
#include <cstdio>

#include "core/brute_force.h"
#include "query/parser.h"
#include "reductions/gap.h"

int main() {
  using namespace shapcq;
  const CQ q = GapQuery();
  std::printf("E5: gap-property violation for %s\n\n", q.ToString().c_str());
  std::printf("%4s %6s %14s %12s %12s %10s\n", "n", "|Dn|", "exact value",
              "log2(value)", "2^-n bound", "verified");
  for (int n = 1; n <= 12; ++n) {
    GapInstance gap = BuildGapFamily(n);
    const Rational value = GapTheoreticalShapley(n);
    const char* verified = "-";
    if (n <= 4) {
      verified = ShapleyBruteForce(q, gap.db, gap.f) == value ? "brute=yes"
                                                              : "brute=NO";
    }
    std::printf("%4d %6zu %14.4e %12.3f %12.4e %10s\n", n,
                gap.db.endogenous_count(), value.ToDouble(),
                std::log2(value.ToDouble()), std::pow(2.0, -n), verified);
  }
  std::printf("\nshape: log2(value) falls below -n for every n — the value "
              "is nonzero\nbut exponentially small, so no additive FPRAS can "
              "double as a\nmultiplicative one (contrast with positive CQs, "
              "where nonzero values\nare >= 1/poly).\n");

  std::printf("\ngeneric Theorem 5.1 construction (|Shapley| must equal "
              "n!n!/(2n+1)!):\n");
  std::printf("%-44s %3s %12s %9s\n", "query", "n", "|Shapley|", "matches");
  for (const char* text :
       {"q() :- R(x), S(x,y), not R(y)", "q() :- A(x,y), not B(y,x)",
        "q1() :- Stud(x), not TA(x), Reg(x,y)",
        "q() :- R(x), S(x,y), not T(y)"}) {
    const CQ other = MustParseCQ(text);
    for (int n : {1, 2}) {
      auto gap = BuildGenericGapFamily(other, n);
      if (!gap.ok()) {
        std::printf("%-44s %3d %12s %9s\n", text, n, "-", "error");
        continue;
      }
      const Rational value =
          ShapleyBruteForce(other, gap.value().db, gap.value().f).Abs();
      std::printf("%-44s %3d %12s %9s\n", text, n, value.ToString().c_str(),
                  value == GapTheoreticalShapley(n) ? "yes" : "NO");
    }
  }
  return 0;
}
