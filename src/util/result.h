// Minimal Result<T> for operations with expected failure modes (parsing,
// user-facing validation). Library-internal invariant violations use
// SHAPCQ_CHECK instead; exceptions are not used (Google style).

#ifndef SHAPCQ_UTIL_RESULT_H_
#define SHAPCQ_UTIL_RESULT_H_

#include <string>
#include <utility>

#include "util/check.h"

namespace shapcq {

/// Either a value or an error message.
template <typename T>
class Result {
 public:
  /// Successful result.
  static Result Ok(T value) {
    Result result;
    result.ok_ = true;
    result.value_ = std::move(value);
    return result;
  }
  /// Failed result carrying a human-readable message.
  static Result Error(std::string message) {
    Result result;
    result.ok_ = false;
    result.error_ = std::move(message);
    return result;
  }

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  /// Aborts if not ok.
  const T& value() const& {
    SHAPCQ_CHECK_MSG(ok_, error_.c_str());
    return value_;
  }
  T&& value() && {
    SHAPCQ_CHECK_MSG(ok_, error_.c_str());
    return std::move(value_);
  }

 private:
  Result() = default;
  bool ok_ = false;
  T value_{};
  std::string error_;
};

}  // namespace shapcq

#endif  // SHAPCQ_UTIL_RESULT_H_
