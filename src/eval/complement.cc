#include "eval/complement.h"

#include "eval/join.h"
#include "util/check.h"

namespace shapcq {

std::vector<Tuple> ComplementRelation(const Database& db,
                                      const std::string& relation,
                                      std::vector<Value> domain) {
  RelationId rel = db.schema().Find(relation);
  SHAPCQ_CHECK_MSG(rel != kNoRelation, "complement of undeclared relation");
  if (domain.empty()) domain = db.ActiveDomain();
  const size_t arity = db.schema().arity(rel);
  std::vector<Tuple> result;
  for (Tuple& tuple : CartesianPower(domain, arity)) {
    if (db.FindFact(rel, tuple) == kNoFact) result.push_back(std::move(tuple));
  }
  return result;
}

}  // namespace shapcq
