#include "probdb/prob_database.h"

#include "eval/homomorphism.h"
#include "util/check.h"
#include "util/random.h"

namespace shapcq {

FactId ProbDatabase::AddFact(const std::string& relation, Tuple tuple,
                             double probability) {
  SHAPCQ_CHECK_MSG(probability > 0.0 && probability <= 1.0,
                   "fact probability must be in (0, 1]");
  if (probability == 1.0) {
    return db_.AddExo(relation, std::move(tuple));
  }
  FactId fact = db_.AddEndo(relation, std::move(tuple));
  probabilities_.push_back(probability);
  SHAPCQ_CHECK(probabilities_.size() == db_.endogenous_count());
  return fact;
}

void ProbDatabase::SetProbabilities(std::vector<double> probabilities) {
  SHAPCQ_CHECK(probabilities.size() == db_.endogenous_count());
  for (double p : probabilities) SHAPCQ_CHECK(p > 0.0 && p <= 1.0);
  probabilities_ = std::move(probabilities);
}

double ProbDatabase::probability(FactId fact) const {
  if (!db_.is_endogenous(fact)) return 1.0;
  return probabilities_[db_.endo_index(fact)];
}

double ProbDatabase::ProbabilityBruteForce(const CQ& q) const {
  const size_t m = db_.endogenous_count();
  SHAPCQ_CHECK_MSG(m <= 26, "world enumeration beyond 2^26 is a bug");
  double total = 0.0;
  World world(m, false);
  const uint64_t worlds = uint64_t{1} << m;
  for (uint64_t mask = 0; mask < worlds; ++mask) {
    double weight = 1.0;
    for (size_t p = 0; p < m; ++p) {
      world[p] = (mask >> p) & 1;
      weight *= world[p] ? probabilities_[p] : 1.0 - probabilities_[p];
    }
    if (EvalBoolean(q, db_, world)) total += weight;
  }
  return total;
}

double ProbDatabase::ProbabilityMonteCarlo(const CQ& q, size_t samples,
                                           uint64_t seed) const {
  SHAPCQ_CHECK(samples > 0);
  Rng rng(seed);
  const size_t m = db_.endogenous_count();
  size_t satisfied = 0;
  World world(m, false);
  for (size_t s = 0; s < samples; ++s) {
    for (size_t p = 0; p < m; ++p) world[p] = rng.Bernoulli(probabilities_[p]);
    if (EvalBoolean(q, db_, world)) ++satisfied;
  }
  return static_cast<double>(satisfied) / static_cast<double>(samples);
}

}  // namespace shapcq
