#include "util/fault_injector.h"

#include <unistd.h>

#include <cstdlib>
#include <string>

namespace shapcq {

FaultInjector::FaultInjector() {
  const char* spec = std::getenv("SHAPCQ_FAULT");
  if (spec == nullptr || *spec == '\0') return;
  const std::string text(spec);
  const size_t colon = text.find(':');
  if (colon == std::string::npos) return;
  const std::string name = text.substr(0, colon);
  const uint64_t nth = std::strtoull(text.c_str() + colon + 1, nullptr, 10);
  if (nth == 0) return;
  if (name == "mid_record") {
    Arm(Point::kMidRecord, nth);
  } else if (name == "after_append") {
    Arm(Point::kAfterAppend, nth);
  } else if (name == "before_fsync") {
    Arm(Point::kBeforeFsync, nth);
  } else if (name == "net_short_write") {
    ArmNet(NetPoint::kShortWrite, nth);
  } else if (name == "net_drop_mid_response") {
    ArmNet(NetPoint::kDropMidResponse, nth);
  } else if (name == "net_eintr_recv") {
    ArmNet(NetPoint::kEintrRecv, nth);
  }
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(Point point, uint64_t nth_append) {
  point_ = point;
  trigger_append_ = nth_append;
  appends_seen_ = 0;
  fsync_armed_ = false;
}

void FaultInjector::ArmNet(NetPoint point, uint64_t n) {
  net_short_writes_.store(0, std::memory_order_relaxed);
  net_drop_send_.store(0, std::memory_order_relaxed);
  net_sends_seen_.store(0, std::memory_order_relaxed);
  net_eintr_recvs_.store(0, std::memory_order_relaxed);
  switch (point) {
    case NetPoint::kShortWrite:
      net_short_writes_.store(n, std::memory_order_relaxed);
      break;
    case NetPoint::kDropMidResponse:
      net_drop_send_.store(n, std::memory_order_relaxed);
      break;
    case NetPoint::kEintrRecv:
      net_eintr_recvs_.store(n, std::memory_order_relaxed);
      break;
    case NetPoint::kNone:
      break;
  }
}

FaultInjector::Point FaultInjector::OnAppend() {
  if (point_ == Point::kNone || trigger_append_ == 0) return Point::kNone;
  ++appends_seen_;
  if (appends_seen_ != trigger_append_) return Point::kNone;
  if (point_ == Point::kBeforeFsync) {
    // The record itself is written in full; the crash fires at the first
    // sync that would cover it.
    fsync_armed_ = true;
    return Point::kNone;
  }
  return point_;
}

bool FaultInjector::ShouldCrashBeforeFsync() { return fsync_armed_; }

void FaultInjector::Crash() { ::_exit(kFaultExitCode); }

size_t FaultInjector::NetSendCap(size_t len) {
  uint64_t remaining = net_short_writes_.load(std::memory_order_relaxed);
  while (remaining > 0) {
    if (net_short_writes_.compare_exchange_weak(remaining, remaining - 1,
                                                std::memory_order_relaxed)) {
      // One byte per faulted send: the most adversarial legal short write
      // (send() may transmit any nonzero prefix).
      return len > 1 ? 1 : 0;
    }
  }
  return 0;
}

bool FaultInjector::NetDropThisSend() {
  const uint64_t trigger = net_drop_send_.load(std::memory_order_relaxed);
  if (trigger == 0) return false;
  const uint64_t seen =
      net_sends_seen_.fetch_add(1, std::memory_order_relaxed) + 1;
  return seen == trigger;
}

bool FaultInjector::NetEintrThisRecv() {
  uint64_t remaining = net_eintr_recvs_.load(std::memory_order_relaxed);
  while (remaining > 0) {
    if (net_eintr_recvs_.compare_exchange_weak(remaining, remaining - 1,
                                               std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

}  // namespace shapcq
