#include "db/schema.h"

#include "util/check.h"

namespace shapcq {

RelationId Schema::AddRelation(const std::string& name, size_t arity) {
  auto it = index_.find(name);
  if (it != index_.end()) {
    SHAPCQ_CHECK_MSG(arities_[static_cast<size_t>(it->second)] == arity,
                     "relation re-declared with different arity");
    return it->second;
  }
  RelationId id = static_cast<RelationId>(names_.size());
  names_.push_back(name);
  arities_.push_back(arity);
  index_.emplace(name, id);
  return id;
}

RelationId Schema::Find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kNoRelation : it->second;
}

const std::string& Schema::name(RelationId id) const {
  SHAPCQ_CHECK(id >= 0 && static_cast<size_t>(id) < names_.size());
  return names_[static_cast<size_t>(id)];
}

size_t Schema::arity(RelationId id) const {
  SHAPCQ_CHECK(id >= 0 && static_cast<size_t>(id) < arities_.size());
  return arities_[static_cast<size_t>(id)];
}

}  // namespace shapcq
