// Homomorphism search: the query-evaluation substrate.
//
// D ⊨ q for a CQ¬ q iff some mapping of q's variables to constants sends
// every positive atom to a present fact and no negative atom to a present
// fact. "Present" is relative to a World (Dx ∪ E): exogenous facts are always
// present, endogenous facts only when selected.
//
// The engine is a backtracking matcher over the positive atoms; variables
// that remain unbound afterwards (only possible for unsafe queries or
// head-only variables) range over the active domain.

#ifndef SHAPCQ_EVAL_HOMOMORPHISM_H_
#define SHAPCQ_EVAL_HOMOMORPHISM_H_

#include <functional>
#include <vector>

#include "db/database.h"
#include "query/cq.h"
#include "query/ucq.h"

namespace shapcq {

/// A (partial) variable assignment indexed by VarId; unbound entries have
/// id -1.
using Assignment = std::vector<Value>;

/// True iff (Dx ∪ E) ⊨ q, where E is given by `world`.
bool EvalBoolean(const CQ& q, const Database& db, const World& world);

/// True iff D ⊨ q with every fact present.
bool EvalBooleanAllFacts(const CQ& q, const Database& db);

/// True iff (Dx ∪ E) ⊨ q for some disjunct of the UCQ¬.
bool EvalBoolean(const UCQ& q, const Database& db, const World& world);

/// Enumerates total assignments h with: every positive atom mapped to a
/// present fact, and — when `enforce_negative` — no negative atom mapped to
/// a present fact. The callback returns false to stop the search early.
/// Returns true if the search was stopped early by the callback.
bool ForEachHomomorphism(
    const CQ& q, const Database& db, const World& world, bool enforce_negative,
    const std::function<bool(const Assignment&)>& callback);

/// Distinct answers (projections of satisfying assignments onto the head).
std::vector<Tuple> EnumerateAnswers(const CQ& q, const Database& db,
                                    const World& world);

}  // namespace shapcq

#endif  // SHAPCQ_EVAL_HOMOMORPHISM_H_
