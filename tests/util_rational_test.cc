// Rational: reduction, arithmetic, ordering, conversions.

#include "util/rational.h"

#include <gtest/gtest.h>

namespace shapcq {
namespace {

TEST(RationalTest, ReducesOnConstruction) {
  EXPECT_EQ(Rational::Of(6, 8).ToString(), "3/4");
  EXPECT_EQ(Rational::Of(-6, 8).ToString(), "-3/4");
  EXPECT_EQ(Rational::Of(6, -8).ToString(), "-3/4");
  EXPECT_EQ(Rational::Of(-6, -8).ToString(), "3/4");
  EXPECT_EQ(Rational::Of(0, 5).ToString(), "0");
  EXPECT_EQ(Rational::Of(10, 5).ToString(), "2");
}

TEST(RationalTest, EqualityIsValueEquality) {
  EXPECT_EQ(Rational::Of(1, 2), Rational::Of(2, 4));
  EXPECT_NE(Rational::Of(1, 2), Rational::Of(1, 3));
  EXPECT_EQ(Rational(0), Rational::Of(0, 7));
}

TEST(RationalTest, Arithmetic) {
  EXPECT_EQ(Rational::Of(1, 2) + Rational::Of(1, 3), Rational::Of(5, 6));
  EXPECT_EQ(Rational::Of(1, 2) - Rational::Of(1, 3), Rational::Of(1, 6));
  EXPECT_EQ(Rational::Of(2, 3) * Rational::Of(3, 4), Rational::Of(1, 2));
  EXPECT_EQ(Rational::Of(2, 3) / Rational::Of(4, 3), Rational::Of(1, 2));
  EXPECT_EQ(-Rational::Of(2, 3), Rational::Of(-2, 3));
  EXPECT_EQ(Rational::Of(-2, 3).Abs(), Rational::Of(2, 3));
}

TEST(RationalTest, PaperExampleArithmetic) {
  // Example 2.3: the eight Shapley values of q1 sum to 1.
  Rational sum = Rational::Of(-3, 28) + Rational::Of(-2, 35) + Rational(0) +
                 Rational::Of(37, 210) + Rational::Of(37, 210) +
                 Rational::Of(27, 140) + Rational::Of(13, 42) +
                 Rational::Of(13, 42);
  EXPECT_EQ(sum, Rational(1));
}

TEST(RationalTest, Ordering) {
  EXPECT_LT(Rational::Of(1, 3), Rational::Of(1, 2));
  EXPECT_LT(Rational::Of(-1, 2), Rational::Of(-1, 3));
  EXPECT_LT(Rational::Of(-1, 2), Rational(0));
  EXPECT_GE(Rational::Of(7, 7), Rational(1));
  EXPECT_LE(Rational::Of(2, 35), Rational::Of(3, 28));
}

TEST(RationalTest, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational::Of(1, 2).ToDouble(), 0.5);
  EXPECT_DOUBLE_EQ(Rational::Of(-3, 28).ToDouble(), -3.0 / 28.0);
  EXPECT_DOUBLE_EQ(Rational(0).ToDouble(), 0.0);
}

TEST(RationalTest, ToDoubleSurvivesHugeTerms) {
  // n! / (n+1)! = 1/(n+1) even when both factorials overflow double.
  BigInt numerator(1), denominator(1);
  for (int64_t i = 2; i <= 400; ++i) numerator *= BigInt(i);
  denominator = numerator * BigInt(401);
  Rational ratio(numerator, denominator);
  EXPECT_NEAR(ratio.ToDouble(), 1.0 / 401.0, 1e-12);
}

TEST(RationalTest, ParseFormats) {
  Rational out;
  ASSERT_TRUE(Rational::TryParse("3/4", &out));
  EXPECT_EQ(out, Rational::Of(3, 4));
  ASSERT_TRUE(Rational::TryParse("-7", &out));
  EXPECT_EQ(out, Rational(-7));
  EXPECT_FALSE(Rational::TryParse("3/0", &out));
  EXPECT_FALSE(Rational::TryParse("x/2", &out));
}

TEST(RationalTest, SignAndZero) {
  EXPECT_EQ(Rational::Of(-2, 35).sign(), -1);
  EXPECT_EQ(Rational::Of(2, 35).sign(), 1);
  EXPECT_EQ(Rational(0).sign(), 0);
  EXPECT_TRUE(Rational(0).IsZero());
  EXPECT_FALSE(Rational::Of(1, 1000000).IsZero());
}

TEST(RationalTest, ThreeWayCompareSignFastPath) {
  // Mixed signs and zeros resolve on signs alone (no products built); the
  // outcome must still be the total order on values.
  EXPECT_EQ(Rational::Compare(Rational::Of(-3, 28), Rational::Of(37, 210)), -1);
  EXPECT_EQ(Rational::Compare(Rational::Of(37, 210), Rational::Of(-3, 28)), 1);
  EXPECT_EQ(Rational::Compare(Rational(0), Rational::Of(1, 1000000)), -1);
  EXPECT_EQ(Rational::Compare(Rational(0), Rational::Of(-1, 1000000)), 1);
  EXPECT_EQ(Rational::Compare(Rational(0), Rational(0)), 0);
}

TEST(RationalTest, ThreeWayCompareCrossMultiplies) {
  // Same sign: the cross products decide. 2/3 vs 3/4 -> 8 vs 9.
  EXPECT_EQ(Rational::Compare(Rational::Of(2, 3), Rational::Of(3, 4)), -1);
  EXPECT_EQ(Rational::Compare(Rational::Of(3, 4), Rational::Of(2, 3)), 1);
  // Negative pair: order flips relative to magnitudes (-2/3 > -3/4).
  EXPECT_EQ(Rational::Compare(Rational::Of(-2, 3), Rational::Of(-3, 4)), 1);
  EXPECT_EQ(Rational::Compare(Rational::Of(-3, 4), Rational::Of(-2, 3)), -1);
  // Equal values in different input forms reduce to the same representation.
  EXPECT_EQ(Rational::Compare(Rational::Of(2, 4), Rational::Of(3, 6)), 0);
  EXPECT_EQ(Rational::Compare(Rational::Of(-14, 4), Rational::Of(7, -2)), 0);
}

TEST(RationalTest, CompareAgreesWithOperatorOrder) {
  const Rational values[] = {Rational::Of(-5, 2),  Rational::Of(-1, 3),
                             Rational(0),           Rational::Of(1, 7),
                             Rational::Of(37, 210), Rational(4)};
  const int n = static_cast<int>(sizeof(values) / sizeof(values[0]));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const int three_way = Rational::Compare(values[i], values[j]);
      EXPECT_EQ(three_way < 0, values[i] < values[j]) << i << "," << j;
      EXPECT_EQ(three_way == 0, values[i] == values[j]) << i << "," << j;
      EXPECT_EQ(three_way > 0, values[i] > values[j]) << i << "," << j;
    }
  }
}

TEST(RationalTest, ApproxMemoryBytesCountsBothTerms) {
  // Small rationals are two inline BigInts: exactly two object footprints,
  // nothing double-counted from the limb pool.
  EXPECT_EQ(Rational::Of(3, 4).ApproxMemoryBytes(), 2 * sizeof(BigInt));
  // A factorial-sized numerator spills to heap limbs and must grow the
  // estimate.
  BigInt factorial(1);
  for (int64_t i = 2; i <= 60; ++i) factorial *= BigInt(i);
  EXPECT_GT(Rational(factorial).ApproxMemoryBytes(), 2 * sizeof(BigInt));
}

}  // namespace
}  // namespace shapcq
