// EngineRegistry semantics: lazy engine builds, LRU eviction under byte and
// count budgets, rebuild-on-readmission equivalence, and the memory
// accounting hook feeding the byte budget.

#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/report.h"
#include "core/shapley_engine.h"
#include "datasets/university.h"
#include "db/textio.h"
#include "query/parser.h"
#include "service/engine_registry.h"

namespace shapcq {
namespace {

MutationSpec Insert(const std::string& literal) {
  auto parsed = ParseMutationLine("+ " + literal);
  SHAPCQ_CHECK_MSG(parsed.ok(), parsed.error().c_str());
  return std::move(parsed).value();
}

MutationSpec Delete(const std::string& literal) {
  auto parsed = ParseMutationLine("- " + literal);
  SHAPCQ_CHECK_MSG(parsed.ok(), parsed.error().c_str());
  return std::move(parsed).value();
}

// Loads every fact of `db` into the session as insert mutations.
void LoadDatabase(EngineRegistry* registry, const std::string& id,
                  const Database& db) {
  for (size_t slot = 0; slot < db.fact_slot_count(); ++slot) {
    const FactId fact = static_cast<FactId>(slot);
    if (db.is_removed(fact)) continue;
    MutationSpec mutation;
    mutation.op = MutationSpec::Op::kInsert;
    mutation.fact.relation = db.schema().name(db.relation_of(fact));
    mutation.fact.tuple = db.tuple_of(fact);
    mutation.fact.endogenous = db.is_endogenous(fact);
    auto applied = registry->ApplyMutation(id, mutation);
    ASSERT_TRUE(applied.ok()) << applied.error();
  }
}

TEST(EngineRegistryTest, LazyBuildAndHitMissCounters) {
  EngineRegistry registry;
  ASSERT_TRUE(registry.Open("s1", MustParseCQ("q() :- R(x)")).ok());
  ASSERT_TRUE(registry.ApplyMutation("s1", Insert("R(a)*")).ok());
  EXPECT_FALSE(registry.Stats("s1").value().engine_resident);

  ASSERT_TRUE(registry.Report("s1", ReportOptions{}).ok());
  EXPECT_TRUE(registry.Stats("s1").value().engine_resident);
  EXPECT_EQ(registry.stats().report_misses, 1u);
  EXPECT_EQ(registry.stats().report_hits, 0u);

  ASSERT_TRUE(registry.Report("s1", ReportOptions{}).ok());
  EXPECT_EQ(registry.stats().report_misses, 1u);
  EXPECT_EQ(registry.stats().report_hits, 1u);
  EXPECT_EQ(registry.stats().engine_builds, 1u);
}

TEST(EngineRegistryTest, ReportMatchesFreshEngineExactly) {
  UniversityDb u = BuildUniversityDb();
  const CQ q = UniversityQ1();
  EngineRegistry registry;
  ASSERT_TRUE(registry.Open("uni", q).ok());
  LoadDatabase(&registry, "uni", u.db);

  auto report = registry.Report("uni", ReportOptions{});
  ASSERT_TRUE(report.ok()) << report.error();
  // The registry's database was built by replaying inserts, so its rendering
  // must match a report over the original database verbatim.
  auto fresh = BuildAttributionReport(q, u.db, ReportOptions{});
  ASSERT_TRUE(fresh.ok()) << fresh.error();
  ASSERT_EQ(report.value().rows.size(), fresh.value().rows.size());
  for (size_t i = 0; i < fresh.value().rows.size(); ++i) {
    EXPECT_EQ(report.value().rows[i].value, fresh.value().rows[i].value) << i;
  }
  EXPECT_EQ(report.value().total, fresh.value().total);
  EXPECT_EQ(RenderReport(report.value(), *registry.FindDatabase("uni"))
                .substr(std::string("engine: CntSat (incremental)\n").size()),
            RenderReport(fresh.value(), u.db)
                .substr(std::string("engine: CntSat\n").size()));
}

TEST(EngineRegistryTest, ApproxMemoryBytesIsPositiveAndGrows) {
  UniversityDb u = BuildUniversityDb();
  const CQ q = UniversityQ1();
  auto small = ShapleyEngine::Build(q, u.db);
  ASSERT_TRUE(small.ok());
  const size_t small_bytes = small.value().ApproxMemoryBytes();
  EXPECT_GT(small_bytes, 0u);

  // A bigger database must yield a bigger index estimate.
  Database big = MustParseDatabase(u.db.ToString());
  for (int i = 0; i < 40; ++i) {
    big.AddEndo("Reg", {V("extra" + std::to_string(i)), V("OS")});
    big.AddExo("Stud", {V("extra" + std::to_string(i))});
  }
  auto grown = ShapleyEngine::Build(q, big);
  ASSERT_TRUE(grown.ok());
  EXPECT_GT(grown.value().ApproxMemoryBytes(), small_bytes);
}

TEST(EngineRegistryTest, ByteBudgetEvictsLeastRecentlyUsed) {
  UniversityDb u = BuildUniversityDb();
  const CQ q = UniversityQ1();
  // Budget sized to hold ~one university engine, never two. The probe is
  // queried first so its estimate includes the lazily built context tables
  // a served engine carries.
  auto built = ShapleyEngine::Build(q, u.db);
  ASSERT_TRUE(built.ok());
  ShapleyEngine probe = std::move(built).value();
  probe.AllValues();
  RegistryOptions options;
  options.engine_byte_budget = probe.ApproxMemoryBytes() * 3 / 2;

  EngineRegistry registry(options);
  ASSERT_TRUE(registry.Open("a", q).ok());
  ASSERT_TRUE(registry.Open("b", q).ok());
  LoadDatabase(&registry, "a", u.db);
  LoadDatabase(&registry, "b", u.db);

  ASSERT_TRUE(registry.Report("a", ReportOptions{}).ok());
  EXPECT_TRUE(registry.Stats("a").value().engine_resident);
  ASSERT_TRUE(registry.Report("b", ReportOptions{}).ok());
  // b's build pushed the registry over budget: a (the LRU engine) went.
  EXPECT_FALSE(registry.Stats("a").value().engine_resident);
  EXPECT_TRUE(registry.Stats("b").value().engine_resident);
  EXPECT_EQ(registry.stats().evictions, 1u);
  EXPECT_LE(registry.stats().resident_bytes, options.engine_byte_budget);

  // Readmitting a rebuilds (a miss) and evicts b in turn.
  ASSERT_TRUE(registry.Report("a", ReportOptions{}).ok());
  EXPECT_TRUE(registry.Stats("a").value().engine_resident);
  EXPECT_FALSE(registry.Stats("b").value().engine_resident);
  EXPECT_EQ(registry.stats().report_misses, 3u);
  EXPECT_EQ(registry.stats().evictions, 2u);
  EXPECT_EQ(registry.Stats("a").value().engine_builds, 2u);
}

TEST(EngineRegistryTest, MaxResidentCapEvictsDeterministically) {
  EngineRegistry registry([] {
    RegistryOptions options;
    options.max_resident_engines = 2;
    return options;
  }());
  const CQ q = MustParseCQ("q() :- R(x)");
  for (const char* id : {"a", "b", "c"}) {
    ASSERT_TRUE(registry.Open(id, q).ok());
    ASSERT_TRUE(
        registry.ApplyMutation(id, Insert(std::string("R(") + id + ")*"))
            .ok());
    ASSERT_TRUE(registry.Report(id, ReportOptions{}).ok());
  }
  // c's build evicted a (LRU); b stayed.
  EXPECT_FALSE(registry.Stats("a").value().engine_resident);
  EXPECT_TRUE(registry.Stats("b").value().engine_resident);
  EXPECT_TRUE(registry.Stats("c").value().engine_resident);
  EXPECT_EQ(registry.stats().resident_engines, 2u);
  EXPECT_EQ(registry.stats().evictions, 1u);

  // Touching b (a report hit) protects it; reporting a next evicts c.
  ASSERT_TRUE(registry.Report("c", ReportOptions{}).ok());
  ASSERT_TRUE(registry.Report("b", ReportOptions{}).ok());
  ASSERT_TRUE(registry.Report("a", ReportOptions{}).ok());
  EXPECT_TRUE(registry.Stats("a").value().engine_resident);
  EXPECT_TRUE(registry.Stats("b").value().engine_resident);
  EXPECT_FALSE(registry.Stats("c").value().engine_resident);
}

TEST(EngineRegistryTest, EvictedSessionAbsorbsDeltasAndRebuildsIdentically) {
  UniversityDb u = BuildUniversityDb();
  const CQ q = UniversityQ1();

  // warm: never evicted, every delta patches the engine incrementally.
  // cold: an always-over-budget registry, engine evicted after each request.
  EngineRegistry warm;
  RegistryOptions tiny;
  tiny.engine_byte_budget = 1;
  EngineRegistry cold(tiny);
  for (EngineRegistry* registry : {&warm, &cold}) {
    ASSERT_TRUE(registry->Open("s", q).ok());
    LoadDatabase(registry, "s", u.db);
    ASSERT_TRUE(registry->Report("s", ReportOptions{}).ok());
  }
  EXPECT_TRUE(warm.Stats("s").value().engine_resident);
  EXPECT_FALSE(cold.Stats("s").value().engine_resident);
  EXPECT_EQ(cold.stats().evictions, 1u);

  const std::vector<MutationSpec> mutations = {
      Insert("Reg(Eve,OS)*"), Insert("Stud(Eve)"),   Delete("TA(Adam)"),
      Insert("TA(Eve)*"),     Delete("Reg(Ben,OS)"), Insert("Reg(Ben,AI)*"),
  };
  for (const MutationSpec& mutation : mutations) {
    ASSERT_TRUE(warm.ApplyMutation("s", mutation).ok());
    ASSERT_TRUE(cold.ApplyMutation("s", mutation).ok());
    auto warm_report = warm.Report("s", ReportOptions{});
    auto cold_report = cold.Report("s", ReportOptions{});
    ASSERT_TRUE(warm_report.ok()) << warm_report.error();
    ASSERT_TRUE(cold_report.ok()) << cold_report.error();
    // Same ranked table, bit-identical, whether served warm or rebuilt.
    EXPECT_EQ(RenderReport(warm_report.value(), *warm.FindDatabase("s")),
              RenderReport(cold_report.value(), *cold.FindDatabase("s")));
  }
  // The warm engine really was incremental (one build), the cold one never
  // survived between requests (one build per report).
  EXPECT_EQ(warm.Stats("s").value().engine_builds, 1u);
  EXPECT_EQ(cold.Stats("s").value().engine_builds,
            1u + mutations.size());
}

TEST(EngineRegistryTest, CloseFreesResidencyWithoutCountingEviction) {
  EngineRegistry registry;
  const CQ q = MustParseCQ("q() :- R(x)");
  ASSERT_TRUE(registry.Open("s", q).ok());
  ASSERT_TRUE(registry.ApplyMutation("s", Insert("R(a)*")).ok());
  ASSERT_TRUE(registry.Report("s", ReportOptions{}).ok());
  EXPECT_EQ(registry.stats().resident_engines, 1u);
  ASSERT_TRUE(registry.Close("s").ok());
  EXPECT_EQ(registry.stats().resident_engines, 0u);
  EXPECT_EQ(registry.stats().resident_bytes, 0u);
  EXPECT_EQ(registry.stats().evictions, 0u);
  EXPECT_EQ(registry.stats().open_sessions, 0u);
  EXPECT_FALSE(registry.Has("s"));
  EXPECT_EQ(registry.FindDatabase("s"), nullptr);
  // The id is reusable after close.
  EXPECT_TRUE(registry.Open("s", q).ok());
}

TEST(EngineRegistryTest, SessionIdsKeepOpenOrder) {
  EngineRegistry registry;
  const CQ q = MustParseCQ("q() :- R(x)");
  ASSERT_TRUE(registry.Open("z", q).ok());
  ASSERT_TRUE(registry.Open("a", q).ok());
  ASSERT_TRUE(registry.Open("m", q).ok());
  EXPECT_EQ(registry.SessionIds(),
            (std::vector<std::string>{"z", "a", "m"}));
  ASSERT_TRUE(registry.Close("a").ok());
  EXPECT_EQ(registry.SessionIds(), (std::vector<std::string>{"z", "m"}));
}

TEST(EngineRegistryTest, MutationPathEnforcesByteBudgetAmortized) {
  // Regression: the byte budget used to be enforced only inside Report(),
  // so a burst of deltas to a resident engine grew resident_bytes
  // arbitrarily far past the budget until the next report. Now the
  // estimate refreshes (and evicts) on the mutation path, every
  // refresh_every_deltas deltas.
  const CQ q = MustParseCQ("q() :- R(x)");
  auto grow = [](EngineRegistry* registry, size_t from, size_t to) {
    for (size_t i = from; i < to; ++i) {
      auto applied = registry->ApplyMutation(
          "s", Insert("R(f" + std::to_string(i) + ")*"));
      ASSERT_TRUE(applied.ok()) << applied.error();
    }
  };

  // Phase 1: measure the engine's size at 2 facts on an unlimited
  // registry (byte estimates are platform-dependent; never hardcode).
  size_t small_bytes = 0;
  {
    EngineRegistry probe;
    ASSERT_TRUE(probe.Open("s", q).ok());
    grow(&probe, 0, 2);
    ASSERT_TRUE(probe.Report("s", ReportOptions{}).ok());
    small_bytes = probe.Stats("s").value().engine_bytes;
    ASSERT_GT(small_bytes, 0u);
  }

  // Phase 2: a budget that admits the 2-fact engine but not a much
  // larger one. The delta burst alone must trigger the eviction.
  RegistryOptions options;
  options.engine_byte_budget = small_bytes;
  options.refresh_every_deltas = 8;
  EngineRegistry registry(options);
  ASSERT_TRUE(registry.Open("s", q).ok());
  grow(&registry, 0, 2);
  ASSERT_TRUE(registry.Report("s", ReportOptions{}).ok());
  ASSERT_TRUE(registry.Stats("s").value().engine_resident);
  ASSERT_EQ(registry.stats().evictions, 0u);

  grow(&registry, 2, 66);  // no REPORT in this burst

  EXPECT_FALSE(registry.Stats("s").value().engine_resident);
  EXPECT_GE(registry.stats().evictions, 1u);
  EXPECT_EQ(registry.stats().resident_bytes, 0u);

  // The evicted session still absorbed everything and reports correctly.
  auto report = registry.Report("s", ReportOptions{});
  ASSERT_TRUE(report.ok()) << report.error();
  EXPECT_EQ(report.value().rows.size(), 66u);
}

TEST(EngineRegistryTest, MutationPathKeepsStatsFreshWithoutBudget) {
  // Even with no budget to enforce, the periodic refresh keeps the STATS
  // byte estimate at most refresh_every_deltas deltas stale.
  RegistryOptions options;
  options.refresh_every_deltas = 4;
  EngineRegistry registry(options);
  ASSERT_TRUE(registry.Open("s", MustParseCQ("q() :- R(x)")).ok());
  ASSERT_TRUE(registry.ApplyMutation("s", Insert("R(seed)*")).ok());
  ASSERT_TRUE(registry.Report("s", ReportOptions{}).ok());
  const size_t before = registry.Stats("s").value().engine_bytes;
  for (size_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(
        registry.ApplyMutation("s", Insert("R(g" + std::to_string(i) + ")*"))
            .ok());
  }
  EXPECT_GT(registry.Stats("s").value().engine_bytes, before);
}

TEST(EngineRegistryTest, MutateReturnsOutcomeCounts) {
  EngineRegistry registry;
  ASSERT_TRUE(registry.Open("s", MustParseCQ("q() :- R(x)")).ok());
  auto first = registry.Mutate("s", Insert("R(a)*"), nullptr, nullptr);
  ASSERT_TRUE(first.ok()) << first.error();
  EXPECT_EQ(first.value().fact_count, 1u);
  EXPECT_EQ(first.value().endo_count, 1u);
  auto second = registry.Mutate("s", Insert("R(b)"), nullptr, nullptr);
  ASSERT_TRUE(second.ok()) << second.error();
  EXPECT_EQ(second.value().fact_count, 2u);
  EXPECT_EQ(second.value().endo_count, 1u);
  auto removed = registry.Mutate("s", Delete("R(a)"), nullptr, nullptr);
  ASSERT_TRUE(removed.ok()) << removed.error();
  EXPECT_EQ(removed.value().fact_count, 1u);
  EXPECT_EQ(removed.value().endo_count, 0u);
}

TEST(EngineRegistryTest, StripedRegistryMatchesSingleStripeExactly) {
  // Stripes change locking, never semantics: reports rendered through an
  // 8-stripe registry are byte-identical to the single-stripe (PR 4)
  // configuration, and SessionIds keeps global open order across stripes.
  RegistryOptions striped_options;
  striped_options.num_stripes = 8;
  EngineRegistry striped(striped_options);
  EngineRegistry flat;

  const CQ q = MustParseCQ("q() :- Stud(x), not TA(x), Reg(x,y)");
  std::vector<std::string> ids;
  for (int i = 0; i < 12; ++i) ids.push_back("sess" + std::to_string(i));
  for (const std::string& id : ids) {
    ASSERT_TRUE(striped.Open(id, q).ok());
    ASSERT_TRUE(flat.Open(id, q).ok());
    for (EngineRegistry* registry : {&striped, &flat}) {
      ASSERT_TRUE(registry->ApplyMutation(id, Insert("Stud(ann)")).ok());
      ASSERT_TRUE(registry->ApplyMutation(id, Insert("Stud(bob)")).ok());
      ASSERT_TRUE(
          registry->ApplyMutation(id, Insert("Reg(ann,os" + id + ")*")).ok());
      ASSERT_TRUE(registry->ApplyMutation(id, Insert("Reg(bob,db)*")).ok());
      ASSERT_TRUE(registry->ApplyMutation(id, Insert("TA(bob)*")).ok());
    }
  }
  EXPECT_EQ(striped.SessionIds(), ids);
  EXPECT_EQ(striped.stats().open_sessions, ids.size());
  for (const std::string& id : ids) {
    auto striped_report = striped.ReportRendered(id, ReportOptions{});
    auto flat_report = flat.ReportRendered(id, ReportOptions{});
    ASSERT_TRUE(striped_report.ok()) << striped_report.error();
    ASSERT_TRUE(flat_report.ok()) << flat_report.error();
    EXPECT_EQ(striped_report.value().text, flat_report.value().text);
    EXPECT_EQ(striped_report.value().rows, flat_report.value().rows);
  }
}

TEST(EngineRegistryTest, StripeQueueBoundFailsFastWithOverload) {
  // One command holds the (only) stripe; a second waits (within the
  // bound); a third finds the queue full and is rejected with a
  // structured overload error instead of blocking.
  RegistryOptions options;
  options.num_stripes = 1;
  options.max_stripe_queue = 1;
  EngineRegistry registry(options);
  ASSERT_TRUE(registry.Open("s", MustParseCQ("q() :- R(x)")).ok());

  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::thread holder([&]() {
    auto visited = registry.VisitDatabase("s", [&](const Database&) {
      entered.set_value();
      // Bounded wait: a scheduling pathology fails the test, never hangs it.
      released.wait_for(std::chrono::seconds(10));
    });
    EXPECT_TRUE(visited.ok()) << visited.error();
  });
  entered.get_future().wait();  // the stripe lock is now held

  std::thread waiter([&]() {
    auto applied = registry.Mutate("s", Insert("R(w)*"), nullptr, nullptr);
    EXPECT_TRUE(applied.ok()) << applied.error();
  });
  // Give the waiter time to register in the stripe queue (queued == 1, at
  // the bound). Generous margin; the worst case is a spurious pass-through
  // caught by the overload assertions below.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));

  auto rejected = registry.Mutate("s", Insert("R(x)*"), nullptr, nullptr);
  release.set_value();
  holder.join();
  waiter.join();

  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.error().find("[E_OVERLOAD]"), std::string::npos);
  EXPECT_EQ(registry.stats().overloads, 1u);
  // The admitted waiter's mutation landed once the stripe freed up.
  EXPECT_EQ(registry.Stats("s").value().fact_count, 1u);
}

ReportOptions ApproxOptions(double epsilon, double delta, size_t seed) {
  ReportOptions options;
  options.approx.epsilon = epsilon;
  options.approx.delta = delta;
  options.approx.seed = seed;
  return options;
}

TEST(EngineRegistryTest, ApproxOnlySessionServesSampledReports) {
  EngineRegistry registry;
  auto opened = registry.Open("s", MustParseCQ("q() :- R(x,y), S(x), T(y)"));
  ASSERT_TRUE(opened.ok()) << opened.error();
  EXPECT_FALSE(opened.value());  // admitted, but not exact-capable
  EXPECT_FALSE(registry.Stats("s").value().exact_capable);
  ASSERT_TRUE(registry.ApplyMutation("s", Insert("R(a,b)*")).ok());
  ASSERT_TRUE(registry.ApplyMutation("s", Insert("S(a)*")).ok());
  ASSERT_TRUE(registry.ApplyMutation("s", Insert("T(b)*")).ok());

  // An exact request names the classification and the way out.
  auto exact = registry.Report("s", ReportOptions{});
  ASSERT_FALSE(exact.ok());
  EXPECT_NE(exact.error().find("not hierarchical"), std::string::npos);
  EXPECT_NE(exact.error().find("approx=EPS,DELTA"), std::string::npos);

  auto approx = registry.Report("s", ApproxOptions(0.1, 0.05, 7));
  ASSERT_TRUE(approx.ok()) << approx.error();
  EXPECT_TRUE(approx.value().approximate);
  EXPECT_EQ(approx.value().engine, "approx-fpras");
  EXPECT_EQ(approx.value().rows.size(), 3u);
  // The sampling tier never builds the incremental engine.
  EXPECT_FALSE(registry.Stats("s").value().engine_resident);
  EXPECT_EQ(registry.stats().engine_builds, 0u);
  EXPECT_EQ(registry.stats().approx_reports, 1u);
}

TEST(EngineRegistryTest, ApproxReportCacheIsBoundedAndEpochValidated) {
  RegistryOptions options;
  options.max_approx_cached_reports = 2;
  EngineRegistry registry(options);
  ASSERT_TRUE(registry.Open("s", MustParseCQ("q() :- R(x)")).ok());
  ASSERT_TRUE(registry.ApplyMutation("s", Insert("R(a)*")).ok());
  ASSERT_TRUE(registry.ApplyMutation("s", Insert("R(b)*")).ok());

  ReportOptions first = ApproxOptions(0.2, 0.05, 1);
  first.approx.force = true;  // exact-capable session: sampling by request
  ASSERT_TRUE(registry.Report("s", first).ok());
  EXPECT_EQ(registry.stats().approx_reports, 1u);
  EXPECT_EQ(registry.stats().cached_approx_tables, 1u);

  // An identical spec with no intervening delta is a cache hit.
  const size_t hits_before = registry.stats().report_cache_hits;
  ASSERT_TRUE(registry.Report("s", first).ok());
  EXPECT_EQ(registry.stats().report_cache_hits, hits_before + 1);
  EXPECT_EQ(registry.stats().cached_approx_tables, 1u);

  // Distinct specs get distinct entries, bounded at 2 by least-recently-
  // served eviction.
  ReportOptions second = first;
  second.approx.seed = 2;
  ReportOptions third = first;
  third.approx.seed = 3;
  ASSERT_TRUE(registry.Report("s", second).ok());
  EXPECT_EQ(registry.stats().cached_approx_tables, 2u);
  ASSERT_TRUE(registry.Report("s", third).ok());
  EXPECT_EQ(registry.stats().cached_approx_tables, 2u);

  // The exact table is accounted in its own gauge, outside the bound.
  ASSERT_TRUE(registry.Report("s", ReportOptions{}).ok());
  EXPECT_EQ(registry.stats().cached_exact_tables, 1u);
  EXPECT_EQ(registry.stats().cached_approx_tables, 2u);
  EXPECT_EQ(registry.Stats("s").value().cached_exact_tables, 1u);
  EXPECT_EQ(registry.Stats("s").value().cached_approx_tables, 2u);

  // A delta invalidates every cached table: the next identical approx
  // request recomputes over the mutated database instead of hitting.
  ASSERT_TRUE(registry.ApplyMutation("s", Insert("R(c)*")).ok());
  const size_t hits_after = registry.stats().report_cache_hits;
  auto recomputed = registry.Report("s", third);
  ASSERT_TRUE(recomputed.ok()) << recomputed.error();
  EXPECT_EQ(recomputed.value().rows.size(), 3u);
  EXPECT_EQ(registry.stats().report_cache_hits, hits_after);
}

TEST(EngineRegistryTest, ZeroApproxCacheBoundDisablesApproxCaching) {
  RegistryOptions options;
  options.max_approx_cached_reports = 0;
  EngineRegistry registry(options);
  ASSERT_TRUE(registry.Open("s", MustParseCQ("q() :- R(x)")).ok());
  ASSERT_TRUE(registry.ApplyMutation("s", Insert("R(a)*")).ok());

  ReportOptions forced = ApproxOptions(0.2, 0.05, 1);
  forced.approx.force = true;
  auto first = registry.Report("s", forced);
  auto second = registry.Report("s", forced);
  ASSERT_TRUE(first.ok()) << first.error();
  ASSERT_TRUE(second.ok()) << second.error();
  EXPECT_EQ(registry.stats().cached_approx_tables, 0u);
  EXPECT_EQ(registry.stats().report_cache_hits, 0u);
  // Fixed (spec, database): the recomputation is bit-identical anyway.
  ASSERT_EQ(first.value().rows.size(), second.value().rows.size());
  for (size_t i = 0; i < first.value().rows.size(); ++i) {
    EXPECT_EQ(first.value().rows[i].value, second.value().rows[i].value) << i;
  }
}

}  // namespace
}  // namespace shapcq
