// Materializing query answers into relations.
//
// ExoShap replaces groups of exogenous atoms by a single relation holding the
// answers of a conjunctive query over them; this helper computes those
// answer sets (treating every fact as present — ExoShap only ever joins
// exogenous relations).

#ifndef SHAPCQ_EVAL_JOIN_H_
#define SHAPCQ_EVAL_JOIN_H_

#include <vector>

#include "db/database.h"
#include "query/cq.h"

namespace shapcq {

/// Distinct answers of q over the full database (all facts present).
std::vector<Tuple> MaterializeAnswers(const CQ& q, const Database& db);

/// All tuples of the given arity over `domain` (the Cartesian power
/// domain^arity), in odometer order. Used for relation complements and for
/// ExoShap's padding step. Aborts if the result would exceed `limit` tuples
/// (guard against accidental blow-up; the paper's constructions are
/// polynomial but still |Dom|^arity).
std::vector<Tuple> CartesianPower(const std::vector<Value>& domain,
                                  size_t arity, size_t limit = 50000000);

}  // namespace shapcq

#endif  // SHAPCQ_EVAL_JOIN_H_
