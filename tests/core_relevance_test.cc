// Relevance (Definition 5.2): Algorithms 2/3 against brute force, the
// paper's Examples 5.3/5.4, and the polarity-consistency preconditions.

#include "core/relevance.h"

#include <gtest/gtest.h>

#include <tuple>

#include "core/brute_force.h"
#include "datasets/synthetic.h"
#include "datasets/university.h"
#include "query/parser.h"
#include "reductions/satred.h"
#include "util/random.h"

namespace shapcq {
namespace {

TEST(RelevanceTest, Example53BothPolaritiesZeroShapley) {
  Database db;
  FactId f = db.AddEndo("R", {V(1), V(2)});
  db.AddEndo("R", {V(2), V(1)});
  CQ q = MustParseCQ("q() :- R(x,y), not R(y,x)");
  EXPECT_TRUE(IsPosRelevantBruteForce(q, db, f));
  EXPECT_TRUE(IsNegRelevantBruteForce(q, db, f));
  EXPECT_EQ(ShapleyBruteForce(q, db, f), Rational(0));
  // q is not polarity consistent, so the fast algorithms refuse.
  EXPECT_FALSE(IsPosRelevant(q, db, f).ok());
}

TEST(RelevanceTest, RunningExampleQ1) {
  UniversityDb u = BuildUniversityDb();
  const CQ q1 = UniversityQ1();
  // Reg facts are positively relevant; TA(Adam)/TA(Ben) negatively; TA(David)
  // is irrelevant (David has no registrations) — Example 2.3's observation
  // that Shapley(q1, ft3) = 0.
  EXPECT_TRUE(IsPosRelevant(q1, u.db, u.fr1).value());
  EXPECT_FALSE(IsNegRelevant(q1, u.db, u.fr1).value());
  EXPECT_TRUE(IsNegRelevant(q1, u.db, u.ft1).value());
  EXPECT_FALSE(IsPosRelevant(q1, u.db, u.ft1).value());
  EXPECT_FALSE(IsRelevant(q1, u.db, u.ft3).value());
  EXPECT_TRUE(ShapleyIsNonzero(q1, u.db, u.ft2).value());
  EXPECT_FALSE(ShapleyIsNonzero(q1, u.db, u.ft3).value());
}

TEST(RelevanceTest, NonzeroEquivalenceOnRunningExample) {
  UniversityDb u = BuildUniversityDb();
  const CQ q1 = UniversityQ1();
  for (FactId f : u.db.endogenous_facts()) {
    EXPECT_EQ(ShapleyIsNonzero(q1, u.db, f).value(),
              !ShapleyBruteForce(q1, u.db, f).IsZero())
        << u.db.FactToString(f);
  }
}

TEST(RelevanceTest, Example54Q4Phenomenon) {
  // Example 5.4: in q4, TA and Reg occur with both polarities, so a TA fact
  // can be relevant with Shapley value 0; an Adv fact (polarity consistent)
  // is relevant iff its Shapley value is nonzero. This database realizes
  // both situations.
  const CQ q4 = UniversityQ4();
  Database db;
  const Value m = V("q4m"), a = V("q4a"), b = V("q4b"), w = V("q4w");
  FactId adv_a = db.AddEndo("Adv", {m, a});
  db.AddExo("Adv", {m, b});
  // TA(a) appears positively (as TA(y)) and negatively (as ¬TA(z)).
  FactId ta_a = db.AddEndo("TA", {a});
  db.AddExo("TA", {b});
  db.AddEndo("Reg", {a, w});
  db.AddEndo("Reg", {b, w});
  // Symmetric gadget making TA(a) both positively and negatively pivotal.
  (void)ta_a;

  // Adv(m,a) is polarity consistent: relevance iff Shapley != 0.
  const bool adv_relevant = IsRelevantBruteForce(q4, db, adv_a);
  EXPECT_EQ(adv_relevant, !ShapleyBruteForce(q4, db, adv_a).IsZero());

  // Existence claim of Example 5.3/5.4: some database has a TA-like fact
  // relevant with Shapley 0 — the R(1,2)/R(2,1) instance realizes it (see
  // Example53BothPolaritiesZeroShapley); here we just confirm q4 admits
  // relevant TA facts at all.
  bool some_ta_relevant = false;
  for (FactId f : db.endogenous_facts()) {
    if (db.schema().name(db.relation_of(f)) == "TA") {
      some_ta_relevant |= IsRelevantBruteForce(q4, db, f);
    }
  }
  EXPECT_TRUE(some_ta_relevant);
}

TEST(RelevanceTest, PolarityInconsistentQueryRefused) {
  UniversityDb u = BuildUniversityDb();
  EXPECT_FALSE(IsRelevant(UniversityQ4(), u.db, u.ft1).ok());
  Database db;
  FactId f = db.AddEndo("T", {V("pc")});
  EXPECT_FALSE(IsRelevant(QrstNegR(), db, f).ok());
}

TEST(RelevanceTest, UcqWholeConsistencyRequired) {
  Database db;
  FactId f = db.AddEndo("R", {V("0")});
  EXPECT_FALSE(IsRelevant(QSat(), db, f).ok());  // Proposition 5.8 regime
  UCQ consistent = MustParseUCQ(
      "q1() :- A(x), not B(x)\n"
      "q2() :- C(x), not B(x)");
  EXPECT_TRUE(IsRelevant(consistent, db, f).ok());
}

TEST(RelevanceTest, UcqMatchesBruteForceSmall) {
  UCQ ucq = MustParseUCQ(
      "q1() :- A(x), not B(x)\n"
      "q2() :- C(x)");
  Database db;
  FactId a = db.AddEndo("A", {V("uq1")});
  FactId b = db.AddEndo("B", {V("uq1")});
  FactId c = db.AddEndo("C", {V("uq2")});
  for (FactId f : {a, b, c}) {
    EXPECT_EQ(IsPosRelevant(ucq, db, f).value(),
              IsPosRelevantBruteForce(ucq, db, f))
        << db.FactToString(f);
    EXPECT_EQ(IsNegRelevant(ucq, db, f).value(),
              IsNegRelevantBruteForce(ucq, db, f))
        << db.FactToString(f);
  }
  // The disjunct q2 makes C(uq2) positively relevant even though q1 alone
  // never mentions C.
  EXPECT_TRUE(IsPosRelevant(ucq, db, c).value());
  // B(uq1) negatively relevant through q1 only while q2 unsatisfied: E = {a}.
  EXPECT_TRUE(IsNegRelevant(ucq, db, b).value());
}

// ---------------------------------------------------------------------------
// Randomized sweeps: fast algorithms == brute force.
// ---------------------------------------------------------------------------

using RelevanceSweepParam = std::tuple<const char*, int>;

class RelevanceSweep : public ::testing::TestWithParam<RelevanceSweepParam> {};

TEST_P(RelevanceSweep, MatchesBruteForce) {
  const CQ q = MustParseCQ(std::get<0>(GetParam()));
  Rng rng(static_cast<uint64_t>(std::get<1>(GetParam())) * 1299709 + 17);
  SyntheticOptions options;
  options.domain_size = 3;
  options.facts_per_relation = 3;
  const Database db = RandomDatabaseForQuery(q, {}, options, &rng);
  for (FactId f : db.endogenous_facts()) {
    auto pos = IsPosRelevant(q, db, f);
    auto neg = IsNegRelevant(q, db, f);
    ASSERT_TRUE(pos.ok()) << pos.error();
    ASSERT_TRUE(neg.ok()) << neg.error();
    EXPECT_EQ(pos.value(), IsPosRelevantBruteForce(q, db, f))
        << "pos, fact " << db.FactToString(f) << " db " << db.ToString();
    EXPECT_EQ(neg.value(), IsNegRelevantBruteForce(q, db, f))
        << "neg, fact " << db.FactToString(f) << " db " << db.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolarityConsistentShapes, RelevanceSweep,
    ::testing::Combine(
        ::testing::Values(
            "q1() :- Stud(x), not TA(x), Reg(x,y)",
            "q2() :- Stud(x), not TA(x), Reg(x,y), not Course(y,'CS')",
            // q3: polarity consistent despite self-joins — the algorithms
            // do not need self-join-freeness.
            "q3() :- Adv(x,y), Adv(x,z), not TA(y), not TA(z), Reg(y,'d0'), "
            "Reg(z,'d1')",
            "q() :- R(x), S(x,y), not T(y)",
            "q() :- R(x), not S(x,y), not T(y), R2(x,y)",
            "q() :- A(x), B(y)"),
        ::testing::Range(0, 5)));

class UcqRelevanceSweep : public ::testing::TestWithParam<int> {};

TEST_P(UcqRelevanceSweep, MatchesBruteForce) {
  // A polarity-consistent union (B negative in both disjuncts).
  UCQ ucq = MustParseUCQ(
      "q1() :- A(x), not B(x)\n"
      "q2() :- C(x,y), not B(y)");
  Rng rng(static_cast<uint64_t>(GetParam()) * 7 + 1234);
  SyntheticOptions options;
  options.domain_size = 3;
  options.facts_per_relation = 3;
  // Generate over the union of relations via a scratch query.
  const CQ scratch =
      MustParseCQ("s() :- A(x), B(x), C(x,y)");
  const Database db = RandomDatabaseForQuery(scratch, {}, options, &rng);
  for (FactId f : db.endogenous_facts()) {
    EXPECT_EQ(IsPosRelevant(ucq, db, f).value(),
              IsPosRelevantBruteForce(ucq, db, f))
        << db.FactToString(f) << " in " << db.ToString();
    EXPECT_EQ(IsNegRelevant(ucq, db, f).value(),
              IsNegRelevantBruteForce(ucq, db, f))
        << db.FactToString(f) << " in " << db.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UcqRelevanceSweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace shapcq
